"""Unit tests for PCI configuration space and capability lists."""

import pytest

from repro.hw.pcie import CAP_ID_MSIX, ConfigSpace, EXT_CAP_ID_SRIOV
from repro.hw.pcie.config_space import (
    CAP_ID_MSI,
    CAP_ID_PCIE,
    EXT_CAP_ID_ACS,
    OFF_CAP_POINTER,
)


def make_space():
    return ConfigSpace(vendor_id=0x8086, device_id=0x10C9)  # Intel 82576


def test_header_fields():
    space = make_space()
    assert space.vendor_id == 0x8086
    assert space.device_id == 0x10C9


def test_read_write_widths_little_endian():
    space = make_space()
    space.write32(0x40, 0x11223344)
    assert space.read8(0x40) == 0x44
    assert space.read8(0x43) == 0x11
    assert space.read16(0x42) == 0x1122


def test_out_of_range_access_rejected():
    space = make_space()
    with pytest.raises(IndexError):
        space.read32(4094)
    with pytest.raises(IndexError):
        space.write8(-1, 0)


def test_command_register_bits():
    space = make_space()
    assert not space.bus_master_enabled
    space.enable_bus_master()
    assert space.bus_master_enabled
    space.enable_memory()
    assert space.bus_master_enabled  # previous bit preserved


def test_bars():
    space = make_space()
    space.set_bar(0, 0xF0000000)
    space.set_bar(3, 0xF0020000)
    assert space.bar(0) == 0xF0000000
    assert space.bar(3) == 0xF0020000
    with pytest.raises(ValueError):
        space.set_bar(6, 0)


def test_capability_chain_walk():
    space = make_space()
    msi = space.add_capability(CAP_ID_MSI, 24)
    pcie = space.add_capability(CAP_ID_PCIE, 60)
    msix = space.add_capability(CAP_ID_MSIX, 12)
    found = list(space.capabilities())
    assert found == [(CAP_ID_MSI, msi), (CAP_ID_PCIE, pcie), (CAP_ID_MSIX, msix)]
    assert space.read8(OFF_CAP_POINTER) == msi


def test_find_capability():
    space = make_space()
    space.add_capability(CAP_ID_MSI, 24)
    offset = space.add_capability(CAP_ID_MSIX, 12)
    assert space.find_capability(CAP_ID_MSIX) == offset
    assert space.find_capability(CAP_ID_PCIE) is None


def test_no_capabilities_walk_is_empty():
    assert list(make_space().capabilities()) == []
    assert list(make_space().extended_capabilities()) == []


def test_extended_capability_chain():
    space = make_space()
    sriov = space.add_extended_capability(EXT_CAP_ID_SRIOV, 0x40)
    acs = space.add_extended_capability(EXT_CAP_ID_ACS, 8)
    assert sriov == 0x100
    found = list(space.extended_capabilities())
    assert found == [(EXT_CAP_ID_SRIOV, sriov), (EXT_CAP_ID_ACS, acs)]
    assert space.find_extended_capability(EXT_CAP_ID_ACS) == acs
    assert space.find_extended_capability(0x9999) is None


def test_capability_length_validation():
    space = make_space()
    with pytest.raises(ValueError):
        space.add_capability(CAP_ID_MSI, 1)
    with pytest.raises(ValueError):
        space.add_extended_capability(EXT_CAP_ID_SRIOV, 2)
