"""Unit tests for CPU cycle accounting and the saturating executor."""

import pytest

from repro.hw import CpuCore, Executor, Machine
from repro.sim import Simulator


def test_charge_and_utilization():
    sim = Simulator()
    core = CpuCore(sim, 0, clock_hz=1e9)
    core.charge("guest", 5e8)
    assert core.utilization(elapsed=1.0, label="guest") == pytest.approx(0.5)
    assert core.utilization(elapsed=1.0) == pytest.approx(0.5)


def test_charge_accumulates_per_label():
    sim = Simulator()
    core = CpuCore(sim, 0, clock_hz=1e9)
    core.charge("xen", 100)
    core.charge("xen", 200)
    core.charge("dom0", 50)
    assert core.cycles("xen") == 300
    assert core.cycles() == 350
    assert core.labels() == ["dom0", "xen"]


def test_negative_charge_rejected():
    core = CpuCore(Simulator(), 0)
    with pytest.raises(ValueError):
        core.charge("x", -1)


def test_machine_utilization_percent_xentop_convention():
    """100% = one fully busy hardware thread."""
    sim = Simulator()
    machine = Machine(sim, core_count=4, clock_hz=1e9)
    sim.run(until=1.0)
    machine.cores[0].charge("dom0", 1e9)   # one core fully busy
    machine.cores[1].charge("dom0", 5e8)   # half a core
    assert machine.utilization_percent("dom0") == pytest.approx(150.0)


def test_machine_breakdown_covers_all_labels():
    sim = Simulator()
    machine = Machine(sim, core_count=2, clock_hz=1e9)
    sim.run(until=2.0)
    machine.cores[0].charge("guest1", 2e9)
    machine.cores[1].charge("xen", 1e9)
    breakdown = machine.utilization_breakdown()
    assert breakdown == {
        "guest1": pytest.approx(100.0),
        "xen": pytest.approx(50.0),
    }


def test_start_measurement_resets_window():
    sim = Simulator()
    machine = Machine(sim, core_count=1, clock_hz=1e9)
    machine.cores[0].charge("x", 1e9)
    sim.run(until=1.0)
    machine.start_measurement()
    assert machine.cycles() == 0
    assert machine.elapsed == 0
    sim.schedule(1.0, lambda: machine.cores[0].charge("x", 5e8))
    sim.run(until=2.0)
    # Window is [1.0, 2.0] -> 5e8 cycles over 1 s on a 1 GHz core.
    assert machine.utilization_percent("x") == pytest.approx(50.0)


def test_machine_validates_core_count():
    with pytest.raises(ValueError):
        Machine(Simulator(), core_count=0)


def test_executor_serializes_work_at_clock_rate():
    sim = Simulator()
    core = CpuCore(sim, 0, clock_hz=1e9)
    executor = Executor(sim, core, "netback")
    done_times = []
    executor.submit(1e6, lambda: done_times.append(sim.now))  # 1 ms
    executor.submit(2e6, lambda: done_times.append(sim.now))  # 2 ms
    sim.run()
    assert done_times == [pytest.approx(1e-3), pytest.approx(3e-3)]
    assert executor.completed == 2
    assert core.cycles("netback") == pytest.approx(3e6)


def test_executor_rejects_beyond_queue_limit():
    sim = Simulator()
    core = CpuCore(sim, 0, clock_hz=1e9)
    executor = Executor(sim, core, "netback", queue_limit=2)
    results = [executor.submit(1e9, lambda: None) for _ in range(5)]
    # First starts immediately (dequeued), two queue, rest rejected.
    assert results == [True, True, True, False, False]
    assert executor.rejected == 2


def test_executor_saturation_caps_throughput():
    """Offering work faster than the core can serve caps completions at
    the core's service rate — the single-threaded netback effect."""
    sim = Simulator()
    core = CpuCore(sim, 0, clock_hz=1e9)
    executor = Executor(sim, core, "netback", queue_limit=8)
    served_cycles = 1e6  # 1 ms per item -> capacity 1000/s

    def offer():
        executor.submit(served_cycles, lambda: None)

    t = 0.0
    while t < 1.0:
        sim.schedule_at(t, offer)
        t += 1 / 3000  # offer 3x capacity
    sim.run(until=1.1)
    assert executor.completed <= 1101
    assert executor.completed >= 990
    assert executor.rejected > 0


def test_executor_validates_parameters():
    sim = Simulator()
    core = CpuCore(sim, 0)
    with pytest.raises(ValueError):
        Executor(sim, core, "x", queue_limit=0)
    executor = Executor(sim, core, "x")
    with pytest.raises(ValueError):
        executor.submit(-1, lambda: None)


def test_core_validates_clock():
    with pytest.raises(ValueError):
        CpuCore(Simulator(), 0, clock_hz=0)
