"""Unit tests for the SR-IOV extended capability."""

import pytest

from repro.hw.pcie import ConfigSpace, SriovCapability
from repro.hw.pcie.topology import make_rid


def make_capability(total_vfs=8):
    config = ConfigSpace(vendor_id=0x8086, device_id=0x10C9)
    return SriovCapability(config, total_vfs=total_vfs, vf_device_id=0x10CA)


def test_initial_state():
    cap = make_capability()
    assert cap.total_vfs == 8
    assert cap.num_vfs == 0
    assert not cap.vf_enabled
    assert cap.vf_device_id == 0x10CA


def test_enable_flow():
    cap = make_capability()
    cap.num_vfs = 7
    cap.enable_vfs()
    assert cap.vf_enabled
    cap.disable_vfs()
    assert not cap.vf_enabled


def test_cannot_enable_zero_vfs():
    cap = make_capability()
    with pytest.raises(RuntimeError):
        cap.enable_vfs()


def test_num_vfs_locked_while_enabled():
    cap = make_capability()
    cap.num_vfs = 4
    cap.enable_vfs()
    with pytest.raises(RuntimeError):
        cap.num_vfs = 2


def test_num_vfs_bounded_by_total():
    cap = make_capability(total_vfs=8)
    with pytest.raises(ValueError):
        cap.num_vfs = 9
    with pytest.raises(ValueError):
        cap.num_vfs = -1


def test_vf_rid_arithmetic():
    """VF i answers at PF_RID + offset + i*stride (SR-IOV spec)."""
    cap = make_capability()
    pf_rid = make_rid(bus=1, device=0, function=0)  # 0x0100
    assert cap.vf_rid(pf_rid, 0) == 0x0100 + 0x80
    assert cap.vf_rid(pf_rid, 1) == 0x0100 + 0x80 + 2
    assert cap.vf_rid(pf_rid, 6) == 0x0100 + 0x80 + 12


def test_vf_rids_unique_across_vfs():
    cap = make_capability()
    cap.num_vfs = 7
    rids = cap.vf_rids(pf_rid=0x0100)
    assert len(rids) == 7
    assert len(set(rids)) == 7


def test_vf_rid_index_bounds():
    cap = make_capability(total_vfs=4)
    with pytest.raises(IndexError):
        cap.vf_rid(0x0100, 4)
    with pytest.raises(IndexError):
        cap.vf_rid(0x0100, -1)


def test_constructor_validation():
    config = ConfigSpace(0x8086, 0x10C9)
    with pytest.raises(ValueError):
        SriovCapability(config, total_vfs=0, vf_device_id=0x10CA)
    config2 = ConfigSpace(0x8086, 0x10C9)
    with pytest.raises(ValueError):
        SriovCapability(config2, total_vfs=8, vf_device_id=0x10CA, vf_stride=0)


def test_capability_discoverable_in_config_space():
    config = ConfigSpace(0x8086, 0x10C9)
    cap = SriovCapability(config, total_vfs=8, vf_device_id=0x10CA)
    from repro.hw.pcie import EXT_CAP_ID_SRIOV
    assert config.find_extended_capability(EXT_CAP_ID_SRIOV) == cap.offset
