"""Unit tests for IOMMU translation and protection."""

import pytest

from repro.hw import Iommu, IommuFault, IoPageTable, PAGE_SIZE


def test_translate_mapped_page():
    iommu = Iommu()
    table = IoPageTable(domain_id=1)
    table.map(guest_addr=0x1000, machine_addr=0x80000)
    iommu.attach(rid=0x100, table=table)
    assert iommu.translate(0x100, 0x1000) == 0x80000
    assert iommu.translate(0x100, 0x1abc) == 0x80abc  # offset preserved
    assert iommu.translations == 2


def test_multi_page_mapping():
    table = IoPageTable(domain_id=1)
    table.map(0x0, 0x100000, size=4 * PAGE_SIZE)
    assert table.mapped_pages == 4
    assert table.lookup(0x3000) == (0x103000, True)


def test_unmapped_address_faults():
    iommu = Iommu()
    table = IoPageTable(domain_id=1)
    iommu.attach(0x100, table)
    with pytest.raises(IommuFault) as excinfo:
        iommu.translate(0x100, 0x5000)
    assert "not mapped" in str(excinfo.value)
    assert iommu.faults == 1


def test_unknown_requester_faults():
    iommu = Iommu()
    with pytest.raises(IommuFault) as excinfo:
        iommu.translate(0x999, 0x1000)
    assert "no context entry" in str(excinfo.value)


def test_write_to_readonly_page_faults():
    iommu = Iommu()
    table = IoPageTable(domain_id=1)
    table.map(0x1000, 0x80000, writable=False)
    iommu.attach(0x100, table)
    assert iommu.translate(0x100, 0x1000, write=False) == 0x80000
    with pytest.raises(IommuFault):
        iommu.translate(0x100, 0x1000, write=True)


def test_isolation_between_requesters():
    """Two VFs with different RIDs see only their own VM's mappings —
    the protection property SR-IOV inherits from Direct I/O."""
    iommu = Iommu()
    vm1 = IoPageTable(domain_id=1)
    vm1.map(0x1000, 0xA0000)
    vm2 = IoPageTable(domain_id=2)
    vm2.map(0x1000, 0xB0000)
    iommu.attach(0x100, vm1)
    iommu.attach(0x102, vm2)
    assert iommu.translate(0x100, 0x1000) == 0xA0000
    assert iommu.translate(0x102, 0x1000) == 0xB0000
    # VM1's VF cannot reach VM2-only addresses.
    vm2.map(0x9000, 0xC0000)
    with pytest.raises(IommuFault):
        iommu.translate(0x100, 0x9000)


def test_detach_revokes_access():
    iommu = Iommu()
    table = IoPageTable(domain_id=1)
    table.map(0x1000, 0x80000)
    iommu.attach(0x100, table)
    iommu.detach(0x100)
    with pytest.raises(IommuFault):
        iommu.translate(0x100, 0x1000)


def test_unmap_removes_translation():
    table = IoPageTable(domain_id=1)
    table.map(0x1000, 0x80000, size=2 * PAGE_SIZE)
    table.unmap(0x1000)
    assert table.lookup(0x1000) is None
    assert table.lookup(0x2000) is not None


def test_alignment_enforced():
    table = IoPageTable(domain_id=1)
    with pytest.raises(ValueError):
        table.map(0x1001, 0x80000)
    with pytest.raises(ValueError):
        table.map(0x1000, 0x80001)
    with pytest.raises(ValueError):
        table.map(0x1000, 0x80000, size=100)
    with pytest.raises(ValueError):
        table.unmap(0x1, size=PAGE_SIZE)


def test_remap_overwrites():
    table = IoPageTable(domain_id=1)
    table.map(0x1000, 0x80000)
    table.map(0x1000, 0x90000)
    assert table.lookup(0x1000) == (0x90000, True)


def test_context_for_lookup():
    iommu = Iommu()
    table = IoPageTable(domain_id=7)
    iommu.attach(0x42, table)
    assert iommu.context_for(0x42) is table
    assert iommu.context_for(0x43) is None
