"""Unit tests for the generic register file."""

import pytest

from repro.hw.registers import RegisterError, RegisterFile


def test_define_read_write_roundtrip():
    regs = RegisterFile("test")
    regs.define("CTRL", 0x0, reset_value=0x1234)
    assert regs.read(0x0) == 0x1234
    regs.write(0x0, 0xDEADBEEF)
    assert regs.read_by_name("CTRL") == 0xDEADBEEF


def test_values_masked_to_32_bits():
    regs = RegisterFile()
    regs.define("X", 0x0)
    regs.write(0x0, 0x1_FFFF_FFFF)
    assert regs.read(0x0) == 0xFFFF_FFFF


def test_alignment_and_duplicates_rejected():
    regs = RegisterFile()
    with pytest.raises(RegisterError):
        regs.define("BAD", 0x2)
    regs.define("A", 0x0)
    with pytest.raises(RegisterError):
        regs.define("B", 0x0)
    with pytest.raises(RegisterError):
        regs.define("A", 0x4)


def test_undefined_access_rejected():
    regs = RegisterFile()
    with pytest.raises(RegisterError):
        regs.read(0x100)
    with pytest.raises(RegisterError):
        regs.write(0x100, 0)
    with pytest.raises(RegisterError):
        regs.read_by_name("NOPE")


def test_read_only_enforced_for_software_not_hardware():
    regs = RegisterFile()
    regs.define("STATUS", 0x8, read_only=True)
    with pytest.raises(RegisterError):
        regs.write(0x8, 1)
    regs.poke("STATUS", 0x2)  # the device itself may update it
    assert regs.read(0x8) == 0x2


def test_write_hook_sees_old_and_new():
    regs = RegisterFile()
    seen = []
    regs.define("CTRL", 0x0, reset_value=5,
                on_write=lambda old, new: seen.append((old, new)))
    regs.write(0x0, 9)
    assert seen == [(5, 9)]


def test_dynamic_read_hook():
    regs = RegisterFile()
    state = {"link": True}
    regs.define("STATUS", 0x8, read_only=True,
                on_read=lambda: 2 if state["link"] else 0)
    assert regs.read(0x8) == 2
    state["link"] = False
    assert regs.read(0x8) == 0


def test_reset_restores_reset_values():
    regs = RegisterFile()
    regs.define("A", 0x0, reset_value=7)
    regs.write(0x0, 99)
    regs.reset()
    assert regs.read(0x0) == 7


def test_registers_listing_and_stats():
    regs = RegisterFile()
    regs.define("B", 0x4)
    regs.define("A", 0x0)
    assert [name for name, _, _ in regs.registers()] == ["A", "B"]
    regs.read(0x0)
    regs.write(0x4, 1)
    assert regs.reads == 1
    assert regs.writes == 1
