"""Unit tests for the LAPIC IRR/ISR state machine."""

import pytest

from repro.hw import Lapic, LapicError


def test_fire_sets_irr():
    lapic = Lapic()
    lapic.fire(0x40)
    assert lapic.irr_contains(0x40)
    assert not lapic.isr_contains(0x40)


def test_ack_moves_irr_to_isr():
    lapic = Lapic()
    lapic.fire(0x40)
    assert lapic.ack() == 0x40
    assert not lapic.irr_contains(0x40)
    assert lapic.isr_contains(0x40)


def test_eoi_retires_in_service_vector():
    lapic = Lapic()
    lapic.fire(0x40)
    lapic.ack()
    assert lapic.eoi() == 0x40
    assert lapic.in_service is None


def test_highest_priority_vector_delivered_first():
    lapic = Lapic()
    lapic.fire(0x40)
    lapic.fire(0x80)
    lapic.fire(0x60)
    assert lapic.ack() == 0x80


def test_lower_priority_blocked_while_higher_in_service():
    lapic = Lapic()
    lapic.fire(0x80)
    lapic.ack()
    lapic.fire(0x40)
    assert not lapic.interrupt_window_open
    with pytest.raises(LapicError):
        lapic.ack()
    lapic.eoi()
    assert lapic.interrupt_window_open
    assert lapic.ack() == 0x40


def test_higher_priority_preempts_lower_in_service():
    lapic = Lapic()
    lapic.fire(0x40)
    lapic.ack()
    lapic.fire(0x80)
    assert lapic.interrupt_window_open
    assert lapic.ack() == 0x80
    # Nested EOIs retire in priority order.
    assert lapic.eoi() == 0x80
    assert lapic.eoi() == 0x40


def test_same_priority_class_does_not_preempt():
    lapic = Lapic()
    lapic.fire(0x41)
    lapic.ack()
    lapic.fire(0x42)  # same class 0x4x
    assert not lapic.interrupt_window_open


def test_tpr_masks_low_priority_vectors():
    lapic = Lapic()
    lapic.tpr = 0x50
    lapic.fire(0x45)
    assert lapic.highest_pending is None
    lapic.fire(0x65)
    assert lapic.highest_pending == 0x65


def test_spurious_eoi_counted_not_fatal():
    lapic = Lapic()
    assert lapic.eoi() is None
    assert lapic.spurious_eois == 1


def test_reserved_vectors_rejected():
    lapic = Lapic()
    for vector in [0, 31, 256, -1]:
        with pytest.raises(LapicError):
            lapic.fire(vector)


def test_ack_without_pending_raises():
    with pytest.raises(LapicError):
        Lapic().ack()


def test_duplicate_fire_collapses():
    """IRR is a bitmap: firing the same vector twice delivers once."""
    lapic = Lapic()
    lapic.fire(0x40)
    lapic.fire(0x40)
    lapic.ack()
    lapic.eoi()
    assert lapic.highest_pending is None


def test_reset_clears_state():
    lapic = Lapic()
    lapic.fire(0x40)
    lapic.ack()
    lapic.fire(0x50)
    lapic.tpr = 0x30
    lapic.reset()
    assert lapic.pending_vectors() == []
    assert lapic.in_service_vectors() == []
    assert lapic.tpr == 0
