"""Unit tests for the PCIe DMA data path."""

import pytest

from repro.hw.pcie import PcieDataPath
from repro.sim import Simulator


def test_transfer_time_scales_with_size():
    path = PcieDataPath(Simulator(), effective_bps=1e9)
    assert path.transfer_time(125) == pytest.approx(1e-6)
    assert path.transfer_time(0) == 0.0
    with pytest.raises(ValueError):
        path.transfer_time(-1)


def test_transfers_serialize():
    sim = Simulator()
    path = PcieDataPath(sim, effective_bps=1e9)
    first = path.transfer(125_000)   # 1 ms
    second = path.transfer(125_000)  # queued behind
    assert first == pytest.approx(1e-3)
    assert second == pytest.approx(2e-3)
    assert path.backlog_seconds == pytest.approx(2e-3)


def test_completion_callback_fires_at_finish():
    sim = Simulator()
    path = PcieDataPath(sim, effective_bps=1e9)
    done = []
    path.transfer(125_000, lambda: done.append(sim.now))
    sim.run()
    assert done == [pytest.approx(1e-3)]


def test_throughput_cap_with_double_crossing():
    """The Fig. 13 ceiling: each inter-VM byte crosses twice, halving
    the effective 5.6 Gb/s pipe to 2.8 Gb/s."""
    path = PcieDataPath(Simulator())
    assert path.throughput_cap_bps(crossings=2) == pytest.approx(2.8e9)
    with pytest.raises(ValueError):
        path.throughput_cap_bps(0)


def test_utilization():
    sim = Simulator()
    path = PcieDataPath(sim, effective_bps=1e9)
    path.transfer(62_500)  # 0.5 ms of a 1 ms window
    sim.run(until=1e-3)
    assert path.utilization(1e-3) == pytest.approx(0.5)
    assert path.utilization(0) == 0.0


def test_bandwidth_validated():
    with pytest.raises(ValueError):
        PcieDataPath(Simulator(), effective_bps=0)
