"""Unit tests for descriptor rings."""

import pytest

from repro.hw import DescriptorRing, RingFullError
from repro.net import Packet
from repro.net.mac import MacAddress

SRC = MacAddress(0x020000000001)
DST = MacAddress(0x020000000002)


def test_ring_size_must_be_power_of_two():
    for bad in [0, 1, 3, 100]:
        with pytest.raises(ValueError):
            DescriptorRing(bad)
    DescriptorRing(2)
    DescriptorRing(1024)


def test_post_advances_tail():
    ring = DescriptorRing(8)
    index = ring.post(buffer_addr=0x1000, buffer_len=2048)
    assert index == 0
    assert ring.tail == 1
    assert ring.device_owned == 1


def test_one_slot_always_reserved():
    ring = DescriptorRing(4)
    for i in range(3):
        ring.post(0x1000 * i, 2048)
    assert ring.full
    with pytest.raises(RingFullError):
        ring.post(0x9000, 2048)


def test_device_consume_advances_head_and_sets_done():
    ring = DescriptorRing(8)
    ring.post(0x1000, 2048)
    packet = Packet(src=SRC, dst=DST)
    slot = ring.consume(packet)
    assert slot is not None
    assert slot.done
    assert slot.packet is packet
    assert ring.head == 1
    assert ring.device_owned == 0


def test_consume_empty_ring_returns_none():
    assert DescriptorRing(8).consume() is None


def test_reap_returns_completed_in_order():
    ring = DescriptorRing(8)
    for i in range(4):
        ring.post(0x1000 * i, 2048)
    ring.consume()
    ring.consume()
    reaped = ring.reap()
    assert len(reaped) == 2
    assert [d.buffer_addr for d in reaped] == [0x0, 0x1000]
    # Second reap finds nothing new.
    assert ring.reap() == []


def test_reap_respects_limit():
    ring = DescriptorRing(8)
    for i in range(5):
        ring.post(0x1000 * i, 2048)
    for _ in range(5):
        ring.consume()
    assert len(ring.reap(limit=2)) == 2
    assert len(ring.reap()) == 3


def test_reap_stops_at_first_incomplete():
    ring = DescriptorRing(8)
    ring.post(0x0, 2048)
    ring.post(0x1000, 2048)
    ring.consume()  # completes only slot 0
    assert len(ring.reap()) == 1


def test_wraparound():
    ring = DescriptorRing(4)
    for round_ in range(5):
        for _ in range(3):
            ring.post(0x1000, 2048)
        for _ in range(3):
            assert ring.consume() is not None
        assert len(ring.reap()) == 3
    assert ring.posted == 15
    assert ring.completed == 15


def test_free_accounting():
    ring = DescriptorRing(8)
    assert ring.free == 7
    ring.post(0x1000, 2048)
    assert ring.free == 6
    ring.consume()
    # Completion does not free the slot until reaped... but in this model
    # free tracks device_owned, so consuming returns it to software.
    assert ring.free == 7


def test_reset_restores_pristine_state():
    ring = DescriptorRing(8)
    for i in range(3):
        ring.post(0x1000 * i, 2048)
    ring.consume()
    ring.reset()
    assert ring.empty
    assert ring.free == 7
    assert ring.reap() == []
