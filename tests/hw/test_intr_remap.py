"""Unit tests for VT-d interrupt remapping."""

import pytest

from repro.hw.intr_remap import InterruptRemapFault, InterruptRemapper
from repro.hw.msi import MsiMessage


def message(vector):
    return MsiMessage(0xFEE00000, vector)


def test_programmed_vector_remaps():
    remapper = InterruptRemapper()
    remapper.program(source_rid=0x180, vector=0x40)
    entry = remapper.remap(0x180, message(0x40))
    assert entry.vector == 0x40
    assert remapper.remapped == 1


def test_unprogrammed_vector_faults():
    remapper = InterruptRemapper()
    remapper.program(0x180, 0x40)
    with pytest.raises(InterruptRemapFault):
        remapper.remap(0x180, message(0x41))
    assert remapper.faults == 1


def test_spoofing_other_functions_vector_faults():
    """The anti-spoof property: VF A cannot raise VF B's vector."""
    remapper = InterruptRemapper()
    remapper.program(0x180, 0x40)  # VF A
    remapper.program(0x182, 0x41)  # VF B
    with pytest.raises(InterruptRemapFault):
        remapper.remap(0x180, message(0x41))
    remapper.remap(0x182, message(0x41))  # B itself is fine


def test_revoke_single_entry():
    remapper = InterruptRemapper()
    remapper.program(0x180, 0x40)
    remapper.revoke(0x180, 0x40)
    with pytest.raises(InterruptRemapFault):
        remapper.remap(0x180, message(0x40))


def test_revoke_all_for_function():
    remapper = InterruptRemapper()
    remapper.program(0x180, 0x40)
    remapper.program(0x180, 0x41)
    remapper.program(0x182, 0x42)
    assert remapper.revoke_all_for(0x180) == 2
    assert remapper.entries_for(0x180) == 0
    assert remapper.entries_for(0x182) == 1
    assert remapper.entry_count == 1


def test_revoke_is_idempotent():
    remapper = InterruptRemapper()
    remapper.revoke(0x999, 0x40)  # nothing to remove, no error
