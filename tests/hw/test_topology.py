"""Unit tests for PCIe topology, enumeration, and ACS routing."""

import pytest

from repro.hw import Iommu, IoPageTable
from repro.hw.pcie import (
    AcsViolation,
    ConfigSpace,
    PciFunction,
    RootComplex,
    Switch,
    format_rid,
    make_rid,
)
from repro.hw.pcie.config_space import INVALID_VENDOR_ID


def make_function(name="fn", responds=True):
    return PciFunction(ConfigSpace(0x8086, 0x10C9), responds_to_scan=responds,
                       name=name)


def test_rid_encoding_and_format():
    rid = make_rid(bus=3, device=2, function=1)
    assert rid == (3 << 8) | (2 << 3) | 1
    assert format_rid(rid) == "03:02.1"
    with pytest.raises(ValueError):
        make_rid(256, 0, 0)
    with pytest.raises(ValueError):
        make_rid(0, 32, 0)
    with pytest.raises(ValueError):
        make_rid(0, 0, 8)


def test_scan_finds_only_responding_functions():
    """VFs do not answer vendor-ID probes (paper §4.1)."""
    rc = RootComplex()
    pf = make_function("pf", responds=True)
    vf = make_function("vf", responds=False)
    rc.attach(pf, bus=1, device=0)
    rc.attach_at_rid(vf, 0x0180)
    found = rc.scan()
    assert found == [pf]
    assert rc.probe(0x0180) == INVALID_VENDOR_ID


def test_duplicate_rid_rejected():
    rc = RootComplex()
    rc.attach(make_function(), bus=1, device=0)
    with pytest.raises(ValueError):
        rc.attach(make_function(), bus=1, device=0)


def test_hot_add_surfaces_vf():
    rc = RootComplex()
    vf = make_function("vf", responds=False)
    rc.hot_add(vf, 0x0180)
    assert rc.function_at(0x0180) is vf
    assert rc.hot_added == [0x0180]


def test_detach_frees_rid():
    rc = RootComplex()
    fn = make_function()
    rc.attach(fn, bus=1, device=0)
    rc.detach(fn)
    assert fn.rid is None
    rc.attach(make_function(), bus=1, device=0)  # RID reusable


def build_p2p_scene(acs_on):
    """Two VFs under one switch; attacker tries peer MMIO."""
    iommu = Iommu()
    rc = RootComplex(iommu)
    switch = Switch(port_count=2)
    rc.add_switch(switch)
    attacker = make_function("vf-attacker", responds=False)
    victim = make_function("vf-victim", responds=False)
    rc.attach_at_rid(attacker, 0x0180)
    rc.attach_at_rid(victim, 0x0182)
    switch.ports[0].attach(attacker)
    switch.ports[1].attach(victim)
    victim.map_mmio(base=0xF0000000, size=0x4000)
    # Attacker's VM has a legitimate DMA mapping of its own.
    table = IoPageTable(domain_id=1)
    table.map(0x1000, 0x80000)
    iommu.attach(0x0180, table)
    if acs_on:
        switch.enable_acs_redirect()
    return rc, attacker, victim


def test_p2p_without_acs_is_the_security_hole():
    rc, attacker, victim = build_p2p_scene(acs_on=False)
    route = rc.memory_write(attacker, 0xF0001000)
    assert route == "direct-p2p"
    assert victim.mmio_writes_received == 1
    assert rc.p2p_direct_routed == 1


def test_acs_redirect_blocks_p2p():
    """With ACS upstream redirect, the peer write is forced through the
    root complex and rejected (paper §4.3)."""
    rc, attacker, victim = build_p2p_scene(acs_on=True)
    with pytest.raises(AcsViolation):
        rc.memory_write(attacker, 0xF0001000)
    assert victim.mmio_writes_received == 0
    assert rc.p2p_redirected == 1


def test_legitimate_dma_unaffected_by_acs():
    rc, attacker, _ = build_p2p_scene(acs_on=True)
    assert rc.memory_write(attacker, 0x1000) == "upstream"


def test_dma_without_mapping_faults_through_iommu():
    from repro.hw import IommuFault
    rc, attacker, _ = build_p2p_scene(acs_on=True)
    with pytest.raises(IommuFault):
        rc.memory_write(attacker, 0xDEAD000)


def test_unattached_source_rejected():
    rc = RootComplex()
    with pytest.raises(RuntimeError):
        rc.memory_write(make_function(), 0x1000)


def test_mmio_window_bounds():
    fn = make_function()
    fn.map_mmio(0x1000, 0x100)
    assert fn.owns_address(0x1000)
    assert fn.owns_address(0x10FF)
    assert not fn.owns_address(0x1100)
    with pytest.raises(ValueError):
        fn.map_mmio(0x0, 0)


def test_switch_requires_ports():
    with pytest.raises(ValueError):
        Switch(port_count=0)
