"""Unit tests for MSI-X mask/pending semantics."""

import pytest

from repro.hw import MsiMessage, MsixCapability


def make_capability(size=4):
    delivered = []
    capability = MsixCapability(size, delivered.append)
    for i in range(size):
        capability.configure(i, MsiMessage(address=0xFEE00000, data=0x40 + i))
        capability.unmask(i)
    return capability, delivered


def test_entries_come_up_masked():
    capability = MsixCapability(2)
    assert capability.is_masked(0)
    assert capability.is_masked(1)


def test_raise_unmasked_delivers_message():
    capability, delivered = make_capability()
    assert capability.raise_vector(0) is True
    assert delivered == [MsiMessage(address=0xFEE00000, data=0x40)]


def test_vector_encoded_in_data_low_byte():
    message = MsiMessage(address=0xFEE00000, data=0x12345)
    assert message.vector == 0x45


def test_raise_masked_sets_pending():
    capability, delivered = make_capability()
    capability.mask(1)
    assert capability.raise_vector(1) is False
    assert delivered == []
    assert capability.is_pending(1)


def test_unmask_flushes_pending():
    capability, delivered = make_capability()
    capability.mask(0)
    capability.raise_vector(0)
    capability.unmask(0)
    assert len(delivered) == 1
    assert not capability.is_pending(0)


def test_pending_collapses_multiple_raises():
    capability, delivered = make_capability()
    capability.mask(0)
    capability.raise_vector(0)
    capability.raise_vector(0)
    capability.unmask(0)
    assert len(delivered) == 1


def test_mask_unmask_writes_counted():
    """§5.1's optimization is about who emulates these writes — they
    must be observable."""
    capability, _ = make_capability()
    baseline = capability.unmask_writes
    capability.mask(0)
    capability.unmask(0)
    capability.mask(0)
    assert capability.mask_writes >= 2
    assert capability.unmask_writes == baseline + 1


def test_unconfigured_entry_raise_fails():
    capability = MsixCapability(1, lambda message: None)
    capability.unmask(0)
    with pytest.raises(RuntimeError):
        capability.raise_vector(0)


def test_no_fabric_fails():
    capability = MsixCapability(1)
    capability.configure(0, MsiMessage(0xFEE00000, 0x40))
    capability.unmask(0)
    with pytest.raises(RuntimeError):
        capability.raise_vector(0)


def test_out_of_range_index_rejected():
    capability, _ = make_capability(2)
    with pytest.raises(IndexError):
        capability.mask(2)
    with pytest.raises(IndexError):
        capability.raise_vector(-1)


def test_table_size_validated():
    with pytest.raises(ValueError):
        MsixCapability(0)
    with pytest.raises(ValueError):
        MsixCapability(4096)


def test_pending_vectors_listing():
    capability, _ = make_capability(4)
    capability.mask(1)
    capability.mask(3)
    capability.raise_vector(1)
    capability.raise_vector(3)
    assert capability.pending_vectors() == [1, 3]
