"""Live-traffic migration integration tests (the Figs. 20-21 mechanism,
at reduced scale for test speed)."""

import pytest

from repro.core import Testbed, TestbedConfig
from repro.drivers.netfront import Netfront
from repro.migration import (
    DnisGuest,
    MigrationManager,
    PrecopyConfig,
    Sampler,
    downtime_windows,
)
from repro.net import NetperfStream, udp_goodput_bps
from repro.net.mac import MacAddress
from repro.vmm import DomainKind

FAST = PrecopyConfig(memory_bytes=128 * 1024 * 1024, dirty_ratio=0.2,
                     min_round_bytes=16 * 1024 * 1024, restore_overhead=0.4)
CLIENT = MacAddress.parse("02:00:00:00:99:99")


def run_pv_migration():
    bed = Testbed(TestbedConfig(ports=1))
    pv = bed.add_pv_guest(DomainKind.HVM)
    stream = bed.attach_client_to_pv(pv, udp_goodput_bps(1e9))
    stream.start()
    manager = MigrationManager(bed.platform, bed.hotplug, FAST)
    sampler = Sampler(bed.sim, period=0.1)
    sampler.track("rx_bytes", lambda: pv.app.rx_bytes)
    sampler.start()
    _, report = manager.migrate_pv(pv.netfront, start_at=1.0)
    bed.sim.run(until=1.0 + manager.model.total_time + 1.5)
    return bed, pv, manager, sampler, report


def test_pv_migration_single_outage_at_stop_and_copy():
    bed, pv, manager, sampler, report = run_pv_migration()
    steady = udp_goodput_bps(1e9) / 8 * 0.1  # bytes per bucket
    windows = downtime_windows(sampler.series("rx_bytes"), steady * 0.5,
                               min_duration=0.15)
    assert len(windows) == 1
    start, end = windows[0]
    assert start == pytest.approx(report.blackout_start, abs=0.2)
    assert end == pytest.approx(report.blackout_end, abs=0.2)


def test_pv_service_flows_during_precopy():
    bed, pv, manager, sampler, report = run_pv_migration()
    series = sampler.series("rx_bytes")
    # Mid-precopy bucket carries full traffic.
    mid = (report.started_at + report.blackout_start) / 2
    steady = udp_goodput_bps(1e9) / 8 * 0.1
    assert series.value_at(mid) == pytest.approx(steady, rel=0.25)


def build_dnis_bed():
    bed = Testbed(TestbedConfig(ports=1))
    sriov = bed.add_sriov_guest(DomainKind.HVM)
    netfront = Netfront(bed.platform, sriov.domain, app=sriov.app)
    bed.netback.connect(netfront)
    guest = DnisGuest(bed.platform, sriov.domain, sriov.driver, netfront,
                      bed.hotplug)
    stream = NetperfStream(bed.sim, guest.wire_sink, CLIENT,
                           sriov.vf.mac, udp_goodput_bps(1e9),
                           name="client")
    stream.start()
    manager = MigrationManager(bed.platform, bed.hotplug, FAST)
    sampler = Sampler(bed.sim, period=0.1)
    sampler.track("rx_bytes", lambda: sriov.app.rx_bytes)
    sampler.start()
    return bed, sriov, guest, manager, sampler


def test_dnis_migration_two_outages():
    """Fig. 21's signature: a short outage at the interface switch,
    then the stop-and-copy blackout."""
    bed, sriov, guest, manager, sampler = build_dnis_bed()
    _, report = manager.migrate_dnis(guest, start_at=1.0)
    bed.sim.run(until=1.0 + 2.0 + manager.model.total_time + 2.0)
    steady = udp_goodput_bps(1e9) / 8 * 0.1
    windows = downtime_windows(sampler.series("rx_bytes"), steady * 0.5,
                               min_duration=0.15)
    assert len(windows) == 2
    switch_window, blackout_window = windows
    # First outage ~ eject latency + 0.6 s switch loss, near the start.
    assert switch_window[0] == pytest.approx(1.0, abs=0.3)
    assert 0.4 < switch_window[1] - switch_window[0] < 1.2
    # Second outage matches the model's blackout.
    assert blackout_window[1] - blackout_window[0] == pytest.approx(
        manager.model.downtime, abs=0.3)
    assert guest.dropped_at_switch > 0


def test_dnis_restores_vf_performance_after_migration():
    bed, sriov, guest, manager, sampler = build_dnis_bed()
    _, report = manager.migrate_dnis(guest, start_at=1.0)
    horizon = 1.0 + 2.0 + manager.model.total_time + 2.0
    bed.sim.run(until=horizon)
    assert guest.active_path == "vf0"
    # Traffic is flowing again at full rate at the end.
    series = sampler.series("rx_bytes")
    steady = udp_goodput_bps(1e9) / 8 * 0.1
    assert series.values[-1] == pytest.approx(steady, rel=0.25)


def test_dnis_uses_pv_path_between_switch_and_blackout():
    bed, sriov, guest, manager, sampler = build_dnis_bed()
    _, report = manager.migrate_dnis(guest, start_at=1.0)
    bed.sim.run(until=1.0 + 2.0 + manager.model.total_time + 2.0)
    # During pre-copy dom0 carried the copies: netback saw traffic.
    assert bed.netback.delivered_packets > 0
    assert guest.netfront.rx_packets > 0
