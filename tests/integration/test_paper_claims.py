"""Small-scale checks of the paper's headline claims.

Each test is a miniature of one evaluation figure: same mechanism, fewer
VMs and shorter windows so the suite stays fast.  The full-scale
reproductions live in benchmarks/.
"""

import pytest

from repro.core import ExperimentRunner, OptimizationConfig
from repro.net.packet import Protocol
from repro.vmm import DomainKind, GuestKernel

RUNNER = ExperimentRunner(warmup=0.3, duration=0.3)
AIC_RUNNER = ExperimentRunner(warmup=2.2, duration=0.5)


class TestMsiAcceleration:
    """§5.1 / Fig. 6."""

    def test_2618_guest_burns_dom0_without_acceleration(self):
        base = RUNNER.run_sriov(2, ports=1, kernel=GuestKernel.LINUX_2_6_18,
                                opts=OptimizationConfig.none(),
                                policy={"kind": "dynamic_itr"})
        assert base.cpu["dom0"] > 10

    def test_acceleration_collapses_dom0_to_floor(self):
        accel = RUNNER.run_sriov(2, ports=1, kernel=GuestKernel.LINUX_2_6_18,
                                 opts=OptimizationConfig(msi_acceleration=True),
                                 policy={"kind": "dynamic_itr"})
        assert accel.cpu["dom0"] < 4  # the paper's ~3%

    def test_acceleration_also_helps_guest_and_xen(self):
        """§6.2: 'the guest also contributes 16% and Xen an additional
        48%, as a result of TLB and cache pollution mitigation.'"""
        base = RUNNER.run_sriov(2, ports=1, kernel=GuestKernel.LINUX_2_6_18,
                                opts=OptimizationConfig.none(),
                                policy={"kind": "dynamic_itr"})
        accel = RUNNER.run_sriov(2, ports=1, kernel=GuestKernel.LINUX_2_6_18,
                                 opts=OptimizationConfig(msi_acceleration=True),
                                 policy={"kind": "dynamic_itr"})
        assert accel.cpu["guest"] < base.cpu["guest"]
        assert accel.cpu["xen"] < base.cpu["xen"]


class TestEoiAcceleration:
    """§5.2 / Fig. 7."""

    def run(self, opts):
        return RUNNER.run_sriov(1, ports=1, opts=opts,
                                policy={"kind": "dynamic_itr"})

    def test_apic_access_dominates_virtualization_overhead(self):
        result = self.run(OptimizationConfig.none())
        apic = (result.exit_cycles_per_second.get("apic-access-eoi", 0)
                + result.exit_cycles_per_second.get("apic-access-other", 0))
        total = sum(result.exit_cycles_per_second.values())
        assert apic / total > 0.8  # the paper reports 90%

    def test_eoi_share_of_apic_exits_near_47_percent(self):
        result = self.run(OptimizationConfig.none())
        eoi = result.exit_counts["apic-access-eoi"]
        other = result.exit_counts["apic-access-other"]
        assert eoi / (eoi + other) == pytest.approx(0.47, abs=0.02)

    def test_acceleration_cuts_total_exit_cycles(self):
        base = self.run(OptimizationConfig.none())
        accel = self.run(OptimizationConfig(eoi_acceleration=True))
        base_total = sum(base.exit_cycles_per_second.values())
        accel_total = sum(accel.exit_cycles_per_second.values())
        reduction = 1 - accel_total / base_total
        # Paper: 154M -> 111M cycles/s, a 28% reduction.
        assert 0.15 < reduction < 0.45


class TestAdaptiveCoalescing:
    """§5.3 / Figs. 8-9."""

    def test_throughput_maintained_across_policies(self):
        for policy in [{"kind": "fixed_itr", "hz": 20000},
                       {"kind": "fixed_itr", "hz": 2000}, {"kind": "aic"}]:
            result = AIC_RUNNER.run_sriov(1, ports=1, policy=policy)
            assert result.throughput_gbps == pytest.approx(0.957, rel=0.02)

    def test_cpu_falls_as_interrupt_rate_falls(self):
        at_20k = AIC_RUNNER.run_sriov(1, ports=1,
                                      policy={"kind": "fixed_itr", "hz": 20000})
        at_2k = AIC_RUNNER.run_sriov(1, ports=1,
                                     policy={"kind": "fixed_itr", "hz": 2000})
        aic = AIC_RUNNER.run_sriov(1, ports=1,
                                   policy={"kind": "aic"})
        assert at_20k.total_cpu_percent > at_2k.total_cpu_percent
        assert aic.total_cpu_percent <= at_2k.total_cpu_percent + 0.2

    def test_tcp_drops_at_1khz_but_not_2khz(self):
        """Fig. 9's latency-sensitivity crossover."""
        at_2k = AIC_RUNNER.run_sriov(1, ports=1, protocol=Protocol.TCP,
                                     policy={"kind": "fixed_itr", "hz": 2000})
        at_1k = AIC_RUNNER.run_sriov(1, ports=1, protocol=Protocol.TCP,
                                     policy={"kind": "fixed_itr", "hz": 1000})
        drop = 1 - at_1k.throughput_bps / at_2k.throughput_bps
        assert 0.04 < drop < 0.15  # paper: 9.6%


class TestPvmVsHvm:
    """§6.4 / Figs. 15-16."""

    def test_pvm_interrupt_path_cheaper_at_scale(self):
        hvm = RUNNER.run_sriov(4, ports=2, kind=DomainKind.HVM)
        pvm = RUNNER.run_sriov(4, ports=2, kind=DomainKind.PVM)
        hvm_virt = hvm.cpu["xen"]
        pvm_virt = pvm.cpu["xen"]
        assert pvm_virt < hvm_virt

    def test_both_hold_line_rate(self):
        for kind in [DomainKind.HVM, DomainKind.PVM]:
            result = RUNNER.run_sriov(4, ports=2, kind=kind)
            assert result.throughput_gbps == pytest.approx(1.914, rel=0.03)


class TestPvNicComparison:
    """§6.5 / Figs. 17-18."""

    def test_pv_burns_dom0_sriov_does_not(self):
        sriov = RUNNER.run_sriov(2, ports=1)
        pv = RUNNER.run_pv(2, ports=1)
        assert pv.cpu["dom0"] > 10 * max(sriov.cpu["dom0"], 0.1)

    def test_pv_hvm_dom0_costs_more_than_pvm(self):
        hvm = RUNNER.run_pv(2, ports=1, kind=DomainKind.HVM)
        pvm = RUNNER.run_pv(2, ports=1, kind=DomainKind.PVM)
        assert hvm.cpu["dom0"] > pvm.cpu["dom0"]

    def test_single_thread_backend_caps_throughput(self):
        multi = RUNNER.run_pv(4, ports=4)
        single = RUNNER.run_pv(4, ports=4, single_thread_backend=True)
        assert single.throughput_bps < multi.throughput_bps
        assert single.throughput_gbps < 3.3  # the stock driver's ceiling


class TestNativeBaseline:
    """Fig. 12's native bar."""

    def test_virtualization_overhead_is_modest_with_all_opts(self):
        virt = RUNNER.run_sriov(2, ports=1)
        native = RUNNER.run_native(2, ports=1)
        assert native.throughput_bps == pytest.approx(virt.throughput_bps,
                                                      rel=0.02)
        overhead = virt.total_cpu_percent - native.total_cpu_percent
        assert 0 < overhead < native.total_cpu_percent  # <2x native
