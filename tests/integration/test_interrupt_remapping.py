"""Integration tests: interrupt remapping on the full stack."""

import pytest

from repro.core import Testbed, TestbedConfig
from repro.hw.msi import MsiMessage
from repro.net import Packet
from repro.net.mac import MacAddress
from repro.vmm import DomainKind

REMOTE = MacAddress.parse("02:00:00:00:99:99")


def build():
    bed = Testbed(TestbedConfig(ports=1))
    a = bed.add_sriov_guest(DomainKind.HVM)
    b = bed.add_sriov_guest(DomainKind.HVM)
    return bed, a, b


def test_driver_binding_installs_irtes():
    bed, a, b = build()
    remapper = bed.platform.intr_remapper
    # Two vectors per VF (rx/tx + mailbox) plus the PF's one.
    assert remapper.entries_for(a.vf.pci.rid) == 2
    assert remapper.entries_for(b.vf.pci.rid) == 2
    assert remapper.entries_for(bed.ports[0].pf.pci.rid) == 1


def test_legitimate_traffic_passes_remapping():
    bed, a, b = build()
    before = bed.platform.intr_remapper.remapped
    a.port.wire_receive([Packet(src=REMOTE, dst=a.vf.mac)])
    bed.sim.run(until=0.01)
    assert a.app.rx_packets == 1
    assert bed.platform.intr_remapper.remapped > before
    assert bed.platform.blocked_interrupts == 0


def test_vf_cannot_raise_peer_vectors():
    """VF A posts VF B's vector: the remapping unit drops it and B's
    ISR never runs."""
    bed, a, b = build()
    b_interrupts_before = b.driver.interrupts_handled
    forged = MsiMessage(0xFEE00000, b.driver.rx_vector)
    bed.platform.deliver_msi(a.vf, forged)
    assert bed.platform.blocked_interrupts == 1
    assert b.driver.interrupts_handled == b_interrupts_before


def test_stale_vector_after_driver_stop_is_blocked():
    bed, a, b = build()
    vector = a.driver.rx_vector
    a.driver.stop()  # revokes the IRTEs
    assert bed.platform.intr_remapper.entries_for(a.vf.pci.rid) == 0
    bed.platform.deliver_msi(a.vf, MsiMessage(0xFEE00000, vector))
    # Permissive fallback does not apply: the RID simply has no IRTEs
    # left, and the vector was freed, so nothing is delivered.
    assert a.driver.interrupts_handled == 0 or not a.driver.running


def test_restart_reprograms_remapping():
    bed, a, b = build()
    a.driver.stop()
    a.driver.start()
    assert bed.platform.intr_remapper.entries_for(a.vf.pci.rid) == 2
    a.port.wire_receive([Packet(src=REMOTE, dst=a.vf.mac)])
    bed.sim.run(until=0.01)
    assert a.app.rx_packets == 1
