"""Integration tests for the transmit-side extension experiment."""

import pytest

from repro.core import ExperimentRunner
from repro.net import udp_goodput_bps

RUNNER = ExperimentRunner(warmup=0.3, duration=0.3)


def test_tx_reaches_line_rate():
    result = RUNNER.run_sriov_tx(2, ports=2)
    assert result.throughput_bps == pytest.approx(2 * udp_goodput_bps(1e9),
                                                  rel=0.03)
    assert result.loss_rate < 0.01


def test_tx_shares_port_line_rate():
    """Four guests on two ports: aggregate still two ports' worth."""
    result = RUNNER.run_sriov_tx(4, ports=2)
    assert result.throughput_bps == pytest.approx(2 * udp_goodput_bps(1e9),
                                                  rel=0.03)


def test_tx_charges_guests_not_dom0():
    result = RUNNER.run_sriov_tx(2, ports=2)
    assert result.cpu["guest"] > 0
    assert result.cpu["dom0"] <= 3.0  # device-model floor only
