"""§4's VMM-independence claim: the PF and VF drivers run unmodified on
a different hypervisor.

"The architecture is independent of underlying VMM, allowing Virtual
Function (VF) and Physical Function (PF) drivers to be reused across
different VMM, such as Xen and KVM.  The VF can even run in a native
environment with a PF driver, within the same OS."

The test assembles the *identical* driver stack — same classes, same
calls — against Xen, KVM, and bare metal, and verifies packets flow on
all three.
"""

import pytest

from repro.drivers import FixedItr, NetserverApp, PfDriver, VfDriver
from repro.devices import Igb82576Port
from repro.net import Packet
from repro.net.mac import MacAddress
from repro.sim import Simulator
from repro.vmm import DomainKind, Kvm, NativeHost, Xen
from repro.vmm.iovm import Iovm

REMOTE = MacAddress.parse("02:00:00:00:99:99")


def assemble_and_run(platform):
    """The §4.1 bring-up, identical for every platform."""
    service_ctx = getattr(platform, "dom0", None)
    if service_ctx is None:
        service_ctx = platform.create_guest("host")
    port = Igb82576Port(platform.sim, iommu=platform.iommu)
    platform.root_complex.attach(port.pf.pci, bus=1, device=0)
    port.interrupt_sink = platform.deliver_msi
    pf_driver = PfDriver(platform, service_ctx, port)
    pf_driver.start()
    pf_driver.enable_sriov(2)
    iovm = Iovm(platform)
    iovm.surface_vfs(port)
    guest = platform.create_guest("guest0", DomainKind.HVM)
    if not platform.is_native:
        iovm.assign(port.vf(0), guest)
    else:
        platform.iommu.attach(port.vf(0).pci.rid, guest.io_page_table)
    app = NetserverApp(platform.costs)
    vf_driver = VfDriver(platform, guest, port.vf(0), FixedItr(2000), app)
    vf_driver.start()
    port.wire_receive([Packet(src=REMOTE, dst=port.vf(0).mac)
                       for _ in range(10)])
    platform.sim.run(until=0.01)
    return app, vf_driver, pf_driver


@pytest.mark.parametrize("platform_cls", [Xen, Kvm, NativeHost],
                         ids=["xen", "kvm", "native"])
def test_same_driver_stack_runs_on_every_platform(platform_cls):
    platform = platform_cls(Simulator())
    app, vf_driver, pf_driver = assemble_and_run(platform)
    assert app.rx_packets == 10
    assert vf_driver.interrupts_handled >= 1
    # Mailbox protocol works identically everywhere (it is a hardware
    # channel, not a VMM interface — the §4.2 design point).
    vf_driver.request_vlan(42)
    assert pf_driver.vf_requests[0] == ["set_vlan"]


def test_kvm_charges_host_not_dom0_domain():
    kvm = Kvm(Simulator())
    assert kvm.host.name == "host"
    assert kvm.host is kvm.dom0  # same service-OS accounting bucket


def test_kvm_has_no_pvm_guests():
    kvm = Kvm(Simulator())
    with pytest.raises(ValueError):
        kvm.create_guest("pv", DomainKind.PVM)


def test_kvm_interrupt_path_costs_match_hvm_model():
    """KVM guests pay the same HVM virtualization costs (vLAPIC exits),
    so the Xen-calibrated model carries over."""
    xen = Xen(Simulator())
    app_xen, drv_xen, _ = assemble_and_run(xen)
    kvm = Kvm(Simulator())
    app_kvm, drv_kvm, _ = assemble_and_run(kvm)
    assert xen.machine.cycles("xen") == kvm.machine.cycles("xen")
    assert xen.machine.cycles("guest") == kvm.machine.cycles("guest")
