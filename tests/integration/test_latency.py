"""Latency measurement: the other axis of the §5.3 coalescing tradeoff.

"Reducing interrupt frequency can minimize virtualization overhead, but
it may increase network latency" — here the increase is measurable.
"""

import pytest

from repro.core import ExperimentRunner
RUNNER = ExperimentRunner(warmup=0.4, duration=0.4)
AIC_RUNNER = ExperimentRunner(warmup=2.2, duration=0.4)


def run_at(policy, runner=RUNNER):
    return runner.run_sriov(1, ports=1, policy=policy)


def test_latency_tracks_interrupt_interval():
    """Mean latency is roughly half the coalescing interval (uniform
    arrival within the window)."""
    at_2k = run_at({"kind": "fixed_itr", "hz": 2000})
    # Mean wait for a 500 us window is ~250 us plus small fixed delays.
    assert at_2k.latency_mean == pytest.approx(250e-6, rel=0.3)
    assert at_2k.latency_p99 < 600e-6


def test_lower_frequency_means_higher_latency():
    at_20k = run_at({"kind": "fixed_itr", "hz": 20000})
    at_2k = run_at({"kind": "fixed_itr", "hz": 2000})
    at_1k = run_at({"kind": "fixed_itr", "hz": 1000})
    assert at_20k.latency_mean < at_2k.latency_mean < at_1k.latency_mean
    assert at_20k.latency_p99 < at_2k.latency_p99 < at_1k.latency_p99


def test_aic_latency_bounded_by_lif():
    """lif "indicat[es] the lowest acceptable interrupt frequency to
    limit the worst latency" — p99 never exceeds one lif period (plus
    delivery slack)."""
    result = run_at({"kind": "aic"}, runner=AIC_RUNNER)
    lif_period = 1 / RUNNER.costs.aic_lif_hz
    assert result.latency_p99 <= lif_period * 1.1


def test_latency_cpu_tradeoff_is_real():
    """The whole point of §5.3: 20 kHz buys latency with CPU."""
    at_20k = run_at({"kind": "fixed_itr", "hz": 20000})
    aic = run_at({"kind": "aic"}, runner=AIC_RUNNER)
    assert at_20k.latency_mean < aic.latency_mean
    assert at_20k.total_cpu_percent > aic.total_cpu_percent
