"""Failure injection: the §4.2 physical events under live traffic."""

import pytest

from repro.core import Testbed, TestbedConfig
from repro.drivers.netfront import Netfront
from repro.migration import DnisGuest
from repro.net import Packet, udp_goodput_bps
from repro.net.mac import MacAddress
from repro.vmm import DomainKind

REMOTE = MacAddress.parse("02:00:00:00:99:99")


def build(vm_count=2):
    bed = Testbed(TestbedConfig(ports=1))
    guests = [bed.add_sriov_guest(DomainKind.HVM) for _ in range(vm_count)]
    return bed, guests


def feed(bed, guest, n=5):
    guest.port.wire_receive([Packet(src=REMOTE, dst=guest.vf.mac)
                             for _ in range(n)])
    bed.sim.run(until=bed.sim.now + 0.005)


class TestGlobalReset:
    def test_reset_notifies_every_vf_driver(self):
        bed, guests = build()
        bed.pf_drivers[0].global_reset()
        for guest in guests:
            assert "reset" in guest.driver.link_events
            assert guest.driver.resets_handled == 1

    def test_traffic_lost_during_reset_window(self):
        bed, guests = build()
        bed.pf_drivers[0].global_reset(duration=0.01)
        feed(bed, guests[0], 5)  # inside the reset window... almost:
        # feed() advances 5ms < 10ms window; packets were offered while
        # the VF was quiesced.
        assert guests[0].app.rx_packets == 0
        assert guests[0].vf.rx_no_desc_drops == 5

    def test_traffic_resumes_after_reinit(self):
        bed, guests = build()
        bed.pf_drivers[0].global_reset(duration=0.01)
        bed.sim.run(until=bed.sim.now + 0.02)
        feed(bed, guests[0], 5)
        assert guests[0].app.rx_packets == 5

    def test_pf_data_path_also_resets(self):
        bed, guests = build()
        pf_driver = bed.pf_drivers[0]
        pf_driver.global_reset(duration=0.01)
        assert not bed.ports[0].pf.enabled
        bed.sim.run(until=bed.sim.now + 0.02)
        assert bed.ports[0].pf.enabled

    def test_stopped_driver_ignores_reinit(self):
        bed, guests = build()
        bed.pf_drivers[0].global_reset(duration=0.01)
        guests[0].driver.stop()
        bed.sim.run(until=bed.sim.now + 0.02)
        assert not guests[0].vf.enabled


class TestLinkChange:
    def test_link_down_propagates_to_all_vf_drivers(self):
        bed, guests = build()
        bed.pf_drivers[0].notify_link_change(up=False)
        for guest in guests:
            assert not guest.driver.carrier

    def test_carrier_callback_fires_once_per_transition(self):
        bed, guests = build()
        transitions = []
        guests[0].driver.on_carrier_change = transitions.append
        bed.pf_drivers[0].notify_link_change(up=False)
        bed.pf_drivers[0].notify_link_change(up=False)  # no-op repeat
        bed.pf_drivers[0].notify_link_change(up=True)
        assert transitions == [False, True]

    def test_link_down_fails_bond_over_to_pv(self):
        """The DNIS bond reacts to the physical link, not just hot-plug:
        a dead line on the VF side fails over to the PV NIC."""
        bed, guests = build(1)
        sriov = guests[0]
        netfront = Netfront(bed.platform, sriov.domain, app=sriov.app)
        bed.netback.connect(netfront)
        guest = DnisGuest(bed.platform, sriov.domain, sriov.driver, netfront,
                          bed.hotplug)
        sriov.driver.on_carrier_change = (
            lambda up: guest.bond.carrier_changed("vf0"))
        assert guest.active_path == "vf0"
        bed.pf_drivers[0].notify_link_change(up=False)
        assert guest.active_path == "eth0"
        bed.pf_drivers[0].notify_link_change(up=True)
        assert guest.bond.active_slave in ("eth0", "vf0")  # standby ok


class TestDriverRemoval:
    def test_removal_quiesces_vf_drivers(self):
        bed, guests = build()
        bed.pf_drivers[0].announce_removal()
        for guest in guests:
            assert not guest.driver.running
            assert not guest.vf.enabled
        assert not bed.pf_drivers[0].running


class TestIommuFaultContainment:
    def test_bad_descriptor_faults_only_that_vf(self):
        """A guest programming a bogus DMA address harms nobody else."""
        bed, guests = build()
        victim, healthy = guests
        # Poison the victim's ring with unmapped buffer addresses.
        victim.vf.rx_ring.reset()
        while not victim.vf.rx_ring.full:
            victim.vf.rx_ring.post(0xBAD_0000_0000, 2048)
        feed(bed, victim, 3)
        assert victim.vf.rx_dma_faults == 3
        assert victim.app.rx_packets == 0
        # The healthy guest is unaffected.
        feed(bed, healthy, 3)
        assert healthy.app.rx_packets == 3
