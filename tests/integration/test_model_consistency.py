"""Model self-consistency: the accounting must stay physical."""

import pytest

from repro.core import ExperimentRunner
from repro.vmm import DomainKind

RUNNER = ExperimentRunner(warmup=0.4, duration=0.4)


def run_and_platform(fn):
    """Run an experiment while keeping the testbed reachable."""
    captured = {}
    original = ExperimentRunner._measure

    def spy(self, bed, apps, drivers):
        captured["bed"] = bed
        return original(self, bed, apps, drivers)

    ExperimentRunner._measure = spy
    try:
        result = fn()
    finally:
        ExperimentRunner._measure = original
    return result, captured["bed"]


def test_no_core_exceeds_capacity_sriov():
    """Every charge-based path must fit its core: the paper's whole
    point is that per-VM costs are a few percent."""
    result, bed = run_and_platform(
        lambda: RUNNER.run_sriov(16, ports=8,
                                 policy={"kind": "fixed_itr", "hz": 2000}))
    assert bed.platform.machine.overcommitted_cores() == []


def test_no_core_exceeds_capacity_pv():
    result, bed = run_and_platform(
        lambda: RUNNER.run_pv(10, kind=DomainKind.HVM))
    assert bed.platform.machine.overcommitted_cores() == []


def test_cpu_breakdown_sums_to_total():
    result = RUNNER.run_sriov(4, ports=2,
                              policy={"kind": "fixed_itr", "hz": 2000})
    assert result.total_cpu_percent == pytest.approx(sum(result.cpu.values()))


def test_throughput_never_exceeds_offered():
    result = RUNNER.run_sriov(2, ports=1,
                              policy={"kind": "fixed_itr", "hz": 2000})
    from repro.net import udp_goodput_bps
    assert result.throughput_bps <= udp_goodput_bps(1e9) * 1.01


def test_determinism_across_runs():
    a = RUNNER.run_sriov(3, ports=3, policy={"kind": "fixed_itr", "hz": 2000})
    b = RUNNER.run_sriov(3, ports=3, policy={"kind": "fixed_itr", "hz": 2000})
    assert a.throughput_bps == b.throughput_bps
    assert a.cpu == b.cpu
    assert a.latency_mean == b.latency_mean
