"""Integration tests for the §4.3 security properties."""

import pytest

from repro.core import Testbed, TestbedConfig
from repro.hw import IommuFault
from repro.hw.pcie import AcsViolation, Switch
from repro.net import Packet
from repro.net.mac import MacAddress
from repro.vmm import DomainKind

REMOTE = MacAddress.parse("02:00:00:00:99:99")


def build_two_guests():
    bed = Testbed(TestbedConfig(ports=1))
    a = bed.add_sriov_guest(DomainKind.HVM)
    b = bed.add_sriov_guest(DomainKind.HVM)
    return bed, a, b


def test_vf_dma_confined_to_owner_address_space():
    """Guest A's VF cannot DMA into guest B's memory: the RID-indexed
    IOMMU context only contains A's mappings."""
    bed, a, b = build_two_guests()
    iommu = bed.platform.iommu
    # A's own buffers translate fine.
    assert iommu.translate(a.vf.pci.rid, 0x10_0000) > 0
    # B's page table maps the same guest-physical range, but through
    # A's RID any address outside A's mappings faults.
    with pytest.raises(IommuFault):
        iommu.translate(a.vf.pci.rid, 0xDEAD_0000)


def test_rid_separation_yields_different_machine_pages():
    """Same guest-physical address, different VMs, different machine
    memory — the core Direct-I/O protection SR-IOV inherits."""
    bed, a, b = build_two_guests()
    iommu = bed.platform.iommu
    ma = iommu.translate(a.vf.pci.rid, 0x10_0000)
    mb = iommu.translate(b.vf.pci.rid, 0x10_0000)
    assert ma != mb


def test_guest_spoofed_source_mac_dropped_and_observable():
    """The PF driver's §4.3 monitoring hook: anti-spoof drops are
    visible so policy can react."""
    bed, a, b = build_two_guests()
    forged = Packet(src=b.vf.mac, dst=REMOTE)
    assert a.driver.transmit([forged]) == 0
    assert a.vf.tx_spoof_drops == 1
    assert a.port.switch.spoofed_drops == 1


def test_pf_driver_can_shut_down_misbehaving_vf():
    bed, a, b = build_two_guests()
    pf_driver = bed.pf_drivers[0]
    pf_driver.shutdown_vf(a.vf.index)
    assert not a.vf.enabled
    # Traffic for the shut-down VF no longer reaches it.
    a.port.wire_receive([Packet(src=REMOTE, dst=a.vf.mac)])
    bed.sim.run(until=0.01)
    assert a.app.rx_packets == 0


def test_acs_redirect_closes_p2p_hole_under_shared_switch():
    """Build the §4.3 scenario on the testbed's fabric: two VFs under
    one PCIe switch, one mapping MMIO; with ACS redirect on, the peer
    write is blocked."""
    bed, a, b = build_two_guests()
    rc = bed.platform.root_complex
    switch = Switch(port_count=2, name="slot-switch")
    rc.add_switch(switch)
    switch.ports[0].attach(a.vf.pci)
    switch.ports[1].attach(b.vf.pci)
    b.vf.pci.map_mmio(base=0xF000_0000, size=0x4000)
    # Without ACS: the write lands in B's MMIO, bypassing the IOMMU.
    assert rc.memory_write(a.vf.pci, 0xF000_1000) == "direct-p2p"
    assert b.vf.pci.mmio_writes_received == 1
    # With ACS upstream redirect: blocked.
    switch.enable_acs_redirect()
    with pytest.raises(AcsViolation):
        rc.memory_write(a.vf.pci, 0xF000_1000)
    assert b.vf.pci.mmio_writes_received == 1  # unchanged
