"""§4.3 policy enforcement: bandwidth caps and interrupt-throttle
floors imposed by the PF driver."""

import pytest

from repro.core import Testbed, TestbedConfig
from repro.net import Packet
from repro.net.mac import MacAddress
from repro.vmm import DomainKind

REMOTE = MacAddress.parse("02:00:00:00:99:99")


def build():
    bed = Testbed(TestbedConfig(ports=1))
    guest = bed.add_sriov_guest(DomainKind.HVM)
    return bed, guest, bed.pf_drivers[0]


class TestRateLimit:
    def offer_tx(self, bed, guest, duration=0.5, rate_pps=20000):
        interval = 1.0 / rate_pps
        t = bed.sim.now
        end = t + duration
        while t < end:
            bed.sim.schedule_at(t, guest.driver.transmit,
                                [Packet(src=guest.vf.mac, dst=REMOTE)])
            t += interval
        bed.sim.run(until=end)

    def test_unlimited_by_default(self):
        bed, guest, pf = build()
        self.offer_tx(bed, guest, duration=0.1)
        assert guest.vf.tx_rate_limited_drops == 0

    def test_cap_enforced_by_token_bucket(self):
        bed, guest, pf = build()
        pf.set_vf_rate_limit(guest.vf.index, 100e6)  # 100 Mbps cap
        before = guest.vf.tx_bytes
        self.offer_tx(bed, guest, duration=1.0)  # offers ~240 Mbps
        sent_bps = (guest.vf.tx_bytes - before) * 8 / 1.0
        assert sent_bps <= 100e6 * 1.05
        assert guest.vf.tx_rate_limited_drops > 0

    def test_cap_removal_restores_full_rate(self):
        bed, guest, pf = build()
        pf.set_vf_rate_limit(guest.vf.index, 100e6)
        pf.set_vf_rate_limit(guest.vf.index, 0)
        before_drops = guest.vf.tx_rate_limited_drops
        self.offer_tx(bed, guest, duration=0.1)
        assert guest.vf.tx_rate_limited_drops == before_drops

    def test_negative_rate_rejected(self):
        bed, guest, pf = build()
        with pytest.raises(ValueError):
            pf.set_vf_rate_limit(guest.vf.index, -1)


class TestItrFloor:
    def test_guest_request_below_floor_clamped(self):
        bed, guest, pf = build()
        pf.set_vf_itr_floor(guest.vf.index, max_interrupt_hz=2000)
        # Guest asks for 20 kHz; the floor clamps to 2 kHz.
        guest.vf.regs.write_by_name("VTEITR0", 50)  # 50 us -> 20 kHz
        assert guest.vf.throttle.interval == pytest.approx(500e-6)

    def test_requests_above_floor_pass_through(self):
        bed, guest, pf = build()
        pf.set_vf_itr_floor(guest.vf.index, max_interrupt_hz=2000)
        guest.vf.regs.write_by_name("VTEITR0", 1000)  # 1 ms -> 1 kHz
        assert guest.vf.throttle.interval == pytest.approx(1e-3)

    def test_floor_applies_immediately(self):
        bed, guest, pf = build()
        guest.vf.regs.write_by_name("VTEITR0", 50)  # 20 kHz, no floor yet
        pf.set_vf_itr_floor(guest.vf.index, max_interrupt_hz=2000)
        assert guest.vf.throttle.interval == pytest.approx(500e-6)

    def test_interrupt_rate_actually_bounded(self):
        bed, guest, pf = build()
        pf.set_vf_itr_floor(guest.vf.index, max_interrupt_hz=1000)
        guest.vf.regs.write_by_name("VTEITR0", 50)  # asks for 20 kHz
        stream = bed.attach_client_to_sriov(guest, 500e6)
        stream.start()
        bed.sim.run(until=bed.sim.now + 0.5)
        before = guest.driver.interrupts_handled
        bed.sim.run(until=bed.sim.now + 0.5)
        rate = (guest.driver.interrupts_handled - before) / 0.5
        assert rate <= 1000 * 1.05

    def test_invalid_ceiling_rejected(self):
        bed, guest, pf = build()
        with pytest.raises(ValueError):
            pf.set_vf_itr_floor(guest.vf.index, 0)
