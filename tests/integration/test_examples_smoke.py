"""Smoke tests: the fast examples must run end to end.

(The slower sweeps — scalability, coalescing, migration — are exercised
by the benchmarks; here we only guard the quickstart-class scripts
against bitrot.)
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name, capsys):
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = run_example("quickstart.py", capsys)
    assert "Aggregate throughput" in out
    assert "957" in out


def test_vmm_portability(capsys):
    out = run_example("vmm_portability.py", capsys)
    assert "Xen" in out
    assert "KVM" in out
    assert "bare metal" in out
