"""End-to-end integration tests of the SR-IOV receive pipeline."""

import pytest

from repro.core import ExperimentRunner, OptimizationConfig, Testbed, TestbedConfig
from repro.net import Packet, udp_goodput_bps
from repro.net.mac import MacAddress
from repro.vmm import DomainKind, VmExitKind

RUNNER = ExperimentRunner(warmup=0.3, duration=0.3)
REMOTE = MacAddress.parse("02:00:00:00:99:99")


def test_line_rate_throughput_single_vm():
    """One VM on one port must sustain the 957 Mbps UDP goodput."""
    result = RUNNER.run_sriov(1, ports=1,
                              policy={"kind": "fixed_itr", "hz": 2000})
    assert result.throughput_bps == pytest.approx(udp_goodput_bps(1e9),
                                                  rel=0.02)
    assert result.loss_rate < 0.01


def test_aggregate_line_rate_across_ports():
    """Two ports, two VMs: aggregate ~1.91 Gbps."""
    result = RUNNER.run_sriov(2, ports=2,
                              policy={"kind": "fixed_itr", "hz": 2000})
    assert result.throughput_bps == pytest.approx(2 * udp_goodput_bps(1e9),
                                                  rel=0.02)


def test_throughput_flat_as_vms_share_port():
    """Fig. 6's headline: VM count does not dent aggregate throughput."""
    totals = []
    for n in [1, 3, 7]:
        result = RUNNER.run_sriov(n, ports=1,
                                  policy={"kind": "fixed_itr", "hz": 2000})
        totals.append(result.throughput_bps)
    assert max(totals) / min(totals) < 1.03


def test_dom0_not_on_data_path():
    """SR-IOV's core claim: with optimizations, the data path never
    touches dom0 (only the fixed device-model housekeeping remains)."""
    result = RUNNER.run_sriov(2, ports=1)
    costs = RUNNER.costs
    assert result.cpu["dom0"] == pytest.approx(costs.dm_housekeeping_percent,
                                               abs=0.2)


def test_interrupts_throttled_to_itr():
    result = RUNNER.run_sriov(1, ports=1,
                              policy={"kind": "fixed_itr", "hz": 2000})
    assert result.interrupt_hz == pytest.approx(2000, rel=0.05)


def test_exit_accounting_matches_interrupts():
    result = RUNNER.run_sriov(1, ports=1,
                              policy={"kind": "fixed_itr", "hz": 2000})
    eoi = result.exit_counts.get(VmExitKind.APIC_ACCESS_EOI.value, 0)
    ext = result.exit_counts.get(VmExitKind.EXTERNAL_INTERRUPT.value, 0)
    # One EOI and one external-interrupt exit per delivered interrupt.
    expected = result.interrupt_hz * result.duration
    assert eoi == pytest.approx(expected, rel=0.05)
    assert ext == pytest.approx(expected, rel=0.05)


def test_full_stack_component_wiring():
    """Walk the whole §4.1 chain by hand on a fresh testbed."""
    bed = Testbed(TestbedConfig(ports=1, vfs_per_port=7))
    # The IOVM surfaced 7 VFs via hot-add; the scan only sees the PF.
    assert len(bed.platform.root_complex.hot_added) == 7
    assert len(bed.platform.root_complex.scan()) == 1
    guest = bed.add_sriov_guest(DomainKind.HVM)
    # IOMMU context installed under the VF's RID.
    assert bed.platform.iommu.context_for(guest.vf.pci.rid) is \
        guest.domain.io_page_table
    # Wire -> switch -> VF -> ISR -> app.
    guest.port.wire_receive([Packet(src=REMOTE, dst=guest.vf.mac)])
    bed.sim.run(until=0.01)
    assert guest.app.rx_packets == 1
    # The interrupt came through the global vector table.
    assert bed.platform.vectors.owner(guest.driver.rx_vector) == guest.domain.id
