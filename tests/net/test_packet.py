"""Unit tests for packets and framing arithmetic.

The goodput functions must reproduce the paper's per-port numbers from
first principles: 957 Mbps UDP and ~941 Mbps TCP on a 1 Gbps line.
"""

import pytest

from repro.net import (
    Packet,
    Protocol,
    tcp_goodput_bps,
    udp_goodput_bps,
    wire_bytes,
)
from repro.net.mac import MacAddress
from repro.net.packet import frames_for_message, packets_per_second

SRC = MacAddress.parse("02:00:00:00:00:01")
DST = MacAddress.parse("02:00:00:00:00:02")
GIGABIT = 1e9


def test_udp_goodput_matches_paper_957_mbps():
    goodput = udp_goodput_bps(GIGABIT)
    assert goodput == pytest.approx(957.1e6, rel=1e-3)


def test_tcp_goodput_matches_paper_940_mbps():
    goodput = tcp_goodput_bps(GIGABIT)
    assert goodput == pytest.approx(941.5e6, rel=1e-3)


def test_wire_bytes_adds_38_byte_overhead():
    assert wire_bytes(1500) == 1538


def test_wire_bytes_vlan_tag_adds_four():
    assert wire_bytes(1500, vlan=7) == 1542


def test_packet_payload_udp():
    packet = Packet(src=SRC, dst=DST, size_bytes=1500, protocol=Protocol.UDP)
    assert packet.payload_bytes == 1472


def test_packet_payload_tcp():
    packet = Packet(src=SRC, dst=DST, size_bytes=1500, protocol=Protocol.TCP)
    assert packet.payload_bytes == 1448


def test_packet_rejects_nonpositive_size():
    with pytest.raises(ValueError):
        Packet(src=SRC, dst=DST, size_bytes=0)


def test_packet_sequence_numbers_unique():
    first = Packet(src=SRC, dst=DST)
    second = Packet(src=SRC, dst=DST)
    assert first.seq != second.seq


def test_frames_for_message_single_frame():
    assert frames_for_message(1000) == 1


def test_frames_for_message_fragments():
    # 4000-byte UDP message: payload/frame = 1472 -> 3 frames.
    assert frames_for_message(4000, protocol=Protocol.UDP) == 3


def test_frames_for_message_rejects_nonpositive():
    with pytest.raises(ValueError):
        frames_for_message(0)


def test_packets_per_second_roundtrip():
    pps = packets_per_second(957.1e6, protocol=Protocol.UDP)
    # 1 Gbps line: 1e9 / (1538 * 8) = 81274 frames/s.
    assert pps == pytest.approx(81274, rel=1e-3)


def test_packets_per_second_rejects_tiny_mtu():
    with pytest.raises(ValueError):
        packets_per_second(1e6, mtu=20)
