"""Unit tests for the netperf-style workload generator."""

import pytest

from repro.net import NetperfStream, Protocol
from repro.net.mac import MacAddress
from repro.sim import Simulator

SRC = MacAddress(0x020000000001)
DST = MacAddress(0x020000000002)


def collect_stream(throughput_bps, duration=0.1, **kwargs):
    sim = Simulator()
    received = []
    stream = NetperfStream(
        sim, lambda burst: received.extend(burst), SRC, DST,
        throughput_bps=throughput_bps, **kwargs,
    )
    stream.start()
    sim.run(until=duration)
    result = stream.stop()
    return sim, received, result


def test_offered_rate_approximates_target():
    _, received, result = collect_stream(957.1e6, duration=0.1)
    # 1 Gbps UDP -> 81274 pps -> ~8127 packets in 100 ms.
    assert len(received) == pytest.approx(8127, rel=0.02)
    assert result.sent_packets == len(received)


def test_fractional_packet_carry_preserves_rate():
    """A rate that is not an integer multiple of the burst quota must not
    lose the fractional remainder each tick."""
    _, received, _ = collect_stream(10e6, duration=1.0)
    # 10 Mbps / (1472*8) = 849 pps.
    assert len(received) == pytest.approx(849, rel=0.02)


def test_packets_carry_addressing_and_protocol():
    _, received, _ = collect_stream(100e6, duration=0.01, protocol=Protocol.TCP,
                                    vlan=5, flow_id=42)
    packet = received[0]
    assert packet.src == SRC
    assert packet.dst == DST
    assert packet.vlan == 5
    assert packet.flow_id == 42
    assert packet.protocol is Protocol.TCP


def test_stop_halts_emission():
    sim = Simulator()
    received = []
    stream = NetperfStream(sim, lambda burst: received.extend(burst), SRC, DST,
                           throughput_bps=100e6)
    stream.start()
    sim.run(until=0.01)
    stream.stop()
    count = len(received)
    sim.run(until=0.1)
    assert len(received) == count


def test_result_reports_duration_and_bps():
    _, _, result = collect_stream(100e6, duration=0.1)
    assert result.duration == pytest.approx(0.1)
    assert result.offered_bps == pytest.approx(100e6 * 1500 / 1472, rel=0.03)


def test_set_rate_changes_emission():
    sim = Simulator()
    received = []
    stream = NetperfStream(sim, lambda burst: received.extend(burst), SRC, DST,
                           throughput_bps=100e6)
    stream.start()
    sim.run(until=0.05)
    low = len(received)
    stream.set_rate(500e6)
    sim.run(until=0.1)
    high = len(received) - low
    assert high > low * 3


def test_double_start_is_noop():
    sim = Simulator()
    stream = NetperfStream(sim, lambda burst: None, SRC, DST, throughput_bps=1e6)
    stream.start()
    stream.start()
    sim.run(until=0.01)


def test_invalid_parameters_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        NetperfStream(sim, lambda b: None, SRC, DST, throughput_bps=-1)
    with pytest.raises(ValueError):
        NetperfStream(sim, lambda b: None, SRC, DST, throughput_bps=1e6,
                      burst_interval=0)
    stream = NetperfStream(sim, lambda b: None, SRC, DST, throughput_bps=1e6)
    with pytest.raises(ValueError):
        stream.set_rate(-5)
