"""Unit tests for the TCP throughput model.

The key property is the paper's Fig. 9 shape: flat at line goodput for
short coalescing intervals, ~10% down at a 1 ms interval (1 kHz).
"""

import pytest

from repro.net import TcpThroughputModel, tcp_goodput_bps

GIGABIT = 1e9


def test_line_limited_at_high_interrupt_rate():
    model = TcpThroughputModel()
    # 20 kHz -> 50 us interval: line limited.
    assert model.throughput_bps(GIGABIT, 1 / 20000) == pytest.approx(
        tcp_goodput_bps(GIGABIT)
    )


def test_2khz_still_line_limited():
    model = TcpThroughputModel()
    assert model.throughput_bps(GIGABIT, 1 / 2000) == pytest.approx(
        tcp_goodput_bps(GIGABIT)
    )


def test_1khz_drops_roughly_ten_percent():
    """Paper: 9.6% TCP throughput drop at 1 kHz coalescing."""
    model = TcpThroughputModel()
    full = model.throughput_bps(GIGABIT, 1 / 2000)
    coalesced = model.throughput_bps(GIGABIT, 1 / 1000)
    drop = 1 - coalesced / full
    assert 0.05 < drop < 0.15


def test_throughput_monotone_in_interval():
    model = TcpThroughputModel()
    intervals = [10e-6, 100e-6, 500e-6, 1e-3, 2e-3, 5e-3]
    rates = [model.throughput_bps(GIGABIT, t) for t in intervals]
    assert all(a >= b for a, b in zip(rates, rates[1:]))


def test_crossover_interval_consistent():
    model = TcpThroughputModel()
    crossover = model.crossover_interval(GIGABIT)
    at = model.throughput_bps(GIGABIT, crossover)
    below = model.throughput_bps(GIGABIT, crossover * 0.5)
    above = model.throughput_bps(GIGABIT, crossover * 2.0)
    line = tcp_goodput_bps(GIGABIT)
    assert at == pytest.approx(line, rel=1e-6)
    assert below == pytest.approx(line)
    assert above < line


def test_effective_rtt_adds_half_interval():
    """Mean ACK delay is half the coalescing interval (uniform arrival)."""
    model = TcpThroughputModel(base_rtt=100e-6)
    assert model.effective_rtt(1e-3) == pytest.approx(600e-6)


def test_parameter_validation():
    with pytest.raises(ValueError):
        TcpThroughputModel(window_bytes=0)
    with pytest.raises(ValueError):
        TcpThroughputModel(base_rtt=0)
    with pytest.raises(ValueError):
        TcpThroughputModel().effective_rtt(-1)
