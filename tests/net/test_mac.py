"""Unit tests for MAC addresses and the allocator."""

import pytest

from repro.net import MacAddress, MacAllocator
from repro.net.mac import BROADCAST, VLAN_NONE, validate_vlan


def test_parse_and_format_roundtrip():
    mac = MacAddress.parse("02:1a:2b:3c:4d:5e")
    assert str(mac) == "02:1a:2b:3c:4d:5e"
    assert MacAddress.parse(str(mac)) == mac


def test_parse_rejects_malformed():
    for bad in ["02:00:00:00:00", "02:00:00:00:00:00:00", "zz:00:00:00:00:00", ""]:
        with pytest.raises(ValueError):
            MacAddress.parse(bad)


def test_value_range_enforced():
    with pytest.raises(ValueError):
        MacAddress(1 << 48)
    with pytest.raises(ValueError):
        MacAddress(-1)


def test_equality_and_hash():
    a = MacAddress(0x020000000001)
    b = MacAddress(0x020000000001)
    c = MacAddress(0x020000000002)
    assert a == b
    assert hash(a) == hash(b)
    assert a != c
    assert len({a, b, c}) == 2


def test_multicast_and_broadcast_bits():
    assert BROADCAST.is_broadcast
    assert BROADCAST.is_multicast
    unicast = MacAddress.parse("02:00:00:00:00:01")
    assert not unicast.is_multicast
    multicast = MacAddress.parse("01:00:5e:00:00:01")
    assert multicast.is_multicast
    assert not multicast.is_broadcast


def test_allocator_yields_unique_unicast_addresses():
    allocator = MacAllocator(port_index=3)
    macs = list(allocator.allocate_many(10))
    assert len(set(macs)) == 10
    assert all(not mac.is_multicast for mac in macs)


def test_allocators_for_different_ports_do_not_collide():
    a = set(MacAllocator(port_index=0).allocate_many(5))
    b = set(MacAllocator(port_index=1).allocate_many(5))
    assert not (a & b)


def test_allocator_port_index_validated():
    with pytest.raises(ValueError):
        MacAllocator(port_index=-1)
    with pytest.raises(ValueError):
        MacAllocator(port_index=256)


def test_validate_vlan():
    assert validate_vlan(VLAN_NONE) == VLAN_NONE
    assert validate_vlan(100) == 100
    with pytest.raises(ValueError):
        validate_vlan(4095)
    with pytest.raises(ValueError):
        validate_vlan(-1)
