"""Unit tests for bounded packet buffers."""

import pytest

from repro.net import Packet, PacketBuffer
from repro.net.mac import MacAddress

SRC = MacAddress(0x020000000001)
DST = MacAddress(0x020000000002)


def make_packets(n):
    return [Packet(src=SRC, dst=DST) for _ in range(n)]


def test_push_pop_fifo_order():
    buffer = PacketBuffer(capacity=4)
    packets = make_packets(3)
    for packet in packets:
        assert buffer.push(packet)
    assert [buffer.pop() for _ in range(3)] == packets
    assert buffer.pop() is None


def test_tail_drop_when_full():
    buffer = PacketBuffer(capacity=2)
    accepted = buffer.push_burst(make_packets(5))
    assert accepted == 2
    assert buffer.stats.dropped == 3
    assert buffer.stats.drop_rate == pytest.approx(0.6)


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        PacketBuffer(capacity=0)


def test_pop_burst_budget():
    buffer = PacketBuffer(capacity=100)
    buffer.push_burst(make_packets(10))
    burst = buffer.pop_burst(4)
    assert len(burst) == 4
    assert len(buffer) == 6
    assert buffer.stats.dequeued == 4


def test_pop_burst_rejects_negative_budget():
    with pytest.raises(ValueError):
        PacketBuffer(capacity=1).pop_burst(-1)


def test_drain_empties_buffer():
    buffer = PacketBuffer(capacity=100)
    buffer.push_burst(make_packets(7))
    assert len(buffer.drain()) == 7
    assert len(buffer) == 0


def test_peak_depth_tracked():
    buffer = PacketBuffer(capacity=100)
    buffer.push_burst(make_packets(5))
    buffer.drain()
    buffer.push_burst(make_packets(2))
    assert buffer.stats.peak_depth == 5


def test_clear_does_not_count_drops():
    buffer = PacketBuffer(capacity=10)
    buffer.push_burst(make_packets(5))
    buffer.clear()
    assert len(buffer) == 0
    assert buffer.stats.dropped == 0


def test_free_and_full_reporting():
    buffer = PacketBuffer(capacity=3)
    assert buffer.free == 3
    buffer.push_burst(make_packets(3))
    assert buffer.full
    assert buffer.free == 0
