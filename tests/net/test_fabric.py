"""Unit tests for the ToR fabric model (spec + switch arithmetic)."""

import pytest

from repro.net.fabric import (
    DEFAULT_LATENCY_S,
    DEFAULT_QUEUE_FRAMES,
    DEFAULT_UPLINK_GBPS,
    FabricSpec,
    ToRSwitch,
)
from repro.net.mac import VLAN_NONE
from repro.net.packet import wire_bytes


def _message(t=0.0, dst=0x02_0100_000001, size=1500, vlan=VLAN_NONE,
             **extra):
    message = {"t": t, "src_host": 0, "seq": 0, "src": 0x02_0100_000000,
               "dst": dst, "size": size, "vlan": vlan,
               "protocol": "udp", "flow_id": 1, "created_at": t}
    message.update(extra)
    return message


class TestFabricSpec:
    def test_defaults(self):
        spec = FabricSpec()
        assert spec.uplink_gbps == DEFAULT_UPLINK_GBPS
        assert spec.latency_s == DEFAULT_LATENCY_S
        assert spec.queue_frames == DEFAULT_QUEUE_FRAMES
        assert spec.rate_bps == DEFAULT_UPLINK_GBPS * 1e9

    def test_round_trip(self):
        spec = FabricSpec(uplink_gbps=25.0, latency_s=1e-5,
                          queue_frames=64)
        assert FabricSpec.from_dict(spec.to_dict()) == spec
        assert FabricSpec.from_dict(None) == FabricSpec()
        assert FabricSpec.from_dict({}) == FabricSpec()

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="latency_ms"):
            FabricSpec.from_dict({"latency_ms": 1.0})

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError, match="uplink_gbps"):
            FabricSpec(uplink_gbps=0)
        with pytest.raises(ValueError, match="lookahead"):
            FabricSpec(latency_s=0)
        with pytest.raises(ValueError, match="queue_frames"):
            FabricSpec(queue_frames=0)


class TestToRSwitch:
    def test_forwarding_adds_latency_plus_serialization(self):
        spec = FabricSpec(uplink_gbps=10.0, latency_s=5e-6)
        tor = ToRSwitch(spec, host_count=2)
        tor.learn(0x02_0100_000001, 1)
        routed = tor.route(_message(t=1.0))
        assert routed["dst_host"] == 1
        assert routed["arrival"] == pytest.approx(
            1.0 + 5e-6 + wire_bytes(1500) * 8 / 10e9)
        assert tor.counters() == {"offered": 1, "forwarded": 1,
                                  "forwarded_bytes": wire_bytes(1500),
                                  "dropped": 0, "unknown_dst": 0}

    def test_egress_port_serializes_in_call_order(self):
        tor = ToRSwitch(FabricSpec(), host_count=2)
        tor.learn(0x02_0100_000001, 1)
        first = tor.route(_message(t=0.0))
        second = tor.route(_message(t=0.0))
        # Same instant, same destination: the second frame queues
        # behind the first on the egress port.
        assert second["arrival"] == pytest.approx(
            first["arrival"] + wire_bytes(1500) * 8 / FabricSpec().rate_bps)

    def test_unknown_destination_is_dropped_and_counted(self):
        tor = ToRSwitch(FabricSpec(), host_count=2)
        assert tor.route(_message(dst=0x02_0900_00BEEF)) is None
        assert tor.counters()["unknown_dst"] == 1
        assert tor.counters()["forwarded"] == 0

    def test_overbooked_egress_queue_tail_drops(self):
        tor = ToRSwitch(FabricSpec(queue_frames=2), host_count=2)
        tor.learn(0x02_0100_000001, 1)
        outcomes = [tor.route(_message(t=0.0)) for _ in range(8)]
        delivered = [m for m in outcomes if m is not None]
        assert 0 < len(delivered) < 8
        assert tor.counters()["dropped"] == 8 - len(delivered)

    def test_reset_counters_keeps_port_bookings(self):
        tor = ToRSwitch(FabricSpec(), host_count=2)
        tor.learn(0x02_0100_000001, 1)
        first = tor.route(_message(t=0.0))
        tor.reset_counters()
        assert tor.counters()["forwarded"] == 0
        # The egress booking survives: the next frame still queues.
        second = tor.route(_message(t=0.0))
        assert second["arrival"] > first["arrival"]

    def test_learn_rejects_out_of_range_host(self):
        tor = ToRSwitch(FabricSpec(), host_count=2)
        with pytest.raises(ValueError, match="out of range"):
            tor.learn(0x02_0100_000001, 2)


class TestBurstTailDrop:
    """A routed record may carry ``count`` equal frames; the queue bound
    applies per frame, so a burst straddling it keeps its prefix."""

    def test_burst_straddling_the_bound_keeps_the_fitting_prefix(self):
        spec = FabricSpec(queue_frames=4)
        tor = ToRSwitch(spec, host_count=2)
        tor.learn(0x02_0100_000001, 1)
        routed = tor.route(_message(t=0.0, count=16))
        # An empty queue fits queue_frames + the frame that starts
        # serializing immediately; the tail is dropped, not the burst.
        assert routed is not None
        assert routed["count"] == 5
        assert tor.counters()["forwarded"] == 5
        assert tor.counters()["dropped"] == 11
        assert tor.counters()["offered"] == 16

    def test_burst_fitting_entirely_is_untouched(self):
        tor = ToRSwitch(FabricSpec(queue_frames=256), host_count=2)
        tor.learn(0x02_0100_000001, 1)
        routed = tor.route(_message(t=0.0, count=8))
        assert routed["count"] == 8
        assert tor.counters()["forwarded"] == 8
        assert tor.counters()["dropped"] == 0

    def test_burst_arrival_is_when_its_last_frame_clears(self):
        spec = FabricSpec()
        tor = ToRSwitch(spec, host_count=2)
        tor.learn(0x02_0100_000001, 1)
        routed = tor.route(_message(t=0.0, count=3))
        assert routed["arrival"] == pytest.approx(
            spec.latency_s + 3 * wire_bytes(1500) * 8 / spec.rate_bps)

    def test_burst_behind_a_full_queue_is_dropped_whole(self):
        tor = ToRSwitch(FabricSpec(queue_frames=2), host_count=2)
        tor.learn(0x02_0100_000001, 1)
        while tor.route(_message(t=0.0)) is not None:
            pass  # saturate the egress queue past its bound
        dropped_before = tor.counters()["dropped"]
        assert tor.route(_message(t=0.0, count=4)) is None
        assert tor.counters()["dropped"] == dropped_before + 4

    def test_single_frame_records_are_byte_identical_to_before(self):
        """``count`` defaults to 1 and a fully-fitting record is not
        rewritten, so pre-burst callers see unchanged dicts and floats."""
        tor = ToRSwitch(FabricSpec(), host_count=2)
        tor.learn(0x02_0100_000001, 1)
        routed = tor.route(_message(t=1.0))
        assert "count" not in routed
        assert routed["arrival"] == pytest.approx(
            1.0 + FabricSpec().latency_s +
            wire_bytes(1500) * 8 / FabricSpec().rate_bps)


class TestPrefixFitArithmetic:
    """The partial tail-drop path, pinned numerically: frame *k* of a
    burst sees ``queued + k * serialize_s`` of backlog, so the accepted
    prefix is ``int((bound - queued) / serialize_s) + 1``."""

    def test_fit_shrinks_with_existing_backlog(self):
        spec = FabricSpec(queue_frames=4)
        serialize_s = wire_bytes(1500) * 8 / spec.rate_bps
        tor = ToRSwitch(spec, host_count=2)
        tor.learn(0x02_0100_000001, 1)
        # Occupy two frames of line time, then offer a big burst at the
        # same instant: queued == 2 * serialize, bound == 4 * serialize,
        # so the fit is int((4 - 2)) + 1 = 3 frames.
        assert tor.route(_message(t=0.0, count=2))["count"] == 2
        routed = tor.route(_message(t=0.0, count=16))
        assert routed["count"] == 3
        assert tor.counters()["forwarded"] == 5
        assert tor.counters()["dropped"] == 13
        # And the arrival is the accepted prefix's last bit, not the
        # original burst's.
        assert routed["arrival"] == pytest.approx(
            spec.latency_s + 5 * serialize_s)

    def test_reset_counters_mid_window_preserves_conservation(self):
        from repro.audit import check_fabric_conservation
        tor = ToRSwitch(FabricSpec(queue_frames=2), host_count=2)
        tor.learn(0x02_0100_000001, 1)
        tor.route(_message(t=0.0, count=8))       # partial tail-drop
        tor.route(_message(dst=0x02_0900_00BEEF))  # unknown dst
        tor.reset_counters()
        # The warmup->measurement boundary: counters zero, but the
        # egress booking survives, so the next burst still sees the
        # backlog — and the identity must hold over the new window
        # alone, with the carried-over queue charged as drops.
        routed = tor.route(_message(t=0.0, count=8))
        counters = tor.counters()
        assert counters["offered"] == 8
        assert counters["offered"] == (counters["forwarded"] +
                                       counters["dropped"] +
                                       counters["unknown_dst"])
        assert (routed["count"] if routed else 0) == counters["forwarded"]
        check_fabric_conservation(tor)


class TestFaultTimelineRouting:
    """route() under a ClusterFaultTimeline: every fault outcome lands
    in exactly one conservation bucket."""

    def _tor(self, timeline, **spec_kw):
        tor = ToRSwitch(FabricSpec(**spec_kw), host_count=2)
        tor.learn(0x02_0100_000001, 1)
        tor.set_timeline(timeline)
        return tor

    def test_silenced_source_drains(self):
        from repro.audit import check_fabric_conservation
        from repro.faults.cluster import ClusterFaultTimeline
        timeline = ClusterFaultTimeline(2)
        timeline.add_silence(0, 1.0, 2.0)
        tor = self._tor(timeline)
        assert tor.route(_message(t=1.5, count=3)) is None
        assert tor.route(_message(t=2.5)) is not None  # pause over
        counters = tor.counters()
        assert counters["drained"] == 3
        assert counters["forwarded"] == 1
        check_fabric_conservation(tor)

    def test_partition_drops_between_groups_only(self):
        from repro.faults.cluster import ClusterFaultTimeline
        timeline = ClusterFaultTimeline(2)
        timeline.add_partition(1.0, 2.0, {0: 0, 1: 1})
        tor = self._tor(timeline)
        assert tor.route(_message(t=1.5)) is None
        assert tor.counters()["dropped_partition"] == 1
        assert tor.route(_message(t=0.5)) is not None  # before the cut
        assert tor.route(_message(t=2.5)) is not None  # healed

    def test_unreachable_destination_black_holes(self):
        from repro.faults.cluster import ClusterFaultTimeline
        timeline = ClusterFaultTimeline(2)
        timeline.set_unreachable(1, [(1.0, 2.0)])
        tor = self._tor(timeline)
        assert tor.route(_message(t=1.5)) is None
        counters = tor.counters()
        assert counters["dropped_unreachable"] == 1
        assert counters["dropped"] == 1

    def test_degrade_stretches_latency_and_serialization(self):
        from repro.faults.cluster import ClusterFaultTimeline
        spec = FabricSpec()
        timeline = ClusterFaultTimeline(2)
        timeline.add_degrade(1, 1.0, 2.0, 3.0, 2.0)
        tor = self._tor(timeline)
        routed = tor.route(_message(t=1.5))
        assert routed["arrival"] == pytest.approx(
            1.5 + spec.latency_s * 2.0 +
            wire_bytes(1500) * 8 * 3.0 / spec.rate_bps)

    def test_destination_dying_before_arrival_drains_without_booking(self):
        from repro.faults.cluster import ClusterFaultTimeline
        spec = FabricSpec()
        timeline = ClusterFaultTimeline(2)
        arrival = spec.latency_s + wire_bytes(1500) * 8 / spec.rate_bps
        timeline.add_silence(1, arrival - 1e-9, arrival + 1.0)
        tor = self._tor(timeline)
        assert tor.route(_message(t=0.0)) is None
        assert tor.counters()["drained"] == 1
        # Nothing was clocked onto the dead port, so a frame after the
        # silence sees an empty queue, not a phantom booking.
        late = tor.route(_message(t=arrival + 2.0))
        assert late["arrival"] == pytest.approx(arrival + 2.0 + arrival)

    def test_fault_counter_keys_gated_on_timeline(self):
        plain = ToRSwitch(FabricSpec(), host_count=2)
        assert "drained" not in plain.counters()
        assert "dropped_partition" not in plain.counters()
        from repro.faults.cluster import ClusterFaultTimeline
        faulted = self._tor(ClusterFaultTimeline(2))
        assert faulted.counters()["drained"] == 0
        assert faulted.counters()["dropped_unreachable"] == 0

    def test_drain_helper_counts_offered_and_drained(self):
        from repro.audit import check_fabric_conservation
        from repro.faults.cluster import ClusterFaultTimeline
        tor = self._tor(ClusterFaultTimeline(2))
        tor.drain(5)
        assert tor.counters()["offered"] == 5
        assert tor.counters()["drained"] == 5
        check_fabric_conservation(tor)


class TestFabricConservation:
    def test_every_offered_frame_is_accounted_once(self):
        from repro.audit import check_fabric_conservation
        tor = ToRSwitch(FabricSpec(queue_frames=2), host_count=2)
        tor.learn(0x02_0100_000001, 1)
        for count in (1, 3, 8, 1, 16):
            tor.route(_message(t=0.0, count=count))
        tor.route(_message(dst=0x02_0900_00BEEF, count=2))  # unknown dst
        counters = tor.counters()
        assert counters["offered"] == 31
        assert counters["offered"] == (counters["forwarded"] +
                                       counters["dropped"] +
                                       counters["unknown_dst"])
        check_fabric_conservation(tor)  # must not raise

    def test_violation_raises_with_details(self):
        from repro.audit import InvariantViolation, check_fabric_conservation
        tor = ToRSwitch(FabricSpec(), host_count=2)
        tor.learn(0x02_0100_000001, 1)
        tor.route(_message(t=0.0))
        tor.forwarded -= 1  # seed a leak
        with pytest.raises(InvariantViolation, match="fabric-flow"):
            check_fabric_conservation(tor)
