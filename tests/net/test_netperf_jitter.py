"""Unit tests for stochastic netperf arrivals."""

import pytest

from repro.net import NetperfStream
from repro.net.mac import MacAddress
from repro.sim import RandomStreams, Simulator

SRC = MacAddress(0x020000000001)
DST = MacAddress(0x020000000002)


def run_stream(jitter, seed=7, duration=1.0):
    sim = Simulator()
    bursts = []
    rng = RandomStreams(seed).get("netperf") if jitter else None
    stream = NetperfStream(sim, lambda b: bursts.append(len(b)), SRC, DST,
                           throughput_bps=500e6, jitter=jitter, rng=rng)
    stream.start()
    sim.run(until=duration)
    return bursts


def test_jitter_preserves_long_run_rate():
    deterministic = sum(run_stream(0.0))
    jittered = sum(run_stream(0.4))
    assert jittered == pytest.approx(deterministic, rel=0.02)


def test_jitter_varies_burst_sizes():
    deterministic = run_stream(0.0)
    jittered = run_stream(0.4)
    assert len(set(deterministic)) <= 2  # carry gives at most 2 sizes
    assert len(set(jittered)) > 3


def test_jitter_is_reproducible_per_seed():
    assert run_stream(0.4, seed=1) == run_stream(0.4, seed=1)
    assert run_stream(0.4, seed=1) != run_stream(0.4, seed=2)


def test_jitter_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        NetperfStream(sim, lambda b: None, SRC, DST, 1e6, jitter=1.5,
                      rng=RandomStreams(0).get("x"))
    with pytest.raises(ValueError):
        NetperfStream(sim, lambda b: None, SRC, DST, 1e6, jitter=0.3)


def test_aic_headroom_absorbs_jittered_arrivals():
    """The r=1.2 margin exists for exactly this: bursty arrivals at the
    AIC-chosen frequency must not overflow the socket buffer."""
    from repro.core import Testbed, TestbedConfig
    from repro.drivers import AdaptiveCoalescing
    from repro.net.packet import udp_goodput_bps
    bed = Testbed(TestbedConfig(ports=1))
    guest = bed.add_sriov_guest(policy=AdaptiveCoalescing())
    rng = bed.streams.get("client.jitter")
    stream = NetperfStream(
        bed.sim, guest.port.wire_receive, SRC, guest.vf.mac,
        udp_goodput_bps(1e9), burst_interval=100e-6, jitter=0.3, rng=rng)
    stream.start()
    bed.sim.run(until=2.5)
    guest.app.reset()
    bed.sim.run(until=3.0)
    assert guest.app.loss_rate < 0.005
