"""PacketPool: deterministic sequences and burst recycling.

The pool exists for two reasons the hot path cares about:

* **Determinism** — every testbed owns its own pool, so packet
  sequence numbers restart at 0 per run and a (scenario, seed) pair
  replays with identical seqs within one process, independent of what
  ran before it.  Without a pool, packets draw from a module-global
  sequence that any earlier run advances.
* **Allocation reuse** — the SR-IOV RX path returns fully-consumed
  packets at the end of the ISR; the pool hands their storage back out
  to the generator instead of allocating fresh objects.
"""

from repro.core.testbed import Testbed
from repro.net.mac import MacAddress
from repro.net.packet import DEFAULT_MTU, Packet, PacketPool, Protocol

SRC = MacAddress(0x02_00_00_00_00_01)
DST = MacAddress(0x02_00_00_00_00_02)


def test_pool_sequences_start_at_zero_and_are_consecutive():
    pool = PacketPool()
    burst = pool.acquire_burst(5, SRC, DST)
    assert [p.seq for p in burst] == [0, 1, 2, 3, 4]
    more = pool.acquire_burst(3, SRC, DST)
    assert [p.seq for p in more] == [5, 6, 7]
    assert pool.next_seq == 8


def test_pools_are_independent_of_each_other_and_the_global_sequence():
    Packet(SRC, DST)  # advances the module-global fallback sequence
    a = PacketPool()
    b = PacketPool()
    assert a.acquire_burst(1, SRC, DST)[0].seq == 0
    assert b.acquire_burst(1, SRC, DST)[0].seq == 0


def test_acquire_burst_initializes_every_field():
    pool = PacketPool()
    [packet] = pool.acquire_burst(
        1, SRC, DST, size_bytes=512, vlan=7,
        protocol=Protocol.TCP, flow_id=3, created_at=1.5)
    assert packet.src is SRC and packet.dst is DST
    assert packet.size_bytes == 512
    assert packet.vlan == 7
    assert packet.protocol is Protocol.TCP
    assert packet.flow_id == 3
    assert packet.created_at == 1.5


def test_release_recycles_storage_but_never_seq_numbers():
    pool = PacketPool()
    burst = pool.acquire_burst(4, SRC, DST)
    ids = {id(p) for p in burst}
    pool.release(burst)
    del burst
    again = pool.acquire_burst(4, SRC, DST)
    # Same storage, fresh identities: seqs continue, fields rewritten.
    assert {id(p) for p in again} <= ids
    assert [p.seq for p in again] == [4, 5, 6, 7]


def test_release_skips_packets_something_else_still_references():
    pool = PacketPool()
    burst = pool.acquire_burst(3, SRC, DST)
    keeper = burst[1]
    pool.release(burst)
    del burst
    fresh = pool.acquire_burst(3, SRC, DST)
    # The externally-held packet must not have been recycled.
    assert keeper.seq == 1
    assert all(p is not keeper for p in fresh)


def _deliveries_for_one_run():
    """Run a fixed two-VM SR-IOV scenario; record delivered seqs."""
    bed = Testbed()
    records = []
    for index in range(2):
        guest = bed.add_sriov_guest(name=f"vm{index}")
        stream = bed.attach_client_to_sriov(guest, 400e6)
        original = guest.driver.app.deliver

        def deliver(burst, now=0.0, capped=True, _orig=original):
            records.append([p.seq for p in burst])
            return _orig(burst, now, capped)

        guest.driver.app.deliver = deliver
        stream.start()
    bed.sim.run(until=0.02)
    return records


def test_scenario_replays_with_identical_packet_sequences():
    """(scenario, seed) -> identical seq streams within one process.

    This is the determinism the per-testbed pool buys: a second run of
    the same scenario sees exactly the same packet sequence numbers in
    exactly the same delivery batches, no matter what ran before it.
    """
    Packet(SRC, DST)  # perturb the global sequence; pools must not care
    first = _deliveries_for_one_run()
    Packet(SRC, DST)
    second = _deliveries_for_one_run()
    assert first, "scenario delivered no packets"
    assert first == second


def test_default_mtu_burst_matches_loose_packets():
    pool = PacketPool()
    pooled = pool.acquire_burst(2, SRC, DST)
    loose = [Packet(SRC, DST, DEFAULT_MTU) for _ in range(2)]
    for a, b in zip(pooled, loose):
        assert a.size_bytes == b.size_bytes
        assert a.protocol is b.protocol
        assert a.vlan == b.vlan
