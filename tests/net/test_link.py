"""Unit tests for point-to-point links."""

import pytest

from repro.net import Link, Packet
from repro.net.link import duplex_pair
from repro.net.mac import MacAddress
from repro.sim import Simulator

SRC = MacAddress(0x020000000001)
DST = MacAddress(0x020000000002)
GIGABIT = 1e9


def make_link(sim, rate=GIGABIT, **kwargs):
    link = Link(sim, rate_bps=rate, **kwargs)
    received = []
    link.connect(received.append)
    return link, received


def test_serialization_delay_for_full_frame():
    sim = Simulator()
    link, _ = make_link(sim)
    packet = Packet(src=SRC, dst=DST, size_bytes=1500)
    assert link.serialization_delay(packet) == pytest.approx(1538 * 8 / GIGABIT)


def test_packet_arrives_after_serialization_and_propagation():
    sim = Simulator()
    link, received = make_link(sim, propagation_delay=1e-6)
    packet = Packet(src=SRC, dst=DST, size_bytes=1500)
    link.transmit(packet)
    sim.run()
    assert received == [packet]
    assert sim.now == pytest.approx(1538 * 8 / GIGABIT + 1e-6)


def test_back_to_back_frames_serialize_sequentially():
    sim = Simulator()
    link, received = make_link(sim)
    for _ in range(3):
        link.transmit(Packet(src=SRC, dst=DST, size_bytes=1500))
    sim.run()
    assert len(received) == 3
    assert sim.now == pytest.approx(3 * 1538 * 8 / GIGABIT)


def test_queue_overflow_drops():
    sim = Simulator()
    link, received = make_link(sim, queue_frames=2)
    accepted = sum(
        link.transmit(Packet(src=SRC, dst=DST, size_bytes=1500)) for _ in range(10)
    )
    sim.run()
    # 1 in flight + 2 queued = 3 accepted.
    assert accepted == 3
    assert len(received) == 3
    assert link.dropped.value == 7


def test_line_rate_is_hard_cap():
    """Offering 2x line rate for 10 ms must deliver ~line rate only."""
    sim = Simulator()
    link, received = make_link(sim, queue_frames=4)
    interval = 1538 * 8 / GIGABIT / 2  # 2x line rate offering
    t = 0.0
    while t < 0.01:
        sim.schedule_at(t, link.transmit, Packet(src=SRC, dst=DST, size_bytes=1500))
        t += interval
    sim.run(until=0.02)
    delivered_bps = sum(1538 * 8 for _ in received) / 0.01
    assert delivered_bps <= GIGABIT * 1.01
    assert delivered_bps >= GIGABIT * 0.95
    assert link.dropped.value > 0


def test_transmit_without_receiver_raises():
    sim = Simulator()
    link = Link(sim, rate_bps=GIGABIT)
    with pytest.raises(RuntimeError):
        link.transmit(Packet(src=SRC, dst=DST))


def test_invalid_parameters_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        Link(sim, rate_bps=0)
    with pytest.raises(ValueError):
        Link(sim, rate_bps=GIGABIT, queue_frames=-1)


def test_duplex_pair_directions_independent():
    sim = Simulator()
    fwd, rev = duplex_pair(sim, rate_bps=GIGABIT)
    got_fwd, got_rev = [], []
    fwd.connect(got_fwd.append)
    rev.connect(got_rev.append)
    fwd.transmit(Packet(src=SRC, dst=DST))
    rev.transmit(Packet(src=DST, dst=SRC))
    sim.run()
    assert len(got_fwd) == 1
    assert len(got_rev) == 1


def test_utilization_reflects_delivered_bytes():
    sim = Simulator()
    link, _ = make_link(sim)
    for _ in range(10):
        link.transmit(Packet(src=SRC, dst=DST, size_bytes=1500))
    sim.run(until=1.0)
    expected = 10 * 1538 * 8 / GIGABIT
    assert link.utilization(1.0) == pytest.approx(expected)
