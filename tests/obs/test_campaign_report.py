"""Unit tests for journal loading, replay and HTML report rendering."""

import json

import pytest

from repro.obs.campaign.report import (JournalError, aggregate_metrics,
                                       load_journal, regression_rows,
                                       render_report, replay, write_report)
from repro.obs.campaign.snapshot import JOURNAL_SCHEMA, SNAPSHOT_SCHEMA


def journal_records(throughput_gbps=9.0, wall0=100.0, closed=True):
    """A minimal but complete synthetic campaign journal."""
    records = [
        {"schema": JOURNAL_SCHEMA, "kind": "campaign_start", "total": 2,
         "workers": 2, "resumed": False, "wall": wall0, "seq": 1},
        {"kind": "cache_hit", "key": "warm", "wall": wall0 + 0.1,
         "seq": 2},
        {"kind": "task_running", "key": "cell", "attempt": 1,
         "wall": wall0 + 1.0, "seq": 3},
        {"schema": SNAPSHOT_SCHEMA, "kind": "task_start", "key": "cell",
         "scenario": {"vm_count": 1}, "wall": wall0 + 1.1, "seq": 4},
        {"schema": SNAPSHOT_SCHEMA, "kind": "progress", "key": "cell",
         "sim_now": 0.2, "events_per_sec": 1000.0,
         "wall": wall0 + 1.5, "seq": 5},
        {"schema": SNAPSHOT_SCHEMA, "kind": "progress", "key": "cell",
         "sim_now": 0.4, "events_per_sec": 3000.0,
         "wall": wall0 + 2.0, "seq": 6},
        {"schema": SNAPSHOT_SCHEMA, "kind": "task_end", "key": "cell",
         "sim_now": 0.5,
         "result": {"throughput_bps": throughput_gbps * 1e9,
                    "cpu_percent": 42.0, "loss_rate": 0.01},
         "metrics": {"net.rx": {"value": 100.0},
                     "faults.drop": {"value": 1.0}},
         "wall": wall0 + 2.4, "seq": 7},
        {"kind": "task_terminal", "key": "cell", "status": "ok",
         "attempts": 1, "wall": wall0 + 2.5, "seq": 8},
    ]
    if closed:
        records.append({"kind": "campaign_end",
                        "stats": {"total": 2, "ok": 2, "wall_s": 2.5,
                                  "peak_workers": 2},
                        "wall": wall0 + 2.6, "seq": 9})
    return records


def write_journal(path, records):
    path.write_text("".join(json.dumps(r) + "\n" for r in records))
    return path


class TestLoadJournal:
    def test_roundtrip(self, tmp_path):
        path = write_journal(tmp_path / "c.jsonl", journal_records())
        records = load_journal(path)
        assert len(records) == 9
        assert records[0]["kind"] == "campaign_start"

    def test_strict_raises_with_line_number(self, tmp_path):
        records = journal_records()
        path = tmp_path / "c.jsonl"
        path.write_text(json.dumps(records[0]) + "\n" + "not json\n")
        with pytest.raises(JournalError, match="c.jsonl:2"):
            load_journal(path)

    def test_tolerant_skips_torn_tail(self, tmp_path):
        records = journal_records(closed=False)
        path = write_journal(tmp_path / "c.jsonl", records)
        with open(path, "a") as handle:
            handle.write('{"kind": "campaign_e')  # killed mid-write
        loaded = load_journal(path, strict=False)
        assert len(loaded) == len(records)

    def test_rejects_foreign_file_even_tolerantly(self, tmp_path):
        path = tmp_path / "other.jsonl"
        path.write_text('{"hello": "world"}\n')
        with pytest.raises(JournalError):
            load_journal(path, strict=False)

    def test_rejects_empty_and_missing(self, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        with pytest.raises(JournalError, match="no records"):
            load_journal(empty)
        with pytest.raises(JournalError, match="cannot read"):
            load_journal(tmp_path / "absent.jsonl")

    def test_rejects_journal_not_opening_with_campaign_start(
            self, tmp_path):
        records = journal_records()[1:]  # decapitated
        path = write_journal(tmp_path / "c.jsonl", records)
        with pytest.raises(JournalError, match="campaign_start"):
            load_journal(path)


class TestReplay:
    def test_full_cell_lifecycle(self):
        cells = replay(journal_records())
        assert set(cells) == {"warm", "cell"}
        warm = cells["warm"]
        assert warm.status == "ok" and warm.cached
        cell = cells["cell"]
        assert cell.status == "ok"
        assert not cell.cached
        assert cell.attempts == 1
        assert cell.runtime == pytest.approx(1.5)  # 101.0 -> 102.5
        assert cell.sim_now == 0.5
        assert cell.throughput_bps == 9e9
        assert cell.timeline == [(101.5, 1000.0), (102.0, 3000.0)]

    def test_unclosed_journal_still_replays(self):
        records = journal_records(closed=False)[:-1]  # no terminal either
        cells = replay(records)
        assert cells["cell"].status == "running"
        assert cells["cell"].ended_wall is None
        assert cells["cell"].runtime is None

    def test_failed_cell_keeps_error(self):
        records = journal_records()[:3] + [
            {"kind": "task_terminal", "key": "cell", "status": "failed",
             "attempts": 3, "error": "boom", "wall": 105.0, "seq": 4}]
        cell = replay(records)["cell"]
        assert cell.status == "failed"
        assert cell.attempts == 3
        assert cell.error == "boom"

    def test_aggregate_metrics_summarises_across_cells(self):
        cells = replay(journal_records())
        summary = aggregate_metrics(cells)
        assert summary["net.rx"]["count"] == 1
        assert summary["net.rx"]["mean"] == 100.0
        assert set(summary) == {"net.rx", "faults.drop"}


class TestRegressionRows:
    def test_deltas_sorted_worst_drop_first(self):
        now = replay(journal_records(throughput_gbps=8.0))
        base = replay(journal_records(throughput_gbps=10.0))
        rows = regression_rows(now, base)
        [row] = rows  # "warm" has no result payload: excluded
        key, base_gbps, now_gbps, delta_bps, delta_rt = row
        assert key == "cell"
        assert base_gbps == pytest.approx(10.0)
        assert now_gbps == pytest.approx(8.0)
        assert delta_bps == pytest.approx(-20.0)
        assert delta_rt == pytest.approx(0.0)  # identical walls

    def test_disjoint_journals_produce_no_rows(self):
        now = replay(journal_records())
        assert regression_rows(now, {}) == []


class TestRenderReport:
    def test_report_is_self_contained_html(self):
        doc = render_report(journal_records())
        assert doc.startswith("<!doctype html>")
        assert "<style>" in doc and "<script>" in doc
        assert "http://" not in doc and "https://" not in doc  # no CDN
        assert "<svg" in doc  # the per-cell timeline sparkline
        assert 'class="badge ok">ok</span>' in doc
        assert "(cached)" in doc        # the warm cell row
        assert "net.rx" in doc          # aggregate metric table
        assert "peak_workers=2" in doc  # closing stats line

    def test_unclosed_campaign_is_flagged(self):
        doc = render_report(journal_records(closed=False))
        assert "campaign did not close" in doc

    def test_baseline_section(self):
        doc = render_report(journal_records(throughput_gbps=8.0),
                            journal_records(throughput_gbps=10.0))
        assert "deltas vs baseline" in doc
        assert "-20.00" in doc
        assert "class=bad" in doc  # >1% throughput drop is highlighted

    def test_error_text_is_escaped(self):
        records = journal_records()[:3] + [
            {"kind": "task_terminal", "key": "cell", "status": "failed",
             "attempts": 1, "error": "<script>alert(1)</script>",
             "wall": 105.0, "seq": 4}]
        doc = render_report(records)
        assert "<script>alert(1)</script>" not in doc
        assert "&lt;script&gt;" in doc


class TestWriteReport:
    def test_default_output_path(self, tmp_path):
        journal = write_journal(tmp_path / "campaign.jsonl",
                                journal_records())
        out = write_report(journal)
        assert out == tmp_path / "campaign.html"
        assert out.read_text().startswith("<!doctype html>")

    def test_explicit_out_and_baseline(self, tmp_path):
        journal = write_journal(tmp_path / "now.jsonl",
                                journal_records(throughput_gbps=8.0))
        base = write_journal(tmp_path / "base.jsonl",
                             journal_records(throughput_gbps=10.0))
        out = write_report(journal, tmp_path / "r.html", base)
        assert "deltas vs baseline" in out.read_text()
