"""Unit tests for the metrics registry."""

import pytest

from repro.obs.registry import (
    NULL_REGISTRY,
    MetricsError,
    MetricsRegistry,
)


def test_counter_registration_is_idempotent():
    registry = MetricsRegistry()
    a = registry.counter("nic.port0.rx_pkts")
    b = registry.counter("nic.port0.rx_pkts")
    assert a is b
    a.add(3)
    assert registry.snapshot()["nic.port0.rx_pkts"]["value"] == 3


def test_kind_conflict_raises():
    registry = MetricsRegistry()
    registry.counter("x")
    with pytest.raises(MetricsError):
        registry.histogram("x")
    with pytest.raises(MetricsError):
        registry.gauge("x", lambda: 0)


def test_scope_prefixes_and_nests():
    registry = MetricsRegistry()
    port = registry.scope("nic.port3")
    vf = port.scope("vf1")
    vf.counter("rx_pkts").add()
    assert "nic.port3.vf1.rx_pkts" in registry
    assert registry.names() == ["nic.port3.vf1.rx_pkts"]


def test_gauge_reads_at_snapshot_time():
    registry = MetricsRegistry()
    state = {"n": 1}
    registry.gauge("live", lambda: state["n"])
    assert registry.snapshot()["live"]["value"] == 1
    state["n"] = 7
    assert registry.snapshot()["live"]["value"] == 7


def test_gauge_stringifies_exotic_values():
    registry = MetricsRegistry()
    registry.gauge("obj", lambda: object())
    value = registry.snapshot()["obj"]["value"]
    assert isinstance(value, str)


def test_histogram_and_time_weighted_render():
    registry = MetricsRegistry()
    hist = registry.histogram("lat", bin_width=0.5)
    for v in (1.0, 2.0, 3.0):
        hist.add(v)
    tw = registry.time_weighted("depth", initial=0.0, start_time=0.0)
    tw.update(4.0, 1.0)
    snap = registry.snapshot(now=2.0)
    assert snap["lat"]["count"] == 3
    assert snap["lat"]["mean"] == pytest.approx(2.0)
    assert "p99" in snap["lat"]
    assert snap["depth"]["current"] == 4.0
    assert snap["depth"]["mean"] == pytest.approx(2.0)


def test_snapshot_sorted_and_json_stable():
    registry = MetricsRegistry()
    registry.counter("b").add(2)
    registry.counter("a").add(1)
    assert list(registry.snapshot()) == ["a", "b"]
    assert registry.to_json() == registry.to_json()


def test_null_registry_hands_out_noop_instruments():
    counter = NULL_REGISTRY.counter("anything")
    counter.add(5)
    counter.record(1.0)
    # Null counters support the hot-path contract: a writable ``value``
    # attribute, private per registration, that never reaches a snapshot.
    counter.value += 3
    other = NULL_REGISTRY.scope("x").counter("y")
    assert other is not counter
    assert other.value == 0
    assert NULL_REGISTRY.snapshot() == {}
    assert len(NULL_REGISTRY) == 0
