"""Unit tests for the cycle ledger."""

import pytest

from repro.obs.ledger import EXIT_PREFIX, NULL_LEDGER, CycleLedger


def test_charge_and_query():
    ledger = CycleLedger()
    ledger.charge("vm0", "exit.apic-access-eoi", 2500.0)
    ledger.charge("vm0", "exit.apic-access-eoi", 2500.0)
    ledger.charge("vm1", "exit.external-interrupt", 1200.0)
    assert ledger.cycles("vm0") == 5000.0
    assert ledger.cycles(category="exit.apic-access-eoi") == 5000.0
    assert ledger.cycles("vm0", "exit.apic-access-eoi") == 5000.0
    assert ledger.count("vm0", "exit.apic-access-eoi") == 2
    assert ledger.total_cycles == 6200.0
    assert ledger.domains() == ["vm0", "vm1"]


def test_charge_with_count():
    ledger = CycleLedger()
    ledger.charge("vm0", "guest.work", 300.0, count=3)
    assert ledger.count("vm0", "guest.work") == 3
    assert ledger.cycles("vm0", "guest.work") == 300.0


def test_negative_cycles_rejected():
    with pytest.raises(ValueError):
        CycleLedger().charge("vm0", "x", -1.0)


def test_by_category_prefix_and_exit_breakdown():
    ledger = CycleLedger()
    ledger.charge("vm0", EXIT_PREFIX + "apic-access-eoi", 100.0)
    ledger.charge("vm1", EXIT_PREFIX + "apic-access-eoi", 50.0)
    ledger.charge("vm0", "guest.work", 999.0)
    by_cat = ledger.by_category(EXIT_PREFIX)
    assert list(by_cat) == [EXIT_PREFIX + "apic-access-eoi"]
    assert by_cat[EXIT_PREFIX + "apic-access-eoi"] == (2, 150.0)
    breakdown = ledger.exit_breakdown()
    assert breakdown == {"apic-access-eoi": (2, 150.0)}


def test_reset():
    ledger = CycleLedger()
    ledger.charge("vm0", "x", 10.0)
    ledger.reset()
    assert ledger.total_cycles == 0.0
    assert ledger.domains() == []


def test_snapshot_shape_and_determinism():
    ledger = CycleLedger()
    ledger.charge("vm1", "b", 2.0)
    ledger.charge("vm0", "a", 1.0)
    snap = ledger.snapshot()
    assert snap["total_cycles"] == 3.0
    assert list(snap["domains"]) == ["vm0", "vm1"]
    assert snap["domains"]["vm0"]["a"] == {"count": 1, "cycles": 1.0}
    # Same charges in a different order snapshot identically.
    other = CycleLedger()
    other.charge("vm0", "a", 1.0)
    other.charge("vm1", "b", 2.0)
    assert other.snapshot() == snap


def test_null_ledger_is_inert():
    NULL_LEDGER.charge("vm0", "x", 1e9)
    assert NULL_LEDGER.total_cycles == 0.0
    assert NULL_LEDGER.snapshot() == {}
    assert NULL_LEDGER.exit_breakdown() == {}
