"""Telemetry facade integration: wiring, determinism, CLI flags."""

import json

from repro.cli import run_cli
from repro.core.experiment import ExperimentRunner
from repro.core.testbed import Testbed, TestbedConfig


def run_once():
    runner = ExperimentRunner(warmup=0.1, duration=0.1, telemetry=True)
    return runner.run_sriov(2, ports=1)


def test_identical_runs_snapshot_byte_identically():
    a = run_once()
    b = run_once()
    assert a.telemetry is not None
    json_a = a.telemetry.metrics_json(a.duration)
    json_b = b.telemetry.metrics_json(b.duration)
    assert json_a == json_b


def test_metrics_document_shape_and_exit_attribution():
    result = run_once()
    doc = result.telemetry.metrics_document(result.duration)
    assert doc["schema"] == "repro-obs/1"
    # Per-domain cycle attribution is present for every guest.
    domains = doc["cycles"]["domains"]
    assert any(name.startswith("vm") for name in domains)
    # The exit breakdown in the document matches the RunResult's
    # printed Fig. 7 numbers exactly.
    for kind, entry in doc["exits"].items():
        assert entry["cycles_per_second"] == \
            result.exit_cycles_per_second[kind]
        assert entry["count"] == result.exit_counts[kind]
    # Registered instruments cover the NIC and guest namespaces.
    names = doc["metrics"]
    assert any(n.startswith("nic.port0.") for n in names)
    assert any(n.startswith("guest.vm0.") for n in names)


def test_trace_captures_spans_across_layers():
    bed_result = run_once()
    tracer = bed_result.telemetry.tracer
    categories = {e.category for e in tracer.events()}
    assert "irq" in categories
    assert "apic" in categories
    assert "dma" in categories


def test_telemetry_off_keeps_null_objects():
    bed = Testbed(TestbedConfig(ports=1))
    from repro.obs.registry import NULL_REGISTRY
    from repro.sim.trace import NULL_TRACER
    assert bed.telemetry is None
    assert bed.profiler is None
    assert bed.platform.trace is NULL_TRACER
    assert bed.platform.metrics is NULL_REGISTRY
    assert bed.ports[0].datapath.trace is NULL_TRACER


def test_cli_flags_write_files(tmp_path, capsys):
    metrics = tmp_path / "m.json"
    trace = tmp_path / "t.json"
    code = run_cli(["--warmup", "0.1", "sriov", "--vms", "1", "--ports", "1",
                    "--duration", "0.1",
                    "--metrics-json", str(metrics),
                    "--trace-out", str(trace)])
    assert code == 0
    doc = json.loads(metrics.read_text())
    assert doc["schema"] == "repro-obs/1"
    entries = json.loads(trace.read_text())
    assert isinstance(entries, list) and entries
    assert all("ph" in e for e in entries)
    out = capsys.readouterr().out
    assert "VM exits" in out


def test_cli_profile_flag(capsys):
    code = run_cli(["--warmup", "0.1", "pv", "--vms", "1", "--ports", "1",
                    "--duration", "0.1", "--profile"])
    assert code == 0
    err = capsys.readouterr().err
    assert "engine profile" in err
