"""Unit tests for the parent-side TelemetryHub and the Dashboard."""

import io
import json
from pathlib import Path

from repro.obs.campaign.dashboard import (Dashboard, format_eta,
                                          format_rate, sparkline)
from repro.obs.campaign.hub import TelemetryHub
from repro.obs.campaign.snapshot import JOURNAL_SCHEMA, SNAPSHOT_SCHEMA
from repro.sweep.supervise import TaskOutcome


class FakeClock:
    def __init__(self, start=100.0):
        self.now = start

    def __call__(self):
        return self.now

    def tick(self, seconds=1.0):
        self.now += seconds
        return self.now


def read_journal(path):
    return [json.loads(line)
            for line in Path(path).read_text().splitlines()]


def spool_write(spool_dir, key, records, pid=111):
    """Append worker-style records to a spool file, like an emitter."""
    path = Path(spool_dir) / f"{key}.{pid}.jsonl"
    with open(path, "a") as handle:
        for record in records:
            handle.write(json.dumps(
                {"schema": SNAPSHOT_SCHEMA, "key": key, **record}) + "\n")
    return path


class TestJournal:
    def test_records_are_stamped_and_ordered(self, tmp_path):
        clock = FakeClock()
        hub = TelemetryHub(tmp_path / "campaign.jsonl", clock=clock)
        hub.campaign_start(total=2, workers=2)
        clock.tick()
        hub.task_running("a", 1)
        hub.task_terminal(TaskOutcome(key="a", status="ok", attempts=1))
        hub.finalize()
        records = read_journal(tmp_path / "campaign.jsonl")
        assert [r["kind"] for r in records] == [
            "campaign_start", "task_running", "task_terminal",
            "campaign_end"]
        assert [r["seq"] for r in records] == [1, 2, 3, 4]
        assert records[0]["schema"] == JOURNAL_SCHEMA
        assert records[1]["wall"] == 101.0

    def test_failed_terminal_keeps_error(self, tmp_path):
        hub = TelemetryHub(tmp_path / "c.jsonl")
        hub.campaign_start(total=1)
        hub.task_terminal(TaskOutcome(key="a", status="failed",
                                      attempts=3, error="boom"))
        hub.finalize()
        terminal = read_journal(tmp_path / "c.jsonl")[1]
        assert terminal["status"] == "failed"
        assert terminal["error"] == "boom"

    def test_finalize_journals_stats_fields(self, tmp_path):
        class Stats:
            total, hits, ok, failed = 4, 1, 3, 1
            wall_s, peak_workers = 9.5, 2

        hub = TelemetryHub(tmp_path / "c.jsonl")
        hub.campaign_start(total=4)
        hub.finalize(Stats())
        end = read_journal(tmp_path / "c.jsonl")[-1]
        assert end["kind"] == "campaign_end"
        assert end["stats"] == {"total": 4, "hits": 1, "ok": 3,
                                "failed": 1, "wall_s": 9.5,
                                "peak_workers": 2}

    def test_journalless_hub_still_aggregates(self):
        hub = TelemetryHub()  # dashboard-only, no journal, no spool
        hub.campaign_start(total=1)
        hub.task_running("a", 1)
        hub.task_terminal(TaskOutcome(key="a", status="ok", attempts=1))
        assert hub.status_counts()["ok"] == 1
        hub.finalize()
        assert hub.journal_errors == 0

    def test_unwritable_journal_counts_not_raises(self, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("x")
        hub = TelemetryHub(blocker / "campaign.jsonl")
        assert hub.journal_errors == 1
        hub.campaign_start(total=1)  # still must not raise
        hub.finalize()


class TestResume:
    def test_settled_keys_are_not_rejournaled(self, tmp_path):
        journal = tmp_path / "campaign.jsonl"
        first = TelemetryHub(journal)
        first.campaign_start(total=2)
        first.task_running("a", 1)
        first.task_terminal(TaskOutcome(key="a", status="ok", attempts=1))
        first.finalize()
        before = read_journal(journal)

        second = TelemetryHub(journal)
        assert second._settled == {"a"}
        second.campaign_start(total=2)
        second.cache_hit("a")       # settled: no new record
        second.task_running("b", 1)
        second.task_terminal(TaskOutcome(key="b", status="ok", attempts=1))
        second.finalize()

        after = read_journal(journal)
        assert after[:len(before)] == before  # append-only
        new_kinds = [r["kind"] for r in after[len(before):]]
        assert new_kinds == ["campaign_start", "task_running",
                             "task_terminal", "campaign_end"]
        # Exactly one successful terminal record per key, ever.
        terminal_keys = [r["key"] for r in after
                         if r["kind"] in ("task_terminal", "cache_hit")]
        assert sorted(terminal_keys) == ["a", "b"]
        # The resumed campaign_start flags itself.
        assert after[len(before)]["resumed"] is True

    def test_failed_cells_are_not_settled(self, tmp_path):
        journal = tmp_path / "campaign.jsonl"
        first = TelemetryHub(journal)
        first.campaign_start(total=1)
        first.task_terminal(TaskOutcome(key="a", status="failed",
                                        attempts=2, error="x"))
        first.finalize()
        second = TelemetryHub(journal)
        assert second._settled == set()  # failure deserves a retry record

    def test_torn_tail_is_ignored_on_load(self, tmp_path):
        journal = tmp_path / "campaign.jsonl"
        hub = TelemetryHub(journal)
        hub.campaign_start(total=1)
        hub.task_terminal(TaskOutcome(key="a", status="ok", attempts=1))
        hub.finalize()
        with open(journal, "a") as handle:
            handle.write('{"kind": "task_term')  # SIGKILL mid-write
        resumed = TelemetryHub(journal)
        assert resumed._settled == {"a"}


class TestSpoolIngestion:
    def test_poll_ingests_and_journals_worker_records(self, tmp_path):
        journal = tmp_path / "campaign.jsonl"
        hub = TelemetryHub(journal)
        hub.campaign_start(total=1)
        hub.spool_dir.mkdir(parents=True, exist_ok=True)
        spool_write(hub.spool_dir, "a", [
            {"kind": "task_start", "scenario": {"vm_count": 1}},
            {"kind": "progress", "sim_now": 0.5, "events_executed": 100,
             "events_per_sec": 2000.0},
        ])
        assert hub.poll() == 2
        assert hub.cells["a"].events_per_sec == 2000.0
        assert hub.cells["a"].sim_now == 0.5
        kinds = [r["kind"] for r in read_journal(journal)]
        assert kinds == ["campaign_start", "task_start", "progress"]

    def test_tail_is_incremental_and_torn_line_safe(self, tmp_path):
        hub = TelemetryHub(tmp_path / "c.jsonl")
        hub.spool_dir.mkdir(parents=True)
        path = spool_write(hub.spool_dir, "a",
                           [{"kind": "task_start", "scenario": {}}])
        with open(path, "a") as handle:
            handle.write('{"kind": "progre')  # incomplete line
        assert hub.poll() == 1
        with open(path, "a") as handle:
            handle.write('ss", "schema": "%s", "key": "a",'
                         ' "events_per_sec": 7.0}\n' % SNAPSHOT_SCHEMA)
        assert hub.poll() == 1  # the completed line, exactly once
        assert hub.poll() == 0  # nothing re-read
        assert hub.cells["a"].events_per_sec == 7.0

    def test_task_end_folds_metrics_and_faults(self, tmp_path):
        hub = TelemetryHub(tmp_path / "c.jsonl")
        hub.spool_dir.mkdir(parents=True)
        for key, gbps in (("a", 9.0), ("b", 5.0)):
            spool_write(hub.spool_dir, key, [{
                "kind": "task_end",
                "result": {"throughput_bps": gbps * 1e9},
                "metrics": {
                    "net.throughput": {"value": gbps * 1e9},
                    "faults.drop": {"value": 2.0},
                    "notes": {"value": "text, skipped"},
                },
            }])
        hub.poll()
        summary = hub.aggregate_metrics()["net.throughput"]
        assert summary["count"] == 2
        assert summary["min"] == 5e9
        assert summary["max"] == 9e9
        assert summary["p50"] == 7e9
        assert "notes" not in hub.aggregate_metrics()
        assert hub.fault_counts == {"faults.drop": 4.0}

    def test_quarantine_and_cache_hit_states(self, tmp_path):
        hub = TelemetryHub(tmp_path / "c.jsonl")
        hub.campaign_start(total=3)
        hub.cache_quarantined("bad")
        hub.cache_hit("warm")
        counts = hub.status_counts()
        assert counts["quarantined"] == 1
        assert counts["ok"] == 1
        assert counts["pending"] == 1
        assert hub.cache_hits() == 1

    def test_finalize_sweeps_spool(self, tmp_path):
        hub = TelemetryHub(tmp_path / "c.jsonl")
        hub.spool_dir.mkdir(parents=True)
        spool_write(hub.spool_dir, "a",
                    [{"kind": "task_start", "scenario": {}}])
        hub.campaign_start(total=1)
        hub.finalize()
        assert not hub.spool_dir.exists()


class TestAggregates:
    def test_eta_from_completed_runtimes(self, tmp_path):
        clock = FakeClock()
        hub = TelemetryHub(tmp_path / "c.jsonl", clock=clock)
        hub.campaign_start(total=4, workers=2)
        hub.task_running("a", 1)
        clock.tick(10.0)
        hub.task_terminal(TaskOutcome(key="a", status="ok", attempts=1))
        # 3 remaining * 10s mean / 2 workers = 15s.
        assert hub.eta_seconds() == 15.0
        assert hub.completed_runtimes() == [("a", 10.0)]

    def test_cached_cells_do_not_skew_eta(self, tmp_path):
        hub = TelemetryHub(tmp_path / "c.jsonl", clock=FakeClock())
        hub.campaign_start(total=2)
        hub.cache_hit("a")  # zero-runtime, must not enter the mean
        assert hub.completed_runtimes() == []
        assert hub.eta_seconds() is None

    def test_throughput_history_sums_running_cells(self, tmp_path):
        hub = TelemetryHub(tmp_path / "c.jsonl")
        hub.spool_dir.mkdir(parents=True)
        hub.task_running("a", 1)
        hub.task_running("b", 1)
        for key, rate in (("a", 100.0), ("b", 50.0)):
            spool_write(hub.spool_dir, key, [
                {"kind": "progress", "events_per_sec": rate}])
        hub.poll()
        assert hub.fleet_events_per_sec() == 150.0


class TestDashboard:
    def _hub(self, tmp_path):
        hub = TelemetryHub(tmp_path / "c.jsonl", clock=FakeClock())
        hub.campaign_start(total=4, workers=2)
        return hub

    def test_non_tty_emits_summary_lines(self, tmp_path):
        stream = io.StringIO()
        clock = FakeClock()
        dash = Dashboard(stream, force_tty=False, line_interval=1.0,
                         clock=clock)
        hub = self._hub(tmp_path)
        hub.dashboard = dash
        clock.tick(2.0)
        hub.task_running("a", 1)
        clock.tick(2.0)
        hub.task_terminal(TaskOutcome(key="a", status="ok", attempts=1))
        hub.finalize()
        lines = [line for line in stream.getvalue().splitlines() if line]
        assert lines
        assert all(line.startswith("campaign: ") for line in lines)
        assert "\x1b[" not in stream.getvalue()  # no ANSI in line mode
        assert lines[-1].startswith("campaign: 1/4 done")

    def test_summary_line_contents(self, tmp_path):
        hub = self._hub(tmp_path)
        hub.task_running("a", 1)
        hub.task_terminal(TaskOutcome(key="b", status="failed",
                                      attempts=1, error="x"))
        hub.cache_hit("c")
        line = Dashboard(io.StringIO(), force_tty=False).summary_line(hub)
        assert line.startswith("campaign: 2/4 done (1 running, 1 failed)")
        assert "1 cached" in line
        assert line.endswith("eta ?")

    def test_renders_are_throttled(self, tmp_path):
        stream = io.StringIO()
        clock = FakeClock()
        dash = Dashboard(stream, force_tty=False, line_interval=10.0,
                         clock=clock)
        hub = self._hub(tmp_path)
        hub.dashboard = dash
        clock.tick(20.0)
        for i in range(50):  # a burst of events inside one interval
            hub.task_running(f"k{i}", 1)
        assert len(stream.getvalue().splitlines()) == 1

    def test_tty_panel_redraws_in_place(self, tmp_path):
        stream = io.StringIO()
        clock = FakeClock()
        dash = Dashboard(stream, force_tty=True, min_interval=0.0,
                         clock=clock)
        hub = self._hub(tmp_path)
        hub.dashboard = dash
        clock.tick()
        hub.task_running("a", 1)
        first_height = dash._lines_drawn
        assert first_height > 0
        clock.tick()
        hub.task_terminal(TaskOutcome(key="a", status="ok", attempts=1))
        output = stream.getvalue()
        assert "campaign dashboard" in output
        assert f"\x1b[{first_height}F" in output  # cursor-up re-home
        assert "\x1b[2K" in output                # erase-line redraw

    def test_sparkline_and_formatting_helpers(self):
        assert sparkline([]) == ""
        assert sparkline([0.0, 0.0]) == "▁▁"
        line = sparkline([1.0, 5.0, 10.0])
        assert len(line) == 3
        assert line[-1] == "█"
        assert set(line) <= set("▁▂▃▄▅▆▇█")
        assert format_rate(57_300.0) == "57.3k ev/s"
        assert format_rate(2.5e6) == "2.5M ev/s"
        assert format_rate(12.0) == "12 ev/s"
        assert format_eta(None) == "eta ?"
        assert format_eta(41.0) == "eta 41s"
        assert format_eta(150.0) == "eta 2.5m"
