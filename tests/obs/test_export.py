"""Trace export tests, including the checked-in Chrome golden file."""

import json
import pathlib

from repro.obs.export import (
    chrome_trace_events,
    trace_to_chrome_json,
    trace_to_jsonl,
    write_trace,
)
from repro.sim.trace import PHASE_BEGIN, PHASE_END, TraceEvent

GOLDEN = pathlib.Path(__file__).parent / "golden_chrome_trace.json"


def synthetic_events():
    """A fixed stream exercising instants, spans and detail args."""
    return [
        TraceEvent(0.000010, "irq", "deliver", (("vector", 64),
                                                ("domain", 1)), PHASE_BEGIN),
        TraceEvent(0.000012, "apic", "eoi", (("domain", 1),
                                             ("accelerated", True))),
        TraceEvent(0.000015, "irq", "deliver", (("vector", 64),), PHASE_END),
        TraceEvent(0.000020, "dma", "igb0.dma", (("bytes", 1500),)),
        TraceEvent(0.000025, "mbx", "vf0", (("sender", "vf"),
                                            ("kind", "set_vlan")), PHASE_BEGIN),
        TraceEvent(0.000031, "mbx", "vf0", (("receiver", "pf"),), PHASE_END),
    ]


def test_chrome_export_matches_golden():
    rendered = trace_to_chrome_json(synthetic_events())
    assert rendered == GOLDEN.read_text()


def test_chrome_export_is_valid_trace_json():
    entries = json.loads(trace_to_chrome_json(synthetic_events()))
    assert isinstance(entries, list)
    for entry in entries:
        assert "ph" in entry and "name" in entry
        assert entry["pid"] == 0
        if entry["ph"] != "M":
            assert isinstance(entry["ts"], float)
    # One thread_name metadata entry per category, listed first.
    metas = [e for e in entries if e["ph"] == "M"]
    assert [m["args"]["name"] for m in metas] == ["irq", "apic", "dma", "mbx"]
    assert entries[: len(metas)] == metas


def test_timestamps_are_microseconds():
    [_, body] = chrome_trace_events([TraceEvent(1.5, "c", "x")])
    assert body["ts"] == 1.5e6
    assert body["s"] == "t"  # instants are thread-scoped


def test_span_phases_preserved():
    entries = chrome_trace_events(synthetic_events())
    phases = [e["ph"] for e in entries if e["ph"] != "M"]
    assert phases == ["B", "i", "E", "i", "B", "E"]


def test_jsonl_roundtrip():
    text = trace_to_jsonl(synthetic_events())
    rows = [json.loads(line) for line in text.splitlines()]
    assert len(rows) == 6
    assert rows[0]["category"] == "irq"
    assert rows[0]["phase"] == "B"
    assert rows[0]["detail"]["vector"] == 64


def test_chrome_export_of_evicted_stream():
    """A ring buffer that evicted a span's B still exports cleanly:
    the orphan E keeps its phase, timestamps stay microseconds, and
    the per-category metadata rows still lead the document."""
    from repro.sim import Simulator
    from repro.sim.trace import Tracer

    tracer = Tracer(Simulator(), capacity=3)
    tracer.enable_all()
    tracer.begin("irq", "deliver", vector=64)
    tracer.emit("apic", "eoi")
    tracer.emit("dma", "igb0.dma", bytes=1500)
    tracer.end("irq", "deliver")  # evicts the matching B
    assert tracer.evicted == 1

    entries = json.loads(trace_to_chrome_json(tracer.events()))
    metas = [e for e in entries if e["ph"] == "M"]
    body = [e for e in entries if e["ph"] != "M"]
    # The evicted B's category ("irq") is still present — its orphan E
    # survived — so it still gets a thread_name row.
    assert {m["args"]["name"] for m in metas} == {"irq", "apic", "dma"}
    assert entries[: len(metas)] == metas
    assert [e["ph"] for e in body] == ["i", "i", "E"]
    assert body[-1]["name"] == "deliver"
    # JSONL of the same evicted stream round-trips record-for-record.
    rows = [json.loads(line)
            for line in trace_to_jsonl(tracer.events()).splitlines()]
    assert [r["phase"] for r in rows] == ["i", "i", "E"]


def test_write_trace_picks_format_by_extension(tmp_path):
    events = synthetic_events()
    chrome = tmp_path / "t.json"
    jsonl = tmp_path / "t.jsonl"
    assert write_trace(str(chrome), events) == "chrome"
    assert write_trace(str(jsonl), events) == "jsonl"
    assert isinstance(json.loads(chrome.read_text()), list)
    assert len(jsonl.read_text().splitlines()) == 6
