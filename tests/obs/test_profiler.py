"""Unit tests for the host-side engine profiler."""

from repro.obs.profiler import EngineProfiler
from repro.sim.engine import Simulator


def test_profiler_counts_and_times_callbacks():
    sim = Simulator()
    ticks = {"n": 0}

    def tick():
        ticks["n"] += 1
        if ticks["n"] < 5:
            sim.schedule(0.1, tick)

    clock = iter(float(i) for i in range(1000))
    profiler = EngineProfiler(sim, clock=lambda: next(clock))
    profiler.install()
    sim.schedule(0.1, tick)
    sim.run(until=10.0)
    assert ticks["n"] == 5
    rows = profiler.rows()
    assert len(rows) == 1
    name, count, wall = rows[0]
    assert "tick" in name
    assert count == 5
    assert wall > 0


def test_uninstall_restores_direct_dispatch():
    sim = Simulator()
    profiler = EngineProfiler(sim)
    profiler.install()
    profiler.uninstall()
    fired = []
    sim.schedule(0.1, lambda: fired.append(1))
    sim.run(until=1.0)
    assert fired == [1]
    assert profiler.rows() == []


def test_table_renders_total_row():
    sim = Simulator()
    profiler = EngineProfiler(sim)
    profiler.install()
    sim.schedule(0.1, lambda: None)
    sim.run(until=1.0)
    table = profiler.table()
    assert "engine profile" in table
    assert "TOTAL" in table
