"""Unit tests for the worker-side telemetry streamer (spool records)."""

import json
import os
import threading
import time
from pathlib import Path

import pytest

from repro.obs.campaign.snapshot import (DEFAULT_HEARTBEAT, HUB_KINDS,
                                         JOURNAL_SCHEMA, SNAPSHOT_SCHEMA,
                                         SnapshotEmitter, SnapshotError,
                                         WORKER_KINDS, result_summary,
                                         validate_record)


def spool_lines(spool_dir):
    records = []
    for path in sorted(Path(spool_dir).glob("*.jsonl")):
        for line in path.read_text().splitlines():
            records.append(json.loads(line))
    return records


class TestValidateRecord:
    def _worker(self, kind="progress", **extra):
        return {"schema": SNAPSHOT_SCHEMA, "kind": kind, "key": "k",
                **extra}

    def test_accepts_worker_record(self):
        record = self._worker()
        assert validate_record(record) is record

    def test_rejects_non_dict(self):
        with pytest.raises(SnapshotError):
            validate_record(["not", "a", "dict"])

    def test_rejects_unknown_kind(self):
        with pytest.raises(SnapshotError):
            validate_record(self._worker(kind="bogus"))

    def test_rejects_wrong_schema(self):
        bad = self._worker()
        bad["schema"] = "something-else/9"
        with pytest.raises(SnapshotError):
            validate_record(bad)

    def test_rejects_missing_key(self):
        bad = self._worker()
        del bad["key"]
        with pytest.raises(SnapshotError):
            validate_record(bad)

    def test_hub_kinds_only_in_journal_mode(self):
        record = {"kind": "cache_hit", "key": "k", "wall": 1.0, "seq": 1}
        assert validate_record(record, journal=True) is record
        with pytest.raises(SnapshotError):
            validate_record(record)  # spool mode: hub kinds rejected

    def test_journal_requires_wall_and_seq(self):
        record = self._worker()
        with pytest.raises(SnapshotError):
            validate_record(record, journal=True)
        record["wall"] = 12.0
        record["seq"] = 3
        assert validate_record(record, journal=True) is record

    def test_campaign_records_need_no_key(self):
        record = {"kind": "campaign_start", "schema": JOURNAL_SCHEMA,
                  "wall": 0.0, "seq": 1}
        assert validate_record(record, journal=True) is record

    def test_kind_vocabularies_are_disjoint(self):
        assert not set(WORKER_KINDS) & set(HUB_KINDS)


class TestResultSummary:
    def test_compacts_the_dashboard_columns(self):
        doc = result_summary({
            "throughput_bps": 5e9, "loss_rate": 0.01,
            "interrupt_hz": 2000.0, "vm_count": 10, "duration": 0.4,
            "cpu": {"dom0": 20.0, "guest": 30.0, "xen": 5.0},
            "extras": {"huge": list(range(1000))},
        })
        assert doc == {"throughput_bps": 5e9, "cpu_percent": 55.0,
                       "loss_rate": 0.01, "interrupt_hz": 2000.0,
                       "vm_count": 10, "duration": 0.4}

    def test_defaults_for_missing_fields(self):
        doc = result_summary({})
        assert doc["throughput_bps"] == 0.0
        assert doc["cpu_percent"] == 0.0


class FakeSim:
    """Two scalar attributes, like the real Simulator's hot counters."""

    def __init__(self):
        self.now = 0.0
        self.events_executed = 0


class FakeBed:
    def __init__(self):
        self.sim = FakeSim()


class TestSnapshotEmitter:
    def test_task_start_record(self, tmp_path):
        emitter = SnapshotEmitter(str(tmp_path), "abc123")
        emitter.task_start({"mode": "sriov", "vm_count": 2})
        emitter.close()
        [record] = spool_lines(tmp_path)
        assert record["kind"] == "task_start"
        assert record["schema"] == SNAPSHOT_SCHEMA
        assert record["key"] == "abc123"
        assert record["pid"] == os.getpid()
        assert record["scenario"]["vm_count"] == 2

    def test_spool_filename_carries_pid(self, tmp_path):
        emitter = SnapshotEmitter(str(tmp_path), "k1")
        emitter.task_start({})
        emitter.close()
        [path] = list(tmp_path.glob("*.jsonl"))
        assert path.name == f"k1.{os.getpid()}.jsonl"

    def test_heartbeat_thread_samples_progress(self, tmp_path):
        emitter = SnapshotEmitter(str(tmp_path), "k", heartbeat=0.02)
        bed = FakeBed()
        emitter.observe_testbed(bed)
        bed.sim.now = 1.5
        bed.sim.events_executed = 500
        deadline = time.monotonic() + 2.0
        while time.monotonic() < deadline:
            progress = [r for r in spool_lines(tmp_path)
                        if r["kind"] == "progress"
                        and r["events_executed"] == 500]
            if progress:
                break
            time.sleep(0.01)
        emitter.close()
        assert progress, "no progress heartbeat within 2s"
        assert progress[0]["sim_now"] == 1.5
        assert progress[0]["events_per_sec"] >= 0.0
        assert validate_record(progress[0])

    def test_observe_testbed_is_idempotent(self, tmp_path):
        # Migration runs build two testbeds; the second observe call
        # swaps the simulator but must not spawn a second thread.
        emitter = SnapshotEmitter(str(tmp_path), "k", heartbeat=60.0)
        emitter.observe_testbed(FakeBed())
        first = emitter._thread
        second_bed = FakeBed()
        emitter.observe_testbed(second_bed)
        assert emitter._thread is first
        assert emitter._sim is second_bed.sim
        emitter.close()

    def test_close_stops_the_heartbeat(self, tmp_path):
        emitter = SnapshotEmitter(str(tmp_path), "k", heartbeat=0.01)
        emitter.observe_testbed(FakeBed())
        thread = emitter._thread
        emitter.close()
        thread.join(timeout=2.0)
        assert not thread.is_alive()
        assert threading.active_count() >= 1  # nothing leaked hard

    def test_unwritable_spool_never_raises(self, tmp_path):
        target = tmp_path / "a-file-not-a-dir"
        target.write_text("occupied")
        emitter = SnapshotEmitter(str(target / "sub"), "k")
        # Every public call is a no-op after the failed open.
        emitter.task_start({})
        emitter.observe_testbed(FakeBed())
        emitter.close()
        assert emitter._broken

    def test_default_heartbeat_is_subsecond(self):
        assert 0 < DEFAULT_HEARTBEAT < 1.0

    def test_task_end_without_telemetry(self, tmp_path):
        class Result:
            telemetry = None
            exit_counts = {"apic-access-eoi": 3}

            def to_dict(self):
                return {"throughput_bps": 1e9, "cpu": {"dom0": 5.0},
                        "loss_rate": 0.0, "interrupt_hz": 100.0,
                        "vm_count": 1, "duration": 0.1}

        emitter = SnapshotEmitter(str(tmp_path), "k")
        emitter.observe_testbed(FakeBed())
        emitter.task_end(Result())
        records = spool_lines(tmp_path)
        end = records[-1]
        assert end["kind"] == "task_end"
        assert end["result"]["throughput_bps"] == 1e9
        assert end["metrics"] == {}
        assert end["exit_counts"] == {"apic-access-eoi": 3}
        # task_end closes the spool: later writes are silently dropped.
        emitter.task_start({})
        assert spool_lines(tmp_path) == records
