"""The CycleLedger must reconcile exactly with the VmExitTracer.

Every ``tracer.record(kind, cost)`` call in the VMM layer is paired with
a ``ledger.charge(domain, "exit." + kind.value, cost)`` — so on any run,
per-kind counts and cycles from the two instruments are identical.
This is what lets the experiment runner (and the Fig. 7 figure) read the
exit breakdown from telemetry instead of bespoke bookkeeping.
"""

import pytest

from repro.core.experiment import ExperimentRunner
from repro.core.testbed import Testbed, TestbedConfig
from repro.net.mac import MacAddress
from repro.net.packet import Packet
from repro.vmm.domain import DomainKind, GuestKernel
from repro.vmm.vmexit import VmExitKind


def assert_reconciles(platform):
    tracer = platform.tracer
    breakdown = platform.ledger.exit_breakdown()
    for kind in VmExitKind:
        count = tracer.count(kind)
        cycles = tracer.cycles(kind)
        if count == 0:
            assert kind.value not in breakdown
            continue
        led_count, led_cycles = breakdown[kind.value]
        assert led_count == count, kind
        assert led_cycles == pytest.approx(cycles), kind
    # No exit categories the tracer never saw.
    assert set(breakdown) <= {k.value for k in VmExitKind}


def test_ledger_matches_vmexit_tracer_on_interrupt_path():
    bed = Testbed(TestbedConfig(ports=1))
    guest = bed.add_sriov_guest()
    for _ in range(10):
        guest.port.wire_receive(
            [Packet(src=MacAddress(0x02_1111), dst=guest.vf.mac)])
        bed.sim.run(until=bed.sim.now + 0.001)
    assert bed.platform.tracer.total_count > 0
    assert_reconciles(bed.platform)


def test_ledger_matches_on_unoptimized_2618_run():
    """The Fig. 7 configuration: every §5 overhead enabled."""
    from repro.core.optimizations import OptimizationConfig
    runner = ExperimentRunner(warmup=0.1, duration=0.1)
    result = runner.run_sriov(2, kernel=GuestKernel.LINUX_2_6_18,
                              opts=OptimizationConfig.none(), ports=1)
    # MSI-X mask/unmask traps happen on 2.6.18 — the richest exit mix.
    assert "msix-mask" in result.exit_counts or result.exit_counts
    # exit_counts/rates come from the ledger; check them against the
    # tracer's own view of the same window.
    assert sum(result.exit_counts.values()) > 0


def test_runresult_exit_fields_derive_from_ledger():
    runner = ExperimentRunner(warmup=0.1, duration=0.1)
    result = runner.run_sriov(2, ports=1)
    # The printed/returned rates must equal ledger cycles / elapsed.
    # (The platform is gone by now, but rates * duration must be the
    # per-kind cycle totals of a consistent breakdown: all positive,
    # counts present for every rated kind.)
    assert result.exit_cycles_per_second
    for kind, rate in result.exit_cycles_per_second.items():
        assert rate > 0
        assert result.exit_counts[kind] > 0


def test_pvm_guest_exits_reconcile_too():
    bed = Testbed(TestbedConfig(ports=1))
    guest = bed.add_sriov_guest(kind=DomainKind.PVM)
    for _ in range(5):
        guest.port.wire_receive(
            [Packet(src=MacAddress(0x02_2222), dst=guest.vf.mac)])
        bed.sim.run(until=bed.sim.now + 0.001)
    assert_reconciles(bed.platform)
