"""Campaign observability, end to end through the real engine.

The hard contract under test: the telemetry hub is *observation only*.
Results, cache entries and checkpoints must be byte-identical with the
hub enabled or disabled, and a resumed campaign must append to the same
journal without duplicating or losing task records.
"""

import json
from pathlib import Path

from repro.api import Scenario
from repro.obs.campaign import TelemetryHub
from repro.obs.campaign.report import load_journal, replay, write_report
from repro.sweep import CampaignCheckpoint, ResultCache, run_sweep

QUICK = dict(warmup=0.2, duration=0.1)


def _scenarios():
    base = Scenario(mode="sriov", vm_count=1, ports=1,
                    policy={"kind": "fixed_itr", "hz": 2000}, **QUICK)
    return [base, base.with_(vm_count=2)]


def _dumps(outcomes):
    return json.dumps([o.result.to_dict() for o in outcomes],
                      sort_keys=True)


def _cache_bytes(cache_dir):
    return {path.name: path.read_bytes()
            for path in sorted(Path(cache_dir).rglob("*.json"))}


def _read_journal(path):
    return [json.loads(line)
            for line in Path(path).read_text().splitlines()]


class TestByteIdentity:
    def test_results_cache_and_checkpoint_identical_hub_on_vs_off(
            self, tmp_path):
        plain_dir = tmp_path / "plain"
        hubbed_dir = tmp_path / "hubbed"
        plain, _ = run_sweep(
            _scenarios(), jobs=2, cache=ResultCache(plain_dir / "cache"),
            checkpoint=CampaignCheckpoint(plain_dir / "ckpt.json",
                                          {"kind": "sweep"}))
        hub = TelemetryHub(hubbed_dir / "campaign.jsonl")
        hubbed, stats = run_sweep(
            _scenarios(), jobs=2, cache=ResultCache(hubbed_dir / "cache"),
            checkpoint=CampaignCheckpoint(hubbed_dir / "ckpt.json",
                                          {"kind": "sweep"}),
            hub=hub)
        hub.finalize(stats)

        assert _dumps(plain) == _dumps(hubbed)
        assert _cache_bytes(plain_dir / "cache") == \
            _cache_bytes(hubbed_dir / "cache")
        plain_ckpt = json.loads((plain_dir / "ckpt.json").read_text())
        hubbed_ckpt = json.loads((hubbed_dir / "ckpt.json").read_text())
        # Completion order depends on pool scheduling, not the hub.
        plain_ckpt["completed"] = sorted(plain_ckpt["completed"])
        hubbed_ckpt["completed"] = sorted(hubbed_ckpt["completed"])
        assert plain_ckpt == hubbed_ckpt
        # And the journal is real: it validates and replays both cells.
        records = load_journal(hubbed_dir / "campaign.jsonl")
        cells = replay(records)
        assert len(cells) == 2
        assert all(cell.status == "ok" for cell in cells.values())

    def test_spool_telemetry_does_not_leak_into_cache_keys(
            self, tmp_path):
        # Same scenarios, hub on then hub off, one shared cache: the
        # second run must be 100% hits (same keys, same entries).
        cache = ResultCache(tmp_path / "cache")
        hub = TelemetryHub(tmp_path / "campaign.jsonl")
        _, cold = run_sweep(_scenarios(), cache=cache, hub=hub)
        hub.finalize(cold)
        _, warm = run_sweep(_scenarios(), cache=cache)
        assert cold.executed == 2 and cold.hits == 0
        assert warm.hits == 2 and warm.executed == 0


class TestJournalThroughEngine:
    def test_sweep_writes_a_complete_journal(self, tmp_path):
        journal = tmp_path / "campaign.jsonl"
        hub = TelemetryHub(journal)
        _, stats = run_sweep(_scenarios(), jobs=2, hub=hub)
        hub.finalize(stats)
        records = _read_journal(journal)
        kinds = [record["kind"] for record in records]
        assert kinds[0] == "campaign_start"
        assert kinds[-1] == "campaign_end"
        assert kinds.count("task_terminal") == 2
        assert kinds.count("task_end") == 2      # worker spool ingested
        assert records[0]["total"] == 2
        assert records[-1]["stats"]["ok"] == 2
        assert records[-1]["stats"]["peak_workers"] >= 1
        # Sequence numbers are strictly increasing; every record has a
        # host wall stamp (the journal's only clock).
        seqs = [record["seq"] for record in records]
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)
        assert all("wall" in record for record in records)
        # The spool was swept after a clean finalize.
        assert not hub.spool_dir.exists()

    def test_worker_task_end_carries_result_and_metrics(self, tmp_path):
        hub = TelemetryHub(tmp_path / "campaign.jsonl")
        _, stats = run_sweep(_scenarios()[:1], hub=hub)
        hub.finalize(stats)
        [end] = [record for record in
                 _read_journal(tmp_path / "campaign.jsonl")
                 if record["kind"] == "task_end"]
        assert end["result"]["throughput_bps"] > 0
        assert end["metrics"]  # registry snapshot folded in
        assert end["sim_now"] > 0

    def test_report_renders_from_engine_journal(self, tmp_path):
        journal = tmp_path / "campaign.jsonl"
        hub = TelemetryHub(journal)
        _, stats = run_sweep(_scenarios(), jobs=2, hub=hub)
        hub.finalize(stats)
        out = write_report(journal)
        doc = out.read_text()
        assert doc.startswith("<!doctype html>")
        assert 'class="badge ok">ok</span>' in doc


class TestResume:
    def test_resumed_campaign_appends_without_duplicates(self, tmp_path):
        journal = tmp_path / "campaign.jsonl"
        cache = ResultCache(tmp_path / "cache")
        scenarios = _scenarios()

        # First run settles only the first cell (simulating a campaign
        # interrupted after one task).
        first_hub = TelemetryHub(journal)
        _, first_stats = run_sweep(scenarios[:1], cache=cache,
                                   hub=first_hub)
        first_hub.finalize(first_stats)
        before = _read_journal(journal)

        # The resumed run replays the full spec: cell one is a warm
        # cache hit (already settled), cell two executes fresh.
        second_hub = TelemetryHub(journal)
        _, second_stats = run_sweep(scenarios, cache=cache,
                                    hub=second_hub)
        second_hub.finalize(second_stats)

        records = _read_journal(journal)
        assert records[:len(before)] == before  # append-only
        # No duplicates: at most one settle record per key overall.
        settled = [record["key"] for record in records
                   if record["kind"] == "cache_hit"
                   or (record["kind"] == "task_terminal"
                       and record["status"] in ("ok", "retried"))]
        assert len(settled) == len(set(settled)) == 2
        # No losses: replay sees both cells as ok.
        cells = replay(load_journal(journal, strict=False))
        assert sorted(cell.status for cell in cells.values()) == \
            ["ok", "ok"]
        # Both campaign_start records survive; the second is flagged.
        starts = [record for record in records
                  if record["kind"] == "campaign_start"]
        assert [start["resumed"] for start in starts] == [False, True]

    def test_torn_journal_tail_resumes_cleanly(self, tmp_path):
        journal = tmp_path / "campaign.jsonl"
        cache = ResultCache(tmp_path / "cache")
        hub = TelemetryHub(journal)
        _, stats = run_sweep(_scenarios(), cache=cache, hub=hub)
        hub.finalize(stats)
        with open(journal, "a") as handle:
            handle.write('{"kind": "task_runn')  # SIGKILL mid-write

        resumed = TelemetryHub(journal)
        _, warm = run_sweep(_scenarios(), cache=cache, hub=resumed)
        resumed.finalize(warm)
        assert warm.hits == 2
        # Tolerant load skips the torn line; both cells still settle
        # exactly once.
        records = load_journal(journal, strict=False)
        settled = [record["key"] for record in records
                   if record["kind"] in ("cache_hit", "task_terminal")]
        assert len(settled) == len(set(settled)) == 2
