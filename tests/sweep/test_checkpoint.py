"""Checkpoint/resume: atomic progress records and zero recomputation.

The integration test at the bottom does the full robustness loop the
CI chaos-harness also exercises: start a figure campaign in a
subprocess, SIGTERM it mid-flight, resume from the checkpoint, and
assert the resumed artifact is byte-identical to an uninterrupted
run's — with the completed cells served from the cache, not re-run.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.api import Scenario
from repro.sweep import ResultCache, run_sweep
from repro.sweep.checkpoint import (CHECKPOINT_SCHEMA, CampaignCheckpoint,
                                    CheckpointError)


class TestCampaignCheckpoint:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "ck.json"
        checkpoint = CampaignCheckpoint(path, {"kind": "sweep",
                                               "spec": {"base": {}}},
                                        total=3)
        checkpoint.mark_completed("aaa")
        checkpoint.mark_failed("bbb", {"key": "bbb", "status": "failed",
                                       "attempts": 3, "error": "boom"})
        loaded = CampaignCheckpoint.load(path)
        assert loaded.command == {"kind": "sweep", "spec": {"base": {}}}
        assert loaded.total == 3
        assert loaded.completed == ["aaa"]
        assert loaded.failed["bbb"]["error"] == "boom"

    def test_mark_completed_is_idempotent_and_clears_failed(self,
                                                            tmp_path):
        checkpoint = CampaignCheckpoint(tmp_path / "ck.json",
                                        {"kind": "sweep"})
        checkpoint.mark_failed("k", {"status": "failed"})
        checkpoint.mark_completed("k")  # a later retry succeeded
        checkpoint.mark_completed("k")
        assert checkpoint.completed == ["k"]
        assert checkpoint.failed == {}

    def test_completed_key_cannot_regress_to_failed(self, tmp_path):
        checkpoint = CampaignCheckpoint(tmp_path / "ck.json",
                                        {"kind": "sweep"})
        checkpoint.mark_completed("k")
        checkpoint.mark_failed("k", {"status": "failed"})
        assert checkpoint.failed == {}

    def test_schema_is_versioned(self, tmp_path):
        path = tmp_path / "ck.json"
        CampaignCheckpoint(path, {"kind": "sweep"}).save()
        assert json.loads(path.read_text())["schema"] == CHECKPOINT_SCHEMA

    def test_load_rejects_foreign_schema(self, tmp_path):
        path = tmp_path / "ck.json"
        path.write_text(json.dumps({"schema": "not-a-checkpoint/9"}))
        with pytest.raises(CheckpointError):
            CampaignCheckpoint.load(path)

    def test_load_rejects_garbage_and_missing(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{ torn wri")
        with pytest.raises(CheckpointError):
            CampaignCheckpoint.load(bad)
        with pytest.raises(CheckpointError):
            CampaignCheckpoint.load(tmp_path / "absent.json")

    def test_load_rejects_commandless_checkpoint(self, tmp_path):
        path = tmp_path / "ck.json"
        path.write_text(json.dumps({"schema": CHECKPOINT_SCHEMA,
                                    "completed": []}))
        with pytest.raises(CheckpointError):
            CampaignCheckpoint.load(path)

    def test_save_leaves_no_tmp_debris(self, tmp_path):
        checkpoint = CampaignCheckpoint(tmp_path / "ck.json",
                                        {"kind": "sweep"})
        for index in range(5):
            checkpoint.mark_completed(f"key{index}")
        assert list(tmp_path.glob("*.tmp.*")) == []


class TestRunnerIntegration:
    def _scenarios(self, count=3):
        base = Scenario(mode="sriov", vm_count=1, warmup=0.05,
                        duration=0.05)
        return [base.with_(seed=40 + index) for index in range(count)]

    def test_checkpoint_tracks_a_campaign(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        checkpoint = CampaignCheckpoint(tmp_path / "ck.json",
                                        {"kind": "sweep"})
        outcomes, stats = run_sweep(self._scenarios(), cache=cache,
                                    checkpoint=checkpoint)
        assert checkpoint.total == 3
        assert sorted(checkpoint.completed) == sorted(
            outcome.key for outcome in outcomes)
        assert checkpoint.failed == {}

    def test_interrupted_campaign_resumes_with_zero_recomputation(
            self, tmp_path):
        # "Interrupt" by running a prefix of the campaign, as a kill
        # after two completions would leave things: cache + checkpoint
        # agree on what's done.
        cache_dir = tmp_path / "cache"
        scenarios = self._scenarios()
        checkpoint = CampaignCheckpoint(tmp_path / "ck.json",
                                        {"kind": "sweep"})
        run_sweep(scenarios[:2], cache=ResultCache(cache_dir),
                  checkpoint=checkpoint)
        resumed = CampaignCheckpoint.load(tmp_path / "ck.json")
        outcomes, stats = run_sweep(scenarios,
                                    cache=ResultCache(cache_dir),
                                    checkpoint=resumed)
        assert stats.hits == 2 and stats.executed == 1
        assert len(resumed.completed) == 3
        # Byte-identity: the resumed campaign's results match a fresh
        # uninterrupted run in a clean cache.
        fresh, _ = run_sweep(scenarios,
                             cache=ResultCache(tmp_path / "cache2"))
        assert ([outcome.result.to_dict() for outcome in outcomes]
                == [outcome.result.to_dict() for outcome in fresh])


REPO = Path(__file__).resolve().parents[2]


def _figures_cmd(out_dir, cache_dir, extra, select=True):
    cmd = [sys.executable, "-m", "repro", "figures", "--jobs", "2",
           "--out-dir", str(out_dir), "--cache-dir", str(cache_dir)]
    if select:  # --resume carries the selection; fresh runs name it
        cmd += ["--only", "fig06", "--quick"]
    return cmd + extra


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    return env


@pytest.mark.slow
def test_sigterm_then_resume_is_byte_identical(tmp_path):
    """Kill a figure campaign mid-flight; resume must finish it with
    the completed cells cached and the artifact byte-identical to an
    uninterrupted run."""
    ck = tmp_path / "ck.json"
    out_a = tmp_path / "out-interrupted"
    cache_a = tmp_path / "cache-a"
    # DEVNULL, not PIPE: orphaned pool workers inherit the pipe and
    # would keep it open past the parent's death, wedging a reader.
    process = subprocess.Popen(
        _figures_cmd(out_a, cache_a, ["--checkpoint", str(ck)]),
        cwd=REPO, env=_env(), stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL)
    # SIGTERM once the campaign is mid-flight: some tasks done, not all.
    deadline = time.monotonic() + 120
    while time.monotonic() < deadline and process.poll() is None:
        if ck.exists():
            try:
                done = len(json.loads(ck.read_text())["completed"])
            except (ValueError, KeyError):
                done = 0
            if done >= 1:
                break
        time.sleep(0.05)
    if process.poll() is None:
        process.send_signal(signal.SIGTERM)
    process.wait(timeout=60)

    completed_before = len(json.loads(ck.read_text())["completed"])
    resume = subprocess.run(
        _figures_cmd(out_a, cache_a, ["--resume", str(ck)], select=False),
        cwd=REPO, env=_env(), capture_output=True, text=True, timeout=300)
    assert resume.returncode == 0, resume.stdout + resume.stderr
    # Zero recomputation: every cell completed before the kill is a
    # cache hit on resume.
    summary = [line for line in resume.stdout.splitlines()
               if line.startswith("cache summary:")][0]
    hits = int(summary.split("hits=")[1].split()[0])
    assert hits >= completed_before

    # The reference: one uninterrupted run, separate cache.
    out_b = tmp_path / "out-clean"
    clean = subprocess.run(
        _figures_cmd(out_b, tmp_path / "cache-b", []),
        cwd=REPO, env=_env(), capture_output=True, text=True, timeout=300)
    assert clean.returncode == 0, clean.stdout + clean.stderr
    assert ((out_a / "fig06.json").read_bytes()
            == (out_b / "fig06.json").read_bytes())
