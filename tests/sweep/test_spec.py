"""Unit tests for the declarative sweep spec."""

import pytest

from repro.api import Scenario
from repro.sweep import SweepSpec


class TestExpansion:
    def test_grid_cartesian_product_in_document_order(self):
        spec = SweepSpec.from_dict({
            "base": {"mode": "sriov"},
            "grid": {"vm_count": [1, 2], "kind": ["hvm", "pvm"]},
        })
        scenarios = spec.expand()
        assert len(spec) == len(scenarios) == 4
        # First axis varies slowest (itertools.product order).
        assert [(s.vm_count, s.kind) for s in scenarios] == [
            (1, "hvm"), (1, "pvm"), (2, "hvm"), (2, "pvm")]

    def test_list_cases_compose_with_grid(self):
        spec = SweepSpec.from_dict({
            "base": {"mode": "sriov", "ports": 1},
            "list": [{"kernel": "2.6.18"}, {"kernel": "2.6.28"}],
            "grid": {"vm_count": [1, 3]},
        })
        scenarios = spec.expand()
        assert len(scenarios) == 4
        assert [(s.kernel, s.vm_count) for s in scenarios] == [
            ("2.6.18", 1), ("2.6.18", 3), ("2.6.28", 1), ("2.6.28", 3)]
        assert all(s.ports == 1 for s in scenarios)

    def test_grid_overrides_base(self):
        spec = SweepSpec.from_dict({
            "base": {"mode": "sriov", "vm_count": 7},
            "grid": {"vm_count": [1]},
        })
        assert spec.expand()[0].vm_count == 1

    def test_base_only_is_a_single_scenario(self):
        spec = SweepSpec.from_dict({"base": {"mode": "pv"}})
        scenarios = spec.expand()
        assert len(scenarios) == 1
        assert scenarios[0] == Scenario(mode="pv")

    def test_seed_is_a_sweepable_axis(self):
        spec = SweepSpec.from_dict({
            "base": {"mode": "sriov"},
            "grid": {"seed": [1, 2, 3]},
        })
        assert [s.seed for s in spec.expand()] == [1, 2, 3]


class TestValidation:
    def test_unknown_top_level_key_rejected(self):
        with pytest.raises(ValueError, match="grids"):
            SweepSpec.from_dict({"base": {}, "grids": {}})

    def test_empty_grid_axis_rejected(self):
        with pytest.raises(ValueError, match="vm_count"):
            SweepSpec.from_dict({"grid": {"vm_count": []}})

    def test_scalar_grid_axis_rejected(self):
        with pytest.raises(ValueError, match="vm_count"):
            SweepSpec.from_dict({"grid": {"vm_count": 3}})

    def test_unknown_scenario_field_fails_at_expand(self):
        spec = SweepSpec.from_dict({"grid": {"vm_cuont": [1]}})
        with pytest.raises(ValueError, match="vm_cuont"):
            spec.expand()
