"""Unit tests for the supervised executor: crashes, hangs, retries.

Worker functions live at module level so they pickle into the pool by
reference.  Crash-once workers coordinate through a marker directory
(the same trick the CI chaos hook uses): the first attempt dies with
``os._exit`` *after* dropping its marker, so the retry runs clean.
"""

import os
import time
from pathlib import Path

import pytest

from repro.sweep.supervise import (STATUS_FAILED, STATUS_OK,
                                   STATUS_RETRIED, STATUS_TIMED_OUT,
                                   SuperviseConfig, SuperviseStats,
                                   TaskOutcome, run_supervised)

#: Fast supervision for tests: tight watchdog polling, near-zero
#: backoff so retries don't slow the suite down.
FAST = dict(backoff_base=0.01, backoff_cap=0.02, poll_interval=0.05)


def _double(payload):
    return {"value": payload["value"] * 2}


def _crash_once(payload):
    marker = Path(payload["dir"]) / f"{payload['key']}.crashed"
    if not marker.exists():
        marker.touch()
        os._exit(13)  # hard worker death: no exception crosses the pipe
    return {"value": payload["value"]}


def _always_crash(payload):
    os._exit(13)


def _hang(payload):
    time.sleep(120)
    return {}


def _deterministic_error(payload):
    raise ValueError(f"bad payload {payload['value']}")


def _tasks(count, **extra):
    return [(f"task{i}", {"key": f"task{i}", "value": i, **extra})
            for i in range(count)]


class TestSerialPath:
    def test_results_and_outcomes(self):
        results, outcomes, stats = run_supervised(
            _double, _tasks(3), jobs=1)
        assert results == {f"task{i}": {"value": i * 2} for i in range(3)}
        assert all(o.status == STATUS_OK and o.attempts == 1
                   for o in outcomes.values())
        assert stats.respawns == 0
        assert stats.ok == 3
        assert stats.peak_workers == 1
        assert stats.wall_s >= 0.0

    def test_exception_becomes_failed_outcome(self):
        results, outcomes, _ = run_supervised(
            _deterministic_error, _tasks(2), jobs=1)
        assert results == {}
        for outcome in outcomes.values():
            assert outcome.status == STATUS_FAILED
            assert "ValueError" in outcome.error

    def test_on_result_fires_per_task(self):
        seen = []
        run_supervised(_double, _tasks(2), jobs=1,
                       on_result=lambda key, task, result:
                       seen.append((key, task.status, result)))
        assert seen == [("task0", STATUS_OK, {"value": 0}),
                        ("task1", STATUS_OK, {"value": 2})]


class TestPool:
    def test_clean_pool_run(self):
        results, outcomes, stats = run_supervised(
            _double, _tasks(4), jobs=2, config=SuperviseConfig(**FAST))
        assert results == {f"task{i}": {"value": i * 2} for i in range(4)}
        assert all(o.status == STATUS_OK for o in outcomes.values())
        assert stats.respawns == 0
        assert 1 <= stats.peak_workers <= 2
        assert stats.wall_s > 0.0

    def test_worker_crash_is_retried_and_recovers(self, tmp_path):
        results, outcomes, stats = run_supervised(
            _crash_once, _tasks(2, dir=str(tmp_path)), jobs=2,
            config=SuperviseConfig(**FAST))
        assert results == {f"task{i}": {"value": i} for i in range(2)}
        assert stats.respawns >= 1
        # At least one task died and came back; none terminally failed.
        assert any(o.status == STATUS_RETRIED for o in outcomes.values())
        assert all(o.ok for o in outcomes.values())

    def test_persistent_crash_exhausts_retries(self):
        results, outcomes, stats = run_supervised(
            _always_crash, _tasks(2), jobs=2,
            config=SuperviseConfig(max_retries=1, **FAST))
        assert results == {}
        assert stats.respawns >= 1
        for outcome in outcomes.values():
            assert outcome.status == STATUS_FAILED
            assert outcome.attempts == 2  # first try + one retry

    def test_hang_hits_the_watchdog(self):
        # Two tasks: a single task takes the serial in-process path,
        # which has no watchdog (a thread cannot preempt itself).
        results, outcomes, stats = run_supervised(
            _hang, _tasks(2), jobs=2,
            config=SuperviseConfig(task_timeout=0.5, max_retries=0,
                                   **FAST))
        assert results == {}
        assert stats.respawns >= 1
        for outcome in outcomes.values():
            assert outcome.status == STATUS_TIMED_OUT
            assert "timed out" in outcome.error

    def test_deterministic_error_is_never_retried(self):
        results, outcomes, _ = run_supervised(
            _deterministic_error, _tasks(2), jobs=2,
            config=SuperviseConfig(**FAST))
        assert results == {}
        for outcome in outcomes.values():
            assert outcome.status == STATUS_FAILED
            assert outcome.attempts == 1  # same inputs fail the same way
            assert "ValueError" in outcome.error

    def test_on_result_persists_as_results_land(self, tmp_path):
        landed = []
        run_supervised(_crash_once, _tasks(2, dir=str(tmp_path)), jobs=2,
                       config=SuperviseConfig(**FAST),
                       on_result=lambda key, task, result:
                       landed.append((key, result is not None)))
        assert sorted(landed) == [("task0", True), ("task1", True)]


class TestConfig:
    def test_backoff_is_deterministic_per_key_and_attempt(self):
        cfg = SuperviseConfig()
        assert cfg.backoff("k", 1) == cfg.backoff("k", 1)
        assert cfg.backoff("k", 1) != cfg.backoff("other", 1)

    def test_backoff_grows_and_caps(self):
        cfg = SuperviseConfig(backoff_base=1.0, backoff_cap=4.0)
        # Jitter spans x0.5..x1.5, so compare against the envelope.
        assert cfg.backoff("k", 1) <= 1.5
        assert cfg.backoff("k", 10) <= 4.0 * 1.5

    def test_stats_of_counts_statuses(self):
        outcomes = [TaskOutcome(key="a", status=STATUS_OK),
                    TaskOutcome(key="b", status=STATUS_RETRIED),
                    TaskOutcome(key="c", status=STATUS_TIMED_OUT),
                    TaskOutcome(key="d", status=STATUS_FAILED)]
        stats = SuperviseStats.of(outcomes, respawns=3)
        assert (stats.ok, stats.retried, stats.timed_out,
                stats.failed, stats.respawns) == (1, 1, 1, 1, 3)
        assert stats.failures == 2
        assert "ok=1" in stats.summary()

    def test_summary_line_format(self):
        # The line is machine-parseable and its field order is
        # load-bearing: CI greps match a prefix ending at respawns=,
        # so wall_s/peak_workers must append after it, never reorder.
        stats = SuperviseStats(ok=2, retried=1, respawns=4,
                               wall_s=12.345, peak_workers=8)
        line = stats.summary()
        assert line == ("task summary: ok=2 retried=1 timed_out=0 "
                        "failed=0 respawns=4 wall_s=12.35 "
                        "peak_workers=8")
        import re
        assert re.search(r"task summary: .*failed=0 respawns=[0-9]+",
                         line)

    def test_run_supervised_populates_wall_and_peak(self):
        _, _, stats = run_supervised(
            _double, _tasks(4), jobs=2, config=SuperviseConfig(**FAST))
        assert f"peak_workers={stats.peak_workers}" in stats.summary()
        assert stats.peak_workers >= 1
        assert stats.wall_s > 0.0


class TestOutcome:
    def test_to_dict_omits_absent_error(self):
        assert TaskOutcome(key="k", status=STATUS_OK,
                           attempts=1).to_dict() == {
            "key": "k", "status": STATUS_OK, "attempts": 1}
        with_error = TaskOutcome(key="k", status=STATUS_FAILED,
                                 attempts=2, error="boom").to_dict()
        assert with_error["error"] == "boom"

    def test_ok_property(self):
        assert TaskOutcome(key="k", status=STATUS_OK).ok
        assert TaskOutcome(key="k", status=STATUS_RETRIED).ok
        assert not TaskOutcome(key="k", status=STATUS_FAILED).ok
        assert not TaskOutcome(key="k", status=STATUS_TIMED_OUT).ok


def test_rejecting_pool_width_happens_in_runner():
    # run_supervised itself accepts jobs<=1 (serial); the engine
    # validates jobs>=1 before calling in.
    results, _, _ = run_supervised(_double, _tasks(1), jobs=0)
    assert results["task0"] == {"value": 0}
