"""The engine's determinism and caching contracts, end to end.

Small real simulations (fractions of a second of simulated time) so the
guarantees are checked against the actual pool/cache plumbing, not
mocks.
"""

import json

import pytest

from repro.api import Scenario
from repro.sweep import ResultCache, run_sweep
from repro.sweep.figures import generate_figures

QUICK = dict(warmup=0.2, duration=0.1)


def _scenarios():
    base = Scenario(mode="sriov", vm_count=1, ports=1,
                    policy={"kind": "fixed_itr", "hz": 2000}, **QUICK)
    return [base, base.with_(vm_count=2), base.with_(seed=7)]


def _dumps(outcomes):
    return json.dumps([o.result.to_dict() for o in outcomes],
                      sort_keys=True)


class TestDeterminism:
    def test_parallel_equals_serial_byte_for_byte(self):
        serial, _ = run_sweep(_scenarios(), jobs=1)
        parallel, _ = run_sweep(_scenarios(), jobs=4)
        assert _dumps(serial) == _dumps(parallel)

    def test_warm_cache_equals_cold_byte_for_byte(self, tmp_path):
        cache = ResultCache(tmp_path)
        cold, cold_stats = run_sweep(_scenarios(), cache=cache)
        warm, warm_stats = run_sweep(_scenarios(), cache=cache)
        assert _dumps(cold) == _dumps(warm)
        assert cold_stats.hits == 0 and cold_stats.executed == 3
        assert warm_stats.hits == 3 and warm_stats.executed == 0

    def test_outcomes_keep_input_order(self):
        outcomes, _ = run_sweep(_scenarios(), jobs=4)
        assert [o.index for o in outcomes] == [0, 1, 2]
        assert [o.scenario for o in outcomes] == _scenarios()


class TestCacheSemantics:
    def test_duplicate_scenarios_execute_once(self, tmp_path):
        base = _scenarios()[0]
        outcomes, stats = run_sweep([base, base, base],
                                    cache=ResultCache(tmp_path))
        assert stats.total == 3 and stats.executed == 1
        assert len({_dumps([o]) for o in outcomes}) == 1

    def test_seed_change_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        base = _scenarios()[0]
        run_sweep([base], cache=cache)
        _, stats = run_sweep([base.with_(seed=99)], cache=cache)
        assert stats.hits == 0 and stats.executed == 1

    def test_corrupt_entry_resimulated(self, tmp_path):
        cache = ResultCache(tmp_path)
        base = _scenarios()[0]
        outcomes, _ = run_sweep([base], cache=cache)
        cache.path_for(outcomes[0].key).write_text('{"broken": true}')
        redone, stats = run_sweep([base], cache=cache)
        assert stats.executed == 1
        assert _dumps(outcomes) == _dumps(redone)

    def test_metrics_dir_writes_one_file_per_executed_job(self, tmp_path):
        metrics = tmp_path / "metrics"
        outcomes, _ = run_sweep(_scenarios(), cache=ResultCache(tmp_path),
                                metrics_dir=str(metrics))
        files = sorted(p.name for p in metrics.glob("*.metrics.json"))
        assert files == sorted(f"{o.key}.metrics.json" for o in outcomes)
        # Warm rerun executes nothing, so no new metrics appear.
        for path in metrics.glob("*.metrics.json"):
            path.unlink()
        run_sweep(_scenarios(), cache=ResultCache(tmp_path),
                  metrics_dir=str(metrics))
        assert list(metrics.glob("*.metrics.json")) == []

    def test_jobs_zero_rejected(self):
        with pytest.raises(ValueError):
            run_sweep(_scenarios(), jobs=0)


class TestFigureArtifacts:
    def test_jobs_do_not_change_artifact_bytes(self, tmp_path):
        serial_dir, pool_dir = tmp_path / "serial", tmp_path / "pool"
        generate_figures(["fig15"], quick=True, jobs=1,
                         out_dir=str(serial_dir))
        generate_figures(["fig15"], quick=True, jobs=4,
                         out_dir=str(pool_dir))
        serial = (serial_dir / "fig15.json").read_bytes()
        pool = (pool_dir / "fig15.json").read_bytes()
        assert serial == pool

    def test_artifact_shape(self, tmp_path):
        artifacts, _ = generate_figures(["fig15"], quick=True,
                                        out_dir=str(tmp_path))
        artifact = json.loads((tmp_path / "fig15.json").read_text())
        assert artifact == json.loads(
            json.dumps(artifacts["fig15"], sort_keys=True))
        assert artifact["schema"] == "repro-figure/1"
        assert artifact["figure"] == "fig15"
        assert artifact["quick"] is True
        assert artifact["columns"][0] == "VMs"
        assert len(artifact["rows"]) == len(artifact["results"]) == 2
