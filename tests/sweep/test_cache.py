"""Unit tests for the content-addressed result cache and its keys."""

import json
import subprocess
import sys
import threading

import pytest

from repro.api import Scenario
from repro.core.costs import CostModel
from repro.sweep import ResultCache, canonical_json, costs_to_dict, job_key


def _dead_pid() -> int:
    """A pid that provably names no live process (spawned and reaped)."""
    process = subprocess.Popen([sys.executable, "-c", "pass"])
    process.wait()
    return process.pid


def _key(scenario, costs=None):
    return job_key(scenario.to_dict(), costs_to_dict(costs))


class TestJobKey:
    def test_stable_across_calls(self):
        scenario = Scenario(mode="sriov", vm_count=3)
        assert _key(scenario) == _key(scenario)

    def test_equal_scenarios_share_a_key(self):
        a = Scenario(mode="sriov", policy={"kind": "fixed_itr", "hz": 2000})
        b = Scenario.from_dict(json.loads(canonical_json(a.to_dict())))
        assert _key(a) == _key(b)

    def test_seed_changes_the_key(self):
        base = Scenario(mode="sriov")
        assert _key(base) != _key(base.with_(seed=43))

    def test_opts_change_the_key(self):
        base = Scenario(mode="sriov")
        assert _key(base) != _key(base.with_(opts={}))
        assert (_key(base.with_(opts={}))
                != _key(base.with_(opts={"msi_acceleration": True})))

    def test_cost_model_changes_the_key(self):
        scenario = Scenario(mode="sriov")
        assert (_key(scenario, CostModel())
                != _key(scenario, CostModel(aic_redundancy=1.5)))
        # costs=None means "the default CostModel" and hashes as such.
        assert _key(scenario, CostModel()) == _key(scenario, None)

    def test_faults_change_the_key(self):
        base = Scenario(mode="sriov")
        faulty = base.with_(faults=[{"kind": "link_flap", "at": 1.0}])
        assert _key(base) != _key(faulty)

    def test_fault_free_key_matches_the_pre_faults_layout(self):
        # The `faults` field postdates the cache; a fault-free scenario
        # must hash exactly what it hashed before the field existed, so
        # no warm cache is invalidated.
        import dataclasses
        scenario = Scenario(mode="sriov", vm_count=3)
        legacy = dataclasses.asdict(scenario)
        del legacy["faults"]  # the pre-faults field set
        for name in ("hosts", "fabric", "flows", "schema_version"):
            del legacy[name]  # the v2 multi-host fields, likewise omitted
        del legacy["sim_mode"]  # exact-mode runs hash the legacy layout
        assert "faults" not in scenario.to_dict()
        assert (_key(scenario)
                == job_key(legacy, costs_to_dict(None)))
        assert _key(scenario) == _key(scenario.with_(faults=[]))
        assert _key(scenario) == _key(scenario.with_(faults=None))


class TestResultCache:
    def _result_dict(self):
        # A minimal valid result payload for cache plumbing tests.
        from repro.core.experiment import RESULT_SCHEMA
        return {"schema": RESULT_SCHEMA, "mode": "sriov", "vm_count": 1,
                "duration": 0.4, "rx_bytes": 10, "rx_packets": 1,
                "tx_packets": 1, "throughput_bps": 1.0, "loss_rate": 0.0,
                "latency_mean": 0.0, "interrupt_hz": 0.0, "cpu": {},
                "exit_counts": {}, "exit_cycles_per_second": {},
                "extras": {}}

    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        scenario = Scenario(mode="sriov")
        key = _key(scenario)
        assert cache.get(key) is None
        cache.put(key, scenario.to_dict(), costs_to_dict(None),
                  self._result_dict())
        assert cache.get(key) == self._result_dict()

    def test_different_key_still_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        scenario = Scenario(mode="sriov")
        cache.put(_key(scenario), scenario.to_dict(), costs_to_dict(None),
                  self._result_dict())
        assert cache.get(_key(scenario.with_(seed=7))) is None

    def test_corrupt_entry_reads_as_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        scenario = Scenario(mode="sriov")
        key = _key(scenario)
        cache.put(key, scenario.to_dict(), costs_to_dict(None),
                  self._result_dict())
        cache.path_for(key).write_text("{ not json")
        assert cache.get(key) is None

    def test_foreign_schema_reads_as_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        scenario = Scenario(mode="sriov")
        key = _key(scenario)
        cache.put(key, scenario.to_dict(), costs_to_dict(None),
                  self._result_dict())
        entry = json.loads(cache.path_for(key).read_text())
        entry["schema"] = "someone-elses-cache/9"
        cache.path_for(key).write_text(json.dumps(entry))
        assert cache.get(key) is None

    def test_crash_debris_is_swept_and_reads_as_clean_miss(self, tmp_path):
        # A writer killed between creating its tmp file and the atomic
        # rename leaves `<key>.tmp.<pid>.<tid>` behind.  A fresh
        # ResultCache sweeps the dead writer's debris and the entry is
        # an ordinary miss.
        key = _key(Scenario(mode="sriov"))
        shard = tmp_path / key[:2]
        shard.mkdir(parents=True)
        debris = shard / f"{key}.tmp.{_dead_pid()}.140001"
        debris.write_text('{"schema": "repro-cache-entry/1", "half-writ')
        cache = ResultCache(tmp_path)
        assert not debris.exists()
        assert cache.get(key) is None
        assert len(cache) == 0

    def test_sweep_keeps_a_live_writers_tmp(self, tmp_path):
        # A tmp whose embedded pid is alive belongs to a concurrent
        # sweep mid-put; deleting it would break that writer's rename.
        import os
        key = _key(Scenario(mode="sriov"))
        shard = tmp_path / key[:2]
        shard.mkdir(parents=True)
        inflight = shard / f"{key}.tmp.{os.getpid()}.1"
        inflight.write_text("half-written by a live process")
        ResultCache(tmp_path)
        assert inflight.exists()

    def test_sweep_leaves_real_entries_alone(self, tmp_path):
        scenario = Scenario(mode="sriov")
        key = _key(scenario)
        first = ResultCache(tmp_path)
        first.put(key, scenario.to_dict(), costs_to_dict(None),
                  self._result_dict())
        (tmp_path / key[:2] / f"{key}.tmp.{_dead_pid()}.2").write_text(
            "junk")
        second = ResultCache(tmp_path)
        assert second.get(key) == self._result_dict()
        assert len(second) == 1

    def test_truncated_entry_is_quarantined_and_recomputable(
            self, tmp_path):
        # Torn write (power loss): the entry fails JSON parsing, moves
        # to corrupt/, counts as corruption, and the slot accepts a
        # fresh put.
        cache = ResultCache(tmp_path)
        scenario = Scenario(mode="sriov")
        key = _key(scenario)
        path = cache.put(key, scenario.to_dict(), costs_to_dict(None),
                         self._result_dict())
        path.write_text(path.read_text()[:40])  # truncate
        assert cache.get(key) is None
        assert cache.corruption == 1
        assert not path.exists()
        assert len(cache.quarantined) == 1
        assert cache.quarantined[0].parent == cache.quarantine_dir()
        # Transparent recompute: a new put lands and reads back clean.
        cache.put(key, scenario.to_dict(), costs_to_dict(None),
                  self._result_dict())
        assert cache.get(key) == self._result_dict()
        assert cache.corruption == 1

    def test_checksum_mismatch_is_quarantined(self, tmp_path):
        # A bit-flip inside the result payload parses fine but fails
        # the sha256/length footer.
        cache = ResultCache(tmp_path)
        scenario = Scenario(mode="sriov")
        key = _key(scenario)
        path = cache.put(key, scenario.to_dict(), costs_to_dict(None),
                         self._result_dict())
        entry = json.loads(path.read_text())
        entry["result"]["rx_bytes"] = 999999  # silent corruption
        path.write_text(json.dumps(entry))
        assert cache.get(key) is None
        assert cache.corruption == 1
        assert list(cache.quarantine_dir().iterdir())

    def test_legacy_schema_is_a_plain_miss_not_corruption(self, tmp_path):
        # A pre-footer /1 entry cannot be verified; it reads as a miss
        # but is NOT quarantined (nothing is provably wrong with it).
        cache = ResultCache(tmp_path)
        key = _key(Scenario(mode="sriov"))
        path = cache.path_for(key)
        path.parent.mkdir(parents=True)
        path.write_text(json.dumps({"schema": "repro-cache-entry/1",
                                    "key": key,
                                    "result": self._result_dict()}))
        assert cache.get(key) is None
        assert cache.corruption == 0
        assert path.exists()

    def test_quarantined_entries_leave_len_unchanged(self, tmp_path):
        cache = ResultCache(tmp_path)
        scenario = Scenario(mode="sriov")
        key = _key(scenario)
        path = cache.put(key, scenario.to_dict(), costs_to_dict(None),
                         self._result_dict())
        assert len(cache) == 1
        path.write_text("garbage")
        cache.get(key)
        assert len(cache) == 0  # corrupt/ files don't count as entries

    def test_two_threads_writing_the_same_key_leave_a_valid_entry(
            self, tmp_path):
        # Concurrent sweeps sharing $REPRO_CACHE_DIR race puts of the
        # same content; per-writer tmp names mean both renames succeed
        # and the surviving entry verifies.
        cache = ResultCache(tmp_path)
        scenario = Scenario(mode="sriov")
        key = _key(scenario)
        errors = []
        barrier = threading.Barrier(2)

        def writer():
            try:
                barrier.wait()
                for _ in range(20):
                    cache.put(key, scenario.to_dict(),
                              costs_to_dict(None), self._result_dict())
            except BaseException as exc:  # pragma: no cover - fail path
                errors.append(exc)

        threads = [threading.Thread(target=writer) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert cache.get(key) == self._result_dict()
        assert cache.corruption == 0
        shard = tmp_path / key[:2]
        assert not list(shard.glob("*.tmp.*"))  # no debris left behind

    def test_env_var_resolved_at_construction(self, tmp_path, monkeypatch):
        # $REPRO_CACHE_DIR set after import must still be honoured:
        # the root resolves when the cache is built, not at import.
        root = tmp_path / "env-cache"
        monkeypatch.setenv("REPRO_CACHE_DIR", str(root))
        cache = ResultCache()
        assert cache.root == root
        assert root.is_dir()
        monkeypatch.delenv("REPRO_CACHE_DIR")
        from repro.sweep import default_cache_dir
        assert default_cache_dir() == ".repro-cache"


class TestCanonicalJson:
    def test_key_order_is_irrelevant(self):
        assert (canonical_json({"b": 1, "a": 2})
                == canonical_json({"a": 2, "b": 1}))

    def test_compact_separators(self):
        assert canonical_json({"a": [1, 2]}) == '{"a":[1,2]}'

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            canonical_json({"x": float("nan")})
