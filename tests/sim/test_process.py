"""Unit tests for generator-based processes."""

import pytest

from repro.sim import Condition, Interrupt, Process, Simulator, SimulationError


def test_process_sleeps_for_yielded_delay():
    sim = Simulator()
    trace = []

    def worker():
        trace.append(sim.now)
        yield 1.5
        trace.append(sim.now)
        yield 2.5
        trace.append(sim.now)

    Process(sim, worker())
    sim.run()
    assert trace == [0.0, 1.5, 4.0]


def test_process_result_and_done_condition():
    sim = Simulator()

    def worker():
        yield 1.0
        return 42

    process = Process(sim, worker())
    sim.run()
    assert process.alive is False
    assert process.result == 42
    assert process.done.triggered
    assert process.done.value == 42


def test_condition_wakes_waiter_with_value():
    sim = Simulator()
    received = []

    def waiter(cond):
        value = yield cond
        received.append((sim.now, value))

    cond = Condition(sim)
    Process(sim, waiter(cond))
    sim.schedule(3.0, cond.succeed, "payload")
    sim.run()
    assert received == [(3.0, "payload")]


def test_condition_wakes_multiple_waiters_in_order():
    sim = Simulator()
    woken = []

    def waiter(name, cond):
        yield cond
        woken.append(name)

    cond = Condition(sim)
    Process(sim, waiter("a", cond))
    Process(sim, waiter("b", cond))
    sim.schedule(1.0, cond.succeed)
    sim.run()
    assert woken == ["a", "b"]


def test_waiting_on_already_triggered_condition_resumes_immediately():
    sim = Simulator()
    cond = Condition(sim)
    cond.succeed("early")
    got = []

    def waiter():
        value = yield cond
        got.append(value)

    Process(sim, waiter())
    sim.run()
    assert got == ["early"]


def test_condition_cannot_trigger_twice():
    sim = Simulator()
    cond = Condition(sim)
    cond.succeed()
    with pytest.raises(SimulationError):
        cond.succeed()


def test_process_waits_on_another_process():
    sim = Simulator()
    order = []

    def child():
        yield 2.0
        order.append("child done")
        return "from-child"

    def parent(child_proc):
        value = yield child_proc
        order.append(f"parent got {value}")

    child_proc = Process(sim, child())
    Process(sim, parent(child_proc))
    sim.run()
    assert order == ["child done", "parent got from-child"]


def test_interrupt_raises_inside_generator():
    sim = Simulator()
    trace = []

    def worker():
        try:
            yield 100.0
            trace.append("never")
        except Interrupt as interrupt:
            trace.append(("interrupted", sim.now, interrupt.cause))
        yield 1.0
        trace.append(("resumed", sim.now))

    process = Process(sim, worker())
    sim.schedule(5.0, process.interrupt, "migration")
    sim.run()
    assert trace == [("interrupted", 5.0, "migration"), ("resumed", 6.0)]


def test_unhandled_interrupt_kills_process_quietly():
    sim = Simulator()

    def worker():
        yield 100.0

    process = Process(sim, worker())
    sim.schedule(1.0, process.interrupt)
    sim.run()
    assert process.alive is False


def test_interrupting_dead_process_is_noop():
    sim = Simulator()

    def worker():
        yield 1.0

    process = Process(sim, worker())
    sim.run()
    process.interrupt()
    sim.run()


def test_yielding_garbage_raises():
    sim = Simulator()

    def worker():
        yield "nonsense"

    Process(sim, worker())
    with pytest.raises(SimulationError):
        sim.run()
