"""Unit tests for named random streams."""

from repro.sim import RandomStreams


def test_same_name_returns_same_stream():
    streams = RandomStreams(seed=1)
    assert streams.get("a") is streams.get("a")


def test_streams_are_deterministic_across_factories():
    first = [RandomStreams(seed=7).get("nic").random() for _ in range(3)]
    second = [RandomStreams(seed=7).get("nic").random() for _ in range(3)]
    assert first == second


def test_different_names_are_independent():
    streams = RandomStreams(seed=7)
    a = streams.get("a")
    b = streams.get("b")
    assert [a.random() for _ in range(4)] != [b.random() for _ in range(4)]


def test_adding_consumer_does_not_perturb_existing_stream():
    solo = RandomStreams(seed=3)
    value_solo = solo.get("x").random()

    crowded = RandomStreams(seed=3)
    crowded.get("other").random()  # a new consumer drawing first
    value_crowded = crowded.get("x").random()
    assert value_solo == value_crowded


def test_different_seeds_differ():
    a = RandomStreams(seed=1).get("x").random()
    b = RandomStreams(seed=2).get("x").random()
    assert a != b


def test_fork_is_deterministic_and_independent():
    parent = RandomStreams(seed=9)
    fork1 = parent.fork("guest1")
    fork2 = RandomStreams(seed=9).fork("guest1")
    assert fork1.get("x").random() == fork2.get("x").random()
    assert parent.fork("guest1").seed != parent.fork("guest2").seed
