"""Unit tests for the conservative lockstep window calculator."""

import pytest

from repro.sim.sync import LockstepBarrier


class TestLockstepBarrier:
    def test_lookahead_must_be_positive(self):
        with pytest.raises(ValueError, match="lookahead"):
            LockstepBarrier(0.0)
        with pytest.raises(ValueError, match="lookahead"):
            LockstepBarrier(-1e-6)

    def test_window_is_earliest_event_plus_lookahead(self):
        barrier = LockstepBarrier(1e-5)
        assert barrier.next_window(1.0, [0.2, 0.5], []) == \
            pytest.approx(0.2 + 1e-5)

    def test_idle_engines_are_ignored(self):
        barrier = LockstepBarrier(1e-5)
        assert barrier.next_window(1.0, [None, 0.3, None], []) == \
            pytest.approx(0.3 + 1e-5)

    def test_pending_arrivals_bound_the_window_too(self):
        # A routed-but-undelivered message is work below the horizon
        # even when every engine's own queue is empty.
        barrier = LockstepBarrier(1e-5)
        assert barrier.next_window(1.0, [None, None], [0.1]) == \
            pytest.approx(0.1 + 1e-5)
        assert barrier.next_window(1.0, [0.5], [0.1]) == \
            pytest.approx(0.1 + 1e-5)

    def test_no_work_below_horizon_runs_to_until(self):
        barrier = LockstepBarrier(1e-5)
        assert barrier.next_window(1.0, [None, None], []) == 1.0
        assert barrier.next_window(1.0, [2.0], [1.5]) == 1.0

    def test_window_clamps_at_until(self):
        barrier = LockstepBarrier(0.5)
        assert barrier.next_window(1.0, [0.9], []) == 1.0

    def test_window_counter_counts_bounded_windows_only(self):
        barrier = LockstepBarrier(1e-5)
        barrier.next_window(1.0, [None], [])  # free run: not a round
        assert barrier.windows == 0
        barrier.next_window(1.0, [0.2], [])
        barrier.next_window(1.0, [0.4], [])
        assert barrier.windows == 2
