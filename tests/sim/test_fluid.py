"""Fluid-vs-exact equivalence: the collapsed-window fast path's contract.

``sim_mode="fluid"`` promises *byte-identical* results, not approximate
ones: for every eligible flow the collapse replays the exact engine's
event arithmetic, and for every ineligible flow (or run) it falls back
to the exact path.  These tests pin both halves:

* identical ``RunResult.to_dict()`` payloads across the fig. 15/16
  scenario shapes (HVM, PVM, native; UDP and TCP; randomized seeded
  rates/sizes/frequencies);
* the event identity ``events_executed + collapsed_events ==
  exact.events_executed`` (the collapse skips dispatch, never work);
* exact fallbacks (faults, adaptive ITR, a 2.6.18 guest, a shared
  port, a mid-run rate change) that decollapse or never attach, with
  results still identical;
* the exact mode's own event stream is untouched (the golden digest of
  ``tests/sim/test_determinism.py`` stays the arbiter for that).
"""

import random

from repro.api import Scenario, _dispatch
from repro.core.experiment import ExperimentRunner
from repro.core.testbed import Testbed, TestbedConfig


def _run(scenario: Scenario):
    runner = ExperimentRunner(warmup=scenario.warmup,
                              duration=scenario.duration,
                              seed=scenario.seed,
                              faults=scenario.faults,
                              sim_mode=scenario.sim_mode)
    result = _dispatch(runner, scenario)
    bed = runner.last_bed
    return (result.to_dict(), bed.sim.events_executed,
            bed.sim.collapsed_events)


def _assert_equivalent(base: Scenario, expect_collapsed=True):
    """Run ``base`` in both modes and assert byte-identity.

    ``expect_collapsed``: True — the fast path must engage; False — it
    must not (exact fallback); None — either is fine (the run merely
    has to be equivalent, used for randomized configs where gate
    eligibility depends on the draw).
    """
    exact, exact_events, exact_collapsed = _run(base)
    fluid, fluid_events, fluid_collapsed = _run(base.with_(sim_mode="fluid"))
    assert exact_collapsed == 0
    assert fluid == exact  # byte-identical RunResult payloads
    assert fluid_events + fluid_collapsed == exact_events
    if expect_collapsed is True:
        assert fluid_collapsed > 0
    elif expect_collapsed is False:
        assert fluid_collapsed == 0
    return exact, fluid


FIXED_2K = {"kind": "fixed_itr", "hz": 2000}


class TestSteadyStateEquivalence:
    """The fig. 15/16 shapes: results and event counts must match."""

    def test_fig15_shape_hvm(self):
        _assert_equivalent(Scenario(mode="sriov", kind="hvm",
                                    policy=FIXED_2K, vm_count=2,
                                    warmup=0.1, duration=0.1))

    def test_fig16_shape_pvm(self):
        _assert_equivalent(Scenario(mode="sriov", kind="pvm",
                                    policy=FIXED_2K, vm_count=2,
                                    warmup=0.1, duration=0.1))

    def test_native_baseline(self):
        _assert_equivalent(Scenario(mode="native", policy=FIXED_2K,
                                    vm_count=2, warmup=0.1, duration=0.1))

    def test_tcp_stream(self):
        _assert_equivalent(Scenario(mode="sriov", kind="hvm",
                                    policy=FIXED_2K, protocol="tcp",
                                    vm_count=2, warmup=0.1, duration=0.1))

    def test_throughput_anchor_equality(self):
        exact, fluid = _assert_equivalent(
            Scenario(mode="sriov", kind="hvm", policy=FIXED_2K,
                     vm_count=2, warmup=0.1, duration=0.1))
        # The gate the bench regression check applies: exact float
        # equality of the throughput anchor, not a tolerance.
        assert fluid["throughput_bps"] == exact["throughput_bps"]
        assert fluid["interrupt_hz"] == exact["interrupt_hz"]
        assert fluid["latency_mean"] == exact["latency_mean"]

    def test_randomized_eligible_configs(self):
        rng = random.Random(0xF1D)
        for _ in range(4):
            scenario = Scenario(
                mode="sriov",
                kind=rng.choice(["hvm", "pvm"]),
                policy={"kind": "fixed_itr",
                        "hz": rng.choice([1000, 2000, 4000])},
                vm_count=rng.randint(1, 3),
                offered_bps=rng.choice([200e6, 450e6, 900e6]),
                seed=rng.randint(0, 2**16),
                warmup=0.05, duration=0.05,
            )
            # Gate eligibility depends on the draw (a fast stream with
            # a fast timer can fail the min-ticks-per-window gate);
            # byte-identity is required either way.
            _assert_equivalent(scenario, expect_collapsed=None)


class TestExactFallbacks:
    """Ineligible runs must silently take the exact path — identical
    results, zero collapsed events."""

    def test_adaptive_itr_falls_back_wholesale(self):
        _assert_equivalent(
            Scenario(mode="sriov", kind="hvm", policy={"kind": "dynamic_itr"},
                     vm_count=2, warmup=0.05, duration=0.05),
            expect_collapsed=False)

    def test_linux_2618_msi_masking_falls_back(self):
        _assert_equivalent(
            Scenario(mode="sriov", kind="hvm", kernel="2.6.18",
                     policy=FIXED_2K, vm_count=2, warmup=0.05,
                     duration=0.05),
            expect_collapsed=False)

    def test_shared_port_falls_back(self):
        # vm_count > ports: streams share a wire, ticks interleave.
        _assert_equivalent(
            Scenario(mode="sriov", kind="hvm", policy=FIXED_2K,
                     vm_count=3, ports=1, warmup=0.05, duration=0.05),
            expect_collapsed=False)

    def test_faults_fall_back_wholesale(self):
        _assert_equivalent(
            Scenario(mode="sriov", kind="hvm", policy=FIXED_2K,
                     vm_count=2, warmup=0.05, duration=0.05,
                     faults=[{"kind": "link_flap", "at": 0.06,
                              "port": 0, "duration": 0.005}]),
            expect_collapsed=False)


def _counters_snapshot(bed, guest, stream):
    """Every externally observable number a flow touches."""
    vf = guest.vf
    driver = guest.driver
    app = guest.app
    ring = vf.rx_ring
    lat = app.latency
    return {
        "sent": stream.sent.value,
        "sent_bytes": stream.sent_bytes.value,
        "wire_rx": guest.port.wire_rx_packets,
        "dma_busy": guest.port.datapath._busy_until,
        "dma_bytes": guest.port.datapath.transferred_bytes.value,
        "rx_offered": vf.rx_offered,
        "rx_packets": vf.rx_packets,
        "rx_bytes": vf.rx_bytes,
        "no_desc": vf.rx_no_desc_drops,
        "posted": ring.posted,
        "completed": ring.completed,
        "head": ring.head,
        "tail": ring.tail,
        "fired": vf.throttle.fired,
        "last_fired": vf.throttle._last_fired,
        "msi_posted": vf.msix.interrupts_posted,
        "interrupts": driver.interrupts_handled,
        "napi_polls": driver.napi.polls,
        "napi_packets": driver.napi.packets,
        "app_rx_packets": app.rx_packets,
        "app_rx_bytes": app.rx_bytes,
        "app_dropped": app.dropped_packets,
        "lat_count": lat._count,
        "lat_sum": lat._sum,
        "lat_sum_sq": lat._sum_sq,
        "cycles": driver.domain.cycles_consumed,
        "events_total": bed.sim.events_executed + bed.sim.collapsed_events,
    }


def _one_guest_bed(sim_mode):
    # 900 Mb/s: fast enough that the flow passes the min-ticks-per-
    # window gate against the default 2 kHz throttle (slower rates
    # would silently stay exact and make the paired runs vacuous).
    bed = Testbed(TestbedConfig(ports=1, sim_mode=sim_mode))
    guest = bed.add_sriov_guest(name="vm0")
    stream = bed.attach_client_to_sriov(guest, 900e6)
    stream.start()
    if sim_mode == "fluid":
        assert bed.fluid_flows and bed.fluid_flows[0].active
    return bed, guest, stream


class TestDecollapse:
    """Leaving the fast path mid-run must leave no observable seam."""

    def test_midrun_rate_change_matches_exact(self):
        snaps = {}
        for mode in ("exact", "fluid"):
            bed, guest, stream = _one_guest_bed(mode)
            bed.sim.run(until=0.0203)
            stream.set_rate(250e6)  # decollapses at an off-window instant
            bed.sim.run(until=0.04)
            bed.settle_fluid()
            snaps[mode] = _counters_snapshot(bed, guest, stream)
        assert snaps["fluid"] == snaps["exact"]

    def test_midrun_stop_matches_exact(self):
        snaps = {}
        for mode in ("exact", "fluid"):
            bed, guest, stream = _one_guest_bed(mode)
            bed.sim.run(until=0.0151)
            stream.stop()
            # The re-armed throttle fire still drains the ring tail.
            bed.sim.run(until=0.03)
            bed.settle_fluid()
            snaps[mode] = _counters_snapshot(bed, guest, stream)
        assert snaps["fluid"] == snaps["exact"]

    def test_driver_stop_matches_exact(self):
        snaps = {}
        for mode in ("exact", "fluid"):
            bed, guest, stream = _one_guest_bed(mode)
            bed.sim.run(until=0.0101)
            guest.driver.stop()
            stream.stop()
            bed.sim.run(until=0.02)
            bed.settle_fluid()
            snaps[mode] = _counters_snapshot(bed, guest, stream)
        assert snaps["fluid"] == snaps["exact"]

    def test_second_stream_on_port_decollapses_first(self):
        bed = Testbed(TestbedConfig(ports=1, sim_mode="fluid"))
        first = bed.add_sriov_guest(name="vm0")
        s1 = bed.attach_client_to_sriov(first, 900e6)
        s1.start()
        assert len(bed.fluid_flows) == 1
        bed.sim.run(until=0.01)
        second = bed.add_sriov_guest(name="vm1")
        s2 = bed.attach_client_to_sriov(second, 900e6)
        s2.start()
        # The shared wire evicted the collapsed flow.
        assert first.stream._fluid is None
        assert all(not flow.active for flow in bed.fluid_flows)

    def test_decollapse_materializes_pending_packets(self):
        bed, guest, stream = _one_guest_bed("fluid")
        bed.sim.run(until=0.0102)  # mid-window: undrained ticks pending
        flow = bed.fluid_flows[0]
        assert flow.active
        flow.decollapse()
        assert not flow.active
        ring = guest.vf.rx_ring
        # The ticks since the last virtual fire replayed as real ring
        # occupancy: undrained packets sit in device-completed slots,
        # exactly where the exact run would have them.
        occupied = sum(1 for slot in ring.slots if slot.packet is not None)
        assert occupied > 0
        assert occupied == sum(1 for slot in ring.slots if slot.done)
        # Bookkeeping stayed consistent: completions count only what
        # the device actually wrote back so far.
        assert ring.completed == guest.vf.rx_packets


class TestEligibilityGates:
    def test_jittered_stream_never_attaches(self):
        from repro.sim.fluid import FluidFlow
        bed = Testbed(TestbedConfig(ports=1, sim_mode="exact"))
        guest = bed.add_sriov_guest(name="vm0")
        stream = bed.attach_client_to_sriov(guest, 900e6)
        stream.jitter = 0.2
        assert not FluidFlow(bed, guest, stream).try_attach()
        stream.jitter = 0.0
        assert FluidFlow(bed, guest, stream).try_attach()

    def test_slow_stream_never_attaches(self):
        # A window must span MIN_TICKS_PER_WINDOW burst intervals; a
        # 300 Mb/s stream against the default 2 kHz throttle does not.
        bed = Testbed(TestbedConfig(ports=1, sim_mode="fluid"))
        guest = bed.add_sriov_guest(name="vm0")
        bed.attach_client_to_sriov(guest, 300e6).start()
        assert not bed.fluid_flows

    def test_exact_mode_never_builds_flows(self):
        bed = Testbed(TestbedConfig(ports=1, sim_mode="exact"))
        guest = bed.add_sriov_guest(name="vm0")
        bed.attach_client_to_sriov(guest, 900e6).start()
        assert not bed.fluid_flows


def test_golden_exact_digest_is_unchanged():
    """The exact mode's event stream is the repo's determinism anchor;
    the fluid mode must not have perturbed it (same constant as
    tests/sim/test_determinism.py)."""
    from tests.sim.test_determinism import (GOLDEN_DIGEST,
                                            _run_fixed_scenario)
    assert _run_fixed_scenario() == GOLDEN_DIGEST
