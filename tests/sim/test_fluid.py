"""Fluid-vs-exact equivalence: the collapsed-window fast path's contract.

``sim_mode="fluid"`` promises *byte-identical* results, not approximate
ones: for every eligible flow the collapse replays the exact engine's
event arithmetic, and for every ineligible flow (or run) it falls back
to the exact path.  These tests pin both halves:

* identical ``RunResult.to_dict()`` payloads across the fig. 15/16
  scenario shapes (HVM, PVM, native; UDP and TCP; randomized seeded
  rates/sizes/frequencies), the fig. 8-10 adaptive-ITR shapes, the
  fig. 13 inter-VM loopback shapes and shared-port multi-stream runs;
* the event identity ``events_executed + collapsed_events ==
  exact.events_executed`` (the collapse skips dispatch, never work);
* exact fallbacks (faults, a sub-window ITR interval, a 2.6.18 guest,
  a mid-run rate change, a mid-run joiner on a collapsed port) that
  decollapse or never attach, with results still identical;
* the exact mode's own event stream is untouched (the golden digest of
  ``tests/sim/test_determinism.py`` stays the arbiter for that).
"""

import random

from repro.api import Scenario, _dispatch
from repro.core.costs import CostModel
from repro.core.experiment import ExperimentRunner
from repro.core.testbed import Testbed, TestbedConfig


def _run(scenario: Scenario):
    runner = ExperimentRunner(warmup=scenario.warmup,
                              duration=scenario.duration,
                              seed=scenario.seed,
                              faults=scenario.faults,
                              sim_mode=scenario.sim_mode)
    result = _dispatch(runner, scenario)
    bed = runner.last_bed
    return (result.to_dict(), bed.sim.events_executed,
            bed.sim.collapsed_events)


def _assert_equivalent(base: Scenario, expect_collapsed=True):
    """Run ``base`` in both modes and assert byte-identity.

    ``expect_collapsed``: True — the fast path must engage; False — it
    must not (exact fallback); None — either is fine (the run merely
    has to be equivalent, used for randomized configs where gate
    eligibility depends on the draw).
    """
    exact, exact_events, exact_collapsed = _run(base)
    fluid, fluid_events, fluid_collapsed = _run(base.with_(sim_mode="fluid"))
    assert exact_collapsed == 0
    assert fluid == exact  # byte-identical RunResult payloads
    assert fluid_events + fluid_collapsed == exact_events
    if expect_collapsed is True:
        assert fluid_collapsed > 0
    elif expect_collapsed is False:
        assert fluid_collapsed == 0
    return exact, fluid


FIXED_2K = {"kind": "fixed_itr", "hz": 2000}


class TestSteadyStateEquivalence:
    """The fig. 15/16 shapes: results and event counts must match."""

    def test_fig15_shape_hvm(self):
        _assert_equivalent(Scenario(mode="sriov", kind="hvm",
                                    policy=FIXED_2K, vm_count=2,
                                    warmup=0.1, duration=0.1))

    def test_fig16_shape_pvm(self):
        _assert_equivalent(Scenario(mode="sriov", kind="pvm",
                                    policy=FIXED_2K, vm_count=2,
                                    warmup=0.1, duration=0.1))

    def test_native_baseline(self):
        _assert_equivalent(Scenario(mode="native", policy=FIXED_2K,
                                    vm_count=2, warmup=0.1, duration=0.1))

    def test_tcp_stream(self):
        _assert_equivalent(Scenario(mode="sriov", kind="hvm",
                                    policy=FIXED_2K, protocol="tcp",
                                    vm_count=2, warmup=0.1, duration=0.1))

    def test_throughput_anchor_equality(self):
        exact, fluid = _assert_equivalent(
            Scenario(mode="sriov", kind="hvm", policy=FIXED_2K,
                     vm_count=2, warmup=0.1, duration=0.1))
        # The gate the bench regression check applies: exact float
        # equality of the throughput anchor, not a tolerance.
        assert fluid["throughput_bps"] == exact["throughput_bps"]
        assert fluid["interrupt_hz"] == exact["interrupt_hz"]
        assert fluid["latency_mean"] == exact["latency_mean"]

    def test_randomized_eligible_configs(self):
        rng = random.Random(0xF1D)
        for _ in range(4):
            scenario = Scenario(
                mode="sriov",
                kind=rng.choice(["hvm", "pvm"]),
                policy={"kind": "fixed_itr",
                        "hz": rng.choice([1000, 2000, 4000])},
                vm_count=rng.randint(1, 3),
                offered_bps=rng.choice([200e6, 450e6, 900e6]),
                seed=rng.randint(0, 2**16),
                warmup=0.05, duration=0.05,
            )
            # Gate eligibility depends on the draw (a fast stream with
            # a fast timer can fail the min-ticks-per-window gate);
            # byte-identity is required either way.
            _assert_equivalent(scenario, expect_collapsed=None)


class TestExactFallbacks:
    """Ineligible runs must silently take the exact path — identical
    results, zero collapsed events."""

    def test_dynamic_itr_short_interval_falls_back(self):
        # DynamicItr opens at ~111 us, under MIN_TICKS_PER_WINDOW burst
        # intervals at these rates: the per-flow itr_window gate (not a
        # wholesale fallback) keeps every stream exact.
        _assert_equivalent(
            Scenario(mode="sriov", kind="hvm", policy={"kind": "dynamic_itr"},
                     vm_count=2, warmup=0.05, duration=0.05),
            expect_collapsed=False)

    def test_linux_2618_msi_masking_falls_back(self):
        _assert_equivalent(
            Scenario(mode="sriov", kind="hvm", kernel="2.6.18",
                     policy=FIXED_2K, vm_count=2, warmup=0.05,
                     duration=0.05),
            expect_collapsed=False)

    def test_shared_port_slow_streams_fall_back(self):
        # Sharing a wire no longer forces exact by itself, but these
        # line-share streams tick too slowly for the throttle window:
        # each flow fails the itr_window gate individually.
        _assert_equivalent(
            Scenario(mode="sriov", kind="hvm", policy=FIXED_2K,
                     vm_count=3, ports=1, warmup=0.05, duration=0.05),
            expect_collapsed=False)

    def test_faults_fall_back_wholesale(self):
        _assert_equivalent(
            Scenario(mode="sriov", kind="hvm", policy=FIXED_2K,
                     vm_count=2, warmup=0.05, duration=0.05,
                     faults=[{"kind": "link_flap", "at": 0.06,
                              "port": 0, "duration": 0.005}]),
            expect_collapsed=False)


class TestAdaptiveItrCollapse:
    """Fig. 8-10: AIC flows collapse between ITR sample ticks, and the
    per-sample rate updates replay float-identically."""

    def test_fig08_aic_ladder_rung_collapses(self):
        _assert_equivalent(
            Scenario(mode="sriov", kind="hvm", policy={"kind": "aic"},
                     vm_count=1, ports=1, offered_bps=900e6,
                     warmup=0.05, duration=0.05))

    def test_fig09_aic_tcp_collapses(self):
        _assert_equivalent(
            Scenario(mode="sriov", kind="hvm", policy={"kind": "aic"},
                     protocol="tcp", vm_count=1, ports=1,
                     warmup=0.05, duration=0.05))

    def test_aic_sample_trajectory_is_float_identical(self):
        # Shrink the sample period so several AIC samples land inside
        # the measured window: each sample executes as a real event
        # between collapsed windows, reads counters the replay must
        # already have settled, and reprograms VTEITR through the
        # fluid listener.
        def run(mode):
            runner = ExperimentRunner(
                duration=0.05, warmup=0.005, sim_mode=mode,
                costs=CostModel(aic_sample_period=5e-3))
            result = runner.run_sriov(vm_count=1, ports=1,
                                      offered_bps_per_vm=900e6,
                                      policy={"kind": "aic"})
            guest = runner.last_bed.sriov_guests[0]
            return result, guest.vf.throttle.interval
        exact, exact_interval = run("exact")
        fluid, fluid_interval = run("fluid")
        assert fluid.to_dict() == exact.to_dict()
        assert fluid_interval == exact_interval  # the AIC trajectory
        assert fluid.fluid["collapsed_events"] > 0
        assert fluid.fluid["events_executed"] > 0  # the samples ran

    def test_itr_write_below_window_decollapses(self):
        # A guest reprogramming VTEITR under the window floor mid-run
        # must push the flow off the fast path, seamlessly.
        from repro.devices.igb_regs import REG_VTEITR_BASE
        snaps = {}
        for mode in ("exact", "fluid"):
            bed, guest, stream = _one_guest_bed(mode)
            bed.sim.run(until=0.0103)
            guest.vf.regs.write(REG_VTEITR_BASE, 50)  # 50 us interval
            bed.sim.run(until=0.02)
            bed.settle_fluid()
            if mode == "fluid":
                assert all(not f.active for f in bed.fluid_flows)
            snaps[mode] = _counters_snapshot(bed, guest, stream)
        assert snaps["fluid"] == snaps["exact"]


class TestSharedPortCollapse:
    """Fig. 13/14 multi-stream shapes: streams sharing one port collapse
    together through the merged-replay group."""

    def test_two_streams_one_port_collapse(self):
        _assert_equivalent(
            Scenario(mode="sriov", kind="hvm", policy=FIXED_2K,
                     vm_count=2, ports=1, offered_bps=900e6,
                     warmup=0.05, duration=0.05))

    def test_three_streams_one_port_collapse(self):
        _assert_equivalent(
            Scenario(mode="sriov", kind="hvm", policy=FIXED_2K,
                     vm_count=3, ports=1, offered_bps=900e6,
                     warmup=0.05, duration=0.05))

    def test_shared_port_aic_collapses(self):
        _assert_equivalent(
            Scenario(mode="sriov", kind="hvm", policy={"kind": "aic"},
                     vm_count=2, ports=1, offered_bps=900e6,
                     warmup=0.05, duration=0.05))

    def test_unequal_burst_intervals_evict(self):
        # The merged-replay ordering proof needs phase-locked members;
        # different rates mean different burst intervals, so the port
        # falls back whole at the second stream's begin.
        bed = Testbed(TestbedConfig(ports=1, sim_mode="fluid"))
        g1 = bed.add_sriov_guest(name="vm0")
        g2 = bed.add_sriov_guest(name="vm1")
        s1 = bed.attach_client_to_sriov(g1, 900e6)
        s2 = bed.attach_client_to_sriov(g2, 600e6)
        s1.start()
        s2.start()
        assert all(not f.active for f in bed.fluid_flows)
        assert bed.fluid_rejections.get("port_evicted")

    def test_group_rate_change_decollapses_whole_port(self):
        def run(mode):
            bed = Testbed(TestbedConfig(ports=1, sim_mode=mode))
            guests = [bed.add_sriov_guest(name=f"vm{i}") for i in range(2)]
            streams = [bed.attach_client_to_sriov(g, 900e6) for g in guests]
            for s in streams:
                s.start()
            if mode == "fluid":
                assert all(f.active for f in bed.fluid_flows)
            bed.sim.run(until=0.0203)
            streams[0].set_rate(250e6)  # one member leaves: all must
            if mode == "fluid":
                assert all(not f.active for f in bed.fluid_flows)
            bed.sim.run(until=0.04)
            bed.settle_fluid()
            return [_counters_snapshot(bed, g, s)
                    for g, s in zip(guests, streams)]
        assert run("fluid") == run("exact")


def _loopback_bed(sim_mode, sender="guest", offered_bps=5e9, mtu=1500):
    """The run_intervm_sriov wiring, built by hand so tests can poke
    the stream mid-run (fig. 10 when dom0 sends, fig. 13 when a guest
    does)."""
    from repro.net.netperf import NetperfStream
    from repro.net.packet import Protocol
    bed = Testbed(TestbedConfig(ports=1, sim_mode=sim_mode))
    if sender == "guest":
        tx_guest = bed.add_sriov_guest(name="tx")
        transmit = tx_guest.driver.transmit
        src = tx_guest.vf.mac
        sender_domain = tx_guest.domain
        tx_function, tx_driver = tx_guest.vf, tx_guest.driver
    else:
        pf_driver = bed.pf_drivers[0]
        transmit = pf_driver.transmit
        src = bed.ports[0].pf.mac
        sender_domain = pf_driver.dom0
        tx_function, tx_driver = bed.ports[0].pf, pf_driver
    receiver = bed.add_sriov_guest(name="rx")
    stream = NetperfStream(
        bed.sim, transmit, src, receiver.vf.mac, offered_bps,
        Protocol.UDP, mtu=mtu, burst_interval=100e-6, name="intervm",
        pool=bed.packet_pool)
    if sim_mode == "fluid":
        from repro.sim.fluid import FluidLoopbackFlow
        flow = FluidLoopbackFlow(bed, receiver, stream, sender_domain,
                                 tx_function, tx_driver)
        assert flow.try_attach(), bed.fluid_rejections
        bed.fluid_flows.append(flow)
    stream.start()
    if sim_mode == "fluid":
        assert bed.fluid_flows[0].active
    return bed, receiver, stream, tx_function, sender_domain


def _loopback_snapshot(bed, receiver, stream, tx_function, sender_domain):
    snap = _counters_snapshot(bed, receiver, stream)
    snap.update({
        "loopback": receiver.port.internal_loopback_packets,
        "tx_packets": tx_function.tx_packets,
        "tx_bytes": tx_function.tx_bytes,
        "tx_backlog_drops": tx_function.tx_backlog_drops,
        "tx_cycles": sender_domain.cycles_consumed,
        "dma_transfers": receiver.port.datapath.transfers.value,
    })
    return snap


class TestLoopbackCollapse:
    """Inter-VM traffic through the NIC's internal switch collapses:
    sender ticks, per-packet DMA completions and receiver fires merge
    into one virtual clock."""

    def test_fig13_guest_sender_collapses(self):
        for message_bytes in (64, 1500):
            _assert_equivalent(
                Scenario(mode="intervm", variant="sriov", kind="hvm",
                         message_bytes=message_bytes,
                         warmup=0.02, duration=0.02))

    def test_fig10_dom0_sender_collapses(self):
        _assert_equivalent(
            Scenario(mode="intervm", variant="sriov", kind="hvm",
                     sender="dom0", warmup=0.02, duration=0.02))

    def test_intervm_pv_is_ineligible(self):
        _assert_equivalent(
            Scenario(mode="intervm", variant="pv", kind="pvm",
                     warmup=0.02, duration=0.02),
            expect_collapsed=False)

    def test_midrun_rate_change_matches_exact(self):
        snaps = {}
        for mode in ("exact", "fluid"):
            bed, receiver, stream, tx, dom = _loopback_bed(mode)
            bed.sim.run(until=0.0103)
            stream.set_rate(1e9)
            bed.sim.run(until=0.02)
            bed.settle_fluid()
            snaps[mode] = _loopback_snapshot(bed, receiver, stream, tx, dom)
        assert snaps["fluid"] == snaps["exact"]

    def test_midrun_stop_matches_exact(self):
        snaps = {}
        for mode in ("exact", "fluid"):
            bed, receiver, stream, tx, dom = _loopback_bed(mode)
            bed.sim.run(until=0.0151)
            stream.stop()
            bed.sim.run(until=0.03)
            bed.settle_fluid()
            snaps[mode] = _loopback_snapshot(bed, receiver, stream, tx, dom)
        assert snaps["fluid"] == snaps["exact"]

    def test_tx_rate_limit_never_attaches(self):
        from repro.sim.fluid import FluidLoopbackFlow
        bed = Testbed(TestbedConfig(ports=1, sim_mode="exact"))
        tx_guest = bed.add_sriov_guest(name="tx")
        receiver = bed.add_sriov_guest(name="rx")
        from repro.net.netperf import NetperfStream
        from repro.net.packet import Protocol
        stream = NetperfStream(
            bed.sim, tx_guest.driver.transmit, tx_guest.vf.mac,
            receiver.vf.mac, 5e9, Protocol.UDP, mtu=1500,
            burst_interval=100e-6, name="intervm", pool=bed.packet_pool)
        tx_guest.vf.tx_rate_limit_bps = 1e9
        flow = FluidLoopbackFlow(bed, receiver, stream, tx_guest.domain,
                                 tx_guest.vf, tx_guest.driver)
        assert not flow.try_attach()
        assert bed.fluid_rejections == {"tx_rate_limit": 1}


class TestRejectionDiagnostics:
    """Satellite: every refused try_attach names its gate, per flow,
    and the counts surface in RunResult.fluid and the metrics tree."""

    def test_rejections_name_the_gate(self):
        runner = ExperimentRunner(duration=0.02, warmup=0.005,
                                  sim_mode="fluid")
        # 300 Mb/s ticks too slowly for the 2 kHz window: itr_window.
        result = runner.run_sriov(vm_count=1, ports=1,
                                  offered_bps_per_vm=300e6,
                                  policy=FIXED_2K)
        assert result.fluid["rejections"] == {"itr_window": 1}
        assert result.fluid["collapsed_events"] == 0

    def test_collapsed_run_reports_diagnostics(self):
        runner = ExperimentRunner(duration=0.02, warmup=0.005,
                                  sim_mode="fluid")
        result = runner.run_sriov(vm_count=1, ports=1,
                                  offered_bps_per_vm=900e6)
        assert result.fluid["collapsed_events"] > 0
        assert result.fluid["flows"] == 1
        assert result.fluid["rejections"] == {}
        # Diagnostics never enter the canonical payload: byte-equality
        # with exact mode (and cache keys) must not depend on them.
        assert "fluid" not in result.to_dict()

    def test_exact_mode_has_no_diagnostics(self):
        runner = ExperimentRunner(duration=0.02, warmup=0.005)
        result = runner.run_sriov(vm_count=1, ports=1,
                                  offered_bps_per_vm=900e6)
        assert result.fluid is None

    def test_rejection_metric_when_telemetry_on(self):
        bed = Testbed(TestbedConfig(ports=1, sim_mode="fluid",
                                    telemetry=True))
        guest = bed.add_sriov_guest(name="vm0")
        bed.attach_client_to_sriov(guest, 900e6)
        # The live tracer itself makes the flow ineligible (observers
        # must see real events), so the tracer gate fires — and lands
        # in the metrics registry.
        assert bed.fluid_rejections == {"tracer": 1}
        counter = bed.platform.metrics.scope("fluid").counter(
            "rejected.tracer")
        assert counter.value == 1


def _counters_snapshot(bed, guest, stream):
    """Every externally observable number a flow touches."""
    vf = guest.vf
    driver = guest.driver
    app = guest.app
    ring = vf.rx_ring
    lat = app.latency
    return {
        "sent": stream.sent.value,
        "sent_bytes": stream.sent_bytes.value,
        "wire_rx": guest.port.wire_rx_packets,
        "dma_busy": guest.port.datapath._busy_until,
        "dma_bytes": guest.port.datapath.transferred_bytes.value,
        "rx_offered": vf.rx_offered,
        "rx_packets": vf.rx_packets,
        "rx_bytes": vf.rx_bytes,
        "no_desc": vf.rx_no_desc_drops,
        "posted": ring.posted,
        "completed": ring.completed,
        "head": ring.head,
        "tail": ring.tail,
        "fired": vf.throttle.fired,
        "last_fired": vf.throttle._last_fired,
        "msi_posted": vf.msix.interrupts_posted,
        "interrupts": driver.interrupts_handled,
        "napi_polls": driver.napi.polls,
        "napi_packets": driver.napi.packets,
        "app_rx_packets": app.rx_packets,
        "app_rx_bytes": app.rx_bytes,
        "app_dropped": app.dropped_packets,
        "lat_count": lat._count,
        "lat_sum": lat._sum,
        "lat_sum_sq": lat._sum_sq,
        "cycles": driver.domain.cycles_consumed,
        "events_total": bed.sim.events_executed + bed.sim.collapsed_events,
    }


def _one_guest_bed(sim_mode):
    # 900 Mb/s: fast enough that the flow passes the min-ticks-per-
    # window gate against the default 2 kHz throttle (slower rates
    # would silently stay exact and make the paired runs vacuous).
    bed = Testbed(TestbedConfig(ports=1, sim_mode=sim_mode))
    guest = bed.add_sriov_guest(name="vm0")
    stream = bed.attach_client_to_sriov(guest, 900e6)
    stream.start()
    if sim_mode == "fluid":
        assert bed.fluid_flows and bed.fluid_flows[0].active
    return bed, guest, stream


class TestDecollapse:
    """Leaving the fast path mid-run must leave no observable seam."""

    def test_midrun_rate_change_matches_exact(self):
        snaps = {}
        for mode in ("exact", "fluid"):
            bed, guest, stream = _one_guest_bed(mode)
            bed.sim.run(until=0.0203)
            stream.set_rate(250e6)  # decollapses at an off-window instant
            bed.sim.run(until=0.04)
            bed.settle_fluid()
            snaps[mode] = _counters_snapshot(bed, guest, stream)
        assert snaps["fluid"] == snaps["exact"]

    def test_midrun_stop_matches_exact(self):
        snaps = {}
        for mode in ("exact", "fluid"):
            bed, guest, stream = _one_guest_bed(mode)
            bed.sim.run(until=0.0151)
            stream.stop()
            # The re-armed throttle fire still drains the ring tail.
            bed.sim.run(until=0.03)
            bed.settle_fluid()
            snaps[mode] = _counters_snapshot(bed, guest, stream)
        assert snaps["fluid"] == snaps["exact"]

    def test_driver_stop_matches_exact(self):
        snaps = {}
        for mode in ("exact", "fluid"):
            bed, guest, stream = _one_guest_bed(mode)
            bed.sim.run(until=0.0101)
            guest.driver.stop()
            stream.stop()
            bed.sim.run(until=0.02)
            bed.settle_fluid()
            snaps[mode] = _counters_snapshot(bed, guest, stream)
        assert snaps["fluid"] == snaps["exact"]

    def test_second_stream_on_port_decollapses_first(self):
        bed = Testbed(TestbedConfig(ports=1, sim_mode="fluid"))
        first = bed.add_sriov_guest(name="vm0")
        s1 = bed.attach_client_to_sriov(first, 900e6)
        s1.start()
        assert len(bed.fluid_flows) == 1
        bed.sim.run(until=0.01)
        second = bed.add_sriov_guest(name="vm1")
        s2 = bed.attach_client_to_sriov(second, 900e6)
        s2.start()
        # The shared wire evicted the collapsed flow.
        assert first.stream._fluid is None
        assert all(not flow.active for flow in bed.fluid_flows)

    def test_decollapse_materializes_pending_packets(self):
        bed, guest, stream = _one_guest_bed("fluid")
        bed.sim.run(until=0.0102)  # mid-window: undrained ticks pending
        flow = bed.fluid_flows[0]
        assert flow.active
        flow.decollapse()
        assert not flow.active
        ring = guest.vf.rx_ring
        # The ticks since the last virtual fire replayed as real ring
        # occupancy: undrained packets sit in device-completed slots,
        # exactly where the exact run would have them.
        occupied = sum(1 for slot in ring.slots if slot.packet is not None)
        assert occupied > 0
        assert occupied == sum(1 for slot in ring.slots if slot.done)
        # Bookkeeping stayed consistent: completions count only what
        # the device actually wrote back so far.
        assert ring.completed == guest.vf.rx_packets


class TestEligibilityGates:
    def test_jittered_stream_never_attaches(self):
        from repro.sim.fluid import FluidFlow
        bed = Testbed(TestbedConfig(ports=1, sim_mode="exact"))
        guest = bed.add_sriov_guest(name="vm0")
        stream = bed.attach_client_to_sriov(guest, 900e6)
        stream.jitter = 0.2
        assert not FluidFlow(bed, guest, stream).try_attach()
        stream.jitter = 0.0
        assert FluidFlow(bed, guest, stream).try_attach()

    def test_slow_stream_never_attaches(self):
        # A window must span MIN_TICKS_PER_WINDOW burst intervals; a
        # 300 Mb/s stream against the default 2 kHz throttle does not.
        bed = Testbed(TestbedConfig(ports=1, sim_mode="fluid"))
        guest = bed.add_sriov_guest(name="vm0")
        bed.attach_client_to_sriov(guest, 300e6).start()
        assert not bed.fluid_flows

    def test_exact_mode_never_builds_flows(self):
        bed = Testbed(TestbedConfig(ports=1, sim_mode="exact"))
        guest = bed.add_sriov_guest(name="vm0")
        bed.attach_client_to_sriov(guest, 900e6).start()
        assert not bed.fluid_flows


def test_golden_exact_digest_is_unchanged():
    """The exact mode's event stream is the repo's determinism anchor;
    the fluid mode must not have perturbed it (same constant as
    tests/sim/test_determinism.py)."""
    from tests.sim.test_determinism import (GOLDEN_DIGEST,
                                            _run_fixed_scenario)
    assert _run_fixed_scenario() == GOLDEN_DIGEST
