"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim import Simulator, SimulationError


def test_schedule_and_run_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(2.0, fired.append, "b")
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(3.0, fired.append, "c")
    sim.run()
    assert fired == ["a", "b", "c"]
    assert sim.now == 3.0


def test_same_time_events_fire_fifo():
    sim = Simulator()
    fired = []
    for tag in range(10):
        sim.schedule(1.0, fired.append, tag)
    sim.run()
    assert fired == list(range(10))


def test_run_until_horizon_leaves_future_events_queued():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "early")
    sim.schedule(5.0, fired.append, "late")
    sim.run(until=2.0)
    assert fired == ["early"]
    assert sim.now == 2.0
    assert sim.pending_events == 1
    sim.run()
    assert fired == ["early", "late"]


def test_horizon_advances_clock_even_without_events():
    sim = Simulator()
    sim.run(until=7.5)
    assert sim.now == 7.5


def test_cancel_prevents_firing():
    sim = Simulator()
    fired = []
    handle = sim.schedule(1.0, fired.append, "x")
    sim.cancel(handle)
    sim.run()
    assert fired == []
    assert sim.pending_events == 0


def test_cancel_is_idempotent():
    sim = Simulator()
    handle = sim.schedule(1.0, lambda: None)
    handle.cancel()
    handle.cancel()
    sim.run()


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-0.1, lambda: None)


def test_schedule_at_in_past_rejected():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(0.5, lambda: None)


def test_events_scheduled_during_run_execute():
    sim = Simulator()
    fired = []

    def chain(n):
        fired.append(n)
        if n < 3:
            sim.schedule(1.0, chain, n + 1)

    sim.schedule(0.0, chain, 0)
    sim.run()
    assert fired == [0, 1, 2, 3]
    assert sim.now == 3.0


def test_step_executes_single_event():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(2.0, fired.append, "b")
    assert sim.step() is True
    assert fired == ["a"]
    assert sim.step() is True
    assert sim.step() is False


def test_peek_reports_next_live_event():
    sim = Simulator()
    handle = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    assert sim.peek() == 1.0
    handle.cancel()
    assert sim.peek() == 2.0


def test_events_executed_counter():
    sim = Simulator()
    for _ in range(5):
        sim.schedule(1.0, lambda: None)
    sim.run()
    assert sim.events_executed == 5


def test_zero_delay_self_scheduling_respects_fifo():
    sim = Simulator()
    order = []
    sim.schedule(0.0, lambda: order.append("first"))
    sim.schedule(0.0, lambda: (order.append("second"), sim.schedule(0.0, order.append, "third")))
    sim.run()
    assert order == ["first", "second", "third"]


def test_event_exactly_at_horizon_fires():
    # `until` is inclusive: an event scheduled exactly at the horizon
    # executes, and the clock lands exactly on the horizon.
    sim = Simulator()
    fired = []
    sim.schedule(2.0, fired.append, "edge")
    sim.run(until=2.0)
    assert fired == ["edge"]
    assert sim.now == 2.0
    assert sim.pending_events == 0


def test_clock_lands_exactly_on_horizon_after_earlier_events():
    sim = Simulator()
    sim.schedule(0.3, lambda: None)
    sim.run(until=1.0)
    assert sim.now == 1.0


def test_heap_of_cancelled_handles_drains_without_firing():
    sim = Simulator()
    fired = []
    handles = [sim.schedule(1.0, fired.append, n) for n in range(50)]
    for handle in handles:
        handle.cancel()
    assert sim.pending_events == 0
    assert sim.peek() is None  # peek discards the cancelled prefix
    sim.run()
    assert fired == []
    assert sim.events_executed == 0
    assert sim.now == 0.0


def test_peek_skips_cancelled_prefix_but_keeps_live_tail():
    sim = Simulator()
    fired = []
    cancelled = [sim.schedule(1.0, fired.append, n) for n in range(10)]
    sim.schedule(2.0, fired.append, "live")
    for handle in cancelled:
        handle.cancel()
    assert sim.pending_events == 1
    assert sim.peek() == 2.0
    sim.run()
    assert fired == ["live"]


def test_start_time_offset():
    sim = Simulator(start_time=100.0)
    fired = []
    sim.schedule(1.0, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [101.0]
