"""Unit tests for measurement primitives."""

import pytest

from repro.sim import Counter, Histogram, RateMeter, Series, TimeWeighted


class TestCounter:
    def test_accumulates(self):
        counter = Counter("packets")
        counter.add()
        counter.add(4)
        assert counter.value == 5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter().add(-1)

    def test_reset(self):
        counter = Counter()
        counter.add(10)
        counter.reset()
        assert counter.value == 0


class TestRateMeter:
    def test_rate_over_window(self):
        meter = RateMeter()
        meter.add(100)
        assert meter.rate(now=2.0) == 50.0

    def test_reset_starts_new_window(self):
        meter = RateMeter()
        meter.add(100)
        meter.reset(now=1.0)
        meter.add(30)
        assert meter.rate(now=2.0) == 30.0

    def test_empty_window_rate_zero(self):
        meter = RateMeter()
        assert meter.rate(now=0.0) == 0.0


class TestTimeWeighted:
    def test_mean_weighs_by_duration(self):
        stat = TimeWeighted(initial=0.0)
        stat.update(10.0, now=1.0)   # 0 for [0,1)
        stat.update(0.0, now=3.0)    # 10 for [1,3)
        # mean over [0,4) = (0*1 + 10*2 + 0*1)/4 = 5
        assert stat.mean(now=4.0) == pytest.approx(5.0)

    def test_extrema_tracked(self):
        stat = TimeWeighted(initial=5.0)
        stat.update(1.0, now=1.0)
        stat.update(9.0, now=2.0)
        assert stat.minimum == 1.0
        assert stat.maximum == 9.0
        assert stat.current == 9.0

    def test_time_backwards_rejected(self):
        stat = TimeWeighted()
        stat.update(1.0, now=5.0)
        with pytest.raises(ValueError):
            stat.update(2.0, now=4.0)


class TestHistogram:
    def test_mean_and_count(self):
        hist = Histogram(bin_width=1.0)
        for value in [1.0, 2.0, 3.0]:
            hist.add(value)
        assert hist.count == 3
        assert hist.mean == pytest.approx(2.0)

    def test_percentile(self):
        hist = Histogram(bin_width=1.0)
        for value in range(100):
            hist.add(float(value))
        assert hist.percentile(50) == pytest.approx(49.0)
        assert hist.percentile(100) == pytest.approx(99.0)

    def test_percentile_bounds_enforced(self):
        with pytest.raises(ValueError):
            Histogram(bin_width=1.0).percentile(101)

    def test_invalid_bin_width(self):
        with pytest.raises(ValueError):
            Histogram(bin_width=0.0)

    def test_stdev(self):
        hist = Histogram(bin_width=0.1)
        for value in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]:
            hist.add(value)
        assert hist.stdev == pytest.approx(2.0)

    def test_items_sorted(self):
        hist = Histogram(bin_width=10.0)
        hist.add(25.0)
        hist.add(5.0)
        hist.add(27.0)
        assert hist.items() == [(0.0, 1), (20.0, 2)]


class TestSeries:
    def test_record_and_window_sum(self):
        series = Series()
        series.record(0.5, 10.0)
        series.record(1.5, 20.0)
        series.record(2.5, 30.0)
        assert series.window_sum(0.0, 2.0) == 30.0
        assert series.window_sum(2.0, 3.0) == 30.0

    def test_timestamps_must_be_monotone(self):
        series = Series()
        series.record(2.0, 1.0)
        with pytest.raises(ValueError):
            series.record(1.0, 1.0)

    def test_value_at_step_interpolation(self):
        series = Series()
        series.record(1.0, 100.0)
        series.record(3.0, 200.0)
        assert series.value_at(0.5, default=-1.0) == -1.0
        assert series.value_at(1.0) == 100.0
        assert series.value_at(2.9) == 100.0
        assert series.value_at(3.0) == 200.0

    def test_bucketize_covers_range(self):
        series = Series()
        for t in range(10):
            series.record(float(t), 1.0)
        buckets = series.bucketize(0.0, 10.0, 2.0)
        assert len(buckets) == 5
        assert all(total == 2.0 for _, total in buckets)

    def test_bucketize_invalid_width(self):
        with pytest.raises(ValueError):
            Series().bucketize(0.0, 1.0, 0.0)

    def test_bucketize_edges_do_not_drift(self):
        """Edges are computed as start + i*width, not by repeated
        addition — so a width like 0.1 yields exactly the expected
        bucket count with exact final coverage."""
        series = Series()
        buckets = series.bucketize(0.0, 1.0, 0.1)
        assert len(buckets) == 10
        starts = [start for start, _ in buckets]
        assert starts == pytest.approx([i * 0.1 for i in range(10)])
        # Repeated float addition of 0.1 drifts (10 * 0.1 != 1.0 in
        # binary); multiplication keeps the last edge exact.
        assert starts[-1] == 9 * 0.1

    def test_bucketize_partial_last_bucket(self):
        series = Series()
        series.record(2.4, 5.0)
        buckets = series.bucketize(0.0, 2.5, 1.0)
        assert len(buckets) == 3
        assert buckets[-1] == (2.0, 5.0)


class TestSeriesPercentile:
    def _series(self, values):
        series = Series("s")
        for index, value in enumerate(values):
            series.record(float(index), float(value))
        return series

    def test_endpoints_and_median(self):
        series = self._series([10, 20, 30, 40, 50])
        assert series.percentile(0) == 10.0
        assert series.percentile(50) == 30.0
        assert series.percentile(100) == 50.0

    def test_linear_interpolation_between_ranks(self):
        # rank = (n-1) * q/100; for 4 samples p50 sits halfway
        # between the 2nd and 3rd order statistics.
        series = self._series([1, 2, 3, 4])
        assert series.percentile(50) == pytest.approx(2.5)
        assert series.percentile(25) == pytest.approx(1.75)

    def test_order_independent(self):
        asc = self._series([1, 2, 3, 4, 5])
        shuffled = self._series([3, 1, 5, 2, 4])
        for q in (0, 25, 50, 90, 99, 100):
            assert asc.percentile(q) == shuffled.percentile(q)

    def test_single_sample(self):
        series = self._series([7])
        assert series.percentile(0) == 7.0
        assert series.percentile(99) == 7.0

    def test_rejects_out_of_range_q(self):
        series = self._series([1])
        with pytest.raises(ValueError):
            series.percentile(-1)
        with pytest.raises(ValueError):
            series.percentile(100.1)

    def test_empty_series_raises(self):
        with pytest.raises(ValueError):
            Series("empty").percentile(50)

    def test_summary_document(self):
        series = self._series([10, 20, 30, 40])
        doc = series.summary()
        assert doc["count"] == 4
        assert doc["sum"] == 100.0
        assert doc["min"] == 10.0
        assert doc["max"] == 40.0
        assert doc["mean"] == 25.0
        assert doc["p50"] == pytest.approx(25.0)
        assert doc["p90"] == pytest.approx(37.0)
        assert set(doc) == {"count", "sum", "min", "max", "mean",
                            "p50", "p90", "p99"}

    def test_summary_custom_percentiles(self):
        doc = self._series([1, 2, 3]).summary(percentiles=(25, 75))
        assert set(doc) == {"count", "sum", "min", "max", "mean",
                            "p25", "p75"}

    def test_summary_of_empty_series(self):
        assert Series("e").summary() == {"count": 0, "sum": 0}
