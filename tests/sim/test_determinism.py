"""Golden determinism: the executed event stream is reproducible.

The engine's whole value is that a (scenario, seed) pair replays
exactly.  These tests pin that at the strongest level we can observe:
the sha256 over every executed event's ``(time, seq, callback
qualname)`` on a fixed multi-VM scenario.

* The replay test guards the contract itself: two runs in one process
  produce identical digests (catches hidden global state — module
  sequences, shared pools, dict-order leaks).
* The golden test pins the digest to a recorded constant, so *any*
  change to event ordering — a reordered schedule call, a wheel/heap
  tie broken differently, a float computed another way — fails loudly.
  If you changed scheduling **on purpose**, re-record the constant
  (run the helper below) and say so in the commit; if you didn't, the
  failure is a real regression.
"""

import hashlib

from repro.core.testbed import Testbed

#: Recorded digest of the fixed scenario below.  Re-record (only) for
#: intentional event-order changes:
#:   PYTHONPATH=src python -c "from tests.sim.test_determinism import \
#:       _run_fixed_scenario; print(_run_fixed_scenario())"
GOLDEN_DIGEST = (
    "6c9ab734935430dcb95adadca131b379145da7b16417d3868f02798caa493bb1")


def _run_fixed_scenario() -> str:
    """Run the fixed three-VM scenario, hashing every executed event."""
    bed = Testbed()
    for index in range(3):
        guest = bed.add_sriov_guest(name=f"vm{index}")
        bed.attach_client_to_sriov(guest, 300e6).start()
    digest = hashlib.sha256()
    update = digest.update

    def observe(handle):
        callback = handle.callback
        name = getattr(callback, "__qualname__", None) or repr(callback)
        update(f"{handle.time!r} {handle.seq} {name}\n".encode())
        callback(*handle.args)

    bed.sim.set_step_observer(observe)
    bed.sim.run(until=0.02)
    return digest.hexdigest()


def test_same_scenario_replays_the_same_event_stream():
    assert _run_fixed_scenario() == _run_fixed_scenario()


def test_event_stream_matches_golden_digest():
    assert _run_fixed_scenario() == GOLDEN_DIGEST
