"""Unit tests for the trace subsystem."""

import pytest

from repro.sim import Simulator
from repro.sim.trace import NULL_TRACER, NullTracer, TraceEvent, Tracer


def make_tracer(capacity=100):
    sim = Simulator()
    return sim, Tracer(sim, capacity=capacity)


def test_emit_records_time_and_detail():
    sim, tracer = make_tracer()
    tracer.enable_all()
    sim.run(until=1.5)
    tracer.emit("irq", "deliver", vector=0x40)
    [event] = tracer.events()
    assert event.time == 1.5
    assert event.category == "irq"
    assert event.get("vector") == 0x40
    assert event.get("missing", "d") == "d"


def test_categories_filter_at_capture_time():
    sim, tracer = make_tracer()
    tracer.enable("irq")
    tracer.emit("irq", "a")
    tracer.emit("mailbox", "b")  # not enabled: dropped silently
    assert len(tracer) == 1
    assert tracer.is_enabled("irq")
    assert not tracer.is_enabled("mailbox")


def test_enable_all_then_specific_disable_rejected():
    sim, tracer = make_tracer()
    tracer.enable_all()
    with pytest.raises(ValueError):
        tracer.disable("irq")


def test_disable_specific():
    sim, tracer = make_tracer()
    tracer.enable("irq", "mailbox")
    tracer.disable("mailbox")
    tracer.emit("mailbox", "x")
    assert len(tracer) == 0


def test_ring_buffer_drops_oldest():
    sim, tracer = make_tracer(capacity=3)
    tracer.enable_all()
    for i in range(5):
        tracer.emit("c", f"e{i}")
    assert len(tracer) == 3
    assert [e.name for e in tracer.events()] == ["e2", "e3", "e4"]
    assert tracer.dropped == 2
    assert tracer.emitted == 5


def test_select_filters():
    sim, tracer = make_tracer()
    tracer.enable_all()
    for t, cat, name in [(1.0, "irq", "a"), (2.0, "irq", "b"),
                         (3.0, "mbx", "a")]:
        sim.run(until=t)
        tracer.emit(cat, name)
    assert len(list(tracer.select(category="irq"))) == 2
    assert len(list(tracer.select(name="a"))) == 2
    assert len(list(tracer.select(after=1.5, before=2.5))) == 1


def test_counts_by_name():
    sim, tracer = make_tracer()
    tracer.enable_all()
    for _ in range(3):
        tracer.emit("irq", "deliver")
    tracer.emit("irq", "blocked")
    assert tracer.counts_by_name("irq") == {"deliver": 3, "blocked": 1}


def test_clear():
    sim, tracer = make_tracer()
    tracer.enable_all()
    tracer.emit("c", "x")
    tracer.clear()
    assert len(tracer) == 0
    assert tracer.emitted == 0


def test_null_tracer_is_inert():
    NULL_TRACER.emit("anything", "goes", huge=list(range(10)))
    NULL_TRACER.begin("anything", "span")
    NULL_TRACER.end("anything", "span")
    assert not NULL_TRACER.is_enabled("anything")


def test_span_begin_end_phases():
    sim, tracer = make_tracer()
    tracer.enable_all()
    tracer.begin("irq", "deliver", vector=1)
    tracer.emit("apic", "eoi")
    tracer.end("irq", "deliver")
    phases = [e.phase for e in tracer.events()]
    assert phases == ["B", "i", "E"]
    begin = tracer.events()[0]
    assert begin.get("vector") == 1
    assert str(begin).startswith("[0.000000] B irq:deliver")


def test_spans_respect_category_filter():
    sim, tracer = make_tracer()
    tracer.enable("irq")
    tracer.begin("mbx", "vf0")
    tracer.end("mbx", "vf0")
    assert len(tracer) == 0


def test_evicted_means_pushed_out_and_invariant_holds():
    sim, tracer = make_tracer(capacity=4)
    tracer.enable_all()
    for i in range(10):
        tracer.emit("c", f"e{i}")
    assert tracer.evicted == 6
    assert tracer.dropped == tracer.evicted  # backwards-compat alias
    assert len(tracer) == tracer.emitted - tracer.evicted


def test_counts_by_name_tracks_evictions():
    sim, tracer = make_tracer(capacity=3)
    tracer.enable_all()
    tracer.emit("c", "old")
    for _ in range(3):
        tracer.emit("c", "new")  # third emit evicts "old"
    assert tracer.counts_by_name("c") == {"new": 3}
    # Counts always mirror a fresh walk of the buffer.
    walked = {}
    for event in tracer.events():
        walked[event.name] = walked.get(event.name, 0) + 1
    assert tracer.counts_by_name("c") == walked


def test_span_eviction_accounting():
    """A span's B can be evicted while its E survives; the running
    counters stay exact through the mixed-phase churn."""
    sim, tracer = make_tracer(capacity=2)
    tracer.enable_all()
    tracer.begin("irq", "deliver", vector=64)   # B
    tracer.emit("c", "fill0")
    tracer.emit("c", "fill1")                   # evicts the B
    tracer.end("irq", "deliver")                # orphan E, evicts fill0
    assert tracer.emitted == 4
    assert tracer.evicted == 2
    assert len(tracer) == tracer.emitted - tracer.evicted
    assert [e.phase for e in tracer.events()] == ["i", "E"]
    # The evicted B no longer counts; the surviving orphan E does.
    assert tracer.counts_by_name("irq") == {"deliver": 1}


def test_interleaved_spans_evict_in_emit_order():
    """Eviction is strictly FIFO over phases: with two interleaved
    spans in a 3-slot ring, the outer B goes first, never the newest
    E."""
    sim, tracer = make_tracer(capacity=3)
    tracer.enable_all()
    tracer.begin("irq", "outer")
    tracer.begin("mbx", "inner")
    tracer.end("mbx", "inner")
    tracer.end("irq", "outer")  # outer B was evicted to admit this
    assert tracer.evicted == 1
    names = [(e.name, e.phase) for e in tracer.events()]
    assert names == [("inner", "B"), ("inner", "E"), ("outer", "E")]


def test_clear_resets_running_counts():
    sim, tracer = make_tracer(capacity=2)
    tracer.enable_all()
    for i in range(5):
        tracer.emit("c", "x")
    tracer.clear()
    assert tracer.counts_by_name() == {}
    assert tracer.evicted == 0
    tracer.emit("c", "y")
    assert tracer.counts_by_name() == {"y": 1}


def test_event_str_rendering():
    event = TraceEvent(1.25, "irq", "deliver", (("vector", 64),))
    assert str(event) == "[1.250000] irq:deliver vector=64"


def test_capacity_validated():
    with pytest.raises(ValueError):
        Tracer(Simulator(), capacity=0)


def test_hypervisor_trace_integration():
    """Installing a tracer on Xen captures the interrupt path."""
    from repro.core import Testbed, TestbedConfig
    from repro.net import Packet
    from repro.net.mac import MacAddress
    bed = Testbed(TestbedConfig(ports=1))
    tracer = Tracer(bed.sim)
    tracer.enable("irq")
    bed.platform.trace = tracer
    guest = bed.add_sriov_guest()
    guest.port.wire_receive([Packet(src=MacAddress(0x02_9999), dst=guest.vf.mac)])
    bed.sim.run(until=0.01)
    deliveries = list(tracer.select(category="irq", name="deliver"))
    assert deliveries
    assert deliveries[0].get("domain") == guest.domain.id
