"""Unit tests for event channels."""

import pytest

from repro.vmm import EventChannelError, EventChannels


def test_bind_and_notify():
    channels = EventChannels()
    upcalls = []
    port = channels.bind(upcalls.append)
    assert channels.notify(port) is True
    assert upcalls == [port]


def test_ports_are_unique():
    channels = EventChannels()
    ports = [channels.bind(lambda p: None) for _ in range(5)]
    assert len(set(ports)) == 5
    assert channels.bound_ports == 5


def test_masked_port_latches_pending():
    channels = EventChannels()
    upcalls = []
    port = channels.bind(upcalls.append)
    channels.mask(port)
    assert channels.notify(port) is False
    assert channels.is_pending(port)
    assert upcalls == []
    channels.unmask(port)
    assert upcalls == [port]
    assert not channels.is_pending(port)


def test_pending_collapses_notifications():
    channels = EventChannels()
    upcalls = []
    port = channels.bind(upcalls.append)
    channels.mask(port)
    channels.notify(port)
    channels.notify(port)
    channels.notify(port)
    channels.unmask(port)
    assert len(upcalls) == 1
    assert channels.notifications == 3


def test_close_releases_port():
    channels = EventChannels()
    port = channels.bind(lambda p: None)
    channels.close(port)
    with pytest.raises(EventChannelError):
        channels.notify(port)
    with pytest.raises(EventChannelError):
        channels.close(port)


def test_operations_on_unbound_port_fail():
    channels = EventChannels()
    for operation in [channels.mask, channels.unmask, channels.clear_pending,
                      channels.is_pending]:
        with pytest.raises(EventChannelError):
            operation(42)


def test_clear_pending():
    channels = EventChannels()
    port = channels.bind(lambda p: None)
    channels.mask(port)
    channels.notify(port)
    channels.clear_pending(port)
    upcalls = []
    channels.unmask(port)
    assert not channels.is_pending(port)
