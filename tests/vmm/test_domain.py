"""Unit tests for domains and accounting."""

import pytest

from repro.hw.cpu import Machine
from repro.sim import Simulator
from repro.vmm import Domain, DomainKind, GuestKernel


def make_machine():
    return Machine(Simulator(), core_count=16, clock_hz=1e9)


def test_hvm_domain_has_lapic():
    machine = make_machine()
    hvm = Domain(1, "hvm", DomainKind.HVM, machine, [8])
    pvm = Domain(2, "pvm", DomainKind.PVM, machine, [9])
    assert hvm.lapic is not None
    assert pvm.lapic is None


def test_kind_predicates():
    machine = make_machine()
    dom0 = Domain(0, "dom0", DomainKind.DOM0, machine, [0])
    hvm = Domain(1, "g", DomainKind.HVM, machine, [8])
    assert dom0.is_dom0 and not dom0.is_hvm
    assert hvm.is_hvm and not hvm.is_dom0


def test_account_labels():
    machine = make_machine()
    assert Domain(0, "d", DomainKind.DOM0, machine, [0]).account_label == "dom0"
    assert Domain(1, "g", DomainKind.HVM, machine, [8]).account_label == "guest"
    assert Domain(2, "p", DomainKind.PVM, machine, [9]).account_label == "guest"
    assert Domain(3, "n", DomainKind.NATIVE, machine, [1]).account_label == "native"


def test_charges_land_on_home_core():
    machine = make_machine()
    guest = Domain(1, "g", DomainKind.HVM, machine, [8])
    guest.charge_guest(1000)
    guest.charge_hypervisor(500)
    assert machine.core(8).cycles("guest") == 1000
    assert machine.core(8).cycles("xen") == 500
    assert machine.core(0).cycles() == 0


def test_multi_vcpu_charging():
    machine = make_machine()
    dom0 = Domain(0, "dom0", DomainKind.DOM0, machine, list(range(8)))
    dom0.charge_guest(100, vcpu=3)
    assert machine.core(3).cycles("dom0") == 100


def test_kernel_msi_masking_flag():
    assert GuestKernel.LINUX_2_6_18.masks_msi_per_interrupt
    assert not GuestKernel.LINUX_2_6_28.masks_msi_per_interrupt


def test_domain_requires_pinning():
    with pytest.raises(ValueError):
        Domain(1, "g", DomainKind.HVM, make_machine(), [])
