"""Unit tests for the hypervisor: domain lifecycle and MSI routing."""

import pytest

from repro.core.costs import CostModel
from repro.core.optimizations import OptimizationConfig
from repro.hw.msi import MsiMessage
from repro.sim import Simulator
from repro.vmm import DomainKind, GuestKernel, NativeHost, VmExitKind, Xen


def make_xen(**kwargs):
    return Xen(Simulator(), **kwargs)


class TestDomainLifecycle:
    def test_dom0_exists_with_pinned_vcpus(self):
        xen = make_xen()
        assert xen.dom0.is_dom0
        assert [v.core_index for v in xen.dom0.vcpus] == list(range(8))

    def test_guests_pin_to_remaining_threads_round_robin(self):
        xen = make_xen()
        guests = [xen.create_guest(f"g{i}") for i in range(10)]
        cores = [g.home_core() for g in guests]
        assert cores[:8] == list(range(8, 16))
        assert cores[8:] == [8, 9]  # wraps around

    def test_hvm_guest_gets_vlapic_and_device_model(self):
        xen = make_xen()
        hvm = xen.create_guest("hvm", DomainKind.HVM)
        assert xen.vlapic(hvm) is not None
        assert xen.device_model(hvm) is not None
        assert xen.hvm_guest_count == 1

    def test_pvm_guest_has_neither(self):
        xen = make_xen()
        pvm = xen.create_guest("pvm", DomainKind.PVM)
        with pytest.raises(KeyError):
            xen.vlapic(pvm)
        assert xen.hvm_guest_count == 0

    def test_cannot_create_second_dom0(self):
        with pytest.raises(ValueError):
            make_xen().create_guest("evil", DomainKind.DOM0)

    def test_destroy_guest_updates_contention(self):
        xen = make_xen()
        a = xen.create_guest("a")
        b = xen.create_guest("b")
        assert xen.device_model(a).contending_vms == 2
        xen.destroy_guest(b)
        assert xen.device_model(a).contending_vms == 1
        assert not b.running


class TestMsiRouting:
    def deliver_to(self, xen, domain):
        received = []
        vector = xen.bind_guest_msi(domain, received.append)
        xen.deliver_msi(None, MsiMessage(0xFEE00000, vector))
        return vector, received

    def test_hvm_delivery_runs_isr_and_charges_exit(self):
        xen = make_xen()
        guest = xen.create_guest("g", DomainKind.HVM)
        vector, received = self.deliver_to(xen, guest)
        assert received == [vector]
        assert xen.tracer.count(VmExitKind.EXTERNAL_INTERRUPT) == 1
        assert guest.lapic.isr_contains(vector)

    def test_pvm_delivery_uses_event_channel_cost(self):
        xen = make_xen()
        guest = xen.create_guest("g", DomainKind.PVM)
        _, received = self.deliver_to(xen, guest)
        assert len(received) == 1
        # Event-channel notify recorded as hypercall-class work.
        assert xen.tracer.cycles(VmExitKind.HYPERCALL) == \
            xen.costs.event_channel_notify_cycles

    def test_vector_for_destroyed_domain_dropped(self):
        xen = make_xen()
        guest = xen.create_guest("g")
        received = []
        vector = xen.bind_guest_msi(guest, received.append)
        xen.destroy_guest(guest)
        xen.deliver_msi(None, MsiMessage(0xFEE00000, vector))
        assert received == []

    def test_vectors_globally_unique_across_guests(self):
        xen = make_xen()
        vectors = [
            xen.bind_guest_msi(xen.create_guest(f"g{i}"), lambda v: None)
            for i in range(10)
        ]
        assert len(set(vectors)) == 10

    def test_unbind_frees_vector(self):
        xen = make_xen()
        guest = xen.create_guest("g")
        received = []
        vector = xen.bind_guest_msi(guest, received.append)
        xen.unbind_guest_msi(vector)
        xen.deliver_msi(None, MsiMessage(0xFEE00000, vector))
        assert received == []


class TestMeasurement:
    def test_measurement_window(self):
        sim = Simulator()
        xen = Xen(sim)
        guest = xen.create_guest("g")
        sim.run(until=1.0)
        xen.start_measurement()
        guest.charge_guest(2.8e9)  # one full core-second
        sim.run(until=2.0)
        elapsed = xen.end_measurement()
        assert elapsed == pytest.approx(1.0)
        breakdown = xen.utilization_breakdown()
        assert breakdown["guest"] == pytest.approx(100.0)
        # Device-model housekeeping landed in dom0 at end_measurement.
        assert breakdown["dom0"] > 0

    def test_custom_costs_and_opts(self):
        costs = CostModel(core_count=4, dom0_vcpus=2)
        xen = Xen(Simulator(), costs=costs,
                  opts=OptimizationConfig.all())
        assert len(xen.machine.cores) == 4
        assert xen.opts.eoi_acceleration


class TestNativeHost:
    def test_native_delivery_has_no_virtualization_cost(self):
        host = NativeHost(Simulator())
        context = host.create_guest("vf0")
        received = []
        vector = host.bind_guest_msi(context, received.append)
        host.deliver_msi(None, MsiMessage(0xFEE00000, vector))
        assert received == [vector]
        assert host.machine.cycles() == 0

    def test_native_contexts_label(self):
        host = NativeHost(Simulator())
        context = host.create_guest("vf0")
        context.charge_guest(100)
        assert host.machine.cycles("native") == 100
        assert host.is_native
