"""Unit tests for the SR-IOV manager (IOVM)."""

import pytest

from repro.devices import Igb82576Port
from repro.hw.pcie.config_space import CAP_ID_MSIX, INVALID_VENDOR_ID
from repro.sim import Simulator
from repro.vmm import DomainKind, Iovm, IovmError, Xen


def build():
    sim = Simulator()
    xen = Xen(sim)
    port = Igb82576Port(sim, iommu=xen.iommu)
    xen.root_complex.attach(port.pf.pci, bus=1, device=0)
    port.interrupt_sink = xen.deliver_msi
    port.enable_vfs(4)
    iovm = Iovm(xen)
    return sim, xen, port, iovm


def test_surface_vfs_uses_hot_add():
    _, xen, port, iovm = build()
    assert xen.root_complex.scan() == [port.pf.pci]  # VFs invisible to scan
    surfaced = iovm.surface_vfs(port)
    assert len(surfaced) == 4
    assert len(xen.root_complex.hot_added) == 4
    for vf in surfaced:
        assert xen.root_complex.function_at(vf.pci.rid) is vf.pci
        # Still invisible to an ordinary probe even when hot-added.
        assert xen.root_complex.probe(vf.pci.rid) == INVALID_VENDOR_ID


def test_surface_is_idempotent():
    _, xen, port, iovm = build()
    iovm.surface_vfs(port)
    iovm.surface_vfs(port)
    assert len(xen.root_complex.hot_added) == 4


def test_synthesized_config_space_is_full():
    _, xen, port, iovm = build()
    iovm.surface_vfs(port)
    virtual = iovm.synthesize_config_space(port.vf(0))
    # Guest sees the VF identity with PF-derived structure and MSI-X.
    assert virtual.vendor_id == port.vf(0).pci.config.vendor_id
    assert virtual.device_id == port.vf(0).pci.config.device_id
    assert virtual.find_capability(CAP_ID_MSIX) is not None


def test_assign_installs_iommu_context():
    _, xen, port, iovm = build()
    iovm.surface_vfs(port)
    guest = xen.create_guest("g", DomainKind.HVM)
    assignment = iovm.assign(port.vf(0), guest)
    assert xen.iommu.context_for(assignment.rid) is guest.io_page_table
    assert iovm.assignment_for(guest) is assignment
    assert iovm.active_assignments == 1


def test_double_assignment_rejected():
    _, xen, port, iovm = build()
    iovm.surface_vfs(port)
    guest1 = xen.create_guest("g1")
    guest2 = xen.create_guest("g2")
    iovm.assign(port.vf(0), guest1)
    with pytest.raises(IovmError):
        iovm.assign(port.vf(0), guest2)


def test_assign_unsurfaced_vf_rejected():
    sim = Simulator()
    xen = Xen(sim)
    port = Igb82576Port(sim, iommu=xen.iommu)
    xen.root_complex.attach(port.pf.pci, bus=1, device=0)
    port.enable_vfs(1)
    iovm = Iovm(xen)
    vf = port.vf(0)
    vf.pci.rid = None  # never surfaced
    with pytest.raises(IovmError):
        iovm.assign(vf, xen.create_guest("g"))


def test_revoke_detaches_iommu():
    _, xen, port, iovm = build()
    iovm.surface_vfs(port)
    guest = xen.create_guest("g")
    assignment = iovm.assign(port.vf(0), guest)
    iovm.revoke(assignment)
    assert xen.iommu.context_for(assignment.rid) is None
    assert iovm.active_assignments == 0
    with pytest.raises(IovmError):
        iovm.revoke(assignment)


def test_vf_reassignable_after_revoke():
    _, xen, port, iovm = build()
    iovm.surface_vfs(port)
    guest1 = xen.create_guest("g1")
    guest2 = xen.create_guest("g2")
    assignment = iovm.assign(port.vf(0), guest1)
    iovm.revoke(assignment)
    iovm.assign(port.vf(0), guest2)
    assert iovm.assignment_for(guest2) is not None
