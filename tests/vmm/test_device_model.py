"""Unit tests for the dom0 device model and MSI mask/unmask costs."""

import pytest

from repro.core.costs import CostModel
from repro.core.optimizations import OptimizationConfig
from repro.hw.cpu import Machine
from repro.sim import Simulator
from repro.vmm import Domain, DomainKind, VmExitKind, VmExitTracer
from repro.vmm.device_model import DeviceModel


def make_dm(opts=None, costs=None):
    costs = costs or CostModel()
    machine = Machine(Simulator(), core_count=16, clock_hz=costs.clock_hz)
    dom0 = Domain(0, "dom0", DomainKind.DOM0, machine, list(range(8)))
    guest = Domain(1, "g", DomainKind.HVM, machine, [8])
    tracer = VmExitTracer()
    dm = DeviceModel(guest, dom0, costs, opts or OptimizationConfig.none(),
                     tracer)
    return dm, machine, costs, tracer


def test_unoptimized_trap_charges_all_three_parties():
    dm, machine, costs, tracer = make_dm()
    dm.emulate_msix_mask_write(is_mask=True)
    # Xen forward cost on the guest's core.
    assert machine.core(8).cycles("xen") == costs.xen_msi_forward_cycles
    # dom0 round trip on one of dom0's cores.
    assert machine.cycles("dom0") == costs.dm_msi_roundtrip_cycles
    # Guest-side pollution stall.
    assert machine.core(8).cycles("guest") == costs.guest_msi_stall_cycles
    assert tracer.count(VmExitKind.MSIX_MASK) == 1


def test_accelerated_trap_stays_in_hypervisor():
    dm, machine, costs, tracer = make_dm(
        OptimizationConfig(msi_acceleration=True))
    dm.emulate_msix_mask_write(is_mask=False)
    assert machine.cycles("dom0") == 0
    assert machine.cycles("guest") == 0
    assert machine.core(8).cycles("xen") == costs.xen_msi_accelerated_cycles
    assert tracer.count(VmExitKind.MSIX_UNMASK) == 1


def test_acceleration_is_a_large_dom0_saving():
    """The §5.1 point: the dom0 component vanishes entirely."""
    costs = CostModel()
    unopt_dom0 = costs.dm_msi_roundtrip_cycles
    assert unopt_dom0 / costs.xen_msi_accelerated_cycles > 10


def test_contention_inflates_dom0_cost():
    """Fig. 6: dom0 grows 17% -> 30% as VMs go 1 -> 7 because each trap
    gets more expensive under device-model contention."""
    dm, machine, costs, _ = make_dm()
    dm.contending_vms = 7
    dm.emulate_msix_mask_write(is_mask=True)
    expected = costs.dm_msi_roundtrip_cycles * (
        1 + costs.dm_msi_contention_per_vm * 6)
    assert machine.cycles("dom0") == pytest.approx(expected)
    assert expected > costs.dm_msi_roundtrip_cycles


def test_housekeeping_budget_is_shared_across_vms():
    """Total device-model housekeeping stays ~flat regardless of VM#."""
    dm, machine, costs, _ = make_dm()
    solo = dm.housekeeping_cycles(elapsed=1.0)
    dm.contending_vms = 7
    shared = dm.housekeeping_cycles(elapsed=1.0)
    assert shared == pytest.approx(solo / 7)
    # The solo budget equals the configured percentage of one core.
    assert solo == pytest.approx(
        costs.dm_housekeeping_percent / 100 * costs.clock_hz)


def test_charge_housekeeping_lands_in_dom0():
    dm, machine, _, _ = make_dm()
    dm.charge_housekeeping(elapsed=1.0)
    assert machine.cycles("dom0") > 0


def test_mask_trap_counter():
    dm, _, _, _ = make_dm()
    dm.emulate_msix_mask_write(True)
    dm.emulate_msix_mask_write(False)
    assert dm.msi_mask_traps == 2
