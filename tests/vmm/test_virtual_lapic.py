"""Unit tests for virtual LAPIC emulation and EOI acceleration costs."""

import pytest

from repro.core.costs import CostModel
from repro.core.optimizations import OptimizationConfig
from repro.hw.cpu import Machine
from repro.sim import Simulator
from repro.vmm import Domain, DomainKind, VirtualLapic, VmExitKind, VmExitTracer


def make_vlapic(opts=None, costs=None):
    costs = costs or CostModel()
    machine = Machine(Simulator(), core_count=16, clock_hz=costs.clock_hz)
    domain = Domain(1, "g", DomainKind.HVM, machine, [8])
    tracer = VmExitTracer()
    vlapic = VirtualLapic(domain, costs, opts or OptimizationConfig.none(),
                          tracer)
    return vlapic, domain, tracer, machine, costs


def test_requires_hvm_domain():
    machine = Machine(Simulator(), core_count=16)
    pvm = Domain(1, "p", DomainKind.PVM, machine, [8])
    with pytest.raises(ValueError):
        VirtualLapic(pvm, CostModel(), OptimizationConfig.none(), VmExitTracer())


def test_inject_delivers_vector():
    vlapic, domain, _, _, _ = make_vlapic()
    vlapic.inject(0x40)
    assert domain.lapic.isr_contains(0x40)


def test_eoi_unaccelerated_cost():
    vlapic, domain, tracer, machine, costs = make_vlapic()
    vlapic.inject(0x40)
    xen_before = machine.core(8).cycles("xen")
    retired = vlapic.eoi_write()
    assert retired == 0x40
    assert tracer.cycles(VmExitKind.APIC_ACCESS_EOI) == costs.eoi_emulate_cycles
    assert machine.core(8).cycles("xen") - xen_before == costs.eoi_emulate_cycles


def test_eoi_accelerated_cost():
    opts = OptimizationConfig(eoi_acceleration=True)
    vlapic, _, tracer, _, costs = make_vlapic(opts)
    vlapic.inject(0x40)
    vlapic.eoi_write()
    assert tracer.cycles(VmExitKind.APIC_ACCESS_EOI) == costs.eoi_accelerated_cycles


def test_eoi_accelerated_with_instruction_check():
    opts = OptimizationConfig(eoi_acceleration=True, eoi_instruction_check=True)
    vlapic, _, tracer, _, costs = make_vlapic(opts)
    vlapic.inject(0x40)
    vlapic.eoi_write()
    expected = costs.eoi_accelerated_cycles + costs.eoi_instruction_check_cycles
    assert tracer.cycles(VmExitKind.APIC_ACCESS_EOI) == expected


def test_acceleration_saves_the_papers_5900_cycles():
    """8.4K -> 2.5K per EOI (§5.2)."""
    costs = CostModel()
    saving = costs.eoi_emulate_cycles - costs.eoi_accelerated_cycles
    assert saving == pytest.approx(5900)


def test_other_apic_accesses_average_per_interrupt():
    """The 1.13 non-EOI accesses per interrupt accumulate via carry."""
    vlapic, _, tracer, _, costs = make_vlapic()
    for _ in range(100):
        vlapic.inject(0x40)
        vlapic.eoi_write()
    other = tracer.count(VmExitKind.APIC_ACCESS_OTHER)
    assert other == pytest.approx(113, abs=1)


def test_eoi_share_of_apic_access_exits_near_47_percent():
    """§5.2: 'Among APIC-access VM-exit, 47% of them are EOI write.'"""
    vlapic, _, tracer, _, _ = make_vlapic()
    for _ in range(1000):
        vlapic.inject(0x40)
        vlapic.eoi_write()
    assert tracer.eoi_share_of_apic_accesses() == pytest.approx(0.47, abs=0.01)


def test_pending_lower_priority_dispatched_after_eoi():
    vlapic, domain, _, _, _ = make_vlapic()
    vlapic.inject(0x80)
    vlapic.inject(0x40)  # lower priority: stays in IRR
    assert domain.lapic.isr_contains(0x80)
    assert domain.lapic.irr_contains(0x40)
    vlapic.eoi_write()
    assert domain.lapic.isr_contains(0x40)
