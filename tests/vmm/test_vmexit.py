"""Unit tests for the VM-exit tracer."""

import pytest

from repro.vmm import VmExitKind, VmExitTracer


def test_record_and_read_back():
    tracer = VmExitTracer()
    tracer.record(VmExitKind.APIC_ACCESS_EOI, 8400)
    tracer.record(VmExitKind.APIC_ACCESS_EOI, 8400)
    tracer.record(VmExitKind.EXTERNAL_INTERRUPT, 2400)
    assert tracer.count(VmExitKind.APIC_ACCESS_EOI) == 2
    assert tracer.cycles(VmExitKind.APIC_ACCESS_EOI) == 16800
    assert tracer.total_count == 3
    assert tracer.total_cycles == 19200


def test_negative_cost_rejected():
    with pytest.raises(ValueError):
        VmExitTracer().record(VmExitKind.OTHER, -1)


def test_apic_access_aggregation():
    tracer = VmExitTracer()
    tracer.record(VmExitKind.APIC_ACCESS_EOI, 100)
    tracer.record(VmExitKind.APIC_ACCESS_OTHER, 200)
    tracer.record(VmExitKind.EXTERNAL_INTERRUPT, 999)
    assert tracer.apic_access_cycles() == 300


def test_eoi_share_matches_paper_convention():
    """§5.2: 47% of APIC-access exits are EOI writes — the share is a
    count ratio, not a cycle ratio."""
    tracer = VmExitTracer()
    for _ in range(47):
        tracer.record(VmExitKind.APIC_ACCESS_EOI, 8400)
    for _ in range(53):
        tracer.record(VmExitKind.APIC_ACCESS_OTHER, 1)
    assert tracer.eoi_share_of_apic_accesses() == pytest.approx(0.47)


def test_eoi_share_empty_is_zero():
    assert VmExitTracer().eoi_share_of_apic_accesses() == 0.0


def test_cycles_per_second():
    tracer = VmExitTracer()
    tracer.record(VmExitKind.APIC_ACCESS_EOI, 1000)
    rates = tracer.cycles_per_second(elapsed=2.0)
    assert rates[VmExitKind.APIC_ACCESS_EOI] == 500
    assert rates[VmExitKind.OTHER] == 0
    assert all(v == 0 for v in tracer.cycles_per_second(0).values())


def test_reset():
    tracer = VmExitTracer()
    tracer.record(VmExitKind.OTHER, 10)
    tracer.reset()
    assert tracer.total_count == 0
    assert tracer.total_cycles == 0
