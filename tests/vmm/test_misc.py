"""Unit tests for hotplug, grant tables, pinning, vector allocation."""

import pytest

from repro.sim import Simulator
from repro.vmm import (
    DomainKind,
    GrantError,
    GrantTable,
    HotplugController,
    PinningPolicy,
    VectorAllocator,
    VectorExhausted,
    Xen,
)


class TestHotplug:
    def build(self):
        sim = Simulator()
        xen = Xen(sim)
        guest = xen.create_guest("g", DomainKind.HVM)
        controller = HotplugController(sim)
        return sim, guest, controller

    def test_removal_delivers_after_eject_latency(self):
        sim, guest, controller = self.build()
        events = []
        controller.register_guest(guest, lambda kind, dev: events.append((kind, sim.now)))
        done = []
        controller.request_removal(guest, "vf0", lambda: done.append(sim.now))
        sim.run()
        assert events == [("remove", pytest.approx(0.2))]
        assert done == [pytest.approx(0.2)]

    def test_hot_add_delivers(self):
        sim, guest, controller = self.build()
        events = []
        controller.register_guest(guest, lambda kind, dev: events.append(kind))
        controller.hot_add(guest, "vf1")
        sim.run()
        assert events == ["add"]

    def test_unregistered_guest_rejected(self):
        sim, guest, controller = self.build()
        with pytest.raises(RuntimeError):
            controller.request_removal(guest, "vf0")

    def test_event_log(self):
        sim, guest, controller = self.build()
        controller.register_guest(guest, lambda kind, dev: None)
        controller.request_removal(guest, "vf0")
        sim.run()
        assert controller.events == ["remove-requested:g", "remove-completed:g"]

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            HotplugController(Simulator(), eject_latency=-1)


class TestGrantTable:
    def test_grant_and_copy(self):
        table = GrantTable(domain_id=1)
        ref = table.grant_access(grantee_domain=0, frame=0x1234)
        table.grant_copy(ref, grantee_domain=0, size_bytes=1500)
        assert table.copies == 1
        assert table.copied_bytes == 1500

    def test_wrong_grantee_rejected(self):
        table = GrantTable(1)
        ref = table.grant_access(0, 0x1)
        with pytest.raises(GrantError):
            table.grant_copy(ref, grantee_domain=9, size_bytes=100)
        with pytest.raises(GrantError):
            table.map_grant(ref, grantee_domain=9)

    def test_readonly_grant_blocks_write_copy(self):
        table = GrantTable(1)
        ref = table.grant_access(0, 0x1, readonly=True)
        with pytest.raises(GrantError):
            table.grant_copy(ref, 0, 100, write=True)
        table.grant_copy(ref, 0, 100, write=False)

    def test_end_access_refused_while_mapped(self):
        table = GrantTable(1)
        ref = table.grant_access(0, 0x1)
        table.map_grant(ref, 0)
        with pytest.raises(GrantError):
            table.end_access(ref)
        table.unmap_grant(ref)
        table.end_access(ref)
        assert table.active_grants() == 0

    def test_unknown_ref(self):
        with pytest.raises(GrantError):
            GrantTable(1).grant_copy(99, 0, 10)


class TestPinning:
    def test_dom0_and_guest_cores_partition(self):
        policy = PinningPolicy(core_count=16, dom0_vcpus=8)
        assert policy.dom0_cores() == list(range(8))
        assert policy.guest_cores == list(range(8, 16))

    def test_guests_round_robin(self):
        policy = PinningPolicy(core_count=16, dom0_vcpus=8)
        placements = [policy.place_guest() for _ in range(10)]
        assert placements == [8, 9, 10, 11, 12, 13, 14, 15, 8, 9]

    def test_oversubscription_metric(self):
        policy = PinningPolicy(core_count=16, dom0_vcpus=8)
        assert policy.guests_per_core(60) == 7.5

    def test_dom0_cannot_take_all_threads(self):
        with pytest.raises(ValueError):
            PinningPolicy(core_count=8, dom0_vcpus=8)


class TestVectorAllocator:
    def test_unique_allocation_and_ownership(self):
        allocator = VectorAllocator()
        v1 = allocator.allocate(1, lambda v: None)
        v2 = allocator.allocate(2, lambda v: None)
        assert v1 != v2
        assert allocator.owner(v1) == 1
        assert allocator.owner(v2) == 2

    def test_free_and_reuse(self):
        allocator = VectorAllocator()
        vector = allocator.allocate(1, lambda v: None)
        allocator.free(vector)
        assert allocator.owner(vector) is None
        again = allocator.allocate(2, lambda v: None)
        assert again == vector

    def test_exhaustion(self):
        allocator = VectorAllocator()
        for _ in range(256 - VectorAllocator.FIRST_DYNAMIC):
            allocator.allocate(1, lambda v: None)
        with pytest.raises(VectorExhausted):
            allocator.allocate(1, lambda v: None)

    def test_handler_lookup(self):
        allocator = VectorAllocator()
        marker = lambda v: None
        vector = allocator.allocate(1, marker)
        assert allocator.handler(vector) is marker
        assert allocator.handler(0xFF) is None
