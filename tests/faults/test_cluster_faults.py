"""Cluster-scale fault injection: byte-identity, graceful degradation,
per-host stream forks, and plan splitting.

The load-bearing contract is the same one the fault-free cluster tests
pin: serial in-process and process-per-host execution share one cache
key, so a faulted scenario must produce the byte-identical RunResult
dict in both modes — fault effects included.
"""

import json

import pytest

from repro.api import Scenario, run
from repro.core.host import HostSpec
from repro.faults import FaultSpecError, split_plan
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.sim.rand import RandomStreams


def _scenario(faults, *, protocol="tcp", **overrides):
    fields = dict(
        mode="cluster",
        hosts=[{"name": "h0", "vm_count": 2, "ports": 2},
               {"name": "h1", "vm_count": 2, "ports": 2}],
        flows=[{"src_host": "h0", "dst_host": "h1",
                "src_vm": 0, "dst_vm": 0, "protocol": protocol},
               {"src_host": "h1", "dst_host": "h0",
                "src_vm": 1, "dst_vm": 1, "protocol": protocol}],
        fabric={"latency_s": 2e-5},
        warmup=0.05, duration=0.05, faults=faults)
    fields.update(overrides)
    return Scenario(**fields)


FAULT_PLANS = {
    "uplink_flap": [{"kind": "uplink_down", "at": 0.06, "duration": 0.02,
                     "host": "h0", "port": 0}],
    "host_crash": [{"kind": "host_crash", "at": 0.07, "host": "h1"}],
    "host_pause": [{"kind": "host_pause", "at": 0.06, "duration": 0.02,
                    "host": "h0"}],
    "partition": [{"kind": "fabric_partition", "at": 0.06,
                   "duration": 0.02, "groups": [["h0"], ["h1"]]}],
    "degrade": [{"kind": "uplink_degrade", "at": 0.06, "duration": 0.03,
                 "host": "h1", "rate_factor": 40.0,
                 "latency_factor": 4.0}],
    "mailbox_on_host": [{"kind": "mailbox_loss", "at": 0.01,
                         "duration": 0.05, "host": "h0",
                         "probability": 1.0}],
}


class TestByteIdentity:
    @pytest.mark.parametrize("name", sorted(FAULT_PLANS))
    def test_serial_and_process_modes_agree_under_faults(self, name):
        scenario = _scenario(FAULT_PLANS[name])
        serial = run(scenario)
        parallel = run(scenario, parallel_hosts=True)
        assert (json.dumps(serial.to_dict(), sort_keys=True)
                == json.dumps(parallel.to_dict(), sort_keys=True))
        assert "faults" in serial.extras


class TestGracefulDegradation:
    def test_tcp_flows_survive_a_transient_uplink_flap(self):
        # Port 0's cable drops for 20 ms mid-measurement.  The bond
        # fails over to the standby and back; TCP retransmits cover the
        # miimon detection gap, so the flap costs failovers, not loss.
        result = run(_scenario(FAULT_PLANS["uplink_flap"]))
        faults = result.extras["faults"]
        assert faults["uplink_failovers"] >= 2  # down -> standby -> back
        assert result.loss_rate < 0.02
        assert result.throughput_bps > 700e6

    def test_udp_on_a_single_port_host_pays_for_the_flap_in_drops(self):
        # With one port there is no standby to fail over to: outbound
        # UDP drops at the bond, inbound drops at the ToR as
        # unreachable — both counted, neither raised.
        result = run(_scenario(
            FAULT_PLANS["uplink_flap"], protocol="udp",
            hosts=[{"name": "h0", "vm_count": 2, "ports": 1},
                   {"name": "h1", "vm_count": 2, "ports": 1}]))
        faults = result.extras["faults"]
        assert faults["uplink_tx_dropped"] > 0
        assert faults["fabric_dropped_unreachable"] > 0
        assert result.loss_rate > 0.0

    def test_host_crash_drains_traffic_instead_of_raising(self):
        result = run(_scenario(FAULT_PLANS["host_crash"]))
        faults = result.extras["faults"]
        assert faults["hosts_crashed"] == 1
        assert faults["fabric_drained"] > 0
        # Half the rig died a third of the way through measurement;
        # the run still completes and accounts for the silence as loss.
        assert 0.1 < result.loss_rate < 0.6

    def test_host_pause_is_a_crash_that_ends(self):
        result = run(_scenario(FAULT_PLANS["host_pause"]))
        faults = result.extras["faults"]
        assert faults["hosts_crashed"] == 0
        assert faults["fabric_drained"] > 0

    def test_partition_surfaces_as_counters_not_exceptions(self):
        result = run(_scenario(FAULT_PLANS["partition"]))
        faults = result.extras["faults"]
        assert faults["fabric_dropped_partition"] > 0
        fabric = result.extras["cluster"]["fabric"]
        assert fabric["dropped"] >= faults["fabric_dropped_partition"]
        assert result.loss_rate > 0.0

    def test_degrade_slows_without_silencing(self):
        baseline = run(_scenario(None, protocol="udp"))
        degraded = run(_scenario(FAULT_PLANS["degrade"], protocol="udp"))
        assert degraded.extras["faults"]["fabric_drained"] == 0
        assert degraded.throughput_bps < baseline.throughput_bps
        assert degraded.latency_p99 > baseline.latency_p99

    def test_fault_free_cluster_has_no_faults_extras(self):
        result = run(_scenario(None))
        assert "faults" not in result.extras
        fabric = result.extras["cluster"]["fabric"]
        # The fault counters stay out of the fabric dict too, so the
        # result document is byte-identical to the pre-fault-layer one.
        assert "drained" not in fabric


class TestPerHostStreamFork:
    def test_host_fault_stream_is_namespaced_by_host_name(self):
        # Pinned: the injector's stream fork is faults/<host-name>, so
        # two hosts running the same plan draw independent sequences.
        from repro.cluster.runner import InProcessHost
        from repro.core.costs import CostModel
        spec = HostSpec.from_dict({"name": "h7", "vm_count": 1,
                                   "ports": 1}, 0)
        host = InProcessHost(spec, 0, costs=CostModel(), base_seed=1,
                             audit=False, telemetry=False,
                             faults=[{"kind": "mailbox_loss", "at": 0.01,
                                      "duration": 0.05,
                                      "probability": 0.5}])
        assert host.host.bed.config.fault_stream == "faults/h7"

    def test_sibling_host_forks_draw_distinct_sequences(self):
        root = RandomStreams(seed=42)
        h0 = root.fork("faults/h0").get("faults")
        h1 = root.fork("faults/h1").get("faults")
        assert [h0.random() for _ in range(8)] \
            != [h1.random() for _ in range(8)]

    def test_same_fork_replays_identically(self):
        a = RandomStreams(seed=42).fork("faults/h0").get("faults")
        b = RandomStreams(seed=42).fork("faults/h0").get("faults")
        assert [a.random() for _ in range(8)] \
            == [b.random() for _ in range(8)]


class TestScopeBoundaries:
    def test_injector_rejects_cluster_scope_kinds(self):
        import types
        plan = FaultPlan.from_specs([{"kind": "host_crash", "at": 1.0,
                                      "host": "h0"}])
        injector = FaultInjector(plan, RandomStreams(0))
        with pytest.raises(ValueError, match="cluster-scope"):
            injector.install(types.SimpleNamespace(sim=None))

    def test_single_host_run_rejects_cluster_kinds(self):
        with pytest.raises(ValueError, match="cluster"):
            Scenario(mode="sriov", faults=[
                {"kind": "host_crash", "at": 1.0, "host": "h0"}])

    def test_single_host_run_rejects_host_scoping(self):
        with pytest.raises(ValueError, match="host"):
            Scenario(mode="sriov", faults=[
                {"kind": "link_flap", "at": 1.0, "host": "h0"}])


class TestSplitPlan:
    HOSTS = [HostSpec.from_dict({"name": "h0", "vm_count": 1,
                                 "ports": 2}, 0),
             HostSpec.from_dict({"name": "h1", "vm_count": 1,
                                 "ports": 1}, 1)]

    def test_unknown_host_rejected(self):
        with pytest.raises(FaultSpecError, match="declares"):
            split_plan([{"kind": "host_crash", "at": 1.0,
                         "host": "h9"}], self.HOSTS)

    def test_missing_host_rejected(self):
        # Cluster-scope kinds require host= at the plan level already;
        # a host-local kind riding a cluster plan is caught at split.
        with pytest.raises(FaultSpecError, match="requires 'host'"):
            split_plan([{"kind": "host_pause", "at": 1.0}], self.HOSTS)
        with pytest.raises(FaultSpecError, match="needs host="):
            split_plan([{"kind": "link_flap", "at": 1.0}], self.HOSTS)

    def test_out_of_range_port_rejected(self):
        with pytest.raises(FaultSpecError, match="port"):
            split_plan([{"kind": "uplink_down", "at": 1.0, "host": "h1",
                         "port": 1}], self.HOSTS)

    def test_migration_degrade_rejected(self):
        with pytest.raises(FaultSpecError, match="migration"):
            split_plan([{"kind": "migration_degrade"}], self.HOSTS)

    def test_partition_member_must_be_declared(self):
        with pytest.raises(FaultSpecError, match="h9"):
            split_plan([{"kind": "fabric_partition", "at": 1.0,
                         "groups": [["h0"], ["h9"]]}], self.HOSTS)

    def test_host_key_is_stripped_from_per_host_specs(self):
        plan = split_plan([{"kind": "link_flap", "at": 1.0,
                            "host": "h0"}], self.HOSTS)
        specs = plan.for_host("h0")
        assert len(specs) == 1 and "host" not in specs[0]
        assert plan.for_host("h1") == []

    def test_unreachable_needs_every_cable_down(self):
        # h0 has two ports; dropping only port 0 never makes it
        # fabric-unreachable, dropping both does for the overlap.
        plan = split_plan([{"kind": "uplink_down", "at": 1.0,
                            "duration": 1.0, "host": "h0", "port": 0}],
                          self.HOSTS)
        assert not plan.timeline.unreachable(0, 1.5)
        plan = split_plan(
            [{"kind": "uplink_down", "at": 1.0, "duration": 1.0,
              "host": "h0", "port": 0},
             {"kind": "uplink_down", "at": 1.5, "duration": 1.0,
              "host": "h0", "port": 1}], self.HOSTS)
        assert plan.timeline.unreachable(0, 1.75)
        assert not plan.timeline.unreachable(0, 1.25)
        assert not plan.timeline.unreachable(0, 2.25)
