"""Unit tests for fault-plan validation and normalization."""

import pytest

from repro.faults import (
    FAULT_FIELDS,
    FAULT_KINDS,
    FaultPlan,
    FaultSpecError,
    validate_spec,
)


class TestValidateSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultSpecError, match="unknown fault kind"):
            validate_spec({"kind": "gremlin", "at": 1.0})

    def test_missing_kind_rejected(self):
        with pytest.raises(FaultSpecError, match="unknown fault kind"):
            validate_spec({"at": 1.0})

    def test_non_mapping_rejected(self):
        with pytest.raises(FaultSpecError, match="mapping"):
            validate_spec(["link_flap"])

    def test_unknown_field_rejected(self):
        with pytest.raises(FaultSpecError, match="durration"):
            validate_spec({"kind": "link_flap", "at": 1.0,
                           "durration": 0.5})

    def test_missing_required_field_rejected(self):
        with pytest.raises(FaultSpecError, match="requires 'at'"):
            validate_spec({"kind": "link_flap"})

    def test_defaults_filled_in(self):
        spec = validate_spec({"kind": "link_flap", "at": 2.0})
        assert spec == {"kind": "link_flap", "at": 2.0, "duration": 0.5,
                        "port": 0}

    def test_values_coerced_to_canonical_types(self):
        # JSON from a sweep spec or the CLI may carry ints or strings;
        # two plans with the same meaning must normalize identically.
        a = validate_spec({"kind": "link_flap", "at": 2, "port": "1"})
        b = validate_spec({"kind": "link_flap", "at": 2.0, "port": 1})
        assert a == b
        assert isinstance(a["at"], float) and isinstance(a["port"], int)

    def test_negative_time_rejected(self):
        with pytest.raises(FaultSpecError, match=">= 0"):
            validate_spec({"kind": "link_flap", "at": -1.0})

    def test_zero_duration_rejected(self):
        with pytest.raises(FaultSpecError, match="> 0"):
            validate_spec({"kind": "link_flap", "at": 1.0, "duration": 0})

    def test_probability_bounds(self):
        with pytest.raises(FaultSpecError, match="probability"):
            validate_spec({"kind": "mailbox_loss", "at": 1.0,
                           "probability": 0.0})
        with pytest.raises(FaultSpecError, match="probability"):
            validate_spec({"kind": "mailbox_loss", "at": 1.0,
                           "probability": 1.5})

    def test_vf_selector_none_means_every_vf(self):
        spec = validate_spec({"kind": "mailbox_loss", "at": 1.0})
        assert spec["vf"] is None
        with pytest.raises(FaultSpecError, match="VF index"):
            validate_spec({"kind": "mailbox_loss", "at": 1.0, "vf": -2})

    def test_corruption_count_must_be_positive(self):
        with pytest.raises(FaultSpecError, match="count"):
            validate_spec({"kind": "dma_corruption", "at": 1.0,
                           "count": 0})

    def test_degrade_factor_must_be_a_slowdown(self):
        with pytest.raises(FaultSpecError, match="factor"):
            validate_spec({"kind": "migration_degrade", "factor": 0.5})

    def test_every_kind_has_a_field_table(self):
        assert set(FAULT_KINDS) == set(FAULT_FIELDS)


class TestFaultPlan:
    def test_plan_normalizes_each_spec(self):
        plan = FaultPlan.from_specs([{"kind": "link_flap", "at": 1}])
        assert plan.to_list() == [{"kind": "link_flap", "at": 1.0,
                                   "duration": 0.5, "port": 0}]

    def test_empty_plan_is_falsy(self):
        assert not FaultPlan()
        assert len(FaultPlan()) == 0
        assert FaultPlan.from_specs([{"kind": "migration_degrade"}])

    def test_invalid_spec_fails_plan_construction(self):
        with pytest.raises(FaultSpecError):
            FaultPlan.from_specs([{"kind": "link_flap"}])

    def test_degrade_factors_multiply(self):
        plan = FaultPlan.from_specs([
            {"kind": "migration_degrade", "factor": 2.0},
            {"kind": "migration_degrade", "factor": 3.0},
            {"kind": "link_flap", "at": 1.0},
        ])
        assert plan.migration_degrade_factor() == 6.0
        assert FaultPlan().migration_degrade_factor() == 1.0

    def test_scheduled_specs_exclude_migration_degrade(self):
        plan = FaultPlan.from_specs([
            {"kind": "migration_degrade"},
            {"kind": "dma_corruption", "at": 0.5},
        ])
        kinds = [spec["kind"] for spec in plan.scheduled_specs()]
        assert kinds == ["dma_corruption"]

    def test_to_list_returns_copies(self):
        plan = FaultPlan.from_specs([{"kind": "link_flap", "at": 1.0}])
        plan.to_list()[0]["at"] = 99.0
        assert plan.to_list()[0]["at"] == 1.0
