"""Unit tests for fault-plan validation and normalization."""

import pytest

from repro.faults import (
    FAULT_FIELDS,
    FAULT_KINDS,
    FaultPlan,
    FaultSpecError,
    validate_spec,
)


class TestValidateSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultSpecError, match="unknown fault kind"):
            validate_spec({"kind": "gremlin", "at": 1.0})

    def test_missing_kind_rejected(self):
        with pytest.raises(FaultSpecError, match="unknown fault kind"):
            validate_spec({"at": 1.0})

    def test_non_mapping_rejected(self):
        with pytest.raises(FaultSpecError, match="mapping"):
            validate_spec(["link_flap"])

    def test_unknown_field_rejected(self):
        with pytest.raises(FaultSpecError, match="durration"):
            validate_spec({"kind": "link_flap", "at": 1.0,
                           "durration": 0.5})

    def test_missing_required_field_rejected(self):
        with pytest.raises(FaultSpecError, match="requires 'at'"):
            validate_spec({"kind": "link_flap"})

    def test_defaults_filled_in(self):
        spec = validate_spec({"kind": "link_flap", "at": 2.0})
        assert spec == {"kind": "link_flap", "at": 2.0, "duration": 0.5,
                        "port": 0}

    def test_values_coerced_to_canonical_types(self):
        # JSON from a sweep spec or the CLI may carry ints or strings;
        # two plans with the same meaning must normalize identically.
        a = validate_spec({"kind": "link_flap", "at": 2, "port": "1"})
        b = validate_spec({"kind": "link_flap", "at": 2.0, "port": 1})
        assert a == b
        assert isinstance(a["at"], float) and isinstance(a["port"], int)

    def test_negative_time_rejected(self):
        with pytest.raises(FaultSpecError, match=">= 0"):
            validate_spec({"kind": "link_flap", "at": -1.0})

    def test_zero_duration_rejected(self):
        with pytest.raises(FaultSpecError, match="> 0"):
            validate_spec({"kind": "link_flap", "at": 1.0, "duration": 0})

    def test_probability_bounds(self):
        with pytest.raises(FaultSpecError, match="probability"):
            validate_spec({"kind": "mailbox_loss", "at": 1.0,
                           "probability": 0.0})
        with pytest.raises(FaultSpecError, match="probability"):
            validate_spec({"kind": "mailbox_loss", "at": 1.0,
                           "probability": 1.5})

    def test_vf_selector_none_means_every_vf(self):
        spec = validate_spec({"kind": "mailbox_loss", "at": 1.0})
        assert spec["vf"] is None
        with pytest.raises(FaultSpecError, match="VF index"):
            validate_spec({"kind": "mailbox_loss", "at": 1.0, "vf": -2})

    def test_corruption_count_must_be_positive(self):
        with pytest.raises(FaultSpecError, match="count"):
            validate_spec({"kind": "dma_corruption", "at": 1.0,
                           "count": 0})

    def test_degrade_factor_must_be_a_slowdown(self):
        with pytest.raises(FaultSpecError, match="factor"):
            validate_spec({"kind": "migration_degrade", "factor": 0.5})

    def test_every_kind_has_a_field_table(self):
        assert set(FAULT_KINDS) == set(FAULT_FIELDS)

    def test_kind_scopes_partition_the_vocabulary(self):
        from repro.faults import (CLUSTER_FAULT_KINDS,
                                  HOST_LOCAL_FAULT_KINDS)
        assert CLUSTER_FAULT_KINDS & HOST_LOCAL_FAULT_KINDS == set()
        assert (CLUSTER_FAULT_KINDS | HOST_LOCAL_FAULT_KINDS
                | {"migration_degrade"}) == set(FAULT_KINDS)


class TestSpellingHints:
    def test_unknown_kind_suggests_closest_match(self):
        with pytest.raises(FaultSpecError,
                           match=r"did you mean 'uplink_down'\?"):
            validate_spec({"kind": "uplink_donw", "at": 1.0})

    def test_unknown_field_suggests_closest_match(self):
        with pytest.raises(FaultSpecError,
                           match=r"did you mean 'duration'\?"):
            validate_spec({"kind": "link_flap", "at": 1.0,
                           "duratoin": 0.5})

    def test_hopeless_typo_gets_no_hint(self):
        with pytest.raises(FaultSpecError) as exc:
            validate_spec({"kind": "zzzzqqq", "at": 1.0})
        assert "did you mean" not in str(exc.value)


class TestClusterKinds:
    def test_host_crash_requires_host(self):
        with pytest.raises(FaultSpecError, match="requires 'host'"):
            validate_spec({"kind": "host_crash", "at": 1.0})
        spec = validate_spec({"kind": "host_crash", "at": 1.0,
                              "host": "h0"})
        assert spec == {"kind": "host_crash", "at": 1.0, "host": "h0"}

    def test_host_pause_defaults(self):
        spec = validate_spec({"kind": "host_pause", "at": 1.0,
                              "host": "h1"})
        assert spec["duration"] == 0.5 and spec["host"] == "h1"

    def test_uplink_down_duration_none_means_forever(self):
        spec = validate_spec({"kind": "uplink_down", "at": 1.0,
                              "host": "h0"})
        assert spec["duration"] is None and spec["port"] == 0
        with pytest.raises(FaultSpecError, match="> 0"):
            validate_spec({"kind": "uplink_down", "at": 1.0,
                           "host": "h0", "duration": -1.0})

    def test_partition_groups_validated(self):
        spec = validate_spec({"kind": "fabric_partition", "at": 1.0,
                              "groups": [["h1", "h0"], ["h2"]]})
        # groups and members are sorted so equivalent plans normalize
        # to the same canonical JSON (and thus the same cache key).
        assert spec["groups"] == [["h0", "h1"], ["h2"]]
        with pytest.raises(FaultSpecError, match="two"):
            validate_spec({"kind": "fabric_partition", "at": 1.0,
                           "groups": [["h0", "h1"]]})
        with pytest.raises(FaultSpecError, match="more than one group"):
            validate_spec({"kind": "fabric_partition", "at": 1.0,
                           "groups": [["h0"], ["h0", "h1"]]})

    def test_degrade_factors_bounded(self):
        spec = validate_spec({"kind": "uplink_degrade", "at": 1.0,
                              "host": "h0"})
        assert spec["rate_factor"] == 2.0
        assert spec["latency_factor"] == 1.0
        with pytest.raises(FaultSpecError, match="factor"):
            validate_spec({"kind": "uplink_degrade", "at": 1.0,
                           "host": "h0", "rate_factor": 0.5})

    def test_host_none_is_omitted_from_canonical_form(self):
        # The cache-key guarantee: a single-host plan written before the
        # cluster fault layer existed must normalize byte-identically.
        spec = validate_spec({"kind": "link_flap", "at": 2.0,
                              "host": None})
        assert "host" not in spec
        assert spec == {"kind": "link_flap", "at": 2.0, "duration": 0.5,
                        "port": 0}

    def test_host_scoping_accepted_on_local_kinds(self):
        spec = validate_spec({"kind": "mailbox_loss", "at": 1.0,
                              "host": "h2"})
        assert spec["host"] == "h2"
        with pytest.raises(FaultSpecError, match="host"):
            validate_spec({"kind": "link_flap", "at": 1.0, "host": ""})

    def test_migration_degrade_takes_no_host(self):
        with pytest.raises(FaultSpecError, match="host"):
            validate_spec({"kind": "migration_degrade", "host": "h0"})


class TestFaultPlan:
    def test_plan_normalizes_each_spec(self):
        plan = FaultPlan.from_specs([{"kind": "link_flap", "at": 1}])
        assert plan.to_list() == [{"kind": "link_flap", "at": 1.0,
                                   "duration": 0.5, "port": 0}]

    def test_empty_plan_is_falsy(self):
        assert not FaultPlan()
        assert len(FaultPlan()) == 0
        assert FaultPlan.from_specs([{"kind": "migration_degrade"}])

    def test_invalid_spec_fails_plan_construction(self):
        with pytest.raises(FaultSpecError):
            FaultPlan.from_specs([{"kind": "link_flap"}])

    def test_degrade_factors_multiply(self):
        plan = FaultPlan.from_specs([
            {"kind": "migration_degrade", "factor": 2.0},
            {"kind": "migration_degrade", "factor": 3.0},
            {"kind": "link_flap", "at": 1.0},
        ])
        assert plan.migration_degrade_factor() == 6.0
        assert FaultPlan().migration_degrade_factor() == 1.0

    def test_scheduled_specs_exclude_migration_degrade(self):
        plan = FaultPlan.from_specs([
            {"kind": "migration_degrade"},
            {"kind": "dma_corruption", "at": 0.5},
        ])
        kinds = [spec["kind"] for spec in plan.scheduled_specs()]
        assert kinds == ["dma_corruption"]

    def test_to_list_returns_copies(self):
        plan = FaultPlan.from_specs([{"kind": "link_flap", "at": 1.0}])
        plan.to_list()[0]["at"] = 99.0
        assert plan.to_list()[0]["at"] == 1.0
