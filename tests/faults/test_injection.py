"""End-to-end fault injection through the Scenario API.

The ISSUE-3 acceptance scenario lives here: a DNIS migration with an
injected VF link flap must complete with recorded failovers and live
fault counters, and the same scenario with no faults must not even
build an injector.
"""

import pytest

from repro.api import Scenario, run
from repro.core.testbed import Testbed, TestbedConfig
from repro.faults import FaultInjector, FaultPlan
from repro.sim.rand import RandomStreams

FLAP = {"kind": "link_flap", "at": 0.2, "duration": 0.3, "port": 0}


def _small_sriov(**kw):
    return Scenario(mode="sriov", vm_count=2, ports=2,
                    warmup=0.2, duration=0.1, **kw)


class TestMigrationUnderLinkFlap:
    @pytest.fixture(scope="class")
    def flap_result(self):
        return run(Scenario(mode="migrate", variant="dnis", start_at=0.5,
                            faults=[FLAP]), telemetry=True)

    def test_run_completes_with_failovers(self, flap_result):
        failovers = flap_result.extras["migration"]["failovers"]
        assert len(failovers) >= 1
        # The flap itself: away from the VF at exactly t=0.2...
        assert [0.2, "vf0", None] in failovers
        # ...degrading to the PV standby rather than crashing...
        assert [0.2, None, "eth0"] in failovers
        # ...and back to the preferred VF when carrier returns.
        assert [0.5, "eth0", "vf0"] in failovers

    def test_fault_counters_in_extras(self, flap_result):
        counters = flap_result.extras["faults"]
        assert counters["injected"] == 1
        assert counters["link_flaps"] == 1

    def test_fault_gauges_in_metrics_document(self, flap_result):
        doc = flap_result.telemetry.metrics_document(0.0)
        assert doc["metrics"]["faults.link_flaps"]["value"] == 1
        assert doc["metrics"]["faults.injected"]["value"] == 1

    def test_migration_still_reports_a_timeline(self, flap_result):
        assert flap_result.extras["migration"]["downtime"] > 0
        assert flap_result.extras["timeline"]["series"]["rx_bytes"]["times"]


class TestMailboxLossUnderFlap:
    def test_lost_doorbells_are_retried(self):
        # The flap at t=0.21 makes the PF broadcast link_change over
        # every VF mailbox while the loss window [0.2, 0.22) is armed:
        # the doorbells drop, the PF-side retrier re-rings them past
        # the window's end, and the run completes.
        result = run(Scenario(
            mode="migrate", variant="dnis", start_at=0.5,
            faults=[{"kind": "link_flap", "at": 0.21, "duration": 0.1,
                     "port": 0},
                    {"kind": "mailbox_loss", "at": 0.2, "duration": 0.02,
                     "port": 0}]))
        counters = result.extras["faults"]
        assert counters["mailbox_doorbells_dropped"] >= 1
        assert counters["mailbox_retries"] >= 1
        assert counters["mailbox_abandoned"] == 0
        assert result.extras["migration"]["downtime"] > 0


class TestDmaAndInterruptFaults:
    @pytest.fixture(scope="class")
    def faulted(self):
        return run(_small_sriov(faults=[
            {"kind": "dma_corruption", "at": 0.05, "count": 3, "port": 0},
            {"kind": "interrupt_delay", "at": 0.1, "duration": 0.05,
             "delay": 50e-6},
        ]))

    def test_corrupted_frames_are_dropped_and_counted(self, faulted):
        counters = faulted.extras["faults"]
        assert counters["dma_corrupted"] == 3
        assert counters["injected"] == 2

    def test_delayed_interrupts_are_counted(self, faulted):
        assert faulted.extras["faults"]["interrupts_delayed"] > 0

    def test_faulted_run_is_deterministic(self, faulted):
        again = run(_small_sriov(faults=[
            {"kind": "dma_corruption", "at": 0.05, "count": 3, "port": 0},
            {"kind": "interrupt_delay", "at": 0.1, "duration": 0.05,
             "delay": 50e-6},
        ]))
        assert again.to_dict() == faulted.to_dict()


class TestFaultFreeRuns:
    def test_no_faults_means_no_injector_and_no_extras_key(self):
        result = run(_small_sriov())
        assert "faults" not in result.extras

    def test_degrade_factor_slows_the_migration(self):
        base = run(Scenario(mode="migrate", variant="pv", start_at=0.5))
        slow = run(Scenario(mode="migrate", variant="pv", start_at=0.5,
                            faults=[{"kind": "migration_degrade",
                                     "factor": 4.0}]))
        assert (slow.extras["migration"]["downtime"]
                > base.extras["migration"]["downtime"])
        assert slow.extras["faults"]["migration_link_factor"] == 4.0


class TestInjectorWiring:
    def test_double_install_rejected(self):
        bed = Testbed(TestbedConfig(ports=1, vfs_per_port=1))
        injector = FaultInjector(
            FaultPlan.from_specs([{"kind": "link_flap", "at": 0.1}]),
            RandomStreams(1).fork("faults"))
        injector.install(bed)
        with pytest.raises(RuntimeError, match="already installed"):
            injector.install(bed)

    def test_port_out_of_range_fails_at_build_time(self):
        with pytest.raises(ValueError, match="port 5"):
            Testbed(TestbedConfig(
                ports=1, vfs_per_port=1,
                faults=[{"kind": "link_flap", "at": 0.1, "port": 5}]))

    def test_vf_out_of_range_fails_at_build_time(self):
        with pytest.raises(ValueError, match="VF 9"):
            Testbed(TestbedConfig(
                ports=1, vfs_per_port=1,
                faults=[{"kind": "mailbox_loss", "at": 0.1, "vf": 9}]))
