"""The seeded fault fuzzer: deterministic generation, valid plans, and
a clean small campaign under the auditor."""

import pytest

from repro.faults.fuzz import generate_fuzz_scenarios, violation_outcomes


class TestGeneration:
    def test_same_count_and_seed_reproduce_byte_identically(self):
        a = generate_fuzz_scenarios(12, 7)
        b = generate_fuzz_scenarios(12, 7)
        assert [s.to_dict() for s in a] == [s.to_dict() for s in b]

    def test_different_seeds_differ(self):
        a = generate_fuzz_scenarios(6, 1)
        b = generate_fuzz_scenarios(6, 2)
        assert [s.to_dict() for s in a] != [s.to_dict() for s in b]

    def test_mixes_single_host_and_cluster(self):
        modes = {s.mode for s in generate_fuzz_scenarios(25, 42)}
        assert modes == {"sriov", "cluster"}

    def test_every_scenario_carries_a_valid_fault_plan(self):
        # Scenario.__init__ validates faults (and cluster host refs);
        # surviving construction for a big batch is the property.
        scenarios = generate_fuzz_scenarios(40, 3)
        assert all(s.faults for s in scenarios)

    def test_count_must_be_positive(self):
        with pytest.raises(ValueError, match=">= 1"):
            generate_fuzz_scenarios(0, 42)

    def test_prefix_stability_is_not_promised_but_keys_are_unique(self):
        scenarios = generate_fuzz_scenarios(20, 42)
        from repro.sweep.cache import job_key
        keys = {job_key(s.to_dict(), {}) for s in scenarios}
        assert len(keys) == len(scenarios)


class TestFuzzCampaign:
    def test_small_fuzz_run_is_violation_free(self):
        from repro.sweep.runner import run_sweep
        scenarios = generate_fuzz_scenarios(4, 42)
        outcomes, stats = run_sweep(scenarios, jobs=2, cache=None,
                                    audit=True)
        assert stats.failures == 0
        assert violation_outcomes(outcomes) == []
        assert all(o.result is not None for o in outcomes)


class TestViolationFilter:
    def test_filters_on_invariant_violation_errors(self):
        class Task:
            def __init__(self, error):
                self.error = error

        class Outcome:
            def __init__(self, task):
                self.task = task

        outcomes = [Outcome(None), Outcome(Task(None)),
                    Outcome(Task("TimeoutError: 300s")),
                    Outcome(Task("InvariantViolation('fabric frame "
                                 "conservation broke')"))]
        assert violation_outcomes(outcomes) == [outcomes[-1]]
