"""Tests for the runtime invariant auditor."""
