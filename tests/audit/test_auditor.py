"""The invariant auditor: clean runs pass, seeded corruption is caught.

Every check audits an *exact* identity, so these tests work by
deliberately breaking one — leaking pool accounting, double-releasing
a packet, flipping a descriptor done bit, latching a reserved LAPIC
vector — and asserting the auditor names the right law, counts the
violation, and writes a repro dump.

The other half of the contract is *observability only*: an audited
fault-free run must be byte-identical to an unaudited one.
"""

import json

import pytest

from repro.api import Scenario, run
from repro.audit import (DUMP_SCHEMA, InvariantAuditor, InvariantViolation,
                         default_dump_dir)
from repro.core import Testbed, TestbedConfig
from repro.net.packet import Packet


def _bed(tmp_path, **config):
    """A small audited testbed whose dumps land under tmp_path."""
    bed = Testbed(TestbedConfig(ports=1, **config))
    bed.auditor.dump_dir = tmp_path / "dumps"
    return bed


class TestCleanRuns:
    def test_fresh_testbed_passes_every_check(self, tmp_path):
        bed = _bed(tmp_path)
        bed.add_sriov_guest()
        checks = bed.auditor.audit()
        assert checks == 7
        assert bed.auditor.audits == 1
        assert bed.auditor.violations == 0

    def test_audited_run_is_byte_identical_to_unaudited(self):
        scenario = Scenario(mode="sriov", vm_count=2, warmup=0.05,
                            duration=0.05)
        audited = run(scenario, audit=True).to_dict()
        unaudited = run(scenario, audit=False).to_dict()
        assert audited == unaudited

    def test_audited_vmdq_run_is_byte_identical_too(self):
        scenario = Scenario(mode="vmdq", vm_count=2, kind="pvm",
                            warmup=0.05, duration=0.05)
        assert (run(scenario, audit=True).to_dict()
                == run(scenario, audit=False).to_dict())

    def test_periodic_audit_fires_through_the_event_loop(self, tmp_path):
        bed = _bed(tmp_path, audit_interval=0.1)
        bed.add_sriov_guest()
        bed.sim.run(until=1.0)
        assert bed.auditor.audits >= 5
        assert bed.auditor.violations == 0

    def test_audit_can_be_disabled(self):
        bed = Testbed(TestbedConfig(ports=1, audit=False))
        assert bed.auditor is None

    def test_interval_must_be_positive(self, tmp_path):
        bed = _bed(tmp_path)
        with pytest.raises(ValueError):
            bed.auditor.install(0.0)


class TestSeededViolations:
    def test_leaked_pool_accounting_is_caught(self, tmp_path):
        bed = _bed(tmp_path)
        bed.packet_pool.acquired += 1  # a packet the pool never minted
        with pytest.raises(InvariantViolation) as excinfo:
            bed.auditor.audit()
        assert excinfo.value.check == "packet-pool"
        assert bed.auditor.violations == 1

    def test_double_released_packet_is_caught(self, tmp_path):
        bed = _bed(tmp_path)
        packet = Packet.__new__(Packet)
        packet.seq = 0
        # The same object pooled twice: two future acquires would share
        # one live packet.
        bed.packet_pool._free.extend([packet, packet])
        bed.packet_pool._seq = 2
        bed.packet_pool.acquired = 2
        with pytest.raises(InvariantViolation) as excinfo:
            bed.auditor.audit()
        assert excinfo.value.check == "packet-pool"
        assert "twice" in str(excinfo.value)

    def test_flipped_descriptor_done_bit_is_caught(self, tmp_path):
        bed = _bed(tmp_path)
        guest = bed.add_sriov_guest()
        # A done writeback outside the [clean, head) completion window
        # claims ownership the device never granted.
        guest.vf.rx_ring.slots[0].done = True
        with pytest.raises(InvariantViolation) as excinfo:
            bed.auditor.audit()
        assert excinfo.value.check == "descriptor-ring"

    def test_reserved_lapic_vector_is_caught(self, tmp_path):
        bed = _bed(tmp_path)
        guest = bed.add_sriov_guest()
        guest.domain.lapic._irr |= 1 << 5  # architecture-reserved
        with pytest.raises(InvariantViolation) as excinfo:
            bed.auditor.audit()
        assert excinfo.value.check == "lapic"

    def test_event_queue_ledger_mismatch_is_caught(self, tmp_path):
        bed = _bed(tmp_path)
        bed.sim._live += 1  # an event the queues don't hold
        with pytest.raises(InvariantViolation) as excinfo:
            bed.auditor.audit()
        assert excinfo.value.check == "event-queue"

    def test_violations_accumulate(self, tmp_path):
        bed = _bed(tmp_path)
        bed.packet_pool.acquired += 1
        for _ in range(2):
            with pytest.raises(InvariantViolation):
                bed.auditor.audit()
        assert bed.auditor.violations == 2
        assert bed.auditor.audits == 0  # no pass ever completed


class TestReproDump:
    def test_violation_writes_a_repro_dump(self, tmp_path):
        bed = _bed(tmp_path, seed=1234)
        bed.auditor.context = {"scenario": {"mode": "sriov"},
                               "seed": 1234}
        bed.packet_pool.acquired += 1
        with pytest.raises(InvariantViolation) as excinfo:
            bed.auditor.audit()
        violation = excinfo.value
        assert violation.dump_path is not None
        assert violation.dump_path in str(violation)
        document = json.loads(open(violation.dump_path).read())
        assert document["schema"] == DUMP_SCHEMA
        assert document["check"] == "packet-pool"
        assert document["seed"] == 1234
        assert document["sim_time"] == violation.sim_time
        assert document["context"]["scenario"] == {"mode": "sriov"}
        assert document["details"]

    def test_colliding_dump_names_get_a_counter_suffix(self, tmp_path):
        bed = _bed(tmp_path)
        bed.packet_pool.acquired += 1
        paths = set()
        for _ in range(2):
            with pytest.raises(InvariantViolation) as excinfo:
                bed.auditor.audit()
            paths.add(excinfo.value.dump_path)
        assert len(paths) == 2  # second dump did not clobber the first

    def test_unwritable_dump_dir_still_raises_the_violation(self,
                                                            tmp_path):
        bed = _bed(tmp_path)
        blocker = tmp_path / "blocked"
        blocker.write_text("a file where the dump dir should go")
        bed.auditor.dump_dir = blocker / "nested"
        bed.packet_pool.acquired += 1
        with pytest.raises(InvariantViolation) as excinfo:
            bed.auditor.audit()
        assert excinfo.value.dump_path is None

    def test_default_dump_dir_honours_the_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_AUDIT_DIR", "/tmp/elsewhere")
        assert default_dump_dir() == "/tmp/elsewhere"
        monkeypatch.delenv("REPRO_AUDIT_DIR")
        assert default_dump_dir() == ".repro-audit"


class TestSweepIntegration:
    def test_violation_inside_a_job_is_a_failed_task_not_a_crash(
            self, tmp_path, monkeypatch):
        # An InvariantViolation raised inside a pool worker is a
        # deterministic failure: the supervisor reports it (no retry)
        # and the campaign carries on.
        from repro.sweep import ResultCache, run_sweep
        from repro.sweep import jobs as jobs_module

        def poisoned(payload):
            raise InvariantViolation("packet-pool", "seeded", sim_time=0.0)

        monkeypatch.setattr(jobs_module, "execute_payload", poisoned)
        monkeypatch.setattr("repro.sweep.runner.execute_payload", poisoned)
        scenarios = [Scenario(mode="sriov", warmup=0.05, duration=0.05)]
        outcomes, stats = run_sweep(scenarios,
                                    cache=ResultCache(tmp_path / "cache"))
        assert stats.failed == 1
        assert outcomes[0].result is None
        assert "InvariantViolation" in outcomes[0].task.error
