"""End-to-end tests for DNIS and the migration manager."""

import pytest

from repro.core import Testbed, TestbedConfig
from repro.migration import DnisGuest, MigrationManager, PrecopyConfig
from repro.net import Packet
from repro.net.mac import MacAddress
from repro.vmm import DomainKind

REMOTE = MacAddress.parse("02:00:00:00:99:99")

FAST_CONFIG = PrecopyConfig(memory_bytes=64 * 1024 * 1024, dirty_ratio=0.25,
                            min_round_bytes=8 * 1024 * 1024,
                            restore_overhead=0.3)


def build_dnis():
    bed = Testbed(TestbedConfig(ports=1))
    sriov = bed.add_sriov_guest(DomainKind.HVM)
    netfront_guest_app = sriov.app  # shared app: same service either path
    from repro.drivers.netfront import Netfront
    netfront = Netfront(bed.platform, sriov.domain, app=sriov.app)
    bed.netback.connect(netfront)
    guest = DnisGuest(bed.platform, sriov.domain, sriov.driver, netfront,
                      bed.hotplug)
    manager = MigrationManager(bed.platform, bed.hotplug, FAST_CONFIG)
    return bed, sriov, guest, manager


def feed(bed, guest, n=5):
    burst = [Packet(src=REMOTE, dst=guest.vf_driver.vf.mac) for _ in range(n)]
    guest.wire_sink(burst)


class TestDnisGuest:
    def test_vf_active_by_default(self):
        bed, sriov, guest, _ = build_dnis()
        assert guest.active_path == "vf0"
        feed(bed, guest)
        bed.sim.run(until=0.01)
        assert sriov.app.rx_packets == 5

    def test_hot_removal_switches_to_pv(self):
        bed, sriov, guest, _ = build_dnis()
        bed.hotplug.request_removal(sriov.domain, "vf")
        bed.sim.run(until=1.0)
        assert guest.active_path == "eth0"
        assert not guest.vf_driver.running
        feed(bed, guest)
        bed.sim.run(until=1.1)
        assert sriov.app.rx_packets == 5  # served via netback now

    def test_switch_window_drops_packets(self):
        bed, sriov, guest, _ = build_dnis()
        bed.hotplug.request_removal(sriov.domain, "vf")
        bed.sim.run(until=0.3)  # eject done at 0.2; outage until 0.8
        feed(bed, guest, 7)
        assert guest.dropped_at_switch == 7
        bed.sim.run(until=1.0)
        feed(bed, guest, 3)
        assert guest.dropped_at_switch == 7  # window over

    def test_hot_add_restores_vf_path(self):
        bed, sriov, guest, _ = build_dnis()
        bed.hotplug.request_removal(sriov.domain, "vf")
        bed.sim.run(until=1.0)
        bed.hotplug.hot_add(sriov.domain, "vf")
        bed.sim.run(until=1.5)
        assert guest.active_path == "vf0"
        assert guest.vf_driver.running


class TestMigrationManager:
    def test_pv_migration_timeline(self):
        bed = Testbed(TestbedConfig(ports=1))
        pv = bed.add_pv_guest(DomainKind.HVM)
        manager = MigrationManager(bed.platform, bed.hotplug, FAST_CONFIG)
        process, report = manager.migrate_pv(pv.netfront, start_at=1.0)
        bed.sim.run(until=20.0)
        assert report.started_at == pytest.approx(1.0)
        assert report.blackout_start == pytest.approx(
            1.0 + manager.model.precopy_time, abs=0.01)
        assert report.downtime == pytest.approx(manager.model.downtime,
                                                abs=0.01)
        assert report.completed_at == pytest.approx(
            1.0 + manager.model.total_time, abs=0.01)
        assert not process.alive

    def test_carrier_off_during_blackout_only(self):
        bed = Testbed(TestbedConfig(ports=1))
        pv = bed.add_pv_guest(DomainKind.HVM)
        manager = MigrationManager(bed.platform, bed.hotplug, FAST_CONFIG)
        _, report = manager.migrate_pv(pv.netfront, start_at=0.5)
        blackout_start = 0.5 + manager.model.precopy_time
        bed.sim.run(until=blackout_start + 0.01)
        assert not pv.netfront.carrier_on
        bed.sim.run(until=30.0)
        assert pv.netfront.carrier_on

    def test_dom0_charged_for_copy(self):
        bed = Testbed(TestbedConfig(ports=1))
        pv = bed.add_pv_guest(DomainKind.HVM)
        manager = MigrationManager(bed.platform, bed.hotplug, FAST_CONFIG)
        bed.platform.start_measurement()
        manager.migrate_pv(pv.netfront, start_at=0.0)
        bed.sim.run(until=30.0)
        assert bed.platform.machine.cycles("dom0") == pytest.approx(
            manager.model.cpu_cycles(), rel=0.01)

    def test_dnis_migration_full_choreography(self):
        bed, sriov, guest, manager = build_dnis()
        process, report = manager.migrate_dnis(guest, start_at=1.0)
        bed.sim.run(until=30.0)
        events = [name for _, name in report.events]
        assert events[0] == "migration-start"
        assert "interface-switched-to-pv" in events
        assert "stop-and-copy" in events
        assert events[-1] == "vf-restored-at-target"
        # Ordering: switch completes before pre-copy; VF restored after.
        assert report.switch_completed_at < report.blackout_start
        assert report.completed_at > report.blackout_end
        # The guest ends up back on the VF path.
        assert guest.active_path == "vf0"
        assert guest.vf_driver.running

    def test_dnis_switch_takes_eject_plus_outage(self):
        bed, sriov, guest, manager = build_dnis()
        _, report = manager.migrate_dnis(guest, start_at=1.0)
        bed.sim.run(until=30.0)
        expected = 1.0 + bed.hotplug.eject_latency + guest.switch_outage
        assert report.switch_completed_at == pytest.approx(expected, abs=0.01)
