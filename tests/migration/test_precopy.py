"""Unit tests for the pre-copy migration model."""

import pytest

from repro.migration import PrecopyConfig, PrecopyModel


def test_round_bytes_geometric_decay():
    model = PrecopyModel(PrecopyConfig(memory_bytes=100 * 1024 * 1024,
                                       dirty_ratio=0.5,
                                       min_round_bytes=10 * 1024 * 1024))
    rounds = model.round_bytes()
    assert rounds[0] == 100 * 1024 * 1024
    for previous, current in zip(rounds, rounds[1:]):
        assert current == pytest.approx(previous * 0.5, rel=0.01)


def test_stops_at_min_round_bytes():
    model = PrecopyModel(PrecopyConfig(dirty_ratio=0.3))
    assert model.final_dirty_bytes() < PrecopyConfig().min_round_bytes


def test_max_rounds_bounds_nonconverging_migration():
    config = PrecopyConfig(dirty_ratio=0.99, min_round_bytes=1, max_rounds=5)
    model = PrecopyModel(config)
    assert len(model.round_bytes()) == 5


def test_zero_dirty_ratio_single_round():
    model = PrecopyModel(PrecopyConfig(dirty_ratio=0.0))
    assert len(model.round_bytes()) == 1
    assert model.final_dirty_bytes() == 0


def test_paper_schedule_default_config():
    """Defaults reproduce Fig. 20's schedule: ~6 s of live pre-copy and
    ~1.4 s of blackout, so a 4.5 s start blacks out at ~10.4-11.8 s."""
    model = PrecopyModel(PrecopyConfig())
    assert model.precopy_time == pytest.approx(5.97, abs=0.3)
    assert model.downtime == pytest.approx(1.41, abs=0.15)
    start = 4.5
    assert start + model.precopy_time == pytest.approx(10.4, abs=0.3)
    assert start + model.total_time == pytest.approx(11.8, abs=0.4)


def test_downtime_includes_restore_overhead():
    config = PrecopyConfig(restore_overhead=2.0, dirty_ratio=0.0)
    model = PrecopyModel(config)
    assert model.downtime == pytest.approx(2.0)


def test_total_bytes_and_cpu():
    config = PrecopyConfig(dirty_ratio=0.0, cpu_cycles_per_byte=2.0)
    model = PrecopyModel(config)
    assert model.total_bytes() == config.memory_bytes
    assert model.cpu_cycles() == config.memory_bytes * 2.0


def test_config_validation():
    with pytest.raises(ValueError):
        PrecopyConfig(memory_bytes=0).validate()
    with pytest.raises(ValueError):
        PrecopyConfig(dirty_ratio=1.0).validate()
    with pytest.raises(ValueError):
        PrecopyConfig(max_rounds=0).validate()
