"""Unit tests for samplers and downtime extraction."""

import pytest

from repro.migration import Sampler, downtime_windows
from repro.sim import Series, Simulator


class TestSampler:
    def test_delta_sampling(self):
        sim = Simulator()
        counter = {"bytes": 0}
        sampler = Sampler(sim, period=0.1)
        sampler.track("rx", lambda: counter["bytes"])
        sampler.start()

        def bump():
            counter["bytes"] += 100

        # Offsets keep bumps strictly inside buckets (two per bucket).
        for i in range(10):
            sim.schedule_at(0.02 + i * 0.05, bump)
        sim.run(until=0.55)
        series = sampler.series("rx")
        # Each 100 ms bucket saw two bumps of 100.
        assert all(v == pytest.approx(200) for v in series.values)

    def test_gauge_sampling(self):
        sim = Simulator()
        level = {"v": 5.0}
        sampler = Sampler(sim, period=0.1)
        sampler.track_gauge("depth", lambda: level["v"])
        sampler.start()
        sim.schedule_at(0.25, lambda: level.__setitem__("v", 9.0))
        sim.run(until=0.45)
        series = sampler.series("depth")
        assert series.values[0] == 5.0
        assert series.values[-1] == 9.0

    def test_stop_halts_sampling(self):
        sim = Simulator()
        sampler = Sampler(sim, period=0.1)
        sampler.track("x", lambda: 0.0)
        sampler.start()
        sim.run(until=0.35)
        sampler.stop()
        count = len(sampler.series("x"))
        sim.run(until=1.0)
        assert len(sampler.series("x")) == count

    def test_period_validated(self):
        with pytest.raises(ValueError):
            Sampler(Simulator(), period=0.0)


class TestDowntimeWindows:
    def make_series(self, values, period=0.1):
        series = Series()
        for i, v in enumerate(values):
            series.record((i + 1) * period, v)
        return series

    def test_single_outage(self):
        series = self.make_series([10, 10, 0, 0, 0, 10, 10])
        [(start, end)] = downtime_windows(series, threshold=1.0)
        assert start == pytest.approx(0.2)
        assert end == pytest.approx(0.5)

    def test_outage_until_end(self):
        series = self.make_series([10, 10, 0, 0])
        [(start, end)] = downtime_windows(series, threshold=1.0)
        assert start == pytest.approx(0.2)
        assert end == pytest.approx(0.4)

    def test_multiple_outages_and_min_duration(self):
        series = self.make_series([10, 0, 10, 0, 0, 0, 10])
        windows = downtime_windows(series, threshold=1.0)
        assert len(windows) == 2
        filtered = downtime_windows(series, threshold=1.0, min_duration=0.25)
        assert len(filtered) == 1

    def test_no_outage(self):
        series = self.make_series([10, 10, 10])
        assert downtime_windows(series, threshold=1.0) == []

    def test_empty_series(self):
        assert downtime_windows(Series(), threshold=1.0) == []
