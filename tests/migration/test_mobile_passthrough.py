"""§4.4's mobile pass-through: the target platform's VF may differ.

"An additional advantage of mobile pass through is that the VF hardware
in the target platform may or may not be identical to that in the
source platform."
"""

import pytest

from repro.core import Testbed, TestbedConfig
from repro.drivers.netfront import Netfront
from repro.migration import DnisGuest, MigrationManager, PrecopyConfig
from repro.net import Packet
from repro.net.mac import MacAddress
from repro.vmm import DomainKind

REMOTE = MacAddress.parse("02:00:00:00:99:99")
FAST = PrecopyConfig(memory_bytes=64 * 1024 * 1024, dirty_ratio=0.2,
                     min_round_bytes=16 * 1024 * 1024, restore_overhead=0.3)


def build():
    """Two ports stand in for source and target platforms."""
    bed = Testbed(TestbedConfig(ports=2))
    sriov = bed.add_sriov_guest(DomainKind.HVM)  # VF on port 0
    netfront = Netfront(bed.platform, sriov.domain, app=sriov.app)
    bed.netback.connect(netfront)
    guest = DnisGuest(bed.platform, sriov.domain, sriov.driver, netfront,
                      bed.hotplug)
    return bed, sriov, guest


def hot_swap_to_target_vf(bed, sriov, guest):
    """Remove the source VF, migrate, hot-add a *different* VF."""
    target_port = bed.ports[1]
    target_vf = target_port.vf(1)  # a VF the guest never touched
    # Prepare the target VF as the IOVM would at the destination.
    bed.pf_drivers[1].set_vf_mac(1, sriov.vf.mac)  # keep the guest's MAC
    bed.platform.iommu.attach(target_vf.pci.rid, sriov.domain.io_page_table)
    bed.hotplug.request_removal(sriov.domain, "vf")
    bed.sim.run(until=bed.sim.now + 1.5)
    bed.hotplug.hot_add(sriov.domain, target_vf)
    bed.sim.run(until=bed.sim.now + 0.5)
    return target_vf


def test_guest_adopts_nonidentical_target_vf():
    bed, sriov, guest = build()
    original_driver = guest.vf_driver
    target_vf = hot_swap_to_target_vf(bed, sriov, guest)
    assert guest.vf_driver is not original_driver
    assert guest.vf_driver.vf is target_vf
    assert guest.vf_driver.running
    assert guest.active_path == "vf0"


def test_traffic_flows_through_target_vf():
    bed, sriov, guest = build()
    target_vf = hot_swap_to_target_vf(bed, sriov, guest)
    before = sriov.app.rx_packets
    # Traffic now arrives at the target platform's port.
    target_vf.port.wire_receive(
        [Packet(src=REMOTE, dst=sriov.vf.mac) for _ in range(5)])
    bed.sim.run(until=bed.sim.now + 0.01)
    assert sriov.app.rx_packets == before + 5
    assert target_vf.rx_packets == 5


def test_application_state_survives_the_swap():
    """Same app object before and after: the swap is below the socket."""
    bed, sriov, guest = build()
    app_before = guest.vf_driver.app
    hot_swap_to_target_vf(bed, sriov, guest)
    assert guest.vf_driver.app is app_before


def test_source_vf_left_quiesced():
    bed, sriov, guest = build()
    source_vf = sriov.vf
    hot_swap_to_target_vf(bed, sriov, guest)
    assert not source_vf.enabled
