"""Unit tests for migration abort."""

import pytest

from repro.core import Testbed, TestbedConfig
from repro.drivers.netfront import Netfront
from repro.migration import DnisGuest, MigrationManager, PrecopyConfig
from repro.vmm import DomainKind

SLOW = PrecopyConfig(memory_bytes=512 * 1024 * 1024, dirty_ratio=0.3)


def build_pv():
    bed = Testbed(TestbedConfig(ports=1))
    pv = bed.add_pv_guest(DomainKind.HVM)
    manager = MigrationManager(bed.platform, bed.hotplug, SLOW)
    process, report = manager.migrate_pv(pv.netfront, start_at=0.5)
    return bed, pv, manager, process, report


def test_abort_during_precopy_keeps_service_up():
    bed, pv, manager, process, report = build_pv()
    bed.sim.run(until=2.0)  # mid pre-copy
    manager.abort(process, report, pv.netfront)
    bed.sim.run(until=3.0)
    assert not process.alive
    assert pv.netfront.carrier_on
    assert ("aborted" in [name for _, name in report.events])
    # The blackout never happened.
    assert report.blackout_start == 0.0


def test_abort_after_commit_point_refused():
    bed, pv, manager, process, report = build_pv()
    blackout_at = 0.5 + manager.model.precopy_time
    bed.sim.run(until=blackout_at + 0.1)
    with pytest.raises(RuntimeError):
        manager.abort(process, report, pv.netfront)
    # Migration proceeds to completion.
    bed.sim.run(until=blackout_at + manager.model.downtime + 1.0)
    assert not process.alive
    assert pv.netfront.carrier_on


def test_abort_completed_migration_refused():
    bed, pv, manager, process, report = build_pv()
    bed.sim.run(until=60.0)
    assert not process.alive
    with pytest.raises(RuntimeError):
        manager.abort(process, report, pv.netfront)


def test_dnis_abort_restores_vf():
    bed = Testbed(TestbedConfig(ports=1))
    sriov = bed.add_sriov_guest(DomainKind.HVM)
    netfront = Netfront(bed.platform, sriov.domain, app=sriov.app)
    bed.netback.connect(netfront)
    guest = DnisGuest(bed.platform, sriov.domain, sriov.driver, netfront,
                      bed.hotplug)
    manager = MigrationManager(bed.platform, bed.hotplug, SLOW)
    process, report = manager.migrate_dnis(guest, start_at=0.5)
    bed.sim.run(until=3.0)  # VF already ejected, pre-copy underway
    assert not guest.vf_driver.running
    manager.abort(process, report, netfront, dnis_guest=guest)
    bed.sim.run(until=4.0)
    # Back on the VF at the source platform.
    assert guest.vf_driver.running
    assert guest.active_path == "vf0"
