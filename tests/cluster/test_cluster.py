"""End-to-end tests for multi-host cluster scenarios.

The load-bearing guarantee here is *byte-identity*: the serial
in-process mode and the process-per-host mode must produce exactly the
same RunResult dict — same floats, bit for bit — because they share one
cache key.
"""

import json

import pytest

from repro.api import Scenario, run
from repro.cluster import run_cluster
from repro.core.host import Host, HostSpec, derive_host_seed


def _scenario(**overrides):
    fields = dict(
        mode="cluster",
        hosts=[{"name": "h0", "vm_count": 2, "ports": 2},
               {"name": "h1", "vm_count": 2, "ports": 2}],
        flows=[{"src_host": "h0", "dst_host": "h1",
                "src_vm": 0, "dst_vm": 0},
               {"src_host": "h1", "dst_host": "h0",
                "src_vm": 1, "dst_vm": 1}],
        fabric={"latency_s": 2e-5},
        warmup=0.05, duration=0.05)
    fields.update(overrides)
    return Scenario(**fields)


class TestClusterRun:
    def test_cross_host_flows_deliver_their_offered_load(self):
        result = run(_scenario())
        # Two 400 Mbps tenant flows, one per direction.
        assert result.throughput_bps == pytest.approx(800e6, rel=0.05)
        assert result.loss_rate == 0.0
        assert result.vm_count == 4
        cluster = result.extras["cluster"]
        assert sorted(cluster["hosts"]) == ["h0", "h1"]
        assert cluster["fabric"]["forwarded"] > 0
        assert cluster["fabric"]["dropped"] == 0
        assert cluster["sync_windows"] > 0
        # Fabric latency shows up end-to-end: one-way delay alone is
        # 20 us, so the mean must sit above it.
        assert result.latency_mean > 2e-5

    def test_serial_and_process_modes_are_byte_identical(self):
        scenario = _scenario()
        serial = run(scenario)
        parallel = run(scenario, parallel_hosts=True)
        assert (json.dumps(serial.to_dict(), sort_keys=True)
                == json.dumps(parallel.to_dict(), sort_keys=True))

    def test_congested_fabric_tail_drops_and_reports_loss(self):
        result = run(_scenario(
            fabric={"uplink_gbps": 0.1, "latency_s": 2e-5,
                    "queue_frames": 4}))
        cluster = result.extras["cluster"]
        assert cluster["fabric"]["dropped"] > 0
        assert result.loss_rate > 0.1
        assert result.throughput_bps < 0.2e9

    def test_telemetry_namespaces_metrics_per_host(self):
        result = run(_scenario(), telemetry=True)
        document = result.telemetry.metrics_document(result.duration)
        prefixes = {name.split(".")[1]
                    for name in document["metrics"]
                    if name.startswith("host.")}
        assert prefixes == {"h0", "h1"}
        assert sorted(document["cycles"]) == ["h0", "h1"]

    def test_telemetry_needs_the_in_process_mode(self):
        with pytest.raises(ValueError, match="serial"):
            run(_scenario(), telemetry=True, parallel_hosts=True)

    def test_run_cluster_rejects_single_host_scenarios(self):
        with pytest.raises(ValueError, match="cluster"):
            run_cluster(Scenario(mode="sriov"))


class TestFig22Artifact:
    def test_fig22_is_byte_identical_across_execution_modes(self):
        # The acceptance bar for process-per-host: the cross-host
        # figure's artifact must not depend on how the hosts ran.
        from repro.sweep.figures import FIGURES, figure_artifact
        labeled = FIGURES["fig22"].scenarios(True)
        artifacts = []
        for parallel in (False, True):
            results = {label: run(scenario, parallel_hosts=parallel)
                       for label, scenario in labeled}
            artifacts.append(json.dumps(
                figure_artifact("fig22", results, True),
                sort_keys=True))
        assert artifacts[0] == artifacts[1]


class TestHostIdentity:
    def test_mac_realms_are_disjoint_across_hosts(self):
        hosts = [Host(HostSpec(name=f"h{i}", vm_count=2), i,
                      audit=False) for i in range(2)]
        tables = [set(host.mac_table().values()) for host in hosts]
        assert not tables[0] & tables[1]
        for index, table in enumerate(tables):
            assert {(mac >> 24) & 0xFF for mac in table} == {index + 1}

    def test_realm_zero_stays_reserved_for_single_host_runs(self):
        # Cluster host 0 must not collide with the historical
        # single-host MAC space (realm byte 0).
        host = Host(HostSpec(name="h0", vm_count=1), 0, audit=False)
        assert all((mac >> 24) & 0xFF == 1
                   for mac in host.mac_table().values())

    def test_host_seeds_derive_from_base_and_name(self):
        assert (derive_host_seed(42, "h0")
                == derive_host_seed(42, "h0"))
        assert derive_host_seed(42, "h0") != derive_host_seed(42, "h1")
        assert derive_host_seed(42, "h0") != derive_host_seed(43, "h0")

    def test_host_index_bounded_by_the_realm_byte(self):
        with pytest.raises(ValueError, match="host"):
            Host(HostSpec(name="big", vm_count=1), 0xFF, audit=False)
