"""Cluster fluid mode: the collapsed datapath across the ToR fabric.

``sim_mode="fluid"`` in cluster mode keeps the single-host contract —
byte-identical results or an exact fallback, never approximation — but
the collapse now spans the lockstep protocol: TX ticks, uplink
serialization, staged egress records and fabric arrivals all replay as
flat arithmetic inside each host's window.  Two run shapes are
deliberately *not* part of the identity check:

* per-host ``events_executed`` (the whole point is fewer events), and
* the coordinator's ``sync_windows`` (collapsed flows surface wider
  barriers because interrupt fires are invisible to ``peek()`` — pure
  synchronization, not results).

Everything else in the RunResult dict must match bit for bit, and the
event identity ``events_executed + collapsed_events == exact
events_executed`` must hold exactly.
"""

import json

from repro.api import Scenario, run
from repro.cluster.process import ProcessHost
from repro.cluster.runner import ClusterCoordinator, InProcessHost
from repro.core.costs import CostModel
from repro.core.host import HostSpec
from repro.net.fabric import FabricSpec, ToRSwitch


def _scenario(sim_mode="exact", **overrides):
    fields = dict(
        mode="cluster",
        hosts=[{"name": "a", "vm_count": 1, "ports": 1},
               {"name": "b", "vm_count": 1, "ports": 1}],
        flows=[{"src_host": "a", "dst_host": "b", "offered_bps": 400e6},
               {"src_host": "b", "dst_host": "a", "offered_bps": 400e6}],
        fabric={"uplink_gbps": 10.0, "latency_s": 2e-5},
        warmup=0.05, duration=0.05, sim_mode=sim_mode)
    fields.update(overrides)
    return Scenario(**fields)


def _normalize(result) -> str:
    payload = result.to_dict()
    for host in payload["extras"]["cluster"]["hosts"].values():
        host.pop("events_executed", None)
    payload["extras"]["cluster"].pop("sync_windows", None)
    return json.dumps(payload, sort_keys=True)


def _total_events(result) -> int:
    hosts = result.extras["cluster"]["hosts"]
    return sum(host["events_executed"] for host in hosts.values())


def _assert_equivalent(expect_collapsed=True, **overrides):
    exact = run(_scenario("exact", **overrides))
    fluid = run(_scenario("fluid", **overrides))
    assert exact.fluid is None
    assert fluid.fluid is not None
    assert _normalize(fluid) == _normalize(exact)
    assert (fluid.fluid["events_executed"]
            + fluid.fluid["collapsed_events"]) == _total_events(exact)
    if expect_collapsed:
        assert fluid.fluid["collapsed_events"] > 0
    else:
        assert fluid.fluid["collapsed_events"] == 0
    return exact, fluid


class TestClusterFluidEquivalence:
    """Fig. 22 shapes: cross-host flows collapse, results match."""

    def test_fig22_bidirectional_collapses_every_event(self):
        _, fluid = _assert_equivalent()
        # Steady bidirectional UDP: both hosts collapse wholesale.
        assert fluid.fluid["flows"] == 2
        assert fluid.fluid["rejections"] == {}
        assert fluid.fluid["events_executed"] == 0

    def test_unidirectional_receiver_host_stays_exact(self):
        # Host b runs no stream of its own, so it has nothing to
        # collapse; its ingress executes exactly while a collapses.
        _, fluid = _assert_equivalent(
            flows=[{"src_host": "a", "dst_host": "b",
                    "offered_bps": 700e6}])
        assert fluid.fluid["flows"] == 1
        assert fluid.fluid["events_executed"] > 0

    def test_near_line_rate_exercises_uplink_queue(self):
        # 950 Mbps into a serialized uplink: the Link queue depth and
        # tail-drop arithmetic must replay identically.
        _assert_equivalent(
            flows=[{"src_host": "a", "dst_host": "b",
                    "offered_bps": 950e6},
                   {"src_host": "b", "dst_host": "a",
                    "offered_bps": 950e6}])

    def test_tcp_flows_collapse(self):
        _assert_equivalent(
            flows=[{"src_host": "a", "dst_host": "b",
                    "offered_bps": 600e6, "protocol": "tcp"},
                   {"src_host": "b", "dst_host": "a",
                    "offered_bps": 600e6, "protocol": "tcp"}])

    def test_oversubscribed_tor_tail_drops_match(self):
        # Two senders converge on one receiver over a 1 Gbps fabric:
        # ToR forwarding, queueing and drops are coordinator-side and
        # must see byte-identical egress streams from collapsed hosts.
        exact, fluid = _assert_equivalent(
            hosts=[{"name": "a", "vm_count": 1, "ports": 1},
                   {"name": "b", "vm_count": 1, "ports": 1},
                   {"name": "c", "vm_count": 1, "ports": 1}],
            flows=[{"src_host": "a", "dst_host": "c",
                    "offered_bps": 900e6},
                   {"src_host": "b", "dst_host": "c",
                    "offered_bps": 900e6}],
            fabric={"uplink_gbps": 1.0, "latency_s": 2e-5,
                    "queue_frames": 64})
        assert exact.extras["cluster"]["fabric"]["dropped"] > 0
        assert fluid.loss_rate == exact.loss_rate


class TestClusterFluidFallbacks:
    def test_shared_port_host_falls_back_wholesale(self):
        # Two VMs on one port share an uplink; per-flow collapse of a
        # shared Link serializer is not modeled, so the whole host
        # stays exact — and still matches byte for byte.
        _, fluid = _assert_equivalent(
            expect_collapsed=True,
            hosts=[{"name": "a", "vm_count": 2, "ports": 1},
                   {"name": "b", "vm_count": 2, "ports": 2}],
            flows=[{"src_host": "a", "dst_host": "b",
                    "src_vm": 0, "dst_vm": 0, "offered_bps": 300e6},
                   {"src_host": "a", "dst_host": "b",
                    "src_vm": 1, "dst_vm": 1, "offered_bps": 200e6},
                   {"src_host": "b", "dst_host": "a",
                    "src_vm": 0, "dst_vm": 0, "offered_bps": 250e6},
                   {"src_host": "b", "dst_host": "a",
                    "src_vm": 1, "dst_vm": 1, "offered_bps": 350e6}])
        assert fluid.fluid["rejections"] == {"port_shared": 2}
        # Host b (one VM per port) still collapses both of its streams.
        assert fluid.fluid["flows"] == 2

    def test_exact_mode_carries_no_fluid_sidecar(self):
        result = run(_scenario("exact"))
        assert result.fluid is None
        for host in result.extras["cluster"]["hosts"].values():
            assert "events_collapsed" not in host
            assert "fluid_rejections" not in host

    def test_extras_keep_the_exact_schema(self):
        # Fluid diagnostics ride the sidecar, never the cluster extras:
        # cached exact results must stay comparable key-for-key.
        exact = run(_scenario("exact"))
        fluid = run(_scenario("fluid"))
        for name, host in fluid.extras["cluster"]["hosts"].items():
            assert set(host) == set(exact.extras["cluster"]["hosts"][name])


class TestClusterFluidProcessMode:
    def test_serial_and_process_fluid_runs_are_byte_identical(self):
        scenario = _scenario("fluid")
        serial = run(scenario)
        parallel = run(scenario, parallel_hosts=True)
        assert (json.dumps(serial.to_dict(), sort_keys=True)
                == json.dumps(parallel.to_dict(), sort_keys=True))
        assert parallel.fluid == serial.fluid


# ----------------------------------------------------------------------
# Fault injection mid-window (driven below the Scenario API: cluster
# scenarios reject ``faults=``, so the test arms the reset directly on
# a host simulator and drives the coordinator by hand).
# ----------------------------------------------------------------------

_FAULT_WARMUP = 0.05
_FAULT_DURATION = 0.1
_FAULT_AT = 0.08  # mid-measurement, far from any window boundary


def _drive_cluster(sim_mode, fault_at=None):
    """run_cluster's core loop, with an optional device reset armed on
    host a's guest before the clock starts."""
    specs = [HostSpec.from_dict(h, i) for i, h in enumerate(
        [{"name": "a", "vm_count": 1, "ports": 1},
         {"name": "b", "vm_count": 1, "ports": 1}])]
    fabric = FabricSpec.from_dict(
        {"uplink_gbps": 10.0, "latency_s": 2e-5})
    costs = CostModel().validate()
    runners = [InProcessHost(spec, i, costs=costs, base_seed=7,
                             audit=True, telemetry=False,
                             sim_mode=sim_mode)
               for i, spec in enumerate(specs)]
    tor = ToRSwitch(fabric, len(runners))
    tables = [runner.mac_table() for runner in runners]
    for index, table in enumerate(tables):
        for mac in table.values():
            tor.learn(mac, index)
    for src, dst in ((0, 1), (1, 0)):
        runners[src].configure_flows([{
            "src_vm": 0, "dst_mac": tables[dst][0],
            "offered_bps": 400e6, "message_bytes": 1500,
            "protocol": "udp", "flow_id": src + 1}])
    target = runners[0].host.bed.sriov_guests[0].driver
    if fault_at is not None:
        runners[0].host.sim.schedule_at(
            fault_at, lambda: target._handle_device_reset(
                {"duration": 0.004}))
    coordinator = ClusterCoordinator(runners, tor, fabric.latency_s)
    coordinator.run(_FAULT_WARMUP)
    tor.reset_counters()
    for runner in runners:
        runner.start_measurement()
    coordinator.run(_FAULT_WARMUP + _FAULT_DURATION)
    results = {spec.name: runner.collect()
               for spec, runner in zip(specs, runners)}
    return results, runners, target


def _normalize_hosts(results) -> str:
    payload = {}
    for name, host in results.items():
        host = dict(host)
        host.pop("events_executed", None)
        host.pop("events_collapsed", None)
        host.pop("fluid_flows", None)
        host.pop("fluid_rejections", None)
        payload[name] = host
    return json.dumps(payload, sort_keys=True)


class TestClusterFaultMidWindow:
    def test_device_reset_decollapses_and_stays_byte_identical(self):
        exact, _, exact_driver = _drive_cluster("exact",
                                                fault_at=_FAULT_AT)
        fluid, runners, fluid_driver = _drive_cluster("fluid",
                                                      fault_at=_FAULT_AT)
        assert exact_driver.resets_handled == 1
        assert fluid_driver.resets_handled == 1
        assert _normalize_hosts(fluid) == _normalize_hosts(exact)
        # The reset evicted host a's flow: collapse ran up to the
        # fault, everything after executed exactly.
        host_a = fluid["a"]
        assert host_a["fluid_rejections"].get("host_evicted", 0) >= 1
        assert host_a["events_collapsed"] > 0
        assert host_a["events_executed"] > 0
        assert all(not flow.active
                   for flow in runners[0].host.bed.fluid_flows)
        # Host b was untouched and stayed collapsed throughout.
        assert fluid["b"]["fluid_rejections"] == {}
        # The event identity holds per host even across the eviction.
        for name in exact:
            assert (fluid[name]["events_executed"]
                    + fluid[name]["events_collapsed"]
                    ) == exact[name]["events_executed"]

    def test_faultless_hand_driven_loop_matches_scenario_path(self):
        # Sanity for the harness itself: without the fault, the
        # hand-driven loop reproduces the Scenario-path identity.
        exact, _, _ = _drive_cluster("exact")
        fluid, _, _ = _drive_cluster("fluid")
        assert _normalize_hosts(fluid) == _normalize_hosts(exact)
        assert fluid["a"]["events_executed"] == 0
        assert fluid["a"]["events_collapsed"] > 0
