"""Unit tests for the declarative Scenario/RunResult API."""

import json

import pytest

from repro.api import MODES, Scenario, run
from repro.core.experiment import (
    RESULT_SCHEMA,
    ExperimentRunner,
    RunResult,
)
from repro.drivers import (
    AdaptiveCoalescing,
    DynamicItr,
    FixedItr,
    policy_from_spec,
    policy_to_spec,
)


class TestScenarioValidation:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            Scenario(mode="warp")

    def test_variant_default_filled_in(self):
        assert Scenario(mode="intervm").variant == "sriov"
        assert Scenario(mode="migrate").variant == "dnis"

    def test_variant_on_plain_mode_rejected(self):
        with pytest.raises(ValueError, match="variant"):
            Scenario(mode="sriov", variant="pv")

    def test_bad_variant_rejected(self):
        with pytest.raises(ValueError, match="variant"):
            Scenario(mode="migrate", variant="teleport")

    def test_bad_enumish_fields_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            Scenario(kind="container")
        with pytest.raises(ValueError, match="kernel"):
            Scenario(kernel="5.4")
        with pytest.raises(ValueError, match="protocol"):
            Scenario(protocol="sctp")

    def test_bad_opts_fail_at_construction(self):
        with pytest.raises(TypeError):
            Scenario(opts={"warp_drive": True})


class TestScenarioFaults:
    def test_faults_normalized_at_construction(self):
        scenario = Scenario(faults=[{"kind": "link_flap", "at": 1}])
        assert scenario.faults == [{"kind": "link_flap", "at": 1.0,
                                    "duration": 0.5, "port": 0}]

    def test_invalid_fault_fails_at_construction(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            Scenario(faults=[{"kind": "gremlin"}])

    def test_empty_faults_collapse_to_none(self):
        assert Scenario(faults=[]) == Scenario(faults=None) == Scenario()

    def test_to_dict_omits_empty_faults(self):
        assert "faults" not in Scenario().to_dict()
        data = Scenario(faults=[{"kind": "link_flap", "at": 1.0}]).to_dict()
        assert data["faults"][0]["kind"] == "link_flap"

    def test_faulty_scenario_round_trips(self):
        scenario = Scenario(mode="migrate", variant="dnis",
                            faults=[{"kind": "link_flap", "at": 2.0},
                                    {"kind": "migration_degrade",
                                     "factor": 3.0}])
        assert (Scenario.from_dict(json.loads(json.dumps(
            scenario.to_dict()))) == scenario)


class TestScenarioRoundTrip:
    def test_to_dict_from_dict_identity(self):
        scenario = Scenario(mode="intervm", variant="pv", kind="pvm",
                            message_bytes=4000,
                            policy={"kind": "fixed_itr", "hz": 2000},
                            opts={"msi_acceleration": True}, seed=7)
        assert Scenario.from_dict(scenario.to_dict()) == scenario

    def test_round_trip_through_json(self):
        scenario = Scenario(mode="sriov", policy={"kind": "aic"})
        assert (Scenario.from_dict(json.loads(json.dumps(
            scenario.to_dict()))) == scenario)

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="vm_cuont"):
            Scenario.from_dict({"mode": "sriov", "vm_cuont": 3})

    def test_with_replaces_fields(self):
        base = Scenario(mode="sriov", vm_count=10)
        assert base.with_(vm_count=20).vm_count == 20
        assert base.vm_count == 10

    def test_every_mode_constructs(self):
        for mode in MODES:
            if mode == "cluster":
                # Cluster is the one mode with a required field: the
                # placement cannot be defaulted.
                Scenario(mode=mode, hosts=[{"name": "h0"}, {"name": "h1"}])
            else:
                Scenario(mode=mode)


class TestRunResultRoundTrip:
    def _result(self):
        return run(Scenario(mode="sriov", vm_count=1, ports=1,
                            policy={"kind": "fixed_itr", "hz": 2000},
                            warmup=0.2, duration=0.1))

    def test_to_dict_from_dict_identity(self):
        result = self._result()
        clone = RunResult.from_dict(result.to_dict())
        assert clone == result
        assert clone.to_dict() == result.to_dict()

    def test_dict_is_json_clean(self):
        data = self._result().to_dict()
        assert data["schema"] == RESULT_SCHEMA
        assert json.loads(json.dumps(data)) == data

    def test_live_handles_are_dropped(self):
        result = run(Scenario(mode="sriov", vm_count=1, ports=1,
                              warmup=0.2, duration=0.1), telemetry=True)
        assert result.telemetry is not None
        data = result.to_dict()
        assert "telemetry" not in data and "profiler" not in data
        assert RunResult.from_dict(data).telemetry is None

    def test_wrong_schema_rejected(self):
        data = self._result().to_dict()
        data["schema"] = "repro-result/0"
        with pytest.raises(ValueError, match="schema"):
            RunResult.from_dict(data)

    def test_migrate_extras_round_trip(self):
        result = run(Scenario(mode="migrate", variant="pv", start_at=0.5))
        data = result.to_dict()
        clone = RunResult.from_dict(json.loads(json.dumps(data)))
        assert clone.extras["migration"]["downtime"] > 0
        assert clone.extras["timeline"]["series"]["rx_bytes"]["times"]


class TestPolicySpecs:
    def test_spec_round_trip(self):
        for spec in [{"kind": "fixed_itr", "hz": 2000},
                     {"kind": "dynamic_itr"}, {"kind": "aic"}]:
            assert policy_to_spec(policy_from_spec(spec))["kind"] == \
                spec["kind"]

    def test_spec_builds_the_right_policy(self):
        assert isinstance(policy_from_spec({"kind": "fixed_itr",
                                            "hz": 2000}), FixedItr)
        assert isinstance(policy_from_spec({"kind": "dynamic_itr"}),
                          DynamicItr)
        assert isinstance(policy_from_spec({"kind": "aic"}),
                          AdaptiveCoalescing)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            policy_from_spec({"kind": "psychic"})

    def test_policy_factory_is_removed_with_a_hard_error(self):
        runner = ExperimentRunner(warmup=0.2, duration=0.1)
        factory = lambda: FixedItr(2000)
        calls = [
            lambda: runner.run_sriov(1, ports=1, policy_factory=factory),
            lambda: runner.run_sriov_tx(1, ports=1, policy_factory=factory),
            lambda: runner.run_native(1, ports=1, policy_factory=factory),
            lambda: runner.run_intervm_sriov(policy_factory=factory),
        ]
        for call in calls:
            with pytest.raises(TypeError,
                               match="policy_factory= was removed"):
                call()

    def test_policy_spec_replaces_the_removed_factory(self):
        runner = ExperimentRunner(warmup=0.2, duration=0.1)
        result = runner.run_sriov(1, ports=1,
                                  policy={"kind": "fixed_itr", "hz": 2000})
        spec_result = run(Scenario(mode="sriov", vm_count=1, ports=1,
                                   policy={"kind": "fixed_itr",
                                           "hz": 2000},
                                   warmup=0.2, duration=0.1))
        assert result.throughput_bps == spec_result.throughput_bps


def test_figures_cli_smoke(tmp_path, capsys):
    from repro.cli import run_cli
    code = run_cli(["figures", "--only", "fig15", "--quick",
                    "--cache-dir", str(tmp_path / "cache"),
                    "--out-dir", str(tmp_path / "figs")])
    assert code == 0
    out = capsys.readouterr().out
    assert "fig15" in out
    assert "cache summary:" in out
    assert (tmp_path / "figs" / "fig15.json").exists()
