"""Unit tests for xentop-style reporting."""

import pytest

from repro.core import Testbed, TestbedConfig, XentopReport, format_run_result
from repro.core.experiment import RunResult
from repro.net import Packet
from repro.net.mac import MacAddress
from repro.vmm import DomainKind

REMOTE = MacAddress.parse("02:00:00:00:99:99")


def run_some_traffic():
    bed = Testbed(TestbedConfig(ports=1))
    a = bed.add_sriov_guest(DomainKind.HVM, name="web")
    b = bed.add_sriov_guest(DomainKind.HVM, name="db")
    bed.platform.start_measurement()
    a.port.wire_receive([Packet(src=REMOTE, dst=a.vf.mac) for _ in range(50)])
    bed.sim.run(until=bed.sim.now + 0.1)
    return bed, a, b


def test_per_domain_rows_distinguish_guests():
    bed, a, b = run_some_traffic()
    report = XentopReport(bed.platform)
    by_name = {row.name: row for row in report.rows}
    # Only guest "web" received traffic.
    assert by_name["web"].cpu_percent > 0
    assert by_name["db"].cpu_percent == 0
    assert "dom0" in by_name
    assert by_name["(hypervisor)"].cpu_percent > 0


def test_rows_carry_pinning():
    bed, a, b = run_some_traffic()
    report = XentopReport(bed.platform)
    by_name = {row.name: row for row in report.rows}
    assert by_name["web"].home_cores == [a.domain.home_core()]
    assert by_name["dom0"].home_cores == list(range(8))


def test_render_is_a_table():
    bed, a, b = run_some_traffic()
    text = XentopReport(bed.platform).render()
    assert "NAME" in text
    assert "web" in text
    assert "TOTAL" in text


def test_total_matches_platform_breakdown():
    bed, a, b = run_some_traffic()
    report = XentopReport(bed.platform)
    breakdown = bed.platform.utilization_breakdown()
    assert report.total_percent == pytest.approx(sum(breakdown.values()),
                                                 rel=0.01)


def test_measurement_reset_clears_domain_counters():
    bed, a, b = run_some_traffic()
    bed.platform.start_measurement()
    bed.sim.run(until=bed.sim.now + 0.05)
    report = XentopReport(bed.platform)
    by_name = {row.name: row for row in report.rows}
    assert by_name["web"].cpu_percent == 0


def test_format_run_result():
    result = RunResult(vm_count=2, duration=1.0, throughput_bps=1.914e9,
                       per_vm_throughput_bps=[0.957e9] * 2,
                       cpu={"guest": 30.0, "xen": 5.0}, loss_rate=0.01,
                       interrupt_hz=2000.0)
    text = format_run_result(result)
    assert "1.914 Gbps" in text
    assert "guest" in text
    assert "total" in text
    assert "2000 Hz/guest" in text
