"""Unit tests for experiment helpers and result types."""

import pytest

from repro.core.experiment import ExperimentRunner, RunResult, steady_tcp_rate
from repro.drivers import AdaptiveCoalescing, FixedItr
from repro.net.packet import tcp_goodput_bps


class TestSteadyTcpRate:
    def test_fixed_high_frequency_reaches_line(self):
        rate = steady_tcp_rate(FixedItr(20000), line_share_bps=1e9)
        assert rate == pytest.approx(tcp_goodput_bps(1e9))

    def test_fixed_1khz_window_limited(self):
        rate = steady_tcp_rate(FixedItr(1000), line_share_bps=1e9)
        assert rate < tcp_goodput_bps(1e9) * 0.95

    def test_line_share_caps(self):
        rate = steady_tcp_rate(FixedItr(20000), line_share_bps=1e8)
        assert rate == pytest.approx(1e8)

    def test_aic_fixed_point_converges_to_line(self):
        """AIC's frequency rises with pps, so the feedback loop should
        settle at the full line goodput."""
        rate = steady_tcp_rate(AdaptiveCoalescing(), line_share_bps=1e9)
        assert rate == pytest.approx(tcp_goodput_bps(1e9), rel=0.01)

    def test_converges_identically_from_repeat_runs(self):
        a = steady_tcp_rate(FixedItr(1000), 1e9)
        b = steady_tcp_rate(FixedItr(1000), 1e9)
        assert a == b


class TestRunResult:
    def make(self, **overrides):
        base = dict(vm_count=2, duration=1.0, throughput_bps=2e9,
                    per_vm_throughput_bps=[1e9, 1e9],
                    cpu={"guest": 30.0, "xen": 5.0, "dom0": 3.0},
                    loss_rate=0.0, interrupt_hz=2000.0)
        base.update(overrides)
        return RunResult(**base)

    def test_total_cpu_sums_accounts(self):
        assert self.make().total_cpu_percent == pytest.approx(38.0)

    def test_throughput_gbps(self):
        assert self.make().throughput_gbps == pytest.approx(2.0)


class TestRunnerDeterminism:
    def test_same_config_same_result(self):
        runner = ExperimentRunner(warmup=0.2, duration=0.2)
        first = runner.run_sriov(1, ports=1,
                                 policy={"kind": "fixed_itr", "hz": 2000})
        second = runner.run_sriov(1, ports=1,
                                  policy={"kind": "fixed_itr", "hz": 2000})
        assert first.throughput_bps == second.throughput_bps
        assert first.cpu == second.cpu
        assert first.exit_counts == second.exit_counts
