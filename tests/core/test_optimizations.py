"""Unit tests for the optimization configuration."""

from repro.core.optimizations import OptimizationConfig


def test_none_is_all_off():
    config = OptimizationConfig.none()
    assert not config.msi_acceleration
    assert not config.eoi_acceleration
    assert not config.adaptive_coalescing
    assert not config.eoi_instruction_check


def test_all_enables_the_three_paper_optimizations():
    config = OptimizationConfig.all()
    assert config.msi_acceleration
    assert config.eoi_acceleration
    assert config.adaptive_coalescing
    # The paper ships without the instruction check (§5.2's argument).
    assert not config.eoi_instruction_check


def test_with_creates_modified_copy():
    base = OptimizationConfig.none()
    modified = base.with_(eoi_acceleration=True)
    assert modified.eoi_acceleration
    assert not base.eoi_acceleration  # frozen original untouched


def test_describe_tags():
    assert OptimizationConfig.none().describe() == "baseline"
    assert OptimizationConfig.all().describe() == "+msi+eoi+aic"
    assert OptimizationConfig(eoi_acceleration=True).describe() == "+eoi"


def test_frozen():
    import dataclasses
    import pytest
    with pytest.raises(dataclasses.FrozenInstanceError):
        OptimizationConfig().msi_acceleration = True
