"""The public API surface, pinned.

Three contracts that must not drift silently:

* what ``repro.api`` / ``repro`` export (the names examples and user
  code may import),
* the v2 Scenario schema — multi-host fields round-trip through JSON
  and version mismatches fail helpfully,
* the content-addressed cache keys of seed scenarios — a warm sweep
  cache must survive API refactors byte-for-byte.
"""

import json

import pytest

import repro
import repro.api
from repro.api import SCHEMA_VERSION, Scenario
from repro.sweep import costs_to_dict, job_key


class TestExportedNames:
    def test_api_all_is_exactly_the_published_surface(self):
        assert repro.api.__all__ == ["MODES", "SCHEMA_VERSION",
                                     "VARIANTS", "RunResult",
                                     "Scenario", "run"]

    def test_package_all_is_exactly_the_published_surface(self):
        assert repro.__all__ == ["CostModel", "DomainKind",
                                 "ExperimentRunner", "GuestKernel",
                                 "OptimizationConfig", "RunResult",
                                 "Scenario", "Testbed", "TestbedConfig",
                                 "__version__", "run"]

    def test_every_export_resolves(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None
        for name in repro.api.__all__:
            assert getattr(repro.api, name) is not None


def _cluster_scenario() -> Scenario:
    return Scenario(
        mode="cluster",
        hosts=[{"name": "left", "vm_count": 2},
               {"name": "right", "vm_count": 1, "ports": 2,
                "policy": {"kind": "fixed_itr", "hz": 2000}}],
        fabric={"uplink_gbps": 25.0, "latency_s": 1e-5},
        flows=[{"src_host": "left", "dst_host": "right",
                "src_vm": 1, "offered_bps": 2e8}],
        warmup=0.1, duration=0.05)


class TestScenarioSchemaV2:
    def test_multi_host_fields_round_trip_through_json(self):
        scenario = _cluster_scenario()
        data = json.loads(json.dumps(scenario.to_dict()))
        assert data["schema_version"] == SCHEMA_VERSION
        assert Scenario.from_dict(data) == scenario

    def test_faulted_scenario_round_trips_through_json(self):
        scenario = Scenario(mode="migrate", variant="dnis",
                            faults=[{"kind": "link_flap", "at": 2.0}])
        data = json.loads(json.dumps(scenario.to_dict()))
        assert Scenario.from_dict(data) == scenario

    def test_single_host_dict_has_no_version_or_cluster_fields(self):
        data = Scenario(mode="sriov").to_dict()
        for name in ("schema_version", "hosts", "fabric", "flows"):
            assert name not in data

    def test_v1_dicts_still_load(self):
        # Every dict ever written before the version tag existed is a
        # v1 dict; it must construct unchanged.
        scenario = Scenario(mode="sriov", vm_count=3)
        data = scenario.to_dict()
        assert "schema_version" not in data
        assert Scenario.from_dict(data) == scenario
        assert Scenario.from_dict({**data, "schema_version": 1}) \
            == scenario

    def test_future_schema_version_fails_helpfully(self):
        with pytest.raises(ValueError, match="newer repro"):
            Scenario(mode="sriov", schema_version=SCHEMA_VERSION + 1)

    def test_unknown_keys_get_a_spelling_hint(self):
        with pytest.raises(ValueError,
                           match="did you mean 'fabric'"):
            Scenario.from_dict({"mode": "cluster",
                                "hosts": [{"name": "h0"}],
                                "fabrik": {}})

    def test_cluster_fields_rejected_outside_cluster_mode(self):
        with pytest.raises(ValueError, match="cluster-mode field"):
            Scenario(mode="sriov", hosts=[{"name": "h0"}])

    def test_cluster_mode_accepts_host_scoped_faults(self):
        scenario = Scenario(
            mode="cluster",
            hosts=[{"name": "h0"}, {"name": "h1"}],
            faults=[{"kind": "uplink_down", "at": 1.0, "host": "h0"},
                    {"kind": "fabric_partition", "at": 2.0,
                     "groups": [["h0"], ["h1"]]}])
        data = json.loads(json.dumps(scenario.to_dict()))
        assert Scenario.from_dict(data) == scenario

    def test_cluster_fault_host_must_be_declared(self):
        with pytest.raises(ValueError, match="h9"):
            Scenario(mode="cluster", hosts=[{"name": "h0"}],
                     faults=[{"kind": "host_crash", "at": 1.0,
                              "host": "h9"}])

    def test_cluster_fault_host_typo_gets_a_hint(self):
        with pytest.raises(ValueError, match="did you mean 'left'"):
            Scenario(mode="cluster",
                     hosts=[{"name": "left"}, {"name": "right"}],
                     faults=[{"kind": "fabric_partition", "at": 1.0,
                              "groups": [["lefft"], ["right"]]}])

    def test_cluster_fault_needs_host_field(self):
        with pytest.raises(ValueError, match="needs host="):
            Scenario(mode="cluster",
                     hosts=[{"name": "h0"}, {"name": "h1"}],
                     faults=[{"kind": "link_flap", "at": 1.0}])

    def test_cluster_fault_port_validated_against_host(self):
        with pytest.raises(ValueError, match="port"):
            Scenario(mode="cluster",
                     hosts=[{"name": "h0", "ports": 1}, {"name": "h1"}],
                     faults=[{"kind": "uplink_down", "at": 1.0,
                              "host": "h0", "port": 3}])

    def test_single_host_modes_reject_cluster_scope_faults(self):
        with pytest.raises(ValueError, match="cluster-scope"):
            Scenario(mode="sriov",
                     faults=[{"kind": "host_pause", "at": 1.0,
                              "host": "h0"}])


class TestSeedCacheKeys:
    """Golden content keys: a refactor that changes any of these
    invalidates every user's warm result cache.  Computed once from the
    seed tree and pinned."""

    PINNED = {
        "default":
            "3e410f796dd9f50e1fb81f0a55d7154312274866ae790890b386edf2f"
            "482972c",
        "fig15_cell":
            "6ea923600166e6da02e0e6e9683e3a9ff90597dc5280822f1390eac50"
            "ccdfcc7",
        "migrate_dnis":
            "1013b3e7a2f7a9512ad35cb595bae9d11f9564325af7386a7175e1f73"
            "6f37ee5",
        "intervm_pv":
            "8bc327a756f91032b57fb5e1bd66d23a87ea60a096634cf37cb537002"
            "04ead2f",
        "faulted":
            "905e30b07709b224259e922ce04bd5745d98de4872493e5b4c336bc48"
            "304a3a5",
        "cluster":
            "f92606817cb1f33b7aafb03b5b712364c9d9b4d45bdc9484b0f0211ee"
            "99cde6f",
    }

    def _scenarios(self):
        return {
            "default": Scenario(),
            "fig15_cell": Scenario(mode="sriov", kind="hvm",
                                   policy={"kind": "fixed_itr",
                                           "hz": 2000},
                                   warmup=0.6, duration=0.4,
                                   vm_count=10),
            "migrate_dnis": Scenario(mode="migrate", variant="dnis"),
            "intervm_pv": Scenario(mode="intervm", variant="pv",
                                   kind="pvm", message_bytes=4000),
            "faulted": Scenario(faults=[{"kind": "link_flap",
                                         "at": 2.0}]),
            "cluster": Scenario(
                mode="cluster",
                hosts=[{"name": "h0", "vm_count": 2, "ports": 2},
                       {"name": "h1", "vm_count": 2, "ports": 2}],
                flows=[{"src_host": "h0", "dst_host": "h1"},
                       {"src_host": "h1", "dst_host": "h0"}],
                warmup=0.05, duration=0.05),
        }

    def test_seed_scenario_keys_are_unchanged(self):
        for label, scenario in self._scenarios().items():
            key = job_key(scenario.to_dict(), costs_to_dict(None))
            assert key == self.PINNED[label], (
                f"cache key for {label!r} drifted: every warm cache "
                f"would be invalidated (got {key})")

    def test_fault_free_dicts_never_mention_faults(self):
        # The cluster fault layer must not leak into fault-free
        # canonical dicts (the cache key above pins the hash; this
        # pins the reason it holds).
        for label, scenario in self._scenarios().items():
            if label == "faulted":
                continue
            assert "faults" not in json.dumps(scenario.to_dict())

    def test_host_scoping_does_not_perturb_single_host_plans(self):
        # host=None normalizes away, so plans written before host
        # scoping existed keep their exact canonical JSON.
        a = Scenario(faults=[{"kind": "link_flap", "at": 2.0}])
        b = Scenario(faults=[{"kind": "link_flap", "at": 2.0,
                              "host": None}])
        assert a.to_dict() == b.to_dict()
