"""Unit tests for the calibrated cost model."""

import pytest

from repro.core.costs import CostModel


def test_defaults_validate():
    CostModel().validate()


def test_paper_quoted_constants():
    """The constants the paper states verbatim must not drift."""
    costs = CostModel()
    assert costs.clock_hz == 2.8e9                 # §6.1
    assert costs.core_count == 16                  # §6.1
    assert costs.dom0_vcpus == 8                   # §6.1
    assert costs.eoi_emulate_cycles == 8400        # §5.2
    assert costs.eoi_accelerated_cycles == 2500    # §5.2
    assert costs.eoi_instruction_check_cycles == 1800  # §5.2
    assert costs.aic_ap_bufs == 64                 # §5.3
    assert costs.aic_dd_bufs == 1024               # §5.3
    assert costs.aic_redundancy == 1.2             # §5.3


def test_validation_catches_nonpositive():
    with pytest.raises(ValueError):
        CostModel(clock_hz=0).validate()
    with pytest.raises(ValueError):
        CostModel(guest_cycles_per_packet=-1).validate()
    with pytest.raises(ValueError):
        CostModel(aic_lif_hz=0).validate()


def test_validation_catches_inconsistencies():
    with pytest.raises(ValueError):
        CostModel(dom0_vcpus=20).validate()  # more than core_count
    with pytest.raises(ValueError):
        CostModel(eoi_accelerated_cycles=9000).validate()  # not faster
    with pytest.raises(ValueError):
        CostModel(aic_ap_bufs=0).validate()


def test_aic_bufs_is_min():
    assert CostModel(aic_ap_bufs=10, aic_dd_bufs=1024).aic_bufs == 10
    assert CostModel(aic_ap_bufs=2048, aic_dd_bufs=1024).aic_bufs == 1024


def test_aic_interrupt_hz_floor_and_slope():
    costs = CostModel()
    assert costs.aic_interrupt_hz(0) == costs.aic_lif_hz
    # Above the floor: pps x r / bufs.
    assert costs.aic_interrupt_hz(64000) == pytest.approx(64000 * 1.2 / 64)


def test_validate_returns_self_for_chaining():
    costs = CostModel()
    assert costs.validate() is costs
