"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, parse_fault_spec, parse_policy, run_cli
from repro.drivers import AdaptiveCoalescing, DynamicItr, FixedItr


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_sriov_defaults(self):
        args = build_parser().parse_args(["sriov"])
        assert args.vms == 10
        assert args.kind == "hvm"
        assert args.kernel == "2.6.28"
        assert not args.no_opts

    def test_sriov_full_flags(self):
        args = build_parser().parse_args(
            ["sriov", "--vms", "7", "--ports", "1", "--kind", "pvm",
             "--kernel", "2.6.18", "--no-opts", "--itr", "2000"])
        assert args.vms == 7
        assert args.ports == 1
        assert args.no_opts

    def test_bad_choice_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sriov", "--kind", "xen"])

    def test_migrate_modes(self):
        args = build_parser().parse_args(["migrate", "--mode", "pv"])
        assert args.mode == "pv"


class TestPolicyParsing:
    def test_named_policies(self):
        assert isinstance(parse_policy("aic"), AdaptiveCoalescing)
        assert isinstance(parse_policy("dynamic"), DynamicItr)

    def test_numeric_frequency(self):
        policy = parse_policy("2000")
        assert isinstance(policy, FixedItr)
        assert policy.hz == 2000

    def test_garbage_rejected(self):
        with pytest.raises(SystemExit):
            parse_policy("often")


class TestFaultSpecParsing:
    def test_full_spec(self):
        assert parse_fault_spec("link_flap:at=2.0,duration=0.5,port=1") \
            == {"kind": "link_flap", "at": 2.0, "duration": 0.5,
                "port": 1}

    def test_defaults_filled(self):
        spec = parse_fault_spec("dma_corruption:at=0.5")
        assert spec["count"] == 1 and spec["port"] == 0

    def test_bare_kind_when_nothing_required(self):
        assert parse_fault_spec("migration_degrade")["factor"] == 2.0

    def test_null_value_parses_as_none(self):
        assert parse_fault_spec("mailbox_loss:at=1.0,vf=null")["vf"] is None

    def test_unknown_kind_rejected(self):
        with pytest.raises(SystemExit, match="unknown fault kind"):
            parse_fault_spec("gremlin:at=1.0")

    def test_malformed_pair_rejected(self):
        with pytest.raises(SystemExit, match="key=value"):
            parse_fault_spec("link_flap:at")

    def test_fault_flag_reaches_the_scenario(self):
        from repro.cli import _scenario_for
        args = build_parser().parse_args(
            ["sriov", "--fault", "link_flap:at=2.0"])
        scenario = _scenario_for(args)
        assert scenario.faults == [{"kind": "link_flap", "at": 2.0,
                                    "duration": 0.5, "port": 0}]

    def test_faults_subcommand_prints_vocabulary(self, capsys):
        assert run_cli(["faults"]) == 0
        out = capsys.readouterr().out
        for kind in ("link_flap", "mailbox_loss", "dma_corruption",
                     "interrupt_delay", "migration_degrade"):
            assert kind in out

    def test_faults_check_validates_a_plan(self, tmp_path, capsys):
        import json
        plan = tmp_path / "plan.json"
        plan.write_text(json.dumps([{"kind": "link_flap", "at": 1.0}]))
        assert run_cli(["faults", "--check", str(plan)]) == 0
        assert '"duration": 0.5' in capsys.readouterr().out
        plan.write_text(json.dumps([{"kind": "link_flap"}]))
        with pytest.raises(SystemExit, match="requires 'at'"):
            run_cli(["faults", "--check", str(plan)])
        plan.write_text(json.dumps({"kind": "link_flap", "at": 1.0}))
        with pytest.raises(SystemExit, match="list"):
            run_cli(["faults", "--check", str(plan)])


class TestSmokeRuns:
    """Tiny end-to-end CLI invocations (small scale for speed)."""

    def test_sriov_run(self, capsys):
        code = run_cli(["--warmup", "0.2", "--duration", "0.2",
                        "sriov", "--vms", "1", "--ports", "1",
                        "--itr", "2000"])
        assert code == 0
        out = capsys.readouterr().out
        assert "throughput" in out
        assert "Gbps" in out

    def test_pv_run(self, capsys):
        code = run_cli(["--warmup", "0.2", "--duration", "0.2",
                        "pv", "--vms", "1", "--ports", "1"])
        assert code == 0
        assert "dom0" in capsys.readouterr().out

    def test_vmdq_run(self, capsys):
        code = run_cli(["--warmup", "0.2", "--duration", "0.2",
                        "vmdq", "--vms", "2"])
        assert code == 0

    def test_intervm_run(self, capsys):
        code = run_cli(["--warmup", "0.3", "--duration", "0.2",
                        "intervm", "--mode", "pv"])
        assert code == 0

    def test_migration_run(self, capsys):
        code = run_cli(["migrate", "--mode", "dnis", "--start-at", "0.5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "migration events" in out
        assert "downtime" in out

    def test_cluster_run(self, tmp_path, capsys):
        import json
        metrics = tmp_path / "metrics.json"
        code = run_cli(["--warmup", "0.05", "--duration", "0.05",
                        "cluster", "--hosts", "2", "--vms-per-host", "1",
                        "--metrics-json", str(metrics)])
        assert code == 0
        out = capsys.readouterr().out
        assert "per-host" in out
        assert "h0" in out and "h1" in out
        doc = json.loads(metrics.read_text())
        assert any(name.startswith("host.h1.")
                   for name in doc["metrics"])

    def test_cluster_rejects_single_host_observability(self):
        for flag in (["--trace-out", "t.jsonl"], ["--profile"],
                     ["--audit-interval", "0.1"]):
            with pytest.raises(SystemExit, match="single-host"):
                run_cli(["cluster"] + flag)
        with pytest.raises(SystemExit, match="in-process"):
            run_cli(["cluster", "--process-hosts",
                     "--metrics-json", "m.json"])

    def test_migration_run_with_fault_and_metrics(self, tmp_path, capsys):
        import json
        metrics = tmp_path / "metrics.json"
        code = run_cli(["migrate", "--mode", "dnis", "--start-at", "0.5",
                        "--fault", "link_flap:at=0.2,duration=0.3,port=0",
                        "--metrics-json", str(metrics)])
        assert code == 0
        doc = json.loads(metrics.read_text())
        assert doc["metrics"]["faults.link_flaps"]["value"] == 1
        assert doc["metrics"]["faults.injected"]["value"] == 1


def test_migration_pv_mode(capsys):
    code = run_cli(["migrate", "--mode", "pv", "--start-at", "0.5"])
    assert code == 0
    out = capsys.readouterr().out
    assert "migration events (pv)" in out


def test_report_on_native_host_has_no_domain_rows():
    from repro.core.report import XentopReport
    from repro.sim import Simulator
    from repro.vmm import NativeHost
    host = NativeHost(Simulator())
    host.start_measurement()
    host.sim.run(until=1.0)
    report = XentopReport(host)
    assert report.rows == []
    assert "TOTAL" in report.render()
