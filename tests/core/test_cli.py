"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, parse_policy, run_cli
from repro.drivers import AdaptiveCoalescing, DynamicItr, FixedItr


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_sriov_defaults(self):
        args = build_parser().parse_args(["sriov"])
        assert args.vms == 10
        assert args.kind == "hvm"
        assert args.kernel == "2.6.28"
        assert not args.no_opts

    def test_sriov_full_flags(self):
        args = build_parser().parse_args(
            ["sriov", "--vms", "7", "--ports", "1", "--kind", "pvm",
             "--kernel", "2.6.18", "--no-opts", "--itr", "2000"])
        assert args.vms == 7
        assert args.ports == 1
        assert args.no_opts

    def test_bad_choice_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sriov", "--kind", "xen"])

    def test_migrate_modes(self):
        args = build_parser().parse_args(["migrate", "--mode", "pv"])
        assert args.mode == "pv"


class TestPolicyParsing:
    def test_named_policies(self):
        assert isinstance(parse_policy("aic"), AdaptiveCoalescing)
        assert isinstance(parse_policy("dynamic"), DynamicItr)

    def test_numeric_frequency(self):
        policy = parse_policy("2000")
        assert isinstance(policy, FixedItr)
        assert policy.hz == 2000

    def test_garbage_rejected(self):
        with pytest.raises(SystemExit):
            parse_policy("often")


class TestSmokeRuns:
    """Tiny end-to-end CLI invocations (small scale for speed)."""

    def test_sriov_run(self, capsys):
        code = run_cli(["--warmup", "0.2", "--duration", "0.2",
                        "sriov", "--vms", "1", "--ports", "1",
                        "--itr", "2000"])
        assert code == 0
        out = capsys.readouterr().out
        assert "throughput" in out
        assert "Gbps" in out

    def test_pv_run(self, capsys):
        code = run_cli(["--warmup", "0.2", "--duration", "0.2",
                        "pv", "--vms", "1", "--ports", "1"])
        assert code == 0
        assert "dom0" in capsys.readouterr().out

    def test_vmdq_run(self, capsys):
        code = run_cli(["--warmup", "0.2", "--duration", "0.2",
                        "vmdq", "--vms", "2"])
        assert code == 0

    def test_intervm_run(self, capsys):
        code = run_cli(["--warmup", "0.3", "--duration", "0.2",
                        "intervm", "--mode", "pv"])
        assert code == 0

    def test_migration_run(self, capsys):
        code = run_cli(["migrate", "--mode", "dnis", "--start-at", "0.5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "migration events" in out
        assert "downtime" in out


def test_migration_pv_mode(capsys):
    code = run_cli(["migrate", "--mode", "pv", "--start-at", "0.5"])
    assert code == 0
    out = capsys.readouterr().out
    assert "migration events (pv)" in out


def test_report_on_native_host_has_no_domain_rows():
    from repro.core.report import XentopReport
    from repro.sim import Simulator
    from repro.vmm import NativeHost
    host = NativeHost(Simulator())
    host.start_measurement()
    host.sim.run(until=1.0)
    report = XentopReport(host)
    assert report.rows == []
    assert "TOTAL" in report.render()
