"""Unit tests for the §6.1 testbed builder."""

import pytest

from repro.core import Testbed, TestbedConfig
from repro.net.packet import Protocol, udp_goodput_bps
from repro.vmm import DomainKind, GuestKernel


def test_ports_built_and_vfs_enabled():
    bed = Testbed(TestbedConfig(ports=3, vfs_per_port=4))
    assert len(bed.ports) == 3
    for port in bed.ports:
        assert len(port.vfs) == 4
        assert port.pf.sriov.vf_enabled


def test_fig11_vf_allocation_policy():
    """Guest i -> port (i mod ports), VF (i div ports): "the assigned
    VFs will come from VF(7j+0) to VF(7j+n-1) for each port j"."""
    bed = Testbed(TestbedConfig(ports=3, vfs_per_port=7))
    guests = [bed.add_sriov_guest() for _ in range(7)]
    placements = [(g.port.index, g.vf.index) for g in guests]
    assert placements == [(0, 0), (1, 0), (2, 0),
                          (0, 1), (1, 1), (2, 1),
                          (0, 2)]


def test_vf_exhaustion_raises():
    bed = Testbed(TestbedConfig(ports=1, vfs_per_port=2))
    bed.add_sriov_guest()
    bed.add_sriov_guest()
    with pytest.raises(RuntimeError):
        bed.add_sriov_guest()


def test_sriov_guest_fully_wired():
    bed = Testbed(TestbedConfig(ports=1))
    guest = bed.add_sriov_guest(DomainKind.HVM, GuestKernel.LINUX_2_6_18)
    assert guest.domain.kernel is GuestKernel.LINUX_2_6_18
    assert guest.driver.running
    assert guest.vf.enabled
    assert guest.assignment is not None
    assert guest.vf.mac is not None
    # The switch routes the VF's MAC to it.
    assert guest.port.switch.is_local(guest.vf.mac)


def test_native_testbed_has_no_hypervisor():
    bed = Testbed(TestbedConfig(ports=1, native=True))
    assert bed.platform.is_native
    guest = bed.add_sriov_guest()
    assert guest.assignment is None  # no IOVM assignment bookkeeping
    assert guest.domain.account_label == "native"


def test_netback_lazily_built_and_shared():
    bed = Testbed(TestbedConfig(ports=1))
    a = bed.add_pv_guest()
    b = bed.add_pv_guest()
    assert bed.netback.frontend_count == 2
    assert a.netfront.backend is bed.netback


def test_single_thread_netback_must_precede_guests():
    bed = Testbed(TestbedConfig(ports=1))
    bed.add_pv_guest()
    with pytest.raises(RuntimeError):
        bed.use_single_thread_netback()


def test_per_vm_line_share():
    bed = Testbed(TestbedConfig(ports=10))
    full = udp_goodput_bps(1e9)
    assert bed.per_vm_line_share_bps(10) == pytest.approx(full)
    assert bed.per_vm_line_share_bps(20) == pytest.approx(full / 2)
    # 15 VMs: worst-loaded port carries 2.
    assert bed.per_vm_line_share_bps(15) == pytest.approx(full / 2)


def test_client_streams_use_unique_macs():
    bed = Testbed(TestbedConfig(ports=1))
    a = bed.add_sriov_guest()
    b = bed.add_sriov_guest()
    sa = bed.attach_client_to_sriov(a, 1e8)
    sb = bed.attach_client_to_sriov(b, 1e8)
    assert sa.src != sb.src


def test_vmdq_guests_register_with_service():
    bed = Testbed(TestbedConfig(ports=1))
    guests = [bed.add_vmdq_guest() for _ in range(9)]
    assert bed.vmdq_service.dedicated_guest_count == 7
    assert guests[0].netfront.mac is not None
