"""Unit tests for the PF<->VF mailbox/doorbell channel."""

import pytest

from repro.devices import Mailbox, MailboxError, MailboxMessage


def make_connected():
    mailbox = Mailbox(vf_index=0)
    pf_inbox, vf_inbox = [], []
    mailbox.connect(Mailbox.PF, pf_inbox.append)
    mailbox.connect(Mailbox.VF, vf_inbox.append)
    return mailbox, pf_inbox, vf_inbox


def test_vf_to_pf_doorbell():
    mailbox, pf_inbox, _ = make_connected()
    message = MailboxMessage("set_multicast", payload=(1, 2, 3))
    mailbox.send(Mailbox.VF, message)
    assert pf_inbox == [message]
    assert mailbox.pending(Mailbox.PF)


def test_pf_to_vf_doorbell():
    mailbox, _, vf_inbox = make_connected()
    message = MailboxMessage("link_change", body={"up": False})
    mailbox.send(Mailbox.PF, message)
    assert vf_inbox == [message]


def test_read_then_acknowledge_releases_channel():
    mailbox, _, _ = make_connected()
    mailbox.send(Mailbox.VF, MailboxMessage("ping"))
    received = mailbox.read(Mailbox.PF)
    assert received.kind == "ping"
    mailbox.acknowledge(Mailbox.PF)
    assert not mailbox.pending(Mailbox.PF)
    # Channel free: next send succeeds.
    mailbox.send(Mailbox.VF, MailboxMessage("ping2"))


def test_overlapping_send_is_protocol_violation():
    mailbox, _, _ = make_connected()
    mailbox.send(Mailbox.VF, MailboxMessage("first"))
    with pytest.raises(MailboxError):
        mailbox.send(Mailbox.VF, MailboxMessage("second"))


def test_directions_are_independent():
    mailbox, _, _ = make_connected()
    mailbox.send(Mailbox.VF, MailboxMessage("request"))
    # PF can still send the other way while its inbox is pending.
    mailbox.send(Mailbox.PF, MailboxMessage("event"))


def test_read_without_message_fails():
    mailbox, _, _ = make_connected()
    with pytest.raises(MailboxError):
        mailbox.read(Mailbox.PF)


def test_acknowledge_without_message_fails():
    mailbox, _, _ = make_connected()
    with pytest.raises(MailboxError):
        mailbox.acknowledge(Mailbox.VF)


def test_send_without_handler_fails():
    mailbox = Mailbox()
    with pytest.raises(MailboxError):
        mailbox.send(Mailbox.VF, MailboxMessage("x"))


def test_payload_size_limit():
    with pytest.raises(MailboxError):
        MailboxMessage("big", payload=tuple(range(17)))
    MailboxMessage("fits", payload=tuple(range(16)))


def test_unknown_side_rejected():
    mailbox = Mailbox()
    with pytest.raises(MailboxError):
        mailbox.pending("hypervisor")


def test_stats_count_sent_and_received():
    mailbox, _, _ = make_connected()
    mailbox.send(Mailbox.VF, MailboxMessage("a"))
    mailbox.read(Mailbox.PF)
    mailbox.acknowledge(Mailbox.PF)
    sent, _ = mailbox.stats(Mailbox.VF)
    _, received = mailbox.stats(Mailbox.PF)
    assert sent == 1
    assert received == 1
