"""Unit tests for the 82576 register map and its behaviour hooks."""

import pytest

from repro.devices import Igb82576Port
from repro.devices.igb_regs import (
    CTRL_RST,
    STATUS_LU,
    mac_from_ral_rah,
    ral_rah_for_mac,
)
from repro.hw.pcie import RootComplex
from repro.net.mac import MacAddress
from repro.net.packet import Packet
from repro.sim import Simulator


def build_port(vf_count=2):
    sim = Simulator()
    rc = RootComplex()
    port = Igb82576Port(sim)
    rc.attach(port.pf.pci, bus=1, device=0)
    port.enable_vfs(vf_count)
    return sim, port


class TestMacRegisterEncoding:
    def test_roundtrip(self):
        mac = MacAddress.parse("02:1a:2b:3c:4d:5e")
        ral, rah = ral_rah_for_mac(mac, pool=3)
        assert mac_from_ral_rah(ral, rah) == mac
        assert (rah >> 18) & 0x7F == 3
        assert rah & (1 << 31)

    def test_invalid_flag(self):
        mac = MacAddress(0x020000000001)
        _, rah = ral_rah_for_mac(mac, pool=0, valid=False)
        assert not rah & (1 << 31)


class TestRahHook:
    def test_writing_rah_programs_switch(self):
        sim, port = build_port()
        mac = MacAddress.parse("02:00:00:00:00:42")
        ral, rah = ral_rah_for_mac(mac, pool=1)  # pool 1 = VF 0
        port.regs.write_by_name("RAL1", ral)
        port.regs.write_by_name("RAH1", rah)
        assert port.switch.is_local(mac)
        [target] = port.switch.classify(Packet(src=MacAddress(0x02_9999),
                                               dst=mac))
        assert target.function_index == 0

    def test_pool_zero_is_pf(self):
        sim, port = build_port()
        mac = MacAddress.parse("02:00:00:00:00:43")
        ral, rah = ral_rah_for_mac(mac, pool=0)
        port.regs.write_by_name("RAL2", ral)
        port.regs.write_by_name("RAH2", rah)
        from repro.devices.l2switch import SwitchTarget
        from repro.net.packet import Packet
        [target] = port.switch.classify(Packet(src=MacAddress(1), dst=mac))
        assert target.is_pf

    def test_rewriting_entry_unprograms_old_mac(self):
        sim, port = build_port()
        old_mac = MacAddress.parse("02:00:00:00:00:44")
        new_mac = MacAddress.parse("02:00:00:00:00:45")
        ral, rah = ral_rah_for_mac(old_mac, pool=1)
        port.regs.write_by_name("RAL1", ral)
        port.regs.write_by_name("RAH1", rah)
        ral, rah = ral_rah_for_mac(new_mac, pool=1)
        port.regs.write_by_name("RAL1", ral)
        port.regs.write_by_name("RAH1", rah)
        assert not port.switch.is_local(old_mac)
        assert port.switch.is_local(new_mac)

    def test_clearing_av_bit_unprograms(self):
        sim, port = build_port()
        mac = MacAddress.parse("02:00:00:00:00:46")
        ral, rah = ral_rah_for_mac(mac, pool=1)
        port.regs.write_by_name("RAL1", ral)
        port.regs.write_by_name("RAH1", rah)
        port.regs.write_by_name("RAH1", rah & ~(1 << 31))
        assert not port.switch.is_local(mac)


class TestCtrlReset:
    def test_rst_bit_clears_all_rings_and_self_clears(self):
        sim, port = build_port()
        port.pf.rx_ring.post(0x1000, 2048)
        port.vf(0).rx_ring.post(0x1000, 2048)
        port.regs.write_by_name("CTRL", CTRL_RST)
        assert port.pf.rx_ring.empty
        assert port.vf(0).rx_ring.empty
        assert not port.regs.read_by_name("CTRL") & CTRL_RST


class TestStatusRegister:
    def test_link_bit_tracks_port_state(self):
        sim, port = build_port()
        assert port.regs.read_by_name("STATUS") & STATUS_LU
        port.link_up = False
        assert not port.regs.read_by_name("STATUS") & STATUS_LU

    def test_status_is_read_only(self):
        from repro.hw.registers import RegisterError
        sim, port = build_port()
        with pytest.raises(RegisterError):
            port.regs.write_by_name("STATUS", 0)


class TestVfRegisters:
    def test_vteitr_programs_throttle(self):
        sim, port = build_port()
        vf = port.vf(0)
        vf.regs.write_by_name("VTEITR0", 500)  # 500 us -> 2 kHz
        assert vf.throttle.interval == pytest.approx(500e-6)

    def test_vtctrl_reset_quiesces_vf(self):
        sim, port = build_port()
        vf = port.vf(0)
        vf.enabled = True
        vf.rx_ring.post(0x1000, 2048)
        vf.regs.write_by_name("VTCTRL", CTRL_RST)
        assert not vf.enabled
        assert vf.rx_ring.empty


class TestDriverProgramsThroughRegisters:
    def test_pf_driver_writes_receive_address_registers(self):
        from repro.core import Testbed, TestbedConfig
        bed = Testbed(TestbedConfig(ports=1, vfs_per_port=2))
        port = bed.ports[0]
        # Entry 0 = PF's MAC, entries 1..2 = the VFs'.
        assert port.regs.peek("RAH0") & (1 << 31)
        assert port.regs.peek("RAH1") & (1 << 31)
        assert mac_from_ral_rah(port.regs.peek("RAL1"),
                                port.regs.peek("RAH1")) == port.vf(0).mac

    def test_vf_driver_writes_vteitr(self):
        from repro.core import Testbed, TestbedConfig
        from repro.drivers import FixedItr
        bed = Testbed(TestbedConfig(ports=1))
        guest = bed.add_sriov_guest(policy=FixedItr(2000))
        assert guest.vf.regs.peek("VTEITR0") == 500
        assert guest.vf.throttle.interval == pytest.approx(500e-6)
