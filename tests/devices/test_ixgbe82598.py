"""Unit tests for the 82598 VMDq port model."""

from repro.devices import Ixgbe82598Port
from repro.devices.ixgbe82598 import DEFAULT_QUEUE, TOTAL_QUEUE_PAIRS
from repro.net import Packet
from repro.net.mac import MacAddress
from repro.sim import Simulator

REMOTE = MacAddress.parse("02:00:00:00:99:99")


def guest_mac(i):
    return MacAddress(0x020000000020 + i)


def test_only_seven_dedicated_queues():
    port = Ixgbe82598Port(Simulator())
    assert port.dedicated_queues_available == TOTAL_QUEUE_PAIRS - 1
    granted = [port.assign_queue(i, guest_mac(i)) for i in range(10)]
    assert sum(1 for queue in granted if queue is not None) == 7
    assert granted[7] is None  # 8th guest falls back to the default queue


def test_classified_packets_land_in_owner_queue():
    port = Ixgbe82598Port(Simulator())
    queue = port.assign_queue(1, guest_mac(1))
    port.wire_receive([Packet(src=REMOTE, dst=guest_mac(1))])
    assert len(queue.rx) == 1
    assert port.default_queue_packets == 0


def test_unassigned_mac_hits_default_queue():
    port = Ixgbe82598Port(Simulator())
    port.wire_receive([Packet(src=REMOTE, dst=guest_mac(9))])
    assert len(port.queues[DEFAULT_QUEUE].rx) == 1
    assert port.default_queue_packets == 1


def test_fallback_guest_shares_default_queue():
    port = Ixgbe82598Port(Simulator())
    for i in range(8):
        port.assign_queue(i, guest_mac(i))
    port.wire_receive([Packet(src=REMOTE, dst=guest_mac(7))])
    assert port.queue_of(guest_mac(7)) == DEFAULT_QUEUE
    assert len(port.queues[DEFAULT_QUEUE].rx) == 1


def test_interrupt_sink_notified_per_burst():
    port = Ixgbe82598Port(Simulator())
    notified = []
    port.interrupt_sink = lambda queue: notified.append(queue.index)
    queue = port.assign_queue(1, guest_mac(1))
    port.wire_receive([Packet(src=REMOTE, dst=guest_mac(1)) for _ in range(3)])
    assert notified == [queue.index]
    assert queue.interrupts == 1


def test_queue_overflow_drops():
    port = Ixgbe82598Port(Simulator())
    queue = port.assign_queue(1, guest_mac(1))
    burst = [Packet(src=REMOTE, dst=guest_mac(1)) for _ in range(600)]
    port.wire_receive(burst)
    assert len(queue.rx) == 512
    assert queue.rx.stats.dropped == 88


def test_release_queue_frees_it():
    port = Ixgbe82598Port(Simulator())
    port.assign_queue(1, guest_mac(1))
    assert port.dedicated_queues_available == 6
    port.release_queue(1)
    assert port.dedicated_queues_available == 7
    assert port.queue_of(guest_mac(1)) == DEFAULT_QUEUE


def test_mixed_burst_classification():
    port = Ixgbe82598Port(Simulator())
    q1 = port.assign_queue(1, guest_mac(1))
    q2 = port.assign_queue(2, guest_mac(2))
    burst = [
        Packet(src=REMOTE, dst=guest_mac(1)),
        Packet(src=REMOTE, dst=guest_mac(2)),
        Packet(src=REMOTE, dst=guest_mac(1)),
    ]
    port.wire_receive(burst)
    assert len(q1.rx) == 2
    assert len(q2.rx) == 1
