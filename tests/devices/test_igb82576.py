"""Unit tests for the 82576 SR-IOV port model."""

import pytest

from repro.devices import Igb82576Port
from repro.devices.igb82576 import (
    DEFAULT_RING_SIZE,
    IGB_VF_DEVICE_ID,
    InterruptThrottle,
    RX_BUFFER_BYTES,
)
from repro.devices.l2switch import SwitchTarget
from repro.hw import Iommu, IoPageTable
from repro.hw.pcie import RootComplex
from repro.net import Packet
from repro.net.mac import MacAddress
from repro.sim import Simulator

MAC_REMOTE = MacAddress.parse("02:00:00:00:99:99")


def build_port(sim=None, vf_count=2, with_iommu=True):
    """A port with its PF attached, VFs enabled, MACs programmed, and
    each VF's RX ring pre-filled the way a driver would."""
    sim = sim or Simulator()
    iommu = Iommu() if with_iommu else None
    rc = RootComplex(iommu)
    port = Igb82576Port(sim, iommu=iommu)
    rc.attach(port.pf.pci, bus=1, device=0)
    interrupts = []
    port.interrupt_sink = lambda fn, msg: interrupts.append((fn.name, msg.vector))
    vfs = port.enable_vfs(vf_count)
    for i, vf in enumerate(vfs):
        mac = MacAddress(0x020000000010 + i)
        vf.mac = mac
        port.switch.program(mac, i)
        vf.enabled = True
        if iommu is not None:
            table = IoPageTable(domain_id=i + 1)
            table.map(0x0, 0x1000000 * (i + 1), size=DEFAULT_RING_SIZE * 4096)
            iommu.attach(vf.pci.rid, table)
        _fill_rx_ring(vf)
        _configure_msix(vf, base_vector=0x40 + 16 * i)
    return sim, port, vfs, interrupts


def _fill_rx_ring(fn):
    while not fn.rx_ring.full:
        fn.rx_ring.post(fn.rx_ring.tail * 4096, RX_BUFFER_BYTES)


def _configure_msix(fn, base_vector):
    from repro.hw import MsiMessage
    for i in range(2):
        fn.msix.configure(i, MsiMessage(0xFEE00000, base_vector + i))
        fn.msix.unmask(i)


class TestVfLifecycle:
    def test_enable_vfs_assigns_stride_rids(self):
        _, port, vfs, _ = build_port(vf_count=7)
        rids = [vf.pci.rid for vf in vfs]
        assert len(set(rids)) == 7
        stride = port.pf.sriov.vf_stride
        assert all(b - a == stride for a, b in zip(rids, rids[1:]))

    def test_vfs_invisible_to_bus_scan(self):
        _, port, vfs, _ = build_port()
        assert all(not vf.pci.responds_to_scan for vf in vfs)
        assert vfs[0].pci.config.device_id == IGB_VF_DEVICE_ID

    def test_enable_requires_attached_pf(self):
        port = Igb82576Port(Simulator())
        with pytest.raises(RuntimeError):
            port.enable_vfs(2)

    def test_double_enable_rejected(self):
        _, port, _, _ = build_port()
        with pytest.raises(RuntimeError):
            port.enable_vfs(2)

    def test_disable_vfs_resets(self):
        _, port, vfs, _ = build_port()
        port.disable_vfs()
        assert port.vfs == []
        assert not port.pf.sriov.vf_enabled


class TestReceivePath:
    def test_wire_packet_lands_in_owning_vf(self):
        sim, port, vfs, interrupts = build_port()
        packet = Packet(src=MAC_REMOTE, dst=vfs[1].mac)
        port.wire_receive([packet])
        assert vfs[1].rx_packets == 1
        assert vfs[0].rx_packets == 0
        assert interrupts and interrupts[0][0].endswith("vf1")

    def test_ring_exhaustion_drops(self):
        sim, port, vfs, _ = build_port()
        vfs[0].rx_ring.reset()  # empty ring: no descriptors posted
        port.wire_receive([Packet(src=MAC_REMOTE, dst=vfs[0].mac)])
        assert vfs[0].rx_packets == 0
        assert vfs[0].rx_no_desc_drops == 1

    def test_disabled_vf_drops(self):
        sim, port, vfs, _ = build_port()
        vfs[0].enabled = False
        port.wire_receive([Packet(src=MAC_REMOTE, dst=vfs[0].mac)])
        assert vfs[0].rx_packets == 0

    def test_dma_goes_through_iommu(self):
        sim, port, vfs, _ = build_port()
        translations_before = port.iommu.translations
        port.wire_receive([Packet(src=MAC_REMOTE, dst=vfs[0].mac)])
        assert port.iommu.translations == translations_before + 1

    def test_unmapped_buffer_faults_and_drops(self):
        sim, port, vfs, _ = build_port()
        port.iommu.detach(vfs[0].pci.rid)
        port.wire_receive([Packet(src=MAC_REMOTE, dst=vfs[0].mac)])
        assert vfs[0].rx_dma_faults == 1
        assert vfs[0].rx_packets == 0


class TestInterruptThrottle:
    def test_first_request_fires_immediately(self):
        sim = Simulator()
        fired = []
        throttle = InterruptThrottle(sim, lambda: fired.append(sim.now),
                                     interval=1e-3)
        throttle.request()
        sim.run()
        assert fired == [0.0]

    def test_requests_within_interval_coalesce(self):
        sim = Simulator()
        fired = []
        throttle = InterruptThrottle(sim, lambda: fired.append(sim.now),
                                     interval=1e-3)
        throttle.request()
        sim.schedule(1e-4, throttle.request)
        sim.schedule(2e-4, throttle.request)
        sim.run()
        assert fired == [0.0, pytest.approx(1e-3)]

    def test_rate_capped_at_itr_frequency(self):
        sim = Simulator()
        fired = []
        throttle = InterruptThrottle(sim, lambda: fired.append(sim.now),
                                     interval=1e-3)
        t = 0.0
        while t < 0.1:
            sim.schedule_at(t, throttle.request)
            t += 1e-4  # request at 10 kHz against a 1 kHz throttle
        sim.run(until=0.2)
        assert len(fired) == pytest.approx(100, abs=2)

    def test_set_interval_reprograms(self):
        sim = Simulator()
        throttle = InterruptThrottle(sim, lambda: None, interval=1e-3)
        throttle.set_interval(1e-4)
        assert throttle.interval == 1e-4
        with pytest.raises(ValueError):
            throttle.set_interval(-1)

    def test_cancel_clears_pending(self):
        sim = Simulator()
        fired = []
        throttle = InterruptThrottle(sim, lambda: fired.append(sim.now),
                                     interval=1e-3)
        throttle.request()
        sim.step()  # immediate firing
        throttle.request()  # schedules deferred
        throttle.cancel()
        sim.run()
        assert len(fired) == 1


class TestTransmitPath:
    def test_wire_transmit_counts(self):
        sim, port, vfs, _ = build_port()
        packet = Packet(src=vfs[0].mac, dst=MAC_REMOTE)
        sent = vfs[0].hw_transmit([packet])
        assert sent == 1
        assert port.wire_tx_packets == 1
        assert vfs[0].tx_packets == 1

    def test_spoofed_transmit_dropped(self):
        sim, port, vfs, _ = build_port()
        forged = Packet(src=vfs[1].mac, dst=MAC_REMOTE)
        assert vfs[0].hw_transmit([forged]) == 0
        assert vfs[0].tx_spoof_drops == 1

    def test_internal_loopback_delivers_to_peer_vf(self):
        sim, port, vfs, _ = build_port()
        packet = Packet(src=vfs[0].mac, dst=vfs[1].mac)
        vfs[0].hw_transmit([packet])
        sim.run()  # wait out the DMA transfer
        assert vfs[1].rx_packets == 1
        assert port.internal_loopback_packets == 1

    def test_internal_loopback_costs_two_dma_crossings(self):
        sim, port, vfs, _ = build_port()
        before = port.datapath.transferred_bytes.value
        vfs[0].hw_transmit([Packet(src=vfs[0].mac, dst=vfs[1].mac,
                                   size_bytes=1500)])
        assert port.datapath.transferred_bytes.value - before == 3000

    def test_backlogged_datapath_drops(self):
        sim, port, vfs, _ = build_port()
        port.datapath.transfer(int(1e9))  # hog the pipe for seconds
        assert vfs[0].hw_transmit([Packet(src=vfs[0].mac, dst=MAC_REMOTE)]) == 0
        assert vfs[0].tx_backlog_drops == 1

    def test_disabled_vf_does_not_transmit(self):
        sim, port, vfs, _ = build_port()
        vfs[0].enabled = False
        assert vfs[0].hw_transmit([Packet(src=vfs[0].mac, dst=MAC_REMOTE)]) == 0


def test_interrupt_requires_sink():
    sim = Simulator()
    rc = RootComplex()
    port = Igb82576Port(sim)
    rc.attach(port.pf.pci, bus=1, device=0)
    vfs = port.enable_vfs(1)
    vf = vfs[0]
    vf.enabled = True
    vf.mac = MacAddress(0x020000000010)
    port.switch.program(vf.mac, 0)
    _fill_rx_ring(vf)
    _configure_msix(vf, 0x40)
    with pytest.raises(RuntimeError):
        port.wire_receive([Packet(src=MAC_REMOTE, dst=vf.mac)])
