"""Unit tests for doorbell loss, kick/abandon, and the MailboxRetrier."""

import pytest

from repro.devices import Mailbox, MailboxMessage
from repro.devices.mailbox import MailboxRetrier
from repro.sim import Simulator


def make_channel():
    """A VF->PF channel whose PF handler reads and acks synchronously,
    like the real PF driver's doorbell ISR."""
    mailbox = Mailbox(vf_index=0)
    received = []

    def pf_doorbell(message):
        received.append(mailbox.read(Mailbox.PF))
        mailbox.acknowledge(Mailbox.PF)

    mailbox.connect(Mailbox.PF, pf_doorbell)
    mailbox.connect(Mailbox.VF, lambda message: None)
    return mailbox, received


def drop_first(n):
    """A loss hook that eats the first ``n`` doorbells."""
    remaining = [n]

    def hook(sender, message):
        if remaining[0] > 0:
            remaining[0] -= 1
            return True
        return False

    return hook


class TestLossHook:
    def test_lost_doorbell_leaves_message_latched(self):
        mailbox, received = make_channel()
        mailbox.loss_hook = drop_first(1)
        mailbox.send(Mailbox.VF, MailboxMessage("ping"))
        assert received == []
        assert mailbox.pending(Mailbox.PF)
        assert mailbox.dropped_doorbells == 1

    def test_kick_rerings_the_latched_message(self):
        mailbox, received = make_channel()
        mailbox.loss_hook = drop_first(1)
        mailbox.send(Mailbox.VF, MailboxMessage("ping"))
        mailbox.kick(Mailbox.VF)
        assert [m.kind for m in received] == ["ping"]
        assert not mailbox.pending(Mailbox.PF)

    def test_kick_is_a_noop_on_a_clear_channel(self):
        mailbox, received = make_channel()
        mailbox.kick(Mailbox.VF)
        assert received == []

    def test_abandon_clears_a_wedged_channel(self):
        mailbox, received = make_channel()
        mailbox.loss_hook = drop_first(1)
        mailbox.send(Mailbox.VF, MailboxMessage("lost"))
        mailbox.abandon(Mailbox.VF)
        assert not mailbox.pending(Mailbox.PF)
        # The next send is no longer a protocol violation.
        mailbox.send(Mailbox.VF, MailboxMessage("next"))
        assert [m.kind for m in received] == ["next"]

    def test_abandon_is_a_noop_on_a_clear_channel(self):
        mailbox, _ = make_channel()
        mailbox.abandon(Mailbox.VF)


class TestMailboxRetrier:
    def test_happy_path_schedules_no_events(self):
        sim = Simulator()
        mailbox, received = make_channel()
        retrier = MailboxRetrier(sim, mailbox, Mailbox.VF)
        retrier.send(MailboxMessage("hello"))
        assert [m.kind for m in received] == ["hello"]
        assert sim.pending_events == 0
        assert retrier.retries == 0

    def test_transient_loss_is_retried_until_delivered(self):
        sim = Simulator()
        mailbox, received = make_channel()
        mailbox.loss_hook = drop_first(2)
        retrier = MailboxRetrier(sim, mailbox, Mailbox.VF)
        retrier.send(MailboxMessage("hello"))
        assert received == []
        sim.run()
        assert [m.kind for m in received] == ["hello"]
        assert retrier.retries == 2
        assert retrier.abandoned == 0
        assert mailbox.dropped_doorbells == 2
        assert not mailbox.pending(Mailbox.PF)

    def test_backoff_spaces_the_retries_exponentially(self):
        sim = Simulator()
        mailbox, received = make_channel()
        mailbox.loss_hook = drop_first(3)
        retrier = MailboxRetrier(sim, mailbox, Mailbox.VF,
                                 timeout=1e-3, backoff=2.0)
        retrier.send(MailboxMessage("hello"))
        sim.run()
        # Attempts at 1 ms, 3 ms, 7 ms; delivery on the 7 ms re-ring.
        assert sim.now == pytest.approx(7e-3)
        assert [m.kind for m in received] == ["hello"]

    def test_permanent_loss_abandons_after_the_limit(self):
        sim = Simulator()
        mailbox, received = make_channel()
        mailbox.loss_hook = lambda sender, message: True
        retrier = MailboxRetrier(sim, mailbox, Mailbox.VF, limit=4)
        retrier.send(MailboxMessage("doomed"))
        sim.run()
        assert received == []
        assert retrier.retries == 4
        assert retrier.abandoned == 1
        # The channel is clear: recovery can send again.
        mailbox.loss_hook = None
        retrier.send(MailboxMessage("recovered"))
        assert [m.kind for m in received] == ["recovered"]

    def test_overrun_overwrites_the_lost_message(self):
        sim = Simulator()
        mailbox, received = make_channel()
        mailbox.loss_hook = drop_first(2)
        retrier = MailboxRetrier(sim, mailbox, Mailbox.VF)
        retrier.send(MailboxMessage("stale"))
        retrier.send(MailboxMessage("fresh"))
        assert retrier.overruns == 1
        sim.run()
        # Only the newest message survives, as on hardware.
        assert [m.kind for m in received] == ["fresh"]

    def test_constructor_validation(self):
        sim = Simulator()
        mailbox, _ = make_channel()
        with pytest.raises(ValueError):
            MailboxRetrier(sim, mailbox, Mailbox.VF, timeout=0)
        with pytest.raises(ValueError):
            MailboxRetrier(sim, mailbox, Mailbox.VF, limit=-1)
        with pytest.raises(ValueError):
            MailboxRetrier(sim, mailbox, Mailbox.VF, backoff=0.5)
