"""Unit tests for the on-chip L2 switch."""

from repro.devices import L2Switch, SwitchTarget
from repro.net import Packet
from repro.net.mac import MacAddress

MAC_VF0 = MacAddress.parse("02:00:00:00:00:10")
MAC_VF1 = MacAddress.parse("02:00:00:00:00:11")
MAC_PF = MacAddress.parse("02:00:00:00:00:01")
MAC_REMOTE = MacAddress.parse("02:00:00:00:99:99")
BROADCAST = MacAddress.parse("ff:ff:ff:ff:ff:ff")


def make_switch():
    switch = L2Switch()
    switch.program(MAC_PF, SwitchTarget.PF)
    switch.program(MAC_VF0, 0)
    switch.program(MAC_VF1, 1)
    return switch


def test_unicast_classification():
    switch = make_switch()
    packet = Packet(src=MAC_REMOTE, dst=MAC_VF1)
    targets = switch.classify(packet)
    assert targets == [SwitchTarget(1)]


def test_pf_classification():
    switch = make_switch()
    [target] = switch.classify(Packet(src=MAC_REMOTE, dst=MAC_PF))
    assert target.is_pf


def test_unknown_unicast_goes_uplink():
    switch = make_switch()
    [target] = switch.classify(Packet(src=MAC_VF0, dst=MAC_REMOTE))
    assert target.is_uplink
    assert switch.unknown_unicast == 1


def test_broadcast_floods_all_local_functions():
    switch = make_switch()
    targets = switch.classify(Packet(src=MAC_REMOTE, dst=BROADCAST))
    indexes = sorted(t.function_index for t in targets)
    assert indexes == [SwitchTarget.PF, 0, 1]


def test_vlan_scoped_entry():
    switch = L2Switch()
    switch.program(MAC_VF0, 0, vlan=100)
    [hit] = switch.classify(Packet(src=MAC_REMOTE, dst=MAC_VF0, vlan=100))
    assert hit.function_index == 0
    # Different VLAN does not match the VLAN-scoped entry.
    [miss] = switch.classify(Packet(src=MAC_REMOTE, dst=MAC_VF0, vlan=200))
    assert miss.is_uplink


def test_tagged_frame_falls_back_to_untagged_entry():
    switch = make_switch()  # entries programmed untagged
    [hit] = switch.classify(Packet(src=MAC_REMOTE, dst=MAC_VF0, vlan=5))
    assert hit.function_index == 0


def test_antispoof_accepts_own_mac():
    switch = make_switch()
    assert switch.check_transmit(0, Packet(src=MAC_VF0, dst=MAC_REMOTE))
    assert switch.spoofed_drops == 0


def test_antispoof_drops_forged_source():
    switch = make_switch()
    forged = Packet(src=MAC_VF1, dst=MAC_REMOTE)  # VF0 forging VF1's MAC
    assert not switch.check_transmit(0, forged)
    assert switch.spoofed_drops == 1


def test_unprogram_removes_entry():
    switch = make_switch()
    switch.unprogram(MAC_VF0)
    [target] = switch.classify(Packet(src=MAC_REMOTE, dst=MAC_VF0))
    assert target.is_uplink


def test_is_local():
    switch = make_switch()
    assert switch.is_local(MAC_VF0)
    assert switch.is_local(MAC_PF)
    assert not switch.is_local(MAC_REMOTE)


def test_entries_listing():
    switch = make_switch()
    assert len(switch.entries()) == 3


def test_mac_of_function():
    switch = make_switch()
    assert switch.mac_of(0) == MAC_VF0
    assert switch.mac_of(9) is None
