"""Unit tests for the 82599 10 GbE SR-IOV port."""

import pytest

from repro.core import Testbed, TestbedConfig
from repro.devices import Ixgbe82599Port
from repro.devices.ixgbe82599 import IXGBE_PF_DEVICE_ID, IXGBE_TOTAL_VFS
from repro.hw.pcie import RootComplex
from repro.sim import Simulator


def test_constants():
    sim = Simulator()
    port = Ixgbe82599Port(sim)
    assert port.LINE_RATE_BPS == 10e9
    assert port.pf.pci.config.device_id == IXGBE_PF_DEVICE_ID
    assert port.pf.sriov.total_vfs == IXGBE_TOTAL_VFS


def test_sixty_four_vfs_enable_with_unique_rids():
    sim = Simulator()
    rc = RootComplex()
    port = Ixgbe82599Port(sim)
    rc.attach(port.pf.pci, bus=1, device=0)
    vfs = port.enable_vfs(64)
    rids = [vf.pci.rid for vf in vfs]
    assert len(set(rids)) == 64


def test_wider_dma_pipe():
    sim = Simulator()
    port = Ixgbe82599Port(sim)
    # 22 Gb/s one way; inter-VM (two crossings) still clears the line.
    assert port.datapath.throughput_cap_bps(crossings=2) > 10e9


def test_testbed_builds_82599():
    bed = Testbed(TestbedConfig(ports=1, vfs_per_port=32, nic="82599"))
    assert isinstance(bed.ports[0], Ixgbe82599Port)
    assert len(bed.ports[0].vfs) == 32
    assert bed.per_vm_line_share_bps(32) == pytest.approx(9.571e9 / 32,
                                                          rel=0.001)


def test_receive_address_table_covers_all_vfs():
    bed = Testbed(TestbedConfig(ports=1, vfs_per_port=64, nic="82599"))
    port = bed.ports[0]
    # PF in entry 0, VFs in entries 1..64 — all programmed and valid.
    for i in range(65):
        assert port.regs.peek(f"RAH{i}") & (1 << 31)


def test_unknown_nic_family_rejected():
    with pytest.raises(ValueError):
        Testbed(TestbedConfig(nic="82999"))
