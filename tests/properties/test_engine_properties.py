"""Property-based tests for the event engine's ordering guarantees."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Simulator


@given(st.lists(st.floats(min_value=0.0, max_value=100.0,
                          allow_nan=False, allow_infinity=False),
                min_size=1, max_size=200))
@settings(max_examples=200)
def test_events_always_fire_in_nondecreasing_time_order(delays):
    sim = Simulator()
    fired = []
    for delay in delays:
        sim.schedule(delay, lambda: fired.append(sim.now))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)
    assert sim.now == max(delays)


@given(st.lists(st.tuples(st.floats(min_value=0.0, max_value=10.0,
                                    allow_nan=False),
                          st.integers(min_value=0, max_value=4)),
                min_size=1, max_size=100))
@settings(max_examples=100)
def test_same_timestamp_fifo_even_with_duplicates(entries):
    sim = Simulator()
    fired = []
    for index, (delay, bucket) in enumerate(entries):
        # Quantize delays so duplicates are common.
        sim.schedule(round(delay, 1), lambda i=index: fired.append(i))
    sim.run()
    # Among events with equal timestamps, scheduling order is preserved.
    by_time = {}
    for index, (delay, _) in enumerate(entries):
        by_time.setdefault(round(delay, 1), []).append(index)
    position = {event: pos for pos, event in enumerate(fired)}
    for group in by_time.values():
        group_positions = [position[e] for e in group]
        assert group_positions == sorted(group_positions)


@given(st.lists(st.floats(min_value=0.01, max_value=10.0, allow_nan=False),
                min_size=2, max_size=50),
       st.data())
@settings(max_examples=100)
def test_cancellation_removes_only_cancelled_events(delays, data):
    sim = Simulator()
    fired = []
    handles = [sim.schedule(d, lambda i=i: fired.append(i))
               for i, d in enumerate(delays)]
    to_cancel = data.draw(st.sets(st.integers(0, len(delays) - 1)))
    for index in to_cancel:
        handles[index].cancel()
    sim.run()
    assert set(fired) == set(range(len(delays))) - to_cancel
