"""Property-based tests for the AIC equations and coalescing policies."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.costs import CostModel
from repro.drivers import AdaptiveCoalescing, DynamicItr

pps_values = st.floats(min_value=0.0, max_value=5e6, allow_nan=False)


@given(pps_values)
@settings(max_examples=200)
def test_aic_never_allows_buffer_overflow(pps):
    """§5.3's design goal as an invariant: at the chosen frequency,
    packets per interrupt never exceed bufs/r — the buffer size with
    the full redundancy margin left as headroom."""
    costs = CostModel()
    policy = AdaptiveCoalescing(costs)
    hz = policy.frequency_for(pps)
    assert hz >= costs.aic_lif_hz
    packets_per_interrupt = pps / hz
    assert packets_per_interrupt <= costs.aic_bufs / costs.aic_redundancy + 1e-6


@given(pps_values, pps_values)
@settings(max_examples=200)
def test_aic_frequency_monotone_in_pps(a, b):
    policy = AdaptiveCoalescing(CostModel())
    low, high = min(a, b), max(a, b)
    assert policy.frequency_for(low) <= policy.frequency_for(high)


@given(st.integers(min_value=1, max_value=4096),
       st.integers(min_value=1, max_value=4096),
       st.floats(min_value=1.0, max_value=3.0, allow_nan=False))
@settings(max_examples=100)
def test_aic_bufs_is_min_of_both_buffers(ap, dd, r):
    costs = CostModel(aic_ap_bufs=ap, aic_dd_bufs=dd, aic_redundancy=r)
    assert costs.aic_bufs == min(ap, dd)
    # The eq. (2) frequency evaluated directly.
    pps = 100000.0
    expected = max(pps * r / min(ap, dd), costs.aic_lif_hz)
    assert costs.aic_interrupt_hz(pps) == pytest.approx(expected)


@given(pps_values)
@settings(max_examples=100)
def test_dynamic_itr_bounded(pps):
    policy = DynamicItr(target_packets_per_interrupt=9, max_hz=9000,
                        min_hz=500)
    hz = policy.frequency_for(pps)
    assert 500 <= hz <= 9000


@given(pps_values, pps_values)
@settings(max_examples=100)
def test_dynamic_itr_monotone(a, b):
    policy = DynamicItr()
    low, high = min(a, b), max(a, b)
    assert policy.frequency_for(low) <= policy.frequency_for(high)
