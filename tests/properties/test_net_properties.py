"""Property-based tests for networking invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.devices import L2Switch, SwitchTarget
from repro.net import Packet, PacketBuffer, udp_goodput_bps, wire_bytes
from repro.net.mac import MacAddress
from repro.net.packet import packets_per_second, tcp_goodput_bps
from repro.net.tcp import TcpThroughputModel

# Unicast only: multicast destinations flood, by design.
macs = st.integers(min_value=1, max_value=(1 << 48) - 2).map(
    lambda v: MacAddress(v & ~(1 << 40)))


@given(st.integers(min_value=100, max_value=9000))
@settings(max_examples=100)
def test_goodput_strictly_below_line_rate(mtu):
    line = 1e9
    assert 0 < udp_goodput_bps(line, mtu) < line
    assert tcp_goodput_bps(line, mtu) < udp_goodput_bps(line, mtu)


@given(st.floats(min_value=1e6, max_value=1e10, allow_nan=False),
       st.integers(min_value=200, max_value=9000))
@settings(max_examples=100)
def test_pps_throughput_roundtrip(throughput, mtu):
    pps = packets_per_second(throughput, mtu)
    payload = mtu - 28
    assert pps * payload * 8 == pytest.approx(throughput)


@given(st.integers(min_value=1, max_value=9000))
def test_wire_bytes_monotone(size):
    assert wire_bytes(size + 1) == wire_bytes(size) + 1
    assert wire_bytes(size, vlan=5) == wire_bytes(size) + 4


@given(st.floats(min_value=0, max_value=0.1, allow_nan=False),
       st.floats(min_value=0, max_value=0.1, allow_nan=False))
@settings(max_examples=100)
def test_tcp_throughput_monotone_nonincreasing_in_delay(a, b):
    model = TcpThroughputModel()
    low, high = min(a, b), max(a, b)
    assert (model.throughput_bps(1e9, low)
            >= model.throughput_bps(1e9, high))


@given(st.lists(st.integers(min_value=0, max_value=200), min_size=1,
                max_size=50),
       st.integers(min_value=1, max_value=64))
@settings(max_examples=100)
def test_buffer_conservation(burst_sizes, capacity):
    """enqueued + dropped == offered, and depth never exceeds capacity."""
    src, dst = MacAddress(1), MacAddress(2)
    buffer = PacketBuffer(capacity)
    offered = 0
    for size in burst_sizes:
        burst = [Packet(src=src, dst=dst) for _ in range(size)]
        offered += size
        buffer.push_burst(burst)
        assert len(buffer) <= capacity
        if size and len(buffer) > capacity // 2:
            buffer.pop_burst(capacity // 2)
    stats = buffer.stats
    assert stats.enqueued + stats.dropped == offered
    assert stats.dequeued + len(buffer) == stats.enqueued


@given(st.lists(st.tuples(macs, st.integers(min_value=0, max_value=6)),
                min_size=1, max_size=30, unique_by=lambda t: t[0]))
@settings(max_examples=100)
def test_switch_classification_is_deterministic_and_complete(entries):
    switch = L2Switch()
    for mac, fn in entries:
        switch.program(mac, fn)
    src = MacAddress((1 << 41) | 7)  # unicast source
    for mac, fn in entries:
        [target] = switch.classify(Packet(src=src, dst=mac))
        assert target.function_index == fn
        # Classification is repeatable.
        [again] = switch.classify(Packet(src=src, dst=mac))
        assert again == target
