"""Property-based tests for the LAPIC state machine."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw import Lapic, LapicError

vectors = st.integers(min_value=32, max_value=255)


@given(st.lists(st.tuples(st.sampled_from(["fire", "ack", "eoi"]), vectors),
                min_size=1, max_size=100))
@settings(max_examples=200)
def test_lapic_never_double_services_and_always_drains(script):
    lapic = Lapic()
    fired = set()
    for op, vector in script:
        if op == "fire":
            lapic.fire(vector)
            fired.add(vector)
        elif op == "ack":
            if lapic.interrupt_window_open:
                accepted = lapic.ack()
                # A vector can only be accepted if it was requested.
                assert accepted in fired or lapic.isr_contains(accepted)
        else:
            lapic.eoi()
        # Invariant: IRR/ISR only ever contain vectors that were fired.
        # (A vector MAY be in both at once: the IRR latches the next
        # occurrence while the first is still being serviced.)
        for v in lapic.in_service_vectors() + lapic.pending_vectors():
            assert v in fired
    # Drain: acking+EOIing everything empties the APIC.
    for _ in range(600):
        if lapic.interrupt_window_open:
            lapic.ack()
        elif lapic.in_service is not None:
            lapic.eoi()
        elif lapic.highest_pending is None:
            break
    assert lapic.pending_vectors() == [] or lapic.highest_pending is None
    assert lapic.in_service_vectors() == []


@given(st.sets(vectors, min_size=1, max_size=20))
@settings(max_examples=100)
def test_delivery_order_is_priority_order(pending):
    lapic = Lapic()
    for vector in pending:
        lapic.fire(vector)
    delivered = []
    while lapic.highest_pending is not None:
        delivered.append(lapic.ack())
        lapic.eoi()
    # Within each batch the APIC picks strictly descending vectors.
    assert delivered == sorted(pending, reverse=True)
