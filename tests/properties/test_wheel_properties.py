"""Property tests for the timer-wheel tier against the heap's ordering.

The wheel is a fast path only: the engine must fire events in exactly
(time, seq) order whether an entry sat in a wheel bucket, the heap, or
moved between them — including ties, cancellations, and times that
straddle the wheel's horizon.  The reference model is a plain stable
sort of the schedule calls.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Simulator
from repro.sim.wheel import DEFAULT_NSLOTS, DEFAULT_WIDTH, FAR_SLOT, TimerWheel


class _FakeHandle:
    __slots__ = ("cancelled",)

    def __init__(self):
        self.cancelled = False


# Delays spanning well inside the wheel window (~0.26 s), around its
# horizon, and far beyond it, quantized so ties are common.
_delays = st.lists(
    st.one_of(
        st.floats(min_value=0.0, max_value=0.01, allow_nan=False),
        st.floats(min_value=0.2, max_value=0.3, allow_nan=False),
        st.floats(min_value=1.0, max_value=5.0, allow_nan=False),
    ).map(lambda d: round(d, 4)),
    min_size=1, max_size=120)


@given(_delays)
@settings(max_examples=150)
def test_wheel_and_heap_agree_on_global_order_with_ties(delays):
    sim = Simulator()
    fired = []
    for index, delay in enumerate(delays):
        sim.schedule(delay, lambda i=index: fired.append(i))
    sim.run()
    expected = [i for _, i in sorted((d, i) for i, d in enumerate(delays))]
    assert fired == expected


@given(_delays, st.data())
@settings(max_examples=100)
def test_wheel_and_heap_agree_under_cancellation(delays, data):
    sim = Simulator()
    fired = []
    handles = [sim.schedule(d, lambda i=i: fired.append(i))
               for i, d in enumerate(delays)]
    cancelled = data.draw(st.sets(st.integers(0, len(delays) - 1)))
    for index in cancelled:
        handles[index].cancel()
    sim.run()
    expected = [i for _, i in sorted((d, i) for i, d in enumerate(delays))
                if i not in cancelled]
    assert fired == expected


@given(_delays)
@settings(max_examples=100)
def test_rescheduling_from_callbacks_preserves_order(delays):
    """Events scheduled while running (the periodic-timer shape) still
    interleave correctly with everything already queued."""
    sim = Simulator()
    fired = []

    def fire_and_rearm(i, d):
        fired.append(sim.now)
        if d > 0.001:
            sim.schedule(d / 2, fire_and_rearm, i, d / 2)

    for index, delay in enumerate(delays):
        sim.schedule(delay, fire_and_rearm, index, delay)
    sim.run()
    assert fired == sorted(fired)


@given(st.lists(st.floats(min_value=1e-6, max_value=0.25,
                          allow_nan=False),
                min_size=1, max_size=80))
@settings(max_examples=100)
def test_wheel_buckets_drain_in_slot_order_and_sorted(times):
    wheel = TimerWheel()
    accepted = []
    for seq, time in enumerate(times):
        entry = (time, seq, _FakeHandle())
        if wheel.try_insert(0.0, time, entry):
            accepted.append(entry)
    drained = []
    while wheel.count:
        bucket = wheel.load()
        # Every entry in one bucket shares one absolute slot.
        slots = {int(t * wheel.inv_width) for t, _, _ in bucket}
        assert len(slots) <= 1
        assert bucket == sorted(bucket, key=lambda e: (e[0], e[1]))
        drained.extend(bucket)
    assert sorted(drained, key=lambda e: (e[0], e[1])) == sorted(
        accepted, key=lambda e: (e[0], e[1]))
    assert drained == sorted(drained, key=lambda e: (e[0], e[1]))
    assert wheel.next_slot == FAR_SLOT


@given(st.lists(st.floats(min_value=1e-6, max_value=0.25,
                          allow_nan=False),
                min_size=1, max_size=80),
       st.data())
@settings(max_examples=100)
def test_wheel_compact_drops_exactly_the_cancelled_entries(times, data):
    wheel = TimerWheel()
    entries = []
    for seq, time in enumerate(times):
        entry = (time, seq, _FakeHandle())
        if wheel.try_insert(0.0, time, entry):
            entries.append(entry)
    cancelled = data.draw(st.sets(
        st.integers(0, len(entries) - 1))) if entries else set()
    for index in cancelled:
        entries[index][2].cancelled = True
    wheel.compact()
    kept = [e for i, e in enumerate(entries) if i not in cancelled]
    assert wheel.count == len(kept)
    if kept:
        first = min(int(t * wheel.inv_width) for t, _, _ in kept)
        assert wheel.next_slot == first
    else:
        assert wheel.next_slot == FAR_SLOT


def test_wheel_rejects_current_slot_past_horizon_and_resnaps():
    wheel = TimerWheel(width=DEFAULT_WIDTH, nslots=DEFAULT_NSLOTS)
    horizon = wheel.horizon
    # Past the horizon: heap's problem.
    assert not wheel.try_insert(0.0, horizon, (horizon, 0, _FakeHandle()))
    # Inside the engine's current (partially drained) slot: heap's too.
    assert not wheel.try_insert(0.0, 0.0, (0.0, 1, _FakeHandle()))
    # Empty wheel re-snaps its window to "now" so a long heap-only
    # stretch cannot strand the horizon in the past.
    late = 10 * horizon
    entry = (late + DEFAULT_WIDTH * 2, 2, _FakeHandle())
    assert wheel.try_insert(late, entry[0], entry)
    assert wheel.count == 1
