"""Property tests for the timer-wheel tier against the heap's ordering.

The wheel is a fast path only: the engine must fire events in exactly
(time, seq) order whether an entry sat in a wheel bucket, the heap, or
moved between them — including ties, cancellations, and times that
straddle the wheel's horizon.  The reference model is a plain stable
sort of the schedule calls.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Simulator
from repro.sim.wheel import DEFAULT_NSLOTS, DEFAULT_WIDTH, FAR_SLOT, TimerWheel


class _FakeHandle:
    __slots__ = ("cancelled",)

    def __init__(self):
        self.cancelled = False


# Delays spanning well inside the wheel window (~0.26 s), around its
# horizon, and far beyond it, quantized so ties are common.
_delays = st.lists(
    st.one_of(
        st.floats(min_value=0.0, max_value=0.01, allow_nan=False),
        st.floats(min_value=0.2, max_value=0.3, allow_nan=False),
        st.floats(min_value=1.0, max_value=5.0, allow_nan=False),
    ).map(lambda d: round(d, 4)),
    min_size=1, max_size=120)


def _boundary_time(slot_index: int, nudge: int) -> float:
    """An exact slot boundary ``slot_index * width``, or its adjacent
    float one ulp below/above (``nudge`` -1/0/+1) — the times where
    ``int(time * inv_width)`` and the horizon comparison are most likely
    to round differently."""
    time = slot_index * DEFAULT_WIDTH
    if nudge < 0:
        return math.nextafter(time, 0.0)
    if nudge > 0:
        return math.nextafter(time, math.inf)
    return time


# Delays that hammer slot-rollover and horizon boundaries: exact
# multiples of the slot width (including the horizon slot DEFAULT_NSLOTS
# and its neighbours) and their one-ulp float neighbours.
_boundary_delays = st.lists(
    st.tuples(
        st.one_of(
            st.integers(min_value=0, max_value=8),
            st.integers(min_value=DEFAULT_NSLOTS - 3,
                        max_value=DEFAULT_NSLOTS + 3),
            st.integers(min_value=0, max_value=2 * DEFAULT_NSLOTS),
        ),
        st.integers(min_value=-1, max_value=1),
    ).map(lambda pair: _boundary_time(*pair)),
    min_size=1, max_size=120)


@given(_delays)
@settings(max_examples=150)
def test_wheel_and_heap_agree_on_global_order_with_ties(delays):
    sim = Simulator()
    fired = []
    for index, delay in enumerate(delays):
        sim.schedule(delay, lambda i=index: fired.append(i))
    sim.run()
    expected = [i for _, i in sorted((d, i) for i, d in enumerate(delays))]
    assert fired == expected


@given(_boundary_delays)
@settings(max_examples=150)
def test_boundary_times_fire_in_exact_global_order(delays):
    """Times at (and one ulp around) slot-rollover and horizon
    boundaries still fire in exact (time, seq) order — the wheel/heap
    split at those times must never reorder or delay an event."""
    sim = Simulator()
    fired = []
    for index, delay in enumerate(delays):
        sim.schedule(delay, lambda i=index: fired.append(i))
    sim.run()
    expected = [i for _, i in sorted((d, i) for i, d in enumerate(delays))]
    assert fired == expected


@given(_boundary_delays, _boundary_delays)
@settings(max_examples=100)
def test_boundary_times_rescheduled_mid_run_keep_order(first, second):
    """A second wave of boundary times scheduled from a callback (after
    the wheel's window has rotated to a non-zero base) interleaves
    exactly; the re-snapped window must reject horizon-slot rounding the
    same way the initial one does."""
    sim = Simulator()
    fired = []

    def arm_second_wave():
        for delay in second:
            sim.schedule(delay, lambda t=sim.now + delay: fired.append(t))

    for delay in first:
        sim.schedule(delay, lambda t=delay: fired.append(t))
    trigger = 3.5 * DEFAULT_WIDTH  # mid-slot, after a few rotations
    sim.schedule(trigger, arm_second_wave)
    sim.run()
    assert fired == sorted(fired)


@given(_boundary_delays)
@settings(max_examples=150)
def test_wheel_never_accepts_a_slot_outside_the_open_window(delays):
    """The documented invariant, directly: every accepted entry's slot
    lies strictly inside ``(base, base + nslots)``.  A sub-horizon float
    whose slot rounds up to ``base + nslots`` would alias a
    window-interior bucket and fire a rotation late."""
    wheel = TimerWheel()
    for seq, time in enumerate(sorted(delays)):
        entry = (time, seq, _FakeHandle())
        base = wheel.base
        if wheel.try_insert(0.0, time, entry):
            slot = int(time * wheel.inv_width)
            assert base < slot < base + wheel.nslots


def test_sub_horizon_float_rounding_into_horizon_slot_goes_to_heap():
    """Regression: a time strictly below ``horizon`` whose
    ``time * inv_width`` rounds into the horizon slot itself must be
    rejected (the old wheel accepted it into the bucket aliasing
    ``base``'s index, a rotation early in index space)."""
    wheel = TimerWheel(width=1e-4, nslots=2)
    start = 12.4992  # empty-wheel insert re-snaps base to 124992
    time = 12.4994
    base = int(start * wheel.inv_width)
    assert time < (base + wheel.nslots) * wheel.width  # below the horizon...
    assert int(time * wheel.inv_width) >= base + wheel.nslots  # ...yet rounds in
    assert not wheel.try_insert(start, time, (time, 0, _FakeHandle()))
    assert wheel.count == 0


@given(_delays, st.data())
@settings(max_examples=100)
def test_wheel_and_heap_agree_under_cancellation(delays, data):
    sim = Simulator()
    fired = []
    handles = [sim.schedule(d, lambda i=i: fired.append(i))
               for i, d in enumerate(delays)]
    cancelled = data.draw(st.sets(st.integers(0, len(delays) - 1)))
    for index in cancelled:
        handles[index].cancel()
    sim.run()
    expected = [i for _, i in sorted((d, i) for i, d in enumerate(delays))
                if i not in cancelled]
    assert fired == expected


@given(_delays)
@settings(max_examples=100)
def test_rescheduling_from_callbacks_preserves_order(delays):
    """Events scheduled while running (the periodic-timer shape) still
    interleave correctly with everything already queued."""
    sim = Simulator()
    fired = []

    def fire_and_rearm(i, d):
        fired.append(sim.now)
        if d > 0.001:
            sim.schedule(d / 2, fire_and_rearm, i, d / 2)

    for index, delay in enumerate(delays):
        sim.schedule(delay, fire_and_rearm, index, delay)
    sim.run()
    assert fired == sorted(fired)


@given(st.lists(st.floats(min_value=1e-6, max_value=0.25,
                          allow_nan=False),
                min_size=1, max_size=80))
@settings(max_examples=100)
def test_wheel_buckets_drain_in_slot_order_and_sorted(times):
    wheel = TimerWheel()
    accepted = []
    for seq, time in enumerate(times):
        entry = (time, seq, _FakeHandle())
        if wheel.try_insert(0.0, time, entry):
            accepted.append(entry)
    drained = []
    while wheel.count:
        bucket = wheel.load()
        # Every entry in one bucket shares one absolute slot.
        slots = {int(t * wheel.inv_width) for t, _, _ in bucket}
        assert len(slots) <= 1
        assert bucket == sorted(bucket, key=lambda e: (e[0], e[1]))
        drained.extend(bucket)
    assert sorted(drained, key=lambda e: (e[0], e[1])) == sorted(
        accepted, key=lambda e: (e[0], e[1]))
    assert drained == sorted(drained, key=lambda e: (e[0], e[1]))
    assert wheel.next_slot == FAR_SLOT


@given(st.lists(st.floats(min_value=1e-6, max_value=0.25,
                          allow_nan=False),
                min_size=1, max_size=80),
       st.data())
@settings(max_examples=100)
def test_wheel_compact_drops_exactly_the_cancelled_entries(times, data):
    wheel = TimerWheel()
    entries = []
    for seq, time in enumerate(times):
        entry = (time, seq, _FakeHandle())
        if wheel.try_insert(0.0, time, entry):
            entries.append(entry)
    cancelled = data.draw(st.sets(
        st.integers(0, len(entries) - 1))) if entries else set()
    for index in cancelled:
        entries[index][2].cancelled = True
    wheel.compact()
    kept = [e for i, e in enumerate(entries) if i not in cancelled]
    assert wheel.count == len(kept)
    if kept:
        first = min(int(t * wheel.inv_width) for t, _, _ in kept)
        assert wheel.next_slot == first
    else:
        assert wheel.next_slot == FAR_SLOT


def test_wheel_rejects_current_slot_past_horizon_and_resnaps():
    wheel = TimerWheel(width=DEFAULT_WIDTH, nslots=DEFAULT_NSLOTS)
    horizon = wheel.horizon
    # Past the horizon: heap's problem.
    assert not wheel.try_insert(0.0, horizon, (horizon, 0, _FakeHandle()))
    # Inside the engine's current (partially drained) slot: heap's too.
    assert not wheel.try_insert(0.0, 0.0, (0.0, 1, _FakeHandle()))
    # Empty wheel re-snaps its window to "now" so a long heap-only
    # stretch cannot strand the horizon in the past.
    late = 10 * horizon
    entry = (late + DEFAULT_WIDTH * 2, 2, _FakeHandle())
    assert wheel.try_insert(late, entry[0], entry)
    assert wheel.count == 1
