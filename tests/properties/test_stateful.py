"""Rule-based stateful property tests (hypothesis state machines)."""

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)
from hypothesis import strategies as st

from repro.drivers import BondingDriver
from repro.hw import DescriptorRing, RingFullError
from repro.net import Packet
from repro.net.mac import MacAddress
from repro.sim import Simulator
from tests.drivers.test_bonding import FakeSlave


class RingMachine(RuleBasedStateMachine):
    """The descriptor ring under an arbitrary interleaving of driver
    posts, device consumption, and driver reaping."""

    def __init__(self):
        super().__init__()
        self.ring = DescriptorRing(16)
        self.posted = 0
        self.consumed = 0
        self.reaped = 0

    @rule()
    def post(self):
        if self.ring.full:
            try:
                self.ring.post(0x1000, 2048)
                raise AssertionError("post on full ring must raise")
            except RingFullError:
                pass
        else:
            self.ring.post(0x1000 * self.posted, 2048)
            self.posted += 1

    @rule()
    def consume(self):
        slot = self.ring.consume()
        if slot is not None:
            self.consumed += 1
            assert slot.done

    @rule(limit=st.integers(min_value=0, max_value=20))
    def reap(self, limit):
        self.reaped += len(self.ring.reap(limit=limit))

    @rule()
    def reset(self):
        self.ring.reset()
        # After reset everything returns to software and the counts of
        # in-flight work become unreachable; resynchronize the model.
        self.posted = self.ring.posted
        self.consumed = self.ring.completed
        self.reaped = self.consumed

    @invariant()
    def occupancy_conserved(self):
        assert self.ring.free + self.ring.device_owned == self.ring.size - 1
        assert 0 <= self.ring.device_owned < self.ring.size

    @invariant()
    def pipeline_ordering(self):
        assert self.reaped <= self.consumed <= self.posted


class BondMachine(RuleBasedStateMachine):
    """The active-backup bond under arbitrary carrier flaps, releases
    and re-enslavements."""

    SLAVES = ["vf0", "eth0", "eth1"]

    def __init__(self):
        super().__init__()
        self.bond = BondingDriver(Simulator())
        self.devices = {}

    @rule(name=st.sampled_from(SLAVES))
    def enslave(self, name):
        if name in self.bond.slaves():
            return
        device = FakeSlave(name)
        self.devices[name] = device
        self.bond.enslave(device)

    @rule(name=st.sampled_from(SLAVES))
    def release(self, name):
        if name in self.bond.slaves():
            self.bond.release(name)
            del self.devices[name]

    @rule(name=st.sampled_from(SLAVES), up=st.booleans())
    def flap_carrier(self, name, up):
        if name in self.devices:
            self.devices[name].set_carrier(up)
            self.bond.carrier_changed(name)

    @rule()
    def transmit(self):
        src, dst = MacAddress(1), MacAddress(2)
        burst = [Packet(src=src, dst=dst)]
        sent = self.bond.transmit(burst)
        if self.bond.active_slave is None:
            assert sent == 0
        else:
            assert sent == 1

    @invariant()
    def active_slave_always_valid(self):
        active = self.bond.active_slave
        if active is not None:
            assert active in self.bond.slaves()
            assert self.devices[active].carrier

    @invariant()
    def never_idle_while_a_slave_has_carrier(self):
        if self.bond.active_slave is None:
            assert not any(d.carrier for d in self.devices.values())


TestRingMachine = RingMachine.TestCase
TestRingMachine.settings = settings(max_examples=60, stateful_step_count=50)
TestBondMachine = BondMachine.TestCase
TestBondMachine.settings = settings(max_examples=60, stateful_step_count=50)
