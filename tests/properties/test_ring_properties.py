"""Property-based tests for descriptor-ring invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw import DescriptorRing, RingFullError


@st.composite
def ring_operations(draw):
    """A ring size and a random post/consume/reap operation script."""
    size = draw(st.sampled_from([2, 4, 8, 16, 64]))
    ops = draw(st.lists(st.sampled_from(["post", "consume", "reap"]),
                        min_size=1, max_size=200))
    return size, ops


@given(ring_operations())
@settings(max_examples=200)
def test_ring_invariants_hold_under_any_schedule(scenario):
    size, ops = scenario
    ring = DescriptorRing(size)
    posted = consumed = reaped = 0
    for op in ops:
        if op == "post":
            if ring.full:
                try:
                    ring.post(0x1000, 2048)
                    assert False, "post on full ring must raise"
                except RingFullError:
                    pass
            else:
                ring.post(0x1000 * posted, 2048)
                posted += 1
        elif op == "consume":
            slot = ring.consume()
            if slot is not None:
                consumed += 1
        else:
            reaped += len(ring.reap())
        # Invariants after every step:
        assert 0 <= ring.device_owned <= size - 1
        assert ring.free + ring.device_owned == size - 1
        assert consumed <= posted
        assert reaped <= consumed
    # Conservation: counters match our local bookkeeping.
    assert ring.posted == posted
    assert ring.completed == consumed


@given(st.integers(min_value=0, max_value=300))
@settings(max_examples=50)
def test_reap_returns_exactly_what_was_consumed(n):
    ring = DescriptorRing(64)
    total_reaped = 0
    remaining = n
    while remaining > 0:
        batch = min(remaining, 63)
        for i in range(batch):
            ring.post(0x1000 * i, 2048)
        for _ in range(batch):
            ring.consume()
        total_reaped += len(ring.reap())
        remaining -= batch
    assert total_reaped == n
