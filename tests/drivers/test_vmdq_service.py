"""Unit tests for the VMDq dom0 service path."""

import pytest

from repro.core import Testbed, TestbedConfig
from repro.net import Packet
from repro.net.mac import MacAddress

SRC = MacAddress.parse("02:00:00:00:99:99")


def build(vm_count):
    bed = Testbed(TestbedConfig(ports=1))
    guests = [bed.add_vmdq_guest() for _ in range(vm_count)]
    return bed, guests


def send_to(bed, guest, n):
    burst = [Packet(src=SRC, dst=guest.netfront.mac) for _ in range(n)]
    bed._vmdq_port.wire_receive(burst)


def test_first_seven_guests_get_dedicated_queues():
    bed, guests = build(9)
    assert bed.vmdq_service.dedicated_guest_count == 7


def test_dedicated_guest_receives_packets():
    bed, guests = build(3)
    send_to(bed, guests[0], 10)
    bed.sim.run()
    assert guests[0].app.rx_packets == 10
    assert bed.vmdq_service.delivered_packets == 10


def test_fallback_guest_still_served():
    bed, guests = build(9)
    send_to(bed, guests[8], 5)  # guest 8 is on the default queue
    bed.sim.run()
    assert guests[8].app.rx_packets == 5


def test_fallback_costs_more_than_dedicated():
    bed, guests = build(9)
    service = bed.vmdq_service
    assert (service.cycles_per_packet(dedicated=False)
            > service.cycles_per_packet(dedicated=True))


def test_dom0_charged_for_copies():
    bed, guests = build(2)
    bed.platform.start_measurement()
    send_to(bed, guests[0], 10)
    bed.sim.run()
    assert bed.platform.machine.cycles("dom0") > 0


def test_unknown_mac_dropped():
    bed, guests = build(1)
    burst = [Packet(src=SRC, dst=MacAddress(0x02FFFFFFFFFF))]
    bed._vmdq_port.wire_receive(burst)
    bed.sim.run()
    assert bed.vmdq_service.dropped_packets == 1


def test_default_queue_single_thread_saturates():
    """Fallback guests all share one service thread; flooding them
    produces drops while dedicated guests keep flowing."""
    bed, guests = build(9)
    fallback = guests[8]
    for _ in range(3000):
        send_to(bed, fallback, 20)
    bed.sim.run(until=0.05)
    assert bed.vmdq_service.dropped_packets > 0


def test_unregister_releases_queue():
    bed, guests = build(8)
    service = bed.vmdq_service
    assert service.dedicated_guest_count == 7
    service.unregister_guest(guests[0].netfront, guests[0].netfront.mac)
    assert bed._vmdq_port.dedicated_queues_available == 1
