"""Unit tests for NAPI polling and the netserver app model."""

import pytest

from repro.core.costs import CostModel
from repro.drivers import NapiContext, NetserverApp
from repro.hw import DescriptorRing
from repro.net import Packet
from repro.net.mac import MacAddress

SRC = MacAddress(0x020000000001)
DST = MacAddress(0x020000000002)


def loaded_ring(count):
    ring = DescriptorRing(256)
    for i in range(count):
        ring.post(i * 4096, 2048)
    for _ in range(count):
        ring.consume(Packet(src=SRC, dst=DST))
    return ring


class TestNapi:
    def test_poll_respects_budget(self):
        napi = NapiContext(budget=64)
        ring = loaded_ring(100)
        first = napi.poll(ring)
        assert len(first) == 64
        assert napi.exhausted_polls == 1
        second = napi.poll(ring)
        assert len(second) == 36

    def test_poll_all_drains(self):
        napi = NapiContext(budget=64)
        ring = loaded_ring(200)
        collected = napi.poll_all(ring)
        assert len(collected) == 200
        assert napi.polls == 4  # 64+64+64+8
        assert napi.packets == 200

    def test_budget_validated(self):
        with pytest.raises(ValueError):
            NapiContext(budget=0)


class TestNetserverApp:
    def make_burst(self, n):
        return [Packet(src=SRC, dst=DST, size_bytes=1500) for _ in range(n)]

    def test_small_batch_fully_accepted(self):
        app = NetserverApp(CostModel())
        accepted, dropped = app.deliver(self.make_burst(40), now=0.0)
        assert (accepted, dropped) == (40, 0)
        assert app.rx_packets == 40

    def test_batch_capacity_is_bufs_times_r(self):
        costs = CostModel()
        app = NetserverApp(costs)
        assert app.batch_capacity == int(64 * 1.2)

    def test_oversized_batch_drops_excess(self):
        """The Fig. 10 mechanism: a 1 kHz interrupt delivering a full
        line-rate second's 81 packets overflows the 76-packet sink."""
        app = NetserverApp(CostModel())
        accepted, dropped = app.deliver(self.make_burst(81), now=0.0)
        assert accepted == 76
        assert dropped == 5
        assert app.loss_rate == pytest.approx(5 / 81)

    def test_throughput_counts_payload(self):
        app = NetserverApp(CostModel())
        app.deliver(self.make_burst(10), now=0.0)
        # 10 x 1472 payload bytes over 1 ms.
        assert app.throughput_bps(1e-3) == pytest.approx(10 * 1472 * 8 / 1e-3)

    def test_reset(self):
        app = NetserverApp(CostModel())
        app.deliver(self.make_burst(10), now=0.0)
        app.reset()
        assert app.rx_packets == 0
        assert app.throughput_bps(1.0) == 0.0
        assert app.loss_rate == 0.0
