"""Unit tests for the §4.2 multicast subscription flow."""

import pytest

from repro.core import Testbed, TestbedConfig
from repro.net import Packet
from repro.net.mac import MacAddress
from repro.vmm import DomainKind

REMOTE = MacAddress.parse("02:00:00:00:99:99")
GROUP_A = MacAddress.parse("01:00:5e:00:00:01")
GROUP_B = MacAddress.parse("01:00:5e:00:00:02")
BROADCAST = MacAddress.parse("ff:ff:ff:ff:ff:ff")


def build():
    bed = Testbed(TestbedConfig(ports=1))
    a = bed.add_sriov_guest(DomainKind.HVM)
    b = bed.add_sriov_guest(DomainKind.HVM)
    return bed, a, b


def send(bed, dst, n=1):
    bed.ports[0].wire_receive([Packet(src=REMOTE, dst=dst)
                               for _ in range(n)])
    bed.sim.run(until=bed.sim.now + 0.01)


def test_multicast_delivers_to_subscribers_only():
    bed, a, b = build()
    a.driver.request_multicast([GROUP_A])
    send(bed, GROUP_A, 3)
    assert a.app.rx_packets == 3
    assert b.app.rx_packets == 0


def test_unsubscribed_group_dropped():
    bed, a, b = build()
    send(bed, GROUP_A, 2)
    assert a.app.rx_packets == 0
    assert b.app.rx_packets == 0


def test_multiple_subscribers_all_receive():
    bed, a, b = build()
    a.driver.request_multicast([GROUP_A])
    b.driver.request_multicast([GROUP_A, GROUP_B])
    send(bed, GROUP_A)
    send(bed, GROUP_B)
    assert a.app.rx_packets == 1
    assert b.app.rx_packets == 2


def test_new_list_replaces_old():
    """The mailbox message carries the *full* list; re-requesting with
    a different list drops the old subscriptions."""
    bed, a, b = build()
    a.driver.request_multicast([GROUP_A])
    a.driver.request_multicast([GROUP_B])
    send(bed, GROUP_A)
    send(bed, GROUP_B)
    assert a.app.rx_packets == 1  # only GROUP_B now


def test_broadcast_still_floods_everyone():
    bed, a, b = build()
    send(bed, BROADCAST)
    assert a.app.rx_packets == 1
    assert b.app.rx_packets == 1


def test_request_logged_for_pf_inspection():
    bed, a, b = build()
    a.driver.request_multicast([GROUP_A])
    assert "set_multicast" in bed.pf_drivers[0].vf_requests[a.vf.index]


def test_unicast_address_rejected_for_subscription():
    bed, a, b = build()
    with pytest.raises(ValueError):
        bed.ports[0].switch.subscribe_multicast(0, REMOTE)
