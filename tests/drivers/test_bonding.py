"""Unit tests for the bonding driver."""

import pytest

from repro.drivers import BondingDriver
from repro.drivers.bonding import SlaveDevice
from repro.net import Packet
from repro.net.mac import MacAddress
from repro.sim import Simulator

SRC = MacAddress(0x020000000001)
DST = MacAddress(0x020000000002)


class FakeSlave(SlaveDevice):
    def __init__(self, name, carrier=True):
        self._name = name
        self._carrier = carrier
        self.sent = []

    @property
    def slave_name(self):
        return self._name

    @property
    def carrier(self):
        return self._carrier

    def set_carrier(self, on):
        self._carrier = on

    def transmit(self, burst):
        self.sent.extend(burst)
        return len(burst)


def burst(n=3):
    return [Packet(src=SRC, dst=DST) for _ in range(n)]


def test_first_carrier_slave_becomes_active():
    bond = BondingDriver(Simulator())
    vf = FakeSlave("vf0")
    bond.enslave(vf)
    bond.enslave(FakeSlave("eth0"))
    assert bond.active_slave == "vf0"


def test_transmit_goes_through_active_only():
    bond = BondingDriver(Simulator())
    vf, pv = FakeSlave("vf0"), FakeSlave("eth0")
    bond.enslave(vf)
    bond.enslave(pv)
    bond.transmit(burst(3))
    assert len(vf.sent) == 3
    assert pv.sent == []


def test_carrier_loss_fails_over():
    bond = BondingDriver(Simulator())
    vf, pv = FakeSlave("vf0"), FakeSlave("eth0")
    bond.enslave(vf)
    bond.enslave(pv)
    vf.set_carrier(False)
    bond.carrier_changed("vf0")
    assert bond.active_slave == "eth0"
    bond.transmit(burst(2))
    assert len(pv.sent) == 2


def test_release_active_slave_fails_over():
    bond = BondingDriver(Simulator())
    vf, pv = FakeSlave("vf0"), FakeSlave("eth0")
    bond.enslave(vf)
    bond.enslave(pv)
    bond.release("vf0")
    assert bond.active_slave == "eth0"
    assert "vf0" not in bond.slaves()


def test_no_active_slave_drops():
    bond = BondingDriver(Simulator())
    down = FakeSlave("vf0", carrier=False)
    bond.enslave(down)
    assert bond.active_slave is None
    assert bond.transmit(burst(4)) == 0
    assert bond.tx_dropped == 4


def test_carrier_return_reactivates_when_idle():
    bond = BondingDriver(Simulator())
    vf = FakeSlave("vf0", carrier=False)
    bond.enslave(vf)
    vf.set_carrier(True)
    bond.carrier_changed("vf0")
    assert bond.active_slave == "vf0"


def test_set_active_requires_carrier():
    bond = BondingDriver(Simulator())
    vf, pv = FakeSlave("vf0"), FakeSlave("eth0", carrier=False)
    bond.enslave(vf)
    bond.enslave(pv)
    with pytest.raises(RuntimeError):
        bond.set_active("eth0")


def test_unknown_slave_operations_rejected():
    bond = BondingDriver(Simulator())
    with pytest.raises(ValueError):
        bond.set_active("nope")
    with pytest.raises(ValueError):
        bond.release("nope")


def test_double_enslave_rejected():
    bond = BondingDriver(Simulator())
    bond.enslave(FakeSlave("vf0"))
    with pytest.raises(ValueError):
        bond.enslave(FakeSlave("vf0"))


def test_failover_records():
    sim = Simulator()
    bond = BondingDriver(sim)
    vf, pv = FakeSlave("vf0"), FakeSlave("eth0")
    bond.enslave(vf)
    bond.enslave(pv)
    sim.run(until=2.0)
    vf.set_carrier(False)
    bond.carrier_changed("vf0")
    records = bond.failovers
    assert records[-1].to_slave == "eth0"
    assert records[-1].time == 2.0
