"""Unit tests for the bonding driver."""

import pytest

from repro.drivers import BondingDriver
from repro.drivers.bonding import SlaveDevice
from repro.net import Packet
from repro.net.mac import MacAddress
from repro.sim import Simulator

SRC = MacAddress(0x020000000001)
DST = MacAddress(0x020000000002)


class FakeSlave(SlaveDevice):
    def __init__(self, name, carrier=True):
        self._name = name
        self._carrier = carrier
        self.sent = []

    @property
    def slave_name(self):
        return self._name

    @property
    def carrier(self):
        return self._carrier

    def set_carrier(self, on):
        self._carrier = on

    def transmit(self, burst):
        self.sent.extend(burst)
        return len(burst)


def burst(n=3):
    return [Packet(src=SRC, dst=DST) for _ in range(n)]


def test_first_carrier_slave_becomes_active():
    bond = BondingDriver(Simulator())
    vf = FakeSlave("vf0")
    bond.enslave(vf)
    bond.enslave(FakeSlave("eth0"))
    assert bond.active_slave == "vf0"


def test_transmit_goes_through_active_only():
    bond = BondingDriver(Simulator())
    vf, pv = FakeSlave("vf0"), FakeSlave("eth0")
    bond.enslave(vf)
    bond.enslave(pv)
    bond.transmit(burst(3))
    assert len(vf.sent) == 3
    assert pv.sent == []


def test_carrier_loss_fails_over():
    bond = BondingDriver(Simulator())
    vf, pv = FakeSlave("vf0"), FakeSlave("eth0")
    bond.enslave(vf)
    bond.enslave(pv)
    vf.set_carrier(False)
    bond.carrier_changed("vf0")
    assert bond.active_slave == "eth0"
    bond.transmit(burst(2))
    assert len(pv.sent) == 2


def test_release_active_slave_fails_over():
    bond = BondingDriver(Simulator())
    vf, pv = FakeSlave("vf0"), FakeSlave("eth0")
    bond.enslave(vf)
    bond.enslave(pv)
    bond.release("vf0")
    assert bond.active_slave == "eth0"
    assert "vf0" not in bond.slaves()


def test_no_active_slave_drops():
    bond = BondingDriver(Simulator())
    down = FakeSlave("vf0", carrier=False)
    bond.enslave(down)
    assert bond.active_slave is None
    assert bond.transmit(burst(4)) == 0
    assert bond.tx_dropped == 4


def test_carrier_return_reactivates_when_idle():
    bond = BondingDriver(Simulator())
    vf = FakeSlave("vf0", carrier=False)
    bond.enslave(vf)
    vf.set_carrier(True)
    bond.carrier_changed("vf0")
    assert bond.active_slave == "vf0"


def test_set_active_requires_carrier():
    bond = BondingDriver(Simulator())
    vf, pv = FakeSlave("vf0"), FakeSlave("eth0", carrier=False)
    bond.enslave(vf)
    bond.enslave(pv)
    with pytest.raises(RuntimeError):
        bond.set_active("eth0")


def test_unknown_slave_operations_rejected():
    bond = BondingDriver(Simulator())
    with pytest.raises(ValueError):
        bond.set_active("nope")
    with pytest.raises(ValueError):
        bond.release("nope")


def test_double_enslave_rejected():
    bond = BondingDriver(Simulator())
    bond.enslave(FakeSlave("vf0"))
    with pytest.raises(ValueError):
        bond.enslave(FakeSlave("vf0"))


def test_failover_records():
    sim = Simulator()
    bond = BondingDriver(sim)
    vf, pv = FakeSlave("vf0"), FakeSlave("eth0")
    bond.enslave(vf)
    bond.enslave(pv)
    sim.run(until=2.0)
    vf.set_carrier(False)
    bond.carrier_changed("vf0")
    records = bond.failovers
    assert records[-1].to_slave == "eth0"
    assert records[-1].time == 2.0


# ----------------------------------------------------------------------
# transmit-time degradation (the ISSUE-3 crash regression)
# ----------------------------------------------------------------------
def test_transmit_fails_over_inline_when_active_lost_carrier():
    # The active slave's carrier drops *between* MII polls; the next
    # transmit must degrade to the standby, not raise.
    bond = BondingDriver(Simulator())
    vf, pv = FakeSlave("vf0"), FakeSlave("eth0")
    bond.enslave(vf)
    bond.enslave(pv)
    vf.set_carrier(False)  # no carrier_changed notification
    assert bond.transmit(burst(3)) == 3
    assert len(pv.sent) == 3
    assert vf.sent == []
    assert bond.active_slave == "eth0"
    assert bond.failovers[-1].to_slave == "eth0"


def test_transmit_counts_drops_when_no_standby_has_carrier():
    bond = BondingDriver(Simulator())
    vf = FakeSlave("vf0")
    bond.enslave(vf)
    vf.set_carrier(False)
    assert bond.transmit(burst(5)) == 0
    assert bond.tx_dropped == 5
    assert bond.active_slave is None


# ----------------------------------------------------------------------
# the MII monitor
# ----------------------------------------------------------------------
def test_miimon_detects_carrier_loss_within_one_interval():
    sim = Simulator()
    bond = BondingDriver(sim)
    vf, pv = FakeSlave("vf0"), FakeSlave("eth0")
    bond.enslave(vf)
    bond.enslave(pv)
    bond.start_miimon(0.1)
    vf.set_carrier(False)
    sim.run(until=0.1)
    assert bond.active_slave == "eth0"
    assert bond.miimon_polls == 1


def test_miimon_switches_back_to_primary_on_carrier_return():
    sim = Simulator()
    bond = BondingDriver(sim)
    vf, pv = FakeSlave("vf0"), FakeSlave("eth0")
    bond.enslave(vf)
    bond.enslave(pv)
    bond.primary = "vf0"
    vf.set_carrier(False)
    bond.carrier_changed("vf0")
    assert bond.active_slave == "eth0"
    bond.start_miimon(0.1)
    vf.set_carrier(True)
    sim.run(until=0.1)
    assert bond.active_slave == "vf0"


def test_stop_miimon_stops_polling():
    sim = Simulator()
    bond = BondingDriver(sim)
    bond.enslave(FakeSlave("vf0"))
    bond.start_miimon(0.1)
    sim.run(until=0.25)
    assert bond.miimon_polls == 2
    bond.stop_miimon()
    sim.run(until=1.0)
    assert bond.miimon_polls == 2
    assert bond.miimon_interval is None


def test_miimon_interval_must_be_positive():
    bond = BondingDriver(Simulator())
    with pytest.raises(ValueError):
        bond.start_miimon(0.0)
