"""Unit tests for interrupt-coalescing policies."""

import pytest

from repro.core.costs import CostModel
from repro.drivers import AdaptiveCoalescing, DynamicItr, FixedItr


class TestFixedItr:
    def test_interval_is_reciprocal(self):
        assert FixedItr(2000).initial_interval() == pytest.approx(1 / 2000)

    def test_never_adapts(self):
        policy = FixedItr(2000)
        assert policy.on_sample(1e6) is None
        assert policy.on_sample(0) is None

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            FixedItr(0)


class TestDynamicItr:
    def test_rate_follows_traffic(self):
        policy = DynamicItr(target_packets_per_interrupt=9, max_hz=9000,
                            min_hz=500)
        # 81.3 kpps -> capped at max.
        assert policy.frequency_for(81300) == 9000
        # 11.6 kpps (one seventh of a port) -> ~1.3 kHz.
        assert policy.frequency_for(11600) == pytest.approx(1289, rel=0.01)
        # Idle floor.
        assert policy.frequency_for(0) == 500

    def test_on_sample_returns_interval(self):
        policy = DynamicItr(target_packets_per_interrupt=10, max_hz=10000)
        assert policy.on_sample(50000) == pytest.approx(1 / 5000)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            DynamicItr(target_packets_per_interrupt=0)
        with pytest.raises(ValueError):
            DynamicItr(min_hz=0)
        with pytest.raises(ValueError):
            DynamicItr(min_hz=2000, max_hz=1000)


class TestAdaptiveCoalescing:
    def test_aic_equation(self):
        """IF = max(pps x r / bufs, lif) with the paper's defaults:
        bufs = min(64, 1024) = 64, r = 1.2 (§5.3 eq. 2)."""
        costs = CostModel()
        policy = AdaptiveCoalescing(costs)
        assert costs.aic_bufs == 64
        # 81.3 kpps UDP line rate -> 81.3k x 1.2 / 64 = ~1524 Hz.
        assert policy.frequency_for(81274) == pytest.approx(1524, rel=0.01)

    def test_lif_floor(self):
        policy = AdaptiveCoalescing(CostModel(aic_lif_hz=900))
        assert policy.frequency_for(0) == 900
        assert policy.frequency_for(10000) == pytest.approx(900)

    def test_frequency_scales_with_intervm_rates(self):
        """Fig. 10: AIC raises the rate as inter-VM throughput climbs,
        avoiding the fixed-2kHz overflow."""
        policy = AdaptiveCoalescing(CostModel())
        # 2.8 Gbps inter-VM -> ~233 kpps -> ~4.4 kHz, well above the
        # fixed 2 kHz that drops packets.
        assert policy.frequency_for(233000) == pytest.approx(4369, rel=0.01)
        assert policy.frequency_for(233000) > 2000

    def test_no_overflow_property(self):
        """Above the lif floor, packets per interrupt stay at bufs/r —
        r's worth of headroom below the buffer size (§5.3's goal)."""
        costs = CostModel()
        policy = AdaptiveCoalescing(costs)
        for pps in [1e3, 5e4, 8.13e4, 2.33e5, 1e6]:
            hz = policy.frequency_for(pps)
            packets_per_interrupt = pps / hz
            if hz > costs.aic_lif_hz:  # not floored
                assert packets_per_interrupt == pytest.approx(
                    costs.aic_bufs / costs.aic_redundancy)
            assert packets_per_interrupt <= costs.aic_bufs

    def test_sample_period_from_cost_model(self):
        assert AdaptiveCoalescing(CostModel()).sample_period == 1.0

    def test_negative_pps_rejected(self):
        with pytest.raises(ValueError):
            CostModel().aic_interrupt_hz(-1)
