"""Unit tests for the PF's own data path and the physical uplink."""

import pytest

from repro.core import Testbed, TestbedConfig
from repro.net import Link, Packet
from repro.net.mac import MacAddress
from repro.vmm import DomainKind

REMOTE = MacAddress.parse("02:00:00:00:99:99")


def build():
    bed = Testbed(TestbedConfig(ports=1))
    guest = bed.add_sriov_guest(DomainKind.HVM)
    return bed, guest


def test_pf_receives_traffic_for_its_own_mac():
    """dom0's own traffic terminates at the PF's queues (§4.1: the PF
    keeps a queue pair for the service domain)."""
    bed, guest = build()
    pf_driver = bed.pf_drivers[0]
    pf_mac = bed.ports[0].pf.mac
    bed.ports[0].wire_receive([Packet(src=REMOTE, dst=pf_mac)
                               for _ in range(5)])
    bed.sim.run(until=bed.sim.now + 0.01)
    assert pf_driver.app.rx_packets == 5
    assert bed.ports[0].pf.rx_packets == 5
    assert guest.app.rx_packets == 0


def test_pf_rx_charges_dom0():
    bed, guest = build()
    bed.platform.start_measurement()
    pf_mac = bed.ports[0].pf.mac
    bed.ports[0].wire_receive([Packet(src=REMOTE, dst=pf_mac)])
    bed.sim.run(until=bed.sim.now + 0.01)
    assert bed.platform.machine.cycles("dom0") > 0


def test_pf_transmit_to_guest_via_internal_switch():
    """The Fig. 10 direction: dom0 -> guest without touching the wire."""
    bed, guest = build()
    pf_driver = bed.pf_drivers[0]
    pf_mac = bed.ports[0].pf.mac
    sent = pf_driver.transmit([Packet(src=pf_mac, dst=guest.vf.mac)
                               for _ in range(3)])
    assert sent == 3
    bed.sim.run(until=bed.sim.now + 0.01)
    assert guest.app.rx_packets == 3
    assert bed.ports[0].internal_loopback_packets == 3
    assert bed.ports[0].wire_tx_packets == 0


def test_guest_transmit_to_remote_exits_via_uplink_link():
    """TX for a non-local MAC serializes onto the physical line."""
    bed, guest = build()
    port = bed.ports[0]
    wire = Link(bed.sim, rate_bps=1e9, name="to-client")
    arrived = []
    wire.connect(arrived.append)
    port.attach_uplink(wire)
    sent = guest.driver.transmit([Packet(src=guest.vf.mac, dst=REMOTE)
                                  for _ in range(4)])
    assert sent == 4
    bed.sim.run(until=bed.sim.now + 0.01)
    assert len(arrived) == 4
    assert port.wire_tx_packets == 4


def test_uplink_line_rate_bounds_guest_tx():
    """Offering TX above the line rate: the wire's serialization caps
    delivery and the link queue tail-drops."""
    bed, guest = build()
    port = bed.ports[0]
    wire = Link(bed.sim, rate_bps=1e9, queue_frames=32, name="to-client")
    arrived = []
    wire.connect(arrived.append)
    port.attach_uplink(wire)
    # Blast 2x line rate for 10 ms.
    interval = 1538 * 8 / 1e9 / 2
    t = bed.sim.now
    end = t + 0.01
    while t < end:
        bed.sim.schedule_at(t, guest.driver.transmit,
                            [Packet(src=guest.vf.mac, dst=REMOTE)])
        t += interval
    bed.sim.run(until=end + 0.01)
    delivered_bps = len(arrived) * 1538 * 8 / 0.01
    assert delivered_bps <= 1.05e9
    assert wire.dropped.value > 0
