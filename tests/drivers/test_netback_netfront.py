"""Unit tests for the PV split driver pair."""

import pytest

from repro.core import Testbed, TestbedConfig
from repro.net import Packet
from repro.net.mac import MacAddress
from repro.vmm import DomainKind

SRC = MacAddress(0x020000000001)
DST = MacAddress(0x020000000002)


def build(vm_count=1, kind=DomainKind.HVM, single_thread=False):
    bed = Testbed(TestbedConfig(ports=1))
    if single_thread:
        bed.use_single_thread_netback()
    guests = [bed.add_pv_guest(kind) for _ in range(vm_count)]
    return bed, guests


def burst(n):
    return [Packet(src=SRC, dst=DST) for _ in range(n)]


def test_packets_copied_to_guest():
    bed, [guest] = build()
    bed.netback.deliver(guest.netfront, burst(10))
    bed.sim.run()
    assert guest.app.rx_packets == 10
    assert bed.netback.delivered_packets == 10


def test_copy_charges_dom0():
    bed, [guest] = build()
    bed.platform.start_measurement()
    bed.netback.deliver(guest.netfront, burst(10))
    bed.sim.run()
    expected = 10 * bed.netback.cycles_per_packet(guest.domain)
    assert bed.platform.machine.cycles("dom0") == pytest.approx(expected)


def test_hvm_costs_more_than_pvm():
    bed, [hvm] = build(kind=DomainKind.HVM)
    bed2, [pvm] = build(kind=DomainKind.PVM)
    assert (bed.netback.cycles_per_packet(hvm.domain)
            > bed2.netback.cycles_per_packet(pvm.domain))


def test_contention_inflates_beyond_ten_guests():
    bed, guests = build(vm_count=12)
    cost_12 = bed.netback.cycles_per_packet(guests[0].domain)
    bed2, guests2 = build(vm_count=10)
    cost_10 = bed2.netback.cycles_per_packet(guests2[0].domain)
    assert cost_12 > cost_10


def test_grant_copies_counted():
    bed, [guest] = build()
    bed.netback.deliver(guest.netfront, burst(5))
    bed.sim.run()
    assert guest.netfront.grant_table.copies == 5
    assert guest.netfront.grant_table.copied_bytes == 5 * 1500


def test_saturated_single_thread_drops():
    bed, [guest] = build(single_thread=True)
    assert len(bed.netback.executors) == 1
    # Offer far more than one core can copy within the queue bound.
    for _ in range(2000):
        bed.netback.deliver(guest.netfront, burst(20))
    bed.sim.run(until=0.1)
    assert bed.netback.dropped_bursts > 0
    assert bed.netback.dropped_packets > 0


def test_capacity_estimate():
    bed, [guest] = build(kind=DomainKind.PVM)
    capacity = bed.netback.capacity_pps(guest.domain)
    threads = len(bed.netback.executors)
    assert capacity == pytest.approx(
        threads * 2.8e9 / bed.netback.cycles_per_packet(guest.domain))


def test_unconnected_frontend_rejected():
    bed, [guest] = build()
    bed.netback.disconnect(guest.netfront)
    with pytest.raises(RuntimeError):
        bed.netback.deliver(guest.netfront, burst(1))


def test_double_connect_rejected():
    bed, [guest] = build()
    with pytest.raises(ValueError):
        bed.netback.connect(guest.netfront)


def test_carrier_off_discards_silently():
    bed, [guest] = build()
    guest.netfront.set_carrier(False)
    bed.netback.deliver(guest.netfront, burst(5))
    bed.sim.run()
    assert guest.app.rx_packets == 0


def test_event_channel_notified_per_burst():
    bed, [guest] = build()
    bed.netback.deliver(guest.netfront, burst(5))
    bed.sim.run()
    assert guest.netfront.notifications == 1


def test_netfront_charges_guest_cycles():
    bed, [guest] = build(kind=DomainKind.PVM)
    bed.platform.start_measurement()
    bed.netback.deliver(guest.netfront, burst(10))
    bed.sim.run()
    costs = bed.platform.costs
    expected_guest = (costs.guest_cycles_per_interrupt
                      + 10 * (costs.netfront_cycles_per_packet
                              + costs.pvm_syscall_surcharge_per_packet))
    assert bed.platform.machine.cycles("guest") == pytest.approx(expected_guest)
