"""Integration-style unit tests for the VF driver's interrupt path."""

import pytest

from repro.core import Testbed, TestbedConfig
from repro.core.costs import CostModel
from repro.core.optimizations import OptimizationConfig
from repro.drivers import FixedItr
from repro.net import Packet
from repro.net.mac import MacAddress
from repro.vmm import DomainKind, GuestKernel, VmExitKind

REMOTE = MacAddress.parse("02:00:00:00:99:99")


def build(opts=None, kind=DomainKind.HVM, kernel=GuestKernel.LINUX_2_6_28,
          policy=None, native=False):
    config = TestbedConfig(ports=1, vfs_per_port=2,
                           opts=opts or OptimizationConfig.all(),
                           native=native)
    bed = Testbed(config)
    guest = bed.add_sriov_guest(kind, kernel, policy or FixedItr(2000))
    return bed, guest


def rx_burst(bed, guest, count=10):
    burst = [Packet(src=REMOTE, dst=guest.vf.mac) for _ in range(count)]
    guest.port.wire_receive(burst)
    bed.sim.run(until=bed.sim.now + 0.01)


def test_packets_flow_to_application():
    bed, guest = build()
    rx_burst(bed, guest, 10)
    assert guest.app.rx_packets == 10
    assert guest.driver.interrupts_handled >= 1


def test_interrupt_charges_guest_and_xen_only():
    """The SR-IOV promise: no dom0 on the data path (for a 2.6.28 guest
    with MSI acceleration irrelevant)."""
    bed, guest = build()
    bed.platform.start_measurement()
    rx_burst(bed, guest)
    machine = bed.platform.machine
    assert machine.cycles("guest") > 0
    assert machine.cycles("xen") > 0
    assert machine.cycles("dom0") == 0  # housekeeping only at end_measurement


def test_hvm_eoi_exit_recorded():
    bed, guest = build()
    rx_burst(bed, guest)
    assert bed.platform.tracer.count(VmExitKind.APIC_ACCESS_EOI) >= 1


def test_pvm_has_no_apic_exits():
    bed, guest = build(kind=DomainKind.PVM)
    rx_burst(bed, guest)
    tracer = bed.platform.tracer
    assert tracer.count(VmExitKind.APIC_ACCESS_EOI) == 0
    assert tracer.count(VmExitKind.APIC_ACCESS_OTHER) == 0
    assert tracer.cycles(VmExitKind.HYPERCALL) > 0
    assert guest.app.rx_packets > 0


def test_linux_2618_masks_msi_per_interrupt():
    bed, guest = build(kernel=GuestKernel.LINUX_2_6_18,
                       opts=OptimizationConfig.none())
    rx_burst(bed, guest)
    tracer = bed.platform.tracer
    interrupts = guest.driver.interrupts_handled
    assert tracer.count(VmExitKind.MSIX_MASK) == interrupts
    assert tracer.count(VmExitKind.MSIX_UNMASK) == interrupts
    assert bed.platform.machine.cycles("dom0") > 0


def test_linux_2628_never_touches_mask():
    bed, guest = build(kernel=GuestKernel.LINUX_2_6_28,
                       opts=OptimizationConfig.none())
    rx_burst(bed, guest)
    assert bed.platform.tracer.count(VmExitKind.MSIX_MASK) == 0


def test_msi_acceleration_removes_dom0_from_path():
    bed, guest = build(kernel=GuestKernel.LINUX_2_6_18,
                       opts=OptimizationConfig(msi_acceleration=True))
    bed.platform.start_measurement()
    rx_burst(bed, guest)
    assert bed.platform.machine.cycles("dom0") == 0


def test_native_mode_charges_nothing_but_guest_work():
    bed, guest = build(native=True)
    rx_burst(bed, guest)
    machine = bed.platform.machine
    assert machine.cycles("native") > 0
    assert machine.cycles("xen") == 0
    assert machine.cycles("dom0") == 0


def test_stop_quiesces_interrupts():
    bed, guest = build()
    rx_burst(bed, guest)
    before = guest.driver.interrupts_handled
    guest.driver.stop()
    burst = [Packet(src=REMOTE, dst=guest.vf.mac) for _ in range(5)]
    guest.port.wire_receive(burst)
    bed.sim.run(until=bed.sim.now + 0.01)
    assert guest.driver.interrupts_handled == before
    assert not guest.vf.enabled


def test_restart_after_stop():
    bed, guest = build()
    guest.driver.stop()
    guest.driver.start()
    rx_burst(bed, guest)
    assert guest.app.rx_packets > 0


def test_mailbox_request_reaches_pf_driver():
    bed, guest = build()
    pf_driver = bed.pf_drivers[0]
    guest.driver.request_vlan(100)
    assert pf_driver.vf_requests[guest.vf.index] == ["set_vlan"]
    # The switch now has a VLAN-scoped entry for the VF.
    hits = guest.port.switch.classify(
        Packet(src=REMOTE, dst=guest.vf.mac, vlan=100))
    assert hits[0].function_index == guest.vf.index


def test_pf_broadcast_reaches_vf_driver():
    bed, guest = build()
    bed.pf_drivers[0].broadcast_event("link_change")
    assert "link_change" in guest.driver.link_events


def test_ring_refilled_after_interrupt():
    bed, guest = build()
    rx_burst(bed, guest, 100)
    assert guest.vf.rx_ring.free <= 1  # fully re-posted (one reserved)


def test_transmit_charges_guest():
    bed, guest = build()
    bed.platform.start_measurement()
    sent = guest.driver.transmit([Packet(src=guest.vf.mac, dst=REMOTE)])
    assert sent == 1
    assert bed.platform.machine.cycles("guest") > 0
