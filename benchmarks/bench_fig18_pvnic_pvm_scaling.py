"""Fig. 18 — PV NIC scalability in PVM, 10 to 60 VMs.

Paper: dom0 costs less than the HVM case (324% vs 431% — no interrupt
conversion layer), the guests cost slightly more (the x86-64 PV syscall
page-table switch), and throughput still decays with VM count.
"""

import pytest

from benchmarks.figutils import print_figure, run_once
from repro.sweep.figures import run_figure

VM_COUNTS = [10, 20, 40, 60]


def generate():
    return run_figure("fig18")


def test_fig18_pvnic_pvm_scaling(benchmark):
    results = run_once(benchmark, generate)
    print_figure("fig18", results)
    pvm = {n: results[f"pvm-{n}"] for n in VM_COUNTS}
    hvm_10 = results["hvm-10"]
    # dom0 at 10 VMs near the paper's 324%, and below the HVM case's.
    assert pvm[10].cpu["dom0"] == pytest.approx(324, rel=0.15)
    assert pvm[10].cpu["dom0"] < hvm_10.cpu["dom0"]
    # PVM guests cost slightly more than HVM guests (§6.5's last point).
    assert pvm[10].cpu["guest"] > hvm_10.cpu["guest"]
    # Throughput holds at 10 VMs and decays by 60 (milder than HVM).
    assert pvm[10].throughput_gbps == pytest.approx(9.57, rel=0.03)
    assert pvm[60].throughput_gbps <= pvm[10].throughput_gbps
