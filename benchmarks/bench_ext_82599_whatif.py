"""Extension — the 10 GbE SR-IOV what-if (§6.1's missing hardware).

The paper aggregated ten 1 GbE 82576 ports because no 10 GbE
SR-IOV-capable NIC existed yet.  The 82599 shipped soon after: one
10 GbE port, 64 VFs.  This extension reruns the headline scalability
point on the modern configuration and checks the paper's architectural
claim transfers: same software stack, same flat line rate, comparable
per-VM CPU cost — with 60 VMs now sharing a *single* port's line.
"""

import pytest

from benchmarks.figutils import print_table, run_once
from repro import DomainKind, ExperimentRunner


def generate():
    runner = ExperimentRunner(warmup=0.6, duration=0.4)
    policy = {"kind": "fixed_itr", "hz": 2000}
    results = {}
    for vms in [10, 60]:
        results[f"10x82576 {vms}VM"] = runner.run_sriov(
            vms, ports=10, policy=policy)
        results[f"1x82599 {vms}VM"] = runner.run_sriov(
            vms, ports=1, vfs_per_port=64, nic="82599",
            policy=policy)
    return results


def test_ext_82599_whatif(benchmark):
    results = run_once(benchmark, generate)
    print_table(
        "Extension: ten 1 GbE 82576 ports vs one 10 GbE 82599 port",
        ["config", "Gbps", "guest%", "xen%", "total%"],
        [(label, r.throughput_gbps, r.cpu["guest"], r.cpu["xen"],
          r.total_cpu_percent) for label, r in results.items()],
    )
    # The architecture is port-topology agnostic: both configurations
    # hold ~the same aggregate line rate...
    for label, result in results.items():
        assert result.throughput_gbps == pytest.approx(9.57, rel=0.02)
    # ...at comparable CPU cost (within 15% of each other).
    for vms in [10, 60]:
        legacy = results[f"10x82576 {vms}VM"].total_cpu_percent
        modern = results[f"1x82599 {vms}VM"].total_cpu_percent
        assert modern == pytest.approx(legacy, rel=0.15)