"""Fig. 10 — AIC avoids packet loss in inter-VM communication.

Paper: dom0 sends to a guest through the NIC's internal switch at rates
above the physical line rate.  With fixed 2 kHz / 1 kHz coalescing the
receive side drops packets (per-interrupt batches overflow the receive
buffers) so RX bandwidth falls below TX; AIC raises its interrupt
frequency with the measured packet rate and keeps RX = TX.  20 kHz also
avoids loss but at excessive CPU.
"""

from benchmarks.figutils import print_figure, run_once
from repro.sweep.figures import run_figure


def generate():
    return run_figure("fig10")


def test_fig10_aic_intervm(benchmark):
    results = run_once(benchmark, generate)
    print_figure("fig10", results)
    # Fixed low frequencies lose packets (RX < TX)...
    assert results["2kHz"].loss_rate > 0.10
    assert results["1kHz"].loss_rate > 0.30
    # ...while AIC and 20 kHz do not.
    assert results["AIC"].loss_rate < 0.02
    assert results["20kHz"].loss_rate < 0.02
    # AIC's RX beats the fixed policies' RX.
    assert results["AIC"].throughput_bps > results["2kHz"].throughput_bps
    assert results["AIC"].throughput_bps > results["1kHz"].throughput_bps
    # AIC adapts its frequency up as throughput rises (paper: "the
    # interrupt frequency in AIC increases adaptively").
    assert results["AIC"].interrupt_hz > 2500
    # 20 kHz pays more CPU for the same zero-loss result.
    assert (results["20kHz"].total_cpu_percent
            > results["AIC"].total_cpu_percent)
