"""Fig. 10 — AIC avoids packet loss in inter-VM communication.

Paper: dom0 sends to a guest through the NIC's internal switch at rates
above the physical line rate.  With fixed 2 kHz / 1 kHz coalescing the
receive side drops packets (per-interrupt batches overflow the receive
buffers) so RX bandwidth falls below TX; AIC raises its interrupt
frequency with the measured packet rate and keeps RX = TX.  20 kHz also
avoids loss but at excessive CPU.
"""

from benchmarks.figutils import print_table, run_once
from repro import ExperimentRunner
from repro.drivers import AdaptiveCoalescing, FixedItr

POLICIES = [("20kHz", lambda: FixedItr(20000)),
            ("AIC", lambda: AdaptiveCoalescing()),
            ("2kHz", lambda: FixedItr(2000)),
            ("1kHz", lambda: FixedItr(1000))]


def generate():
    runner = ExperimentRunner(warmup=2.2, duration=0.5)
    # The paper's Fig. 10 direction: "domain 0 sends packets to the
    # guest" through the PF's own queues and the internal switch.
    return {label: runner.run_intervm_sriov(policy_factory=factory,
                                            sender="dom0")
            for label, factory in POLICIES}


def test_fig10_aic_intervm(benchmark):
    results = run_once(benchmark, generate)
    rows = []
    for label, r in results.items():
        tx_gbps = r.throughput_gbps / max(1e-9, 1 - r.loss_rate)
        rows.append((label, tx_gbps, r.throughput_gbps,
                     r.loss_rate * 100, r.interrupt_hz,
                     r.total_cpu_percent))
    print_table("Fig. 10: inter-VM RX under coalescing policies",
                ["policy", "TX Gbps", "RX Gbps", "loss%", "intr Hz",
                 "CPU%"], rows)
    # Fixed low frequencies lose packets (RX < TX)...
    assert results["2kHz"].loss_rate > 0.10
    assert results["1kHz"].loss_rate > 0.30
    # ...while AIC and 20 kHz do not.
    assert results["AIC"].loss_rate < 0.02
    assert results["20kHz"].loss_rate < 0.02
    # AIC's RX beats the fixed policies' RX.
    assert results["AIC"].throughput_bps > results["2kHz"].throughput_bps
    assert results["AIC"].throughput_bps > results["1kHz"].throughput_bps
    # AIC adapts its frequency up as throughput rises (paper: "the
    # interrupt frequency in AIC increases adaptively").
    assert results["AIC"].interrupt_hz > 2500
    # 20 kHz pays more CPU for the same zero-loss result.
    assert (results["20kHz"].total_cpu_percent
            > results["AIC"].total_cpu_percent)
