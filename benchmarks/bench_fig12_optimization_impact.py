"""Fig. 12 — impact of the optimizations at aggregate 10 GbE.

Paper, 10 VMs across ten 1 GbE ports, all at the 9.57 Gbps line rate:

* Linux 2.6.18 HVM guests (mask MSI at runtime): 499% total CPU
  unoptimized -> 227% with MSI acceleration (dom0 contributes 208 of
  the 272 points saved, the guest 16, Xen 48);
* Linux 2.6.28 HVM guests: EOI acceleration then AIC each shave CPU
  further (paper: -23% and -24%), landing at 193%;
* native baseline (10 VF drivers + PF drivers on bare metal): 145%.
"""

import pytest

from benchmarks.figutils import print_figure, run_once
from repro.sweep.figures import run_figure


def generate():
    return run_figure("fig12")


def test_fig12_optimization_impact(benchmark):
    bars = run_once(benchmark, generate)
    print_figure("fig12", bars)
    # Line rate everywhere (paper: "SR-IOV achieves a 10 Gbps line rate
    # in all situations").
    for result in bars.values():
        assert result.throughput_gbps == pytest.approx(9.57, rel=0.02)
    # MSI acceleration is the big one for 2.6.18 (paper: 499% -> 227%).
    unopt = bars["2.6.18 baseline"].total_cpu_percent
    msi = bars["2.6.18 +msi"].total_cpu_percent
    assert unopt > 2 * msi
    # The dom0 share of the saving dominates (paper: 208 of 272 points).
    dom0_saving = (bars["2.6.18 baseline"].cpu["dom0"]
                   - bars["2.6.18 +msi"].cpu["dom0"])
    total_saving = unopt - msi
    assert dom0_saving / total_saving > 0.6
    # 2.6.28 chain: each optimization reduces CPU.
    chain = [bars["2.6.28 baseline"].total_cpu_percent,
             bars["2.6.28 +eoi"].total_cpu_percent,
             bars["2.6.28 +eoi+aic"].total_cpu_percent]
    assert chain[0] > chain[1] > chain[2]
    # Fully optimized lands within ~2x of native (paper: 193 vs 145).
    native = bars["native"].total_cpu_percent
    assert chain[2] < 2 * native
    assert chain[2] > native
