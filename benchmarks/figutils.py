"""Shared helpers for the per-figure benchmarks.

Every benchmark follows the same pattern: generate the figure's series
once (under pytest-benchmark's timer) via the shared campaign registry
in :mod:`repro.sweep.figures`, print the same rows the paper plots, and
assert the paper's qualitative shape — who wins, by roughly what
factor, where the crossovers fall.  Absolute numbers are recorded in
EXPERIMENTS.md against the paper's.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Sequence

from repro.core.experiment import RunResult
from repro.core.report import format_table
from repro.sweep.figures import FIGURES


def run_once(benchmark, fn: Callable[[], object]):
    """Run the figure generator exactly once under the benchmark timer.

    These are simulation sweeps, not microbenchmarks: one round is the
    honest measurement (and keeps the suite's wall-clock sane).
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def print_table(title: str, header: Sequence[str],
                rows: Iterable[Sequence[object]]) -> None:
    """Print one figure's data the way the paper's plot reads."""
    print(format_table(title, header, rows))


def print_figure(name: str, results: Dict[str, RunResult]) -> None:
    """Print a registered figure's table from its results."""
    figure = FIGURES[name]
    columns, rows = figure.rows(results)
    print_table(f"{figure.title}", columns, rows)


def assert_flat(values: Sequence[float], tolerance: float = 0.05) -> None:
    """All values within ``tolerance`` of each other (relative)."""
    assert min(values) > 0
    spread = max(values) / min(values) - 1
    assert spread <= tolerance, f"series not flat: spread {spread:.3f}"


def assert_decreasing(values: Sequence[float], slack: float = 0.02) -> None:
    """Each value at most ``slack`` above its predecessor."""
    for a, b in zip(values, values[1:]):
        assert b <= a * (1 + slack), f"series not decreasing: {a} -> {b}"


def assert_increasing(values: Sequence[float], slack: float = 0.02) -> None:
    for a, b in zip(values, values[1:]):
        assert b >= a * (1 - slack), f"series not increasing: {a} -> {b}"
