"""Fig. 14 — PV NIC inter-VM communication.

Paper: the PV path copies packets VM-to-VM with the CPU, reaching
4.3 Gbps at 4000-byte messages — higher than SR-IOV's PCIe-bound
2.8 Gbps, rising with message size as per-message overheads amortize,
but burning more CPU: "in terms of throughput per CPU utilization,
SR-IOV is better."
"""

import pytest

from benchmarks.figutils import assert_increasing, print_table, run_once
from repro import ExperimentRunner

SIZES = [1500, 2000, 2500, 3000, 4000]


def generate():
    runner = ExperimentRunner(warmup=0.8, duration=0.5)
    pv = {size: runner.run_intervm_pv(message_bytes=size) for size in SIZES}
    sriov_runner = ExperimentRunner(warmup=2.2, duration=0.5)
    sriov_1500 = sriov_runner.run_intervm_sriov(message_bytes=1500)
    return pv, sriov_1500


def test_fig14_pvnic_intervm(benchmark):
    pv, sriov = run_once(benchmark, generate)
    print_table(
        "Fig. 14: PV inter-VM throughput vs message size",
        ["msg bytes", "Gbps", "CPU%", "Gbps/CPU%"],
        [(size, r.throughput_gbps, r.total_cpu_percent,
          r.throughput_gbps / r.total_cpu_percent)
         for size, r in pv.items()],
    )
    # Bandwidth grows with message size (paper: "as the message size
    # goes up ... higher bandwidth").
    assert_increasing([pv[size].throughput_gbps for size in SIZES])
    # Peak beats SR-IOV's PCIe cap (paper: 4.3 vs 2.8 Gbps).
    assert pv[4000].throughput_gbps > 3.5
    assert pv[4000].throughput_gbps > sriov.throughput_gbps
    # But SR-IOV wins on throughput per CPU at the common 1500-byte
    # point (paper's closing comparison).
    pv_efficiency = pv[1500].throughput_gbps / pv[1500].total_cpu_percent
    sriov_efficiency = sriov.throughput_gbps / sriov.total_cpu_percent
    assert sriov_efficiency > pv_efficiency
