"""Fig. 14 — PV NIC inter-VM communication.

Paper: the PV path copies packets VM-to-VM with the CPU, reaching
4.3 Gbps at 4000-byte messages — higher than SR-IOV's PCIe-bound
2.8 Gbps, rising with message size as per-message overheads amortize,
but burning more CPU: "in terms of throughput per CPU utilization,
SR-IOV is better."
"""

from benchmarks.figutils import assert_increasing, print_figure, run_once
from repro.sweep.figures import run_figure

SIZES = [1500, 2000, 2500, 3000, 4000]


def generate():
    return run_figure("fig14")


def test_fig14_pvnic_intervm(benchmark):
    results = run_once(benchmark, generate)
    print_figure("fig14", results)
    pv = {size: results[f"pv-{size}"] for size in SIZES}
    sriov = results["sriov-1500"]
    # Bandwidth grows with message size (paper: "as the message size
    # goes up ... higher bandwidth").
    assert_increasing([pv[size].throughput_gbps for size in SIZES])
    # Peak beats SR-IOV's PCIe cap (paper: 4.3 vs 2.8 Gbps).
    assert pv[4000].throughput_gbps > 3.5
    assert pv[4000].throughput_gbps > sriov.throughput_gbps
    # But SR-IOV wins on throughput per CPU at the common 1500-byte
    # point (paper's closing comparison).
    pv_efficiency = pv[1500].throughput_gbps / pv[1500].total_cpu_percent
    sriov_efficiency = sriov.throughput_gbps / sriov.total_cpu_percent
    assert sriov_efficiency > pv_efficiency
