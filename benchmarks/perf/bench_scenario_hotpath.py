"""End-to-end scenario wall-clock: the fig06/fig15/fig16 bench shapes.

One round each — these are full simulations, and the honest measure of
the hot path is one uncached run.  The throughput assertion pins the
semantic anchor: a perf change must not move the simulated result.
"""

import pytest

from repro.bench import bench_scenarios, run_scenario_bench

SCENARIOS = bench_scenarios(quick=True)


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_scenario_wallclock(benchmark, name):
    scenario = SCENARIOS[name]
    result = benchmark.pedantic(run_scenario_bench, args=(scenario,),
                                rounds=1, iterations=1)
    print(f"\n{name}: {result['wall_seconds']:.2f}s wall, "
          f"{result['events']:,} events "
          f"({result['events_per_sec']:,.0f}/sec), "
          f"{result['throughput_gbps']:.2f} Gbps simulated")
    assert result["events"] > 0
    assert result["throughput_gbps"] > 0
