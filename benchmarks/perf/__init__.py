"""Engine/hot-path performance microbenchmarks.

Unlike the figure benchmarks one directory up — which validate the
*numbers* the simulation produces — this suite measures how fast the
simulator produces them.  It wraps the same measurement functions the
``repro bench`` CLI uses (:mod:`repro.bench`), so pytest-benchmark
timings and the committed ``BENCH_*.json`` trajectory track the same
code paths.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/perf/ -q

or, for the tracked JSON trajectory, ``python -m repro bench``.
"""
