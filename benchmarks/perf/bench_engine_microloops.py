"""Engine micro-loops: events/sec through the scheduler hot path.

Three synthetic shapes isolate what real runs do to the event queue:
a rolling one-shot stream (packet dispatch), a bank of self-rearming
periodic timers (netperf generators, MII monitor — the timer wheel's
target load), and a cancel-and-rearm loop (interrupt-throttle debris).
"""

from repro.bench import (
    bench_cancel_rearm,
    bench_event_stream,
    bench_periodic_timers,
)

EVENTS = 50_000


def _report(result):
    print(f"\n{result['events']:,} events in {result['seconds']:.3f}s "
          f"= {result['events_per_sec']:,.0f} events/sec")


def test_engine_event_stream(benchmark):
    result = benchmark.pedantic(bench_event_stream, args=(EVENTS,),
                                rounds=3, iterations=1)
    _report(result)
    assert result["events"] >= EVENTS


def test_engine_periodic_timers(benchmark):
    result = benchmark.pedantic(bench_periodic_timers, args=(EVENTS,),
                                rounds=3, iterations=1)
    _report(result)
    assert result["events"] >= EVENTS


def test_engine_cancel_rearm(benchmark):
    result = benchmark.pedantic(bench_cancel_rearm, args=(EVENTS,),
                                rounds=3, iterations=1)
    _report(result)
    assert result["events"] >= EVENTS
