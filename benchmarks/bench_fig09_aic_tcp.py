"""Fig. 9 — AIC maintains TCP_STREAM throughput at minimal CPU.

Paper: 940 Mbps at 20 kHz, 2 kHz and AIC, but a 9.6% throughput drop at
1 kHz — TCP is latency-sensitive, and the coalescing delay inflates the
RTT past what the receive window can cover.  CPU falls ~50% from 20 kHz
to 2 kHz.
"""

import pytest

from benchmarks.figutils import print_figure, run_once
from repro.sweep.figures import run_figure


def generate():
    return run_figure("fig09")


def test_fig09_aic_tcp(benchmark):
    results = run_once(benchmark, generate)
    print_figure("fig09", results)
    # Full TCP goodput for 20 kHz, 2 kHz and AIC (paper: 940 Mbps).
    for label in ["20kHz", "2kHz", "AIC"]:
        assert results[label].throughput_bps == pytest.approx(941.5e6,
                                                              rel=0.02)
    # The 1 kHz latency penalty (paper: 9.6%).
    drop = 1 - (results["1kHz"].throughput_bps
                / results["2kHz"].throughput_bps)
    print(f"\n1 kHz TCP throughput drop: {drop * 100:.1f}% (paper: 9.6%)")
    assert 0.05 < drop < 0.15
    # CPU saving 20 kHz -> 2 kHz (paper: ~50%).
    saving = 1 - (results["2kHz"].total_cpu_percent
                  / results["20kHz"].total_cpu_percent)
    print(f"20kHz -> 2kHz CPU saving: {saving * 100:.0f}% (paper: ~50%)")
    assert 0.2 < saving < 0.65
