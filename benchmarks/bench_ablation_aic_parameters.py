"""Ablation — AIC's r (redundancy) and lif (latency floor) parameters.

§5.3 fixes r = 1.2 and bounds the minimum frequency with lif.  This
ablation shows what each buys: without headroom (r = 1.0) burst jitter
overflows the socket buffer and RX loses packets; raising lif trades
CPU for latency margin.
"""

import pytest

from benchmarks.figutils import print_table, run_once
from repro import CostModel, ExperimentRunner

R_VALUES = [1.0, 1.1, 1.2, 1.5]


def generate():
    results = {}
    for r in R_VALUES:
        costs = CostModel(aic_redundancy=r)
        runner = ExperimentRunner(costs=costs, warmup=2.2, duration=0.5)
        # Wire RX: arrivals are bursty (unlike the PCIe-smoothed
        # inter-VM path), so headroom is what absorbs batch jitter.
        results[r] = runner.run_sriov(1, ports=1,
                                      policy={"kind": "aic"})
    return results


def test_ablation_aic_redundancy(benchmark):
    results = run_once(benchmark, generate)
    print_table(
        "Ablation: AIC redundancy factor r (wire RX at line rate)",
        ["r", "Mbps", "loss%", "intr Hz"],
        [(r, res.throughput_bps / 1e6, res.loss_rate * 100,
          res.interrupt_hz) for r, res in results.items()],
    )
    # No headroom: batches ride the buffer boundary and arrival jitter
    # drops packets.
    assert results[1.0].loss_rate > results[1.2].loss_rate
    # The paper's r=1.2 is (near) loss-free at line rate.
    assert results[1.2].loss_rate < 0.01
    # Larger r costs proportionally more interrupts.
    assert results[1.5].interrupt_hz > results[1.2].interrupt_hz
    hz_ratio = results[1.5].interrupt_hz / results[1.2].interrupt_hz
    assert hz_ratio == pytest.approx(1.5 / 1.2, rel=0.1)
