"""Fig. 15 — SR-IOV scalability in HVM, 10 to 60 VMs.

Paper: aggregate throughput holds the 9.57 Gbps line rate from 10 to 60
VMs; each additional HVM guest costs ~2.8% CPU (virtual LAPIC emulation
on every interrupt).
"""

import pytest

from benchmarks.figutils import (
    assert_flat,
    assert_increasing,
    print_figure,
    run_once,
)
from repro.sweep.figures import run_figure

VM_COUNTS = [10, 20, 40, 60]


def generate():
    return run_figure("fig15")


def test_fig15_sriov_hvm_scaling(benchmark):
    results = run_once(benchmark, generate)
    print_figure("fig15", results)
    totals = [results[str(n)].total_cpu_percent for n in VM_COUNTS]
    slope = (totals[-1] - totals[0]) / (VM_COUNTS[-1] - VM_COUNTS[0])
    print(f"\nmarginal CPU per added HVM guest: {slope:.2f}% "
          "(paper: 2.8%)")
    # Line rate at every VM count.
    assert_flat([results[str(n)].throughput_gbps for n in VM_COUNTS],
                tolerance=0.02)
    for n in VM_COUNTS:
        assert results[str(n)].throughput_gbps == pytest.approx(9.57,
                                                                rel=0.02)
    # CPU grows with VM count, modestly.
    assert_increasing(totals)
    assert 0.2 < slope < 4.0
