"""Fig. 15 — SR-IOV scalability in HVM, 10 to 60 VMs.

Paper: aggregate throughput holds the 9.57 Gbps line rate from 10 to 60
VMs; each additional HVM guest costs ~2.8% CPU (virtual LAPIC emulation
on every interrupt).
"""

import pytest

from benchmarks.figutils import assert_flat, assert_increasing, print_table, run_once
from repro import DomainKind, ExperimentRunner
from repro.drivers import FixedItr

VM_COUNTS = [10, 20, 40, 60]


def generate():
    # The VF driver's default 2 kHz ITR: the paper's per-VM slopes
    # (2.8% HVM / 1.76% PVM) imply ~2 kHz steady interrupt rates per
    # guest, below which AIC's lif floor would deflate the comparison.
    runner = ExperimentRunner(warmup=0.6, duration=0.4)
    return {n: runner.run_sriov(n, kind=DomainKind.HVM,
                                policy_factory=lambda: FixedItr(2000))
            for n in VM_COUNTS}


def test_fig15_sriov_hvm_scaling(benchmark):
    results = run_once(benchmark, generate)
    print_table(
        "Fig. 15: SR-IOV scalability, HVM guests, aggregate 10 GbE",
        ["VMs", "Gbps", "dom0%", "guest%", "xen%", "total%"],
        [(n, r.throughput_gbps, r.cpu["dom0"], r.cpu["guest"],
          r.cpu["xen"], r.total_cpu_percent)
         for n, r in results.items()],
    )
    totals = [results[n].total_cpu_percent for n in VM_COUNTS]
    slope = (totals[-1] - totals[0]) / (VM_COUNTS[-1] - VM_COUNTS[0])
    print(f"\nmarginal CPU per added HVM guest: {slope:.2f}% "
          "(paper: 2.8%)")
    # Line rate at every VM count.
    assert_flat([results[n].throughput_gbps for n in VM_COUNTS],
                tolerance=0.02)
    for n in VM_COUNTS:
        assert results[n].throughput_gbps == pytest.approx(9.57, rel=0.02)
    # CPU grows with VM count, modestly.
    assert_increasing(totals)
    assert 0.2 < slope < 4.0
