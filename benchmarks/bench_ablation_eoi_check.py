"""Ablation — the EOI instruction-check safety option (§5.2).

The paper's fast EOI path reads the Exit-qualification field instead of
fetching and decoding the guest instruction, but a guest using a complex
instruction (movs/stos) to write EOI would then be mis-emulated.
Checking the instruction restores correctness at +1.8K cycles per exit;
the paper argues no commercial OS does this and ships without the check.
This ablation quantifies what that argument buys.
"""

import pytest

from benchmarks.figutils import print_table, run_once
from repro import ExperimentRunner, OptimizationConfig

CONFIGS = [
    ("emulate (8.4K)", OptimizationConfig.none()),
    ("fast+check (4.3K)", OptimizationConfig(eoi_acceleration=True,
                                             eoi_instruction_check=True)),
    ("fast (2.5K)", OptimizationConfig(eoi_acceleration=True)),
]


def generate():
    runner = ExperimentRunner(warmup=1.2, duration=0.5)
    return {label: runner.run_sriov(1, ports=1, opts=opts,
                                    policy={"kind": "dynamic_itr"})
            for label, opts in CONFIGS}


def test_ablation_eoi_instruction_check(benchmark):
    results = run_once(benchmark, generate)
    print_table(
        "Ablation: EOI emulation strategy (1 VM, line rate)",
        ["strategy", "Mbps", "xen%", "EOI Mcyc/s"],
        [(label, r.throughput_bps / 1e6, r.cpu["xen"],
          r.exit_cycles_per_second.get("apic-access-eoi", 0) / 1e6)
         for label, r in results.items()],
    )
    eoi = {label: r.exit_cycles_per_second["apic-access-eoi"]
           for label, r in results.items()}
    # Strict ordering: full emulation > checked fast path > fast path.
    assert eoi["emulate (8.4K)"] > eoi["fast+check (4.3K)"] > eoi["fast (2.5K)"]
    # The check costs 1.8/2.5 = 72% more than the unchecked fast path
    # per exit — the concrete cost of the safety the paper declines.
    ratio = eoi["fast+check (4.3K)"] / eoi["fast (2.5K)"]
    assert ratio == pytest.approx(4300 / 2500, rel=0.05)
    # Throughput is unaffected either way.
    rates = [r.throughput_bps for r in results.values()]
    assert max(rates) / min(rates) < 1.02
