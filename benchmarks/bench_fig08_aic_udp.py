"""Fig. 8 — adaptive interrupt coalescing reduces CPU for UDP_STREAM.

Paper: throughput holds 957 Mbps at 20 kHz, 2 kHz and AIC; CPU falls
~40% from 20 kHz to 2 kHz and further under AIC.
"""

import pytest

from benchmarks.figutils import print_figure, run_once
from repro.sweep.figures import run_figure


def generate():
    return run_figure("fig08")


def test_fig08_aic_udp(benchmark):
    results = run_once(benchmark, generate)
    print_figure("fig08", results)
    # The latency side of the tradeoff (§5.3 discusses it; the figure
    # does not plot it): lower frequency -> higher delivery latency.
    assert (results["20kHz"].latency_mean < results["2kHz"].latency_mean
            < results["1kHz"].latency_mean)
    # Throughput at line goodput for 20 kHz, 2 kHz and AIC (paper: 957).
    for label in ["20kHz", "2kHz", "AIC"]:
        assert results[label].throughput_bps == pytest.approx(957.1e6,
                                                              rel=0.02)
    # CPU ordering: 20 kHz > 2 kHz >= AIC (paper: ~40% saving, then more).
    cpu_20k = results["20kHz"].total_cpu_percent
    cpu_2k = results["2kHz"].total_cpu_percent
    cpu_aic = results["AIC"].total_cpu_percent
    saving = 1 - cpu_2k / cpu_20k
    print(f"\n20kHz -> 2kHz CPU saving: {saving * 100:.0f}% (paper: ~40%)")
    assert 0.2 < saving < 0.6
    assert cpu_aic <= cpu_2k * 1.02
