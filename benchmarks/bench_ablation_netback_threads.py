"""Ablation — netback thread count (§6.5's enhancement).

The paper found the stock single-threaded netback saturating one core at
~3.6 Gbps and enhanced it "to accommodate more threads for backend
service ... for fair comparison".  This ablation sweeps the thread count
to show where the PV path's ceiling comes from and when it stops being
the bottleneck.
"""

import pytest

from benchmarks.figutils import assert_increasing, print_table, run_once
from repro import DomainKind, ExperimentRunner
from repro.core import Testbed, TestbedConfig
from repro.core.experiment import RunResult

THREADS = [1, 2, 3, 5, 8]
VMS = 10


def run_with_threads(threads):
    runner = ExperimentRunner(warmup=0.6, duration=0.4)
    # Reuse the runner's measurement loop with a custom-size backend.
    config = TestbedConfig(ports=10)
    bed = Testbed(config)
    from repro.drivers.netback import Netback
    bed._netback = Netback(bed.platform, bed.platform.dom0, threads)
    guests = [bed.add_pv_guest(DomainKind.HVM) for _ in range(VMS)]
    share = bed.per_vm_line_share_bps(VMS)
    for guest in guests:
        bed.attach_client_to_pv(guest, share).start()
    return runner._measure(bed, [g.app for g in guests], [])


def generate():
    return {threads: run_with_threads(threads) for threads in THREADS}


def test_ablation_netback_threads(benchmark):
    results = run_once(benchmark, generate)
    print_table(
        "Ablation: netback service threads (10 HVM guests, 10 GbE offered)",
        ["threads", "Gbps", "dom0%", "loss%"],
        [(threads, r.throughput_gbps, r.cpu["dom0"], r.loss_rate * 100)
         for threads, r in results.items()],
    )
    throughputs = [results[t].throughput_gbps for t in THREADS]
    # More threads -> more throughput, until the line rate binds.
    assert_increasing(throughputs)
    # One thread: the stock driver's ~3 Gbps ceiling.
    assert throughputs[0] < 3.5
    # Five threads (the paper's enhanced configuration) reach line rate.
    assert results[5].throughput_gbps == pytest.approx(9.57, rel=0.03)
    # Beyond saturation, extra threads buy nothing.
    assert results[8].throughput_gbps <= results[5].throughput_gbps * 1.02
