"""Fig. 19 — VMDq scalability in PVM.

Paper (Intel 82598, 8 queue pairs): performance peaks at 10 VMs and
"drops progressively as the VM# increases ... the NIC has only 8 queue
pairs, and only 7 guests can get VMDq support.  Once the VM# exceeds 7,
the rest of the VMs share the network with domain 0, as the
conventional PV NIC driver does."

(The paper also saw throughput *rise* again from 40 to 60 VMs and
attributed it to "a program defect in the tree"; we do not reproduce
the defect.)
"""

from benchmarks.figutils import assert_decreasing, print_figure, run_once
from repro.sweep.figures import run_figure

VM_COUNTS = [10, 20, 40, 60]


def generate():
    return run_figure("fig19")


def test_fig19_vmdq_scaling(benchmark):
    results = run_once(benchmark, generate)
    print_figure("fig19", results)
    throughputs = [results[str(n)].throughput_gbps for n in VM_COUNTS]
    # Peak at 10 VMs (7 dedicated queues cover most guests)...
    assert throughputs[0] > 8.5
    # ...then progressive decay as more guests share the default queue.
    assert_decreasing(throughputs)
    assert throughputs[-1] < throughputs[0] * 0.6
