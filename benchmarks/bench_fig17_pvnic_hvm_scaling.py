"""Fig. 17 — PV NIC scalability in HVM, 10 to 60 VMs.

Paper: even with the multi-threaded netback enhancement, dom0 burns
~431% CPU at 10 VMs (packet copies plus the event-channel-over-LAPIC
interrupt conversion) and throughput *decays* as VMs are added — the
copy path's per-packet cost grows with the working set of rings.
"""

import pytest

from benchmarks.figutils import print_figure, run_once
from repro.sweep.figures import run_figure

VM_COUNTS = [10, 20, 40, 60]


def generate():
    return run_figure("fig17")


def test_fig17_pvnic_hvm_scaling(benchmark):
    results = run_once(benchmark, generate)
    print_figure("fig17", results)
    # Full line rate at 10 VMs, with heavy dom0 (paper: 431%).
    assert results["10"].throughput_gbps == pytest.approx(9.57, rel=0.03)
    assert results["10"].cpu["dom0"] == pytest.approx(431, rel=0.15)
    # Throughput decays as VM count rises (the Fig. 17 shape).
    assert (results["60"].throughput_gbps
            < results["10"].throughput_gbps * 0.95)
    assert results["60"].loss_rate > 0.05
