"""Fig. 17 — PV NIC scalability in HVM, 10 to 60 VMs.

Paper: even with the multi-threaded netback enhancement, dom0 burns
~431% CPU at 10 VMs (packet copies plus the event-channel-over-LAPIC
interrupt conversion) and throughput *decays* as VMs are added — the
copy path's per-packet cost grows with the working set of rings.
"""

import pytest

from benchmarks.figutils import print_table, run_once
from repro import DomainKind, ExperimentRunner

VM_COUNTS = [10, 20, 40, 60]


def generate():
    runner = ExperimentRunner(warmup=0.6, duration=0.4)
    return {n: runner.run_pv(n, kind=DomainKind.HVM) for n in VM_COUNTS}


def test_fig17_pvnic_hvm_scaling(benchmark):
    results = run_once(benchmark, generate)
    print_table(
        "Fig. 17: PV NIC scalability, HVM guests",
        ["VMs", "Gbps", "dom0%", "guest%", "loss%"],
        [(n, r.throughput_gbps, r.cpu["dom0"], r.cpu["guest"],
          r.loss_rate * 100) for n, r in results.items()],
    )
    # Full line rate at 10 VMs, with heavy dom0 (paper: 431%).
    assert results[10].throughput_gbps == pytest.approx(9.57, rel=0.03)
    assert results[10].cpu["dom0"] == pytest.approx(431, rel=0.15)
    # Throughput decays as VM count rises (the Fig. 17 shape).
    assert results[60].throughput_gbps < results[10].throughput_gbps * 0.95
    assert results[60].loss_rate > 0.05
