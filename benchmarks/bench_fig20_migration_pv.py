"""Fig. 20 — migrating an HVM guest running netperf over the PV driver.

Paper: migration starts at t = 4.5 s; the service runs through the
pre-copy rounds (dom0 pays for the copying), shuts down at 10.4 s for
stop-and-copy, and is restored at 11.8 s on the target.
"""

import pytest

from benchmarks.figutils import print_figure, run_once
from repro.core.costs import CostModel
from repro.migration import downtime_windows, series_from_timeline
from repro.net import udp_goodput_bps
from repro.sweep.figures import run_figure

LINE = udp_goodput_bps(1e9)


def generate():
    return run_figure("fig20")


def test_fig20_migration_pv(benchmark):
    results = run_once(benchmark, generate)
    result = results["timeline"]
    print_figure("fig20", results)
    report = result.extras["migration"]
    series = series_from_timeline(result.extras["timeline"], "rx_bytes")
    dom0 = series_from_timeline(result.extras["timeline"], "dom0_cycles")
    clock_hz = CostModel().clock_hz
    print(f"\nblackout {report['blackout_start']:.2f}s -> "
          f"{report['blackout_end']:.2f}s (paper: 10.4s -> 11.8s)")
    # The paper's schedule: blackout starts ~10.4 s, ends ~11.8 s.
    assert report["blackout_start"] == pytest.approx(10.4, abs=0.4)
    assert report["blackout_end"] == pytest.approx(11.8, abs=0.4)
    # Exactly one service outage, aligned with the blackout.
    steady = LINE / 8 * 0.1
    windows = downtime_windows(series, steady * 0.5, min_duration=0.15)
    assert len(windows) == 1
    # dom0 was busy during pre-copy: significant PV service cost plus
    # the migration copy itself.
    mid_precopy = (report["started_at"] + report["blackout_start"]) / 2
    pre = (dom0.window_sum(mid_precopy - 0.5, mid_precopy)
           / 0.5 / clock_hz * 100)
    before = dom0.window_sum(2.0, 2.5) / 0.5 / clock_hz * 100
    assert before > 20   # PV service cost (netback) before migration
    assert pre > before  # plus migration copy load
