"""Fig. 20 — migrating an HVM guest running netperf over the PV driver.

Paper: migration starts at t = 4.5 s; the service runs through the
pre-copy rounds (dom0 pays for the copying), shuts down at 10.4 s for
stop-and-copy, and is restored at 11.8 s on the target.
"""

import pytest

from benchmarks.figutils import print_table, run_once
from repro import DomainKind, Testbed, TestbedConfig
from repro.migration import (
    MigrationManager,
    PrecopyConfig,
    Sampler,
    downtime_windows,
)
from repro.net import udp_goodput_bps

START = 4.5
LINE = udp_goodput_bps(1e9)


def generate():
    bed = Testbed(TestbedConfig(ports=1))
    pv = bed.add_pv_guest(DomainKind.HVM)
    bed.attach_client_to_pv(pv, LINE).start()
    manager = MigrationManager(bed.platform, bed.hotplug, PrecopyConfig())
    sampler = Sampler(bed.sim, period=0.1)
    sampler.track("rx_bytes", lambda: pv.app.rx_bytes)
    machine = bed.platform.machine
    sampler.track("dom0_cycles", lambda: machine.cycles("dom0"))
    sampler.start()
    _, report = manager.migrate_pv(pv.netfront, start_at=START)
    horizon = START + manager.model.total_time + 2.0
    bed.sim.run(until=horizon)
    return sampler, report, manager


def test_fig20_migration_pv(benchmark):
    sampler, report, manager = run_once(benchmark, generate)
    series = sampler.series("rx_bytes")
    dom0 = sampler.series("dom0_cycles")
    rows = []
    t = 0.5
    while t <= 13.5:
        mbps = series.window_sum(t - 0.5, t) * 8 / 0.5 / 1e6
        dom0_pct = dom0.window_sum(t - 0.5, t) / 0.5 / 2.8e9 * 100
        rows.append((f"{t:.1f}", mbps, dom0_pct))
        t += 0.5
    print_table("Fig. 20: PV migration timeline (0.5 s buckets)",
                ["t (s)", "Mbps", "dom0%"], rows)
    print(f"\nblackout {report.blackout_start:.2f}s -> "
          f"{report.blackout_end:.2f}s (paper: 10.4s -> 11.8s)")
    # The paper's schedule: blackout starts ~10.4 s, ends ~11.8 s.
    assert report.blackout_start == pytest.approx(10.4, abs=0.4)
    assert report.blackout_end == pytest.approx(11.8, abs=0.4)
    # Exactly one service outage, aligned with the blackout.
    steady = LINE / 8 * 0.1
    windows = downtime_windows(series, steady * 0.5, min_duration=0.15)
    assert len(windows) == 1
    # dom0 was busy during pre-copy: significant PV service cost plus
    # the migration copy itself.
    mid_precopy = (report.started_at + report.blackout_start) / 2
    pre = dom0.window_sum(mid_precopy - 0.5, mid_precopy) / 0.5 / 2.8e9 * 100
    before = dom0.window_sum(2.0, 2.5) / 0.5 / 2.8e9 * 100
    assert before > 20   # PV service cost (netback) before migration
    assert pre > before  # plus migration copy load
