"""Ablation — coalescing policies under bursty (jittered) arrivals.

The paper's experiments run smooth netperf streams; real traffic is
burstier.  This ablation replays the Fig. 8 sweep with ±30% burst-size
jitter: AIC's r-headroom and the 20 kHz policy absorb it, while the
boundary-running fixed 1 kHz policy loses more than it did with smooth
arrivals.
"""

import pytest

from benchmarks.figutils import print_table, run_once
from repro.core import Testbed, TestbedConfig
from repro.drivers import AdaptiveCoalescing, FixedItr
from repro.net import NetperfStream, udp_goodput_bps
from repro.net.mac import MacAddress

CLIENT = MacAddress.parse("02:00:00:00:99:99")
POLICIES = [("20kHz", lambda: FixedItr(20000)),
            ("2kHz", lambda: FixedItr(2000)),
            ("AIC", lambda: AdaptiveCoalescing()),
            ("1kHz", lambda: FixedItr(1000))]


def run_policy(factory, jitter):
    bed = Testbed(TestbedConfig(ports=1))
    guest = bed.add_sriov_guest(policy=factory())
    rng = bed.streams.get("client.jitter")
    NetperfStream(bed.sim, guest.port.wire_receive, CLIENT, guest.vf.mac,
                  udp_goodput_bps(1e9), burst_interval=100e-6,
                  jitter=jitter, rng=rng).start()
    bed.sim.run(until=2.2)
    guest.app.reset()
    bed.sim.run(until=2.7)
    return guest.app


def generate():
    return {label: (run_policy(factory, 0.0), run_policy(factory, 0.3))
            for label, factory in POLICIES}


def test_ablation_burst_jitter(benchmark):
    results = run_once(benchmark, generate)
    rows = []
    for label, (smooth, bursty) in results.items():
        rows.append((label, smooth.loss_rate * 100, bursty.loss_rate * 100))
    print_table("Ablation: packet loss, smooth vs ±30% bursty arrivals",
                ["policy", "smooth loss%", "bursty loss%"], rows)
    smooth_aic, bursty_aic = results["AIC"]
    # AIC's headroom absorbs the burstiness.
    assert bursty_aic.loss_rate < 0.005
    # 20 kHz has so much rate headroom it never overflows either.
    assert results["20kHz"][1].loss_rate < 0.005
    # The boundary-running 1 kHz policy suffers at least as much as
    # with smooth arrivals.
    smooth_1k, bursty_1k = results["1kHz"]
    assert bursty_1k.loss_rate >= smooth_1k.loss_rate * 0.9
    assert bursty_1k.loss_rate > 0.05
