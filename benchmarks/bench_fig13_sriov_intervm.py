"""Fig. 13 — SR-IOV inter-VM communication.

Paper: packets between two VFs are switched inside the NIC without
touching the wire, so throughput can exceed the 1 Gbps line rate — but
each packet crosses the PCIe bus twice (TX DMA read to the FIFO, RX DMA
write to the target), capping throughput at ~2.8 Gbps on a single port.
"""

import pytest

from benchmarks.figutils import print_table, run_once
from repro import ExperimentRunner

SIZES = [1500, 2000, 2500, 3000, 4000]


def generate():
    runner = ExperimentRunner(warmup=2.2, duration=0.5)
    return {size: runner.run_intervm_sriov(message_bytes=size)
            for size in SIZES}


def test_fig13_sriov_intervm(benchmark):
    results = run_once(benchmark, generate)
    print_table(
        "Fig. 13: SR-IOV inter-VM throughput vs message size",
        ["msg bytes", "Gbps", "CPU%", "Gbps/CPU%"],
        [(size, r.throughput_gbps, r.total_cpu_percent,
          r.throughput_gbps / r.total_cpu_percent)
         for size, r in results.items()],
    )
    for size, result in results.items():
        # Above the physical line rate...
        assert result.throughput_gbps > 1.0
        # ...but capped by the double PCIe crossing (paper: "up to 2.8").
        assert 2.3 < result.throughput_gbps <= 2.9
