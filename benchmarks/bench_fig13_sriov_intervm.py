"""Fig. 13 — SR-IOV inter-VM communication.

Paper: packets between two VFs are switched inside the NIC without
touching the wire, so throughput can exceed the 1 Gbps line rate — but
each packet crosses the PCIe bus twice (TX DMA read to the FIFO, RX DMA
write to the target), capping throughput at ~2.8 Gbps on a single port.
"""

from benchmarks.figutils import print_figure, run_once
from repro.sweep.figures import run_figure

SIZES = [1500, 2000, 2500, 3000, 4000]


def generate():
    return run_figure("fig13")


def test_fig13_sriov_intervm(benchmark):
    results = run_once(benchmark, generate)
    print_figure("fig13", results)
    for size in SIZES:
        result = results[str(size)]
        # Above the physical line rate...
        assert result.throughput_gbps > 1.0
        # ...but capped by the double PCIe crossing (paper: "up to 2.8").
        assert 2.3 < result.throughput_gbps <= 2.9
