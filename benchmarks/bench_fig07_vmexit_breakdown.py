"""Fig. 7 — virtualization overhead per second, by VM-exit event.

Paper: tracing all VM exits for one line-rate HVM guest shows
APIC-access exits are the top cost — 139M of 154M total cycles/second
(90%), 47% of them EOI writes.  Virtual EOI acceleration (§5.2) cuts the
per-EOI cost from 8.4K to 2.5K cycles, dropping the total to 111M
cycles/second (-28%).
"""

import pytest

from benchmarks.figutils import print_figure, run_once
from repro.sweep.figures import run_figure


def generate():
    return run_figure("fig07")


def test_fig07_vmexit_breakdown(benchmark):
    results = run_once(benchmark, generate)
    print_figure("fig07", results)

    base, accel = results["baseline"], results["eoi-accelerated"]
    base_total = sum(base.exit_cycles_per_second.values())
    accel_total = sum(accel.exit_cycles_per_second.values())
    print(f"\ntotal: {base_total / 1e6:.0f}M -> {accel_total / 1e6:.0f}M "
          f"cycles/s ({(1 - accel_total / base_total) * 100:.0f}% reduction; "
          "paper: 154M -> 111M, 28%)")

    apic = (base.exit_cycles_per_second.get("apic-access-eoi", 0)
            + base.exit_cycles_per_second.get("apic-access-other", 0))
    # APIC access dominates (paper: 90%).
    assert apic / base_total > 0.8
    # EOI writes are ~47% of APIC-access exits.
    eoi_count = base.exit_counts["apic-access-eoi"]
    other_count = base.exit_counts["apic-access-other"]
    assert eoi_count / (eoi_count + other_count) == pytest.approx(0.47,
                                                                  abs=0.02)
    # Acceleration reduces total virtualization overhead (paper: -28%).
    reduction = 1 - accel_total / base_total
    assert 0.15 < reduction < 0.45
