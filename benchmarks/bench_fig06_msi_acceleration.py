"""Fig. 6 — CPU utilization and throughput in SR-IOV, 1-7 HVM guests.

Paper: a 64-bit RHEL5U1 (Linux 2.6.18) HVM guest masks/unmasks its MSI
vector around every interrupt; unoptimized, dom0's device model emulates
each write, costing 17% dom0 CPU at 1 VM rising to 30% at 7 VMs, while
throughput stays at the line rate.  Moving the emulation into the
hypervisor (§5.1) collapses dom0 to ~3% at every VM count.
"""

from benchmarks.figutils import (
    assert_flat,
    assert_increasing,
    print_figure,
    run_once,
)
from repro.sweep.figures import run_figure

VM_COUNTS = [1, 3, 5, 7]


def generate():
    return run_figure("fig06")


def test_fig06_msi_acceleration(benchmark):
    results = run_once(benchmark, generate)
    print_figure("fig06", results)
    baseline = [results[f"{n}-VM"] for n in VM_COUNTS]
    optimized = [results[f"{n}-VM-opt"] for n in VM_COUNTS]
    # Throughput flat at line rate in every configuration.
    assert_flat([r.throughput_bps for r in results.values()],
                tolerance=0.03)
    # Unoptimized dom0 cost is large and grows with VM count
    # (paper: 17% -> 30%).
    base_dom0 = [r.cpu["dom0"] for r in baseline]
    assert base_dom0[0] > 10
    assert_increasing(base_dom0)
    # Growing with VM count (paper: 17% -> 30%; measured ~22% -> ~28%).
    assert base_dom0[-1] > base_dom0[0] * 1.2
    # Optimized dom0 sits at the ~3% housekeeping floor, flat in VM#.
    opt_dom0 = [r.cpu["dom0"] for r in optimized]
    assert all(v < 5 for v in opt_dom0)
    assert max(opt_dom0) - min(opt_dom0) < 1.5
