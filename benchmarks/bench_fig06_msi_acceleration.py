"""Fig. 6 — CPU utilization and throughput in SR-IOV, 1-7 HVM guests.

Paper: a 64-bit RHEL5U1 (Linux 2.6.18) HVM guest masks/unmasks its MSI
vector around every interrupt; unoptimized, dom0's device model emulates
each write, costing 17% dom0 CPU at 1 VM rising to 30% at 7 VMs, while
throughput stays at the line rate.  Moving the emulation into the
hypervisor (§5.1) collapses dom0 to ~3% at every VM count.
"""

from benchmarks.figutils import assert_flat, assert_increasing, print_table, run_once
from repro import ExperimentRunner, OptimizationConfig
from repro.drivers import DynamicItr
from repro.vmm import GuestKernel

VM_COUNTS = [1, 3, 5, 7]


def generate():
    runner = ExperimentRunner(warmup=1.2, duration=0.4)
    rows = []
    for vm_count in VM_COUNTS:
        for opts, label in [(OptimizationConfig.none(), f"{vm_count}-VM"),
                            (OptimizationConfig(msi_acceleration=True),
                             f"{vm_count}-VM-opt")]:
            result = runner.run_sriov(
                vm_count, ports=1, kernel=GuestKernel.LINUX_2_6_18,
                opts=opts, policy_factory=lambda: DynamicItr())
            rows.append((label, result.throughput_bps / 1e6,
                         result.cpu["dom0"], result.cpu["guest"],
                         result.cpu["xen"]))
    return rows


def test_fig06_msi_acceleration(benchmark):
    rows = run_once(benchmark, generate)
    print_table("Fig. 6: SR-IOV with 2.6.18 HVM guests, single 1 GbE port",
                ["config", "Mbps", "dom0%", "guest%", "xen%"], rows)
    baseline = [r for r in rows if not r[0].endswith("opt")]
    optimized = [r for r in rows if r[0].endswith("opt")]
    # Throughput flat at line rate in every configuration.
    assert_flat([r[1] for r in rows], tolerance=0.03)
    # Unoptimized dom0 cost is large and grows with VM count
    # (paper: 17% -> 30%).
    base_dom0 = [r[2] for r in baseline]
    assert base_dom0[0] > 10
    assert_increasing(base_dom0)
    # Growing with VM count (paper: 17% -> 30%; measured ~22% -> ~28%).
    assert base_dom0[-1] > base_dom0[0] * 1.2
    # Optimized dom0 sits at the ~3% housekeeping floor, flat in VM#.
    opt_dom0 = [r[2] for r in optimized]
    assert all(v < 5 for v in opt_dom0)
    assert max(opt_dom0) - min(opt_dom0) < 1.5
