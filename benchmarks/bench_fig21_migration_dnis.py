"""Fig. 21 — migrating an HVM guest running netperf with SR-IOV + DNIS.

Paper: before migration dom0 is idle (SR-IOV keeps it off the data
path).  At 4.5 s the VF is virtually hot-removed and the bond fails
over to the PV NIC, costing ~0.6 s of packet loss; the "real" migration
then proceeds, blacking out from 10.3 s to 11.8 s — "on par with the
PV network driver" — and the VF is hot-added back at the target.
"""

import pytest

from benchmarks.figutils import print_figure, run_once
from repro.core.costs import CostModel
from repro.migration import downtime_windows, series_from_timeline
from repro.net import udp_goodput_bps
from repro.sweep.figures import run_figure

LINE = udp_goodput_bps(1e9)


def generate():
    return run_figure("fig21")


def test_fig21_migration_dnis(benchmark):
    results = run_once(benchmark, generate)
    result = results["timeline"]
    print_figure("fig21", results)
    report = result.extras["migration"]
    series = series_from_timeline(result.extras["timeline"], "rx_bytes")
    dom0 = series_from_timeline(result.extras["timeline"], "dom0_cycles")
    clock_hz = CostModel().clock_hz
    print(f"\nswitch outage ends {report['switch_completed_at']:.2f}s; "
          f"blackout {report['blackout_start']:.2f}s -> "
          f"{report['blackout_end']:.2f}s (paper: ~0.6s outage; "
          "10.3s -> 11.8s)")
    # Two outages: the ~0.6 s interface switch, then the blackout.
    steady = LINE / 8 * 0.1
    windows = downtime_windows(series, steady * 0.5, min_duration=0.15)
    assert len(windows) == 2
    switch, blackout = windows
    assert 0.4 < switch[1] - switch[0] < 1.2   # paper: 0.6 s
    assert report["blackout_start"] == pytest.approx(10.3, abs=0.5)
    assert report["blackout_end"] == pytest.approx(11.8, abs=0.5)
    # Before migration, SR-IOV keeps dom0 idle (paper: "completely
    # eliminates CPU utilization in domain 0").
    before = dom0.window_sum(2.0, 2.5) / 0.5 / clock_hz * 100
    assert before < 5
    # During pre-copy the service rides PV: dom0 is busy.
    mid = (report["switch_completed_at"] + report["blackout_start"]) / 2
    during = dom0.window_sum(mid - 0.5, mid) / 0.5 / clock_hz * 100
    assert during > 20
    # The VF is restored at the target.
    assert report["active_path"] == "vf0"
