"""Fig. 21 — migrating an HVM guest running netperf with SR-IOV + DNIS.

Paper: before migration dom0 is idle (SR-IOV keeps it off the data
path).  At 4.5 s the VF is virtually hot-removed and the bond fails
over to the PV NIC, costing ~0.6 s of packet loss; the "real" migration
then proceeds, blacking out from 10.3 s to 11.8 s — "on par with the
PV network driver" — and the VF is hot-added back at the target.
"""

import pytest

from benchmarks.figutils import print_table, run_once
from repro import DomainKind, Testbed, TestbedConfig
from repro.drivers.netfront import Netfront
from repro.migration import (
    DnisGuest,
    MigrationManager,
    PrecopyConfig,
    Sampler,
    downtime_windows,
)
from repro.net import NetperfStream, udp_goodput_bps
from repro.net.mac import MacAddress

START = 4.5
LINE = udp_goodput_bps(1e9)
CLIENT = MacAddress.parse("02:00:00:00:99:99")

#: During pre-copy the service rides the slower PV path, dirtying fewer
#: pages; 0.15 calibrates the blackout to the paper's 10.3 s start.
DNIS_PRECOPY = PrecopyConfig(dirty_ratio=0.15)


def generate():
    bed = Testbed(TestbedConfig(ports=1))
    sriov = bed.add_sriov_guest(DomainKind.HVM)
    netfront = Netfront(bed.platform, sriov.domain, app=sriov.app)
    bed.netback.connect(netfront)
    guest = DnisGuest(bed.platform, sriov.domain, sriov.driver, netfront,
                      bed.hotplug)
    NetperfStream(bed.sim, guest.wire_sink, CLIENT, sriov.vf.mac,
                  LINE, name="client").start()
    manager = MigrationManager(bed.platform, bed.hotplug, DNIS_PRECOPY)
    sampler = Sampler(bed.sim, period=0.1)
    sampler.track("rx_bytes", lambda: sriov.app.rx_bytes)
    machine = bed.platform.machine
    sampler.track("dom0_cycles", lambda: machine.cycles("dom0"))
    sampler.start()
    _, report = manager.migrate_dnis(guest, start_at=START)
    horizon = START + 1.0 + manager.model.total_time + 2.0
    bed.sim.run(until=horizon)
    return sampler, report, guest


def test_fig21_migration_dnis(benchmark):
    sampler, report, guest = run_once(benchmark, generate)
    series = sampler.series("rx_bytes")
    dom0 = sampler.series("dom0_cycles")
    rows = []
    t = 0.5
    while t <= 14.0:
        mbps = series.window_sum(t - 0.5, t) * 8 / 0.5 / 1e6
        dom0_pct = dom0.window_sum(t - 0.5, t) / 0.5 / 2.8e9 * 100
        rows.append((f"{t:.1f}", mbps, dom0_pct))
        t += 0.5
    print_table("Fig. 21: DNIS migration timeline (0.5 s buckets)",
                ["t (s)", "Mbps", "dom0%"], rows)
    print(f"\nswitch outage ends {report.switch_completed_at:.2f}s; "
          f"blackout {report.blackout_start:.2f}s -> "
          f"{report.blackout_end:.2f}s (paper: ~0.6s outage; "
          "10.3s -> 11.8s)")
    # Two outages: the ~0.6 s interface switch, then the blackout.
    steady = LINE / 8 * 0.1
    windows = downtime_windows(series, steady * 0.5, min_duration=0.15)
    assert len(windows) == 2
    switch, blackout = windows
    assert 0.4 < switch[1] - switch[0] < 1.2   # paper: 0.6 s
    assert report.blackout_start == pytest.approx(10.3, abs=0.5)
    assert report.blackout_end == pytest.approx(11.8, abs=0.5)
    # Before migration, SR-IOV keeps dom0 idle (paper: "completely
    # eliminates CPU utilization in domain 0").
    before = dom0.window_sum(2.0, 2.5) / 0.5 / 2.8e9 * 100
    assert before < 5
    # During pre-copy the service rides PV: dom0 is busy.
    mid = (report.switch_completed_at + report.blackout_start) / 2
    during = dom0.window_sum(mid - 0.5, mid) / 0.5 / 2.8e9 * 100
    assert during > 20
    # The VF is restored at the target.
    assert guest.active_path == "vf0"
