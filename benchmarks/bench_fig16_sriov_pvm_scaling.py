"""Fig. 16 — SR-IOV scalability in PVM, 10 to 60 VMs.

Paper: same flat 9.57 Gbps, but each added PVM guest costs only ~1.76%
CPU — the event channel is cheaper to emulate than a virtual LAPIC.
An "interesting finding": at 10 VMs PVM consumes slightly *more* CPU
than HVM, because each x86-64 PV guest syscall crosses the hypervisor
to switch page tables.
"""

from benchmarks.figutils import (
    assert_flat,
    assert_increasing,
    print_figure,
    run_once,
)
from repro.sweep.figures import run_figure

VM_COUNTS = [10, 20, 40, 60]


def generate():
    return run_figure("fig16")


def test_fig16_sriov_pvm_scaling(benchmark):
    results = run_once(benchmark, generate)
    print_figure("fig16", results)
    pvm = {n: results[f"pvm-{n}"] for n in VM_COUNTS}
    hvm_10, hvm_60 = results["hvm-10"], results["hvm-60"]
    totals = [pvm[n].total_cpu_percent for n in VM_COUNTS]
    pvm_slope = (totals[-1] - totals[0]) / 50
    hvm_slope = (hvm_60.total_cpu_percent - hvm_10.total_cpu_percent) / 50
    print(f"\nmarginal CPU per added guest: PVM {pvm_slope:.2f}%, "
          f"HVM {hvm_slope:.2f}% (paper: 1.76% vs 2.8%)")
    # Line rate at every VM count.
    assert_flat([pvm[n].throughput_gbps for n in VM_COUNTS], tolerance=0.02)
    # PVM marginal cost below HVM's (the event-channel advantage).
    assert_increasing(totals)
    assert pvm_slope < hvm_slope
    # The 10-VM crossover: PVM slightly above HVM (x86-64 syscall cost).
    assert pvm[10].total_cpu_percent > hvm_10.total_cpu_percent
    # But cheaper at 60 VMs, where interrupt emulation dominates.
    assert pvm[60].total_cpu_percent < hvm_60.total_cpu_percent
