"""Fig. 16 — SR-IOV scalability in PVM, 10 to 60 VMs.

Paper: same flat 9.57 Gbps, but each added PVM guest costs only ~1.76%
CPU — the event channel is cheaper to emulate than a virtual LAPIC.
An "interesting finding": at 10 VMs PVM consumes slightly *more* CPU
than HVM, because each x86-64 PV guest syscall crosses the hypervisor
to switch page tables.
"""

import pytest

from benchmarks.figutils import assert_flat, assert_increasing, print_table, run_once
from repro import DomainKind, ExperimentRunner
from repro.drivers import FixedItr

VM_COUNTS = [10, 20, 40, 60]


def generate():
    # 2 kHz default ITR, matching Fig. 15's configuration.
    runner = ExperimentRunner(warmup=0.6, duration=0.4)
    policy = lambda: FixedItr(2000)
    pvm = {n: runner.run_sriov(n, kind=DomainKind.PVM,
                               policy_factory=policy) for n in VM_COUNTS}
    hvm_10 = runner.run_sriov(10, kind=DomainKind.HVM, policy_factory=policy)
    hvm_60 = runner.run_sriov(60, kind=DomainKind.HVM, policy_factory=policy)
    return pvm, hvm_10, hvm_60


def test_fig16_sriov_pvm_scaling(benchmark):
    pvm, hvm_10, hvm_60 = run_once(benchmark, generate)
    print_table(
        "Fig. 16: SR-IOV scalability, PVM guests, aggregate 10 GbE",
        ["VMs", "Gbps", "dom0%", "guest%", "xen%", "total%"],
        [(n, r.throughput_gbps, r.cpu.get("dom0", 0.0), r.cpu["guest"],
          r.cpu["xen"], r.total_cpu_percent)
         for n, r in pvm.items()],
    )
    totals = [pvm[n].total_cpu_percent for n in VM_COUNTS]
    pvm_slope = (totals[-1] - totals[0]) / 50
    hvm_slope = (hvm_60.total_cpu_percent - hvm_10.total_cpu_percent) / 50
    print(f"\nmarginal CPU per added guest: PVM {pvm_slope:.2f}%, "
          f"HVM {hvm_slope:.2f}% (paper: 1.76% vs 2.8%)")
    # Line rate at every VM count.
    assert_flat([pvm[n].throughput_gbps for n in VM_COUNTS], tolerance=0.02)
    # PVM marginal cost below HVM's (the event-channel advantage).
    assert_increasing(totals)
    assert pvm_slope < hvm_slope
    # The 10-VM crossover: PVM slightly above HVM (x86-64 syscall cost).
    assert pvm[10].total_cpu_percent > hvm_10.total_cpu_percent
    # But cheaper at 60 VMs, where interrupt emulation dominates.
    assert pvm[60].total_cpu_percent < hvm_60.total_cpu_percent
