#!/usr/bin/env python3
"""CI gate for the public API surface (the ``api-surface`` job).

Four checks, all about the boundary between user code and internals:

1. every example imports (with ``__main__`` guards intact, importing
   is side-effect free), so the examples can only use names that
   actually exist;
2. no example reaches into private names (``from repro.x import _y``
   or ``repro.x._y`` attribute access);
3. importing and exercising the public surface raises no
   ``DeprecationWarning`` — the surface carries no half-removed names;
4. a 2-host cluster scenario runs end-to-end, serially and with one
   process per host, and the two results are byte-identical.

Exits non-zero with a per-check report on any failure.  Run from the
repo root: ``PYTHONPATH=src python tools/check_api_surface.py``.
"""

from __future__ import annotations

import importlib.util
import json
import re
import sys
import warnings
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
EXAMPLES = REPO / "examples"

#: ``from repro... import _private`` (also catches ``_a as b`` and
#: ``a, _b`` lists) and ``repro.module._private`` attribute access.
PRIVATE_IMPORT = re.compile(
    r"^\s*from\s+repro[\w.]*\s+import\s+(?:[\w.,\s]*\s)?_\w+", re.M)
PRIVATE_ATTR = re.compile(r"\brepro(?:\.\w+)*\._\w+")


def check_examples_import() -> list:
    failures = []
    for path in sorted(EXAMPLES.glob("*.py")):
        name = f"_example_{path.stem}"
        spec = importlib.util.spec_from_file_location(name, path)
        module = importlib.util.module_from_spec(spec)
        try:
            sys.modules[name] = module
            spec.loader.exec_module(module)
        except Exception as exc:
            failures.append(f"{path.name}: import failed: {exc!r}")
        if not hasattr(module, "main"):
            failures.append(f"{path.name}: no main() — did importing "
                            f"run the experiment?")
    return failures


def check_no_private_imports() -> list:
    failures = []
    for path in sorted(EXAMPLES.glob("*.py")):
        text = path.read_text()
        for pattern in (PRIVATE_IMPORT, PRIVATE_ATTR):
            for match in pattern.finditer(text):
                line = text[:match.start()].count("\n") + 1
                failures.append(f"{path.name}:{line}: private name "
                                f"{match.group(0).strip()!r}")
    return failures


def check_no_deprecation_warnings() -> list:
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        try:
            import repro
            from repro import ExperimentRunner, Scenario, run
            scenario = Scenario(mode="sriov", vm_count=1, ports=1,
                                warmup=0.05, duration=0.05)
            Scenario.from_dict(scenario.to_dict())
            run(scenario)
            ExperimentRunner(warmup=0.05, duration=0.05).run_sriov(
                1, ports=1, policy={"kind": "fixed_itr", "hz": 2000})
            assert repro.__all__
        except DeprecationWarning as exc:
            return [f"public surface raised DeprecationWarning: {exc}"]
    return []


def check_cluster_smoke() -> list:
    from repro import Scenario, run
    scenario = Scenario(
        mode="cluster",
        hosts=[{"name": "h0", "vm_count": 1},
               {"name": "h1", "vm_count": 1}],
        flows=[{"src_host": "h0", "dst_host": "h1"},
               {"src_host": "h1", "dst_host": "h0"}],
        fabric={"latency_s": 2e-5},
        warmup=0.05, duration=0.05)
    serial = run(scenario)
    parallel = run(scenario, parallel_hosts=True)
    failures = []
    if serial.throughput_bps <= 0:
        failures.append("cluster smoke delivered no traffic")
    if (json.dumps(serial.to_dict(), sort_keys=True)
            != json.dumps(parallel.to_dict(), sort_keys=True)):
        failures.append("serial and process-per-host cluster results "
                        "are not byte-identical")
    return failures


def main() -> int:
    checks = [
        ("examples import cleanly", check_examples_import),
        ("no private imports in examples", check_no_private_imports),
        ("no DeprecationWarning on the public surface",
         check_no_deprecation_warnings),
        ("2-host cluster smoke, serial == process", check_cluster_smoke),
    ]
    bad = 0
    for title, check in checks:
        failures = check()
        status = "FAIL" if failures else "ok"
        print(f"[{status:>4}] {title}")
        for failure in failures:
            print(f"        {failure}")
        bad += len(failures)
    return 1 if bad else 0


if __name__ == "__main__":
    sys.exit(main())
