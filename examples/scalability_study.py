#!/usr/bin/env python3
"""Scalability study: SR-IOV vs the PV split driver, 4 to 24 VMs.

A reduced-scale version of the paper's Figs. 15-18 sweep (the full
10-60 VM sweep lives in benchmarks/).  Shows the two headline effects:

* SR-IOV holds aggregate line rate with a small, near-linear CPU cost
  per added VM — and PVM guests cost less per VM than HVM (event
  channels beat virtual LAPIC emulation, §6.4);
* the PV split driver's dom0 copy threads saturate, so its throughput
  decays as VMs are added (§6.5).

Run:  python examples/scalability_study.py
"""

from repro import DomainKind, ExperimentRunner


def sweep(runner, label, run):
    print(f"\n--- {label} ---")
    print(f"{'VMs':>4} {'Gbps':>7} {'guest%':>8} {'xen%':>7} "
          f"{'dom0%':>7} {'total%':>8}")
    previous_total = None
    for vm_count in [4, 8, 16, 24]:
        result = run(vm_count)
        marginal = ""
        if previous_total is not None:
            delta = (result.total_cpu_percent - previous_total) / 8
            marginal = f"  (+{delta:.2f}%/VM)"
        previous_total = result.total_cpu_percent
        print(f"{vm_count:>4} {result.throughput_gbps:>7.2f} "
              f"{result.cpu.get('guest', 0):>8.1f} "
              f"{result.cpu.get('xen', 0):>7.1f} "
              f"{result.cpu.get('dom0', 0):>7.1f} "
              f"{result.total_cpu_percent:>8.1f}{marginal}")


def main() -> None:
    runner = ExperimentRunner(warmup=0.5, duration=0.4)
    ports = 4  # 4 GbE aggregate for example-sized runs

    sweep(runner, "SR-IOV, HVM guests (cf. Fig. 15)",
          lambda n: runner.run_sriov(n, kind=DomainKind.HVM, ports=ports))
    sweep(runner, "SR-IOV, PVM guests (cf. Fig. 16)",
          lambda n: runner.run_sriov(n, kind=DomainKind.PVM, ports=ports))
    sweep(runner, "PV split driver, HVM guests (cf. Fig. 17)",
          lambda n: runner.run_pv(n, kind=DomainKind.HVM, ports=ports))
    sweep(runner, "PV split driver, PVM guests (cf. Fig. 18)",
          lambda n: runner.run_pv(n, kind=DomainKind.PVM, ports=ports))

    print("\nReading the table: SR-IOV throughput is flat at the line "
          "rate; the PV driver's\ndecays once netback's copy threads "
          "saturate. The per-VM CPU increment is\nsmaller for PVM than "
          "HVM — the event-channel vs virtual-LAPIC gap the paper\n"
          "quantifies as 1.76% vs 2.8% per VM.")


if __name__ == "__main__":
    main()
