#!/usr/bin/env python3
"""Live migration with DNIS: the §4.4 / §6.7 choreography (Figs. 20-21).

Runs two live migrations under netperf traffic and prints per-100ms
throughput timelines:

* a guest on the PV NIC (hardware-neutral: migrates directly);
* a guest on a VF with DNIS — the bonding driver fails over to the PV
  NIC when the migration manager hot-removes the VF (costing a short
  packet-loss window), the "real" migration runs as if the VF never
  existed, and a virtual hot-add restores VF performance at the target.

Run:  python examples/live_migration_dnis.py
"""

from repro import DomainKind, Testbed, TestbedConfig
from repro.drivers.netfront import Netfront
from repro.migration import (
    DnisGuest,
    MigrationManager,
    PrecopyConfig,
    Sampler,
    downtime_windows,
)
from repro.net import NetperfStream, udp_goodput_bps
from repro.net.mac import MacAddress

CLIENT = MacAddress.parse("02:00:00:00:99:99")
LINE = udp_goodput_bps(1e9)
START = 4.5  # the paper's migration start time


def print_timeline(title, sampler, report, horizon):
    print(f"\n--- {title} ---")
    series = sampler.series("rx_bytes")
    print(f"{'t (s)':>6} {'Mbps':>8}  events")
    events = dict()
    for time, name in report.events:
        events.setdefault(round(time, 1), []).append(name)
    t = 0.5
    while t <= horizon:
        mbps = series.window_sum(t - 0.5, t) * 8 / 0.5 / 1e6
        tags = []
        for key in [round(t - 0.4 + i * 0.1, 1) for i in range(5)]:
            tags.extend(events.get(key, []))
        print(f"{t:>6.1f} {mbps:>8.1f}  {', '.join(tags)}")
        t += 0.5
    steady = LINE / 8 * 0.1
    windows = downtime_windows(series, steady * 0.5, min_duration=0.15)
    for start, end in windows:
        print(f"  outage: {start:.1f}s -> {end:.1f}s ({end - start:.1f}s)")


def run_pv_migration():
    bed = Testbed(TestbedConfig(ports=1))
    pv = bed.add_pv_guest(DomainKind.HVM)
    bed.attach_client_to_pv(pv, LINE).start()
    manager = MigrationManager(bed.platform, bed.hotplug, PrecopyConfig())
    sampler = Sampler(bed.sim, period=0.1)
    sampler.track("rx_bytes", lambda: pv.app.rx_bytes)
    sampler.start()
    _, report = manager.migrate_pv(pv.netfront, start_at=START)
    horizon = START + manager.model.total_time + 2.0
    bed.sim.run(until=horizon)
    print_timeline("PV NIC migration (cf. Fig. 20)", sampler, report, horizon)
    print(f"  blackout: {report.blackout_start:.2f}s -> "
          f"{report.blackout_end:.2f}s (paper: 10.4s -> 11.8s)")


def run_dnis_migration():
    bed = Testbed(TestbedConfig(ports=1))
    sriov = bed.add_sriov_guest(DomainKind.HVM)
    netfront = Netfront(bed.platform, sriov.domain, app=sriov.app)
    bed.netback.connect(netfront)
    guest = DnisGuest(bed.platform, sriov.domain, sriov.driver, netfront,
                      bed.hotplug)
    NetperfStream(bed.sim, guest.wire_sink, CLIENT, sriov.vf.mac,
                  LINE, name="client").start()
    # The service rides the (slower-dirtying) PV path during pre-copy,
    # shortening it slightly; calibrated so the blackout lands at the
    # paper's 10.3s (see EXPERIMENTS.md).
    config = PrecopyConfig(dirty_ratio=0.15)
    manager = MigrationManager(bed.platform, bed.hotplug, config)
    sampler = Sampler(bed.sim, period=0.1)
    sampler.track("rx_bytes", lambda: sriov.app.rx_bytes)
    sampler.start()
    _, report = manager.migrate_dnis(guest, start_at=START)
    horizon = START + 1.0 + manager.model.total_time + 2.0
    bed.sim.run(until=horizon)
    print_timeline("SR-IOV + DNIS migration (cf. Fig. 21)", sampler, report,
                   horizon)
    print(f"  interface switch done: {report.switch_completed_at:.2f}s "
          "(~0.6s outage, paper: 0.6s)")
    print(f"  blackout: {report.blackout_start:.2f}s -> "
          f"{report.blackout_end:.2f}s (paper: 10.3s -> 11.8s)")
    print(f"  active path at end: {guest.active_path} (VF restored)")


def main() -> None:
    run_pv_migration()
    run_dnis_migration()
    print("\nDNIS's deal: pay a ~0.6s switch outage up front, keep "
          "full migratability,\nand get bare-metal network performance "
          "back the moment the VF reappears.")


if __name__ == "__main__":
    main()
