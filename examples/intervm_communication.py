#!/usr/bin/env python3
"""Inter-VM communication: SR-IOV's NIC switch vs the PV CPU copy.

Reproduces the §6.3 comparison (Figs. 13-14) across message sizes:

* SR-IOV loops packets back inside the NIC, but every byte crosses the
  PCIe bus twice (TX DMA read + RX DMA write), capping throughput near
  2.8 Gbps regardless of message size;
* the PV path copies VM-to-VM through dom0's CPU: higher peak
  bandwidth that *grows* with message size (fewer per-message
  overheads), but it costs a dom0 core.

Run:  python examples/intervm_communication.py
"""

from repro import ExperimentRunner


def main() -> None:
    runner = ExperimentRunner(warmup=2.2, duration=0.5)
    sizes = [1500, 2000, 2500, 3000, 4000]

    print("--- SR-IOV inter-VM, two guests on one port (cf. Fig. 13) ---")
    print(f"{'msg bytes':>10} {'Gbps':>7} {'CPU%':>7} {'Gbps per CPU%':>15}")
    for size in sizes:
        result = runner.run_intervm_sriov(message_bytes=size)
        efficiency = result.throughput_gbps / max(result.total_cpu_percent, 1e-9)
        print(f"{size:>10} {result.throughput_gbps:>7.2f} "
              f"{result.total_cpu_percent:>7.1f} {efficiency:>15.4f}")

    print("\n--- PV inter-VM via dom0 copy (cf. Fig. 14) ---")
    print(f"{'msg bytes':>10} {'Gbps':>7} {'CPU%':>7} {'Gbps per CPU%':>15}")
    for size in sizes:
        result = runner.run_intervm_pv(message_bytes=size)
        efficiency = result.throughput_gbps / max(result.total_cpu_percent, 1e-9)
        print(f"{size:>10} {result.throughput_gbps:>7.2f} "
              f"{result.total_cpu_percent:>7.1f} {efficiency:>15.4f}")

    print("\nThe paper's conclusion holds: PV peaks higher (CPU memory "
          "copies beat\ndouble PCIe crossings, and large messages "
          "amortize its per-message costs)\nbut SR-IOV wins on "
          "throughput per CPU cycle.")


if __name__ == "__main__":
    main()
