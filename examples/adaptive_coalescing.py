#!/usr/bin/env python3
"""Interrupt coalescing: the §5.3 policy sweep (Figs. 8-10).

Sweeps the VF driver's interrupt-throttle policy over the paper's four
configurations — 20 kHz (low-latency), 2 kHz (driver default), AIC
(the paper's adaptive scheme), 1 kHz — for UDP and TCP streams, then
shows the inter-VM case where AIC's adaptivity avoids the packet loss
fixed policies suffer.

Run:  python examples/adaptive_coalescing.py
"""

from repro import ExperimentRunner
from repro.net.packet import Protocol

POLICIES = [
    ("20 kHz", {"kind": "fixed_itr", "hz": 20000}),
    ("2 kHz", {"kind": "fixed_itr", "hz": 2000}),
    ("AIC", {"kind": "aic"}),
    ("1 kHz", {"kind": "fixed_itr", "hz": 1000}),
]


def main() -> None:
    runner = ExperimentRunner(warmup=2.2, duration=0.5)

    for protocol, label in [(Protocol.UDP, "UDP_STREAM (cf. Fig. 8)"),
                            (Protocol.TCP, "TCP_STREAM (cf. Fig. 9)")]:
        print(f"\n--- {label} ---")
        print(f"{'policy':>8} {'Mbps':>8} {'CPU%':>7} {'loss%':>7} "
              f"{'intr Hz':>9} {'lat us':>8}")
        for name, policy in POLICIES:
            result = runner.run_sriov(1, ports=1, protocol=protocol,
                                      policy=policy)
            print(f"{name:>8} {result.throughput_bps / 1e6:>8.1f} "
                  f"{result.total_cpu_percent:>7.2f} "
                  f"{result.loss_rate * 100:>7.2f} "
                  f"{result.interrupt_hz:>9.0f} "
                  f"{result.latency_mean * 1e6:>8.0f}")

    print("\nThe Fig. 9 effect: TCP at 1 kHz loses ~10% throughput — the "
          "delayed ACKs\ninflate the RTT past the point where the 64 KiB "
          "window can fill the line.\nUDP does not care; it just burns "
          "less CPU at lower interrupt rates.")

    print("\n--- Inter-VM (dom0 -> guest via the NIC switch, "
          "cf. Fig. 10) ---")
    print(f"{'policy':>8} {'RX Gbps':>9} {'loss%':>7} {'intr Hz':>9}")
    for name, policy in POLICIES:
        result = runner.run_intervm_sriov(policy=policy)
        print(f"{name:>8} {result.throughput_gbps:>9.2f} "
              f"{result.loss_rate * 100:>7.2f} "
              f"{result.interrupt_hz:>9.0f}")

    print("\nInter-VM traffic runs above the physical line rate (it never "
          "touches the\nwire), so fixed 2 kHz and 1 kHz overflow the "
          "receive buffers and drop packets;\nAIC raises its frequency "
          "with the measured packet rate and keeps RX = TX.")


if __name__ == "__main__":
    main()
