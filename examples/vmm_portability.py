#!/usr/bin/env python3
"""VMM portability: the same drivers on Xen, KVM, and bare metal.

Paper §4: "the architecture is independent of underlying VMM, allowing
Virtual Function (VF) and Physical Function (PF) drivers to be reused
across different VMM, such as Xen and KVM.  The VF can even run in a
native environment with a PF driver, within the same OS ... the
implementation is ported from Xen to KVM, without code modification to
the PF and VF drivers."

This script assembles the *identical* driver stack — the same classes,
the same bring-up sequence — against three platforms and runs the same
workload on each.  The only thing that changes is the platform object.

Run:  python examples/vmm_portability.py
"""

from repro.devices import Igb82576Port
from repro.drivers import FixedItr, NetserverApp, PfDriver, VfDriver
from repro.net import NetperfStream, udp_goodput_bps
from repro.net.mac import MacAddress
from repro.sim import Simulator
from repro.vmm import DomainKind, Iovm, Kvm, NativeHost, Xen

CLIENT = MacAddress.parse("02:00:00:00:99:99")


def bring_up_and_run(platform, label):
    """The §4.1 bring-up — identical code for every platform."""
    service = getattr(platform, "dom0", None) or platform.create_guest("host")
    port = Igb82576Port(platform.sim, iommu=platform.iommu)
    platform.root_complex.attach(port.pf.pci, bus=1, device=0)
    port.interrupt_sink = platform.deliver_msi

    pf_driver = PfDriver(platform, service, port)
    pf_driver.start()
    pf_driver.enable_sriov(2)
    iovm = Iovm(platform)
    iovm.surface_vfs(port)

    guest = platform.create_guest("guest0", DomainKind.HVM)
    if platform.is_native:
        platform.iommu.attach(port.vf(0).pci.rid, guest.io_page_table)
    else:
        iovm.assign(port.vf(0), guest)

    app = NetserverApp(platform.costs)
    vf_driver = VfDriver(platform, guest, port.vf(0), FixedItr(2000), app)
    vf_driver.start()
    # Exercise the §4.2 mailbox too — a hardware channel, so it cannot
    # depend on the VMM either.
    vf_driver.request_vlan(100)

    NetperfStream(platform.sim, port.wire_receive, CLIENT, port.vf(0).mac,
                  udp_goodput_bps(1e9), name="client").start()
    platform.start_measurement()
    platform.sim.run(until=platform.sim.now + 0.3)
    platform.end_measurement()

    throughput = app.throughput_bps(0.3) / 1e6
    cpu = platform.utilization_breakdown()
    cpu_text = ", ".join(f"{k}={v:.1f}%" for k, v in sorted(cpu.items()))
    print(f"{label:<12} {throughput:7.1f} Mbps   "
          f"{vf_driver.interrupts_handled:5d} interrupts   {cpu_text}")
    assert pf_driver.vf_requests[0] == ["set_vlan"], "mailbox must work"


def main() -> None:
    print("Same PfDriver + VfDriver classes, three platforms:\n")
    bring_up_and_run(Xen(Simulator()), "Xen")
    bring_up_and_run(Kvm(Simulator()), "KVM")
    bring_up_and_run(NativeHost(Simulator()), "bare metal")
    print("\nNo driver code branches on the platform: the §4 architecture "
          "isolates all\nVMM specifics behind the platform interface, and "
          "PF<->VF control flows over\nthe device's own mailbox (§4.2) "
          "rather than any hypervisor channel.")


if __name__ == "__main__":
    main()
