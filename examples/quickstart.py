#!/usr/bin/env python3
"""Quickstart: SR-IOV network virtualization in five minutes.

Builds the paper's testbed (Xen on a 16-thread Xeon 5500, Intel 82576
SR-IOV NICs), boots two HVM guests each with a dedicated Virtual
Function, blasts netperf UDP at them from a simulated client, and prints
what the paper's Fig. 6 would show: line-rate throughput with domain 0
off the data path.

Run:  python examples/quickstart.py
"""

from repro import DomainKind, ExperimentRunner, OptimizationConfig


def main() -> None:
    runner = ExperimentRunner(warmup=0.5, duration=0.5)

    print("=== SR-IOV receive path: 2 HVM guests, one 1 GbE port ===\n")
    result = runner.run_sriov(vm_count=2, ports=1, kind=DomainKind.HVM,
                              opts=OptimizationConfig.all())

    print(f"Aggregate throughput : {result.throughput_gbps * 1000:7.1f} Mbps "
          f"(line-rate UDP goodput is 957.1)")
    for index, bps in enumerate(result.per_vm_throughput_bps):
        print(f"  guest vm{index}          : {bps / 1e6:7.1f} Mbps")
    print(f"Packet loss          : {result.loss_rate * 100:7.2f} %")
    print(f"Interrupt rate/guest : {result.interrupt_hz:7.0f} Hz "
          "(adaptive coalescing)")
    print("\nCPU utilization (xentop convention, 100% = one thread):")
    for account, percent in sorted(result.cpu.items()):
        print(f"  {account:6s}: {percent:6.2f} %")
    print(f"  total : {result.total_cpu_percent:6.2f} %")

    print("\nThe SR-IOV story in one number: dom0 sits at its ~2.8% "
          "device-model floor\nbecause packets DMA straight into the "
          "guests — no hypervisor copy, no dom0\nintervention (paper "
          "§4.1, Fig. 6).")

    print("\n=== The same workload through the Xen PV split driver ===\n")
    pv = runner.run_pv(vm_count=2, ports=1, kind=DomainKind.HVM)
    print(f"Aggregate throughput : {pv.throughput_gbps * 1000:7.1f} Mbps")
    print(f"dom0 CPU             : {pv.cpu.get('dom0', 0):7.2f} % "
          "(every packet is copied by netback)")
    ratio = pv.cpu.get("dom0", 0) / max(result.cpu.get("dom0", 1e-9), 1e-9)
    print(f"\ndom0 cost ratio PV : SR-IOV = {ratio:.0f} : 1")


if __name__ == "__main__":
    main()
