#!/usr/bin/env python3
"""Multi-host scale-out: SR-IOV hosts under a modeled ToR fabric.

The paper measures one server; this extension racks several.  Each
host is a full single-host testbed (its own event engine, NIC, guests),
the ToR forwards frames between host uplinks with configurable latency
and bandwidth, and the engines stay causally consistent by conservative
lockstep (lookahead = fabric latency).  The same scenario can execute
serially or with one worker process per host — byte-identically.

Run:  python examples/multihost_fabric.py
"""

import json

from repro import Scenario, run


def cluster_scenario(pairs: int, uplink_gbps: float = 10.0) -> Scenario:
    """Two hosts, ``pairs`` bidirectional 400 Mbps tenant flows."""
    hosts = [{"name": name, "vm_count": pairs, "ports": pairs}
             for name in ("left", "right")]
    flows = []
    for vm in range(pairs):
        flows.append({"src_host": "left", "dst_host": "right",
                      "src_vm": vm, "dst_vm": vm, "offered_bps": 400e6})
        flows.append({"src_host": "right", "dst_host": "left",
                      "src_vm": vm, "dst_vm": vm, "offered_bps": 400e6})
    return Scenario(mode="cluster", hosts=hosts, flows=flows,
                    fabric={"uplink_gbps": uplink_gbps,
                            "latency_s": 2e-5},
                    warmup=0.1, duration=0.05)


def main() -> None:
    print("--- cross-host scaling over a 10 GbE ToR (cf. fig22) ---")
    print(f"{'pairs':>6} {'Gbps':>7} {'loss%':>7} {'lat us':>8} "
          f"{'fabric frames':>14} {'sync windows':>13}")
    for pairs in (1, 2, 4):
        result = run(cluster_scenario(pairs))
        cluster = result.extras["cluster"]
        print(f"{pairs:>6} {result.throughput_gbps:>7.2f} "
              f"{result.loss_rate * 100:>7.2f} "
              f"{result.latency_mean * 1e6:>8.0f} "
              f"{cluster['fabric']['forwarded']:>14} "
              f"{cluster['sync_windows']:>13}")

    print("\n--- a congested fabric drops at the ToR, not the NIC ---")
    result = run(cluster_scenario(2, uplink_gbps=0.1))
    fabric = result.extras["cluster"]["fabric"]
    print(f"0.1 Gbps uplinks: {result.throughput_gbps:.3f} Gbps "
          f"delivered, {result.loss_rate * 100:.1f}% loss "
          f"({fabric['dropped']} frames tail-dropped)")

    print("\n--- serial vs process-per-host: byte-identical ---")
    scenario = cluster_scenario(2)
    serial = run(scenario)
    parallel = run(scenario, parallel_hosts=True)
    identical = (json.dumps(serial.to_dict(), sort_keys=True)
                 == json.dumps(parallel.to_dict(), sort_keys=True))
    print(f"result dicts identical: {identical}")
    assert identical

    print("\nThe scenario is plain data — hosts, fabric, flows — so it "
          "sweeps, caches\nand checkpoints like any other; "
          "parallel_hosts= is a run() input, not a\nScenario field, "
          "because it cannot change the answer.")


if __name__ == "__main__":
    main()
