"""One rack slot: a :class:`~repro.core.testbed.Testbed` with a fabric
uplink.

The paper's server becomes a *host* the moment it joins a cluster
scenario: same platform, same SR-IOV NICs and guests, plus (a) a MAC
realm so its locally administered addresses are fleet-unique, (b) wire
uplinks whose TX side feeds the ToR fabric instead of vanishing, and
(c) an ingress path that replays fabric deliveries into the right
port's wire receive.

A Host still owns its own :class:`~repro.sim.engine.Simulator`; the
cluster coordinator (:mod:`repro.cluster`) advances many of them in
conservative lockstep windows (:mod:`repro.sim.sync`).  Everything a
Host exchanges with the coordinator is plain data — spec dicts in,
egress-record dicts out — so the exact same Host runs in-process or
behind a worker-process pipe with bit-identical results.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional

from repro.core.costs import CostModel
from repro.core.optimizations import OptimizationConfig
from repro.core.testbed import SriovGuest, Testbed, TestbedConfig
from repro.drivers.coalescing import AdaptiveCoalescing, policy_from_spec
from repro.net.link import Link
from repro.net.mac import MacAddress
from repro.net.netperf import NetperfStream
from repro.net.packet import DEFAULT_MTU, Protocol
from repro.vmm.domain import DomainKind, GuestKernel

_KINDS = {"hvm": DomainKind.HVM, "pvm": DomainKind.PVM}
_KERNELS = {k.value: k for k in GuestKernel}
_PROTOCOLS = {p.value: p for p in Protocol}


def derive_host_seed(base: int, name: str) -> int:
    """A host's private RNG seed: deterministic in (scenario seed, host
    name), decorrelated across hosts, identical across processes."""
    return (base * 2654435761 + zlib.crc32(name.encode("utf-8"))) % (1 << 32)


@dataclass(frozen=True)
class HostSpec:
    """Declarative per-host placement (one ``Scenario.hosts`` entry)."""

    name: str
    vm_count: int = 2
    kind: str = "hvm"
    kernel: str = "2.6.28"
    ports: int = 1
    vfs_per_port: int = 7
    #: Coalescing-policy spec for this host's guests; None keeps the
    #: adaptive default.
    policy: Optional[Mapping] = None

    def __post_init__(self):
        if not self.name:
            raise ValueError("host name must be non-empty")
        if self.vm_count < 1:
            raise ValueError(f"host {self.name!r} needs at least one VM")
        if self.ports < 1 or self.vfs_per_port < 1:
            raise ValueError(f"host {self.name!r}: ports and vfs_per_port "
                             "must be positive")
        if self.vm_count > self.ports * self.vfs_per_port:
            raise ValueError(
                f"host {self.name!r} places {self.vm_count} VMs but has "
                f"only {self.ports * self.vfs_per_port} VFs")
        if self.kind not in _KINDS:
            raise ValueError(f"host {self.name!r} kind must be one of "
                             f"{sorted(_KINDS)}, not {self.kind!r}")
        if self.kernel not in _KERNELS:
            raise ValueError(f"host {self.name!r} kernel must be one of "
                             f"{sorted(_KERNELS)}, not {self.kernel!r}")
        if self.policy is not None:
            object.__setattr__(self, "policy", dict(self.policy))

    def to_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "name": self.name, "vm_count": self.vm_count,
            "kind": self.kind, "kernel": self.kernel,
            "ports": self.ports, "vfs_per_port": self.vfs_per_port,
        }
        if self.policy is not None:
            data["policy"] = dict(self.policy)
        return data

    @classmethod
    def from_dict(cls, data: Mapping, index: int = 0) -> "HostSpec":
        known = {"name", "vm_count", "kind", "kernel", "ports",
                 "vfs_per_port", "policy"}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(f"unknown host fields: {unknown} "
                             f"(valid fields: {sorted(known)})")
        fields = {k: data[k] for k in known if k in data}
        fields.setdefault("name", f"h{index}")
        return cls(**fields)


@dataclass(frozen=True)
class FlowSpec:
    """One tenant traffic-matrix entry (one ``Scenario.flows`` item).

    A flow is a netperf stream from one placed VM to another, addressed
    by (host name, VM index).  Same-host flows ride the NIC's internal
    switch; cross-host flows leave on the source port's uplink and
    traverse the ToR fabric.
    """

    src_host: str
    dst_host: str
    src_vm: int = 0
    dst_vm: int = 0
    offered_bps: float = 400e6
    message_bytes: int = 1500
    protocol: str = "udp"

    def __post_init__(self):
        if not self.src_host or not self.dst_host:
            raise ValueError("flow src_host and dst_host must be non-empty")
        if self.src_vm < 0 or self.dst_vm < 0:
            raise ValueError("flow VM indexes must be non-negative")
        if self.offered_bps <= 0:
            raise ValueError("flow offered_bps must be positive")
        if self.message_bytes < 1:
            raise ValueError("flow message_bytes must be positive")
        if self.protocol not in _PROTOCOLS:
            raise ValueError(f"flow protocol must be one of "
                             f"{sorted(_PROTOCOLS)}, not {self.protocol!r}")

    def to_dict(self) -> Dict[str, object]:
        return {"src_host": self.src_host, "dst_host": self.dst_host,
                "src_vm": self.src_vm, "dst_vm": self.dst_vm,
                "offered_bps": float(self.offered_bps),
                "message_bytes": self.message_bytes,
                "protocol": self.protocol}

    @classmethod
    def from_dict(cls, data: Mapping) -> "FlowSpec":
        known = {"src_host", "dst_host", "src_vm", "dst_vm",
                 "offered_bps", "message_bytes", "protocol"}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(f"unknown flow fields: {unknown} "
                             f"(valid fields: {sorted(known)})")
        return cls(**{k: data[k] for k in known if k in data})


class Host:
    """A built testbed participating in a cluster run."""

    def __init__(self, spec: HostSpec, index: int, *,
                 costs: Optional[CostModel] = None,
                 base_seed: int = 42,
                 audit: bool = True,
                 telemetry: bool = False,
                 sim_mode: str = "exact",
                 faults: Optional[List[dict]] = None):
        if index < 0 or index > 0xFE:
            raise ValueError("a fabric supports at most 255 hosts")
        self.spec = spec
        self.index = index
        self.sim_mode = sim_mode
        # This host's slice of the cluster fault plan (host key already
        # stripped by split_plan): in-host kinds go to the testbed's
        # injector, uplink flaps to the bonding layer built below.
        local_specs: List[dict] = []
        uplink_specs: List[dict] = []
        for fault in (faults or ()):
            if fault["kind"] in ("uplink_down", "uplink_up"):
                uplink_specs.append(fault)
            else:
                local_specs.append(fault)
        config = TestbedConfig(
            ports=spec.ports,
            vfs_per_port=spec.vfs_per_port,
            costs=(costs or CostModel()).validate(),
            opts=OptimizationConfig.all(),
            seed=derive_host_seed(base_seed, spec.name),
            # Realm 0 is the historical single-host address space;
            # cluster members start at 1 so no host collides with it
            # (or with each other).
            mac_realm=index + 1,
            audit=audit,
            sim_mode=sim_mode,
            faults=local_specs or None,
            # Forked per host so two hosts running the same plan draw
            # decorrelated coin-flip sequences.
            fault_stream=f"faults/{spec.name}",
        )
        self.bed = Testbed(config)
        self.sim = self.bed.sim
        self.telemetry = None
        if telemetry:
            from repro.obs.telemetry import Telemetry
            self.telemetry = Telemetry(self.sim,
                                       namespace=f"host.{spec.name}")
            self.telemetry.attach_platform(self.bed.platform)
            for port in self.bed.ports:
                self.telemetry.attach_port(port)
        policy_spec = spec.policy
        costs_v = config.costs

        def make_policy():
            if policy_spec is not None:
                return policy_from_spec(policy_spec, costs_v)
            return AdaptiveCoalescing(costs_v)

        self.guests: List[SriovGuest] = [
            self.bed.add_sriov_guest(_KINDS[spec.kind],
                                     _KERNELS[spec.kernel], make_policy())
            for _ in range(spec.vm_count)
        ]
        #: Egress records collected since the last :meth:`advance`.
        self._outbound: List[dict] = []
        #: Collapsed egress awaiting sequence numbers: fluid flows
        #: stage their replayed uplink deliveries here (seq-less); the
        #: flush sorts by delivery time and numbers them, reproducing
        #: the exact run's host-global egress order.
        self._staged: List[dict] = []
        self._egress_seq = 0
        self._mac_to_port = {guest.vf.mac.value: guest.port
                             for guest in self.guests}
        for port in self.bed.ports:
            uplink = Link(self.sim, rate_bps=port.LINE_RATE_BPS,
                          name=f"{spec.name}.{port.name}.uplink")
            uplink.connect(self._egress)
            port.attach_uplink(uplink)
        self.fault_layer = None
        if uplink_specs:
            from repro.faults.cluster import HostUplinkFaults
            self.fault_layer = HostUplinkFaults(
                self.sim, spec.name, self.bed.ports, uplink_specs)
        self._interrupts_before: List[int] = []
        self.uplink_tx_frames = 0

    # ------------------------------------------------------------------
    # wiring the coordinator sees
    # ------------------------------------------------------------------
    def mac_table(self) -> Dict[int, int]:
        """``{vm index: VF MAC as int}`` for this host's guests."""
        return {i: guest.vf.mac.value
                for i, guest in enumerate(self.guests)}

    def configure_flows(self, flows: List[dict]) -> None:
        """Start the netperf streams this host originates.

        Each entry carries ``src_vm``, ``dst_mac`` (already resolved by
        the coordinator from the cluster-wide MAC table), ``offered_bps``,
        ``message_bytes``, ``protocol`` and ``flow_id``.
        """
        streams = []
        for flow in flows:
            guest = self.guests[flow["src_vm"]]
            mtu = min(int(flow["message_bytes"]), DEFAULT_MTU)
            stream = NetperfStream(
                self.sim, guest.driver.transmit, guest.vf.mac,
                MacAddress(flow["dst_mac"]), flow["offered_bps"],
                _PROTOCOLS[flow["protocol"]], mtu=mtu,
                flow_id=flow["flow_id"],
                burst_interval=self.bed._burst_interval_for(
                    flow["offered_bps"]),
                name=f"{self.spec.name}.flow{flow['flow_id']}",
                pool=self.bed.packet_pool,
            )
            streams.append((guest, stream))
        if self.sim_mode == "fluid" and streams:
            self._attach_fluid(streams)
        for _guest, stream in streams:
            stream.start()
        fluid_flows = self.bed.fluid_flows
        if fluid_flows and not all(flow.active for flow in fluid_flows):
            # A sibling's begin() fell back to exact: sequence numbers
            # are host-global, so nobody collapses.
            self._evict_fluid()

    def _attach_fluid(self, streams) -> None:
        """Install a :class:`~repro.sim.fluid_host.FluidHostFlow` per
        stream — or none at all.

        Collapse is all-or-nothing per host: egress sequence numbers
        are host-global, so one exact stream beside a collapsed one
        would interleave live and staged records.  The total-order
        replay also needs each port's event sources to belong to one
        flow, so two streams sharing a port keep the host exact.
        """
        from repro.sim.fluid_host import FluidHostFlow
        ports = {id(guest.port) for guest, _stream in streams}
        if len(ports) != len(streams):
            for _ in streams:
                self.bed.record_fluid_rejection("port_shared")
            return
        flows = []
        for guest, stream in streams:
            flow = FluidHostFlow(self, guest, stream)
            if not flow.try_attach():
                for earlier in flows:
                    earlier.detach()
                    self.bed.record_fluid_rejection("host_evicted")
                return
            flows.append(flow)
        self.bed.fluid_flows.extend(flows)

    # ------------------------------------------------------------------
    # lockstep stepping
    # ------------------------------------------------------------------
    def peek(self) -> Optional[float]:
        """The earliest future instant this host can act at.

        Collapsed flows schedule no events, so their next tick and
        earliest staged wire delivery join the engine's peek — that is
        what keeps the lockstep barrier's no-time-travel proof intact.
        Pending virtual *fires* are deliberately left out: they produce
        no egress, so fluid windows span them (fewer, wider windows
        than exact; window count is pure synchronization).
        """
        t = self.sim.peek()
        for flow in self.bed.fluid_flows:
            if flow.active:
                ft = flow.next_time()
                if t is None or ft < t:
                    t = ft
        return t

    def advance(self, window_end: float, inbound: List[dict]):
        """Inject fabric deliveries, run to the window end, and return
        ``(egress records, next-event peek)``.

        ``inbound`` must arrive pre-sorted by (arrival, source host,
        sequence): ties then execute in schedule order, which the engine
        keeps FIFO, so delivery order is globally deterministic.  A port
        with an active fluid flow takes its deliveries into the flow's
        virtual queue here — the same instant, and the same order, the
        exact host would create the ``_ingress`` handles.
        """
        for message in inbound:
            port = self._mac_to_port.get(message["dst"])
            if port is None:
                continue
            flow = port._fluid_tx
            if flow is not None and flow.active:
                if not flow.accept_arrival(message):
                    # A frame the collapsed replay cannot express: the
                    # whole host leaves the fast path, and the message
                    # takes the exact ingress schedule it always had.
                    self._evict_fluid()
                    self.sim.schedule_at(message["arrival"], self._ingress,
                                         message, port)
            else:
                self.sim.schedule_at(message["arrival"], self._ingress,
                                     message, port)
        self.sim.run(until=window_end)
        if self.sim_mode == "fluid":
            self.bed.settle_fluid()
            self._flush_staged()
        outbound = self._outbound
        self._outbound = []
        return outbound, self.peek()

    def _flush_staged(self) -> None:
        """Assign sequence numbers to collapsed egress.

        Staged records are seq-less; sorting by delivery time and
        numbering in that order reproduces the exact run's host-global
        egress sequence (uplink deliveries execute in time order;
        cross-port ties are measure-zero).
        """
        staged = self._staged
        if not staged:
            return
        staged.sort(key=lambda record: record["t"])
        seq = self._egress_seq
        outbound = self._outbound
        for record in staged:
            record["seq"] = seq
            seq += 1
            outbound.append(record)
        self._egress_seq = seq
        self._staged = []

    def _evict_fluid(self) -> None:
        """Take every collapsed flow exact, together, for good.

        The egress sequence column is host-global, so the flows must
        leave as a unit: replay everyone to the present, flush the
        staged records (their seqs predate anything the exact engine
        will now emit), then materialize rings and re-arm real timers.
        """
        flows = [flow for flow in self.bed.fluid_flows if flow.active]
        now = self.sim.now
        for flow in flows:
            flow.active = False
        for flow in flows:
            flow._advance(now, inclusive=False)
        self._flush_staged()
        for flow in flows:
            flow._finish_decollapse()
            self.bed.record_fluid_rejection("host_evicted")
        for flow in self.bed.fluid_flows:
            flow.detach()

    def _egress(self, packet) -> None:
        """Uplink TX sink: serialize the frame for the fabric.

        ``t`` is the moment the frame clears this host's wire — the
        coordinator's ToR model adds fabric latency and serialization on
        top.  Records are plain data so they cross process boundaries
        (and the float bits in them survive pickling exactly).
        """
        self.uplink_tx_frames += 1
        self._outbound.append({
            "t": self.sim.now,
            "src_host": self.index,
            "seq": self._egress_seq,
            "src": packet.src.value,
            "dst": packet.dst.value,
            "size": packet.size_bytes,
            "vlan": packet.vlan,
            "protocol": packet.protocol.value,
            "flow_id": packet.flow_id,
            "created_at": packet.created_at,
        })
        self._egress_seq += 1

    def _ingress(self, message: dict, port) -> None:
        """Fabric delivery: rebuild the frame(s) from this host's pool
        and hand them to the owning port's wire side.  ``created_at`` is
        the original send time, so end-to-end latency spans the fabric;
        ``count`` (default 1) rebuilds a whole routed burst at once."""
        burst = self.bed.packet_pool.acquire_burst(
            message.get("count", 1), MacAddress(message["src"]),
            MacAddress(message["dst"]),
            message["size"], vlan=message["vlan"],
            protocol=_PROTOCOLS[message["protocol"]],
            flow_id=message["flow_id"], created_at=message["created_at"])
        port.wire_receive(burst)

    # ------------------------------------------------------------------
    # measurement
    # ------------------------------------------------------------------
    def start_measurement(self) -> None:
        # Collapsed flows settled at the last window end (advance is
        # inclusive); this is the idempotent backstop that keeps the
        # measurement boundary a settle point.
        self.bed.settle_fluid()
        self.bed.platform.start_measurement()
        for guest in self.guests:
            guest.app.reset()
        self._interrupts_before = [guest.driver.interrupts_handled
                                   for guest in self.guests]

    def collect(self) -> dict:
        """End the window and report this host's share of the result —
        plain sums and counts, so the coordinator can aggregate exactly."""
        self.bed.settle_fluid()
        elapsed = self.bed.platform.end_measurement()
        auditor = getattr(self.bed, "auditor", None)
        if auditor is not None:
            auditor.audit(phase="end")
        apps = [guest.app for guest in self.guests]
        per_vm = [app.throughput_bps(elapsed) for app in apps]
        offered = sum(app.rx_packets + app.dropped_packets for app in apps)
        dropped = sum(app.dropped_packets for app in apps)
        interrupt_delta = sum(
            guest.driver.interrupts_handled - before
            for guest, before in zip(self.guests, self._interrupts_before))
        exit_cycles: Dict[str, float] = {}
        exit_counts: Dict[str, int] = {}
        for kind, (count, cycles) in \
                self.bed.platform.ledger.exit_breakdown().items():
            if cycles > 0:
                exit_cycles[kind] = cycles
            if count:
                exit_counts[kind] = count
        latency_count = sum(app.latency.count for app in apps)
        latency_sum = sum(app.latency.mean * app.latency.count
                          for app in apps)
        latency_p99 = max((app.latency.percentile(99) for app in apps
                           if app.latency.count), default=0.0)
        data = {
            "name": self.spec.name,
            "vm_count": len(self.guests),
            "elapsed": elapsed,
            "throughput_bps": sum(per_vm),
            "per_vm_throughput_bps": per_vm,
            "cpu": self.bed.platform.utilization_breakdown(),
            "offered_packets": offered,
            "dropped_packets": dropped,
            "interrupt_delta": interrupt_delta,
            "driver_count": len(self.guests),
            "exit_cycles": exit_cycles,
            "exit_counts": exit_counts,
            "latency_sum": latency_sum,
            "latency_count": latency_count,
            "latency_p99": latency_p99,
            "uplink_tx_frames": self.uplink_tx_frames,
            "events_executed": self.sim.events_executed,
        }
        if self.sim_mode == "fluid":
            data["events_collapsed"] = self.sim.collapsed_events
            data["fluid_flows"] = len(self.bed.fluid_flows)
            data["fluid_rejections"] = dict(self.bed.fluid_rejections)
        # The faults key exists only on faulted hosts, so fault-free
        # host dicts (and their aggregated extras) stay byte-identical.
        fault_summary: Dict[str, int] = {}
        if self.bed.injector is not None:
            fault_summary.update(self.bed.injector.summary())
        if self.fault_layer is not None:
            fault_summary.update(self.fault_layer.summary())
        if fault_summary:
            data["faults"] = fault_summary
        return data
