"""The paper's contribution as a public API.

* :mod:`repro.core.costs` — the calibrated :class:`CostModel` (every
  cycle count in one place, paper-cited or fitted-and-documented).
* :mod:`repro.core.optimizations` — the §5 optimization switches.
* :mod:`repro.core.testbed` — the §6.1 testbed builder: Xen (or bare
  metal), ten SR-IOV ports, IOVM, PF drivers; add SR-IOV / PV / VMDq
  guests and netperf clients.
* :mod:`repro.core.experiment` — measurement loops returning the
  quantities the paper plots.
"""

from repro.core.costs import CostModel
from repro.core.experiment import ExperimentRunner, RunResult, steady_tcp_rate
from repro.core.optimizations import OptimizationConfig
from repro.core.report import XentopReport, format_run_result
from repro.core.testbed import (
    PvGuest,
    SriovGuest,
    Testbed,
    TestbedConfig,
)

__all__ = [
    "CostModel",
    "ExperimentRunner",
    "OptimizationConfig",
    "PvGuest",
    "RunResult",
    "SriovGuest",
    "Testbed",
    "TestbedConfig",
    "XentopReport",
    "format_run_result",
    "steady_tcp_rate",
]
