"""The calibrated cost model.

Every cycle count the simulation charges comes from this table.  Values
marked **[paper]** are quoted directly in the text; values marked
**[calibrated]** are free parameters fitted so the model reproduces the
figure-level numbers the paper reports (the fit is documented field by
field and summarized in EXPERIMENTS.md).  Nothing else in the library
hard-codes a cycle count.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class CostModel:
    """Cycle costs and testbed constants for the simulation.

    The defaults describe the paper's testbed (§6.1): dual quad-core
    SMT-enabled Xeon 5500 at 2.8 GHz, Xen 3.4, RHEL5U1 dom0.
    """

    # ------------------------------------------------------------------
    # platform
    # ------------------------------------------------------------------
    #: [paper §6.1] 2.8 GHz cores.
    clock_hz: float = 2.8e9
    #: [paper §6.1] 2 sockets x 4 cores x 2 SMT threads.
    core_count: int = 16
    #: [paper §6.1] dom0 runs 8 VCPUs, each pinned to its own thread.
    dom0_vcpus: int = 8

    # ------------------------------------------------------------------
    # guest packet processing (common to native and virtual)
    # ------------------------------------------------------------------
    #: [calibrated] Per-packet receive cost in the guest: driver + IP/UDP
    #: stack + socket + netserver copy-to-user.  4600 cycles x 81.3 kpps
    #: = 13.4% of one core, matching the paper's 145% native total for
    #: ten 957 Mbps streams (Fig. 12's "native" bar) once per-interrupt
    #: cost is added.
    guest_cycles_per_packet: float = 4600.0
    #: [calibrated] Per-interrupt guest cost: IRQ entry/exit, NAPI
    #: scheduling, ring cleanup, timer/cache effects (~5 us at 2.8 GHz).
    guest_cycles_per_interrupt: float = 14000.0
    #: [calibrated] Extra per-packet cost in an x86-64 PV guest: the
    #: user/kernel boundary crossing goes through the hypervisor to
    #: switch page tables (§6.4, citing [19]).  Makes 10-VM PVM consume
    #: slightly more CPU than HVM, as the paper observes.
    pvm_syscall_surcharge_per_packet: float = 600.0

    # ------------------------------------------------------------------
    # HVM interrupt virtualization (§5.2, Fig. 7)
    # ------------------------------------------------------------------
    #: [paper §5.2] Virtual EOI emulation via full fetch-decode-emulate.
    eoi_emulate_cycles: float = 8400.0
    #: [paper §5.2] Virtual EOI via the Exit-qualification fast path.
    eoi_accelerated_cycles: float = 2500.0
    #: [paper §5.2] Optional guest-instruction check on the fast path.
    eoi_instruction_check_cycles: float = 1800.0
    #: [calibrated] Non-EOI APIC-access exits (IRR/ISR window reads,
    #: TPR, interrupt-window handling) per delivered interrupt.  1.13
    #: makes EOI writes 47% of all APIC-access exits, the paper's split.
    other_apic_accesses_per_interrupt: float = 1.13
    #: [calibrated] Cost of one non-EOI APIC-access exit: same
    #: fetch-decode-emulate machinery as an unaccelerated EOI.
    other_apic_access_cycles: float = 8400.0
    #: [calibrated] External-interrupt VM exit + virtual MSI injection
    #: bookkeeping in Xen, per physical interrupt.
    external_interrupt_exit_cycles: float = 2400.0

    # ------------------------------------------------------------------
    # PVM interrupt virtualization (§6.4)
    # ------------------------------------------------------------------
    #: [calibrated] Event-channel notification: cheaper than the virtual
    #: LAPIC path, which is why PVM scales at 1.76%/VM vs HVM's 2.8%.
    event_channel_notify_cycles: float = 5000.0

    # ------------------------------------------------------------------
    # MSI mask/unmask emulation (§5.1, Figs. 6 and 12)
    # ------------------------------------------------------------------
    #: [calibrated] dom0 device-model cost per mask-or-unmask MMIO trap:
    #: domain context switch + qemu wakeup + emulation.  30k cycles x
    #: 2 ops x ~9 kHz reproduces Fig. 6's 17% dom0 at 1 VM.
    dm_msi_roundtrip_cycles: float = 30000.0
    #: [calibrated] The per-extra-VM inflation of that cost (qemu
    #: processes contending for dom0 VCPUs, cache/TLB thrash): +5% per
    #: additional VM reproduces Fig. 6's rise from ~17% to ~30% dom0 at
    #: 7 VMs and Fig. 12's ~208-point dom0 share of the MSI savings.
    dm_msi_contention_per_vm: float = 0.05
    #: [calibrated] Xen-side cost of forwarding the trap to dom0 and
    #: switching back (the 48% Xen share of Fig. 12's MSI savings).
    xen_msi_forward_cycles: float = 8600.0
    #: [calibrated] Guest-side stall per forwarded mask/unmask (TLB and
    #: cache pollution; the 16% guest share of Fig. 12's MSI savings).
    guest_msi_stall_cycles: float = 2900.0
    #: [calibrated] Hypervisor-level mask/unmask emulation after the
    #: §5.1 optimization: a single lightweight VM exit.
    xen_msi_accelerated_cycles: float = 1500.0
    #: [calibrated] Fixed dom0 housekeeping for the device-model
    #: processes backing HVM guests (Fig. 6's ~3% floor after the
    #: optimization).
    dm_housekeeping_percent: float = 2.8

    # ------------------------------------------------------------------
    # PV split driver (§6.5, Figs. 14, 17, 18)
    # ------------------------------------------------------------------
    #: [calibrated] dom0 netback cost per packet for a PVM guest: grant
    #: copy of the frame + ring/event work.  11.1k cycles x 813 kpps =
    #: Fig. 18's 324% dom0.
    netback_cycles_per_packet_pvm: float = 11100.0
    #: [calibrated] Additional per-packet cost when the guest is HVM:
    #: the event-channel-over-LAPIC interrupt conversion layer (§6.5's
    #: 431% vs 324% dom0 comparison).
    netback_hvm_extra_cycles: float = 3700.0
    #: [calibrated] Per-additional-VM inflation of netback's per-packet
    #: cost (60 rings' worth of cache/TLB working set): drives the
    #: throughput decay of Figs. 17-18.
    netback_contention_per_vm: float = 0.008
    #: [calibrated] Netback service threads after the paper's
    #: multi-thread enhancement ("accommodate more threads", §6.5).
    netback_threads: int = 5
    #: [calibrated] Guest-side netfront cost per packet (grant setup +
    #: ring + stack); replaces the VF driver's per-packet cost on the
    #: PV path.
    netfront_cycles_per_packet: float = 6000.0
    #: [calibrated] Single-threaded (unenhanced) netback saturates one
    #: core: 2.8e9 / 11.1k = 252 kpps = 3.1 Gbps, the paper's "only
    #: 3.6 Gbps ... in the case of 10 VMs" for the stock driver.
    netback_threads_unenhanced: int = 1

    # ------------------------------------------------------------------
    # VMDq (§6.6, Fig. 19)
    # ------------------------------------------------------------------
    #: [calibrated] dom0 per-packet cost for a VMDq-queued guest:
    #: classification is in hardware, but dom0 still copies into the
    #: guest and translates addresses.
    vmdq_dom0_cycles_per_packet: float = 9000.0
    #: [calibrated] Per-packet cost for guests beyond the 7 dedicated
    #: queues: conventional PV path plus software bridging on the
    #: shared default queue.
    vmdq_fallback_cycles_per_packet: float = 13000.0

    # ------------------------------------------------------------------
    # inter-VM (§6.3, Figs. 13-14)
    # ------------------------------------------------------------------
    #: [calibrated] CPU copy rate for PV inter-VM packets: dom0 moves
    #: payload memory-to-memory at core speed; 4.5 bytes/cycle keeps the
    #: PV inter-VM ceiling at the paper's 4.3 Gbps with one busy core
    #: plus protocol overhead.
    cpu_copy_bytes_per_cycle: float = 4.5

    # ------------------------------------------------------------------
    # adaptive interrupt coalescing (§5.3)
    # ------------------------------------------------------------------
    #: [paper §5.3] Application buffer count (120832 B socket buffer).
    aic_ap_bufs: int = 64
    #: [paper §5.3] Device-driver descriptor count.
    aic_dd_bufs: int = 1024
    #: [paper §5.3] Redundancy factor giving the hypervisor headroom.
    aic_redundancy: float = 1.2
    #: [calibrated] Lowest acceptable interrupt frequency (lif): bounds
    #: worst-case latency.
    aic_lif_hz: float = 900.0
    #: [paper §5.3] pps is sampled once per second.
    aic_sample_period: float = 1.0

    def validate(self) -> "CostModel":
        """Sanity-check the parameterization; returns self for chaining."""
        positive_fields = [
            "clock_hz", "guest_cycles_per_packet", "guest_cycles_per_interrupt",
            "eoi_emulate_cycles", "eoi_accelerated_cycles",
            "external_interrupt_exit_cycles", "event_channel_notify_cycles",
            "dm_msi_roundtrip_cycles", "netback_cycles_per_packet_pvm",
            "netfront_cycles_per_packet", "cpu_copy_bytes_per_cycle",
            "aic_redundancy", "aic_lif_hz", "aic_sample_period",
        ]
        for name in positive_fields:
            if getattr(self, name) <= 0:
                raise ValueError(f"CostModel.{name} must be positive")
        if self.core_count <= 0 or self.dom0_vcpus <= 0:
            raise ValueError("core counts must be positive")
        if self.dom0_vcpus > self.core_count:
            raise ValueError("dom0 VCPUs cannot exceed physical threads")
        if self.eoi_accelerated_cycles >= self.eoi_emulate_cycles:
            raise ValueError("accelerated EOI must be cheaper than emulated")
        if self.aic_ap_bufs <= 0 or self.aic_dd_bufs <= 0:
            raise ValueError("AIC buffer counts must be positive")
        return self

    @property
    def aic_bufs(self) -> int:
        """bufs = min(ap_bufs, dd_bufs) — equation (1) of §5.3."""
        return min(self.aic_ap_bufs, self.aic_dd_bufs)

    def aic_interrupt_hz(self, pps: float) -> float:
        """The AIC frequency: IF = max(pps x r / bufs, lif).

        Note on the paper's equations: §5.3's eq. (2) reads
        ``t_d x r = bufs/pps`` (so ``IF = pps x r / bufs``), while its
        eq. (3) prints ``IF = pps/(bufs x r)``.  The two are
        inconsistent; only eq. (2)'s form gives the stated effect — "a
        redundant rate r is used to provide time budget for hypervisor
        to intervene", i.e. each interrupt carries ``bufs/r`` packets,
        leaving (r-1)/r of the buffer as overflow headroom.  We
        implement eq. (2).
        """
        if pps < 0:
            raise ValueError("pps must be non-negative")
        return max(pps * self.aic_redundancy / self.aic_bufs, self.aic_lif_hz)
