"""xentop-style reporting.

The paper's CPU numbers read like xentop output: per-domain utilization
in percent-of-one-thread units, split into guest/Xen/dom0 buckets.
:class:`XentopReport` renders a testbed's accounting the same way, and
:func:`format_run_result` renders an :class:`~repro.core.experiment.RunResult`
as the compact block the CLI prints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

from repro.core.experiment import RunResult
from repro.hw.cpu import Machine


@dataclass
class DomainRow:
    """One domain's line in the report."""

    name: str
    kind: str
    cpu_percent: float
    home_cores: List[int]


class XentopReport:
    """Snapshot of a platform's per-domain CPU accounting."""

    def __init__(self, platform, elapsed: Optional[float] = None):
        self.platform = platform
        self.elapsed = (elapsed if elapsed is not None
                        else platform.measurement_elapsed)
        self.rows = self._collect()

    def _collect(self) -> List[DomainRow]:
        machine: Machine = self.platform.machine
        rows: List[DomainRow] = []
        domains = getattr(self.platform, "domains", {})
        for domain in domains.values():
            cores = [v.core_index for v in domain.vcpus]
            percent = (100.0 * domain.cycles_consumed
                       / (self.elapsed * machine.clock_hz)
                       if self.elapsed > 0 else 0.0)
            rows.append(DomainRow(domain.name, domain.kind.value, percent,
                                  cores))
        # Hypervisor time is not a domain; report it as a synthetic row.
        xen_cycles = machine.cycles("xen")
        if xen_cycles:
            percent = (100.0 * xen_cycles / (self.elapsed * machine.clock_hz)
                       if self.elapsed > 0 else 0.0)
            rows.append(DomainRow("(hypervisor)", "xen", percent, []))
        return rows

    @property
    def total_percent(self) -> float:
        return sum(row.cpu_percent for row in self.rows)

    def render(self) -> str:
        """A text table, xentop style."""
        lines = [f"{'NAME':<16}{'KIND':<8}{'CPU%':>8}  CORES"]
        for row in sorted(self.rows, key=lambda r: -r.cpu_percent):
            cores = ",".join(map(str, sorted(set(row.home_cores)))) or "-"
            lines.append(f"{row.name:<16}{row.kind:<8}"
                         f"{row.cpu_percent:>8.2f}  {cores}")
        lines.append(f"{'TOTAL':<16}{'':<8}{self.total_percent:>8.2f}")
        return "\n".join(lines)


def format_table(title: str, header: Sequence[str],
                 rows: Iterable[Sequence[object]]) -> str:
    """One figure's data, rendered the way the paper's plot reads.

    Shared by the benchmark suite's stdout tables and the ``repro
    figures`` CLI so a series always prints the same way.
    """
    lines = [f"\n=== {title} ==="]
    widths = [max(10, len(h) + 2) for h in header]
    lines.append("".join(f"{h:>{w}}" for h, w in zip(header, widths)))
    for row in rows:
        cells = []
        for value, width in zip(row, widths):
            if isinstance(value, float):
                cells.append(f"{value:>{width}.2f}")
            else:
                cells.append(f"{str(value):>{width}}")
        lines.append("".join(cells))
    return "\n".join(lines)


def format_run_result(result: RunResult) -> str:
    """The CLI's compact result block."""
    lines = [
        f"throughput : {result.throughput_gbps:8.3f} Gbps "
        f"({result.vm_count} guests)",
        f"loss       : {result.loss_rate * 100:8.2f} %",
    ]
    if result.interrupt_hz:
        lines.append(f"interrupts : {result.interrupt_hz:8.0f} Hz/guest")
    lines.append("CPU (xentop convention, 100% = one thread):")
    for account, percent in sorted(result.cpu.items()):
        lines.append(f"  {account:8s}: {percent:7.2f} %")
    lines.append(f"  {'total':8s}: {result.total_cpu_percent:7.2f} %")
    if result.exit_cycles_per_second:
        lines.append("VM exits (Fig. 7 convention, cycles/s by kind):")
        total = 0.0
        for kind in sorted(result.exit_cycles_per_second,
                           key=lambda k: -result.exit_cycles_per_second[k]):
            rate = result.exit_cycles_per_second[kind]
            total += rate
            count = result.exit_counts.get(kind, 0)
            lines.append(f"  {kind:22s}: {rate:14.0f} cyc/s"
                         f"  ({count} exits)")
        lines.append(f"  {'total':22s}: {total:14.0f} cyc/s")
    return "\n".join(lines)
