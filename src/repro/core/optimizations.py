"""The paper's three optimizations, as switchable configuration.

§5 introduces three orthogonal reductions of the residual virtualization
overhead; every experiment in §6 is a combination of these switches:

1. **Interrupt mask/unmask acceleration** (§5.1) — emulate the guest's
   MSI-X mask/unmask MMIO writes in the hypervisor instead of forwarding
   them to the user-level device model in dom0.
2. **Virtual EOI acceleration** (§5.2) — use the Exit-qualification
   VMCS field to bypass fetch-decode-emulate on APIC EOI writes,
   optionally re-checking the guest instruction for complex encodings.
3. **Adaptive interrupt coalescing** (§5.3) — drive the VF's interrupt
   throttle from measured pps so the interval stays as long as buffer
   sizing allows (see :class:`repro.drivers.coalescing.AdaptiveCoalescing`).
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class OptimizationConfig:
    """Which of the paper's §5 optimizations are active."""

    #: §5.1: mask/unmask emulated in the hypervisor, not the device model.
    msi_acceleration: bool = False
    #: §5.2: EOI writes bypass fetch-decode-emulate.
    eoi_acceleration: bool = False
    #: §5.2: pay the extra instruction fetch to stay correct for complex
    #: EOI-writing instructions (the paper argues this is unnecessary in
    #: practice; off by default, matching their choice).
    eoi_instruction_check: bool = False
    #: §5.3: adaptive interrupt coalescing in the VF driver.
    adaptive_coalescing: bool = False

    @classmethod
    def none(cls) -> "OptimizationConfig":
        """The unoptimized baseline."""
        return cls()

    @classmethod
    def all(cls) -> "OptimizationConfig":
        """Everything on — the configuration of the §6 headline results."""
        return cls(msi_acceleration=True, eoi_acceleration=True,
                   adaptive_coalescing=True)

    def with_(self, **changes: bool) -> "OptimizationConfig":
        """A copy with the given switches changed."""
        return replace(self, **changes)

    def describe(self) -> str:
        """Short tag for benchmark tables, e.g. ``"+msi+eoi"``."""
        parts = []
        if self.msi_acceleration:
            parts.append("+msi")
        if self.eoi_acceleration:
            parts.append("+eoi")
        if self.adaptive_coalescing:
            parts.append("+aic")
        return "".join(parts) or "baseline"
