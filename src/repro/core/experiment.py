"""Experiment runners: the measurement loops behind every figure.

Each ``run_*`` method assembles a :class:`~repro.core.testbed.Testbed`,
attaches netperf clients, lets the system warm up, measures a window,
and returns a :class:`RunResult` carrying exactly the quantities the
paper plots: delivered throughput, xentop-style CPU breakdown, loss,
interrupt rates, and (for Fig. 7) the VM-exit cycle breakdown.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from repro.core.costs import CostModel
from repro.core.optimizations import OptimizationConfig
from repro.core.testbed import Testbed, TestbedConfig
from repro.drivers.coalescing import (
    AdaptiveCoalescing,
    CoalescingPolicy,
    FixedItr,
    policy_from_spec,
)
from repro.net.mac import MacAddress
from repro.net.netperf import NetperfStream
from repro.net.packet import (
    DEFAULT_MTU,
    Protocol,
    packets_per_second,
    tcp_goodput_bps,
    udp_goodput_bps,
)
from repro.net.tcp import TcpThroughputModel
from repro.vmm.domain import DomainKind, GuestKernel

#: Default measurement schedule: enough warmup for throttles and AIC
#: sampling to settle, then a steady-state window.
DEFAULT_WARMUP = 1.2
DEFAULT_DURATION = 0.5

#: Schema tag stamped into every serialized :class:`RunResult`.  Bump it
#: whenever the dict layout changes: the sweep cache folds it into its
#: content hash, so old cache entries simply miss instead of
#: deserializing wrongly.
RESULT_SCHEMA = "repro-result/1"


@dataclass
class RunResult:
    """What one experiment run reports."""

    vm_count: int
    duration: float
    #: Aggregate application goodput across all guests (bps).
    throughput_bps: float
    per_vm_throughput_bps: List[float]
    #: xentop-style utilization: {"guest": ..., "xen": ..., "dom0": ...}
    #: (or {"native": ...}), in percent-of-one-thread units.
    cpu: Dict[str, float]
    #: Packet loss across all guests (fraction of offered).
    loss_rate: float
    #: Mean per-guest interrupt rate over the window (Hz).
    interrupt_hz: float
    #: Fig. 7's instrument: VM-exit cycles/second by exit kind.
    exit_cycles_per_second: Dict[str, float] = field(default_factory=dict)
    exit_counts: Dict[str, int] = field(default_factory=dict)
    #: End-to-end packet latency in seconds (mean over all packets,
    #: worst p99 across guests) — the §5.3 coalescing tradeoff's other
    #: axis.
    latency_mean: float = 0.0
    latency_p99: float = 0.0
    #: Mode-specific payload that has no column of its own (the
    #: migration runs put their report and sampled timelines here).
    #: Must stay JSON-serializable: it rides through
    #: :meth:`to_dict`/:meth:`from_dict` verbatim.
    extras: Dict[str, object] = field(default_factory=dict)
    #: The run's :class:`repro.obs.Telemetry` facade, when the runner
    #: was built with ``telemetry=True`` (for --metrics-json /
    #: --trace-out exports after the run).
    telemetry: Optional[object] = field(default=None, repr=False, compare=False)
    #: The run's :class:`repro.obs.EngineProfiler`, when ``profile=True``.
    profiler: Optional[object] = field(default=None, repr=False, compare=False)
    #: Fluid-datapath diagnostics when the run used ``sim_mode="fluid"``:
    #: ``{"collapsed_events", "events_executed", "flows", "rejections"}``.
    #: Excluded from comparison and serialization (like telemetry /
    #: profiler): a fluid run's *results* are byte-identical to exact,
    #: and this sidecar must not break that equality or the cache
    #: schema.
    fluid: Optional[Dict[str, object]] = field(default=None, repr=False,
                                               compare=False)

    @property
    def total_cpu_percent(self) -> float:
        return sum(self.cpu.values())

    @property
    def throughput_gbps(self) -> float:
        return self.throughput_bps / 1e9

    # ------------------------------------------------------------------
    # serialization: the one schema the sweep cache, the figure
    # artifacts, and cross-process job results all share.
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """A plain JSON-able dict of the run's measurements.

        The live ``telemetry``/``profiler`` handles are dropped: they
        hold simulator state and cannot (and should not) cross a
        process boundary or a cache file.  ``extras`` is normalized
        through JSON so that ``from_dict(to_dict(r)) == r`` holds
        exactly (tuples become lists once, not lazily on reload).
        """
        return {
            "schema": RESULT_SCHEMA,
            "vm_count": self.vm_count,
            "duration": self.duration,
            "throughput_bps": self.throughput_bps,
            "per_vm_throughput_bps": list(self.per_vm_throughput_bps),
            "cpu": dict(self.cpu),
            "loss_rate": self.loss_rate,
            "interrupt_hz": self.interrupt_hz,
            "exit_cycles_per_second": dict(self.exit_cycles_per_second),
            "exit_counts": dict(self.exit_counts),
            "latency_mean": self.latency_mean,
            "latency_p99": self.latency_p99,
            "extras": json.loads(json.dumps(self.extras)),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "RunResult":
        """Rebuild a result serialized by :meth:`to_dict`."""
        schema = data.get("schema")
        if schema != RESULT_SCHEMA:
            raise ValueError(f"cannot load result schema {schema!r} "
                             f"(this build reads {RESULT_SCHEMA!r})")
        return cls(
            vm_count=int(data["vm_count"]),
            duration=float(data["duration"]),
            throughput_bps=float(data["throughput_bps"]),
            per_vm_throughput_bps=list(data["per_vm_throughput_bps"]),
            cpu=dict(data["cpu"]),
            loss_rate=float(data["loss_rate"]),
            interrupt_hz=float(data["interrupt_hz"]),
            exit_cycles_per_second=dict(data["exit_cycles_per_second"]),
            exit_counts={k: int(v)
                         for k, v in dict(data["exit_counts"]).items()},
            latency_mean=float(data["latency_mean"]),
            latency_p99=float(data["latency_p99"]),
            extras=dict(data.get("extras") or {}),
        )


def steady_tcp_rate(policy: CoalescingPolicy, line_share_bps: float,
                    line_rate_bps: float = 1e9,
                    mtu: int = DEFAULT_MTU,
                    tcp_model: Optional[TcpThroughputModel] = None) -> float:
    """Fixed point of the TCP <-> coalescing feedback loop.

    The sender's achievable rate depends on the RX interrupt interval
    (ACK delay); adaptive policies pick the interval from the achieved
    packet rate.  A few iterations converge for every policy the paper
    sweeps.
    """
    model = tcp_model or TcpThroughputModel()
    rate = min(line_share_bps, tcp_goodput_bps(line_rate_bps, mtu))
    for _ in range(8):
        pps = packets_per_second(rate, mtu, Protocol.TCP)
        interval = policy.on_sample(pps)
        if interval is None:
            interval = policy.initial_interval()
        rate = min(line_share_bps, model.throughput_bps(line_rate_bps, interval, mtu))
    return rate


class ExperimentRunner:
    """Builds testbeds and runs the paper's measurement loops."""

    def __init__(self, costs: Optional[CostModel] = None,
                 warmup: float = DEFAULT_WARMUP,
                 duration: float = DEFAULT_DURATION,
                 telemetry: bool = False,
                 profile: bool = False,
                 seed: int = 42,
                 faults: Optional[Sequence[Mapping]] = None,
                 audit: bool = True,
                 audit_interval: Optional[float] = None,
                 audit_context: Optional[Mapping] = None,
                 observer: Optional[Callable] = None,
                 sim_mode: str = "exact"):
        self.costs = (costs or CostModel()).validate()
        if sim_mode not in ("exact", "fluid"):
            raise ValueError(f"sim_mode must be 'exact' or 'fluid', "
                             f"not {sim_mode!r}")
        #: Datapath mode: ``"fluid"`` lets eligible steady-state SR-IOV
        #: runs ride the collapsed-window fast path
        #: (:mod:`repro.sim.fluid`); results are byte-identical by
        #: construction and ineligible runs fall back to exact
        #: wholesale.  Only :meth:`run_sriov` (and therefore
        #: :meth:`run_native`) consults it.
        self.sim_mode = sim_mode
        self.warmup = warmup
        self.duration = duration
        self.telemetry = telemetry
        self.profile = profile
        self.seed = seed
        #: Declarative fault plan (validated spec dicts, see
        #: :mod:`repro.faults`); armed against every testbed built.
        self.faults = list(faults) if faults else None
        #: Runtime invariant auditing (see :mod:`repro.audit`): opt-out
        #: end-of-run conservation checks, optionally periodic.
        self.audit = audit
        self.audit_interval = audit_interval
        self.audit_context = dict(audit_context) if audit_context else None
        #: Testbed-construction hook (see ``TestbedConfig.observer``);
        #: observation-only, installed into every testbed built.
        self.observer = observer
        #: The most recent testbed measured by :meth:`_measure`; the
        #: perf-benchmark harness reads ``last_bed.sim.events_executed``
        #: to turn a scenario's wall-clock into events/sec.
        self.last_bed: Optional[Testbed] = None

    def _config(self, **kwargs) -> TestbedConfig:
        """A TestbedConfig carrying the runner's costs and telemetry
        switches, with per-run overrides."""
        kwargs.setdefault("costs", self.costs)
        kwargs.setdefault("telemetry", self.telemetry)
        kwargs.setdefault("profile", self.profile)
        kwargs.setdefault("seed", self.seed)
        kwargs.setdefault("faults", self.faults)
        kwargs.setdefault("audit", self.audit)
        kwargs.setdefault("audit_interval", self.audit_interval)
        kwargs.setdefault("audit_context", self.audit_context)
        kwargs.setdefault("observer", self.observer)
        return TestbedConfig(**kwargs)

    def _final_audit(self, bed: Testbed) -> None:
        """The end-of-run invariant pass (no-op when auditing is off)."""
        auditor = getattr(bed, "auditor", None)
        if auditor is not None:
            auditor.audit(phase="end")

    def _policy_callable(
        self,
        policy: Optional[Mapping],
        policy_factory: object = None,
    ) -> Optional[Callable[[], CoalescingPolicy]]:
        """Turn a declarative policy spec into a per-guest factory.

        ``policy_factory`` closures were deprecated through the v1 API
        cycle (they cannot cross the sweep engine's process pool) and
        are now removed; passing one is a hard error with the
        migration spelled out.  Returns None when no spec is given so
        callers keep their per-experiment defaults.
        """
        if policy_factory is not None:
            raise TypeError(
                "policy_factory= was removed (it was deprecated because "
                "closures cannot be pickled, cached, or swept): pass a "
                "declarative policy= spec instead, e.g. "
                "policy={'kind': 'fixed_itr', 'hz': 2000} or "
                "policy={'kind': 'aic'} — see docs/api.md")
        if policy is not None:
            return lambda: policy_from_spec(policy, self.costs)
        return None

    # ------------------------------------------------------------------
    # SR-IOV receive-side runs (Figs. 6, 8, 9, 12, 15, 16 and native)
    # ------------------------------------------------------------------
    def run_sriov(
        self,
        vm_count: int,
        kind: DomainKind = DomainKind.HVM,
        kernel: GuestKernel = GuestKernel.LINUX_2_6_28,
        opts: Optional[OptimizationConfig] = None,
        policy: Optional[Mapping] = None,
        policy_factory: Optional[Callable[[], CoalescingPolicy]] = None,
        protocol: Protocol = Protocol.UDP,
        ports: int = 10,
        vfs_per_port: int = 7,
        native: bool = False,
        offered_bps_per_vm: Optional[float] = None,
        nic: str = "82576",
    ) -> RunResult:
        """netperf RX into ``vm_count`` SR-IOV guests (§6.1's setup)."""
        opts_obj = opts if opts is not None else OptimizationConfig.all()
        policy_factory = self._policy_callable(policy, policy_factory)
        if policy_factory is None:
            # The §5.3 optimization switch selects the driver's policy:
            # AIC when on, the VF driver's 2 kHz default otherwise.
            if opts_obj.adaptive_coalescing:
                policy_factory = lambda: AdaptiveCoalescing(self.costs)
            else:
                policy_factory = lambda: FixedItr(2000)
        sim_mode = self.sim_mode
        if sim_mode == "fluid" and self.faults:
            # Wholesale fallback: fault plans perturb mid-run state at
            # injector-chosen instants, outside the fluid exactness
            # contract.  The exact run is byte-identical to
            # sim_mode="exact" by construction.  Shared ports now
            # collapse through FluidPortGroup's merged replay and
            # adaptive policies through the ITR-write settle hook, so
            # only faults still force the whole run exact; anything
            # else ineligible is caught stream-by-stream in try_attach.
            sim_mode = "exact"
        config = self._config(
            ports=ports, vfs_per_port=vfs_per_port,
            opts=opts_obj, native=native, nic=nic, sim_mode=sim_mode,
        )
        bed = Testbed(config)
        guests = [bed.add_sriov_guest(kind, kernel, policy_factory())
                  for _ in range(vm_count)]
        line_share = bed.per_vm_line_share_bps(vm_count, protocol)
        for guest in guests:
            offered = offered_bps_per_vm
            if offered is None:
                if protocol is Protocol.TCP:
                    offered = steady_tcp_rate(guest.driver.policy, line_share)
                else:
                    offered = line_share
            bed.attach_client_to_sriov(guest, offered, protocol).start()
        return self._measure(bed, [g.app for g in guests],
                             [g.driver for g in guests])

    def run_sriov_tx(
        self,
        vm_count: int,
        kind: DomainKind = DomainKind.HVM,
        policy: Optional[Mapping] = None,
        policy_factory: Optional[Callable[[], CoalescingPolicy]] = None,
        ports: int = 10,
    ) -> RunResult:
        """Transmit-side experiment (an extension beyond the paper's
        receive-side evaluation): each guest blasts UDP at a remote
        client through its VF and the physical line.

        Delivered throughput is what survives the uplinks' line-rate
        serialization; the guests pay TX cycles but take no receive
        interrupts.
        """
        from repro.net.link import Link
        config = self._config(ports=ports, opts=OptimizationConfig.all())
        policy_factory = (self._policy_callable(policy, policy_factory)
                          or (lambda: FixedItr(2000)))
        bed = Testbed(config)
        delivered = {"packets": 0, "payload_bytes": 0}

        def client_sink(packet):
            delivered["packets"] += 1
            delivered["payload_bytes"] += packet.payload_bytes

        for port in bed.ports:
            wire = Link(bed.sim, rate_bps=port.LINE_RATE_BPS,
                        name=f"{port.name}.uplink")
            wire.connect(client_sink)
            port.attach_uplink(wire)
        guests = [bed.add_sriov_guest(kind, policy=policy_factory())
                  for _ in range(vm_count)]
        share = bed.per_vm_line_share_bps(vm_count)
        client_mac = MacAddress(0x02_0000_00C000)
        for guest in guests:
            NetperfStream(
                bed.sim, guest.driver.transmit, guest.vf.mac, client_mac,
                share, Protocol.UDP,
                burst_interval=bed._burst_interval_for(share),
                name=f"{guest.domain.name}.tx",
                pool=bed.packet_pool,
            ).start()
        sim = bed.sim
        sim.run(until=sim.now + self.warmup)
        bed.platform.start_measurement()
        delivered["packets"] = 0
        delivered["payload_bytes"] = 0
        sim.run(until=sim.now + self.duration)
        elapsed = bed.platform.end_measurement()
        self._final_audit(bed)
        throughput = (delivered["payload_bytes"] * 8 / elapsed
                      if elapsed > 0 else 0.0)
        offered = sum(g.vf.tx_packets + g.vf.tx_backlog_drops
                      for g in guests)
        drops = sum(g.vf.tx_backlog_drops for g in guests)
        return RunResult(
            vm_count=vm_count, duration=elapsed,
            throughput_bps=throughput,
            per_vm_throughput_bps=[throughput / vm_count] * vm_count,
            cpu=bed.platform.utilization_breakdown(),
            loss_rate=drops / offered if offered else 0.0,
            interrupt_hz=0.0,
            telemetry=bed.telemetry,
            profiler=bed.profiler,
        )

    def run_native(self, vm_count: int = 10,
                   policy: Optional[Mapping] = None,
                   policy_factory: Optional[Callable[[], CoalescingPolicy]] = None,
                   **kwargs) -> RunResult:
        """The bare-metal baseline: VF drivers on the host OS (§6.2)."""
        return self.run_sriov(vm_count, native=True, policy=policy,
                              policy_factory=policy_factory, **kwargs)

    # ------------------------------------------------------------------
    # PV NIC runs (Figs. 17, 18)
    # ------------------------------------------------------------------
    def run_pv(
        self,
        vm_count: int,
        kind: DomainKind = DomainKind.HVM,
        single_thread_backend: bool = False,
        protocol: Protocol = Protocol.UDP,
        ports: int = 10,
    ) -> RunResult:
        config = self._config(ports=ports, opts=OptimizationConfig.all())
        bed = Testbed(config)
        if single_thread_backend:
            bed.use_single_thread_netback()
        guests = [bed.add_pv_guest(kind) for _ in range(vm_count)]
        line_share = bed.per_vm_line_share_bps(vm_count, protocol)
        for guest in guests:
            bed.attach_client_to_pv(guest, line_share, protocol).start()
        return self._measure(bed, [g.app for g in guests], [])

    # ------------------------------------------------------------------
    # VMDq runs (Fig. 19)
    # ------------------------------------------------------------------
    def run_vmdq(self, vm_count: int,
                 kind: DomainKind = DomainKind.PVM) -> RunResult:
        config = self._config(ports=1, opts=OptimizationConfig.all())
        bed = Testbed(config)
        guests = [bed.add_vmdq_guest(kind) for _ in range(vm_count)]
        # One 10 GbE port shared by everyone.
        share = udp_goodput_bps(10e9) / vm_count
        for guest in guests:
            bed.attach_client_to_vmdq(guest, share).start()
        return self._measure(bed, [g.app for g in guests], [])

    # ------------------------------------------------------------------
    # inter-VM runs (Figs. 10, 13, 14)
    # ------------------------------------------------------------------
    def run_intervm_sriov(self, message_bytes: int = 1500,
                          offered_bps: float = 5e9,
                          policy: Optional[Mapping] = None,
                          policy_factory: Optional[Callable[[], CoalescingPolicy]] = None,
                          kind: DomainKind = DomainKind.HVM,
                          sender: str = "guest") -> RunResult:
        """Inter-VM traffic through the NIC's internal switch, capped by
        the double DMA crossing (§6.3).

        ``sender`` selects the transmitting side: ``"guest"`` (two VFs,
        the Fig. 13 setup) or ``"dom0"`` (the PF's own queues into a
        guest's VF — "domain 0 sends packets to the guest", Fig. 10).
        """
        if sender not in ("guest", "dom0"):
            raise ValueError(f"sender must be 'guest' or 'dom0', not {sender!r}")
        sim_mode = "exact" if self.faults else self.sim_mode
        config = self._config(ports=1, opts=OptimizationConfig.all(),
                              sim_mode=sim_mode)
        # Inter-VM rates exceed the line rate, so the driver must scale
        # its interrupt frequency with them — AIC by default (§5.3's
        # Fig. 10 is exactly this scenario).
        policy_factory = (self._policy_callable(policy, policy_factory)
                          or (lambda: AdaptiveCoalescing(self.costs)))
        bed = Testbed(config)
        if sender == "guest":
            tx_guest = bed.add_sriov_guest(kind, policy=policy_factory())
            transmit = tx_guest.driver.transmit
            src_mac = tx_guest.vf.mac
            sender_domain = tx_guest.domain
            tx_function = tx_guest.vf
            tx_driver = tx_guest.driver
        else:
            pf_driver = bed.pf_drivers[0]
            transmit = pf_driver.transmit
            src_mac = bed.ports[0].pf.mac
            sender_domain = pf_driver.dom0
            tx_function = bed.ports[0].pf
            tx_driver = pf_driver
        receiver = bed.add_sriov_guest(kind, policy=policy_factory())
        mtu = min(message_bytes, DEFAULT_MTU)
        stream = NetperfStream(
            bed.sim, transmit, src_mac, receiver.vf.mac,
            offered_bps, Protocol.UDP, mtu=mtu,
            burst_interval=100e-6, name="intervm",
            pool=bed.packet_pool,
        )
        if sim_mode == "fluid":
            from repro.sim.fluid import FluidLoopbackFlow
            flow = FluidLoopbackFlow(bed, receiver, stream, sender_domain,
                                     tx_function, tx_driver)
            if flow.try_attach():
                bed.fluid_flows.append(flow)
        stream.start()
        receiver.stream = stream
        return self._measure(bed, [receiver.app], [receiver.driver])

    def run_intervm_pv(self, message_bytes: int = 1500,
                       offered_bps: float = 8e9,
                       kind: DomainKind = DomainKind.PVM) -> RunResult:
        """dom0 CPU-copies packets between two PV guests (§6.3)."""
        config = self._config(ports=1, opts=OptimizationConfig.all())
        bed = Testbed(config)
        receiver = bed.add_pv_guest(kind)
        # Inter-VM PV traffic is a single flow: it rides one backend
        # thread, with per-message cost amortizing over frames.  The
        # message size maps to whole MTU frames (1500 -> 1, 4000 -> 3).
        udp_payload = DEFAULT_MTU - 28
        frames = max(1, round(message_bytes / udp_payload))
        netback = bed.netback
        base = self.costs.netback_cycles_per_packet_pvm
        if kind is DomainKind.HVM:
            base += self.costs.netback_hvm_extra_cycles
        # Split the calibrated per-packet cost evenly into per-message
        # fixed overhead (syscall, ring, event) and per-frame copy work:
        # larger messages amortize the fixed half, which is the paper's
        # explanation for PV inter-VM bandwidth rising with message size
        # (§6.3: "each system call consumes more data, spending less
        # overhead in the network stack").
        fixed, per_frame = 0.5 * base, 0.5 * base
        per_message_cycles = fixed + per_frame * frames

        executor = netback.executors[0]

        def intervm_sink(burst):
            # Group the burst into messages of `frames` frames each.
            messages = max(1, len(burst) // frames)
            cycles = per_message_cycles * messages

            def complete(burst=burst):
                receiver.netfront.receive_burst(burst)

            if not executor.submit(cycles, complete):
                netback.dropped_packets += len(burst)

        mtu = min(message_bytes, DEFAULT_MTU)
        stream = NetperfStream(
            bed.sim, intervm_sink,
            MacAddress(0x02_0000_00D000), MacAddress(0x02_0000_00D001),
            offered_bps, Protocol.UDP, mtu=mtu, burst_interval=100e-6,
            name="intervm-pv",
            pool=bed.packet_pool,
        )
        stream.start()
        return self._measure(bed, [receiver.app], [])

    # ------------------------------------------------------------------
    # live migration runs (Figs. 20, 21)
    # ------------------------------------------------------------------
    def run_migrate(self, variant: str = "dnis", start_at: float = 4.5,
                    kind: DomainKind = DomainKind.HVM,
                    sample_period: float = 0.1,
                    settle: float = 2.0) -> RunResult:
        """Live-migrate one netperf-loaded guest (§6.7).

        ``variant`` selects the Fig. 20 setup (``"pv"``: plain PV NIC
        migration) or the Fig. 21 setup (``"dnis"``: SR-IOV with
        dynamic network interface switching).  The migration report and
        the sampled throughput/dom0 timelines land in
        :attr:`RunResult.extras` under ``"migration"`` and
        ``"timeline"`` — the figures' data, in the one schema the sweep
        cache stores.
        """
        from repro.drivers.netfront import Netfront
        from repro.migration import (
            DnisGuest,
            MigrationManager,
            PrecopyConfig,
            Sampler,
        )
        from repro.net.netperf import NetperfStream

        if variant not in ("pv", "dnis"):
            raise ValueError(f"variant must be 'pv' or 'dnis', "
                             f"not {variant!r}")
        bed = Testbed(self._config(ports=1))
        line = udp_goodput_bps(1e9)
        # A migration_degrade fault divides the migration link's
        # bandwidth (a congested or rate-limited migration network);
        # factor 1.0 leaves the pre-copy model byte-identical.
        from repro.faults import FaultPlan
        plan = FaultPlan.from_specs(self.faults or ())
        migration_link_bps = PrecopyConfig().link_bps / \
            plan.migration_degrade_factor()
        if bed.injector is not None:
            # migration_degrade is applied here, not scheduled, so it
            # counts as injected at the point of application.
            bed.injector.injected += sum(
                1 for spec in plan.to_list()
                if spec["kind"] == "migration_degrade")
        dnis_guest = None
        if variant == "pv":
            pv = bed.add_pv_guest(kind)
            app = pv.app
            bed.attach_client_to_pv(pv, line).start()
            manager = MigrationManager(bed.platform, bed.hotplug,
                                       PrecopyConfig(
                                           link_bps=migration_link_bps))
        else:
            sriov = bed.add_sriov_guest(kind)
            app = sriov.app
            netfront = Netfront(bed.platform, sriov.domain, app=sriov.app)
            bed.netback.connect(netfront)
            dnis_guest = DnisGuest(bed.platform, sriov.domain, sriov.driver,
                                   netfront, bed.hotplug)
            NetperfStream(bed.sim, dnis_guest.wire_sink,
                          MacAddress.parse("02:00:00:00:99:99"),
                          sriov.vf.mac, line, name="client",
                          pool=bed.packet_pool).start()
            # During pre-copy the service rides the slower PV path,
            # dirtying fewer pages; 0.15 calibrates the blackout to the
            # paper's 10.3 s start.
            manager = MigrationManager(bed.platform, bed.hotplug,
                                       PrecopyConfig(
                                           dirty_ratio=0.15,
                                           link_bps=migration_link_bps))
        sampler = Sampler(bed.sim, period=sample_period)
        sampler.track("rx_bytes", lambda: app.rx_bytes)
        machine = bed.platform.machine
        sampler.track("dom0_cycles", lambda: machine.cycles("dom0"))
        sampler.start()
        if variant == "pv":
            _, report = manager.migrate_pv(pv.netfront, start_at)
            horizon = start_at + manager.model.total_time + settle
        else:
            _, report = manager.migrate_dnis(dnis_guest, start_at)
            # +1.0: the DNIS interface switch precedes the migration
            # proper.
            horizon = start_at + 1.0 + manager.model.total_time + settle
        bed.platform.start_measurement()
        bed.sim.run(until=horizon)
        elapsed = bed.platform.end_measurement()
        self._final_audit(bed)
        throughput = app.rx_bytes * 8 / elapsed if elapsed > 0 else 0.0
        offered = app.rx_packets + app.dropped_packets
        migration = {
            "variant": variant,
            "start_at": start_at,
            "started_at": report.started_at,
            "switch_completed_at": report.switch_completed_at,
            "round_durations": list(report.round_durations),
            "blackout_start": report.blackout_start,
            "blackout_end": report.blackout_end,
            "completed_at": report.completed_at,
            "downtime": report.downtime,
            "total_time": report.total_time,
            "events": [[time, name] for time, name in report.events],
        }
        if dnis_guest is not None:
            migration["active_path"] = dnis_guest.active_path
        extras = {"migration": migration}
        if self.faults:
            # Fault runs key differently in the cache (the plan is in
            # the scenario dict), so they may carry extra payload;
            # fault-free results stay byte-identical to before.
            fault_info: Dict[str, object] = {}
            if bed.injector is not None:
                fault_info.update(bed.injector.summary())
            if plan.migration_degrade_factor() != 1.0:
                fault_info["migration_link_factor"] = \
                    plan.migration_degrade_factor()
            extras["faults"] = fault_info
            if dnis_guest is not None:
                migration["failovers"] = [
                    [record.time, record.from_slave, record.to_slave]
                    for record in dnis_guest.bond.failovers]
        timeline = {
            "period": sample_period,
            "series": {
                name: {"times": list(sampler.series(name).times),
                       "values": list(sampler.series(name).values)}
                for name in ("rx_bytes", "dom0_cycles")
            },
        }
        return RunResult(
            vm_count=1,
            duration=elapsed,
            throughput_bps=throughput,
            per_vm_throughput_bps=[throughput],
            cpu=bed.platform.utilization_breakdown(),
            loss_rate=app.dropped_packets / offered if offered else 0.0,
            interrupt_hz=0.0,
            extras={**extras, "timeline": timeline},
            telemetry=bed.telemetry,
            profiler=bed.profiler,
        )

    # ------------------------------------------------------------------
    # the measurement loop
    # ------------------------------------------------------------------
    def _measure(self, bed: Testbed, apps, drivers) -> RunResult:
        self.last_bed = bed
        sim = bed.sim
        sim.run(until=sim.now + self.warmup)
        # Warmup-era virtual events must charge *before* the accounting
        # reset, exactly as their real counterparts would have (a no-op
        # outside sim_mode="fluid").
        bed.settle_fluid()
        bed.platform.start_measurement()
        for app in apps:
            app.reset()
        interrupts_before = [d.interrupts_handled for d in drivers]
        sim.run(until=sim.now + self.duration)
        # Collapsed flows catch up to the horizon before anything reads
        # counters (a no-op outside sim_mode="fluid").
        bed.settle_fluid()
        elapsed = bed.platform.end_measurement()
        self._final_audit(bed)
        per_vm = [app.throughput_bps(elapsed) for app in apps]
        offered = sum(app.rx_packets + app.dropped_packets for app in apps)
        dropped = sum(app.dropped_packets for app in apps)
        # dom0-side drops (saturated copy threads) also count against
        # offered traffic.
        if bed._netback is not None:
            dropped += bed._netback.dropped_packets
            offered += bed._netback.dropped_packets
        if bed._vmdq_service is not None:
            dropped += bed._vmdq_service.dropped_packets
            offered += bed._vmdq_service.dropped_packets
        cpu = bed.platform.utilization_breakdown()
        interrupt_hz = 0.0
        if drivers and elapsed > 0:
            deltas = [d.interrupts_handled - before
                      for d, before in zip(drivers, interrupts_before)]
            interrupt_hz = sum(deltas) / len(deltas) / elapsed
        # Fig. 7's exit breakdown, read from the cycle ledger (which
        # reconciles exactly with the VmExitTracer — see
        # tests/obs/test_reconcile.py).  NativeHost has a ledger too,
        # with no exit.* entries, so the native baseline reports empty.
        exit_rates: Dict[str, float] = {}
        exit_counts: Dict[str, int] = {}
        if elapsed > 0:
            for kind, (count, cycles) in \
                    bed.platform.ledger.exit_breakdown().items():
                if cycles > 0:
                    exit_rates[kind] = cycles / elapsed
                if count:
                    exit_counts[kind] = count
        total_latency_samples = sum(app.latency.count for app in apps)
        latency_mean = (sum(app.latency.mean * app.latency.count
                            for app in apps) / total_latency_samples
                        if total_latency_samples else 0.0)
        latency_p99 = max((app.latency.percentile(99) for app in apps
                           if app.latency.count), default=0.0)
        extras: Dict[str, object] = {}
        if self.faults and bed.injector is not None:
            extras["faults"] = bed.injector.summary()
        fluid = None
        if bed.config.sim_mode == "fluid":
            fluid = {
                "collapsed_events": sim.collapsed_events,
                "events_executed": sim.events_executed,
                "flows": len(bed.fluid_flows),
                "rejections": dict(bed.fluid_rejections),
            }
        return RunResult(
            vm_count=len(apps),
            duration=elapsed,
            throughput_bps=sum(per_vm),
            per_vm_throughput_bps=per_vm,
            cpu=cpu,
            loss_rate=dropped / offered if offered else 0.0,
            interrupt_hz=interrupt_hz,
            exit_cycles_per_second=exit_rates,
            exit_counts=exit_counts,
            latency_mean=latency_mean,
            latency_p99=latency_p99,
            extras=extras,
            telemetry=bed.telemetry,
            profiler=bed.profiler,
            fluid=fluid,
        )
