"""The §6.1 testbed, as a builder.

One call assembles the paper's "server": a 16-thread 2.8 GHz machine
running Xen (or bare metal), ten 82576 ports with 7 VFs each (Fig. 11's
allocation), the IOVM, and a PF driver per port.  Guests are then added
in the paper's three flavours — SR-IOV (a VF assigned through the IOVM),
PV (netfront/netback), or VMDq — and netperf client streams attached.

VF-to-guest allocation follows Fig. 11: guest *i* lands on port
``i mod ports`` taking that port's next VF, so "when 10 x n VMs are
employed, the assigned VFs will come from VF(7j+0) to VF(7j+n-1) for
each port j".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from repro.core.costs import CostModel
from repro.core.optimizations import OptimizationConfig
from repro.devices.igb82576 import Igb82576Port, VirtualFunction
from repro.devices.ixgbe82598 import Ixgbe82598Port
from repro.drivers.coalescing import CoalescingPolicy, FixedItr
from repro.drivers.guest_app import NetserverApp
from repro.drivers.netback import Netback
from repro.drivers.netfront import Netfront
from repro.drivers.pf_igb import PfDriver
from repro.drivers.vf_igbvf import VfDriver
from repro.drivers.vmdq import VmdqService
from repro.net.netperf import NetperfStream
from repro.net.packet import (DEFAULT_MTU, PacketPool, Protocol,
                              udp_goodput_bps)
from repro.sim.engine import Simulator
from repro.sim.rand import RandomStreams
from repro.vmm.domain import Domain, DomainKind, GuestKernel
from repro.vmm.hotplug import HotplugController
from repro.vmm.hypervisor import NativeHost, Xen
from repro.vmm.iovm import Iovm, VfAssignment
from repro.net.mac import MacAddress


@dataclass
class TestbedConfig:
    """Knobs for building a testbed."""

    ports: int = 10
    vfs_per_port: int = 7
    costs: CostModel = field(default_factory=CostModel)
    opts: OptimizationConfig = field(default_factory=OptimizationConfig.all)
    native: bool = False
    seed: int = 42
    #: SR-IOV NIC family: "82576" (the paper's ten 1 GbE ports) or
    #: "82599" (the 10 GbE part that shipped after the paper — the
    #: what-if its §6.1 footnote anticipates).
    nic: str = "82576"
    #: Install the :class:`repro.obs.Telemetry` facade (a live tracer
    #: and metrics registry across the platform, ports and drivers).
    #: Off by default: the null tracer/registry path costs nothing.
    telemetry: bool = False
    #: Install the host-side :class:`repro.obs.EngineProfiler`
    #: (wall-clock per simulator callback; never in the metrics JSON).
    profile: bool = False
    #: Declarative fault plan (a list of :mod:`repro.faults` spec
    #: dicts) armed against the testbed at build time.  None/empty
    #: builds the exact testbed it always did.
    faults: Optional[Sequence[Mapping]] = None
    #: Name of the seeded stream the injector forks its random draws
    #: from.  Cluster hosts pass ``faults/<host-name>`` so two hosts
    #: running the same plan draw decorrelated coin-flip sequences; the
    #: single-host default keeps the historical stream.
    fault_stream: str = "faults"
    #: Install the runtime invariant auditor
    #: (:class:`repro.audit.InvariantAuditor`).  Opt-out: the default
    #: end-of-run audit is observation-only, so results stay
    #: byte-identical to unaudited runs.
    audit: bool = True
    #: Additionally audit every N simulated seconds (None = run end
    #: only).  Periodic audits consume event sequence numbers, so they
    #: are opt-in.
    audit_interval: Optional[float] = None
    #: Context embedded in a violation's repro dump (the experiment
    #: layer passes the scenario dict here).
    audit_context: Optional[Mapping] = None
    #: Construction hook, called as ``observer(bed)`` once the testbed
    #: is fully assembled.  Observation-only by contract: the campaign
    #: telemetry streamer uses it to grab ``bed.sim`` for heartbeat
    #: sampling without ever scheduling an event.
    observer: Optional[Callable[["Testbed"], None]] = None
    #: MAC realm byte (bits 24-31 of every locally administered MAC the
    #: testbed hands out).  Multi-host clusters give each host its own
    #: realm so VF and client MACs are fleet-unique; the default 0
    #: reproduces the historical single-host addresses bit for bit.
    mac_realm: int = 0
    #: Datapath simulation mode: ``"exact"`` (one event per burst tick)
    #: or ``"fluid"`` (eligible steady-state SR-IOV client streams ride
    #: the collapsed-window fast path of :mod:`repro.sim.fluid`, with
    #: byte-identical results by construction; ineligible streams stay
    #: exact automatically).
    sim_mode: str = "exact"


@dataclass
class SriovGuest:
    """Everything attached to one SR-IOV guest."""

    domain: Domain
    vf: VirtualFunction
    assignment: Optional[VfAssignment]
    driver: VfDriver
    app: NetserverApp
    port: Igb82576Port
    stream: Optional[NetperfStream] = None


@dataclass
class PvGuest:
    """Everything attached to one PV-NIC guest."""

    domain: Domain
    netfront: Netfront
    app: NetserverApp
    stream: Optional[NetperfStream] = None


class Testbed:
    """The assembled server platform."""

    def __init__(self, config: Optional[TestbedConfig] = None):
        self.config = config or TestbedConfig()
        if self.config.sim_mode not in ("exact", "fluid"):
            raise ValueError(
                f"sim_mode must be 'exact' or 'fluid', "
                f"not {self.config.sim_mode!r}")
        self.sim = Simulator()
        #: Collapsed-window flows (see :mod:`repro.sim.fluid`); only
        #: populated under ``sim_mode="fluid"``.
        self.fluid_flows: List = []
        #: Client streams attached per port (id(port) -> count): a
        #: port's second and later streams join a merged replay group.
        self._port_streams: Dict[int, int] = {}
        #: id(port) -> FluidPortGroup for ports carrying more than one
        #: collapsed stream (see :class:`repro.sim.fluid.FluidPortGroup`).
        self._fluid_groups: Dict[int, object] = {}
        #: Gate name -> how many flows that ``try_attach`` gate refused
        #: (the ``fluid.rejected.<gate>`` diagnostic; empty in exact
        #: mode and when everything collapsed).
        self.fluid_rejections: Dict[str, int] = {}
        self.streams = RandomStreams(self.config.seed)
        #: Run-scoped packet allocator: per-run deterministic seqs, and
        #: the SR-IOV RX path recycles consumed packets through it.
        self.packet_pool = PacketPool()
        if self.config.native:
            self.platform = NativeHost(self.sim, self.config.costs)
        else:
            self.platform = Xen(self.sim, self.config.costs, self.config.opts)
        self.telemetry = None
        if self.config.telemetry:
            from repro.obs.telemetry import Telemetry
            self.telemetry = Telemetry(self.sim)
            self.telemetry.attach_platform(self.platform)
        self.profiler = None
        if self.config.profile:
            from repro.obs.profiler import EngineProfiler
            self.profiler = EngineProfiler(self.sim)
            self.profiler.install()
        self.hotplug = HotplugController(self.sim)
        self.iovm = Iovm(self.platform)
        self.ports: List[Igb82576Port] = []
        self.pf_drivers: List[PfDriver] = []
        self._dom0 = self._host_context()
        self._netback: Optional[Netback] = None
        self._vmdq_port: Optional[Ixgbe82598Port] = None
        self._vmdq_service: Optional[VmdqService] = None
        self._build_ports()
        self.sriov_guests: List[SriovGuest] = []
        self.pv_guests: List[PvGuest] = []
        realm_bits = self.config.mac_realm << 24
        self._client_macs = iter(range(0x02_0000_FF0000 | realm_bits,
                                       0x02_0000_FFFFFF | realm_bits))
        self.injector = None
        if self.config.faults:
            from repro.faults import FaultInjector, FaultPlan
            self.injector = FaultInjector(
                FaultPlan.from_specs(self.config.faults),
                self.streams.fork(self.config.fault_stream))
            self.injector.install(self)
        self.auditor = None
        if self.config.audit:
            from repro.audit import InvariantAuditor
            self.auditor = InvariantAuditor(
                self, context=self.config.audit_context)
            if self.config.audit_interval:
                self.auditor.install(self.config.audit_interval)
        if self.config.observer is not None:
            self.config.observer(self)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _host_context(self) -> Domain:
        if isinstance(self.platform, Xen):
            return self.platform.dom0
        return self.platform.create_guest("host")

    def _build_ports(self) -> None:
        if self.config.nic == "82576":
            port_cls = Igb82576Port
        elif self.config.nic == "82599":
            from repro.devices.ixgbe82599 import Ixgbe82599Port
            port_cls = Ixgbe82599Port
        else:
            raise ValueError(f"unknown SR-IOV NIC family {self.config.nic!r}")
        for index in range(self.config.ports):
            port = port_cls(self.sim, index, iommu=self.platform.iommu)
            self.platform.root_complex.attach(port.pf.pci, bus=index + 1,
                                              device=0)
            port.interrupt_sink = self.platform.deliver_msi
            pf_driver = PfDriver(self.platform, self._dom0, port,
                                 mac_realm=self.config.mac_realm)
            pf_driver.start()
            pf_driver.enable_sriov(self.config.vfs_per_port)
            self.iovm.surface_vfs(port)
            self.ports.append(port)
            self.pf_drivers.append(pf_driver)
            if self.telemetry is not None:
                self.telemetry.attach_port(port)

    # ------------------------------------------------------------------
    # SR-IOV guests
    # ------------------------------------------------------------------
    def add_sriov_guest(
        self,
        kind: DomainKind = DomainKind.HVM,
        kernel: GuestKernel = GuestKernel.LINUX_2_6_28,
        policy: Optional[CoalescingPolicy] = None,
        name: str = "",
    ) -> SriovGuest:
        """Create a guest with a dedicated VF per the Fig. 11 layout."""
        index = len(self.sriov_guests)
        port = self.ports[index % len(self.ports)]
        vf_index = index // len(self.ports)
        if vf_index >= self.config.vfs_per_port:
            raise RuntimeError(
                f"port {port.name} out of VFs "
                f"({self.config.vfs_per_port} per port)")
        vf = port.vf(vf_index)
        name = name or f"vm{index}"
        domain = self.platform.create_guest(name, kind, kernel)
        assignment = None
        if not self.config.native:
            assignment = self.iovm.assign(vf, domain)
        else:
            self.platform.iommu.attach(vf.pci.rid, domain.io_page_table)
        app = NetserverApp(self.config.costs, name=f"{name}.netserver")
        driver = VfDriver(self.platform, domain, vf,
                          policy or FixedItr(2000), app,
                          pool=self.packet_pool)
        driver.start()
        guest = SriovGuest(domain, vf, assignment, driver, app, port)
        self.sriov_guests.append(guest)
        return guest

    # ------------------------------------------------------------------
    # PV guests
    # ------------------------------------------------------------------
    @property
    def netback(self) -> Netback:
        if self._netback is None:
            threads = None  # cost-model default (the enhanced driver)
            self._netback = Netback(self.platform, self._dom0, threads)
        return self._netback

    def use_single_thread_netback(self) -> None:
        """Switch to the stock single-threaded backend (§6.5)."""
        if self._netback is not None:
            raise RuntimeError("netback already instantiated")
        self._netback = Netback(self.platform, self._dom0,
                                self.config.costs.netback_threads_unenhanced)

    def add_pv_guest(
        self,
        kind: DomainKind = DomainKind.HVM,
        kernel: GuestKernel = GuestKernel.LINUX_2_6_28,
        name: str = "",
    ) -> PvGuest:
        index = len(self.pv_guests)
        name = name or f"pv{index}"
        domain = self.platform.create_guest(name, kind, kernel)
        app = NetserverApp(self.config.costs, name=f"{name}.netserver")
        netfront = Netfront(self.platform, domain, app)
        self.netback.connect(netfront)
        guest = PvGuest(domain, netfront, app)
        self.pv_guests.append(guest)
        return guest

    # ------------------------------------------------------------------
    # VMDq
    # ------------------------------------------------------------------
    @property
    def vmdq_service(self) -> VmdqService:
        """The 82598 + its dom0 service, built on first use (§6.6)."""
        if self._vmdq_service is None:
            self._vmdq_port = Ixgbe82598Port(self.sim)
            self._vmdq_service = VmdqService(self.platform, self._dom0,
                                             self._vmdq_port)
            if self.telemetry is not None:
                self.telemetry.attach_port(self._vmdq_port)
        return self._vmdq_service

    def add_vmdq_guest(self, kind: DomainKind = DomainKind.PVM,
                       name: str = "") -> PvGuest:
        index = len(self.pv_guests)
        name = name or f"vmdq{index}"
        domain = self.platform.create_guest(name, kind)
        app = NetserverApp(self.config.costs, name=f"{name}.netserver")
        netfront = Netfront(self.platform, domain, app)
        mac = MacAddress(0x02_0000_00F000 + index)
        netfront.mac = mac
        self.vmdq_service.register_guest(netfront, mac)
        guest = PvGuest(domain, netfront, app)
        self.pv_guests.append(guest)
        return guest

    # ------------------------------------------------------------------
    # client traffic
    # ------------------------------------------------------------------
    def _next_client_mac(self) -> MacAddress:
        return MacAddress(next(self._client_macs))

    def _burst_interval_for(self, throughput_bps: float) -> float:
        """Netperf batch quantum: ~8 packets per burst.

        Small enough that interrupt-throttle behaviour is accurate up
        to 20 kHz ITR (two trigger opportunities per 100 us window) and
        per-interrupt batch jitter stays ~1 burst; bounded on both ends
        to keep event counts sane across the 1-60 VM sweeps.
        """
        from repro.net.packet import packets_per_second
        pps = max(1.0, packets_per_second(throughput_bps))
        return min(2e-3, max(100e-6, 8.0 / pps))

    def attach_client_to_sriov(self, guest: SriovGuest, throughput_bps: float,
                               protocol: Protocol = Protocol.UDP,
                               mtu: int = DEFAULT_MTU) -> NetperfStream:
        """A netperf client sending to the guest's VF from the wire."""
        assert guest.vf.mac is not None
        stream = NetperfStream(
            self.sim, guest.port.wire_receive, self._next_client_mac(),
            guest.vf.mac, throughput_bps, protocol, mtu,
            burst_interval=self._burst_interval_for(throughput_bps),
            name=f"client->{guest.domain.name}",
            pool=self.packet_pool,
        )
        guest.stream = stream
        shared = self._port_streams.get(id(guest.port), 0)
        self._port_streams[id(guest.port)] = shared + 1
        if self.config.sim_mode == "fluid":
            self._try_fluid(guest, stream, prior_streams=shared)
        return stream

    def record_fluid_rejection(self, gate: str) -> None:
        """Count a refused ``try_attach`` gate (satellite diagnostic:
        surfaced in ``repro sriov --sim-mode=fluid`` output and as the
        ``fluid.rejected.<gate>`` metric when telemetry is on)."""
        self.fluid_rejections[gate] = self.fluid_rejections.get(gate, 0) + 1
        self.platform.metrics.scope("fluid").counter(
            f"rejected.{gate}").value += 1

    def _try_fluid(self, guest: SriovGuest, stream: NetperfStream,
                   prior_streams: int) -> None:
        """Attach the collapsed-window fast path where its exactness
        contract holds (see :class:`repro.sim.fluid.FluidFlow`).

        Streams sharing a port collapse together through a
        :class:`repro.sim.fluid.FluidPortGroup` (merged replay over
        the shared DMA pipe); if any stream on the port cannot attach,
        the whole port runs exact — collapsed and exact streams cannot
        interleave their bookings.
        """
        from repro.sim.fluid import FluidFlow, FluidPortGroup
        port = guest.port
        group = self._fluid_groups.get(id(port))
        if group is not None and group.dead:
            self.record_fluid_rejection("port_evicted")
            return
        if prior_streams > 0:
            collapsed_peers = sum(
                1 for f in self.fluid_flows
                if f.port is port and f.stream._fluid is f)
            if collapsed_peers != prior_streams:
                # An exact stream already owns part of this port: its
                # real events would interleave with collapsed bookings.
                self._evict_port_fluid(port)
                self.record_fluid_rejection("port_exact_peer")
                return
        flow = FluidFlow(self, guest, stream)
        if not flow.try_attach():
            if prior_streams > 0:
                self._evict_port_fluid(port)
            return
        if prior_streams > 0:
            if group is None:
                group = FluidPortGroup(self, port)
                self._fluid_groups[id(port)] = group
                for other in self.fluid_flows:
                    if other.port is port and other.group is None:
                        group.add(other)
            group.add(flow)
        self.fluid_flows.append(flow)

    def _evict_port_fluid(self, port) -> None:
        """Force every collapsed stream on ``port`` exact (a stream
        that cannot collapse arrived)."""
        from repro.sim.fluid import FluidPortGroup
        group = self._fluid_groups.get(id(port))
        if group is None:
            group = FluidPortGroup(self, port)
            self._fluid_groups[id(port)] = group
            for other in self.fluid_flows:
                if other.port is port and other.group is None:
                    group.add(other)
        group.evict()

    def settle_fluid(self) -> None:
        """Apply every collapsed tick up to (and including) the current
        instant — the run-end catch-up the measurement loop calls
        before reading counters."""
        for flow in self.fluid_flows:
            flow.settle()

    def attach_client_to_pv(self, guest: PvGuest, throughput_bps: float,
                            protocol: Protocol = Protocol.UDP,
                            mtu: int = DEFAULT_MTU) -> NetperfStream:
        """A netperf client whose packets arrive via dom0's bridge and
        are copied in by netback."""
        dst = MacAddress(0x02_0000_00E000 + guest.netfront.frontend_id)
        stream = NetperfStream(
            self.sim,
            lambda burst: self.netback.deliver(guest.netfront, burst),
            self._next_client_mac(), dst, throughput_bps, protocol, mtu,
            burst_interval=self._burst_interval_for(throughput_bps),
            name=f"client->{guest.domain.name}",
            pool=self.packet_pool,
        )
        guest.stream = stream
        return stream

    def attach_client_to_vmdq(self, guest: PvGuest, throughput_bps: float,
                              protocol: Protocol = Protocol.UDP,
                              mtu: int = DEFAULT_MTU) -> NetperfStream:
        assert self._vmdq_port is not None, "no VMDq guests added yet"
        stream = NetperfStream(
            self.sim, self._vmdq_port.wire_receive, self._next_client_mac(),
            guest.netfront.mac, throughput_bps, protocol, mtu,
            burst_interval=self._burst_interval_for(throughput_bps),
            name=f"client->{guest.domain.name}",
            pool=self.packet_pool,
        )
        guest.stream = stream
        return stream

    # ------------------------------------------------------------------
    # per-port line sharing
    # ------------------------------------------------------------------
    def per_vm_line_share_bps(self, vm_count: int,
                              protocol: Protocol = Protocol.UDP) -> float:
        """Each port's goodput divided among the VMs sharing it."""
        from repro.net.packet import tcp_goodput_bps
        port_count = len(self.ports)
        vms_per_port = -(-vm_count // port_count)  # ceil
        line = self.ports[0].LINE_RATE_BPS
        goodput = (udp_goodput_bps(line) if protocol is Protocol.UDP
                   else tcp_goodput_bps(line))
        return goodput / vms_per_port
