"""The VF (igbvf) driver: the guest side of the SR-IOV architecture.

"The VF driver runs on the guest OS as a normal PCIe device driver and
accesses its dedicated VF directly, for performance data movement,
without involving VMM" (§4.1).  Its interrupt path is the paper's
critical path, and every §5 overhead lives here:

1. the physical MSI arrives; the hypervisor injects a virtual interrupt
   (cost charged in :class:`~repro.vmm.hypervisor.Xen.deliver_msi`);
2. a Linux 2.6.18 guest masks the vector — an MMIO trap (§5.1);
3. the handler NAPI-polls the RX ring, refills descriptors and hands the
   batch to the netserver application;
4. the guest writes EOI — an APIC-access exit for HVM (§5.2);
5. a 2.6.18 guest unmasks the vector — another trap.

The driver also programs the ITR from its coalescing policy, re-sampled
once a second against measured pps (the AIC loop of §5.3), and speaks
the §4.2 mailbox protocol to the PF driver.
"""

from __future__ import annotations

from typing import List, Optional

from repro.devices.igb82576 import (
    RX_BUFFER_BYTES,
    VECTOR_MAILBOX,
    VECTOR_RXTX,
    VirtualFunction,
)
from repro.devices.mailbox import Mailbox, MailboxMessage, MailboxRetrier
from repro.drivers.coalescing import CoalescingPolicy, FixedItr
from repro.drivers.guest_app import NetserverApp
from repro.drivers.napi import NapiContext
from repro.hw.msi import MsiMessage
from repro.net.packet import Packet, PacketPool
from repro.sim.engine import EventHandle
from repro.sim.stats import RateMeter
from repro.vmm.domain import Domain

#: x86 MSI address targeting the local APIC.
MSI_ADDRESS = 0xFEE00000

#: Guest-physical base where the driver maps its RX buffer pool.
RX_POOL_BASE = 0x10_0000


class VfDriver:
    """One guest's igbvf instance bound to its assigned VF."""

    def __init__(
        self,
        platform,
        domain: Domain,
        vf: VirtualFunction,
        policy: Optional[CoalescingPolicy] = None,
        app: Optional[NetserverApp] = None,
        name: str = "",
        pool: Optional[PacketPool] = None,
    ):
        """``platform`` is a Xen or NativeHost; ``domain`` the driver's
        context (a guest under Xen, a host context natively)."""
        self.platform = platform
        self.sim = platform.sim
        self.costs = platform.costs
        self.domain = domain
        self.vf = vf
        self.policy = policy or FixedItr(2000)
        self.app = app or NetserverApp(platform.costs)
        self.name = name or f"igbvf.{vf.name}"
        #: The testbed's packet allocator; fully-consumed RX packets are
        #: returned here at the end of the ISR (the driver "freeing its
        #: skbs").  None = packets are left to the garbage collector.
        self.pool = pool
        self.napi = NapiContext()
        self.rx_meter = RateMeter(f"{self.name}.pps")
        self.rx_vector: Optional[int] = None
        self.mbx_vector: Optional[int] = None
        self.running = False
        #: Physical link state as last reported by the PF (§4.2).
        self.carrier = True
        #: Invoked with the new carrier state (the bond's MII monitor).
        self.on_carrier_change: Optional[callable] = None
        self.interrupts_handled = 0
        self.resets_handled = 0
        self.link_events: List[str] = []
        #: Sender-side retry protection for VF -> PF requests (§4.2's
        #: doorbell can be lost under fault injection).
        self.pf_retrier = MailboxRetrier(self.sim, vf.mailbox, Mailbox.VF)
        self._sample_handle: Optional[EventHandle] = None
        #: Installed by :class:`repro.sim.fluid.FluidFlow` when this
        #: driver's stream rides the collapsed-window fast path.
        self._fluid = None
        # Registry instruments (no-ops when telemetry is off).
        scope = platform.metrics.scope(f"guest.{domain.name}")
        self._m_interrupts = scope.counter("interrupts")
        self._m_rx_pkts = scope.counter("rx_pkts")
        self._m_batch = scope.histogram("rx_batch", bin_width=1.0)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Probe: map the device's guest address space, bind MSI-X
        vectors, fill the RX ring, enable the VF, program the ITR."""
        if self.running:
            return
        self._map_rx_pool()
        rid = self.vf.pci.rid
        self.rx_vector = self.platform.bind_guest_msi(self.domain, self._isr,
                                                      source_rid=rid)
        self.mbx_vector = self.platform.bind_guest_msi(
            self.domain, self._mailbox_isr, source_rid=rid)
        self.vf.msix.configure(VECTOR_RXTX, MsiMessage(MSI_ADDRESS, self.rx_vector))
        self.vf.msix.configure(VECTOR_MAILBOX, MsiMessage(MSI_ADDRESS, self.mbx_vector))
        self.vf.msix.unmask(VECTOR_RXTX)
        self.vf.msix.unmask(VECTOR_MAILBOX)
        self.vf.mailbox.connect(Mailbox.VF, self._mailbox_message)
        # Program every slot's buffer once; steady-state refills
        # (rearm_until_full) then only move ownership.
        self.vf.rx_ring.program_buffers(RX_POOL_BASE, 4096, RX_BUFFER_BYTES)
        self._refill_rx_ring()
        self._program_itr(self.policy.initial_interval())
        self.vf.enabled = True
        self.running = True
        self.rx_meter.reset(self.sim.now)
        self._sample_handle = self.sim.schedule(self.policy.sample_period,
                                                self._sample_tick)

    def stop(self) -> None:
        """Driver removal (module unload or virtual hot-unplug): quiesce
        interrupts, disable the VF, release vectors."""
        if not self.running:
            return
        if self._fluid is not None:
            # Materialize pending fluid state before the ring resets.
            self._fluid.decollapse()
        self.running = False
        self.vf.enabled = False
        self.vf.throttle.cancel()
        if self._sample_handle is not None:
            self._sample_handle.cancel()
            self._sample_handle = None
        rid = self.vf.pci.rid
        if self.rx_vector is not None:
            self.platform.unbind_guest_msi(self.rx_vector, source_rid=rid)
        if self.mbx_vector is not None:
            self.platform.unbind_guest_msi(self.mbx_vector, source_rid=rid)
        self.vf.rx_ring.reset()

    # ------------------------------------------------------------------
    # transmit (inter-VM experiments and TX workloads)
    # ------------------------------------------------------------------
    def transmit(self, burst: List[Packet]) -> int:
        """Post a burst to the TX ring and kick the device."""
        if not self.running:
            return 0
        self.domain.charge_guest(self.costs.guest_cycles_per_packet * len(burst))
        return self.vf.hw_transmit(burst)

    # ------------------------------------------------------------------
    # the interrupt path
    # ------------------------------------------------------------------
    def _isr(self, vector: int) -> None:
        # While a flow is collapsed (self._fluid active) this handler
        # never runs — the fluid fast path replays the whole interrupt
        # arithmetically (see repro.sim.fluid).  A real fire only lands
        # here in exact mode or after a decollapse, and then the exact
        # path reaps whatever packets were materialized into the ring.
        self.interrupts_handled += 1
        self._m_interrupts.value += 1
        trace = self.platform.trace
        trace.begin("irq", "vf_isr", domain=self.domain.id,
                    driver=self.name)
        hvm_under_xen = self.domain.is_hvm and not self.platform.is_native
        masks_msi = (hvm_under_xen
                     and self.domain.kernel.masks_msi_per_interrupt)
        if masks_msi:
            # 2.6.18 masks the vector at the top of the handler (§5.1).
            self.platform.device_model(self.domain).emulate_msix_mask_write(True)
        self.domain.charge_guest(self.costs.guest_cycles_per_interrupt)
        ring = self.vf.rx_ring
        descriptors = self.napi.poll_all(ring)
        packets = [d.packet for d in descriptors if d.packet is not None]
        # Steady-state refill: buffers were programmed at probe time
        # and the slot-to-buffer mapping is fixed, so only ownership
        # moves.
        ring.rearm_until_full()
        if packets:
            count = len(packets)
            self.rx_meter.add(count)
            self._m_rx_pkts.value += count
            self._m_batch.add(count)
            accepted, _dropped = self.app.deliver(packets, self.sim.now)
            cycles = self.costs.guest_cycles_per_packet
            if self.domain.is_pvm:
                cycles += self.costs.pvm_syscall_surcharge_per_packet
            self.domain.charge_guest(cycles * accepted)
            if self.pool is not None:
                # The refill above re-posted the reaped slots
                # (clearing their packet references), so consumed
                # packets can go back to the allocator.
                self.pool.release(packets)
        batch = len(packets)
        if hvm_under_xen:
            self.platform.vlapic(self.domain).eoi_write()
        if masks_msi:
            self.platform.device_model(self.domain).emulate_msix_mask_write(False)
        trace.end("irq", "vf_isr", domain=self.domain.id,
                  packets=batch)

    def _mailbox_isr(self, vector: int) -> None:
        """Doorbell from the PF arrived; message already consumed by
        :meth:`_mailbox_message` (the model delivers synchronously)."""
        if self.domain.is_hvm and not self.platform.is_native:
            self.platform.vlapic(self.domain).eoi_write()

    def _mailbox_message(self, message: MailboxMessage) -> None:
        """PF-to-VF events (§4.2): "impending global device reset, link
        status change, and impending driver removal"."""
        self.link_events.append(message.kind)
        self.vf.mailbox.acknowledge(Mailbox.VF)
        self.vf.raise_mailbox_interrupt()
        if message.kind == "reset":
            self._handle_device_reset(message.body or {})
        elif message.kind == "link_change":
            self._handle_link_change(bool((message.body or {}).get("up", True)))
        elif message.kind == "driver_removal":
            # The PF driver is going away: quiesce until it returns.
            self.stop()

    def _handle_device_reset(self, body: dict) -> None:
        """Quiesce for the global reset, re-initialize when it ends.

        The device drops everything in flight; the driver re-posts its
        rings and re-enables once the reset window passes.
        """
        self.resets_handled += 1
        if not self.running:
            return
        if self._fluid is not None:
            # Pending collapsed packets must land in the real ring so
            # the reset drops them exactly as it would have.
            self._fluid.decollapse()
        self.vf.enabled = False
        self.vf.throttle.cancel()
        self.vf.rx_ring.reset()
        duration = float(body.get("duration", 0.01))

        def reinitialize() -> None:
            if not self.running:
                return
            self._refill_rx_ring()
            self.vf.enabled = True

        self.sim.schedule(duration, reinitialize)

    def _handle_link_change(self, up: bool) -> None:
        if up == self.carrier:
            return
        self.carrier = up
        if self.on_carrier_change is not None:
            self.on_carrier_change(up)

    # ------------------------------------------------------------------
    # PF requests (guest -> PF driver, over the mailbox)
    # ------------------------------------------------------------------
    def request_multicast(self, addresses: List) -> None:
        """Ask the PF driver to program our multicast list (§4.2).

        ``addresses`` are :class:`~repro.net.mac.MacAddress` group
        addresses; the full list replaces the previous one, as with
        the real mailbox protocol's MC list message.
        """
        payload = tuple(a.value & 0xFFFFFFFF for a in addresses[:16])
        self.pf_retrier.send(MailboxMessage(
            "set_multicast", payload=payload, body=list(addresses)))

    def request_vlan(self, vlan: int) -> None:
        self.pf_retrier.send(MailboxMessage(
            "set_vlan", payload=(vlan,), body=vlan))

    # ------------------------------------------------------------------
    # coalescing feedback loop (§5.3)
    # ------------------------------------------------------------------
    def _sample_tick(self) -> None:
        if not self.running:
            return
        if self._fluid is not None:
            # This handle was scheduled a full sample period ago, so it
            # runs before any same-time tick or fire: replay the
            # collapsed flow strictly up to now before reading the
            # meter.
            self._fluid.settle_strict()
        pps = self.rx_meter.rate(self.sim.now)
        self.rx_meter.reset(self.sim.now)
        new_interval = self.policy.on_sample(pps)
        if new_interval is not None:
            self._program_itr(new_interval)
        self._sample_handle = self.sim.schedule(self.policy.sample_period,
                                                self._sample_tick)

    def _program_itr(self, interval: float) -> None:
        """Write the throttle interval into the VTEITR register (the
        register's microsecond granularity applies, as on hardware)."""
        microseconds = max(1, int(round(interval * 1e6)))
        self.vf.regs.write_by_name("VTEITR0", microseconds)

    # ------------------------------------------------------------------
    def _refill_rx_ring(self) -> None:
        self.vf.rx_ring.post_until_full(RX_POOL_BASE, 4096, RX_BUFFER_BYTES)

    def _map_rx_pool(self) -> None:
        """DMA-map the receive buffer pool in the guest's I/O space, as
        the real driver does at probe time with dma_map_single()."""
        pool_pages = self.vf.rx_ring.size
        self.domain.io_page_table.map(
            RX_POOL_BASE, 0x4000_0000 + self.domain.id * 0x100_0000,
            size=pool_pages * 4096)

    @property
    def current_interrupt_hz(self) -> float:
        interval = self.vf.throttle.interval
        return 1.0 / interval if interval > 0 else float("inf")
