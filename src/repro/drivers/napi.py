"""NAPI: budgeted interrupt-to-poll processing.

Linux's NAPI discipline (the paper's [27]) bounds how much RX work one
softirq invocation does: the driver polls its ring in ``budget``-sized
chunks, re-queuing itself while packets remain.  We keep the discipline
(it shapes burst delivery into the socket buffer) and its statistics.
"""

from __future__ import annotations

from typing import List

from repro.hw.dma import Descriptor, DescriptorRing

#: Linux's default NAPI budget.
DEFAULT_BUDGET = 64


class NapiContext:
    """Per-interface NAPI state and statistics."""

    def __init__(self, budget: int = DEFAULT_BUDGET):
        if budget <= 0:
            raise ValueError("NAPI budget must be positive")
        self.budget = budget
        self.polls = 0
        self.packets = 0
        self.exhausted_polls = 0  # polls that used the whole budget

    def poll(self, ring: DescriptorRing) -> List[Descriptor]:
        """One poll invocation: reap at most ``budget`` descriptors."""
        reaped = ring.reap(limit=self.budget)
        self.polls += 1
        self.packets += len(reaped)
        if len(reaped) == self.budget:
            self.exhausted_polls += 1
        return reaped

    def poll_all(self, ring: DescriptorRing) -> List[Descriptor]:
        """Poll until the ring is clean (the softirq re-queue loop)."""
        collected: List[Descriptor] = []
        while True:
            chunk = self.poll(ring)
            collected.extend(chunk)
            if len(chunk) < self.budget:
                return collected
