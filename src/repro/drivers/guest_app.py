"""The netserver application model.

The guest runs netperf's netserver (§6.1), reading datagrams out of a
finite socket buffer.  §5.3's buffer arithmetic hinges on it: the stack
can park at most ``ap_bufs`` packets in the socket buffer per interrupt
batch, plus whatever the application drains concurrently (the ``r``
redundancy factor).  A batch larger than ``ap_bufs x r`` loses the
excess — the RX collapse of Fig. 10's fixed-frequency curves.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

from repro.core.costs import CostModel
from repro.net.packet import (
    IP_HEADER_BYTES,
    Packet,
    Protocol,
    TCP_HEADER_BYTES,
    UDP_HEADER_BYTES,
)
from repro.sim.stats import Histogram

#: Latency histogram bin: 10 microseconds.
LATENCY_BIN = 10e-6


class NetserverApp:
    """Receives packet batches through a bounded socket buffer."""

    def __init__(self, costs: Optional[CostModel] = None, name: str = ""):
        self.costs = costs or CostModel()
        self.name = name
        #: Effective per-batch sink capacity: socket buffer plus the
        #: fraction the app drains while the batch is being delivered.
        self.batch_capacity = int(self.costs.aic_ap_bufs
                                  * self.costs.aic_redundancy)
        self.rx_packets = 0
        self.rx_bytes = 0
        self.dropped_packets = 0
        #: End-to-end packet latency (send timestamp -> app delivery);
        #: dominated by the interrupt-coalescing delay, the §5.3
        #: latency/CPU tradeoff.
        self.latency = Histogram(LATENCY_BIN, f"{name}.latency")
        self._started_at: Optional[float] = None
        self._last_rx_at: float = 0.0

    def deliver(self, burst: List[Packet], now: float = 0.0,
                capped: bool = True) -> Tuple[int, int]:
        """Deliver one batch; returns (accepted, dropped).

        ``capped`` applies the per-interrupt socket-buffer bound — the
        VF ISR path where the whole coalescing window lands at once.
        Flow-controlled paths (netback's copy, which paces itself
        against the frontend ring) pass ``capped=False``.
        """
        if self._started_at is None:
            self._started_at = now
        self._last_rx_at = now
        accepted = min(len(burst), self.batch_capacity) if capped else len(burst)
        dropped = len(burst) - accepted
        self.rx_packets += accepted
        # Application goodput counts transport payload, matching how
        # netperf reports throughput (957 Mbps = payload over a 1 Gbps
        # line, not wire bytes).  This loop runs once per delivered
        # packet — the simulation's highest call count — so both the
        # ``Packet.payload_bytes`` property and ``Histogram.add`` are
        # inlined.  The histogram accumulators are updated in the exact
        # per-packet float order the method calls produced, so means
        # and percentiles stay bit-identical.
        payload = 0
        udp = Protocol.UDP
        udp_overhead = IP_HEADER_BYTES + UDP_HEADER_BYTES
        tcp_overhead = IP_HEADER_BYTES + TCP_HEADER_BYTES
        latency = self.latency
        bins = latency._bins
        bin_get = bins.get
        bin_width = latency.bin_width
        lat_count = latency._count
        lat_sum = latency._sum
        lat_sum_sq = latency._sum_sq
        floor = math.floor
        for packet in burst[:accepted]:
            size = packet.size_bytes
            bytes_ = size - (udp_overhead if packet.protocol is udp
                             else tcp_overhead)
            if bytes_ > 0:
                payload += bytes_
            value = now - packet.created_at
            index = int(floor(value / bin_width))
            bins[index] = bin_get(index, 0) + 1
            lat_count += 1
            lat_sum += value
            lat_sum_sq += value * value
        latency._count = lat_count
        latency._sum = lat_sum
        latency._sum_sq = lat_sum_sq
        self.rx_bytes += payload
        self.dropped_packets += dropped
        return accepted, dropped

    def deliver_fluid(self, segments, total: int, now: float,
                      size_bytes: int, protocol: Protocol) -> int:
        """Deliver a collapsed batch; returns the accepted count.

        ``segments`` is the fluid datapath's per-tick list of
        ``(count, accepted, tick_time)`` records for one interrupt
        window; ``total`` is the sum of the accepted column.  Every
        packet in the window shares ``size_bytes`` and ``protocol``
        (the eligibility gates guarantee a single uniform stream), so
        the per-packet loop of :meth:`deliver` reduces to per-segment
        arithmetic — except the latency sums, which replay the exact
        repeated float additions so means and variances stay
        bit-identical.
        """
        if self._started_at is None:
            self._started_at = now
        self._last_rx_at = now
        accepted = min(total, self.batch_capacity)
        dropped = total - accepted
        self.rx_packets += accepted
        overhead = (IP_HEADER_BYTES + UDP_HEADER_BYTES
                    if protocol is Protocol.UDP
                    else IP_HEADER_BYTES + TCP_HEADER_BYTES)
        per_packet = size_bytes - overhead
        latency = self.latency
        bins = latency._bins
        bin_get = bins.get
        bin_width = latency.bin_width
        lat_sum = latency._sum
        lat_sum_sq = latency._sum_sq
        floor = math.floor
        remaining = accepted
        for _count, seg_accepted, tick_time in segments:
            if remaining <= 0:
                break
            n = seg_accepted if seg_accepted <= remaining else remaining
            remaining -= n
            value = now - tick_time
            index = int(floor(value / bin_width))
            bins[index] = bin_get(index, 0) + n
            square = value * value
            for _ in range(n):
                lat_sum += value
                lat_sum_sq += square
        latency._count += accepted
        latency._sum = lat_sum
        latency._sum_sq = lat_sum_sq
        if per_packet > 0:
            self.rx_bytes += per_packet * accepted
        self.dropped_packets += dropped
        return accepted

    def throughput_bps(self, elapsed: float) -> float:
        """Delivered application goodput over a measurement window."""
        if elapsed <= 0:
            return 0.0
        return self.rx_bytes * 8 / elapsed

    @property
    def loss_rate(self) -> float:
        offered = self.rx_packets + self.dropped_packets
        return self.dropped_packets / offered if offered else 0.0

    def reset(self) -> None:
        self.rx_packets = 0
        self.rx_bytes = 0
        self.dropped_packets = 0
        self.latency = Histogram(LATENCY_BIN, f"{self.name}.latency")
        self._started_at = None
