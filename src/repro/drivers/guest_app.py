"""The netserver application model.

The guest runs netperf's netserver (§6.1), reading datagrams out of a
finite socket buffer.  §5.3's buffer arithmetic hinges on it: the stack
can park at most ``ap_bufs`` packets in the socket buffer per interrupt
batch, plus whatever the application drains concurrently (the ``r``
redundancy factor).  A batch larger than ``ap_bufs x r`` loses the
excess — the RX collapse of Fig. 10's fixed-frequency curves.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.costs import CostModel
from repro.net.packet import Packet
from repro.sim.stats import Histogram

#: Latency histogram bin: 10 microseconds.
LATENCY_BIN = 10e-6


class NetserverApp:
    """Receives packet batches through a bounded socket buffer."""

    def __init__(self, costs: Optional[CostModel] = None, name: str = ""):
        self.costs = costs or CostModel()
        self.name = name
        #: Effective per-batch sink capacity: socket buffer plus the
        #: fraction the app drains while the batch is being delivered.
        self.batch_capacity = int(self.costs.aic_ap_bufs
                                  * self.costs.aic_redundancy)
        self.rx_packets = 0
        self.rx_bytes = 0
        self.dropped_packets = 0
        #: End-to-end packet latency (send timestamp -> app delivery);
        #: dominated by the interrupt-coalescing delay, the §5.3
        #: latency/CPU tradeoff.
        self.latency = Histogram(LATENCY_BIN, f"{name}.latency")
        self._started_at: Optional[float] = None
        self._last_rx_at: float = 0.0

    def deliver(self, burst: List[Packet], now: float = 0.0,
                capped: bool = True) -> Tuple[int, int]:
        """Deliver one batch; returns (accepted, dropped).

        ``capped`` applies the per-interrupt socket-buffer bound — the
        VF ISR path where the whole coalescing window lands at once.
        Flow-controlled paths (netback's copy, which paces itself
        against the frontend ring) pass ``capped=False``.
        """
        if self._started_at is None:
            self._started_at = now
        self._last_rx_at = now
        accepted = min(len(burst), self.batch_capacity) if capped else len(burst)
        dropped = len(burst) - accepted
        self.rx_packets += accepted
        # Application goodput counts transport payload, matching how
        # netperf reports throughput (957 Mbps = payload over a 1 Gbps
        # line, not wire bytes).
        payload = 0
        latency = self.latency
        for packet in burst[:accepted]:
            payload += packet.payload_bytes
            latency.add(now - packet.created_at)
        self.rx_bytes += payload
        self.dropped_packets += dropped
        return accepted, dropped

    def throughput_bps(self, elapsed: float) -> float:
        """Delivered application goodput over a measurement window."""
        if elapsed <= 0:
            return 0.0
        return self.rx_bytes * 8 / elapsed

    @property
    def loss_rate(self) -> float:
        offered = self.rx_packets + self.dropped_packets
        return self.dropped_packets / offered if offered else 0.0

    def reset(self) -> None:
        self.rx_packets = 0
        self.rx_bytes = 0
        self.dropped_packets = 0
        self.latency = Histogram(LATENCY_BIN, f"{self.name}.latency")
        self._started_at = None
