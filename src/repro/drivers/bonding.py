"""The Linux bonding driver, active-backup mode.

DNIS's foundation (§4.4): "An OS bonding driver aggregates multiple
underlying network interface drivers, and presents the OS network stack
as a single logical network interface driver.  The OS bonding driver
chooses one network interface driver to be activated, while leaving the
rest to standby."  DNIS enslaves the VF driver and the PV NIC, keeps the
VF active for performance, and fails over to the PV NIC at migration
time.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.net.packet import Packet

#: Default MII-monitor polling interval — Linux bonding's miimon=100 ms.
DEFAULT_MIIMON_INTERVAL = 0.1


class SlaveDevice(ABC):
    """What the bond needs from an enslaved interface."""

    @property
    @abstractmethod
    def slave_name(self) -> str:
        """Interface name (e.g. ``eth0``, ``vf0``)."""

    @property
    @abstractmethod
    def carrier(self) -> bool:
        """Link state; the bond will not activate a downed slave."""

    @abstractmethod
    def transmit(self, burst: List[Packet]) -> int:
        """Send a burst; returns packets accepted."""


@dataclass
class FailoverRecord:
    """One activation change, for the migration timeline."""

    time: float
    from_slave: Optional[str]
    to_slave: Optional[str]


class BondingDriver:
    """An active-backup bond of slave devices."""

    def __init__(self, sim, name: str = "bond0"):
        self.sim = sim
        self.name = name
        self._slaves: Dict[str, SlaveDevice] = {}
        self._active: Optional[str] = None
        #: Preferred slave (Linux bonding's ``primary=`` option): when
        #: its carrier returns, the bond switches back to it even if a
        #: standby is currently carrying the traffic.
        self.primary: Optional[str] = None
        self.failovers: List[FailoverRecord] = []
        self.tx_packets = 0
        self.tx_dropped = 0
        self.miimon_polls = 0
        self._miimon_interval: Optional[float] = None
        self._miimon_handle = None
        self._last_carrier: Dict[str, bool] = {}

    # ------------------------------------------------------------------
    # enslavement
    # ------------------------------------------------------------------
    def enslave(self, device: SlaveDevice) -> None:
        name = device.slave_name
        if name in self._slaves:
            raise ValueError(f"slave {name!r} already enslaved")
        self._slaves[name] = device
        self._last_carrier[name] = device.carrier
        if self._active is None and device.carrier:
            self._activate(name)

    def release(self, slave_name: str) -> None:
        """Remove a slave (hot-unplug).  If it was active, fail over to
        any carrier-up standby."""
        if slave_name not in self._slaves:
            raise ValueError(f"no slave {slave_name!r}")
        del self._slaves[slave_name]
        self._last_carrier.pop(slave_name, None)
        if self._active == slave_name:
            self._active = None
            self.failovers.append(FailoverRecord(self.sim.now, slave_name, None))
            self._failover_to_any()

    # ------------------------------------------------------------------
    # activation
    # ------------------------------------------------------------------
    @property
    def active_slave(self) -> Optional[str]:
        return self._active

    def set_active(self, slave_name: str) -> None:
        if slave_name not in self._slaves:
            raise ValueError(f"no slave {slave_name!r}")
        if not self._slaves[slave_name].carrier:
            raise RuntimeError(f"slave {slave_name!r} has no carrier")
        if slave_name != self._active:
            self._activate(slave_name)

    def carrier_changed(self, slave_name: str) -> None:
        """MII-monitor notification: re-evaluate the active slave."""
        if slave_name not in self._slaves:
            return
        device = self._slaves[slave_name]
        self._last_carrier[slave_name] = device.carrier
        if self._active == slave_name and not device.carrier:
            self._active = None
            self.failovers.append(FailoverRecord(self.sim.now, slave_name, None))
            self._failover_to_any()
        elif self._active is None and device.carrier:
            self._activate(slave_name)
        elif (slave_name == self.primary and device.carrier
                and self._active != slave_name):
            # The preferred slave's link is back: switch over to it.
            self._activate(slave_name)

    # ------------------------------------------------------------------
    # the MII monitor (miimon)
    # ------------------------------------------------------------------
    def start_miimon(self,
                     interval: float = DEFAULT_MIIMON_INTERVAL) -> None:
        """Poll every slave's carrier each ``interval`` seconds — the
        bonding driver's miimon.  Carrier transitions are therefore
        detected with up to one interval of latency, during which the
        data path degrades (see :meth:`transmit`) rather than crashing.
        """
        if interval <= 0:
            raise ValueError("miimon interval must be positive")
        self.stop_miimon()
        self._miimon_interval = interval
        self._miimon_handle = self.sim.schedule(interval, self._miimon_tick)

    def stop_miimon(self) -> None:
        if self._miimon_handle is not None:
            self._miimon_handle.cancel()
            self._miimon_handle = None
        self._miimon_interval = None

    @property
    def miimon_interval(self) -> Optional[float]:
        return self._miimon_interval

    def _miimon_tick(self) -> None:
        self.miimon_polls += 1
        for name, device in list(self._slaves.items()):
            if device.carrier != self._last_carrier.get(name):
                self.carrier_changed(name)
        if self._miimon_interval is not None:
            self._miimon_handle = self.sim.schedule(self._miimon_interval,
                                                    self._miimon_tick)

    def _failover_to_any(self) -> None:
        for name, device in self._slaves.items():
            if device.carrier:
                self._activate(name)
                return

    def _activate(self, slave_name: str) -> None:
        previous = self._active
        self._active = slave_name
        self.failovers.append(FailoverRecord(self.sim.now, previous, slave_name))

    # ------------------------------------------------------------------
    # data path
    # ------------------------------------------------------------------
    def transmit(self, burst: List[Packet]) -> int:
        """Send through the active slave; drops when none is active —
        the packet loss window during a DNIS interface switch.

        An active slave that lost carrier since the last MII poll is
        failed over inline (recording the :class:`FailoverRecord`), so
        a mid-burst link drop degrades to the standby path instead of
        transmitting into a dead link.
        """
        active = self._active
        if active is not None and not self._slaves[active].carrier:
            self.carrier_changed(active)
            active = self._active
        if active is None:
            self.tx_dropped += len(burst)
            return 0
        sent = self._slaves[active].transmit(burst)
        self.tx_packets += sent
        self.tx_dropped += len(burst) - sent
        return sent

    def slaves(self) -> List[str]:
        return list(self._slaves)
