"""Netback: the dom0 half of the Xen PV split driver.

Every packet a PV guest receives is *copied* by dom0 — "existing
solutions, such as the Xen split device driver ... suffer from VMM
intervention overhead, due to packet copy" (§1).  The copy work runs on
a pool of backend threads:

* the stock driver has **one** thread, which "can easily saturate at
  100% CPU utilization ... only 3.6 Gbps in our experiment" (§6.5);
* the paper's enhanced driver spreads the copy across several threads —
  but per-packet cost still grows with VM count (60 rings of cache/TLB
  working set), which is why Figs. 17-18 decay.

Each backend thread is a saturating :class:`~repro.hw.cpu.Executor`:
when offered work exceeds the pool's service rate, bursts are rejected
and the goodput caps — the mechanism behind every PV throughput ceiling
in the paper.
"""

from __future__ import annotations

from typing import List, Optional

from repro.hw.cpu import Executor
from repro.net.packet import Packet
from repro.vmm.domain import Domain


class Netback:
    """The dom0 backend service pool."""

    def __init__(self, platform, dom0: Domain, threads: Optional[int] = None,
                 queue_limit: int = 256):
        self.platform = platform
        self.sim = platform.sim
        self.costs = platform.costs
        self.dom0 = dom0
        thread_count = threads if threads is not None else self.costs.netback_threads
        if thread_count <= 0:
            raise ValueError("netback needs at least one thread")
        if thread_count > len(dom0.vcpus):
            raise ValueError("more netback threads than dom0 VCPUs")
        self.executors = [
            Executor(self.sim, platform.machine.core(dom0.vcpus[i].core_index),
                     "dom0", queue_limit=queue_limit)
            for i in range(thread_count)
        ]
        self._frontends: List["object"] = []
        self.delivered_packets = 0
        self.dropped_bursts = 0
        self.dropped_packets = 0
        # Per-thread registry instruments (no-ops when telemetry is off).
        self._thread_batches = []
        self._thread_packets = []
        for i in range(thread_count):
            scope = platform.metrics.scope(f"netback.thread{i}")
            self._thread_batches.append(scope.counter("batches"))
            self._thread_packets.append(scope.counter("packets"))
        nb_scope = platform.metrics.scope("netback")
        nb_scope.gauge("delivered_pkts", lambda: self.delivered_packets)
        nb_scope.gauge("dropped_pkts", lambda: self.dropped_packets)
        nb_scope.gauge("dropped_bursts", lambda: self.dropped_bursts)

    # ------------------------------------------------------------------
    def connect(self, netfront) -> None:
        """Attach a frontend (its ring + event channel pair)."""
        if netfront in self._frontends:
            raise ValueError("frontend already connected")
        self._frontends.append(netfront)
        netfront.backend = self

    def disconnect(self, netfront) -> None:
        self._frontends.remove(netfront)
        netfront.backend = None

    @property
    def frontend_count(self) -> int:
        return len(self._frontends)

    # ------------------------------------------------------------------
    def cycles_per_packet(self, domain: Domain) -> float:
        """The calibrated dom0 copy cost for one packet to ``domain``.

        PVM base + the HVM interrupt-conversion surcharge, inflated by
        the multi-VM contention factor beyond the paper's 10-VM
        baseline.
        """
        cost = self.costs.netback_cycles_per_packet_pvm
        if domain.is_hvm:
            cost += self.costs.netback_hvm_extra_cycles
        inflation = 1.0 + self.costs.netback_contention_per_vm * max(
            0, self.frontend_count - 10)
        return cost * inflation

    def deliver(self, netfront, burst: List[Packet]) -> bool:
        """Queue a burst of guest-bound packets for copy service.

        Returns False (burst dropped) when the chosen backend thread's
        queue is full — the saturation signal.
        """
        if netfront not in self._frontends:
            raise RuntimeError("frontend not connected to this netback")
        if not burst:
            return True
        thread = netfront.frontend_id % len(self.executors)
        executor = self.executors[thread]
        cycles = self.cycles_per_packet(netfront.domain) * len(burst)
        self._thread_batches[thread].add()
        self._thread_packets[thread].add(len(burst))
        self.platform.trace.emit("netback", "batch", thread=thread,
                                 domain=netfront.domain.id,
                                 packets=len(burst))

        def complete() -> None:
            for packet in burst:
                ref = netfront.grant_table.grant_access(self.dom0.id, packet.seq)
                netfront.grant_table.grant_copy(ref, self.dom0.id,
                                                packet.size_bytes)
                netfront.grant_table.end_access(ref)
            self.delivered_packets += len(burst)
            netfront.receive_burst(burst)

        accepted = executor.submit(cycles, complete)
        if not accepted:
            self.dropped_bursts += 1
            self.dropped_packets += len(burst)
            self.platform.trace.emit("netback", "drop", thread=thread,
                                     domain=netfront.domain.id,
                                     packets=len(burst))
        return accepted

    # ------------------------------------------------------------------
    @property
    def total_queue_depth(self) -> int:
        return sum(e.queue_depth for e in self.executors)

    def capacity_pps(self, domain: Domain) -> float:
        """Theoretical pool service rate for packets to ``domain``."""
        per_thread = self.costs.clock_hz / self.cycles_per_packet(domain)
        return per_thread * len(self.executors)
