"""Netfront: the guest half of the Xen PV split driver.

The "software emulated NIC" of the paper: hardware-neutral (which is why
DNIS can always fail over to it for migration, §4.4) but every packet
arrives via a dom0 copy and an event-channel notification.
"""

from __future__ import annotations

import itertools
from typing import List, Optional

from repro.drivers.guest_app import NetserverApp
from repro.net.packet import Packet
from repro.vmm.domain import Domain
from repro.vmm.grant_table import GrantTable

_frontend_ids = itertools.count()


class Netfront:
    """One guest's PV network frontend."""

    def __init__(self, platform, domain: Domain,
                 app: Optional[NetserverApp] = None, name: str = ""):
        self.platform = platform
        self.sim = platform.sim
        self.costs = platform.costs
        self.domain = domain
        self.app = app or NetserverApp(platform.costs)
        self.frontend_id = next(_frontend_ids)
        self.name = name or f"vif{domain.id}.0"
        self.grant_table = GrantTable(domain.id)
        self.backend = None  # set by Netback.connect
        self.mac = None  # assigned by the bridge / VMDq service
        self.carrier_on = True
        # Netdev-notifier analogue: called with the new state on every
        # carrier *transition* (suspend/resume), so a bonding driver
        # reacts immediately instead of a MII-monitor interval late.
        self.carrier_watchers: List = []
        self.rx_packets = 0
        self.notifications = 0
        # The event channel netback signals us on.
        if hasattr(platform, "event_channels"):
            self.event_port = platform.event_channels.bind(self._upcall)
        else:
            self.event_port = None

    # ------------------------------------------------------------------
    def receive_burst(self, burst: List[Packet]) -> None:
        """Called by netback once the copy into our pages completed."""
        if not self.carrier_on:
            return
        # The event-channel upcall that tells us data landed.
        if self.event_port is not None:
            self.platform.event_channels.notify(self.event_port)
        self.domain.charge_hypervisor(self.costs.event_channel_notify_cycles)
        self.domain.charge_guest(self.costs.guest_cycles_per_interrupt)
        cycles = self.costs.netfront_cycles_per_packet
        if self.domain.is_pvm:
            cycles += self.costs.pvm_syscall_surcharge_per_packet
        # The copy path is flow-controlled by the shared ring, so the
        # per-interrupt socket cap of the VF path does not apply.
        accepted, _ = self.app.deliver(burst, self.sim.now, capped=False)
        self.domain.charge_guest(cycles * accepted)
        self.rx_packets += accepted
        self.platform.trace.emit("netfront", "rx", domain=self.domain.id,
                                 packets=accepted)

    def _upcall(self, port: int) -> None:
        self.notifications += 1

    # ------------------------------------------------------------------
    def set_carrier(self, on: bool) -> None:
        """Link state as the bonding driver sees it."""
        changed = on != self.carrier_on
        self.carrier_on = on
        if changed:
            for watcher in list(self.carrier_watchers):
                watcher(on)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Netfront {self.name} domain={self.domain.name}>"
