"""The dom0 service path for VMDq queues (§6.6).

VMDq moves *classification* into the NIC, but dom0 still copies every
packet into the guest and performs protection/translation — so the
service pool is structurally netback with a cheaper per-packet cost for
queue-owning guests.  Guests beyond the 7 dedicated queues ride the
default queue through the conventional (more expensive) PV path.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.devices.ixgbe82598 import DEFAULT_QUEUE, Ixgbe82598Port, VmdqQueuePair
from repro.hw.cpu import Executor
from repro.net.mac import MacAddress
from repro.net.packet import Packet
from repro.vmm.domain import Domain


class VmdqService:
    """dom0's per-queue interrupt service for an 82598."""

    def __init__(self, platform, dom0: Domain, port: Ixgbe82598Port,
                 threads: Optional[int] = None, queue_limit: int = 256):
        self.platform = platform
        self.sim = platform.sim
        self.costs = platform.costs
        self.dom0 = dom0
        self.port = port
        thread_count = threads if threads is not None else self.costs.netback_threads
        self.executors = [
            Executor(self.sim, platform.machine.core(dom0.vcpus[i].core_index),
                     "dom0", queue_limit=queue_limit)
            for i in range(thread_count)
        ]
        #: MAC -> (netfront-like sink, has dedicated queue).
        self._guests: Dict[MacAddress, "tuple[object, bool]"] = {}
        port.interrupt_sink = self._queue_interrupt
        self.delivered_packets = 0
        self.dropped_packets = 0

    # ------------------------------------------------------------------
    def register_guest(self, netfront, mac: MacAddress) -> bool:
        """Attach a guest; returns True if it won a dedicated queue."""
        queue = self.port.assign_queue(netfront.domain.id, mac)
        dedicated = queue is not None
        self._guests[mac] = (netfront, dedicated)
        return dedicated

    def unregister_guest(self, netfront, mac: MacAddress) -> None:
        self.port.release_queue(netfront.domain.id)
        self._guests.pop(mac, None)

    @property
    def dedicated_guest_count(self) -> int:
        return sum(1 for _, dedicated in self._guests.values() if dedicated)

    # ------------------------------------------------------------------
    def cycles_per_packet(self, dedicated: bool) -> float:
        base = (self.costs.vmdq_dom0_cycles_per_packet if dedicated
                else self.costs.vmdq_fallback_cycles_per_packet)
        inflation = 1.0 + self.costs.netback_contention_per_vm * max(
            0, len(self._guests) - 10)
        return base * inflation

    def _queue_interrupt(self, queue: VmdqQueuePair) -> None:
        """Drain a hardware queue and dispatch copy work per guest.

        Dedicated queues spread across the service threads; the shared
        *default* queue is serviced by a single thread, which is the
        structural bottleneck behind Fig. 19's decay — once more than 7
        guests share the default queue, its one thread saturates.
        """
        burst = queue.rx.drain()
        by_mac: Dict[MacAddress, List[Packet]] = {}
        for packet in burst:
            by_mac.setdefault(packet.dst, []).append(packet)
        for mac, packets in by_mac.items():
            entry = self._guests.get(mac)
            if entry is None:
                self.dropped_packets += len(packets)
                continue
            netfront, dedicated = entry
            if queue.index == DEFAULT_QUEUE:
                executor = self.executors[0]
            else:
                spread = self.executors[1:] or self.executors
                executor = spread[queue.index % len(spread)]
            cycles = self.cycles_per_packet(dedicated) * len(packets)

            def complete(netfront=netfront, packets=packets) -> None:
                self.delivered_packets += len(packets)
                netfront.receive_burst(packets)

            if not executor.submit(cycles, complete):
                self.dropped_packets += len(packets)
