"""Guest and host drivers.

The software the paper actually shipped, re-expressed against the
simulated hardware:

* :mod:`repro.drivers.pf_igb` — the PF (igb) driver in the service OS:
  enables VFs, programs the L2 switch, services mailbox requests,
  broadcasts physical events (§4.1-4.2).
* :mod:`repro.drivers.vf_igbvf` — the VF (igbvf) driver in the guest:
  the performance-critical interrupt path the §5 optimizations target.
* :mod:`repro.drivers.coalescing` — interrupt-throttle policies: fixed
  rates, the IGB driver's dynamic mode, and the paper's adaptive
  interrupt coalescing (AIC, §5.3).
* :mod:`repro.drivers.napi` — budgeted polling (the NAPI discipline).
* :mod:`repro.drivers.guest_app` — the netserver application model with
  the finite socket buffer AIC is designed around.
* :mod:`repro.drivers.netfront` / :mod:`repro.drivers.netback` — the
  Xen PV split driver, including the multi-threaded backend enhancement
  of §6.5.
* :mod:`repro.drivers.vmdq` — the dom0 service path for VMDq queues
  (§6.6).
* :mod:`repro.drivers.bonding` — the Linux bonding driver DNIS uses to
  switch between VF and PV NIC (§4.4).
"""

from repro.drivers.bonding import BondingDriver, SlaveDevice
from repro.drivers.coalescing import (
    AdaptiveCoalescing,
    CoalescingPolicy,
    DynamicItr,
    FixedItr,
    policy_from_spec,
    policy_to_spec,
)
from repro.drivers.guest_app import NetserverApp
from repro.drivers.napi import NapiContext
from repro.drivers.netback import Netback
from repro.drivers.netfront import Netfront
from repro.drivers.pf_igb import PfDriver
from repro.drivers.vf_igbvf import VfDriver
from repro.drivers.vmdq import VmdqService

__all__ = [
    "AdaptiveCoalescing",
    "BondingDriver",
    "CoalescingPolicy",
    "DynamicItr",
    "FixedItr",
    "NapiContext",
    "Netback",
    "Netfront",
    "NetserverApp",
    "PfDriver",
    "SlaveDevice",
    "VfDriver",
    "VmdqService",
    "policy_from_spec",
    "policy_to_spec",
]
