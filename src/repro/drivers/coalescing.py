"""Interrupt-coalescing policies.

The policies compared in §5.3 / Figs. 8-10:

* :class:`FixedItr` — a constant interrupt frequency (the paper sweeps
  20 kHz, 2 kHz and 1 kHz).
* :class:`DynamicItr` — the IGB driver's adaptive mode: interrupt rate
  follows traffic, bounded above by the low-latency ceiling.
* :class:`AdaptiveCoalescing` — the paper's AIC: pick the *lowest*
  frequency that cannot overflow the receive buffers,
  ``IF = max(pps / (bufs x r), lif)`` with pps sampled once a second.

A policy yields the ITR interval to program; the driver re-samples it
on a periodic tick, feeding back the measured packet rate.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Mapping, Optional

from repro.core.costs import CostModel


class CoalescingPolicy(ABC):
    """Strategy interface for the VF driver's ITR programming."""

    @abstractmethod
    def initial_interval(self) -> float:
        """The interval to program before any traffic is seen."""

    @abstractmethod
    def on_sample(self, pps: float) -> Optional[float]:
        """Periodic adaptation: measured pps in, new interval out.

        Return None to leave the throttle unchanged.
        """

    @property
    def sample_period(self) -> float:
        """How often the driver samples pps (seconds)."""
        return 1.0


class FixedItr(CoalescingPolicy):
    """A constant interrupt frequency."""

    def __init__(self, hz: float):
        if hz <= 0:
            raise ValueError("interrupt frequency must be positive")
        self.hz = hz

    def initial_interval(self) -> float:
        return 1.0 / self.hz

    def on_sample(self, pps: float) -> Optional[float]:
        return None

    def __repr__(self) -> str:
        return f"FixedItr({self.hz:g} Hz)"


class DynamicItr(CoalescingPolicy):
    """The IGB driver's traffic-following mode.

    Targets a fixed batch size (packets per interrupt) so the interrupt
    rate scales with load, clamped to [min_hz, max_hz].  This is what
    makes Fig. 6's dom0 cost grow *sublinearly* with VM count: seven VFs
    each carrying a seventh of the line interrupt at a seventh the rate.
    """

    def __init__(self, target_packets_per_interrupt: float = 9.0,
                 max_hz: float = 9000.0, min_hz: float = 500.0):
        if target_packets_per_interrupt <= 0:
            raise ValueError("target batch must be positive")
        if not 0 < min_hz <= max_hz:
            raise ValueError("need 0 < min_hz <= max_hz")
        self.target = target_packets_per_interrupt
        self.max_hz = max_hz
        self.min_hz = min_hz

    def initial_interval(self) -> float:
        return 1.0 / self.max_hz

    def frequency_for(self, pps: float) -> float:
        return min(self.max_hz, max(self.min_hz, pps / self.target))

    def on_sample(self, pps: float) -> Optional[float]:
        return 1.0 / self.frequency_for(pps)

    def __repr__(self) -> str:
        return f"DynamicItr(target={self.target:g}, max={self.max_hz:g} Hz)"


class AdaptiveCoalescing(CoalescingPolicy):
    """The paper's AIC (§5.3): overflow-avoiding minimum frequency.

    Equations (1)-(3)::

        bufs = min(ap_bufs, dd_bufs)
        t_d x r = bufs / pps            (eq. 2)
        IF = 1/t_d = max(pps x r / bufs, lif)

    where ``r`` budgets hypervisor-intervention latency and ``lif``
    bounds worst-case latency.  (The paper's printed eq. (3) drops r to
    the denominator, contradicting eq. (2); see
    :meth:`repro.core.costs.CostModel.aic_interrupt_hz` for why the
    eq. (2) form is the intended one.)
    """

    def __init__(self, costs: Optional[CostModel] = None):
        self.costs = (costs or CostModel()).validate()

    def initial_interval(self) -> float:
        return 1.0 / self.costs.aic_lif_hz

    def frequency_for(self, pps: float) -> float:
        return self.costs.aic_interrupt_hz(pps)

    def on_sample(self, pps: float) -> Optional[float]:
        return 1.0 / self.frequency_for(pps)

    @property
    def sample_period(self) -> float:
        return self.costs.aic_sample_period

    def __repr__(self) -> str:
        return (f"AdaptiveCoalescing(bufs={self.costs.aic_bufs}, "
                f"r={self.costs.aic_redundancy:g}, "
                f"lif={self.costs.aic_lif_hz:g} Hz)")


# ----------------------------------------------------------------------
# declarative policy specs
# ----------------------------------------------------------------------
# Policies cross process boundaries (the sweep engine pickles jobs into
# a worker pool) and land in cache keys and JSON artifacts, so each one
# has a declarative spec — a plain dict of JSON scalars — instead of a
# ``policy_factory`` closure:
#
#     {"kind": "fixed_itr", "hz": 2000}
#     {"kind": "dynamic_itr", "target": 9, "max_hz": 9000, "min_hz": 500}
#     {"kind": "aic"}
#
# AIC's parameters live in the run's :class:`CostModel` (they are part
# of the §5.3 calibration), so its spec carries no numbers: the cost
# model the run executes under supplies them.

POLICY_KINDS = ("fixed_itr", "dynamic_itr", "aic")


def policy_from_spec(spec: Mapping[str, object],
                     costs: Optional[CostModel] = None) -> CoalescingPolicy:
    """Instantiate the policy a spec dict describes."""
    if not isinstance(spec, Mapping) or "kind" not in spec:
        raise ValueError(f"policy spec must be a dict with a 'kind' key, "
                         f"got {spec!r}")
    kind = spec["kind"]
    extra = {k: v for k, v in spec.items() if k != "kind"}
    if kind == "fixed_itr":
        return FixedItr(float(extra.pop("hz")))
    if kind == "dynamic_itr":
        kwargs = {}
        if "target" in extra:
            kwargs["target_packets_per_interrupt"] = float(extra.pop("target"))
        if "max_hz" in extra:
            kwargs["max_hz"] = float(extra.pop("max_hz"))
        if "min_hz" in extra:
            kwargs["min_hz"] = float(extra.pop("min_hz"))
        if extra:
            raise ValueError(f"unknown dynamic_itr keys: {sorted(extra)}")
        return DynamicItr(**kwargs)
    if kind == "aic":
        if extra:
            raise ValueError(f"aic spec takes no parameters, got "
                             f"{sorted(extra)} (tune the CostModel instead)")
        return AdaptiveCoalescing(costs)
    raise ValueError(f"unknown policy kind {kind!r}: use one of "
                     f"{', '.join(POLICY_KINDS)}")


def policy_to_spec(policy: CoalescingPolicy) -> Dict[str, object]:
    """The spec dict that reconstructs ``policy`` (inverse of
    :func:`policy_from_spec` for the stock policy classes)."""
    if isinstance(policy, FixedItr):
        return {"kind": "fixed_itr", "hz": policy.hz}
    if isinstance(policy, DynamicItr):
        return {"kind": "dynamic_itr", "target": policy.target,
                "max_hz": policy.max_hz, "min_hz": policy.min_hz}
    if isinstance(policy, AdaptiveCoalescing):
        return {"kind": "aic"}
    raise TypeError(f"no declarative spec for {type(policy).__name__}")
