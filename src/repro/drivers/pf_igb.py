"""The PF (igb) driver in the service OS.

"The PF driver directly accesses all PF resources and is responsible
for configuring and managing VFs.  It sets the number of VFs, globally
enables or disables VFs, and sets up device specific configurations,
such as MAC address and VLAN settings ... The PF driver is also
responsible for configuring layer 2 switching" (§4.1).

It also terminates the §4.2 mailbox protocol (servicing VF requests,
broadcasting physical events) and enforces the §4.3 policy hooks: it
inspects VF requests and can shut a misbehaving VF down.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.devices.igb82576 import (
    Igb82576Port,
    RX_BUFFER_BYTES,
    VECTOR_RXTX,
    VirtualFunction,
)
from repro.devices.mailbox import Mailbox, MailboxMessage, MailboxRetrier
from repro.drivers.guest_app import NetserverApp
from repro.drivers.napi import NapiContext
from repro.hw.msi import MsiMessage
from repro.net.mac import MacAddress, MacAllocator
from repro.net.packet import Packet
from repro.vmm.domain import Domain

MSI_ADDRESS = 0xFEE00000

#: dom0-physical base of the PF's own RX pool.
PF_RX_POOL_BASE = 0x20_0000


class PfDriver:
    """One port's igb instance, running in dom0 (or the native host)."""

    def __init__(self, platform, dom0: Domain, port: Igb82576Port,
                 name: str = "", mac_realm: int = 0):
        self.platform = platform
        self.sim = platform.sim
        self.costs = platform.costs
        self.dom0 = dom0
        self.port = port
        self.name = name or f"igb.{port.name}"
        self.mac_allocator = MacAllocator(port.index, realm=mac_realm)
        self.napi = NapiContext()
        self.app = NetserverApp(platform.costs, name=f"{self.name}.pf-app")
        self.rx_vector: Optional[int] = None
        self.running = False
        #: Requests serviced per VF index (the §4.3 monitoring hook).
        self.vf_requests: Dict[int, List[str]] = {}
        #: Each VF's currently programmed multicast list.
        self._vf_multicast: Dict[int, List[MacAddress]] = {}
        self.vfs_shut_down: List[int] = []
        #: Per-VF sender-side retry protection for PF -> VF broadcasts.
        self._retriers: Dict[int, MailboxRetrier] = {}

    # ------------------------------------------------------------------
    # lifecycle and VF management
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Bring the PF up: claim its own MAC, rings, and interrupt.

        Configuration happens the way the real igb does it — MMIO
        register writes: receive enable in RCTL, the port MAC into
        receive-address entry 0 (pool 0 = the PF).
        """
        if self.running:
            return
        from repro.devices.igb_regs import RCTL_RXEN, ral_rah_for_mac
        self.port.pf.mac = self.mac_allocator.allocate()
        self.port.regs.write_by_name("RCTL", RCTL_RXEN)
        ral, rah = ral_rah_for_mac(self.port.pf.mac, pool=0)
        self.port.regs.write_by_name("RAL0", ral)
        self.port.regs.write_by_name("RAH0", rah)
        self._map_and_fill_pf_ring()
        self.rx_vector = self.platform.bind_guest_msi(
            self.dom0, self._pf_isr, source_rid=self.port.pf.pci.rid)
        self.port.pf.msix.configure(VECTOR_RXTX,
                                    MsiMessage(MSI_ADDRESS, self.rx_vector))
        self.port.pf.msix.unmask(VECTOR_RXTX)
        self.running = True

    def enable_sriov(self, vf_count: int) -> List[VirtualFunction]:
        """Program NumVFs + VF Enable; assign each VF a MAC and switch
        entry; wire up the PF end of every mailbox."""
        vfs = self.port.enable_vfs(vf_count)
        for vf in vfs:
            self.set_vf_mac(vf.index, self.mac_allocator.allocate())
            vf.mailbox.connect(
                Mailbox.PF,
                lambda message, vf=vf: self._service_vf_request(vf, message),
            )
            self._retriers[vf.index] = MailboxRetrier(self.sim, vf.mailbox,
                                                      Mailbox.PF)
        return vfs

    def set_vf_mac(self, index: int, mac: MacAddress) -> None:
        """Program a VF's MAC into receive-address entry ``index + 1``
        with the matching pool select (RAL/RAH writes, as igb does);
        the RAH hook steers the L2 switch."""
        from repro.devices.igb_regs import ral_rah_for_mac
        vf = self.port.vf(index)
        vf.mac = mac
        ral, rah = ral_rah_for_mac(mac, pool=index + 1)
        self.port.regs.write_by_name(f"RAL{index + 1}", ral)
        self.port.regs.write_by_name(f"RAH{index + 1}", rah)

    def set_vf_vlan(self, index: int, vlan: int) -> None:
        vf = self.port.vf(index)
        if vf.mac is None:
            raise RuntimeError(f"VF {index} has no MAC yet")
        self.port.switch.program(vf.mac, index, vlan=vlan)

    def shutdown_vf(self, index: int) -> None:
        """The §4.3 enforcement action against a misbehaving VF."""
        vf = self.port.vf(index)
        vf.reset()
        if vf.mac is not None:
            self.port.switch.unprogram(vf.mac)
        self.vfs_shut_down.append(index)

    def set_vf_rate_limit(self, index: int, bps: float) -> None:
        """§4.3: "the PF driver to monitor and enforce policies
        concerning VF device bandwidth usage" — program the device's
        per-pool transmit rate limiter.  0 removes the limit."""
        if bps < 0:
            raise ValueError("rate limit must be non-negative")
        self.port.vf(index).tx_rate_limit_bps = bps

    def set_vf_itr_floor(self, index: int, max_interrupt_hz: float) -> None:
        """§4.3 "interrupt throttling": bound how often this VF may
        interrupt, regardless of what its guest driver asks for."""
        if max_interrupt_hz <= 0:
            raise ValueError("interrupt ceiling must be positive")
        vf = self.port.vf(index)
        vf.itr_floor_interval = 1.0 / max_interrupt_hz
        # Apply to the currently programmed interval too.
        if vf.throttle.interval < vf.itr_floor_interval:
            vf.throttle.set_interval(vf.itr_floor_interval)

    # ------------------------------------------------------------------
    # mailbox protocol (§4.2)
    # ------------------------------------------------------------------
    def _service_vf_request(self, vf: VirtualFunction,
                            message: MailboxMessage) -> None:
        """Doorbell from a VF: inspect, apply, acknowledge.

        This is also the §4.3 inspection point: "the PF driver inspects
        configuration requests from VF drivers" — requests are logged
        per VF before being applied.
        """
        self.vf_requests.setdefault(vf.index, []).append(message.kind)
        self.platform.trace.emit("mbx", "pf_service", port=self.port.index,
                                 vf=vf.index, kind=message.kind)
        if message.kind == "set_vlan":
            self.set_vf_vlan(vf.index, int(message.body))
        elif message.kind == "set_multicast":
            self._apply_vf_multicast(vf.index, list(message.body or []))
        vf.mailbox.acknowledge(Mailbox.PF)

    def _apply_vf_multicast(self, index: int, groups: List[MacAddress]) -> None:
        """Replace a VF's multicast subscription list in the switch."""
        for old in self._vf_multicast.get(index, []):
            self.port.switch.unsubscribe_multicast(index, old)
        for mac in groups:
            self.port.switch.subscribe_multicast(index, mac)
        self._vf_multicast[index] = list(groups)

    def broadcast_event(self, kind: str, body=None) -> None:
        """Forward a physical event to every VF driver: "impending
        global device reset, link status change, and impending driver
        removal" (§4.2)."""
        self.platform.trace.emit("mbx", "pf_broadcast", port=self.port.index,
                                 kind=kind)
        for vf in self.port.vfs:
            if vf.enabled:
                retrier = self._retriers.get(vf.index)
                if retrier is not None:
                    retrier.send(MailboxMessage(kind, body=body))
                else:
                    vf.mailbox.send(Mailbox.PF, MailboxMessage(kind, body=body))

    @property
    def mailbox_retries(self) -> int:
        return sum(r.retries for r in self._retriers.values())

    @property
    def mailbox_abandoned(self) -> int:
        return sum(r.abandoned for r in self._retriers.values())

    # ------------------------------------------------------------------
    # physical events (§4.2)
    # ------------------------------------------------------------------
    def global_reset(self, duration: float = 0.01) -> None:
        """Reset the whole device: notify VFs first, then reset the PF's
        own data path; everything re-initializes after ``duration``."""
        self.broadcast_event("reset", body={"duration": duration})
        self.port.pf.rx_ring.reset()
        self.port.pf.enabled = False

        def pf_reinit() -> None:
            self.port.pf.enabled = True
            self._refill_pf_ring()

        self.sim.schedule(duration, pf_reinit)

    def notify_link_change(self, up: bool) -> None:
        """Physical line went up/down: propagate to every VF driver."""
        self.port.link_up = up
        self.broadcast_event("link_change", body={"up": up})

    def announce_removal(self) -> None:
        """The PF driver is being unloaded: VF drivers must quiesce."""
        self.broadcast_event("driver_removal")
        self.running = False

    # ------------------------------------------------------------------
    # the PF's own data path (dom0 traffic, e.g. Fig. 10's sender)
    # ------------------------------------------------------------------
    def transmit(self, burst: List[Packet]) -> int:
        if not self.running:
            return 0
        self.dom0.charge_guest(self.costs.guest_cycles_per_packet * len(burst))
        return self.port.pf.hw_transmit(burst)

    def _pf_isr(self, vector: int) -> None:
        self.dom0.charge_guest(self.costs.guest_cycles_per_interrupt)
        descriptors = self.napi.poll_all(self.port.pf.rx_ring)
        packets = [d.packet for d in descriptors if d.packet is not None]
        self._refill_pf_ring()
        if packets:
            self.app.deliver(packets, self.sim.now)
            self.dom0.charge_guest(
                self.costs.guest_cycles_per_packet * len(packets))

    def _map_and_fill_pf_ring(self) -> None:
        if self.platform.iommu is not None:
            self.dom0.io_page_table.map(
                PF_RX_POOL_BASE, 0x8000_0000,
                size=self.port.pf.rx_ring.size * 4096)
            self.platform.iommu.attach(self.port.pf.pci.rid,
                                       self.dom0.io_page_table)
        self._refill_pf_ring()

    def _refill_pf_ring(self) -> None:
        ring = self.port.pf.rx_ring
        while not ring.full:
            ring.post(PF_RX_POOL_BASE + ring.tail * 4096, RX_BUFFER_BYTES)
