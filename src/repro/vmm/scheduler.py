"""VCPU placement, per the paper's §6.1 pinning discipline.

"Domain 0 employs 8 VCPUs and binds each of them to a thread in a
different core, and the guest runs with only one VCPU, which is bounded
evenly to the remaining threads."  Deterministic pinning is also what
makes the cycle accounting attributable: a guest's work always lands on
its home thread.
"""

from __future__ import annotations

from typing import List


class PinningPolicy:
    """Assigns dom0 and guest VCPUs to hardware threads."""

    def __init__(self, core_count: int, dom0_vcpus: int):
        if dom0_vcpus >= core_count:
            raise ValueError("need at least one thread left for guests")
        self.core_count = core_count
        self.dom0_vcpus = dom0_vcpus
        self._next_guest_slot = 0

    def dom0_cores(self) -> List[int]:
        """dom0's VCPUs: one per thread, threads 0..N-1."""
        return list(range(self.dom0_vcpus))

    @property
    def guest_cores(self) -> List[int]:
        """The threads guests share."""
        return list(range(self.dom0_vcpus, self.core_count))

    def place_guest(self) -> int:
        """Pin the next guest's single VCPU, round-robin over the
        remaining threads ("bounded evenly")."""
        cores = self.guest_cores
        core = cores[self._next_guest_slot % len(cores)]
        self._next_guest_slot += 1
        return core

    def guests_per_core(self, guest_count: int) -> float:
        """Average oversubscription of the guest threads."""
        return guest_count / len(self.guest_cores)
