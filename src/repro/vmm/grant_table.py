"""Grant tables: the PV split driver's memory-sharing primitive.

Xen's split drivers (paper [8]) move packets between domains through
grants: the frontend grants the backend access to (or a copy of) a page,
identified by a grant reference.  The copy variant — ``grant_copy`` — is
the per-packet work that saturates netback and gives the PV NIC its
"extra data copy" overhead (§1, §6.5).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict


class GrantError(RuntimeError):
    """Bad grant operations: unknown ref, revoking an in-use grant..."""


class GrantKind(Enum):
    ACCESS = "access"   # map the granter's page
    TRANSFER = "transfer"


@dataclass
class Grant:
    ref: int
    granter_domain: int
    grantee_domain: int
    frame: int
    kind: GrantKind
    readonly: bool
    in_use: bool = False


class GrantTable:
    """One domain's grant table."""

    def __init__(self, domain_id: int):
        self.domain_id = domain_id
        self._grants: Dict[int, Grant] = {}
        self._next_ref = 1
        self.copies = 0
        self.copied_bytes = 0

    def grant_access(self, grantee_domain: int, frame: int,
                     readonly: bool = False) -> int:
        """Grant ``grantee_domain`` access to ``frame``; returns the ref."""
        ref = self._next_ref
        self._next_ref += 1
        self._grants[ref] = Grant(ref, self.domain_id, grantee_domain,
                                  frame, GrantKind.ACCESS, readonly)
        return ref

    def end_access(self, ref: int) -> None:
        """Revoke a grant.  Refuses while the grantee has it mapped."""
        grant = self._lookup(ref)
        if grant.in_use:
            raise GrantError(f"grant {ref} still mapped by domain "
                             f"{grant.grantee_domain}")
        del self._grants[ref]

    def map_grant(self, ref: int, grantee_domain: int) -> Grant:
        """Grantee maps the granted frame."""
        grant = self._lookup(ref)
        if grant.grantee_domain != grantee_domain:
            raise GrantError(f"domain {grantee_domain} is not the grantee of {ref}")
        grant.in_use = True
        return grant

    def unmap_grant(self, ref: int) -> None:
        grant = self._lookup(ref)
        grant.in_use = False

    def grant_copy(self, ref: int, grantee_domain: int, size_bytes: int,
                   write: bool = True) -> None:
        """Hypervisor-mediated copy into/out of the granted frame.

        This is netback's per-packet operation; callers charge its CPU
        cost separately via the cost model.
        """
        grant = self._lookup(ref)
        if grant.grantee_domain != grantee_domain:
            raise GrantError(f"domain {grantee_domain} is not the grantee of {ref}")
        if write and grant.readonly:
            raise GrantError(f"grant {ref} is read-only")
        if size_bytes < 0:
            raise ValueError("copy size must be non-negative")
        self.copies += 1
        self.copied_bytes += size_bytes

    def active_grants(self) -> int:
        return len(self._grants)

    def _lookup(self, ref: int) -> Grant:
        grant = self._grants.get(ref)
        if grant is None:
            raise GrantError(f"unknown grant reference {ref}")
        return grant
