"""The SR-IOV Manager (IOVM).

Paper §4.1: "IOVM presents a virtual full configuration space for each
VF, so that a guest OS can enumerate and configure the VF as an ordinary
PCIe device."  The real VF answers neither bus scans nor full config
reads, so the IOVM:

1. surfaces enabled VFs to the host via the Linux PCI **hot-add** path
   ("our architecture uses Linux PCI hot add APIs to dynamically add
   VFs to the host OS");
2. synthesizes a complete virtual config space per VF from the VF's
   trimmed space plus PF-derived fields;
3. assigns a VF to a guest: installs the guest's I/O page table in the
   IOMMU under the VF's requester ID and routes the VF's MSI-X vectors
   into the guest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.devices.igb82576 import Igb82576Port, VirtualFunction
from repro.hw.iommu import Iommu
from repro.hw.pcie.config_space import (
    CAP_ID_MSIX,
    ConfigSpace,
    OFF_CLASS_CODE,
    OFF_REVISION,
)
from repro.vmm.domain import Domain


class IovmError(RuntimeError):
    """Assignment conflicts and lifecycle violations."""


@dataclass
class VfAssignment:
    """The binding between one VF and the guest that owns it."""

    vf: VirtualFunction
    domain: Domain
    virtual_config: ConfigSpace

    @property
    def rid(self) -> int:
        assert self.vf.pci.rid is not None
        return self.vf.pci.rid


class Iovm:
    """The SR-IOV manager running in the service OS."""

    def __init__(self, platform) -> None:
        """``platform`` is a :class:`~repro.vmm.hypervisor.Xen` or
        :class:`~repro.vmm.hypervisor.NativeHost` (both expose a root
        complex and an IOMMU)."""
        self.platform = platform
        self.root_complex = platform.root_complex
        self.iommu: Iommu = platform.iommu
        self._assignments: Dict[int, VfAssignment] = {}

    # ------------------------------------------------------------------
    # VF discovery
    # ------------------------------------------------------------------
    def surface_vfs(self, port: Igb82576Port) -> List[VirtualFunction]:
        """Hot-add every enabled VF of a port into the host's PCI tree.

        A plain bus rescan would miss them (they don't answer probes);
        this is the Linux hot-add API path of §4.1.
        """
        surfaced = []
        for vf in port.vfs:
            rid = vf.pci.rid
            assert rid is not None
            if self.root_complex.function_at(rid) is None:
                # hot_add wants an unbound function; the RID was
                # precomputed by the SR-IOV capability arithmetic.
                vf.pci.rid = None
                self.root_complex.hot_add(vf.pci, rid)
            surfaced.append(vf)
        return surfaced

    # ------------------------------------------------------------------
    # virtual config space
    # ------------------------------------------------------------------
    def synthesize_config_space(self, vf: VirtualFunction) -> ConfigSpace:
        """Build the full virtual config space the guest will see.

        Identity fields come from the VF; structural fields the VF does
        not implement (revision, class code, capability layout) are
        cloned from the PF template, exactly what lets the guest treat
        the VF "as an ordinary PCIe function".
        """
        pf_config = vf.port.pf.pci.config
        virtual = ConfigSpace(
            vendor_id=vf.pci.config.vendor_id,
            device_id=vf.pci.config.device_id,
        )
        virtual.write8(OFF_REVISION, pf_config.read8(OFF_REVISION))
        virtual.write8(OFF_CLASS_CODE, pf_config.read8(OFF_CLASS_CODE))
        virtual.add_capability(CAP_ID_MSIX, 12)
        return virtual

    # ------------------------------------------------------------------
    # assignment
    # ------------------------------------------------------------------
    def assign(self, vf: VirtualFunction, domain: Domain) -> VfAssignment:
        """Give ``domain`` direct access to ``vf``.

        Installs the guest's I/O page table at the VF's RID (the Direct
        I/O inheritance of §2) and records the assignment.  The guest's
        driver still has to bind the MSI-X vectors itself, as a real
        driver would.
        """
        rid = vf.pci.rid
        if rid is None:
            raise IovmError("VF has no RID; surface it first")
        if rid in self._assignments:
            raise IovmError(f"VF {vf.name} already assigned")
        if any(a.vf is vf for a in self._assignments.values()):
            raise IovmError(f"VF {vf.name} already assigned")
        self.iommu.attach(rid, domain.io_page_table)
        assignment = VfAssignment(vf, domain, self.synthesize_config_space(vf))
        self._assignments[rid] = assignment
        return assignment

    def revoke(self, assignment: VfAssignment) -> None:
        """Tear an assignment down (hot removal, migration)."""
        rid = assignment.rid
        if rid not in self._assignments:
            raise IovmError("assignment not active")
        self.iommu.detach(rid)
        del self._assignments[rid]

    def assignment_for(self, domain: Domain) -> Optional[VfAssignment]:
        for assignment in self._assignments.values():
            if assignment.domain is domain:
                return assignment
        return None

    @property
    def active_assignments(self) -> int:
        return len(self._assignments)
