"""A KVM-flavoured platform, demonstrating the architecture's VMM
independence.

Paper §4: "As the implementation of the architecture components is
agnostic of underlying VMM, the implementation is ported from Xen to
KVM, without code modification to the PF and VF drivers."  The same
holds here by construction: :class:`Kvm` presents the identical
platform surface (``bind_guest_msi`` / ``deliver_msi`` / ``vlapic`` /
``device_model`` / measurement), so every driver class in
:mod:`repro.drivers` runs on it unmodified —
``tests/integration/test_vmm_portability.py`` proves it.

Differences from the Xen model, mirroring the real systems:

* there is no privileged *domain 0*; the service OS is the **host
  kernel** itself, and the per-guest device model is a qemu process in
  host userspace.  Host-side work lands in the same ``dom0``
  accounting bucket (it is the service-OS cost either way, which is
  what the paper's comparison cares about);
* there are no paravirtualized (PVM) guests — KVM guests are all
  hardware VMs;
* guest VCPUs are ordinary host threads: the scheduler spreads them
  over *all* cores rather than reserving a pinned dom0 set.
"""

from __future__ import annotations

from typing import Optional

from repro.core.costs import CostModel
from repro.core.optimizations import OptimizationConfig
from repro.sim.engine import Simulator
from repro.vmm.domain import DomainKind, GuestKernel, Domain
from repro.vmm.hypervisor import Xen


class Kvm(Xen):
    """The Kernel-based Virtual Machine flavour of the platform.

    Reuses the hypervisor machinery (vector table, exit accounting,
    virtual LAPIC, device-model costs) — the point is the *driver-facing
    surface* is identical, so the PF/VF drivers cannot tell.
    """

    def __init__(self, sim: Simulator, costs: Optional[CostModel] = None,
                 opts: Optional[OptimizationConfig] = None):
        super().__init__(sim, costs, opts)
        # Rename the service context: the "dom0" domain stands in for
        # the host kernel + qemu processes.
        self.dom0.name = "host"

    @property
    def host(self) -> Domain:
        """The host kernel context (KVM's analogue of domain 0)."""
        return self.dom0

    def create_guest(self, name: str, kind: DomainKind = DomainKind.HVM,
                     kernel: GuestKernel = GuestKernel.LINUX_2_6_28) -> Domain:
        """KVM guests are hardware VMs; there is no PVM flavour."""
        if kind is DomainKind.PVM:
            raise ValueError("KVM has no paravirtualized guest mode")
        return super().create_guest(name, kind, kernel)
