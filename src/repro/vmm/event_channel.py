"""Xen event channels.

The paravirtualized interrupt mechanism (paper [1]): a PVM guest binds a
port to a handler; notifying the port sets a pending bit and upcalls the
guest.  Delivering through an event channel costs far fewer cycles than
emulating a virtual LAPIC interrupt — the reason PVM scalability costs
1.76%/VM where HVM costs 2.8% (§6.4).

PV split drivers (netfront/netback) also signal each other over event
channels, in both PVM and HVM guests; in an HVM guest the upcall itself
is built on top of a LAPIC vector ("an additional layer of interrupt
conversion", §6.5).
"""

from __future__ import annotations

from typing import Callable, Dict


class EventChannelError(RuntimeError):
    """Bad port operations: double bind, notify on a closed port..."""


class EventChannels:
    """The per-hypervisor event-channel table."""

    def __init__(self) -> None:
        self._handlers: Dict[int, Callable[[int], None]] = {}
        self._pending: Dict[int, bool] = {}
        self._masked: Dict[int, bool] = {}
        self._next_port = 1
        self.notifications = 0

    def bind(self, handler: Callable[[int], None]) -> int:
        """Allocate a port bound to ``handler(port)``; returns the port."""
        port = self._next_port
        self._next_port += 1
        self._handlers[port] = handler
        self._pending[port] = False
        self._masked[port] = False
        return port

    def close(self, port: int) -> None:
        if port not in self._handlers:
            raise EventChannelError(f"closing unbound port {port}")
        del self._handlers[port]
        del self._pending[port]
        del self._masked[port]

    def notify(self, port: int) -> bool:
        """Signal the port.  Returns True when the upcall ran now.

        Pending bits collapse multiple notifications, and a masked port
        latches the event for delivery at unmask — same semantics as the
        MSI-X pending bit array, which is what makes both ends of the
        paper's DNIS bond driver behave identically across NIC types.
        """
        if port not in self._handlers:
            raise EventChannelError(f"notify on unbound port {port}")
        self.notifications += 1
        if self._masked[port]:
            self._pending[port] = True
            return False
        if self._pending[port]:
            return False  # already signalled, upcall still queued
        self._handlers[port](port)
        return True

    def mask(self, port: int) -> None:
        self._require(port)
        self._masked[port] = True

    def unmask(self, port: int) -> None:
        self._require(port)
        self._masked[port] = False
        if self._pending[port]:
            self._pending[port] = False
            self._handlers[port](port)

    def clear_pending(self, port: int) -> None:
        self._require(port)
        self._pending[port] = False

    def is_pending(self, port: int) -> bool:
        self._require(port)
        return self._pending[port]

    @property
    def bound_ports(self) -> int:
        return len(self._handlers)

    def _require(self, port: int) -> None:
        if port not in self._handlers:
            raise EventChannelError(f"operation on unbound port {port}")
