"""Domains and VCPUs.

Xen's unit of isolation: domain 0 is the privileged service OS (PF
driver, device models, netback); guests are either hardware virtual
machines (HVM — full virtualization, virtual LAPIC) or paravirtualized
machines (PVM — event channels, no APIC exits).  The guest kernel
version matters to the paper: Linux 2.6.18 masks/unmasks the MSI vector
around every interrupt (the §5.1 hot spot), 2.6.28 does not and enables
tickless idle (§6).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import List, Optional

from repro.hw.cpu import Machine
from repro.hw.iommu import IoPageTable
from repro.hw.lapic import Lapic


class DomainKind(Enum):
    DOM0 = "dom0"
    HVM = "hvm"
    PVM = "pvm"
    #: A bare-metal driver context (the paper's native baseline).
    NATIVE = "native"


class GuestKernel(Enum):
    """The two guest kernels the evaluation uses (§5.1, §6)."""

    LINUX_2_6_18 = "2.6.18"  # RHEL5U1: masks MSI per interrupt
    LINUX_2_6_28 = "2.6.28"  # tickless; no runtime MSI mask/unmask

    @property
    def masks_msi_per_interrupt(self) -> bool:
        return self is GuestKernel.LINUX_2_6_18


@dataclass
class Vcpu:
    """A virtual CPU pinned to one hardware thread (§6.1 pinning)."""

    index: int
    core_index: int


class Domain:
    """One VM (or dom0): VCPUs, an I/O address space, accounting."""

    def __init__(
        self,
        domain_id: int,
        name: str,
        kind: DomainKind,
        machine: Machine,
        core_indexes: List[int],
        kernel: GuestKernel = GuestKernel.LINUX_2_6_28,
    ):
        if not core_indexes:
            raise ValueError("domain needs at least one VCPU pinning")
        self.id = domain_id
        self.name = name
        self.kind = kind
        self.kernel = kernel
        self.machine = machine
        self.vcpus = [Vcpu(i, core) for i, core in enumerate(core_indexes)]
        #: The I/O page table the IOMMU walks for this domain's devices.
        self.io_page_table = IoPageTable(domain_id)
        #: HVM guests get a virtual LAPIC per VCPU (we model VCPU 0's).
        self.lapic: Optional[Lapic] = Lapic(domain_id) if kind is DomainKind.HVM else None
        self.running = True
        #: Per-domain cycle counter (the machine's accounts aggregate
        #: all guests into one label; this keeps the per-domain split
        #: for xentop-style reporting).
        self.cycles_consumed = 0.0

    # ------------------------------------------------------------------
    @property
    def is_hvm(self) -> bool:
        return self.kind is DomainKind.HVM

    @property
    def is_pvm(self) -> bool:
        return self.kind is DomainKind.PVM

    @property
    def is_dom0(self) -> bool:
        return self.kind is DomainKind.DOM0

    @property
    def account_label(self) -> str:
        """The xentop-style account this domain's cycles land in."""
        if self.is_dom0:
            return "dom0"
        if self.kind is DomainKind.NATIVE:
            return "native"
        return "guest"

    def home_core(self, vcpu: int = 0) -> int:
        return self.vcpus[vcpu].core_index

    # ------------------------------------------------------------------
    # cycle accounting helpers
    # ------------------------------------------------------------------
    def charge_guest(self, cycles: float, vcpu: int = 0) -> None:
        """Work executed inside this domain."""
        core = self.machine.core(self.home_core(vcpu))
        core.charge(self.account_label, cycles)
        self.cycles_consumed += cycles

    def reset_accounting(self) -> None:
        self.cycles_consumed = 0.0

    def charge_hypervisor(self, cycles: float, vcpu: int = 0) -> None:
        """Hypervisor work done on this domain's behalf (VM exits)."""
        core = self.machine.core(self.home_core(vcpu))
        core.charge("xen", cycles)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Domain {self.id} {self.name!r} {self.kind.value}>"
