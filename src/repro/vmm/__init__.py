"""The virtual machine monitor layer.

Models the Xen 3.4 host of the paper's testbed — and the pieces of it
the SR-IOV architecture adds or optimizes:

* :mod:`repro.vmm.hypervisor` — :class:`Xen` (domains, interrupt
  routing, exit accounting) and :class:`NativeHost` (the bare-metal
  baseline).
* :mod:`repro.vmm.domain` — domains, VCPUs, guest kernels.
* :mod:`repro.vmm.vmexit` — the VM-exit tracer behind Fig. 7.
* :mod:`repro.vmm.virtual_lapic` — virtual LAPIC emulation with the
  §5.2 EOI acceleration.
* :mod:`repro.vmm.device_model` — the dom0 user-level device model with
  the §5.1 MSI mask/unmask acceleration.
* :mod:`repro.vmm.event_channel` — the PVM interrupt mechanism.
* :mod:`repro.vmm.iovm` — the SR-IOV manager: virtual config spaces,
  VF hot-add, guest assignment.
* :mod:`repro.vmm.hotplug` — the virtual ACPI controller DNIS rides on.
* :mod:`repro.vmm.grant_table` — the PV split driver's sharing primitive.
* :mod:`repro.vmm.scheduler` — §6.1's VCPU pinning policy.
* :mod:`repro.vmm.interrupts` — global vector allocation.
"""

from repro.vmm.domain import Domain, DomainKind, GuestKernel, Vcpu
from repro.vmm.event_channel import EventChannelError, EventChannels
from repro.vmm.grant_table import GrantError, GrantTable
from repro.vmm.hotplug import HotplugController
from repro.vmm.hypervisor import NativeHost, Xen
from repro.vmm.kvm import Kvm
from repro.vmm.interrupts import VectorAllocator, VectorExhausted
from repro.vmm.iovm import Iovm, IovmError, VfAssignment
from repro.vmm.scheduler import PinningPolicy
from repro.vmm.virtual_lapic import VirtualLapic
from repro.vmm.vmexit import VmExitKind, VmExitTracer

__all__ = [
    "Domain",
    "DomainKind",
    "EventChannelError",
    "EventChannels",
    "GrantError",
    "GrantTable",
    "GuestKernel",
    "HotplugController",
    "Iovm",
    "IovmError",
    "Kvm",
    "NativeHost",
    "PinningPolicy",
    "Vcpu",
    "VectorAllocator",
    "VectorExhausted",
    "VfAssignment",
    "VirtualLapic",
    "VmExitKind",
    "VmExitTracer",
    "Xen",
]
