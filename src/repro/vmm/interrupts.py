"""Global vector allocation.

"Xen captures the interrupt and recognizes the guest which owns the
interrupt by vector, which is globally allocated to avoid interrupt
sharing" (paper §4.1, citing [6]).  The allocator hands out unique
physical vectors and remembers which domain and handler own each one, so
the hypervisor's external-interrupt path is a single table lookup.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.hw.lapic import VECTOR_COUNT


class VectorExhausted(RuntimeError):
    """No free global vectors remain."""


class VectorAllocator:
    """Hands out globally unique interrupt vectors."""

    #: Vectors below 0x40 are kept for the hypervisor's own use.
    FIRST_DYNAMIC = 0x40

    def __init__(self) -> None:
        self._owners: Dict[int, Tuple[int, Callable[[int], None]]] = {}
        self._next = self.FIRST_DYNAMIC

    def allocate(self, domain_id: int, handler: Callable[[int], None]) -> int:
        """Allocate a vector owned by ``domain_id``; returns the vector.

        ``handler(vector)`` is what the hypervisor invokes when the
        physical interrupt arrives.
        """
        vector = self._next
        while vector < VECTOR_COUNT and vector in self._owners:
            vector += 1
        if vector >= VECTOR_COUNT:
            raise VectorExhausted("global vector space exhausted")
        self._owners[vector] = (domain_id, handler)
        self._next = vector + 1
        return vector

    def free(self, vector: int) -> None:
        self._owners.pop(vector, None)
        if vector < self._next:
            self._next = max(self.FIRST_DYNAMIC, min(self._next, vector))

    def owner(self, vector: int) -> Optional[int]:
        entry = self._owners.get(vector)
        return entry[0] if entry else None

    def handler(self, vector: int) -> Optional[Callable[[int], None]]:
        entry = self._owners.get(vector)
        return entry[1] if entry else None

    @property
    def allocated_count(self) -> int:
        return len(self._owners)
