"""VM-exit taxonomy and tracing.

Fig. 7 of the paper is produced by "tracing all VM-exit events in Xen,
to measure the CPU cycles spent, from the beginning of the VM-exit to
the end".  :class:`VmExitTracer` is that instrumentation: every exit the
hypervisor services is recorded with its kind and cycle cost, and the
benchmark reads back per-kind cycles/second.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict


class VmExitKind(Enum):
    """The exit reasons that matter to the paper's analysis."""

    EXTERNAL_INTERRUPT = "external-interrupt"
    APIC_ACCESS_EOI = "apic-access-eoi"
    APIC_ACCESS_OTHER = "apic-access-other"
    MSIX_MASK = "msix-mask"
    MSIX_UNMASK = "msix-unmask"
    IO_INSTRUCTION = "io-instruction"
    HYPERCALL = "hypercall"
    OTHER = "other"


@dataclass
class ExitRecord:
    """Aggregate for one exit kind."""

    count: int = 0
    cycles: float = 0.0


class VmExitTracer:
    """Per-kind exit counts and cycle totals (the Fig. 7 instrument)."""

    def __init__(self) -> None:
        self._records: Dict[VmExitKind, ExitRecord] = {
            kind: ExitRecord() for kind in VmExitKind
        }
        self._epoch: float = 0.0

    def record(self, kind: VmExitKind, cycles: float) -> None:
        if cycles < 0:
            raise ValueError("exit cost cannot be negative")
        record = self._records[kind]
        record.count += 1
        record.cycles += cycles

    def count(self, kind: VmExitKind) -> int:
        return self._records[kind].count

    def cycles(self, kind: VmExitKind) -> float:
        return self._records[kind].cycles

    @property
    def total_cycles(self) -> float:
        return sum(r.cycles for r in self._records.values())

    @property
    def total_count(self) -> int:
        return sum(r.count for r in self._records.values())

    def apic_access_cycles(self) -> float:
        """Combined APIC-access cost — the paper's headline hot spot."""
        return (self.cycles(VmExitKind.APIC_ACCESS_EOI)
                + self.cycles(VmExitKind.APIC_ACCESS_OTHER))

    def eoi_share_of_apic_accesses(self) -> float:
        """Fraction of APIC-access *exits* that are EOI writes (§5.2
        reports 47%)."""
        eoi = self.count(VmExitKind.APIC_ACCESS_EOI)
        other = self.count(VmExitKind.APIC_ACCESS_OTHER)
        total = eoi + other
        return eoi / total if total else 0.0

    def cycles_per_second(self, elapsed: float) -> Dict[VmExitKind, float]:
        """Per-kind cycles/second over a measurement window."""
        if elapsed <= 0:
            return {kind: 0.0 for kind in VmExitKind}
        return {kind: record.cycles / elapsed
                for kind, record in self._records.items()}

    def reset(self) -> None:
        for record in self._records.values():
            record.count = 0
            record.cycles = 0.0
