"""The virtual LAPIC device model.

For an HVM guest, every touch of the APIC page is an APIC-access VM exit
the hypervisor must emulate (paper §5.2).  This wrapper owns the guest's
:class:`~repro.hw.lapic.Lapic` state machine and charges the calibrated
cost of each exit:

* **EOI writes** — the §5.2 hot spot.  Unoptimized, Xen fetches, decodes
  and emulates the guest instruction (8.4 K cycles).  With acceleration
  it reads the Exit-qualification field and jumps straight to the EOI
  handler (2.5 K), optionally paying 1.8 K more to re-check the
  instruction for complex encodings.
* **Other APIC accesses** — window reads, TPR and injection bookkeeping,
  modelled as a calibrated count per delivered interrupt so EOI writes
  come out at the paper's 47% of APIC-access exits.
"""

from __future__ import annotations

from typing import Optional

from repro.core.costs import CostModel
from repro.core.optimizations import OptimizationConfig
from repro.obs.ledger import NULL_LEDGER
from repro.sim.trace import NULL_TRACER
from repro.vmm.domain import Domain
from repro.vmm.vmexit import VmExitKind, VmExitTracer

#: Ledger categories, precomputed: these strings are rebuilt per
#: interrupt otherwise, and interrupts are the critical path.
_CAT_APIC_OTHER = "exit." + VmExitKind.APIC_ACCESS_OTHER.value
_CAT_APIC_EOI = "exit." + VmExitKind.APIC_ACCESS_EOI.value


class VirtualLapic:
    """Emulates one HVM guest's local APIC."""

    def __init__(self, domain: Domain, costs: CostModel,
                 opts: OptimizationConfig, tracer: VmExitTracer,
                 host=None):
        if domain.lapic is None:
            raise ValueError(f"domain {domain.name} has no LAPIC (not HVM?)")
        self.domain = domain
        self.costs = costs
        self.opts = opts
        self.tracer = tracer
        #: The owning hypervisor; when set, its live ``trace``/``ledger``
        #: are used so telemetry installed after guest creation works.
        self.host = host
        self._carry: float = 0.0  # fractional other-APIC accesses

    @property
    def trace(self):
        return self.host.trace if self.host is not None else NULL_TRACER

    @property
    def ledger(self):
        return self.host.ledger if self.host is not None else NULL_LEDGER

    # ------------------------------------------------------------------
    # hypervisor side: injection
    # ------------------------------------------------------------------
    def inject(self, vector: int) -> None:
        """Queue and deliver a virtual interrupt to the guest.

        Charges the non-EOI APIC-access exits that surround delivery
        (interrupt-window handling, IRR/ISR updates seen from the
        guest's accesses).
        """
        lapic = self.domain.lapic
        assert lapic is not None
        lapic.fire(vector)
        if lapic.interrupt_window_open:
            lapic.ack()
        # Charge the calibrated count of non-EOI APIC accesses.  The
        # count is fractional (1.13 per interrupt); carry the remainder.
        self._carry += self.costs.other_apic_accesses_per_interrupt
        accesses = int(self._carry)
        self._carry -= accesses
        if accesses:
            self.trace.emit("apic", "inject", vector=vector,
                            domain=self.domain.id, accesses=accesses)
        ledger = self.ledger
        for _ in range(accesses):
            cost = self.costs.other_apic_access_cycles
            self.tracer.record(VmExitKind.APIC_ACCESS_OTHER, cost)
            ledger.charge(self.domain.name, _CAT_APIC_OTHER, cost)
            self.domain.charge_hypervisor(cost)

    # ------------------------------------------------------------------
    # guest side: the EOI write at the end of the handler
    # ------------------------------------------------------------------
    def eoi_write(self) -> Optional[int]:
        """The guest writes the EOI register; returns the retired vector.

        This is an APIC-access exit whose cost depends on the §5.2
        optimization switches.
        """
        if self.opts.eoi_acceleration:
            cost = self.costs.eoi_accelerated_cycles
            if self.opts.eoi_instruction_check:
                cost += self.costs.eoi_instruction_check_cycles
        else:
            cost = self.costs.eoi_emulate_cycles
        self.tracer.record(VmExitKind.APIC_ACCESS_EOI, cost)
        self.ledger.charge(self.domain.name, _CAT_APIC_EOI, cost)
        self.trace.emit("apic", "eoi", domain=self.domain.id,
                        accelerated=self.opts.eoi_acceleration)
        self.domain.charge_hypervisor(cost)
        lapic = self.domain.lapic
        assert lapic is not None
        retired = lapic.eoi()
        # A higher-priority vector pending behind the retired one is
        # dispatched now.
        if lapic.interrupt_window_open:
            lapic.ack()
        return retired
