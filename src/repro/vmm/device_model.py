"""The user-level device model (qemu-dm) in domain 0.

Each HVM guest is backed by a device-model process that emulates its
virtual platform.  Two of its duties matter to the paper:

* **MSI-X mask/unmask emulation** (§5.1).  A Linux 2.6.18 guest masks
  the vector at the top of every MSI handler and unmasks it at the
  bottom.  Unoptimized, each of those MMIO writes VM-exits to Xen, is
  forwarded to the device model (a domain context switch plus a task
  switch inside dom0), emulated in user space, and returned.  With the
  §5.1 acceleration the hypervisor emulates the write itself and dom0
  never wakes up.
* **Housekeeping** — the device-model processes consume a small, fixed
  amount of dom0 CPU regardless of traffic (the ~3% dom0 floor in the
  optimized Fig. 6 curves).
"""

from __future__ import annotations


from repro.core.costs import CostModel
from repro.core.optimizations import OptimizationConfig
from repro.obs.ledger import NULL_LEDGER
from repro.sim.trace import NULL_TRACER
from repro.vmm.domain import Domain
from repro.vmm.vmexit import VmExitKind, VmExitTracer


class DeviceModel:
    """The qemu-dm instance backing one HVM guest."""

    def __init__(self, guest: Domain, dom0: Domain, costs: CostModel,
                 opts: OptimizationConfig, tracer: VmExitTracer,
                 host=None):
        self.guest = guest
        self.dom0 = dom0
        self.costs = costs
        self.opts = opts
        self.tracer = tracer
        #: The owning hypervisor; when set, its live ``trace``/``ledger``
        #: are used so telemetry installed after guest creation works.
        self.host = host
        #: How many HVM guests share dom0 (set by the hypervisor; the
        #: per-trap cost inflates with contention, Fig. 6's 17%->30%).
        self.contending_vms = 1
        self.msi_mask_traps = 0

    @property
    def trace(self):
        return self.host.trace if self.host is not None else NULL_TRACER

    @property
    def ledger(self):
        return self.host.ledger if self.host is not None else NULL_LEDGER

    def emulate_msix_mask_write(self, is_mask: bool) -> None:
        """The guest wrote an MSI-X mask or unmask register.

        Charges the full round trip — or only the hypervisor fast path
        when §5.1's acceleration is on.
        """
        kind = VmExitKind.MSIX_MASK if is_mask else VmExitKind.MSIX_UNMASK
        self.msi_mask_traps += 1
        ledger = self.ledger
        self.trace.emit("dm", "msix_mask" if is_mask else "msix_unmask",
                        domain=self.guest.id,
                        accelerated=self.opts.msi_acceleration)
        if self.opts.msi_acceleration:
            cost = self.costs.xen_msi_accelerated_cycles
            self.tracer.record(kind, cost)
            ledger.charge(self.guest.name, "exit." + kind.value, cost)
            self.guest.charge_hypervisor(cost)
            return
        # Unoptimized: Xen forwards to the device model in dom0.
        xen_cost = self.costs.xen_msi_forward_cycles
        self.tracer.record(kind, xen_cost)
        ledger.charge(self.guest.name, "exit." + kind.value, xen_cost)
        self.guest.charge_hypervisor(xen_cost)
        # dom0 side: wake qemu, emulate, reply.  The per-trap cost
        # inflates as more device models contend for dom0's VCPUs.
        inflation = 1.0 + self.costs.dm_msi_contention_per_vm * (self.contending_vms - 1)
        dom0_cost = self.costs.dm_msi_roundtrip_cycles * inflation
        ledger.charge(self.dom0.name, "dm.msix-roundtrip", dom0_cost)
        self._charge_dom0(dom0_cost)
        # Guest-side stall: TLB/cache pollution from the double context
        # switch (the 16% guest share of Fig. 12's MSI savings).
        ledger.charge(self.guest.name, "guest.msi-stall",
                      self.costs.guest_msi_stall_cycles)
        self.guest.charge_guest(self.costs.guest_msi_stall_cycles)

    def housekeeping_cycles(self, elapsed: float) -> float:
        """Fixed-rate dom0 cost of keeping this device model alive.

        The total device-model housekeeping budget
        (``dm_housekeeping_percent`` of one core) is split across all
        contending device models, so the dom0 floor stays ~flat as VM#
        grows (Fig. 6's ~3% in all optimized cases).
        """
        share = self.costs.dm_housekeeping_percent / 100.0 / max(1, self.contending_vms)
        return share * self.costs.clock_hz * elapsed

    def charge_housekeeping(self, elapsed: float) -> None:
        self._charge_dom0(self.housekeeping_cycles(elapsed))

    def _charge_dom0(self, cycles: float) -> None:
        # Spread device-model work across dom0's VCPUs round-robin by
        # guest id, matching the paper's 8-VCPU pinned dom0.
        vcpu = self.guest.id % len(self.dom0.vcpus)
        self.dom0.charge_guest(cycles, vcpu=vcpu)
