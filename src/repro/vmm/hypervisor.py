"""The hypervisor: domains, interrupt routing, exit accounting.

:class:`Xen` models the paper's Xen 3.4 host: it owns the machine's
cores, the IOMMU and root complex, the global vector space, and the
per-guest emulation state (virtual LAPICs for HVM, event channels for
PVM, a device model per HVM guest).  Its job on the critical path is
§4.1's interrupt flow:

    physical MSI -> external-interrupt VM exit -> vector lookup ->
    virtual interrupt injection (vLAPIC or event channel) -> guest ISR

:class:`NativeHost` is the same surface with no virtualization: drivers
run against it to produce the paper's "native" baseline (Fig. 12), where
10 VF drivers and the PF driver share one bare-metal OS.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.core.costs import CostModel
from repro.core.optimizations import OptimizationConfig
from repro.hw.cpu import Machine
from repro.hw.intr_remap import InterruptRemapFault, InterruptRemapper
from repro.hw.iommu import Iommu
from repro.hw.msi import MsiMessage
from repro.hw.pcie.topology import RootComplex
from repro.obs.ledger import CycleLedger
from repro.obs.registry import NULL_REGISTRY
from repro.sim.engine import Simulator
from repro.sim.trace import NULL_TRACER
from repro.vmm.device_model import DeviceModel
from repro.vmm.domain import Domain, DomainKind, GuestKernel
from repro.vmm.event_channel import EventChannels
from repro.vmm.interrupts import VectorAllocator
from repro.vmm.scheduler import PinningPolicy
from repro.vmm.virtual_lapic import VirtualLapic
from repro.vmm.vmexit import VmExitKind, VmExitTracer

#: Ledger categories for the per-interrupt charges, precomputed once.
_CAT_EXTINT = "exit." + VmExitKind.EXTERNAL_INTERRUPT.value
_CAT_HYPERCALL = "exit." + VmExitKind.HYPERCALL.value


class Xen:
    """The virtual machine monitor."""

    def __init__(
        self,
        sim: Simulator,
        costs: Optional[CostModel] = None,
        opts: Optional[OptimizationConfig] = None,
    ):
        self.sim = sim
        self.costs = (costs or CostModel()).validate()
        self.opts = opts or OptimizationConfig.none()
        self.machine = Machine(sim, self.costs.core_count, self.costs.clock_hz)
        self.iommu = Iommu()
        self.intr_remapper = InterruptRemapper()
        self.root_complex = RootComplex(self.iommu)
        self.vectors = VectorAllocator()
        self.event_channels = EventChannels()
        self.tracer = VmExitTracer()
        #: MSIs dropped by interrupt remapping (spoofed or stale vectors).
        self.blocked_interrupts = 0
        #: Install a :class:`repro.sim.trace.Tracer` here to capture the
        #: interrupt path; the default null tracer costs nothing.
        self.trace = NULL_TRACER
        #: Per-(domain, category) cycle attribution.  Always live: the
        #: Fig. 7 exit breakdown and Fig. 12 CPU bars are read from it,
        #: so it is part of the accounting, not optional telemetry.
        self.ledger = CycleLedger()
        #: Install a :class:`repro.obs.MetricsRegistry` here (usually
        #: via :class:`repro.obs.Telemetry`) to export instruments; the
        #: default null registry hands out no-op instruments.
        self.metrics = NULL_REGISTRY
        self.pinning = PinningPolicy(self.costs.core_count, self.costs.dom0_vcpus)
        self.dom0 = Domain(0, "dom0", DomainKind.DOM0, self.machine,
                           self.pinning.dom0_cores())
        self.domains: Dict[int, Domain] = {0: self.dom0}
        self._next_domain_id = 1
        self._vlapics: Dict[int, VirtualLapic] = {}
        self._device_models: Dict[int, DeviceModel] = {}
        self._measurement_epoch = sim.now

    # ------------------------------------------------------------------
    # domain lifecycle
    # ------------------------------------------------------------------
    def create_guest(self, name: str, kind: DomainKind = DomainKind.HVM,
                     kernel: GuestKernel = GuestKernel.LINUX_2_6_28) -> Domain:
        """Create a single-VCPU guest pinned per the §6.1 policy."""
        if kind is DomainKind.DOM0:
            raise ValueError("dom0 already exists")
        domain_id = self._next_domain_id
        self._next_domain_id += 1
        domain = Domain(domain_id, name, kind, self.machine,
                        [self.pinning.place_guest()], kernel)
        self.domains[domain_id] = domain
        if kind is DomainKind.HVM:
            self._vlapics[domain_id] = VirtualLapic(domain, self.costs,
                                                    self.opts, self.tracer,
                                                    host=self)
            self._device_models[domain_id] = DeviceModel(
                domain, self.dom0, self.costs, self.opts, self.tracer,
                host=self)
            self._update_dm_contention()
        return domain

    def destroy_guest(self, domain: Domain) -> None:
        domain.running = False
        self.domains.pop(domain.id, None)
        self._vlapics.pop(domain.id, None)
        if self._device_models.pop(domain.id, None) is not None:
            self._update_dm_contention()

    def vlapic(self, domain: Domain) -> VirtualLapic:
        return self._vlapics[domain.id]

    def device_model(self, domain: Domain) -> DeviceModel:
        return self._device_models[domain.id]

    @property
    def hvm_guest_count(self) -> int:
        return len(self._device_models)

    @property
    def is_native(self) -> bool:
        return False

    def _update_dm_contention(self) -> None:
        count = max(1, len(self._device_models))
        for dm in self._device_models.values():
            dm.contending_vms = count

    # ------------------------------------------------------------------
    # the §4.1 interrupt critical path
    # ------------------------------------------------------------------
    def bind_guest_msi(self, domain: Domain,
                       handler: Callable[[int], None],
                       source_rid: Optional[int] = None) -> int:
        """Allocate a global vector for a guest's assigned device.

        ``handler`` is the guest driver's ISR; the hypervisor invokes it
        after injecting the virtual interrupt.  When the device's
        requester ID is given, an interrupt-remapping entry is installed
        so *only that function* may raise the vector.
        """
        vector = self.vectors.allocate(domain.id, handler)
        if source_rid is not None:
            self.intr_remapper.program(source_rid, vector)
        return vector

    def unbind_guest_msi(self, vector: int,
                         source_rid: Optional[int] = None) -> None:
        self.vectors.free(vector)
        if source_rid is not None:
            self.intr_remapper.revoke(source_rid, vector)

    def deliver_msi(self, source, message: MsiMessage) -> None:
        """Entry point wired as the NIC's ``interrupt_sink``.

        ``source`` is the raising function; when it carries a requester
        ID with programmed remapping entries, the interrupt-remapping
        unit validates the (RID, vector) pair and drops spoofed or
        stale messages.  The *vector* then identifies the owning guest,
        per §4.1's global allocation.
        """
        rid = getattr(getattr(source, "pci", None), "rid", None)
        if rid is not None and self.intr_remapper.entries_for(rid):
            try:
                self.intr_remapper.remap(rid, message)
            except InterruptRemapFault:
                self.blocked_interrupts += 1
                self.trace.emit("irq", "blocked", rid=rid,
                                vector=message.vector)
                return
        vector = message.vector
        owner_id = self.vectors.owner(vector)
        if owner_id is None or owner_id not in self.domains:
            self.trace.emit("irq", "orphan", vector=vector)
            return  # interrupt for a torn-down domain: dropped at Xen
        domain = self.domains[owner_id]
        self.trace.begin("irq", "deliver", vector=vector, domain=owner_id)
        # The external-interrupt VM exit + virtual interrupt bookkeeping.
        cost = self.costs.external_interrupt_exit_cycles
        self.tracer.record(VmExitKind.EXTERNAL_INTERRUPT, cost)
        self.ledger.charge(domain.name, _CAT_EXTINT, cost)
        domain.charge_hypervisor(cost)
        if domain.is_hvm:
            self._vlapics[domain.id].inject(vector)
        elif domain.is_pvm:
            # Signalled as an event-channel upcall instead of a vLAPIC
            # interrupt; cheaper (§6.4).
            notify = self.costs.event_channel_notify_cycles
            self.tracer.record(VmExitKind.HYPERCALL, notify)
            self.ledger.charge(domain.name, _CAT_HYPERCALL, notify)
            domain.charge_hypervisor(notify)
        handler = self.vectors.handler(vector)
        if handler is not None:
            handler(vector)
        self.trace.end("irq", "deliver", vector=vector)

    # ------------------------------------------------------------------
    # measurement
    # ------------------------------------------------------------------
    def start_measurement(self) -> None:
        """Zero all accounts; utilization reads cover from here on."""
        self.machine.start_measurement()
        self.tracer.reset()
        self.ledger.reset()
        for domain in self.domains.values():
            domain.reset_accounting()
        self._measurement_epoch = self.sim.now

    def end_measurement(self) -> float:
        """Close the window: charge rate-based costs; return elapsed."""
        elapsed = self.sim.now - self._measurement_epoch
        if elapsed > 0:
            for dm in self._device_models.values():
                dm.charge_housekeeping(elapsed)
        return elapsed

    @property
    def measurement_elapsed(self) -> float:
        return self.sim.now - self._measurement_epoch

    def utilization_breakdown(self) -> Dict[str, float]:
        """Per-account CPU percentages (xentop convention)."""
        return self.machine.utilization_breakdown(self.measurement_elapsed)


class NativeHost:
    """Bare metal: the same driver-facing surface, no virtualization.

    Used for the paper's native baseline, "where 10 VF drivers run in
    the same OS, with PF drivers on top of bare metal" (§6.2).
    """

    def __init__(self, sim: Simulator, costs: Optional[CostModel] = None):
        self.sim = sim
        self.costs = (costs or CostModel()).validate()
        self.opts = OptimizationConfig.none()
        self.machine = Machine(sim, self.costs.core_count, self.costs.clock_hz)
        self.iommu = Iommu()
        self.root_complex = RootComplex(self.iommu)
        self.vectors = VectorAllocator()
        # The same observability surface as Xen, so drivers can trace
        # and count identically on bare metal (no exits ever land in
        # the ledger's ``exit.*`` categories here).
        self.trace = NULL_TRACER
        self.ledger = CycleLedger()
        self.metrics = NULL_REGISTRY
        self._next_domain_id = 1
        self._measurement_epoch = sim.now

    @property
    def is_native(self) -> bool:
        return True

    def create_guest(self, name: str, kind: DomainKind = DomainKind.NATIVE,
                     kernel: GuestKernel = GuestKernel.LINUX_2_6_28) -> Domain:
        """A "guest" here is just a driver context on the host OS."""
        domain_id = self._next_domain_id
        self._next_domain_id += 1
        core = (domain_id - 1) % self.costs.core_count
        domain = Domain(domain_id, name, DomainKind.NATIVE, self.machine,
                        [core], kernel)
        return domain

    def bind_guest_msi(self, domain: Domain,
                       handler: Callable[[int], None],
                       source_rid: Optional[int] = None) -> int:
        """Native binding: no remapping unit between device and OS."""
        return self.vectors.allocate(domain.id, handler)

    def unbind_guest_msi(self, vector: int,
                         source_rid: Optional[int] = None) -> None:
        self.vectors.free(vector)

    def deliver_msi(self, source, message: MsiMessage) -> None:
        """Native interrupt delivery: straight to the ISR, no exits."""
        handler = self.vectors.handler(message.vector)
        if handler is not None:
            handler(message.vector)

    def start_measurement(self) -> None:
        self.machine.start_measurement()
        self.ledger.reset()
        self._measurement_epoch = self.sim.now

    def end_measurement(self) -> float:
        return self.sim.now - self._measurement_epoch

    @property
    def measurement_elapsed(self) -> float:
        return self.sim.now - self._measurement_epoch

    def utilization_breakdown(self) -> Dict[str, float]:
        return self.machine.utilization_breakdown(self.measurement_elapsed)
