"""The virtual ACPI hot-plug controller.

Paper §4.4: "We extended Xen to implement the virtual ACPI hot-plug
controller device model to support the virtual hot-plug event."  DNIS
migration rides on it: the migration manager signals a virtual hot
*removal* of the VF, the guest ejects its VF driver (eliminating
hardware stickiness), and after migration a hot *add* at the target
brings a VF back.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.sim.engine import Simulator
from repro.vmm.domain import Domain

#: Time for the guest OS to process an eject request: driver shutdown,
#: interrupt teardown (sub-second; the dominant DNIS delay is the
#: datapath switch, modelled separately).
DEFAULT_EJECT_LATENCY = 0.2
DEFAULT_ADD_LATENCY = 0.1


class HotplugController:
    """Per-guest virtual ACPI slot events."""

    def __init__(self, sim: Simulator,
                 eject_latency: float = DEFAULT_EJECT_LATENCY,
                 add_latency: float = DEFAULT_ADD_LATENCY):
        if eject_latency < 0 or add_latency < 0:
            raise ValueError("latencies must be non-negative")
        self.sim = sim
        self.eject_latency = eject_latency
        self.add_latency = add_latency
        #: domain id -> guest-side handler(event, device) -> None.
        self._guest_handlers: Dict[int, Callable[[str, Any], None]] = {}
        self.events: List[str] = []

    def register_guest(self, domain: Domain,
                       handler: Callable[[str, Any], None]) -> None:
        """The guest OS's ACPI event handler (its PCI hotplug core)."""
        self._guest_handlers[domain.id] = handler

    def unregister_guest(self, domain: Domain) -> None:
        self._guest_handlers.pop(domain.id, None)

    def request_removal(self, domain: Domain, device: Any,
                        on_complete: Optional[Callable[[], None]] = None) -> None:
        """Signal a virtual hot-removal of ``device`` to the guest.

        After the guest's eject latency, its handler runs (shutting the
        driver down) and ``on_complete`` fires — the migration manager's
        cue to start the "real" migration (§4.4).
        """
        handler = self._require(domain)
        self.events.append(f"remove-requested:{domain.name}")

        def deliver() -> None:
            handler("remove", device)
            self.events.append(f"remove-completed:{domain.name}")
            if on_complete is not None:
                on_complete()

        self.sim.schedule(self.eject_latency, deliver)

    def hot_add(self, domain: Domain, device: Any,
                on_complete: Optional[Callable[[], None]] = None) -> None:
        """Signal a virtual hot-add at the (target) platform."""
        handler = self._require(domain)
        self.events.append(f"add-requested:{domain.name}")

        def deliver() -> None:
            handler("add", device)
            self.events.append(f"add-completed:{domain.name}")
            if on_complete is not None:
                on_complete()

        self.sim.schedule(self.add_latency, deliver)

    def _require(self, domain: Domain) -> Callable[[str, Any], None]:
        handler = self._guest_handlers.get(domain.id)
        if handler is None:
            raise RuntimeError(
                f"domain {domain.name} has no ACPI hotplug handler registered"
            )
        return handler
