"""MSI / MSI-X interrupt capabilities.

Message Signaled Interrupts replace wired interrupt pins with memory
writes: the device posts ``data`` to ``address`` and the interrupt fabric
turns that into a vector on a CPU.  MSI-X adds a per-vector table with
individual mask bits and a Pending Bit Array (PBA): raising a masked
vector sets its pending bit, and unmasking delivers it (PCIe spec §6.1).

These mask/unmask registers are the villains of the paper's §5.1: Linux
2.6.18 masks the vector on entry to every MSI handler and unmasks it on
exit, and each of those MMIO writes trapped to the user-level device
model — the overhead that optimization moves into the hypervisor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional


@dataclass(frozen=True)
class MsiMessage:
    """The (address, data) pair a device posts to signal an interrupt."""

    address: int
    data: int

    @property
    def vector(self) -> int:
        """x86 encodes the vector in the low byte of the data payload."""
        return self.data & 0xFF


class MsixTableEntry:
    """One MSI-X table entry: message address/data plus a mask bit."""

    __slots__ = ("message", "masked")

    def __init__(self) -> None:
        self.message: Optional[MsiMessage] = None
        self.masked: bool = True  # spec: entries come up masked


class MsixCapability:
    """An MSI-X capability: vector table + pending bit array.

    ``deliver`` is the interrupt fabric callback (ultimately the
    hypervisor or a physical LAPIC).  Statistics count the mask/unmask
    MMIO writes because the paper's Fig. 6 optimization is entirely about
    who emulates them.
    """

    def __init__(self, table_size: int,
                 deliver: Optional[Callable[[MsiMessage], None]] = None):
        if not 1 <= table_size <= 2048:
            raise ValueError("MSI-X table size must be in [1, 2048]")
        self.table = [MsixTableEntry() for _ in range(table_size)]
        self._pending = [False] * table_size
        self._deliver = deliver
        self.mask_writes = 0
        self.unmask_writes = 0
        self.interrupts_posted = 0

    # ------------------------------------------------------------------
    # software-facing (driver / emulator writes)
    # ------------------------------------------------------------------
    def configure(self, index: int, message: MsiMessage) -> None:
        """Program a table entry's address/data."""
        self._entry(index).message = message

    def connect(self, deliver: Callable[[MsiMessage], None]) -> None:
        self._deliver = deliver

    def mask(self, index: int) -> None:
        """Set the entry's mask bit (counted: this is a trapped MMIO)."""
        self._entry(index).masked = True
        self.mask_writes += 1

    def unmask(self, index: int) -> None:
        """Clear the mask bit; a pending interrupt fires immediately."""
        entry = self._entry(index)
        entry.masked = False
        self.unmask_writes += 1
        if self._pending[index]:
            self._pending[index] = False
            self._post(entry)

    def is_masked(self, index: int) -> bool:
        return self._entry(index).masked

    def is_pending(self, index: int) -> bool:
        self._entry(index)
        return self._pending[index]

    # ------------------------------------------------------------------
    # device-facing
    # ------------------------------------------------------------------
    def raise_vector(self, index: int) -> bool:
        """Device signals the vector.  Returns True if posted now,
        False if latched into the PBA because the entry is masked."""
        entry = self._entry(index)
        if entry.masked:
            self._pending[index] = True
            return False
        self._post(entry)
        return True

    # ------------------------------------------------------------------
    def pending_vectors(self) -> List[int]:
        return [i for i, p in enumerate(self._pending) if p]

    def _post(self, entry: MsixTableEntry) -> None:
        if entry.message is None:
            raise RuntimeError("MSI-X entry raised before being configured")
        if self._deliver is None:
            raise RuntimeError("MSI-X capability has no interrupt fabric")
        self.interrupts_posted += 1
        self._deliver(entry.message)

    def _entry(self, index: int) -> MsixTableEntry:
        if not 0 <= index < len(self.table):
            raise IndexError(f"MSI-X vector index {index} out of range")
        return self.table[index]
