"""DMA descriptor rings, as both the driver and the NIC see them.

A VF's "performance critical resources" are exactly these rings (paper
§4.1): the driver posts buffer addresses and advances the *tail*; the
device fills buffers, writes back completion status and advances the
*head*.  Because addresses in the ring are guest-physical, every device
access goes through the IOMMU (that is what makes direct assignment
safe).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.net.packet import Packet


class RingFullError(RuntimeError):
    """Driver tried to post into a ring with no free descriptors."""


@dataclass
class Descriptor:
    """One ring slot: a buffer address plus completion status."""

    buffer_addr: int = 0
    buffer_len: int = 0
    #: Device "descriptor done" writeback.
    done: bool = False
    #: The packet the device placed (RX) or the driver posted (TX).
    packet: Optional[Packet] = None


class DescriptorRing:
    """A circular descriptor queue with head/tail semantics.

    Convention (Intel NICs): slots in ``[head, tail)`` belong to the
    *device*; the entry at ``tail`` is where software posts next.  The
    ring is full when advancing tail would make it collide with head —
    one slot is always left unused, as on real hardware.
    """

    def __init__(self, size: int, name: str = ""):
        if size < 2 or size & (size - 1):
            raise ValueError("ring size must be a power of two >= 2")
        self.size = size
        self.name = name
        self._mask = size - 1  # size is a power of two
        self.slots = [Descriptor() for _ in range(size)]
        self.head = 0  # device-owned consumption point
        self.tail = 0  # software production point
        self._clean = 0  # driver cleanup cursor, trails head
        self.posted = 0
        self.completed = 0

    # ------------------------------------------------------------------
    # occupancy
    # ------------------------------------------------------------------
    @property
    def device_owned(self) -> int:
        """Descriptors currently available to the device."""
        return (self.tail - self.head) % self.size

    @property
    def free(self) -> int:
        """Descriptors software may still post (one slot reserved)."""
        return self.size - 1 - self.device_owned

    @property
    def empty(self) -> bool:
        return self.head == self.tail

    @property
    def full(self) -> bool:
        return self.free == 0

    # ------------------------------------------------------------------
    # software side
    # ------------------------------------------------------------------
    def post(self, buffer_addr: int, buffer_len: int,
             packet: Optional[Packet] = None) -> int:
        """Post one descriptor at tail; returns the slot index."""
        if self.full:
            raise RingFullError(f"ring {self.name!r} is full")
        index = self.tail
        slot = self.slots[index]
        slot.buffer_addr = buffer_addr
        slot.buffer_len = buffer_len
        slot.done = False
        slot.packet = packet
        self.tail = (self.tail + 1) % self.size
        self.posted += 1
        return index

    def reap(self, limit: Optional[int] = None) -> List[Descriptor]:
        """Collect completed descriptors in order (driver cleanup path).

        Walks from the oldest software-visible slot and stops at the first
        descriptor the device has not written back yet.
        """
        reaped: List[Descriptor] = []
        append = reaped.append
        budget = self.size if limit is None else limit
        slots = self.slots
        mask = self._mask
        index = self._clean
        while budget > 0:
            slot = slots[index]
            if not slot.done:
                break
            append(slot)
            slot.done = False
            index = (index + 1) & mask
            budget -= 1
        self._clean = index
        return reaped

    def program_buffers(self, base_addr: int, stride: int,
                        buffer_len: int) -> None:
        """Write the fixed slot-to-buffer mapping into every slot.

        Slot ``i`` gets buffer ``base_addr + i * stride``.  Drivers call
        this once at probe time; afterwards :meth:`rearm_until_full`
        can re-post slots without touching their programming.  Covers
        all ``size`` slots — including the one :meth:`post_until_full`
        leaves reserved on a full fill, which otherwise would reach the
        device unprogrammed once the ring rotates.
        """
        for index, slot in enumerate(self.slots):
            slot.buffer_addr = base_addr + index * stride
            slot.buffer_len = buffer_len

    def post_until_full(self, base_addr: int, stride: int,
                        buffer_len: int) -> int:
        """Post empty buffers at tail until the ring is full (RX refill).

        Slot ``i`` gets buffer ``base_addr + i * stride`` — the fixed
        slot-to-buffer mapping RX drivers use — so a refill is pure
        cursor arithmetic instead of one :meth:`post` call per slot.
        Returns the number of descriptors posted.
        """
        size = self.size
        mask = self._mask
        slots = self.slots
        tail = self.tail
        count = size - 1 - ((tail - self.head) % size)
        for _ in range(count):
            slot = slots[tail]
            slot.buffer_addr = base_addr + tail * stride
            slot.buffer_len = buffer_len
            slot.done = False
            slot.packet = None
            tail = (tail + 1) & mask
        self.tail = tail
        self.posted += count
        return count

    def rearm_until_full(self) -> int:
        """Return reaped slots to the device, keeping their programming.

        The RX steady state: buffer address and length were written at
        probe time by :meth:`program_buffers` and never change (fixed
        slot-to-buffer mapping), and :meth:`reap` already cleared
        ``done`` — so re-posting only moves ownership and drops the
        consumed packet references.  Returns the number posted.
        """
        size = self.size
        mask = self._mask
        slots = self.slots
        tail = self.tail
        count = size - 1 - ((tail - self.head) % size)
        for _ in range(count):
            slots[tail].packet = None
            tail = (tail + 1) & mask
        self.tail = tail
        self.posted += count
        return count

    # ------------------------------------------------------------------
    # device side
    # ------------------------------------------------------------------
    def consume(self, packet: Optional[Packet] = None) -> Optional[Descriptor]:
        """Device takes the descriptor at head and completes it."""
        if self.empty:
            return None
        slot = self.slots[self.head]
        slot.done = True
        if packet is not None:
            slot.packet = packet
        self.head = (self.head + 1) % self.size
        self.completed += 1
        return slot

    # ------------------------------------------------------------------
    # The driver's cleanup cursor trails the device's head.
    # ------------------------------------------------------------------
    def _clean_index(self) -> int:
        return self._clean

    def _advance_clean(self) -> None:
        self._clean = (self._clean + 1) % self.size

    def reset(self) -> None:
        """Device reset: everything returns to software, state cleared."""
        self.head = 0
        self.tail = 0
        self._clean = 0
        for slot in self.slots:
            slot.done = False
            slot.packet = None
