"""DMA descriptor rings, as both the driver and the NIC see them.

A VF's "performance critical resources" are exactly these rings (paper
§4.1): the driver posts buffer addresses and advances the *tail*; the
device fills buffers, writes back completion status and advances the
*head*.  Because addresses in the ring are guest-physical, every device
access goes through the IOMMU (that is what makes direct assignment
safe).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.net.packet import Packet


class RingFullError(RuntimeError):
    """Driver tried to post into a ring with no free descriptors."""


@dataclass
class Descriptor:
    """One ring slot: a buffer address plus completion status."""

    buffer_addr: int = 0
    buffer_len: int = 0
    #: Device "descriptor done" writeback.
    done: bool = False
    #: The packet the device placed (RX) or the driver posted (TX).
    packet: Optional[Packet] = None


class DescriptorRing:
    """A circular descriptor queue with head/tail semantics.

    Convention (Intel NICs): slots in ``[head, tail)`` belong to the
    *device*; the entry at ``tail`` is where software posts next.  The
    ring is full when advancing tail would make it collide with head —
    one slot is always left unused, as on real hardware.
    """

    def __init__(self, size: int, name: str = ""):
        if size < 2 or size & (size - 1):
            raise ValueError("ring size must be a power of two >= 2")
        self.size = size
        self.name = name
        self.slots = [Descriptor() for _ in range(size)]
        self.head = 0  # device-owned consumption point
        self.tail = 0  # software production point
        self.posted = 0
        self.completed = 0

    # ------------------------------------------------------------------
    # occupancy
    # ------------------------------------------------------------------
    @property
    def device_owned(self) -> int:
        """Descriptors currently available to the device."""
        return (self.tail - self.head) % self.size

    @property
    def free(self) -> int:
        """Descriptors software may still post (one slot reserved)."""
        return self.size - 1 - self.device_owned

    @property
    def empty(self) -> bool:
        return self.head == self.tail

    @property
    def full(self) -> bool:
        return self.free == 0

    # ------------------------------------------------------------------
    # software side
    # ------------------------------------------------------------------
    def post(self, buffer_addr: int, buffer_len: int,
             packet: Optional[Packet] = None) -> int:
        """Post one descriptor at tail; returns the slot index."""
        if self.full:
            raise RingFullError(f"ring {self.name!r} is full")
        index = self.tail
        slot = self.slots[index]
        slot.buffer_addr = buffer_addr
        slot.buffer_len = buffer_len
        slot.done = False
        slot.packet = packet
        self.tail = (self.tail + 1) % self.size
        self.posted += 1
        return index

    def reap(self, limit: Optional[int] = None) -> List[Descriptor]:
        """Collect completed descriptors in order (driver cleanup path).

        Walks from the oldest software-visible slot and stops at the first
        descriptor the device has not written back yet.
        """
        reaped: List[Descriptor] = []
        budget = self.size if limit is None else limit
        index = self._clean_index()
        while budget > 0:
            slot = self.slots[index]
            if not slot.done:
                break
            reaped.append(slot)
            slot.done = False
            self._advance_clean()
            index = self._clean_index()
            budget -= 1
        return reaped

    # ------------------------------------------------------------------
    # device side
    # ------------------------------------------------------------------
    def consume(self, packet: Optional[Packet] = None) -> Optional[Descriptor]:
        """Device takes the descriptor at head and completes it."""
        if self.empty:
            return None
        slot = self.slots[self.head]
        slot.done = True
        if packet is not None:
            slot.packet = packet
        self.head = (self.head + 1) % self.size
        self.completed += 1
        return slot

    # ------------------------------------------------------------------
    # The driver's cleanup cursor trails the device's head.
    # ------------------------------------------------------------------
    def _clean_index(self) -> int:
        return getattr(self, "_clean", 0) % self.size

    def _advance_clean(self) -> None:
        self._clean = (self._clean_index() + 1) % self.size

    def reset(self) -> None:
        """Device reset: everything returns to software, state cleared."""
        self.head = 0
        self.tail = 0
        self._clean = 0
        for slot in self.slots:
            slot.done = False
            slot.packet = None
