"""VT-d interrupt remapping.

DMA remapping (the IOMMU page tables) protects memory; *interrupt*
remapping protects the vector space.  Without it, any device that can
post a memory write can forge an MSI with an arbitrary vector —
including a vector owned by another VM.  The remapping unit validates
each interrupt message against an Interrupt Remapping Table Entry
(IRTE) keyed by the posting function's requester ID, and substitutes
the *programmed* vector for whatever the message carried.

This closes the loop on the paper's §4.1 vector discipline: "Xen ...
recognizes the guest which owns the interrupt by vector, which is
globally allocated to avoid interrupt sharing" — safe only because the
hardware guarantees a VF cannot raise vectors it was not granted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.hw.msi import MsiMessage


class InterruptRemapFault(RuntimeError):
    """A blocked interrupt: no IRTE, or RID not permitted to use it."""

    def __init__(self, rid: int, vector: int, reason: str):
        super().__init__(
            f"interrupt remap fault rid={rid:#06x} vector={vector:#x}: {reason}")
        self.rid = rid
        self.vector = vector
        self.reason = reason


@dataclass(frozen=True)
class Irte:
    """One Interrupt Remapping Table Entry."""

    source_rid: int
    vector: int
    #: Destination APIC (which physical CPU takes the interrupt).
    destination: int = 0


class InterruptRemapper:
    """The remapping unit: (RID, handle) -> validated vector."""

    def __init__(self) -> None:
        #: (source_rid, requested_vector) -> IRTE.
        self._entries: Dict[Tuple[int, int], Irte] = {}
        self.remapped = 0
        self.faults = 0

    def program(self, source_rid: int, vector: int,
                destination: int = 0) -> Irte:
        """Install an IRTE permitting ``source_rid`` to raise ``vector``."""
        entry = Irte(source_rid, vector, destination)
        self._entries[(source_rid, vector)] = entry
        return entry

    def revoke(self, source_rid: int, vector: int) -> None:
        self._entries.pop((source_rid, vector), None)

    def revoke_all_for(self, source_rid: int) -> int:
        """Tear down every IRTE of a function (device removal)."""
        keys = [key for key in self._entries if key[0] == source_rid]
        for key in keys:
            del self._entries[key]
        return len(keys)

    def remap(self, source_rid: int, message: MsiMessage) -> Irte:
        """Validate and translate one posted interrupt.

        Raises :class:`InterruptRemapFault` when the source has no IRTE
        for the vector it is trying to raise — the anti-spoofing
        property.
        """
        entry = self._entries.get((source_rid, message.vector))
        if entry is None:
            self.faults += 1
            raise InterruptRemapFault(source_rid, message.vector,
                                      "no IRTE for this source/vector")
        self.remapped += 1
        return entry

    def entries_for(self, source_rid: int) -> int:
        return sum(1 for key in self._entries if key[0] == source_rid)

    @property
    def entry_count(self) -> int:
        return len(self._entries)
