"""CPU cores with per-label cycle accounting.

The paper reports every overhead as CPU utilization percentages measured
with xentop-style accounting: cycles attributed to the guest, to Xen, and
to domain 0 (e.g. Fig. 12's "499 % -> 227 %" totals across a 16-thread
box).  We reproduce that by *accounting*, not instruction simulation:
every handler charges cycles against a (core, label) pair, and
utilization is ``cycles / (elapsed x clock)``.

Two execution styles coexist:

* :meth:`CpuCore.charge` — post-hoc accounting for paths that never
  saturate a core (interrupt handling at < 100 % utilization).  Cheap and
  exact for the utilization arithmetic.
* :class:`Executor` — a serializing server for paths that *do* saturate
  (the single-threaded netback of §6.5): work is queued and processed at
  the core's real service rate, so goodput caps out exactly when the core
  does.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from repro.sim.engine import Simulator

#: The testbed's clock: dual quad-core Xeon 5500 at 2.8 GHz (§6.1).
DEFAULT_CLOCK_HZ = 2.8e9


class CpuCore:
    """One hardware thread with labelled cycle accounts."""

    def __init__(self, sim: Simulator, index: int, clock_hz: float = DEFAULT_CLOCK_HZ):
        if clock_hz <= 0:
            raise ValueError("clock must be positive")
        self.sim = sim
        self.index = index
        self.clock_hz = clock_hz
        self._accounts: Dict[str, float] = {}

    def charge(self, label: str, cycles: float) -> None:
        """Attribute ``cycles`` of work on this core to ``label``."""
        if cycles < 0:
            raise ValueError("cannot charge negative cycles")
        self._accounts[label] = self._accounts.get(label, 0.0) + cycles

    def cycles(self, label: Optional[str] = None) -> float:
        """Cycles charged to ``label`` (or to all labels)."""
        if label is None:
            return sum(self._accounts.values())
        return self._accounts.get(label, 0.0)

    def utilization(self, elapsed: float, label: Optional[str] = None) -> float:
        """Fraction of ``elapsed`` seconds spent on ``label`` work."""
        if elapsed <= 0:
            return 0.0
        return self.cycles(label) / (elapsed * self.clock_hz)

    def labels(self) -> List[str]:
        return sorted(self._accounts)

    def reset(self) -> None:
        self._accounts.clear()

    @property
    def overcommitted_after(self) -> Callable[[float], bool]:
        """Return a predicate telling whether charges exceeded capacity."""
        return lambda elapsed: self.cycles() > elapsed * self.clock_hz


class Machine:
    """A multi-core host: the unit the paper reports utilization against.

    Utilization percentages follow the paper's convention: 100 % = one
    fully busy hardware thread, so a 16-thread box tops out at 1600 %
    (Fig. 12 quotes 499 % on this scale).
    """

    def __init__(self, sim: Simulator, core_count: int = 16,
                 clock_hz: float = DEFAULT_CLOCK_HZ):
        if core_count <= 0:
            raise ValueError("need at least one core")
        self.sim = sim
        self.clock_hz = clock_hz
        self.cores = [CpuCore(sim, i, clock_hz) for i in range(core_count)]
        self._epoch = sim.now

    def core(self, index: int) -> CpuCore:
        return self.cores[index]

    def start_measurement(self) -> None:
        """Zero all accounts and restart the measurement window."""
        for core in self.cores:
            core.reset()
        self._epoch = self.sim.now

    @property
    def elapsed(self) -> float:
        return self.sim.now - self._epoch

    def cycles(self, label: Optional[str] = None) -> float:
        return sum(core.cycles(label) for core in self.cores)

    def utilization_percent(self, label: Optional[str] = None,
                            elapsed: Optional[float] = None) -> float:
        """Utilization in "percent of one thread" units (xentop style)."""
        window = self.elapsed if elapsed is None else elapsed
        if window <= 0:
            return 0.0
        return 100.0 * self.cycles(label) / (window * self.clock_hz)

    def utilization_breakdown(self, elapsed: Optional[float] = None) -> Dict[str, float]:
        """Per-label utilization percentages across all cores."""
        labels = sorted({label for core in self.cores for label in core.labels()})
        return {label: self.utilization_percent(label, elapsed) for label in labels}

    def overcommitted_cores(self, elapsed: Optional[float] = None) -> List[int]:
        """Cores whose charged cycles exceed their capacity.

        The charge-based accounting assumes handlers fit in the free
        time of their core; a non-empty result means that assumption
        broke (too many guests pinned to one thread for the offered
        load) and the utilization numbers are no longer physical.
        """
        window = self.elapsed if elapsed is None else elapsed
        if window <= 0:
            return []
        return [core.index for core in self.cores
                if core.cycles() > window * core.clock_hz * (1 + 1e-9)]


class Executor:
    """A serializing work queue bound to one core.

    Work items are processed one at a time at the core's clock rate;
    completion callbacks fire when the item's cycles have elapsed.  The
    queue has a hard bound: submissions beyond it are rejected, which is
    how a saturated netback thread turns into packet drops rather than an
    unbounded backlog.
    """

    def __init__(self, sim: Simulator, core: CpuCore, label: str,
                 queue_limit: int = 4096):
        if queue_limit <= 0:
            raise ValueError("queue limit must be positive")
        self.sim = sim
        self.core = core
        self.label = label
        self.queue_limit = queue_limit
        self._queue: Deque[Tuple[float, Callable[[], Any]]] = deque()
        self._busy = False
        self.rejected = 0
        self.completed = 0

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    @property
    def busy(self) -> bool:
        return self._busy

    def submit(self, cycles: float, on_done: Callable[[], Any]) -> bool:
        """Queue ``cycles`` of work; returns False if the queue is full."""
        if cycles < 0:
            raise ValueError("cannot submit negative work")
        if len(self._queue) >= self.queue_limit:
            self.rejected += 1
            return False
        self._queue.append((cycles, on_done))
        if not self._busy:
            self._start_next()
        return True

    def _start_next(self) -> None:
        if not self._queue:
            self._busy = False
            return
        self._busy = True
        cycles, on_done = self._queue.popleft()
        self.core.charge(self.label, cycles)
        self.sim.schedule(cycles / self.core.clock_hz, self._finish, on_done)

    def _finish(self, on_done: Callable[[], Any]) -> None:
        self.completed += 1
        on_done()
        self._start_next()
