"""IOMMU: RID-indexed DMA remapping and protection.

SR-IOV "inherits Direct I/O technology, using IOMMU to offload memory
protection and address translation" (paper §1).  Each PCIe requester ID
indexes a context entry pointing at the I/O page table of the VM that
owns the function; runtime DMA addresses programmed by the guest (guest
physical) are translated to machine physical and permission-checked
without hypervisor involvement.
"""

from __future__ import annotations

from typing import Dict, Optional

PAGE_SIZE = 4096
PAGE_MASK = PAGE_SIZE - 1


class IommuFault(RuntimeError):
    """A blocked DMA: no context entry, no mapping, or permission denied."""

    def __init__(self, rid: int, address: int, reason: str):
        super().__init__(f"IOMMU fault rid={rid:#06x} addr={address:#x}: {reason}")
        self.rid = rid
        self.address = address
        self.reason = reason


class IoPageTable:
    """One VM's I/O address space: guest-physical page -> machine page."""

    def __init__(self, domain_id: int):
        self.domain_id = domain_id
        #: gfn -> (mfn, writable)
        self._entries: Dict[int, "tuple[int, bool]"] = {}

    def map(self, guest_addr: int, machine_addr: int, size: int = PAGE_SIZE,
            writable: bool = True) -> None:
        """Map a page-aligned range of guest-physical to machine-physical."""
        self._check_aligned(guest_addr, machine_addr, size)
        pages = size // PAGE_SIZE
        for i in range(pages):
            gfn = (guest_addr >> 12) + i
            mfn = (machine_addr >> 12) + i
            self._entries[gfn] = (mfn, writable)

    def unmap(self, guest_addr: int, size: int = PAGE_SIZE) -> None:
        if guest_addr & PAGE_MASK or size & PAGE_MASK:
            raise ValueError("unmap must be page aligned")
        for i in range(size // PAGE_SIZE):
            self._entries.pop((guest_addr >> 12) + i, None)

    def lookup(self, guest_addr: int) -> Optional["tuple[int, bool]"]:
        """Translate one address; returns (machine_addr, writable) or None."""
        entry = self._entries.get(guest_addr >> 12)
        if entry is None:
            return None
        mfn, writable = entry
        return (mfn << 12) | (guest_addr & PAGE_MASK), writable

    @property
    def mapped_pages(self) -> int:
        return len(self._entries)

    @staticmethod
    def _check_aligned(guest_addr: int, machine_addr: int, size: int) -> None:
        if guest_addr & PAGE_MASK or machine_addr & PAGE_MASK:
            raise ValueError("mappings must be page aligned")
        if size <= 0 or size & PAGE_MASK:
            raise ValueError("size must be a positive page multiple")


class Iommu:
    """The DMA-remapping unit: context table from RID to I/O page table.

    Statistics count translations and faults; the security tests use the
    fault path to show that a VF cannot reach another VM's memory (§4.3).
    """

    def __init__(self) -> None:
        self._contexts: Dict[int, IoPageTable] = {}
        self.translations = 0
        self.faults = 0

    def attach(self, rid: int, table: IoPageTable) -> None:
        """Point ``rid``'s context entry at a VM's I/O page table."""
        self._contexts[rid] = table

    def detach(self, rid: int) -> None:
        self._contexts.pop(rid, None)

    def context_for(self, rid: int) -> Optional[IoPageTable]:
        return self._contexts.get(rid)

    def translate(self, rid: int, guest_addr: int, write: bool = False) -> int:
        """Translate a DMA address for requester ``rid``.

        Raises :class:`IommuFault` when the requester has no context
        entry, the address is unmapped, or a write hits a read-only page.
        """
        table = self._contexts.get(rid)
        if table is None:
            self.faults += 1
            raise IommuFault(rid, guest_addr, "no context entry for requester")
        entry = table.lookup(guest_addr)
        if entry is None:
            self.faults += 1
            raise IommuFault(rid, guest_addr, "address not mapped")
        machine_addr, writable = entry
        if write and not writable:
            self.faults += 1
            raise IommuFault(rid, guest_addr, "write to read-only mapping")
        self.translations += 1
        return machine_addr
