"""The SR-IOV extended capability.

The capability lives in the PF's extended config space and is how system
software sizes and enables virtual functions (PCI-SIG SR-IOV 1.1; paper
§2).  The fields that matter to the architecture:

* **TotalVFs** — hardware limit (the 82576 exposes 8 per port, of which
  the paper enables 7 so the PF keeps a queue pair);
* **NumVFs** — how many the PF driver asks for;
* **VF Enable** — the control bit that makes VFs spring into existence;
* **First VF Offset / VF Stride** — the routing-ID arithmetic: VF *i*
  answers at ``PF_RID + offset + i × stride``, giving each VF the unique
  requester ID the IOMMU keys on (paper §2: "A VF is associated with a
  unique RID").
"""

from __future__ import annotations

from typing import List

from repro.hw.pcie.config_space import ConfigSpace, EXT_CAP_ID_SRIOV

#: Register offsets within the capability (SR-IOV spec layout).
REG_CONTROL = 0x08
REG_STATUS = 0x0A
REG_INITIAL_VFS = 0x0C
REG_TOTAL_VFS = 0x0E
REG_NUM_VFS = 0x10
REG_FIRST_VF_OFFSET = 0x14
REG_VF_STRIDE = 0x16
REG_VF_DEVICE_ID = 0x1A
REG_SUPPORTED_PAGE_SIZES = 0x1C
REG_SYSTEM_PAGE_SIZE = 0x20
CAPABILITY_LENGTH = 0x40

#: Control register bits.
CTRL_VF_ENABLE = 1 << 0
CTRL_VF_MSE = 1 << 3  # VF memory space enable


class SriovCapability:
    """Accessor for an SR-IOV extended capability within a config space."""

    def __init__(
        self,
        config: ConfigSpace,
        total_vfs: int,
        vf_device_id: int,
        first_vf_offset: int = 0x80,
        vf_stride: int = 2,
    ):
        if total_vfs <= 0:
            raise ValueError("total_vfs must be positive")
        if vf_stride <= 0:
            raise ValueError("vf_stride must be positive")
        self.config = config
        self.offset = config.add_extended_capability(EXT_CAP_ID_SRIOV,
                                                     CAPABILITY_LENGTH)
        config.write16(self.offset + REG_INITIAL_VFS, total_vfs)
        config.write16(self.offset + REG_TOTAL_VFS, total_vfs)
        config.write16(self.offset + REG_FIRST_VF_OFFSET, first_vf_offset)
        config.write16(self.offset + REG_VF_STRIDE, vf_stride)
        config.write16(self.offset + REG_VF_DEVICE_ID, vf_device_id)
        config.write32(self.offset + REG_SUPPORTED_PAGE_SIZES, 0x1)  # 4 KiB
        config.write32(self.offset + REG_SYSTEM_PAGE_SIZE, 0x1)

    # ------------------------------------------------------------------
    # fields
    # ------------------------------------------------------------------
    @property
    def total_vfs(self) -> int:
        return self.config.read16(self.offset + REG_TOTAL_VFS)

    @property
    def num_vfs(self) -> int:
        return self.config.read16(self.offset + REG_NUM_VFS)

    @num_vfs.setter
    def num_vfs(self, count: int) -> None:
        if self.vf_enabled:
            raise RuntimeError("NumVFs is read-only while VF Enable is set")
        if not 0 <= count <= self.total_vfs:
            raise ValueError(f"NumVFs {count} exceeds TotalVFs {self.total_vfs}")
        self.config.write16(self.offset + REG_NUM_VFS, count)

    @property
    def first_vf_offset(self) -> int:
        return self.config.read16(self.offset + REG_FIRST_VF_OFFSET)

    @property
    def vf_stride(self) -> int:
        return self.config.read16(self.offset + REG_VF_STRIDE)

    @property
    def vf_device_id(self) -> int:
        return self.config.read16(self.offset + REG_VF_DEVICE_ID)

    # ------------------------------------------------------------------
    # VF enable
    # ------------------------------------------------------------------
    @property
    def vf_enabled(self) -> bool:
        return bool(self.config.read16(self.offset + REG_CONTROL) & CTRL_VF_ENABLE)

    def enable_vfs(self) -> None:
        """Set VF Enable; NumVFs must have been programmed first."""
        if self.num_vfs == 0:
            raise RuntimeError("cannot enable zero VFs")
        control = self.config.read16(self.offset + REG_CONTROL)
        self.config.write16(self.offset + REG_CONTROL,
                            control | CTRL_VF_ENABLE | CTRL_VF_MSE)

    def disable_vfs(self) -> None:
        control = self.config.read16(self.offset + REG_CONTROL)
        self.config.write16(self.offset + REG_CONTROL,
                            control & ~(CTRL_VF_ENABLE | CTRL_VF_MSE))

    # ------------------------------------------------------------------
    # RID arithmetic
    # ------------------------------------------------------------------
    def vf_rid(self, pf_rid: int, index: int) -> int:
        """Requester ID of VF ``index`` (0-based) under the given PF."""
        if not 0 <= index < self.total_vfs:
            raise IndexError(f"VF index {index} out of range")
        return pf_rid + self.first_vf_offset + index * self.vf_stride

    def vf_rids(self, pf_rid: int) -> List[int]:
        """Requester IDs of all currently enabled VFs."""
        return [self.vf_rid(pf_rid, i) for i in range(self.num_vfs)]
