"""The PCIe data path: a bandwidth-shared DMA pipe.

Inter-VM traffic through an SR-IOV NIC crosses this pipe **twice** —
"the device uses DMA to copy packets from source VM memory to NIC FIFO,
and then from NIC FIFO to target memory.  Both DMA operations need to go
through slow PCIe bus transactions, which limit the total throughput"
(paper §6.3, the explanation of Fig. 13's 2.8 Gbps ceiling).

The model is a serializing server at the link's effective payload rate.
Calibration: an 82576 sits on a PCIe Gen1 x4 link (10 Gb/s raw); after
8b/10b coding and TLP header overhead the usable DMA payload rate is
~5.6 Gb/s, which halves to 2.8 Gb/s when every packet crosses twice.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.sim.engine import Simulator
from repro.sim.stats import Counter
from repro.sim.trace import NULL_TRACER

#: Effective one-way DMA payload bandwidth of the NIC's PCIe link.
DEFAULT_EFFECTIVE_BPS = 5.6e9


class PcieDataPath:
    """Serializes DMA payload transfers over a finite-bandwidth link."""

    def __init__(self, sim: Simulator, effective_bps: float = DEFAULT_EFFECTIVE_BPS,
                 name: str = "pcie"):
        if effective_bps <= 0:
            raise ValueError("bandwidth must be positive")
        self.sim = sim
        self.effective_bps = effective_bps
        self.name = name
        self._busy_until: float = 0.0
        self.transferred_bytes = Counter(f"{name}.bytes")
        self.transfers = Counter(f"{name}.transfers")
        #: Installed by the telemetry layer; emits one event per DMA
        #: booking (queue time visible as start - ts).
        self.trace = NULL_TRACER

    def transfer_time(self, size_bytes: int) -> float:
        """Serialized time for a payload of ``size_bytes``."""
        if size_bytes < 0:
            raise ValueError("size must be non-negative")
        return size_bytes * 8 / self.effective_bps

    def transfer(self, size_bytes: int,
                 on_done: Optional[Callable[[], None]] = None) -> float:
        """Book a DMA transfer; returns its completion time.

        Transfers serialize: one begins when the pipe frees up.  The
        optional callback fires at completion.
        """
        start = max(self.sim.now, self._busy_until)
        finish = start + self.transfer_time(size_bytes)
        self._busy_until = finish
        self.transferred_bytes.add(size_bytes)
        self.transfers.add()
        self.trace.emit("dma", self.name, bytes=size_bytes,
                        start=start, finish=finish)
        if on_done is not None:
            self.sim.schedule_at(finish, on_done)
        return finish

    def transfer_at(self, time: float, size_bytes: int) -> float:
        """Book a DMA transfer as of simulated ``time`` (which may lie
        in the past of ``sim.now``).

        The fluid datapath applies collapsed ticks lazily, after the
        instant the exact simulation would have booked the transfer;
        taking the booking time as an argument keeps ``_busy_until``
        and the counters bit-identical to the exact schedule.
        """
        start = max(time, self._busy_until)
        finish = start + self.transfer_time(size_bytes)
        self._busy_until = finish
        self.transferred_bytes.add(size_bytes)
        self.transfers.add()
        self.trace.emit("dma", self.name, bytes=size_bytes,
                        start=start, finish=finish)
        return finish

    @property
    def backlog_seconds(self) -> float:
        """How far ahead of now the pipe is booked."""
        return max(0.0, self._busy_until - self.sim.now)

    def throughput_cap_bps(self, crossings: int = 1) -> float:
        """Achievable payload goodput when each byte crosses N times."""
        if crossings <= 0:
            raise ValueError("crossings must be positive")
        return self.effective_bps / crossings

    def utilization(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` spent moving payload."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.transferred_bytes.value * 8
                   / (self.effective_bps * elapsed))
