"""PCI configuration space.

Each PCIe function owns 4 KiB of configuration space: a 64-byte standard
header, a linked list of legacy capabilities below 0x100, and extended
capabilities above.  The reproduction models it as a real byte array with
register accessors, because the IOVM's job (paper §4.1) is precisely to
*synthesize* one of these for each VF — VFs only implement a subset and
"do not respond to an ordinary PCI bus scan".
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

CONFIG_SPACE_SIZE = 4096
LEGACY_CAP_BASE = 0x40
EXTENDED_CAP_BASE = 0x100

# Standard header offsets.
OFF_VENDOR_ID = 0x00
OFF_DEVICE_ID = 0x02
OFF_COMMAND = 0x04
OFF_STATUS = 0x06
OFF_REVISION = 0x08
OFF_CLASS_CODE = 0x09
OFF_HEADER_TYPE = 0x0E
OFF_BAR0 = 0x10
OFF_SUBSYSTEM_VENDOR = 0x2C
OFF_CAP_POINTER = 0x34
OFF_INTERRUPT_LINE = 0x3C

# Command register bits.
CMD_MEMORY_ENABLE = 1 << 1
CMD_BUS_MASTER_ENABLE = 1 << 2
CMD_INTX_DISABLE = 1 << 10

# Status register bits.
STATUS_CAP_LIST = 1 << 4

# Capability IDs.
CAP_ID_POWER_MGMT = 0x01
CAP_ID_MSI = 0x05
CAP_ID_PCIE = 0x10
CAP_ID_MSIX = 0x11

# Extended capability IDs.
EXT_CAP_ID_SRIOV = 0x0010
EXT_CAP_ID_ACS = 0x000D

#: Reads from nonexistent functions float high on PCI.
INVALID_VENDOR_ID = 0xFFFF


class ConfigSpace:
    """A 4 KiB configuration space with capability-list management."""

    def __init__(self, vendor_id: int, device_id: int, class_code: int = 0x020000):
        self._bytes = bytearray(CONFIG_SPACE_SIZE)
        self.write16(OFF_VENDOR_ID, vendor_id)
        self.write16(OFF_DEVICE_ID, device_id)
        self.write8(OFF_CLASS_CODE, class_code & 0xFF)
        self.write16(OFF_CLASS_CODE + 1, (class_code >> 8) & 0xFFFF)
        self._next_legacy = LEGACY_CAP_BASE
        self._next_extended = EXTENDED_CAP_BASE
        self._last_legacy: Optional[int] = None
        self._last_extended: Optional[int] = None

    # ------------------------------------------------------------------
    # raw access
    # ------------------------------------------------------------------
    def read8(self, offset: int) -> int:
        self._check(offset, 1)
        return self._bytes[offset]

    def read16(self, offset: int) -> int:
        self._check(offset, 2)
        return int.from_bytes(self._bytes[offset:offset + 2], "little")

    def read32(self, offset: int) -> int:
        self._check(offset, 4)
        return int.from_bytes(self._bytes[offset:offset + 4], "little")

    def write8(self, offset: int, value: int) -> None:
        self._check(offset, 1)
        self._bytes[offset] = value & 0xFF

    def write16(self, offset: int, value: int) -> None:
        self._check(offset, 2)
        self._bytes[offset:offset + 2] = (value & 0xFFFF).to_bytes(2, "little")

    def write32(self, offset: int, value: int) -> None:
        self._check(offset, 4)
        self._bytes[offset:offset + 4] = (value & 0xFFFFFFFF).to_bytes(4, "little")

    # ------------------------------------------------------------------
    # header conveniences
    # ------------------------------------------------------------------
    @property
    def vendor_id(self) -> int:
        return self.read16(OFF_VENDOR_ID)

    @property
    def device_id(self) -> int:
        return self.read16(OFF_DEVICE_ID)

    @property
    def command(self) -> int:
        return self.read16(OFF_COMMAND)

    def enable_bus_master(self) -> None:
        self.write16(OFF_COMMAND, self.command | CMD_BUS_MASTER_ENABLE)

    def enable_memory(self) -> None:
        self.write16(OFF_COMMAND, self.command | CMD_MEMORY_ENABLE)

    @property
    def bus_master_enabled(self) -> bool:
        return bool(self.command & CMD_BUS_MASTER_ENABLE)

    def set_bar(self, index: int, address: int) -> None:
        if not 0 <= index < 6:
            raise ValueError("BAR index must be 0-5")
        self.write32(OFF_BAR0 + index * 4, address)

    def bar(self, index: int) -> int:
        if not 0 <= index < 6:
            raise ValueError("BAR index must be 0-5")
        return self.read32(OFF_BAR0 + index * 4)

    # ------------------------------------------------------------------
    # capability lists
    # ------------------------------------------------------------------
    def add_capability(self, cap_id: int, length: int) -> int:
        """Append a legacy capability; returns its offset.

        The capability's header (id, next pointer) is maintained here;
        the body is the caller's to fill via the raw accessors.
        """
        if length < 2:
            raise ValueError("capability must cover its own header")
        offset = self._next_legacy
        if offset + length > EXTENDED_CAP_BASE:
            raise RuntimeError("legacy capability area exhausted")
        self.write8(offset, cap_id)
        self.write8(offset + 1, 0)  # next pointer, fixed up below
        if self._last_legacy is None:
            self.write8(OFF_CAP_POINTER, offset)
            self.write16(OFF_STATUS, self.read16(OFF_STATUS) | STATUS_CAP_LIST)
        else:
            self.write8(self._last_legacy + 1, offset)
        self._last_legacy = offset
        self._next_legacy = offset + ((length + 3) & ~3)
        return offset

    def add_extended_capability(self, cap_id: int, length: int) -> int:
        """Append an extended capability (above 0x100); returns offset."""
        if length < 4:
            raise ValueError("extended capability must cover its header")
        offset = self._next_extended
        if offset + length > CONFIG_SPACE_SIZE:
            raise RuntimeError("extended capability area exhausted")
        # Header: cap id (16) | version (4) | next offset (12).
        self.write32(offset, (cap_id & 0xFFFF) | (1 << 16))
        if self._last_extended is not None:
            previous = self.read32(self._last_extended)
            self.write32(self._last_extended,
                         (previous & 0x000FFFFF) | (offset << 20))
        self._last_extended = offset
        self._next_extended = offset + ((length + 3) & ~3)
        return offset

    def capabilities(self) -> Iterator[Tuple[int, int]]:
        """Yield (cap_id, offset) down the legacy capability chain."""
        if not self.read16(OFF_STATUS) & STATUS_CAP_LIST:
            return
        offset = self.read8(OFF_CAP_POINTER)
        seen = set()
        while offset and offset not in seen:
            seen.add(offset)
            yield self.read8(offset), offset
            offset = self.read8(offset + 1)

    def extended_capabilities(self) -> Iterator[Tuple[int, int]]:
        """Yield (cap_id, offset) down the extended capability chain."""
        offset = EXTENDED_CAP_BASE
        if self.read32(offset) == 0:
            return
        seen = set()
        while offset and offset not in seen:
            seen.add(offset)
            header = self.read32(offset)
            yield header & 0xFFFF, offset
            offset = header >> 20

    def find_capability(self, cap_id: int) -> Optional[int]:
        for found_id, offset in self.capabilities():
            if found_id == cap_id:
                return offset
        return None

    def find_extended_capability(self, cap_id: int) -> Optional[int]:
        for found_id, offset in self.extended_capabilities():
            if found_id == cap_id:
                return offset
        return None

    # ------------------------------------------------------------------
    @staticmethod
    def _check(offset: int, width: int) -> None:
        if offset < 0 or offset + width > CONFIG_SPACE_SIZE:
            raise IndexError(f"config space access at {offset:#x}+{width} out of range")
