"""PCI Express: configuration space, SR-IOV capability, topology, ACS.

The SR-IOV specifics the paper's architecture leans on are modelled at
register level:

* :mod:`repro.hw.pcie.config_space` — the 4 KiB per-function space with
  a standard header and capability lists.  VFs implement only a trimmed
  subset and *do not answer vendor-ID probes*, which is why the IOVM has
  to synthesize a full virtual config space (paper §4.1).
* :mod:`repro.hw.pcie.sriov_cap` — the SR-IOV extended capability: VF
  enable, NumVFs, First VF Offset / VF Stride and the RID arithmetic
  that gives each VF its own requester ID.
* :mod:`repro.hw.pcie.topology` — root complex, switches, downstream
  ports and Access Control Services; peer-to-peer routing either goes
  direct (the §4.3 security hole) or is redirected upstream through the
  IOMMU.
* :mod:`repro.hw.pcie.datapath` — a bandwidth-shared DMA path; its
  finite throughput is what caps SR-IOV inter-VM traffic at 2.8 Gbps in
  Fig. 13.
"""

from repro.hw.pcie.config_space import (
    CAP_ID_MSIX,
    ConfigSpace,
    EXT_CAP_ID_SRIOV,
)
from repro.hw.pcie.datapath import PcieDataPath
from repro.hw.pcie.sriov_cap import SriovCapability
from repro.hw.pcie.topology import (
    AcsViolation,
    DownstreamPort,
    PciFunction,
    RootComplex,
    Switch,
    format_rid,
    make_rid,
)

__all__ = [
    "AcsViolation",
    "CAP_ID_MSIX",
    "ConfigSpace",
    "DownstreamPort",
    "EXT_CAP_ID_SRIOV",
    "PciFunction",
    "PcieDataPath",
    "RootComplex",
    "SriovCapability",
    "Switch",
    "format_rid",
    "make_rid",
]
