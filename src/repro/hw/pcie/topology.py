"""PCIe topology: functions, switches, ACS and the root complex.

Two behaviours here carry the paper's §4.1 and §4.3:

* **VFs do not answer bus scans.**  A VF is a trimmed function without a
  full config header, so :meth:`RootComplex.scan` never finds one; the
  host uses the hot-add path (:meth:`RootComplex.hot_add`) after the PF
  driver enables VFs — mirroring the paper's use of Linux PCI hot-add
  APIs.
* **Peer-to-peer routing and ACS.**  A memory request from one VF aimed
  at a sibling VF's MMIO window can be routed *directly* inside a shared
  switch, bypassing the IOMMU — the security hole of §4.3.  Turning on
  ACS upstream redirect on the downstream ports forces the request up to
  the root complex where the IOMMU validates (and, for MMIO targets,
  rejects) it.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.hw.iommu import Iommu, IommuFault
from repro.hw.pcie.config_space import ConfigSpace, INVALID_VENDOR_ID


def make_rid(bus: int, device: int, function: int) -> int:
    """Encode bus:device.function into a 16-bit requester ID."""
    if not 0 <= bus <= 0xFF:
        raise ValueError("bus out of range")
    if not 0 <= device <= 0x1F:
        raise ValueError("device out of range")
    if not 0 <= function <= 0x7:
        raise ValueError("function out of range")
    return (bus << 8) | (device << 3) | function


def format_rid(rid: int) -> str:
    """Render a RID in the conventional ``bb:dd.f`` form."""
    return f"{(rid >> 8) & 0xFF:02x}:{(rid >> 3) & 0x1F:02x}.{rid & 0x7}"


class AcsViolation(RuntimeError):
    """A peer-to-peer transaction reached memory it must not touch."""


class PciFunction:
    """A PCIe function: config space + RID + optional MMIO window.

    ``responds_to_scan`` is False for VFs: they lack the full config
    header and are invisible to an ordinary vendor-ID probe (paper §4.1).
    """

    def __init__(self, config: ConfigSpace, responds_to_scan: bool = True,
                 name: str = ""):
        self.config = config
        self.responds_to_scan = responds_to_scan
        self.name = name
        self.rid: Optional[int] = None
        #: (base, size) of the function's MMIO window, if mapped.
        self.mmio_window: Optional[Tuple[int, int]] = None
        #: Handler invoked for MMIO writes that land in our window.
        self.on_mmio_write: Optional[Callable[[int, int], None]] = None
        self.mmio_writes_received = 0

    def map_mmio(self, base: int, size: int) -> None:
        if size <= 0:
            raise ValueError("MMIO window must have positive size")
        self.mmio_window = (base, size)
        self.config.set_bar(0, base)

    def owns_address(self, address: int) -> bool:
        if self.mmio_window is None:
            return False
        base, size = self.mmio_window
        return base <= address < base + size

    def deliver_mmio_write(self, address: int, value: int) -> None:
        self.mmio_writes_received += 1
        if self.on_mmio_write is not None:
            self.on_mmio_write(address, value)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        rid = format_rid(self.rid) if self.rid is not None else "unbound"
        return f"<PciFunction {self.name or 'anon'} rid={rid}>"


class DownstreamPort:
    """A switch downstream port with an ACS upstream-redirect control."""

    def __init__(self, index: int):
        self.index = index
        self.function: Optional[PciFunction] = None
        #: ACS P2P Request Redirect: when set, peer requests go upstream.
        self.acs_redirect = False

    def attach(self, function: PciFunction) -> None:
        self.function = function


class Switch:
    """A PCIe switch fanning one upstream link out to downstream ports."""

    def __init__(self, port_count: int, name: str = ""):
        if port_count <= 0:
            raise ValueError("switch needs downstream ports")
        self.name = name
        self.ports = [DownstreamPort(i) for i in range(port_count)]

    def port_of(self, function: PciFunction) -> Optional[DownstreamPort]:
        for port in self.ports:
            if port.function is function:
                return port
        return None

    def enable_acs_redirect(self) -> None:
        """Turn on upstream forwarding on every downstream port (§4.3)."""
        for port in self.ports:
            port.acs_redirect = True

    def functions(self) -> List[PciFunction]:
        return [port.function for port in self.ports if port.function is not None]


class RootComplex:
    """The host bridge: enumeration, hot-add, and transaction routing."""

    def __init__(self, iommu: Optional[Iommu] = None):
        self.iommu = iommu
        self._functions: Dict[int, PciFunction] = {}
        self._switches: List[Switch] = []
        self.hot_added: List[int] = []
        self.p2p_direct_routed = 0
        self.p2p_redirected = 0

    # ------------------------------------------------------------------
    # topology construction
    # ------------------------------------------------------------------
    def attach(self, function: PciFunction, bus: int, device: int,
               fn: int = 0) -> int:
        """Plug a function in at a fixed address; returns its RID."""
        rid = make_rid(bus, device, fn)
        if rid in self._functions:
            raise ValueError(f"RID {format_rid(rid)} already occupied")
        function.rid = rid
        self._functions[rid] = function
        return rid

    def attach_at_rid(self, function: PciFunction, rid: int) -> int:
        """Plug a function in at a raw RID (VFs use computed RIDs)."""
        if rid in self._functions:
            raise ValueError(f"RID {format_rid(rid)} already occupied")
        function.rid = rid
        self._functions[rid] = function
        return rid

    def detach(self, function: PciFunction) -> None:
        if function.rid is not None:
            self._functions.pop(function.rid, None)
            function.rid = None

    def add_switch(self, switch: Switch) -> None:
        self._switches.append(switch)

    # ------------------------------------------------------------------
    # enumeration
    # ------------------------------------------------------------------
    def probe(self, rid: int) -> int:
        """Read the vendor ID at ``rid`` the way a bus scan would.

        Functions that don't respond (VFs, empty slots) float high.
        """
        function = self._functions.get(rid)
        if function is None or not function.responds_to_scan:
            return INVALID_VENDOR_ID
        return function.config.vendor_id

    def scan(self) -> List[PciFunction]:
        """Enumerate all functions that answer a vendor-ID probe."""
        found = []
        for rid in sorted(self._functions):
            if self.probe(rid) != INVALID_VENDOR_ID:
                found.append(self._functions[rid])
        return found

    def hot_add(self, function: PciFunction, rid: int) -> None:
        """The Linux PCI hot-add path the IOVM uses to surface VFs."""
        self.attach_at_rid(function, rid)
        self.hot_added.append(rid)

    def function_at(self, rid: int) -> Optional[PciFunction]:
        return self._functions.get(rid)

    def all_functions(self) -> List[PciFunction]:
        return list(self._functions.values())

    # ------------------------------------------------------------------
    # transaction routing
    # ------------------------------------------------------------------
    def memory_write(self, source: PciFunction, address: int, value: int = 0,
                     is_dma_address: bool = True) -> str:
        """Route a memory request from ``source``.

        Returns the route taken: ``"direct-p2p"`` when a same-switch peer
        MMIO window swallowed it without IOMMU involvement (the §4.3
        hole), or ``"upstream"`` when it traversed the root complex and
        the IOMMU validated it.

        Raises :class:`AcsViolation` (for MMIO targets) or
        :class:`~repro.hw.iommu.IommuFault` (for DMA targets) when the
        upstream path rejects the access.
        """
        if source.rid is None:
            raise RuntimeError("source function is not attached")
        switch = self._switch_of(source)
        if switch is not None:
            peer = self._peer_window_hit(switch, source, address)
            if peer is not None:
                port = switch.port_of(source)
                assert port is not None
                if not port.acs_redirect:
                    # Routed inside the switch: no IOMMU, no protection.
                    self.p2p_direct_routed += 1
                    peer.deliver_mmio_write(address, value)
                    return "direct-p2p"
                self.p2p_redirected += 1
                # Redirected upstream: MMIO of another function is never
                # in the source VM's IOMMU mapping, so this is fatal.
                if self.iommu is not None:
                    try:
                        self.iommu.translate(source.rid, address, write=True)
                    except IommuFault as fault:
                        raise AcsViolation(
                            f"P2P write from {format_rid(source.rid)} to "
                            f"{address:#x} blocked upstream"
                        ) from fault
                raise AcsViolation(
                    f"P2P write from {format_rid(source.rid)} to {address:#x} "
                    "redirected upstream and rejected"
                )
        # Plain upstream DMA: translate through the IOMMU if present.
        if self.iommu is not None and is_dma_address:
            self.iommu.translate(source.rid, address, write=True)
        return "upstream"

    # ------------------------------------------------------------------
    def _switch_of(self, function: PciFunction) -> Optional[Switch]:
        for switch in self._switches:
            if switch.port_of(function) is not None:
                return switch
        return None

    @staticmethod
    def _peer_window_hit(switch: Switch, source: PciFunction,
                         address: int) -> Optional[PciFunction]:
        for peer in switch.functions():
            if peer is not source and peer.owns_address(address):
                return peer
        return None
