"""Hardware substrate: CPUs, interrupt controllers, IOMMU, PCIe, DMA.

These models carry the state the paper's architecture manipulates:

* :mod:`repro.hw.cpu` — cores with per-label cycle accounting; every CPU
  utilization number in the evaluation is ``cycles / (elapsed x clock)``.
* :mod:`repro.hw.lapic` — the local APIC state machine (IRR/ISR, EOI);
  used both as the physical APIC and as the state behind the virtual
  LAPIC the hypervisor emulates.
* :mod:`repro.hw.msi` — MSI / MSI-X capabilities with per-vector mask and
  pending bits (the registers whose emulation §5.1 accelerates).
* :mod:`repro.hw.iommu` — RID-indexed DMA remapping and protection.
* :mod:`repro.hw.pcie` — configuration space, SR-IOV extended capability,
  bus topology with ACS, and a bandwidth-shared PCIe data path.
* :mod:`repro.hw.dma` — descriptor rings as drivers and NICs see them.
"""

from repro.hw.cpu import CpuCore, Executor, Machine
from repro.hw.dma import Descriptor, DescriptorRing, RingFullError
from repro.hw.iommu import Iommu, IommuFault, IoPageTable, PAGE_SIZE
from repro.hw.lapic import Lapic, LapicError
from repro.hw.msi import MsiMessage, MsixCapability

__all__ = [
    "CpuCore",
    "Descriptor",
    "DescriptorRing",
    "Executor",
    "Iommu",
    "IommuFault",
    "IoPageTable",
    "Lapic",
    "LapicError",
    "Machine",
    "MsiMessage",
    "MsixCapability",
    "PAGE_SIZE",
    "RingFullError",
]
