"""The local APIC interrupt state machine.

Implements the IRR/ISR vector bookkeeping of an x86 local APIC: raising
a vector sets it in the Interrupt Request Register; the CPU acknowledges
the highest-priority requested vector, moving it to the In-Service
Register; writing End-Of-Interrupt retires the highest in-service vector
and allows the next to be dispatched (Intel SDM vol. 3, ch. 10 — the
paper's reference [9]).

This one state machine serves two masters:

* the *physical* per-core APIC that receives MSI messages from the NIC;
* the state behind the hypervisor's *virtual* LAPIC device model, whose
  EOI-write emulation cost is the subject of §5.2.
"""

from __future__ import annotations

from typing import List, Optional

#: MMIO offsets within the 4 KiB APIC page (Intel SDM).
APIC_OFFSET_ID = 0x020
APIC_OFFSET_TPR = 0x080
APIC_OFFSET_EOI = 0x0B0
APIC_OFFSET_ISR_BASE = 0x100
APIC_OFFSET_IRR_BASE = 0x200

#: Vectors 0-31 are architecture-reserved exceptions.
FIRST_USABLE_VECTOR = 32
VECTOR_COUNT = 256


class LapicError(RuntimeError):
    """Raised on architecturally invalid LAPIC operations."""


class Lapic:
    """IRR/ISR state machine for one (possibly virtual) CPU.

    The IRR and ISR are 256-bit registers on hardware and arbitrary-
    precision ints here: "highest-priority set vector" is then one
    ``int.bit_length()`` instead of a 224-entry reverse scan, and this
    sits on the per-interrupt critical path (every injection re-checks
    the interrupt window).  Vectors below :data:`FIRST_USABLE_VECTOR`
    can never be set — :meth:`fire` rejects them — so the top set bit
    *is* the highest usable vector.
    """

    def __init__(self, apic_id: int = 0):
        self.apic_id = apic_id
        self._irr = 0
        self._isr = 0
        self.tpr = 0
        #: Counts of spurious EOIs (EOI with nothing in service).
        self.spurious_eois = 0

    # ------------------------------------------------------------------
    # request side
    # ------------------------------------------------------------------
    def fire(self, vector: int) -> None:
        """Latch ``vector`` into the IRR (MSI delivery, IPI...)."""
        self._check_vector(vector)
        self._irr |= 1 << vector

    def irr_contains(self, vector: int) -> bool:
        self._check_vector(vector)
        return bool((self._irr >> vector) & 1)

    def isr_contains(self, vector: int) -> bool:
        self._check_vector(vector)
        return bool((self._isr >> vector) & 1)

    # ------------------------------------------------------------------
    # CPU side
    # ------------------------------------------------------------------
    @property
    def highest_pending(self) -> Optional[int]:
        """Highest-priority requested vector deliverable at current TPR."""
        irr = self._irr
        if not irr:
            return None
        vector = irr.bit_length() - 1
        if (vector >> 4) <= (self.tpr >> 4):
            return None  # masked by task priority
        return vector

    @property
    def in_service(self) -> Optional[int]:
        """Highest-priority vector currently being serviced."""
        isr = self._isr
        if not isr:
            return None
        return isr.bit_length() - 1

    @property
    def interrupt_window_open(self) -> bool:
        """True when a pending vector outranks everything in service."""
        irr = self._irr
        if not irr:
            return False
        pending = irr.bit_length() - 1
        if (pending >> 4) <= (self.tpr >> 4):
            return False
        isr = self._isr
        return not isr or (pending >> 4) > ((isr.bit_length() - 1) >> 4)

    def ack(self) -> int:
        """CPU accepts the highest pending vector: IRR -> ISR."""
        vector = self.highest_pending
        if vector is None:
            raise LapicError("INTA with no deliverable vector pending")
        if not self.interrupt_window_open:
            raise LapicError(f"vector {vector} does not outrank in-service")
        bit = 1 << vector
        self._irr &= ~bit
        self._isr |= bit
        return vector

    def eoi(self) -> Optional[int]:
        """Retire the highest in-service vector; returns it (or None).

        A spurious EOI (nothing in service) is counted but harmless, as
        on real hardware.
        """
        isr = self._isr
        if not isr:
            self.spurious_eois += 1
            return None
        vector = isr.bit_length() - 1
        self._isr = isr & ~(1 << vector)
        return vector

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def pending_vectors(self) -> List[int]:
        return [v for v in range(VECTOR_COUNT) if (self._irr >> v) & 1]

    def in_service_vectors(self) -> List[int]:
        return [v for v in range(VECTOR_COUNT) if (self._isr >> v) & 1]

    def reset(self) -> None:
        self._irr = 0
        self._isr = 0
        self.tpr = 0

    @staticmethod
    def _check_vector(vector: int) -> None:
        if not FIRST_USABLE_VECTOR <= vector < VECTOR_COUNT:
            raise LapicError(f"vector {vector} outside usable range "
                             f"[{FIRST_USABLE_VECTOR}, {VECTOR_COUNT})")
