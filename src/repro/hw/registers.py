"""Named MMIO register files with write side effects.

Device behaviour in this reproduction is ultimately driven through
registers, the way real drivers drive real silicon: the PF driver
programs receive-address registers to steer the L2 switch, the VF
driver programs its interrupt-throttle register, a device reset is a
bit in a control register.  :class:`RegisterFile` provides the plumbing:
32-bit registers at fixed offsets, reset values, read-only enforcement,
and per-register write hooks that connect bits to behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, Optional, Tuple


class RegisterError(RuntimeError):
    """Bad register access: unknown offset, write to read-only..."""


@dataclass
class Register:
    """One 32-bit register definition."""

    name: str
    offset: int
    reset_value: int = 0
    read_only: bool = False
    #: Called as hook(old_value, new_value) after a write lands.
    on_write: Optional[Callable[[int, int], None]] = None
    #: Called before a read; returns the value to present (dynamic
    #: status registers) or None to use the stored value.
    on_read: Optional[Callable[[], Optional[int]]] = None


class RegisterFile:
    """A sparse 32-bit MMIO register space."""

    def __init__(self, name: str = ""):
        self.name = name
        self._by_offset: Dict[int, Register] = {}
        self._by_name: Dict[str, Register] = {}
        self._values: Dict[int, int] = {}
        self.reads = 0
        self.writes = 0

    # ------------------------------------------------------------------
    # definition
    # ------------------------------------------------------------------
    def define(self, name: str, offset: int, reset_value: int = 0,
               read_only: bool = False,
               on_write: Optional[Callable[[int, int], None]] = None,
               on_read: Optional[Callable[[], Optional[int]]] = None) -> Register:
        if offset % 4:
            raise RegisterError(f"register {name!r} offset {offset:#x} "
                                "not dword aligned")
        if offset in self._by_offset:
            raise RegisterError(f"offset {offset:#x} already defined "
                                f"({self._by_offset[offset].name})")
        if name in self._by_name:
            raise RegisterError(f"register name {name!r} already defined")
        register = Register(name, offset, reset_value, read_only,
                            on_write, on_read)
        self._by_offset[offset] = register
        self._by_name[name] = register
        self._values[offset] = reset_value & 0xFFFFFFFF
        return register

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    def read(self, offset: int) -> int:
        register = self._require(offset)
        self.reads += 1
        if register.on_read is not None:
            dynamic = register.on_read()
            if dynamic is not None:
                self._values[offset] = dynamic & 0xFFFFFFFF
        return self._values[offset]

    def write(self, offset: int, value: int) -> None:
        register = self._require(offset)
        if register.read_only:
            raise RegisterError(f"register {register.name} is read-only")
        self.writes += 1
        old = self._values[offset]
        self._values[offset] = value & 0xFFFFFFFF
        if register.on_write is not None:
            register.on_write(old, value & 0xFFFFFFFF)

    def read_by_name(self, name: str) -> int:
        return self.read(self._named(name).offset)

    def write_by_name(self, name: str, value: int) -> None:
        self.write(self._named(name).offset, value)

    def poke(self, name: str, value: int) -> None:
        """Hardware-side update (bypasses read-only and hooks)."""
        register = self._named(name)
        self._values[register.offset] = value & 0xFFFFFFFF

    def peek(self, name: str) -> int:
        """Hardware-side read (no hooks, no statistics)."""
        return self._values[self._named(name).offset]

    def reset(self) -> None:
        """Device reset: all registers to their reset values."""
        for offset, register in self._by_offset.items():
            self._values[offset] = register.reset_value & 0xFFFFFFFF

    # ------------------------------------------------------------------
    def registers(self) -> Iterator[Tuple[str, int, int]]:
        """(name, offset, current value) in offset order."""
        for offset in sorted(self._by_offset):
            register = self._by_offset[offset]
            yield register.name, offset, self._values[offset]

    def _require(self, offset: int) -> Register:
        register = self._by_offset.get(offset)
        if register is None:
            raise RegisterError(
                f"{self.name}: access to undefined register {offset:#x}")
        return register

    def _named(self, name: str) -> Register:
        register = self._by_name.get(name)
        if register is None:
            raise RegisterError(f"{self.name}: no register named {name!r}")
        return register
