"""The invariant auditor: conservation laws, checked at runtime.

Every check is *exact* — each one is an identity the implementation
maintains by construction, verified against every mutation site, so a
violation is always a real bug (or a deliberately seeded one in the
tests), never noise.  The audited laws:

* **packet-pool** — :class:`~repro.net.packet.PacketPool` accounting:
  ``acquired == next_seq``, the free list never exceeds what was ever
  acquired, and no packet sits on the free list twice (a double
  release would hand the same object to two owners).
* **nic-flow** — per network function, every offered RX packet is
  accounted exactly once: ``rx_offered == rx_packets +
  rx_no_desc_drops + rx_dma_faults + rx_corrupt_drops``.
* **descriptor-ring** — ownership partition on every enabled
  function's rings: cursors in range, the cursor-order identity
  ``device_owned + pending_completions == posted_window``, and the
  done-bit window — a slot's ``done`` writeback is set *iff* its index
  lies in ``[_clean, head)``.
* **lapic** — IRR/ISR bitmask consistency: no architecture-reserved
  vector (< 32) and no bit beyond the 256-vector register width.
* **cycle-ledger** — every cycle the ledger attributes was also
  charged to some physical core: ``ledger.total_cycles <=
  machine.cycles()`` (small float tolerance).
* **event-queue** — engine accounting (``live + cancelled`` equals the
  entries physically queued across heap/wheel/current bucket), the
  heap property, and timer-wheel sanity (count, exact ``next_slot``,
  slot-homogeneous buckets).
* **packet-buffer** — VMDq queue occupancy:
  ``len == enqueued - dequeued - cleared``.

The auditor never calls :meth:`~repro.sim.engine.Simulator.peek` (which
has side effects) and the default end-of-run audit schedules nothing,
so audited fault-free runs stay byte-identical to unaudited ones.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, List, Mapping, Optional

from repro.hw.lapic import FIRST_USABLE_VECTOR, VECTOR_COUNT
from repro.sim.wheel import FAR_SLOT

#: Schema tag of the on-disk repro dump a violation writes.
DUMP_SCHEMA = "repro-audit-dump/1"

#: Relative tolerance for the ledger-vs-machine float comparison: both
#: sides sum millions of float charges in different orders.
_LEDGER_RTOL = 1e-6


def default_dump_dir() -> str:
    """Where violation dumps land: ``$REPRO_AUDIT_DIR`` or a local dir."""
    return os.environ.get("REPRO_AUDIT_DIR", ".repro-audit")


class InvariantViolation(RuntimeError):
    """A conservation law did not hold.

    Carries the failed check's name, the simulated time, a details dict
    naming the offending component and numbers, and the path of the
    repro dump (when one was written).
    """

    def __init__(self, check: str, message: str, *, sim_time: float,
                 details: Optional[Mapping[str, object]] = None,
                 dump_path: Optional[str] = None):
        location = f" [dump: {dump_path}]" if dump_path else ""
        super().__init__(f"invariant {check!r} violated at "
                         f"t={sim_time:.9f}: {message}{location}")
        self.check = check
        self.sim_time = sim_time
        self.details: Dict[str, object] = dict(details or {})
        self.dump_path = dump_path


class InvariantAuditor:
    """Opt-out runtime checker registered on a Testbed.

    ``context`` is whatever the caller wants in the repro dump —
    :func:`repro.api.run` passes ``{"scenario": ..., "seed": ...}`` so
    the dump alone reproduces the failing run.
    """

    def __init__(self, bed, context: Optional[Mapping[str, object]] = None,
                 dump_dir: Optional[os.PathLike] = None):
        self.bed = bed
        self.context: Dict[str, object] = dict(context or {})
        self.dump_dir = dump_dir
        #: Completed audit passes (each runs every check).
        self.audits = 0
        self.violations = 0
        self._interval_handle = None

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def install(self, interval: float) -> None:
        """Audit every ``interval`` simulated seconds until run end.

        Periodic audits consume event-queue sequence numbers, so they
        are opt-in: the default end-of-run audit keeps the event stream
        (and therefore all results) byte-identical.
        """
        if interval <= 0:
            raise ValueError("audit interval must be positive")
        self._interval = interval
        self._interval_handle = self.bed.sim.schedule(interval, self._tick)

    def _tick(self) -> None:
        self.audit(phase="interval")
        self._interval_handle = self.bed.sim.schedule(self._interval,
                                                      self._tick)

    # ------------------------------------------------------------------
    # the audit pass
    # ------------------------------------------------------------------
    def audit(self, phase: str = "end") -> int:
        """Run every check; returns how many ran.  Raises
        :class:`InvariantViolation` (after writing the repro dump) on
        the first failure."""
        checks = (
            self._check_packet_pool,
            self._check_nic_flow,
            self._check_rings,
            self._check_lapics,
            self._check_ledger,
            self._check_event_queue,
            self._check_packet_buffers,
        )
        for check in checks:
            check(phase)
        self.audits += 1
        return len(checks)

    def _fail(self, check: str, message: str,
              details: Optional[Mapping[str, object]] = None) -> None:
        self.violations += 1
        sim_time = self.bed.sim.now
        dump_path = self._write_dump(check, message, sim_time, details)
        raise InvariantViolation(check, message, sim_time=sim_time,
                                 details=details, dump_path=dump_path)

    def _write_dump(self, check: str, message: str, sim_time: float,
                    details: Optional[Mapping[str, object]]) -> Optional[str]:
        """The minimal repro: scenario + seed + sim time, as JSON."""
        root = Path(self.dump_dir if self.dump_dir is not None
                    else default_dump_dir())
        seed = getattr(self.bed.config, "seed", None)
        document = {
            "schema": DUMP_SCHEMA,
            "check": check,
            "message": message,
            "sim_time": sim_time,
            "seed": seed,
            "details": _jsonable(details or {}),
            "context": _jsonable(self.context),
        }
        try:
            root.mkdir(parents=True, exist_ok=True)
            stem = f"{check}-seed{seed}-pid{os.getpid()}"
            path = root / f"{stem}.json"
            counter = 0
            while path.exists():
                counter += 1
                path = root / f"{stem}-{counter}.json"
            with open(path, "w") as handle:
                json.dump(document, handle, sort_keys=True, indent=1)
                handle.write("\n")
            return str(path)
        except OSError:
            return None  # the violation still raises; the dump is best-effort

    # ------------------------------------------------------------------
    # individual checks
    # ------------------------------------------------------------------
    def _check_packet_pool(self, phase: str) -> None:
        pool = self.bed.packet_pool
        if pool is None:
            return
        free = pool._free
        if pool.acquired != pool.next_seq:
            self._fail("packet-pool",
                       f"acquired={pool.acquired} != "
                       f"next_seq={pool.next_seq}",
                       {"acquired": pool.acquired,
                        "next_seq": pool.next_seq})
        if len(free) > pool.acquired:
            self._fail("packet-pool",
                       f"free list holds {len(free)} packets but only "
                       f"{pool.acquired} were ever acquired",
                       {"free": len(free), "acquired": pool.acquired})
        seen = set()
        for packet in free:
            ident = id(packet)
            if ident in seen:
                self._fail("packet-pool",
                           f"packet seq={packet.seq} pooled twice "
                           "(double release)",
                           {"seq": packet.seq, "free": len(free)})
            seen.add(ident)
            if packet.seq >= pool.next_seq:
                self._fail("packet-pool",
                           f"pooled packet seq={packet.seq} >= "
                           f"next_seq={pool.next_seq}",
                           {"seq": packet.seq,
                            "next_seq": pool.next_seq})

    def _net_functions(self):
        for port in self.bed.ports:
            for fn in [port.pf] + list(port.vfs):
                yield port, fn

    def _check_nic_flow(self, phase: str) -> None:
        for port, fn in self._net_functions():
            accounted = (fn.rx_packets + fn.rx_no_desc_drops
                         + fn.rx_dma_faults + fn.rx_corrupt_drops)
            if fn.rx_offered != accounted:
                self._fail("nic-flow",
                           f"{fn.name}: rx_offered={fn.rx_offered} != "
                           f"accepted+dropped={accounted}",
                           {"function": fn.name, "port": port.name,
                            "rx_offered": fn.rx_offered,
                            "rx_packets": fn.rx_packets,
                            "rx_no_desc_drops": fn.rx_no_desc_drops,
                            "rx_dma_faults": fn.rx_dma_faults,
                            "rx_corrupt_drops": fn.rx_corrupt_drops})

    def _check_rings(self, phase: str) -> None:
        for port, fn in self._net_functions():
            if not fn.enabled:
                continue  # a reset/disabled function's rings are in flux
            for ring in (fn.rx_ring, fn.tx_ring):
                self._check_one_ring(fn.name, ring)

    def _check_one_ring(self, owner: str, ring) -> None:
        size = ring.size
        head, tail, clean = ring.head, ring.tail, ring._clean
        for cursor, value in (("head", head), ("tail", tail),
                              ("clean", clean)):
            if not 0 <= value < size:
                self._fail("descriptor-ring",
                           f"{owner}/{ring.name}: cursor {cursor}="
                           f"{value} out of range [0, {size})",
                           {"ring": ring.name, "owner": owner,
                            "cursor": cursor, "value": value,
                            "size": size})
        device_owned = (tail - head) % size
        pending = (head - clean) % size
        window = (tail - clean) % size
        if device_owned + pending != window:
            self._fail("descriptor-ring",
                       f"{owner}/{ring.name}: ownership partition broken "
                       f"(device={device_owned} + pending={pending} != "
                       f"window={window})",
                       {"ring": ring.name, "owner": owner, "head": head,
                        "tail": tail, "clean": clean,
                        "device_owned": device_owned,
                        "pending_completions": pending,
                        "posted_window": window})
        for index, slot in enumerate(ring.slots):
            in_window = (index - clean) % size < pending
            if slot.done != in_window:
                expected = "set" if in_window else "clear"
                self._fail("descriptor-ring",
                           f"{owner}/{ring.name}: slot {index} done bit "
                           f"should be {expected} (clean={clean}, "
                           f"head={head}, tail={tail})",
                           {"ring": ring.name, "owner": owner,
                            "slot": index, "done": slot.done,
                            "head": head, "tail": tail, "clean": clean})

    def _check_lapics(self, phase: str) -> None:
        reserved = (1 << FIRST_USABLE_VECTOR) - 1
        domains = getattr(self.bed.platform, "domains", {})
        for domain in domains.values():
            lapic = getattr(domain, "lapic", None)
            if lapic is None:
                continue
            registers = lapic._irr | lapic._isr
            if registers & reserved:
                vector = (registers & reserved).bit_length() - 1
                self._fail("lapic",
                           f"{domain.name}: architecture-reserved vector "
                           f"{vector} latched",
                           {"domain": domain.name, "vector": vector,
                            "irr": lapic._irr, "isr": lapic._isr})
            if registers >> VECTOR_COUNT:
                self._fail("lapic",
                           f"{domain.name}: vector beyond register width "
                           f"({VECTOR_COUNT}) latched",
                           {"domain": domain.name, "irr": lapic._irr,
                            "isr": lapic._isr})

    def _check_ledger(self, phase: str) -> None:
        platform = self.bed.platform
        ledger = getattr(platform, "ledger", None)
        machine = getattr(platform, "machine", None)
        if ledger is None or machine is None:
            return
        attributed = ledger.total_cycles
        charged = machine.cycles()
        if attributed > charged * (1 + _LEDGER_RTOL) + 1.0:
            self._fail("cycle-ledger",
                       f"ledger attributes {attributed:.0f} cycles but "
                       f"cores were charged only {charged:.0f}",
                       {"ledger_cycles": attributed,
                        "machine_cycles": charged})

    def _check_event_queue(self, phase: str) -> None:
        sim = self.bed.sim
        stats = sim.queue_stats()
        queued = stats["heap"] + stats["wheel"] + stats["current"]
        accounted = stats["live"] + stats["cancelled"]
        if accounted != queued:
            self._fail("event-queue",
                       f"live+cancelled={accounted} != queued "
                       f"entries={queued}",
                       dict(stats))
        heap = sim._heap
        length = len(heap)
        for index in range(1, length):
            if heap[index] < heap[(index - 1) >> 1]:
                self._fail("event-queue",
                           f"heap property broken at index {index}",
                           {"index": index,
                            "entry_time": heap[index][0],
                            "parent_time": heap[(index - 1) >> 1][0]})
        wheel = sim._wheel
        bucketed = sum(len(bucket) for bucket in wheel.buckets)
        if bucketed != wheel.count:
            self._fail("event-queue",
                       f"wheel count={wheel.count} != bucketed entries="
                       f"{bucketed}", {"count": wheel.count,
                                       "bucketed": bucketed})
        if wheel.count == 0:
            if wheel.next_slot != FAR_SLOT:
                self._fail("event-queue",
                           "empty wheel with a finite next_slot hint",
                           {"next_slot": wheel.next_slot})
            return
        smallest = FAR_SLOT
        for bucket in wheel.buckets:
            slots = {int(entry[0] * wheel.inv_width) for entry in bucket}
            if len(slots) > 1:
                self._fail("event-queue",
                           "wheel bucket mixes absolute slots "
                           f"{sorted(slots)}",
                           {"slots": sorted(slots)})
            if slots:
                smallest = min(smallest, min(slots))
        if smallest != wheel.next_slot:
            self._fail("event-queue",
                       f"wheel next_slot={wheel.next_slot} but smallest "
                       f"populated slot is {smallest}",
                       {"next_slot": wheel.next_slot,
                        "smallest": smallest})

    def _check_packet_buffers(self, phase: str) -> None:
        port = getattr(self.bed, "_vmdq_port", None)
        if port is None:
            return
        for queue in port.queues:
            buffer = queue.rx
            stats = buffer.stats
            expected = stats.enqueued - stats.dequeued - stats.cleared
            if len(buffer) != expected:
                self._fail("packet-buffer",
                           f"{buffer.name}: depth {len(buffer)} != "
                           f"enqueued-dequeued-cleared={expected}",
                           {"buffer": buffer.name, "depth": len(buffer),
                            "enqueued": stats.enqueued,
                            "dequeued": stats.dequeued,
                            "cleared": stats.cleared})


def check_fabric_conservation(tor, *, sim_time: float = 0.0) -> None:
    """Fabric ingress/egress conservation for a
    :class:`~repro.net.fabric.ToRSwitch`.

    Every frame offered to :meth:`~repro.net.fabric.ToRSwitch.route`
    must be accounted exactly once: forwarded, tail-dropped at the
    queue bound, dropped for an unknown destination, or drained at a
    silenced (crashed/paused) endpoint under a cluster fault plan.  The
    ToR lives with the cluster coordinator, not inside any one testbed,
    so this check is a standalone function (the coordinator runs it
    when it aggregates; :class:`InvariantAuditor` covers the per-host
    laws).
    """
    drained = getattr(tor, "drained", 0)
    accounted = tor.forwarded + tor.dropped + tor.unknown_dst + drained
    if tor.offered != accounted:
        raise InvariantViolation(
            "fabric-flow",
            f"offered={tor.offered} != "
            f"forwarded+dropped+unknown_dst+drained={accounted}",
            sim_time=sim_time,
            details={"offered": tor.offered, "forwarded": tor.forwarded,
                     "dropped": tor.dropped,
                     "unknown_dst": tor.unknown_dst,
                     "drained": drained})


def _jsonable(value):
    """Best-effort JSON projection for dump payloads."""
    try:
        return json.loads(json.dumps(value, default=repr))
    except (TypeError, ValueError):
        return repr(value)
