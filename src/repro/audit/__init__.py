"""Runtime invariant auditing for the simulated testbed.

A datapath bug — a :class:`~repro.hw.dma.DescriptorRing` ownership slip,
a double-released pooled packet, a cycle charged to the ledger but not
to a core — does not crash the simulation; it quietly skews the
throughput and CPU numbers the figures report.  This package makes such
bugs *loud*: :class:`InvariantAuditor` registers on a
:class:`~repro.core.testbed.Testbed` (opt-out, on by default) and
checks the testbed's conservation laws at run end and, optionally, at a
configurable simulated-time interval.  A failed check raises a
structured :class:`InvariantViolation` after writing a minimal repro
dump (scenario JSON + seed + sim time) to disk.

The default end-of-run audit is observation-only: it schedules no
events and mutates no state, so fault-free audited runs are
byte-identical to unaudited ones (asserted in ``tests/audit``).
"""

from repro.audit.auditor import (
    DUMP_SCHEMA,
    InvariantAuditor,
    InvariantViolation,
    check_fabric_conservation,
    default_dump_dir,
)

__all__ = [
    "DUMP_SCHEMA",
    "InvariantAuditor",
    "InvariantViolation",
    "check_fabric_conservation",
    "default_dump_dir",
]
