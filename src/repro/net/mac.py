"""MAC addresses and VLAN identifiers.

The SR-IOV NIC's on-chip layer-2 switch classifies incoming packets by
(MAC, VLAN) pairs programmed by the PF driver (paper §4.1); these are the
keys it matches on.
"""

from __future__ import annotations

from typing import Iterator

#: Sentinel for "no VLAN tag".
VLAN_NONE = 0
#: 802.1Q VLAN IDs are 12 bits; 0 and 4095 are reserved.
VLAN_MAX = 4094


class MacAddress:
    """An immutable 48-bit MAC address."""

    __slots__ = ("_value",)

    def __init__(self, value: int):
        if not 0 <= value < (1 << 48):
            raise ValueError(f"MAC address out of range: {value:#x}")
        self._value = value

    @classmethod
    def parse(cls, text: str) -> "MacAddress":
        """Parse the conventional colon-separated form."""
        parts = text.split(":")
        if len(parts) != 6:
            raise ValueError(f"malformed MAC address: {text!r}")
        value = 0
        for part in parts:
            byte = int(part, 16)
            if not 0 <= byte <= 0xFF:
                raise ValueError(f"malformed MAC address: {text!r}")
            value = (value << 8) | byte
        return cls(value)

    @property
    def value(self) -> int:
        return self._value

    @property
    def is_multicast(self) -> bool:
        """True when the I/G bit of the first octet is set."""
        return bool((self._value >> 40) & 0x01)

    @property
    def is_broadcast(self) -> bool:
        return self._value == (1 << 48) - 1

    def __eq__(self, other: object) -> bool:
        return isinstance(other, MacAddress) and self._value == other._value

    def __hash__(self) -> int:
        return hash(self._value)

    def __str__(self) -> str:
        octets = [(self._value >> shift) & 0xFF for shift in range(40, -8, -8)]
        return ":".join(f"{octet:02x}" for octet in octets)

    def __repr__(self) -> str:
        return f"MacAddress('{self}')"


#: The Ethernet broadcast address.
BROADCAST = MacAddress((1 << 48) - 1)


class MacAllocator:
    """Hands out locally administered unicast MAC addresses.

    The PF driver uses one of these per port to assign each VF a stable
    MAC (paper §4.1: "device specific configurations such as MAC address
    ... for a network SR-IOV-capable device").
    """

    #: Locally-administered (bit 1), unicast (bit 0 clear) OUI prefix.
    _BASE = 0x02_00_00_00_00_00

    def __init__(self, port_index: int = 0, realm: int = 0):
        if port_index < 0 or port_index > 0xFF:
            raise ValueError("port index must fit in one octet")
        if realm < 0 or realm > 0xFF:
            raise ValueError("realm must fit in one octet")
        self._next = self._BASE | (realm << 24) | (port_index << 16)
        self._port_limit = self._next + 0x10000

    def allocate(self) -> MacAddress:
        """Return the next unused address for this port."""
        if self._next >= self._port_limit:
            raise RuntimeError("MAC allocator exhausted for this port")
        mac = MacAddress(self._next)
        self._next += 1
        return mac

    def allocate_many(self, count: int) -> Iterator[MacAddress]:
        for _ in range(count):
            yield self.allocate()


def validate_vlan(vlan: int) -> int:
    """Validate a VLAN id (VLAN_NONE means untagged) and return it."""
    if vlan != VLAN_NONE and not 1 <= vlan <= VLAN_MAX:
        raise ValueError(f"VLAN id out of range: {vlan}")
    return vlan
