"""Network substrate: packets, addressing, links, buffers, transport models.

The reproduction never runs a real network stack; it models the pieces the
paper's evaluation depends on:

* Ethernet framing arithmetic (:mod:`repro.net.packet`) — wire overhead is
  what turns a 1 Gbps line into the paper's 957 Mbps UDP / 940 Mbps TCP
  goodput figures.
* MAC/VLAN addressing (:mod:`repro.net.mac`) — the NIC's layer-2 switch
  classifies on these (paper §4.1).
* Point-to-point links (:mod:`repro.net.link`) with serialization delay and
  tail-drop queues.
* Bounded packet buffers (:mod:`repro.net.buffers`) — the device-driver and
  socket/application buffers whose overflow behaviour drives the adaptive
  interrupt coalescing design (paper §5.3).
* A window/RTT TCP throughput model (:mod:`repro.net.tcp`) — captures TCP's
  latency sensitivity, the reason 1 kHz coalescing loses 9.6 % throughput
  in Fig. 9.
* netperf-style workload generators (:mod:`repro.net.netperf`).
"""

from repro.net.buffers import BufferStats, PacketBuffer
from repro.net.link import Link
from repro.net.mac import MacAddress, MacAllocator, VLAN_NONE
from repro.net.packet import (
    ETHERNET_OVERHEAD_BYTES,
    IP_HEADER_BYTES,
    Packet,
    Protocol,
    TCP_HEADER_BYTES,
    UDP_HEADER_BYTES,
    tcp_goodput_bps,
    udp_goodput_bps,
    wire_bytes,
)
from repro.net.netperf import NetperfResult, NetperfStream
from repro.net.tcp import TcpThroughputModel

__all__ = [
    "BufferStats",
    "ETHERNET_OVERHEAD_BYTES",
    "IP_HEADER_BYTES",
    "Link",
    "MacAddress",
    "MacAllocator",
    "NetperfResult",
    "NetperfStream",
    "Packet",
    "PacketBuffer",
    "Protocol",
    "TCP_HEADER_BYTES",
    "TcpThroughputModel",
    "UDP_HEADER_BYTES",
    "VLAN_NONE",
    "tcp_goodput_bps",
    "udp_goodput_bps",
    "wire_bytes",
]
