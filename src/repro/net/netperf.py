"""netperf-style workload generators.

The paper's client machine runs netperf (UDP_STREAM / TCP_STREAM) against
a netserver in each guest (§6.1).  :class:`NetperfStream` reproduces that
as a packet-batch source: it offers traffic at a target rate to a sink
(normally a NIC port) in bursts, so a one-second run at 81 kpps costs the
event engine only ``rate/burst`` events instead of one per packet.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.net.mac import MacAddress, VLAN_NONE
from repro.net.packet import (
    DEFAULT_MTU,
    Packet,
    PacketPool,
    Protocol,
    packets_per_second,
)
from repro.sim.engine import EventHandle, Simulator
from repro.sim.stats import Counter


@dataclass
class NetperfResult:
    """What a netperf run reports back."""

    offered_pps: float
    sent_packets: int
    sent_bytes: int
    duration: float

    @property
    def offered_bps(self) -> float:
        if self.duration <= 0:
            return 0.0
        return self.sent_bytes * 8 / self.duration


class NetperfStream:
    """A constant-rate packet-batch source.

    Parameters
    ----------
    sink:
        Called with a list of packets per burst; typically a NIC port's
        ingress or a VF's transmit entry point.
    throughput_bps:
        Target application goodput; converted to a packet rate using the
        protocol's framing arithmetic.
    burst_interval:
        How often to emit a batch.  250 µs keeps batches small relative to
        driver buffers while holding event counts down.
    jitter:
        Relative burst-size jitter (0 = deterministic).  With e.g. 0.3,
        each burst's packet count is scaled by a uniform factor in
        [0.7, 1.3] drawn from ``rng``, preserving the long-run rate —
        the bursty-arrival stress the AIC redundancy factor absorbs.
    """

    def __init__(
        self,
        sim: Simulator,
        sink: Callable[[List[Packet]], None],
        src: MacAddress,
        dst: MacAddress,
        throughput_bps: float,
        protocol: Protocol = Protocol.UDP,
        mtu: int = DEFAULT_MTU,
        message_bytes: Optional[int] = None,
        vlan: int = VLAN_NONE,
        flow_id: int = 0,
        burst_interval: float = 250e-6,
        jitter: float = 0.0,
        rng=None,
        name: str = "netperf",
        pool: Optional[PacketPool] = None,
    ):
        if throughput_bps < 0:
            raise ValueError("throughput must be non-negative")
        if burst_interval <= 0:
            raise ValueError("burst interval must be positive")
        if not 0 <= jitter < 1:
            raise ValueError("jitter must be in [0, 1)")
        if jitter and rng is None:
            raise ValueError("jitter requires an rng (a random.Random)")
        self.jitter = jitter
        self.rng = rng
        self.sim = sim
        self.sink = sink
        self.src = src
        self.dst = dst
        self.protocol = protocol
        self.mtu = mtu
        self.vlan = vlan
        self.flow_id = flow_id
        self.burst_interval = burst_interval
        self.name = name
        #: Optional run-scoped allocator (deterministic seqs + reuse);
        #: without one, packets come off the module-global sequence.
        self.pool = pool
        self.message_bytes = message_bytes
        self.pps = packets_per_second(throughput_bps, mtu, protocol)
        self.sent = Counter(f"{name}.sent")
        self.sent_bytes = Counter(f"{name}.sent_bytes")
        self._carry: float = 0.0
        self._running = False
        self._started_at: float = 0.0
        self._stopped_at: Optional[float] = None
        self._tick_handle: Optional[EventHandle] = None
        #: Installed by :class:`repro.sim.fluid.FluidFlow` when this
        #: stream is eligible for the collapsed-window fast path.
        self._fluid = None

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin offering traffic at the configured rate."""
        if self._running:
            return
        self._running = True
        self._started_at = self.sim.now
        self._stopped_at = None
        if self._fluid is not None and self._fluid.begin():
            return
        self._tick_handle = self.sim.schedule(self.burst_interval, self._tick)

    def stop(self) -> NetperfResult:
        """Stop the stream and report what was offered."""
        if self._running:
            if self._fluid is not None:
                # Exact stop semantics first: catch up the collapsed
                # ticks, then fall through to cancel the re-armed tick.
                self._fluid.decollapse()
            self._running = False
            self._stopped_at = self.sim.now
            if self._tick_handle is not None:
                self._tick_handle.cancel()
                self._tick_handle = None
        end = self._stopped_at if self._stopped_at is not None else self.sim.now
        return NetperfResult(
            offered_pps=self.pps,
            sent_packets=int(self.sent.value),
            sent_bytes=int(self.sent_bytes.value),
            duration=end - self._started_at,
        )

    @property
    def running(self) -> bool:
        return self._running

    def set_rate(self, throughput_bps: float) -> None:
        """Retarget the offered goodput (used by rate sweeps)."""
        if throughput_bps < 0:
            raise ValueError("throughput must be non-negative")
        if self._fluid is not None:
            # Collapsed ticks were computed at the old rate; replay
            # them before the rate changes, then stay exact.
            self._fluid.decollapse()
        self.pps = packets_per_second(throughput_bps, self.mtu, self.protocol)

    # ------------------------------------------------------------------
    def _tick(self) -> None:
        if not self._running:
            return
        quota = self.pps * self.burst_interval
        if self.jitter:
            # Scale this burst; the carry keeps the long-run rate exact.
            quota *= 1.0 + self.rng.uniform(-self.jitter, self.jitter)
        quota += self._carry
        count = int(quota)
        self._carry = quota - count
        if count > 0:
            now = self.sim.now
            pool = self.pool
            if pool is not None:
                burst = pool.acquire_burst(count, self.src, self.dst,
                                           self.mtu, self.vlan,
                                           self.protocol, self.flow_id, now)
            else:
                burst = [
                    Packet(self.src, self.dst, self.mtu, self.vlan,
                           self.protocol, self.flow_id, now)
                    for _ in range(count)
                ]
            # Direct increments: every packet is mtu-sized, so the byte
            # count is exactly the sum the per-packet loop produced.
            self.sent.value += count
            self.sent_bytes.value += count * self.mtu
            self.sink(burst)
        self._tick_handle = self.sim.schedule(self.burst_interval, self._tick)
