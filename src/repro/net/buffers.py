"""Bounded packet buffers with drop accounting.

Buffer sizing is central to the paper's adaptive interrupt coalescing
(§5.3): the interrupt interval must stay short enough that
``pps × t_d`` never exceeds ``min(ap_bufs, dd_bufs)`` or the receive path
drops packets — exactly the RX-throughput collapse shown in Fig. 10 for
fixed 2 kHz / 1 kHz coalescing.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional

from repro.net.packet import Packet


@dataclass
class BufferStats:
    """Cumulative accounting for a :class:`PacketBuffer`."""

    enqueued: int = 0
    dequeued: int = 0
    dropped: int = 0
    #: Packets discarded by :meth:`PacketBuffer.clear` (device reset);
    #: counted so occupancy stays an exact conservation law —
    #: ``len(buffer) == enqueued - dequeued - cleared`` always holds.
    cleared: int = 0
    peak_depth: int = 0

    @property
    def drop_rate(self) -> float:
        offered = self.enqueued + self.dropped
        return self.dropped / offered if offered else 0.0


class PacketBuffer:
    """A FIFO of packets with a hard capacity and tail-drop semantics.

    Models both the device-driver descriptor backlog (``dd_bufs`` = 1024
    descriptors in the paper's default guest) and the socket/application
    buffer (``ap_bufs`` = 64).
    """

    def __init__(self, capacity: int, name: str = ""):
        if capacity <= 0:
            raise ValueError("buffer capacity must be positive")
        self.capacity = capacity
        self.name = name
        self._queue: Deque[Packet] = deque()
        self.stats = BufferStats()

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def free(self) -> int:
        return self.capacity - len(self._queue)

    @property
    def full(self) -> bool:
        return len(self._queue) >= self.capacity

    def push(self, packet: Packet) -> bool:
        """Enqueue; returns False (and counts a drop) when full."""
        if self.full:
            self.stats.dropped += 1
            return False
        self._queue.append(packet)
        self.stats.enqueued += 1
        self.stats.peak_depth = max(self.stats.peak_depth, len(self._queue))
        return True

    def push_burst(self, packets: List[Packet]) -> int:
        """Enqueue a burst; returns how many were accepted."""
        accepted = 0
        for packet in packets:
            if self.push(packet):
                accepted += 1
        return accepted

    def pop(self) -> Optional[Packet]:
        """Dequeue the oldest packet, or None when empty."""
        if not self._queue:
            return None
        self.stats.dequeued += 1
        return self._queue.popleft()

    def pop_burst(self, limit: int) -> List[Packet]:
        """Dequeue up to ``limit`` packets (NAPI-style budgeted poll)."""
        if limit < 0:
            raise ValueError("burst limit must be non-negative")
        burst: List[Packet] = []
        while self._queue and len(burst) < limit:
            burst.append(self._queue.popleft())
        self.stats.dequeued += len(burst)
        return burst

    def drain(self) -> List[Packet]:
        """Dequeue everything."""
        return self.pop_burst(len(self._queue))

    def clear(self) -> None:
        """Discard contents without counting drops (device reset)."""
        self.stats.cleared += len(self._queue)
        self._queue.clear()
