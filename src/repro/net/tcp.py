"""A window/RTT TCP throughput model.

The paper's Fig. 9 shows TCP_STREAM throughput is flat at 940 Mbps for
20 kHz, 2 kHz and AIC interrupt coalescing, but drops 9.6 % at 1 kHz —
"reflecting the fact that TCP throughput is more latency sensitive"
(§5.3).  The mechanism is classic bandwidth-delay arithmetic: delaying RX
interrupts delays ACK generation, inflating the effective RTT; once
``window / RTT`` falls below the line's goodput, throughput becomes
window-limited.

We model exactly that: ``throughput = min(line_goodput, window*8 / RTT)``
where ``RTT = base_rtt + ack_delay``.  A segment lands uniformly at random
within the coalescing window, so its ACK waits on average *half* the
interrupt interval.

Calibration: with the classic 64 KiB unscaled TCP window and a 116 µs base
RTT, the model reproduces the paper's measured 9.6 % drop at 1 kHz while
staying line-limited at 2 kHz and 20 kHz — the exact Fig. 9 shape.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.packet import DEFAULT_MTU, tcp_goodput_bps

#: Effective TCP window: the classic 64 KiB unscaled receive window
#: (RHEL5U1 netperf runs without window scaling on a LAN).
DEFAULT_WINDOW_BYTES = 64 * 1024

#: LAN base RTT between two directly connected hosts (§6.1: "the client
#: and server machines are directly connected").  116 µs calibrates the
#: model to the paper's measured 9.6 % TCP drop at 1 kHz coalescing.
DEFAULT_BASE_RTT = 116e-6


@dataclass
class TcpThroughputModel:
    """Predicts steady-state TCP goodput under interrupt coalescing.

    Parameters
    ----------
    window_bytes:
        Effective (min of congestion and receive) window.
    base_rtt:
        Round-trip time excluding interrupt-coalescing delay.
    """

    window_bytes: int = DEFAULT_WINDOW_BYTES
    base_rtt: float = DEFAULT_BASE_RTT

    def __post_init__(self) -> None:
        if self.window_bytes <= 0:
            raise ValueError("window must be positive")
        if self.base_rtt <= 0:
            raise ValueError("base RTT must be positive")

    def effective_rtt(self, interrupt_interval: float) -> float:
        """RTT including the mean ACK delay added by RX coalescing.

        A segment arrives uniformly within the coalescing window, so the
        expected wait for the next interrupt is half the interval.
        """
        if interrupt_interval < 0:
            raise ValueError("interrupt interval must be non-negative")
        return self.base_rtt + interrupt_interval / 2

    def window_limited_bps(self, interrupt_interval: float) -> float:
        """Throughput permitted by window/RTT alone."""
        return self.window_bytes * 8 / self.effective_rtt(interrupt_interval)

    def throughput_bps(
        self,
        line_rate_bps: float,
        interrupt_interval: float,
        mtu: int = DEFAULT_MTU,
    ) -> float:
        """Steady-state goodput under the given coalescing interval."""
        line_goodput = tcp_goodput_bps(line_rate_bps, mtu)
        return min(line_goodput, self.window_limited_bps(interrupt_interval))

    def crossover_interval(self, line_rate_bps: float, mtu: int = DEFAULT_MTU) -> float:
        """The coalescing interval at which TCP stops filling the line.

        Below this interval throughput is line-limited; above it, the
        window limit bites — this is where Fig. 9's 1 kHz point lives.
        """
        line_goodput = tcp_goodput_bps(line_rate_bps, mtu)
        return 2 * (self.window_bytes * 8 / line_goodput - self.base_rtt)
