"""Packets and Ethernet framing arithmetic.

The paper reports per-port goodput of 957 Mbps (UDP_STREAM) and 940 Mbps
(TCP_STREAM) on 1 Gbps links (§5.3, Figs. 8-9).  Those numbers are pure
framing arithmetic, reproduced here from first principles:

* on-wire cost per frame = preamble (8) + frame (14 hdr + payload + 4 CRC)
  + inter-packet gap (12) = payload + 38 bytes;
* UDP payload per 1500-byte MTU frame = 1500 − 20 (IP) − 8 (UDP) = 1472;
  goodput = 1472 / 1538 × 1 Gbps = 957.1 Mbps;
* TCP payload = 1500 − 20 (IP) − 32 (TCP + timestamps) = 1448;
  goodput = 1448 / 1538 × 1 Gbps = 941.5 Mbps.
"""

from __future__ import annotations

import itertools
import sys
from enum import Enum

from repro.net.mac import MacAddress, VLAN_NONE

#: Ethernet header (14) + CRC (4).
ETHERNET_HEADER_BYTES = 14
ETHERNET_CRC_BYTES = 4
#: Preamble + start-frame delimiter (8) and minimum inter-packet gap (12).
ETHERNET_PREAMBLE_BYTES = 8
ETHERNET_IPG_BYTES = 12
#: Total per-frame overhead beyond the IP packet itself.
ETHERNET_OVERHEAD_BYTES = (
    ETHERNET_HEADER_BYTES
    + ETHERNET_CRC_BYTES
    + ETHERNET_PREAMBLE_BYTES
    + ETHERNET_IPG_BYTES
)
#: 802.1Q tag inserted when a VLAN is present.
VLAN_TAG_BYTES = 4

IP_HEADER_BYTES = 20
UDP_HEADER_BYTES = 8
#: TCP header with the timestamp option netperf negotiates (20 + 12).
TCP_HEADER_BYTES = 32

DEFAULT_MTU = 1500


class Protocol(Enum):
    """Transport protocol carried by a packet."""

    UDP = "udp"
    TCP = "tcp"


#: Process-wide fallback sequence, used only for packets created outside
#: a :class:`PacketPool`.  Simulations that must replay identically
#: within one process route all packet creation through a per-testbed
#: pool, whose sequence restarts at 0 for every run.
_sequence = itertools.count()


class Packet:
    """A modelled network packet (one MTU-sized frame unless stated).

    ``size_bytes`` is the IP packet size (headers included, Ethernet
    framing excluded); use :func:`wire_bytes` for the on-wire cost.

    A plain slotted class rather than a dataclass: the simulation
    creates hundreds of thousands of these per simulated second, and
    construction cost is the benchmark suite's hottest line.
    """

    __slots__ = ("src", "dst", "size_bytes", "vlan", "protocol",
                 "flow_id", "created_at", "seq")

    def __init__(self, src: MacAddress, dst: MacAddress,
                 size_bytes: int = DEFAULT_MTU, vlan: int = VLAN_NONE,
                 protocol: Protocol = Protocol.UDP, flow_id: int = 0,
                 created_at: float = 0.0):
        if size_bytes <= 0:
            raise ValueError("packet size must be positive")
        self.src = src
        self.dst = dst
        self.size_bytes = size_bytes
        self.vlan = vlan
        self.protocol = protocol
        self.flow_id = flow_id
        self.created_at = created_at
        self.seq = next(_sequence)

    @property
    def payload_bytes(self) -> int:
        """Application payload after IP + transport headers."""
        header = UDP_HEADER_BYTES if self.protocol is Protocol.UDP else TCP_HEADER_BYTES
        return max(0, self.size_bytes - IP_HEADER_BYTES - header)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Packet(seq={self.seq}, {self.src}->{self.dst}, "
                f"{self.size_bytes}B, {self.protocol.value})")


#: A packet with no references outside a release() call shows exactly
#: this refcount (burst list + loop variable + getrefcount argument).
#: Refcounts are a CPython notion; elsewhere pooling quietly disables.
_RELEASE_RC = 3 if sys.implementation.name == "cpython" else -1


class PacketPool:
    """A run-scoped :class:`Packet` allocator.

    Two jobs, both in service of the scaling figures' hot path:

    * **Deterministic ids.**  The pool owns its own sequence counter,
      restarting at 0, so a (scenario, seed) pair replays with
      identical ``Packet.seq`` values no matter how many runs preceded
      it in the process — unlike the module-global fallback sequence.
      Each testbed owns one pool.
    * **Object reuse.**  ``acquire_burst`` recycles released packets via
      ``Packet.__new__`` plus plain field writes, skipping ``__init__``
      validation on the hottest allocation site in the simulation.
      ``release`` only pools packets that provably have no outside
      references (``sys.getrefcount``), so a held packet — buffered in
      a queue, parked in a ring slot — is never mutated under its
      holder; it simply falls back to the garbage collector.
    """

    __slots__ = ("_free", "_seq", "acquired")

    def __init__(self) -> None:
        self._free: list = []
        self._seq = 0
        #: Total packets ever handed out; the invariant auditor checks
        #: it against ``next_seq`` and the free list's size.
        self.acquired = 0

    @property
    def next_seq(self) -> int:
        """The sequence number the next acquired packet will get."""
        return self._seq

    def acquire_burst(self, count: int, src: MacAddress, dst: MacAddress,
                      size_bytes: int = DEFAULT_MTU, vlan: int = VLAN_NONE,
                      protocol: Protocol = Protocol.UDP, flow_id: int = 0,
                      created_at: float = 0.0) -> list:
        """``count`` packets sharing one header tuple, consecutive seqs."""
        if size_bytes <= 0:
            raise ValueError("packet size must be positive")
        seq = self._seq
        self._seq = seq + count
        self.acquired += count
        free = self._free
        new = Packet.__new__
        burst = []
        append = burst.append
        for _ in range(count):
            packet = free.pop() if free else new(Packet)
            packet.src = src
            packet.dst = dst
            packet.size_bytes = size_bytes
            packet.vlan = vlan
            packet.protocol = protocol
            packet.flow_id = flow_id
            packet.created_at = created_at
            packet.seq = seq
            seq += 1
            append(packet)
        return burst

    def release(self, burst: list) -> None:
        """Return fully-consumed packets to the pool.

        Safe to call with packets someone still references: the
        refcount gate skips them.
        """
        free = self._free
        rc = sys.getrefcount
        for packet in burst:
            if rc(packet) == _RELEASE_RC:
                free.append(packet)


def wire_bytes(size_bytes: int, vlan: int = VLAN_NONE) -> int:
    """On-wire bytes consumed by an IP packet of ``size_bytes``."""
    tag = VLAN_TAG_BYTES if vlan != VLAN_NONE else 0
    return size_bytes + ETHERNET_OVERHEAD_BYTES + tag


def frames_for_message(message_bytes: int, mtu: int = DEFAULT_MTU,
                       protocol: Protocol = Protocol.UDP) -> int:
    """Number of MTU-limited frames a transport message fragments into."""
    if message_bytes <= 0:
        raise ValueError("message must be positive")
    header = UDP_HEADER_BYTES if protocol is Protocol.UDP else TCP_HEADER_BYTES
    payload_per_frame = mtu - IP_HEADER_BYTES - header
    return -(-message_bytes // payload_per_frame)  # ceil division


def udp_goodput_bps(line_rate_bps: float, mtu: int = DEFAULT_MTU,
                    vlan: int = VLAN_NONE) -> float:
    """Maximum UDP application goodput on a line of ``line_rate_bps``."""
    payload = mtu - IP_HEADER_BYTES - UDP_HEADER_BYTES
    return line_rate_bps * payload / wire_bytes(mtu, vlan)


def tcp_goodput_bps(line_rate_bps: float, mtu: int = DEFAULT_MTU,
                    vlan: int = VLAN_NONE) -> float:
    """Maximum TCP application goodput on a line of ``line_rate_bps``."""
    payload = mtu - IP_HEADER_BYTES - TCP_HEADER_BYTES
    return line_rate_bps * payload / wire_bytes(mtu, vlan)


def packets_per_second(throughput_bps: float, mtu: int = DEFAULT_MTU,
                       protocol: Protocol = Protocol.UDP) -> float:
    """Packet rate needed to carry ``throughput_bps`` of goodput."""
    header = UDP_HEADER_BYTES if protocol is Protocol.UDP else TCP_HEADER_BYTES
    payload = mtu - IP_HEADER_BYTES - header
    if payload <= 0:
        raise ValueError("MTU too small for headers")
    return throughput_bps / (payload * 8)
