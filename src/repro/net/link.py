"""Point-to-point Ethernet links.

A :class:`Link` models one direction of a full-duplex line: frames are
serialized at the line rate (including Ethernet preamble/IPG overhead),
experience a fixed propagation delay, and are handed to the receiver's
``receive(packet)`` method.  Frames offered while the transmitter is busy
queue up to ``queue_frames`` deep, then tail-drop — saturating a 1 Gbps
port at exactly its line rate, which is what pins the paper's per-port
throughput at 957 Mbps.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.net.packet import Packet, wire_bytes
from repro.sim.engine import Simulator
from repro.sim.stats import Counter


class Link:
    """One direction of a full-duplex point-to-point Ethernet line."""

    def __init__(
        self,
        sim: Simulator,
        rate_bps: float,
        propagation_delay: float = 0.0,
        queue_frames: int = 128,
        name: str = "",
    ):
        if rate_bps <= 0:
            raise ValueError("link rate must be positive")
        if queue_frames < 0:
            raise ValueError("queue depth must be non-negative")
        self.sim = sim
        self.rate_bps = rate_bps
        self.propagation_delay = propagation_delay
        self.queue_frames = queue_frames
        self.name = name
        self._sink: Optional[Callable[[Packet], None]] = None
        #: Carrier state (the cable itself).  Frames offered while the
        #: carrier is down drop — a real NIC's TX DMA into a dead line.
        self._up: bool = True
        #: Simulated time at which the transmitter becomes idle.
        self._tx_free_at: float = 0.0
        self._queued: int = 0
        self.delivered = Counter(f"{name}.delivered")
        self.delivered_bytes = Counter(f"{name}.delivered_bytes")
        self.dropped = Counter(f"{name}.dropped")

    def connect(self, sink: Callable[[Packet], None]) -> None:
        """Attach the receiver callback for this direction."""
        self._sink = sink

    def serialization_delay(self, packet: Packet) -> float:
        """Time to clock the frame (with Ethernet overhead) onto the wire."""
        return wire_bytes(packet.size_bytes, packet.vlan) * 8 / self.rate_bps

    @property
    def up(self) -> bool:
        return self._up

    def set_carrier(self, up: bool) -> None:
        """Raise or cut the line's carrier (fabric-side cable pull)."""
        self._up = bool(up)

    @property
    def busy(self) -> bool:
        return self.sim.now < self._tx_free_at

    @property
    def queue_depth(self) -> int:
        return self._queued

    def transmit(self, packet: Packet) -> bool:
        """Offer a frame for transmission.

        Returns False (drop) if the transmit queue is full.  Otherwise the
        frame is delivered to the sink after queuing + serialization +
        propagation delay.
        """
        if self._sink is None:
            raise RuntimeError(f"link {self.name!r} has no receiver connected")
        if not self._up:
            self.dropped.add()
            return False
        start = max(self.sim.now, self._tx_free_at)
        backlog_delay = start - self.sim.now
        # Frames ahead of us in the queue are already accounted inside
        # _tx_free_at; the queue bound is on how far ahead we may book.
        if backlog_delay > 0:
            if self._queued >= self.queue_frames:
                self.dropped.add()
                return False
            self._queued += 1
        serialization = self.serialization_delay(packet)
        self._tx_free_at = start + serialization
        arrival = self._tx_free_at + self.propagation_delay
        self.sim.schedule_at(arrival, self._deliver, packet, backlog_delay > 0)
        return True

    def utilization(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` seconds the line spent transmitting."""
        if elapsed <= 0:
            return 0.0
        busy = min(self._tx_free_at, self.sim.now)
        return min(1.0, (self.delivered_bytes.value * 8 / self.rate_bps) / elapsed)

    def _deliver(self, packet: Packet, was_queued: bool) -> None:
        if was_queued:
            self._queued -= 1
        self.delivered.add()
        self.delivered_bytes.add(wire_bytes(packet.size_bytes, packet.vlan))
        assert self._sink is not None
        self._sink(packet)


def duplex_pair(
    sim: Simulator,
    rate_bps: float,
    propagation_delay: float = 0.0,
    queue_frames: int = 128,
    name: str = "link",
) -> "tuple[Link, Link]":
    """Create the two directions of a full-duplex line."""
    forward = Link(sim, rate_bps, propagation_delay, queue_frames, f"{name}.fwd")
    backward = Link(sim, rate_bps, propagation_delay, queue_frames, f"{name}.rev")
    return forward, backward
