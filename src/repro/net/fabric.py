"""The top-of-rack fabric: what connects SR-IOV hosts to each other.

The paper evaluates one server; a rack of them needs a switch.  This
module models the minimal deterministic ToR: every host hangs off one
uplink (its NIC ports' wire side), and the switch forwards frames
between hosts with a fixed one-way latency plus store-and-forward
serialization at the fabric rate, tail-dropping when a destination's
egress queue is over-booked.

The switch deliberately has **no event engine of its own**.  It is pure
arithmetic over timestamps, driven by the cluster coordinator
(:mod:`repro.cluster`): host engines hand it egress records, it answers
with arrival times.  That keeps it trivially correct under the
conservative lockstep synchronization — the same code computes the same
floats whether the hosts run serially in one process or one process
each — and makes the fabric latency the synchronization lookahead
(SimBricks' insight: engines may free-run inside one link delay because
nothing can cross the fabric faster than it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional

from repro.net.packet import DEFAULT_MTU, wire_bytes

#: Default fabric port speed: a 10 GbE ToR in front of 1 GbE hosts.
DEFAULT_UPLINK_GBPS = 10.0
#: Default one-way ToR latency (cut-through switch + a few meters of
#: copper); also the conservative-sync lookahead, so it must be > 0.
DEFAULT_LATENCY_S = 5e-6
#: Default per-egress-port queue bound, in MTU-sized frames.
DEFAULT_QUEUE_FRAMES = 256


@dataclass(frozen=True)
class FabricSpec:
    """Declarative fabric description (the ``Scenario.fabric`` field).

    Plain JSON-able values only, like every Scenario field: the dict
    form is the canonical form the sweep cache hashes.
    """

    uplink_gbps: float = DEFAULT_UPLINK_GBPS
    latency_s: float = DEFAULT_LATENCY_S
    queue_frames: int = DEFAULT_QUEUE_FRAMES

    def __post_init__(self):
        if self.uplink_gbps <= 0:
            raise ValueError("fabric uplink_gbps must be positive")
        if self.latency_s <= 0:
            raise ValueError(
                "fabric latency_s must be positive: it is the conservative "
                "synchronization lookahead between host engines")
        if self.queue_frames < 1:
            raise ValueError("fabric queue_frames must be at least 1")

    @property
    def rate_bps(self) -> float:
        return self.uplink_gbps * 1e9

    def to_dict(self) -> Dict[str, object]:
        return {"uplink_gbps": float(self.uplink_gbps),
                "latency_s": float(self.latency_s),
                "queue_frames": int(self.queue_frames)}

    @classmethod
    def from_dict(cls, data: Optional[Mapping]) -> "FabricSpec":
        if not data:
            return cls()
        known = {"uplink_gbps", "latency_s", "queue_frames"}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(f"unknown fabric fields: {unknown} "
                             f"(valid fields: {sorted(known)})")
        return cls(**{k: data[k] for k in known if k in data})


class ToRSwitch:
    """Deterministic store-and-forward arithmetic between host uplinks.

    ``route`` maps one egress record — ``{"t": wire time at the source
    host's uplink, "dst": destination MAC as int, ...}`` — to the same
    record with ``"dst_host"`` and ``"arrival"`` filled in, or ``None``
    when the frame is dropped (unknown destination, or the egress queue
    bound exceeded).  Per-destination egress serialization is booked in
    call order, so callers must route frames in a globally deterministic
    order (the coordinator sorts by (time, source host, sequence)).
    """

    def __init__(self, spec: FabricSpec, host_count: int):
        self.spec = spec
        self._mac_to_host: Dict[int, int] = {}
        #: When each destination's fabric egress port goes idle.
        self._free_at: List[float] = [0.0] * host_count
        #: Deepest tolerated egress backlog, in seconds of line time.
        self._queue_bound_s = (spec.queue_frames *
                               wire_bytes(DEFAULT_MTU) * 8 / spec.rate_bps)
        #: Frames handed to :meth:`route` since the last counter reset.
        #: Conservation: ``offered == forwarded + dropped + unknown_dst
        #: + drained`` (asserted by
        #: :func:`repro.audit.check_fabric_conservation`).
        self.offered = 0
        self.forwarded = 0
        self.forwarded_bytes = 0
        self.dropped = 0
        self.unknown_dst = 0
        #: Frames from/to a silenced (crashed or paused) host — they
        #: left the wire but the endpoint was gone, so they are neither
        #: forwarded nor queue drops.
        self.drained = 0
        #: Sub-buckets of ``dropped`` (cluster fault attribution).
        self.dropped_partition = 0
        self.dropped_unreachable = 0
        #: Cluster fault timeline (:mod:`repro.faults.cluster`); None
        #: on fault-free fabrics, which keeps :meth:`route` the exact
        #: arithmetic it always was.
        self._timeline = None

    # ------------------------------------------------------------------
    # MAC learning (static: programmed from each host's VF table)
    # ------------------------------------------------------------------
    def learn(self, mac_value: int, host_index: int) -> None:
        if not 0 <= host_index < len(self._free_at):
            raise ValueError(f"host index {host_index} out of range")
        self._mac_to_host[mac_value] = host_index

    def host_for(self, mac_value: int) -> Optional[int]:
        return self._mac_to_host.get(mac_value)

    # ------------------------------------------------------------------
    # cluster fault timeline
    # ------------------------------------------------------------------
    def set_timeline(self, timeline) -> None:
        """Attach a :class:`~repro.faults.cluster.ClusterFaultTimeline`.

        Timeline checks are pure time-interval filters on the message
        timestamps, so routing stays deterministic arithmetic — the
        fault schedule is static plan data, never runtime state.
        """
        self._timeline = timeline

    def drain(self, count: int = 1) -> None:
        """Account frames that left a wire but met a silenced endpoint
        (used by the coordinator for frames already in flight when a
        host crashes)."""
        self.offered += count
        self.drained += count

    # ------------------------------------------------------------------
    # forwarding
    # ------------------------------------------------------------------
    def route(self, message: dict) -> Optional[dict]:
        """Route one record of ``count`` equal-sized frames (default 1).

        The queue bound is applied per frame, not per record: frame *k*
        of the burst sees a queueing delay of ``(start - ready) +
        k * serialization``, so a burst that straddles the bound keeps
        the fitting prefix and tail-drops only the remainder — dropping
        the whole record would punish frames that had queue room.  The
        returned record's ``count`` is the accepted prefix length and
        ``arrival`` is when its last frame clears the egress port.
        """
        count = message.get("count", 1)
        self.offered += count
        timeline = self._timeline
        t = message["t"]
        if timeline is not None and timeline.silenced(
                message.get("src_host"), t):
            # A paused/crashed host's frames never made it off the NIC
            # onto the fabric — but the guest stack already booked them
            # as offered, so account them as drained, not forwarded.
            self.drained += count
            return None
        dst_host = self._mac_to_host.get(message["dst"])
        if dst_host is None:
            self.unknown_dst += count
            return None
        if timeline is None:
            ready = t + self.spec.latency_s
            rate_factor = 1.0
        else:
            if timeline.partitioned(message.get("src_host"), dst_host, t):
                self.dropped += count
                self.dropped_partition += count
                return None
            ready = t + (self.spec.latency_s *
                         timeline.latency_factor(
                             message.get("src_host"), dst_host, t))
            if timeline.unreachable(dst_host, ready):
                # Every cable of the destination host is unplugged: the
                # ToR's egress port has no carrier, frames black-hole.
                self.dropped += count
                self.dropped_unreachable += count
                return None
            rate_factor = timeline.rate_factor(
                message.get("src_host"), dst_host, t)
        start = max(ready, self._free_at[dst_host])
        queued = start - ready
        if queued > self._queue_bound_s:
            self.dropped += count
            return None
        frame_bytes = wire_bytes(message["size"], message["vlan"])
        serialize_s = frame_bytes * 8 * rate_factor / self.spec.rate_bps
        fit = count
        if count > 1 and serialize_s > 0.0:
            fit = min(count,
                      int((self._queue_bound_s - queued) / serialize_s) + 1)
        arrival = start + fit * serialize_s
        if timeline is not None and timeline.silenced(dst_host, arrival):
            # The destination pauses/crashes before the frames clear the
            # egress port: they drain at the ToR.  No _free_at booking —
            # nothing was actually clocked onto the dead port.
            self.drained += count
            return None
        self._free_at[dst_host] = arrival
        self.forwarded += fit
        self.forwarded_bytes += fit * frame_bytes
        if fit < count:
            self.dropped += count - fit
            message["count"] = fit
        message["dst_host"] = dst_host
        message["arrival"] = arrival
        return message

    def reset_counters(self) -> None:
        """Zero the traffic counters (measurement-window bookkeeping);
        the egress ``free_at`` bookings are simulation state and stay."""
        self.offered = 0
        self.forwarded = 0
        self.forwarded_bytes = 0
        self.dropped = 0
        self.unknown_dst = 0
        self.drained = 0
        self.dropped_partition = 0
        self.dropped_unreachable = 0

    def counters(self) -> Dict[str, int]:
        counters = {"offered": self.offered,
                    "forwarded": self.forwarded,
                    "forwarded_bytes": self.forwarded_bytes,
                    "dropped": self.dropped,
                    "unknown_dst": self.unknown_dst}
        # The fault buckets appear only on faulted fabrics so fault-free
        # cluster extras stay byte-identical to every earlier release.
        if self._timeline is not None:
            counters["drained"] = self.drained
            counters["dropped_partition"] = self.dropped_partition
            counters["dropped_unreachable"] = self.dropped_unreachable
        return counters
