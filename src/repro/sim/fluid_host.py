"""The fluid fast path for cluster hosts (fig. 22's scale-out runs).

A cluster host's steady state is the single-host one plus a wire: each
guest's netperf stream ticks, the VF transmits onto the port's uplink
:class:`~repro.net.link.Link`, the frame surfaces as an egress record
for the ToR, and inbound fabric deliveries replay into the port's wire
receive and the VF's interrupt chain.  Exact simulation spends one
event per tick, one per in-flight wire frame, one per fabric arrival
and one per throttle fire; :class:`FluidHostFlow` collapses all four.

The flow unifies the transmit side, the uplink mirror and the receive
side of one (guest, port) pair — the eligibility gates pin one stream
and one guest per port, so every virtual event source on the port
belongs to this flow and the merge is a **total order**, the same
construction as :class:`~repro.sim.fluid.FluidLoopbackFlow`: each
virtual *schedule* draws a flow-local virtual sequence number in the
same order the exact engine hands out handle seqs, and the four clocks
(tick, staged wire delivery, fabric arrival, pending fire) merge by
``(time, virtual seq)``.  Fabric arrivals are stamped at injection
time — the top of :meth:`Host.advance`, in coordinator-sorted order —
exactly where the exact host schedules its ``_ingress`` handles.

Two cluster-specific pieces:

* **The uplink mirror.**  ``Link.transmit``'s books (``_tx_free_at``,
  the queue depth, the drop counter) are evolved against the *live*
  link at tick replay time; the delivery becomes a staged virtual
  event.  Replaying it bumps the link's delivered counters and appends
  the egress record — without a sequence number — to the host's
  staging list.  :meth:`Host.advance` flushes the list sorted by
  delivery time and assigns sequence numbers then, which reproduces
  the exact run's egress order (Link deliveries execute in time
  order; cross-port ties are measure-zero).  Because the sequence
  column is host-global, collapse is **all-or-nothing per host**: one
  ineligible stream keeps the whole host exact
  (:meth:`Host._evict_fluid`).

* **The lockstep contract.**  The barrier's no-time-travel proof needs
  every future egress time visible in :meth:`Host.peek`, so the peek
  floor includes each flow's next tick and its earliest staged wire
  delivery.  Pending *fires* are deliberately invisible: they produce
  no egress, so fluid windows can span them — fewer, larger windows
  than the exact run (window count is pure synchronization; results
  are unaffected).

The exactness contract is the same byte-identical-or-fallback one as
the single-host flows, with the same measure-zero tie caveats plus
two cluster-specific ones: equal-time egress records from different
ports order by staging rather than engine seq, and handles re-created
at decollapse draw fresh sequence numbers.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple

from repro.devices.igb82576 import TX_BACKLOG_LIMIT
from repro.net.packet import Protocol, wire_bytes
from repro.sim.fluid import FluidFlow

_PROTOCOLS = {p.value: p for p in Protocol}


class FluidHostFlow(FluidFlow):
    """One collapsed (guest, port) pair on a cluster host: TX ticks,
    uplink wire, fabric arrivals and the RX interrupt chain."""

    #: The total virtual order makes the fire-before-tick window proof
    #: unnecessary (and lets adaptive ITR reprogram freely).
    _min_window = 0.0

    def __init__(self, host, guest, stream):
        super().__init__(host.bed, guest, stream)
        self.host = host
        self._link = guest.port.uplink
        #: Frames serialized onto the uplink but not yet delivered:
        #: (arrival, virtual seq, tick time, was_queued).  Appended in
        #: arrival order — the link serializes, so ``_tx_free_at`` is
        #: monotone — which keeps the deque head the earliest.
        self._in_flight: Deque[Tuple[float, int, float, bool]] = deque()
        #: Fabric deliveries accepted for this window, not yet replayed:
        #: (arrival, virtual seq, message).
        self._arrivals: Deque[Tuple[float, int, dict]] = deque()
        #: The flow-local stand-in for engine handle seq numbers.
        self._cseq = 1
        self._tick_cseq = 0
        self._fire_cseq = 0
        #: The inbound frame shape the replay is specialized to:
        #: (src, dst, size, vlan, protocol, flow_id), learned from the
        #: first arrival.  A frame that differs evicts the host.
        self._rx_shape: Optional[tuple] = None
        #: Wire-side frame size of the local stream (TX mirror).
        self._wire_frame = wire_bytes(stream.mtu, stream.vlan)

    # ------------------------------------------------------------------
    # eligibility
    # ------------------------------------------------------------------
    def try_attach(self) -> bool:
        vf = self.vf
        stream = self.stream
        # Transmit-side gates (all side-effect free): the tick replay
        # assumes every packet clears anti-spoof and the rate limiter
        # and reaches the uplink.
        if self._link is None:
            return self._reject("no_uplink")
        assigned = self.port.switch._function_macs.get(vf.function_index)
        if assigned is not None and assigned != stream.src:
            return self._reject("tx_spoof")
        if vf.tx_rate_limit_bps > 0:
            return self._reject("tx_rate_limit")
        return super().try_attach()

    def _route_gate(self) -> Optional[str]:
        # The stream must leave on the wire: a locally-switched dst
        # would take the internal-loopback path this replay does not
        # model (FluidLoopbackFlow's job, on a single-host bed).
        if self.port.switch.is_local(self.stream.dst, self.stream.vlan):
            return "tx_local_dst"
        return None

    def _still_valid(self) -> bool:
        return (super()._still_valid()
                and self.port.uplink is self._link
                and self.vf.tx_rate_limit_bps <= 0)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def begin(self) -> bool:
        if self.active:
            return True
        if not super().begin():
            return False
        self._in_flight.clear()
        self._arrivals.clear()
        self._cseq = 1
        self._tick_cseq = 0
        self._fire_cseq = 0
        self._rx_shape = None
        # The wire_receive prologue settles through this hook; it is
        # also Host.advance's per-port handle for diverting inbound.
        self.port._fluid_tx = self
        return True

    def detach(self) -> None:
        """Unhook every attach-time installation (attach failure on a
        sibling stream, or a host-wide eviction)."""
        if self.stream._fluid is self:
            self.stream._fluid = None
        if getattr(self.driver, "_fluid", None) is self:
            self.driver._fluid = None
        if self.vf.fluid_listener == self.interval_reprogrammed:
            self.vf.fluid_listener = None
        if self.port._fluid_tx is self:
            self.port._fluid_tx = None

    # ------------------------------------------------------------------
    # fabric ingress (called from Host.advance, before sim.run)
    # ------------------------------------------------------------------
    def accept_arrival(self, message: dict) -> bool:
        """Take one inbound fabric message into the virtual queue.

        Returns False — caller must evict the host — when the frame is
        not the single unicast shape the collapsed replay handles.
        Virtual seqs are drawn here, at the moment (and in the order)
        the exact host would create the ``_ingress`` handles.
        """
        shape = (message["src"], message["dst"], message["size"],
                 message["vlan"], message["protocol"], message["flow_id"])
        rx_shape = self._rx_shape
        if rx_shape is None:
            vf = self.vf
            if message["dst"] != vf.mac.value:
                return False
            if self.port.switch.resolve_unicast(
                    vf.mac, message["vlan"]) != vf.function_index:
                return False
            self._rx_shape = shape
            self._deliver_mtu = message["size"]
            self._deliver_protocol = _PROTOCOLS[message["protocol"]]
        elif shape != rx_shape:
            return False
        self._arrivals.append((message["arrival"], self._cseq, message))
        self._cseq += 1
        return True

    def next_time(self) -> float:
        """The earliest future virtual event that can produce output
        the coordinator must see (peek floor).  Fires are internal —
        leaving them out is what makes fluid windows wider."""
        t = self._t_next
        in_flight = self._in_flight
        if in_flight and in_flight[0][0] < t:
            t = in_flight[0][0]
        return t

    # ------------------------------------------------------------------
    # the four-way merged virtual event loop
    # ------------------------------------------------------------------
    def _advance(self, limit: float, inclusive: bool) -> None:
        sim = self.sim
        in_flight = self._in_flight
        arrivals = self._arrivals
        while True:
            t = self._t_next
            c = self._tick_cseq
            kind = 0
            if in_flight:
                head = in_flight[0]
                if (head[0], head[1]) < (t, c):
                    t = head[0]
                    c = head[1]
                    kind = 1
            if arrivals:
                head = arrivals[0]
                if (head[0], head[1]) < (t, c):
                    t = head[0]
                    c = head[1]
                    kind = 2
            fire_at = self._fire_at
            if fire_at is not None and (fire_at, self._fire_cseq) < (t, c):
                t = fire_at
                kind = 3
            if not (t < limit or (inclusive and t == limit)):
                return
            if kind == 0:
                self._replay_tx_tick()
            elif kind == 1:
                arrival, _c, tick_time, was_queued = in_flight.popleft()
                self._replay_wire_deliver(arrival, tick_time, was_queued)
            elif kind == 2:
                arrival, _c, message = arrivals.popleft()
                self._replay_arrival(arrival, message)
            else:
                self._fire_at = None
                self._replay_fire(t)
            sim.collapsed_events += 1

    def _replay_tx_tick(self) -> None:
        """One sender tick: ``NetperfStream._tick`` -> ``transmit`` ->
        ``hw_transmit`` -> ``route_transmit`` -> ``Link.transmit`` per
        packet, with the DMA crossing and the line's serialization
        booked against the live objects and each delivery staged as a
        virtual event."""
        count, tick_time = self._next_tick()
        cseq = self._cseq
        if count > 0:
            stream = self.stream
            mtu = stream.mtu
            stream.sent.value += count
            stream.sent_bytes.value += count * mtu
            driver = self.driver
            if driver.running:
                # The driver's transmit charges the whole burst —
                # packets dropped further down included.
                driver.domain.charge_guest(
                    driver.costs.guest_cycles_per_packet * count)
                vf = self.vf
                if vf.enabled:
                    port = self.port
                    datapath = port.datapath
                    link = self._link
                    busy = datapath._busy_until
                    dma = mtu * 8 / datapath.effective_bps
                    ser = self._wire_frame * 8 / link.rate_bps
                    prop = link.propagation_delay
                    queue_frames = link.queue_frames
                    tx_free = link._tx_free_at
                    queued = link._queued
                    in_flight = self._in_flight
                    sent = 0
                    dma_count = 0
                    drops = 0
                    for _ in range(count):
                        # route_transmit: the FIFO-backlog bound first;
                        # past it, the DMA crossing and wire counter
                        # are booked even if the line queue tail-drops.
                        if busy - tick_time > TX_BACKLOG_LIMIT:
                            drops += 1
                            continue
                        start = busy if busy > tick_time else tick_time
                        busy = start + dma
                        dma_count += 1
                        port.wire_tx_packets += 1
                        # Link.transmit, mirrored without the event.
                        start = tx_free if tx_free > tick_time else tick_time
                        if start > tick_time:
                            if queued >= queue_frames:
                                link.dropped.value += 1.0
                                drops += 1
                                continue
                            queued += 1
                            was_queued = True
                        else:
                            was_queued = False
                        tx_free = start + ser
                        in_flight.append((tx_free + prop, cseq, tick_time,
                                          was_queued))
                        cseq += 1
                        sent += 1
                    datapath._busy_until = busy
                    link._tx_free_at = tx_free
                    link._queued = queued
                    if dma_count:
                        datapath.transferred_bytes.value += dma_count * mtu
                        datapath.transfers.value += dma_count
                    if sent:
                        vf.tx_packets += sent
                        vf.tx_bytes += sent * mtu
                    if drops:
                        vf.tx_backlog_drops += drops
        # The reschedule runs after the sink, so the next tick handle's
        # virtual seq postdates this tick's staged deliveries.
        self._tick_cseq = cseq
        self._cseq = cseq + 1

    def _replay_wire_deliver(self, arrival: float, tick_time: float,
                             was_queued: bool) -> None:
        """One ``Link._deliver``: the line's counters, then the host's
        egress sink — staged without a sequence number (the host's
        flush assigns them in delivery-time order)."""
        link = self._link
        if was_queued:
            link._queued -= 1
        link.delivered.value += 1.0
        link.delivered_bytes.value += self._wire_frame
        host = self.host
        host.uplink_tx_frames += 1
        stream = self.stream
        host._staged.append({
            "t": arrival,
            "src_host": host.index,
            "seq": -1,
            "src": stream.src.value,
            "dst": stream.dst.value,
            "size": stream.mtu,
            "vlan": stream.vlan,
            "protocol": stream.protocol.value,
            "flow_id": stream.flow_id,
            "created_at": tick_time,
        })

    def _replay_arrival(self, arrival: float, message: dict) -> None:
        """One fabric delivery: ``Host._ingress`` -> ``wire_receive``
        -> ``device_receive`` as flat arithmetic (one host-ward DMA
        booking per routed burst, matching the exact batch), then the
        throttle request."""
        count = message.get("count", 1)
        size = self._deliver_mtu
        port = self.port
        port.wire_rx_packets += count
        port.datapath.transfer_at(arrival, count * size)
        accepted = count
        room = self._capacity - self._backlog
        if accepted > room:
            accepted = room
        self.vf.fluid_receive(count, accepted, accepted * size)
        if accepted > 0:
            self._backlog += accepted
            # The segment's timestamp is the *remote* send time, which
            # is what the app's end-to-end latency spans.
            self._pending.append((count, accepted, message["created_at"]))
            self._replay_request(arrival)

    def _replay_request(self, now: float) -> None:
        # The base arming, plus the virtual seq the merge orders by.
        if self._fire_at is not None:
            return
        throttle = self.vf.throttle
        due = throttle._last_fired + throttle.interval
        if now >= due:
            self._replay_fire(now)
        else:
            self._fire_at = due
            self._fire_created = now
            self._fire_cseq = self._cseq
            self._cseq += 1

    # ------------------------------------------------------------------
    # leaving the fast path
    # ------------------------------------------------------------------
    def decollapse(self) -> None:
        # Staged egress and sequence numbering are host-global, so one
        # flow leaving the fast path takes the whole host with it.
        if not self.active:
            return
        self.host._evict_fluid()

    def _materialize(self) -> None:
        from repro.net.mac import MacAddress
        stream = self.stream
        ring = self.vf.rx_ring
        spin = self._drained_total & ring._mask
        ring.head = (ring.head + spin) & ring._mask
        ring.tail = (ring.tail + spin) & ring._mask
        ring._clean = (ring._clean + spin) & ring._mask
        self._drained_total = 0
        total = 0
        shape = self._rx_shape
        if shape is not None:
            src, dst, size, vlan, protocol, flow_id = shape
            src = MacAddress(src)
            dst = MacAddress(dst)
            protocol = _PROTOCOLS[protocol]
            pool = stream.pool
            for _count, accepted, created_at in self._pending:
                if accepted <= 0:
                    continue
                burst = pool.acquire_burst(accepted, src, dst, size, vlan,
                                           protocol, flow_id, created_at)
                for packet in burst:
                    ring.consume(packet)
                total += accepted
        ring.completed -= total
        self._pending.clear()
        self._backlog = 0

    def _finish_decollapse(self) -> None:
        from repro.net.mac import MacAddress
        super()._finish_decollapse()
        sim = self.sim
        host = self.host
        port = self.port
        stream = self.stream
        link = self._link
        pool = stream.pool
        # In-flight wire frames become real scheduled deliveries, in
        # creation (= arrival) order so their new handle seqs preserve
        # the exact run's relative order.
        for arrival, _cseq, tick_time, was_queued in self._in_flight:
            burst = pool.acquire_burst(1, stream.src, stream.dst,
                                       stream.mtu, stream.vlan,
                                       stream.protocol, stream.flow_id,
                                       tick_time)
            sim.schedule_at(arrival, link._deliver, burst[0], was_queued)
        self._in_flight.clear()
        # Undelivered fabric arrivals go back to the engine as the
        # _ingress events the exact advance would have scheduled.
        for arrival, _cseq, message in self._arrivals:
            sim.schedule_at(arrival, host._ingress, message, port)
        self._arrivals.clear()
        if port._fluid_tx is self:
            port._fluid_tx = None
