"""The discrete-event engine.

A :class:`Simulator` owns a virtual clock (float seconds) and a priority
queue of pending events.  Events scheduled for the same instant fire in
the order they were scheduled (stable FIFO tie-breaking via a sequence
number), which keeps multi-component interactions — e.g. an interrupt
raised and masked at the same timestamp — deterministic.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional


class SimulationError(RuntimeError):
    """Raised for misuse of the engine (negative delays, time travel...)."""


class EventHandle:
    """A cancellable reference to a scheduled event.

    Cancellation is lazy: the entry stays in the heap but is skipped when
    popped.  This keeps :meth:`Simulator.cancel` O(1).
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(self, time: float, seq: int, callback: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        self.cancelled = True

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        return f"<EventHandle t={self.time:.9f} {name} {state}>"


class Simulator:
    """A deterministic discrete-event simulator.

    Usage::

        sim = Simulator()
        sim.schedule(1e-3, handler, arg1, arg2)
        sim.run(until=10.0)

    The clock unit is seconds.  ``run`` executes events in timestamp order
    until the queue drains or the horizon is reached; the clock is left at
    ``until`` when a horizon is given (so rate statistics computed as
    count/elapsed are exact even if the last event fired earlier).
    """

    def __init__(self, start_time: float = 0.0):
        self.now: float = start_time
        self._queue: List[EventHandle] = []
        self._seq: int = 0
        self._running: bool = False
        self._events_executed: int = 0
        self._step_observer: Optional[Callable[[EventHandle], None]] = None

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self.now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute simulated ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time} (now={self.now}): time travel"
            )
        handle = EventHandle(time, self._seq, callback, args)
        self._seq += 1
        heapq.heappush(self._queue, handle)
        return handle

    def cancel(self, handle: EventHandle) -> None:
        """Cancel a previously scheduled event (idempotent)."""
        handle.cancel()

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def peek(self) -> Optional[float]:
        """Timestamp of the next live event, or None if the queue is empty."""
        self._drop_cancelled()
        return self._queue[0].time if self._queue else None

    def step(self) -> bool:
        """Execute the single next event.  Returns False if none remained."""
        self._drop_cancelled()
        if not self._queue:
            return False
        handle = heapq.heappop(self._queue)
        self.now = handle.time
        self._events_executed += 1
        observer = self._step_observer
        if observer is None:
            handle.callback(*handle.args)
        else:
            observer(handle)
        return True

    def set_step_observer(
            self, observer: Optional[Callable[[EventHandle], None]]) -> None:
        """Install a dispatch hook (``None`` to remove it).

        When set, the observer is invoked *instead of* the event's
        callback and becomes responsible for calling
        ``handle.callback(*handle.args)`` itself.  This is the seam the
        opt-in host profiler (:class:`repro.obs.EngineProfiler`) uses to
        measure wall-clock per callback; the default path stays a single
        attribute check.
        """
        self._step_observer = observer

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains, or to the ``until`` horizon.

        With a horizon, events strictly after ``until`` stay queued and the
        clock is advanced exactly to ``until``.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        try:
            while True:
                next_time = self.peek()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    break
                self.step()
            if until is not None and until > self.now:
                self.now = until
        finally:
            self._running = False

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def pending_events(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return sum(1 for h in self._queue if not h.cancelled)

    @property
    def events_executed(self) -> int:
        """Total events executed since construction."""
        return self._events_executed

    def _drop_cancelled(self) -> None:
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
