"""The discrete-event engine.

A :class:`Simulator` owns a virtual clock (float seconds) and a priority
queue of pending events.  Events scheduled for the same instant fire in
the order they were scheduled (stable FIFO tie-breaking via a sequence
number), which keeps multi-component interactions — e.g. an interrupt
raised and masked at the same timestamp — deterministic.

Hot-path layout (the engine executes tens of millions of events per
figure campaign, so this is the repro's wall clock):

* Queue entries are native ``(time, seq, handle)`` tuples — ordering is
  C-level tuple comparison, and ``seq`` is unique so the handle is
  never compared.
* A calendar-queue tier (:class:`repro.sim.wheel.TimerWheel`) fronts
  the heap for near-future events — the dense periodic timers that
  dominate the queue — draining one sorted bucket at a time.  The heap
  remains the general store for far-out, current-slot, and
  past-horizon events; correctness never depends on the wheel.
* :class:`EventHandle` objects are pooled: after dispatch (or a
  skipped cancelled entry), a handle provably free of external
  references (``sys.getrefcount``, CPython only) returns to a free
  list for the next ``schedule`` call.
* ``run()`` dispatches inline — no ``peek()``/``step()`` double heap
  touch — and ``pending_events`` is O(1) via a live-event counter.
* Lazily-cancelled debris is compacted eagerly once it outnumbers the
  live events, so re-armed timers cannot accumulate.

``BENCH_*.json`` (see ``repro bench``) tracks this path's events/sec.
"""

from __future__ import annotations

import sys
from heapq import heapify, heappop, heappush
from sys import getrefcount
from typing import Any, Callable, List, Optional, Tuple

from repro.sim.wheel import TimerWheel

_INF = float("inf")

#: A handle with no references outside the engine shows exactly this
#: refcount at the pooling checks (entry tuple + one local + the
#: getrefcount argument).  Non-CPython implementations may not have
#: refcounts at all, so pooling is disabled there (-1 never matches).
_POOL_RC = 3 if sys.implementation.name == "cpython" else -1

#: Compact the queues once cancelled debris passes this floor *and*
#: outnumbers the live events.
_COMPACT_FLOOR = 256


class SimulationError(RuntimeError):
    """Raised for misuse of the engine (negative delays, time travel...)."""


class EventHandle:
    """A cancellable reference to a scheduled event.

    Cancellation is lazy: the entry stays queued but is skipped when it
    surfaces.  This keeps :meth:`Simulator.cancel` O(1); the simulator
    additionally compacts the queues when debris accumulates.

    Dispatch marks the handle cancelled before invoking its callback,
    so a late ``cancel()`` on an already-fired handle is a no-op and
    the live/cancelled accounting can never double-count.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "_sim")

    def __init__(self, time: float, seq: int,
                 callback: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self._sim: Optional["Simulator"] = None

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        if self.cancelled:
            return
        self.cancelled = True
        sim = self._sim
        if sim is not None:
            sim._live -= 1
            cancelled = sim._cancelled + 1
            sim._cancelled = cancelled
            if cancelled > _COMPACT_FLOOR and cancelled > sim._live:
                sim._compact()

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        return f"<EventHandle t={self.time:.9f} {name} {state}>"


class Simulator:
    """A deterministic discrete-event simulator.

    Usage::

        sim = Simulator()
        sim.schedule(1e-3, handler, arg1, arg2)
        sim.run(until=10.0)

    The clock unit is seconds.  ``run`` executes events in timestamp order
    until the queue drains or the horizon is reached; the clock is left at
    ``until`` when a horizon is given (so rate statistics computed as
    count/elapsed are exact even if the last event fired earlier).
    """

    def __init__(self, start_time: float = 0.0):
        self.now: float = start_time
        #: Far-out / current-slot entries: a heap of (time, seq, handle).
        self._heap: List[Tuple] = []
        #: Near-future periodic tier (see :mod:`repro.sim.wheel`).
        self._wheel = TimerWheel(start_time=start_time)
        #: The sorted, partially-consumed bucket the wheel last drained.
        self._current: List[Tuple] = []
        self._ci: int = 0
        self._seq: int = 0
        self._running: bool = False
        self._events_executed: int = 0
        #: Events the fluid datapath (:mod:`repro.sim.fluid`) accounted
        #: for arithmetically instead of dispatching.  For an eligible
        #: run, ``events_executed + collapsed_events`` equals the exact
        #: mode's ``events_executed``.
        self.collapsed_events: int = 0
        self._step_observer: Optional[Callable[[EventHandle], None]] = None
        #: Live (non-cancelled) queued events — pending_events is O(1).
        self._live: int = 0
        #: Cancelled entries still queued (compaction trigger).
        self._cancelled: int = 0
        #: Recycled EventHandle pool.
        self._free: List[EventHandle] = []

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self.now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute simulated ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time} (now={self.now}): time travel"
            )
        seq = self._seq
        self._seq = seq + 1
        free = self._free
        if free:
            handle = free.pop()
            handle.time = time
            handle.seq = seq
            handle.callback = callback
            handle.args = args
            handle.cancelled = False
        else:
            handle = EventHandle(time, seq, callback, args)
            handle._sim = self
        self._live += 1
        entry = (time, seq, handle)
        if not self._wheel.try_insert(self.now, time, entry):
            heappush(self._heap, entry)
        return handle

    def cancel(self, handle: EventHandle) -> None:
        """Cancel a previously scheduled event (idempotent)."""
        handle.cancel()

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def peek(self) -> Optional[float]:
        """Timestamp of the next live event, or None if the queue is empty.

        Discards any cancelled prefix while looking, loading wheel
        buckets as needed to make the answer exact.
        """
        heap = self._heap
        wheel = self._wheel
        while True:
            current = self._current
            ci = self._ci
            clen = len(current)
            while ci < clen and current[ci][2].cancelled:
                self._cancelled -= 1
                ci += 1
            self._ci = ci
            while heap and heap[0][2].cancelled:
                self._cancelled -= 1
                heappop(heap)
            centry = current[ci] if ci < clen else None
            hentry = heap[0] if heap else None
            if centry is None:
                nxt = hentry
            elif hentry is None or centry < hentry:
                nxt = centry
            else:
                nxt = hentry
            if wheel.count and (
                    nxt is None
                    or wheel.next_slot <= int(nxt[0] * wheel.inv_width)):
                # The current bucket's slot always precedes next_slot,
                # so reaching here means the buffer is fully consumed
                # and loading cannot clobber pending entries.
                self._current = wheel.load()
                self._ci = 0
                continue
            return nxt[0] if nxt is not None else None

    def step(self) -> bool:
        """Execute the single next event.  Returns False if none remained."""
        if self.peek() is None:
            return False
        current = self._current
        ci = self._ci
        heap = self._heap
        if ci < len(current):
            centry = current[ci]
            if heap and heap[0] < centry:
                entry = heappop(heap)
            else:
                entry = centry
                self._ci = ci + 1
        else:
            entry = heappop(heap)
        handle = entry[2]
        self.now = entry[0]
        self._events_executed += 1
        self._live -= 1
        handle.cancelled = True  # late cancel() on a fired handle: no-op
        observer = self._step_observer
        if observer is None:
            handle.callback(*handle.args)
        else:
            observer(handle)
        return True

    def set_step_observer(
            self, observer: Optional[Callable[[EventHandle], None]]) -> None:
        """Install a dispatch hook (``None`` to remove it).

        When set, the observer is invoked *instead of* the event's
        callback and becomes responsible for calling
        ``handle.callback(*handle.args)`` itself.  This is the seam the
        opt-in host profiler (:class:`repro.obs.EngineProfiler`) uses to
        measure wall-clock per callback; the default path stays a single
        attribute check.
        """
        self._step_observer = observer

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains, or to the ``until`` horizon.

        With a horizon, events strictly after ``until`` stay queued and the
        clock is advanced exactly to ``until``.

        The dispatch loop is inlined (no per-event ``peek``/``step``
        round trips): merge the sorted current wheel bucket against the
        heap top, skip cancelled entries, pool handles that have no
        external references.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        limit = _INF if until is None else until
        heap = self._heap  # identity is stable: _compact filters in place
        wheel = self._wheel
        free = self._free
        pool_rc = _POOL_RC
        try:
            while True:
                current = self._current
                ci = self._ci
                clen = len(current)
                if ci >= clen and wheel.count:
                    # The wheel may hold the next event: load its next
                    # bucket unless the heap top (or the horizon) comes
                    # strictly before that slot can begin.  Slots are
                    # compared as ints so float rounding cannot reorder.
                    bound = heap[0][0] if heap and heap[0][0] < limit else limit
                    if bound == _INF or wheel.next_slot <= int(
                            bound * wheel.inv_width):
                        current = self._current = wheel.load()
                        ci = self._ci = 0
                        clen = len(current)
                if ci < clen:
                    entry = current[ci]
                    if heap:
                        hentry = heap[0]
                        if hentry < entry:
                            if hentry[0] > limit:
                                break
                            heappop(heap)
                            entry = hentry
                        else:
                            if entry[0] > limit:
                                break
                            self._ci = ci + 1
                    else:
                        if entry[0] > limit:
                            break
                        self._ci = ci + 1
                elif heap:
                    entry = heap[0]
                    if entry[0] > limit:
                        break
                    heappop(heap)
                else:
                    break
                handle = entry[2]
                if handle.cancelled:
                    self._cancelled -= 1
                    if getrefcount(handle) == pool_rc:
                        handle.callback = None
                        handle.args = ()
                        free.append(handle)
                    continue
                self.now = entry[0]
                self._events_executed += 1
                self._live -= 1
                handle.cancelled = True  # late cancel(): no-op
                observer = self._step_observer
                if observer is not None:
                    observer(handle)
                    continue
                callback = handle.callback
                args = handle.args
                if getrefcount(handle) == pool_rc:
                    # No external references: recycle before dispatch so
                    # the callback's own schedules can reuse the handle.
                    handle.callback = None
                    handle.args = ()
                    free.append(handle)
                    callback(*args)
                else:
                    callback(*args)
                    # Callers like the interrupt throttle drop their
                    # reference inside the callback; re-check.
                    if getrefcount(handle) == pool_rc:
                        handle.callback = None
                        handle.args = ()
                        free.append(handle)
            if until is not None and until > self.now:
                self.now = until
        finally:
            self._running = False

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def pending_events(self) -> int:
        """Number of live (non-cancelled) events still queued.  O(1)."""
        return self._live

    @property
    def events_executed(self) -> int:
        """Total events executed since construction."""
        return self._events_executed

    def queue_stats(self) -> dict:
        """Read-only queue accounting for the invariant auditor.

        Unlike :meth:`peek`, this never mutates the queues — no
        cancelled-prefix popping, no wheel bucket loads — so calling it
        mid-run cannot perturb the event stream.  The identity audited
        against it: ``live + cancelled`` equals the entries physically
        present across the heap, the wheel, and the unconsumed tail of
        the current bucket (every entry is in exactly one tier).
        """
        return {
            "live": self._live,
            "cancelled": self._cancelled,
            "heap": len(self._heap),
            "wheel": self._wheel.count,
            "current": len(self._current) - self._ci,
        }

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def _compact(self) -> None:
        """Eagerly drop lazily-cancelled entries from every queue tier.

        Filters in place where the run loop caches references (the
        heap), and exactly resets the cancelled-debris counter.
        """
        heap = self._heap
        live_heap = [entry for entry in heap if not entry[2].cancelled]
        if len(live_heap) != len(heap):
            heap[:] = live_heap
            heapify(heap)
        ci = self._ci
        current = self._current
        if ci or current:
            self._current = [entry for entry in current[ci:]
                             if not entry[2].cancelled]
            self._ci = 0
        self._wheel.compact()
        self._cancelled = 0
